package slb_test

import (
	"testing"
	"time"

	"slb"
	"slb/internal/core"
	"slb/internal/telemetry"
)

// This file pins the telemetry hot-path budget on the routing fast
// path: the instrumented form of RouteBatchDigests — the exact pattern
// the engines' spout loops use (one time.Now pair per slab, one
// RouteRecorder.RecordBatch publishing counter deltas) — must stay at
// 0 allocs/op and within 3% ns/op of the uninstrumented path. The
// allocation half is asserted by TestInstrumentedRoutingZeroAllocs in
// the tier-1 suite; the timing half is asserted inside
// BenchmarkRouteBatchDigestsInstrumented, which the benchtime=1x CI
// job runs (the measurement below is self-paced, so one harness
// iteration still performs the full paired comparison).

const instrRounds = 9
const instrSlabsPerRound = 48

// newWarmBenchPartitioner builds a partitioner warmed to steady state
// (sketch at capacity, caches primed) on the shared bench workload.
// SolveEvery is raised so the amortized, allocating D-C solver stays
// outside the measured window, as in TestSteadyStateRoutingZeroAllocs.
func newWarmBenchPartitioner(tb testing.TB, algo string) slb.Partitioner {
	p, err := slb.New(algo, slb.Config{Workers: benchWorkers, Seed: 1, SolveEvery: 1 << 30})
	if err != nil {
		tb.Fatal(err)
	}
	warm := slb.NewZipfStream(benchZ, benchKeys, 50_000, 2)
	for {
		k, ok := warm.Next()
		if !ok {
			return p
		}
		p.Route(k)
	}
}

// benchSlabs materializes count slabs of the bench stream so both sides
// of the paired measurement route identical keys.
func benchSlabs(count int) [][]string {
	gen := slb.NewZipfStream(benchZ, benchKeys, int64(count*benchSlabSize), 1)
	slabs := make([][]string, 0, count)
	buf := make([]string, benchSlabSize)
	for len(slabs) < count {
		n := slb.NextBatch(gen, buf)
		if n == 0 {
			break
		}
		s := make([]string, n)
		copy(s, buf[:n])
		slabs = append(slabs, s)
	}
	return slabs
}

// routeSlabs routes every slab once; when rec is non-nil each slab is
// timed and published, exactly as the engines do it.
func routeSlabs(p slb.Partitioner, slabs [][]string, digs []slb.KeyDigest, dst []int, rec *core.RouteRecorder) {
	for _, keys := range slabs {
		if rec != nil {
			t0 := time.Now()
			slb.RouteBatchDigests(p, keys, digs, dst)
			rec.RecordBatch(p, len(keys), time.Since(t0))
		} else {
			slb.RouteBatchDigests(p, keys, digs, dst)
		}
	}
}

// BenchmarkRouteBatchDigestsInstrumented runs the paired comparison and
// FAILS if the instrumented path exceeds the uninstrumented one by more
// than 3% (min over interleaved rounds on identical key sequences — the
// min filters scheduler noise, the interleaving cancels thermal drift).
func BenchmarkRouteBatchDigestsInstrumented(b *testing.B) {
	for _, algo := range []string{"D-C", "W-C", "PKG"} {
		b.Run(algo, func(b *testing.B) {
			plain := newWarmBenchPartitioner(b, algo)
			instr := newWarmBenchPartitioner(b, algo)
			reg := telemetry.NewRegistry()
			rec := core.NewRouteRecorder(reg, telemetry.L("algo", algo), telemetry.L("engine", "bench"))
			slabs := benchSlabs(instrSlabsPerRound)
			digs := make([]slb.KeyDigest, benchSlabSize)
			dst := make([]int, benchSlabSize)

			// One untimed pass each to settle branch predictors and the
			// candidate caches on this key set.
			routeSlabs(plain, slabs, digs, dst, nil)
			routeSlabs(instr, slabs, digs, dst, rec)

			minPlain, minInstr := time.Duration(1<<62), time.Duration(1<<62)
			for r := 0; r < instrRounds; r++ {
				t0 := time.Now()
				routeSlabs(plain, slabs, digs, dst, nil)
				if d := time.Since(t0); d < minPlain {
					minPlain = d
				}
				t0 = time.Now()
				routeSlabs(instr, slabs, digs, dst, rec)
				if d := time.Since(t0); d < minInstr {
					minInstr = d
				}
			}
			ratio := float64(minInstr) / float64(minPlain)
			b.ReportMetric(ratio, "instr/plain")
			b.ReportMetric(float64(minInstr-minPlain)/float64(instrSlabsPerRound), "overhead-ns/slab")
			// 3% relative budget plus a 200ns/slab absolute floor so a
			// sub-microsecond-slab scheme cannot fail on timer
			// granularity alone.
			if slack := time.Duration(200 * instrSlabsPerRound); minInstr > minPlain+minPlain*3/100+slack {
				b.Fatalf("%s: instrumented RouteBatchDigests %.2f%% over uninstrumented (%v vs %v per round), budget 3%%",
					algo, (ratio-1)*100, minInstr, minPlain)
			}

			// Keep the harness loop meaningful: ns/op is the instrumented
			// slab cost.
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				keys := slabs[i%len(slabs)]
				t0 := time.Now()
				slb.RouteBatchDigests(instr, keys, digs, dst)
				rec.RecordBatch(instr, len(keys), time.Since(t0))
			}
		})
	}
}

// TestInstrumentedRoutingZeroAllocs is the allocation half of the
// budget, asserted in the tier-1 suite: steady-state instrumented
// routing — RouteBatchDigests plus RecordBatch — allocates nothing.
func TestInstrumentedRoutingZeroAllocs(t *testing.T) {
	for _, algo := range []string{"D-C", "W-C", "PKG", "RR"} {
		p := newWarmBenchPartitioner(t, algo)
		reg := telemetry.NewRegistry()
		rec := core.NewRouteRecorder(reg, telemetry.L("algo", algo))
		slabs := benchSlabs(16)
		digs := make([]slb.KeyDigest, benchSlabSize)
		dst := make([]int, benchSlabSize)
		routeSlabs(p, slabs, digs, dst, rec) // settle caches
		i := 0
		if avg := testing.AllocsPerRun(200, func() {
			keys := slabs[i%len(slabs)]
			i++
			t0 := time.Now()
			slb.RouteBatchDigests(p, keys, digs, dst)
			rec.RecordBatch(p, len(keys), time.Since(t0))
		}); avg != 0 {
			t.Errorf("%s: instrumented routing allocates %.4f allocs/slab, want 0", algo, avg)
		}
	}
}
