module slb

go 1.24
