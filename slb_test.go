package slb_test

import (
	"fmt"
	"testing"

	"slb"
)

func TestFacadeConstructors(t *testing.T) {
	cfg := slb.Config{Workers: 8, Seed: 1}
	constructors := map[string]func(slb.Config) slb.Partitioner{
		"KG":  slb.NewKeyGrouping,
		"SG":  slb.NewShuffleGrouping,
		"PKG": slb.NewPKG,
		"D-C": slb.NewDChoices,
		"W-C": slb.NewWChoices,
		"RR":  slb.NewRoundRobin,
	}
	if len(constructors) != len(slb.Algorithms) {
		t.Fatalf("facade exposes %d constructors, Algorithms lists %d", len(constructors), len(slb.Algorithms))
	}
	for name, ctor := range constructors {
		p := ctor(cfg)
		if p.Name() != name {
			t.Errorf("constructor for %s returned %s", name, p.Name())
		}
		if w := p.Route("key"); w < 0 || w >= 8 {
			t.Errorf("%s routed out of range: %d", name, w)
		}
		byName, err := slb.New(name, cfg)
		if err != nil || byName.Name() != name {
			t.Errorf("New(%q) = %v, %v", name, byName, err)
		}
	}
}

func TestFacadeStreams(t *testing.T) {
	gen := slb.NewZipfStream(1.5, 100, 1000, 3)
	st := slb.CollectStats(gen)
	if st.Messages != 1000 || st.Keys == 0 || st.P1 <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	drift := slb.NewDriftStream(1.5, 100, 1000, 250, 10, 3)
	if drift.Len() != 1000 {
		t.Fatal("drift stream length wrong")
	}
	fixed := slb.StreamFromKeys([]string{"a", "b"})
	if slb.CollectStats(fixed).Keys != 2 {
		t.Fatal("slice stream broken")
	}
	for _, symbol := range []string{"WP", "TW", "CT"} {
		if _, ok := slb.Dataset(symbol, 1); !ok {
			t.Errorf("Dataset(%q) missing", symbol)
		}
	}
	if _, ok := slb.Dataset("XX", 1); ok {
		t.Error("unknown dataset resolved")
	}
}

func TestFacadeSimulate(t *testing.T) {
	gen := slb.NewZipfStream(2.0, 500, 50_000, 9)
	cfg := slb.Config{Workers: 20, Seed: 9}
	pkg, err := slb.Simulate(gen, "PKG", cfg, slb.SimOptions{Sources: 5})
	if err != nil {
		t.Fatal(err)
	}
	wc, err := slb.Simulate(gen, "W-C", cfg, slb.SimOptions{Sources: 5})
	if err != nil {
		t.Fatal(err)
	}
	if wc.Imbalance >= pkg.Imbalance {
		t.Fatalf("W-C (%f) should beat PKG (%f)", wc.Imbalance, pkg.Imbalance)
	}
}

func TestFacadeCluster(t *testing.T) {
	gen := slb.NewZipfStream(1.4, 200, 5_000, 2)
	res, err := slb.SimulateCluster(gen, slb.ClusterConfig{
		Workers: 8, Sources: 4, Algorithm: "W-C",
		Core: slb.Config{Seed: 2}, ServiceTime: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 5000 {
		t.Fatalf("cluster completed %d", res.Completed)
	}
}

func TestFacadeTopology(t *testing.T) {
	gen := slb.NewZipfStream(1.0, 100, 2_000, 4)
	res, err := slb.RunTopology(gen, slb.EngineConfig{
		Workers: 4, Sources: 2, Algorithm: "PKG", Core: slb.Config{Seed: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2000 {
		t.Fatalf("topology completed %d", res.Completed)
	}
}

func TestFacadePipeline(t *testing.T) {
	gen := slb.NewZipfStream(1.5, 100, 2_000, 8)
	pipe := slb.NewPipeline(gen, 2).
		AddStage("pass", 2, "SG", 0, func(k string, emit func(string)) { emit(k) }).
		AddStage("sink", 4, "W-C", 0, func(string, func(string)) {})
	res, err := pipe.Run(slb.PipelineConfig{Core: slb.Config{Seed: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Emitted != 2000 || len(res.Stages) != 2 {
		t.Fatalf("pipeline result %+v", res)
	}
	if res.Stages[1].Processed != 2000 {
		t.Fatalf("sink processed %d", res.Stages[1].Processed)
	}
}

func TestFacadeAnalysis(t *testing.T) {
	if got := slb.Imbalance([]int64{10, 0}); got != 0.5 {
		t.Fatalf("Imbalance = %f", got)
	}
	probs := slb.ZipfProbs(2.0, 1000)
	if probs[0] < 0.5 {
		t.Fatalf("ZipfProbs p1 = %f, want ≈0.6", probs[0])
	}
	d := slb.SolveD(probs[:5], 0.2, 10, 1e-4)
	if d < 6 || d > 10 {
		t.Fatalf("SolveD = %d", d)
	}
	hh := slb.NewHeavyHitters(10)
	hh.Offer("x")
	if c, _, ok := hh.Count("x"); !ok || c != 1 {
		t.Fatal("heavy hitter sketch broken through facade")
	}
}

// TestDeterministicRoutingBothAPIs pins the determinism and parity
// contract of the routing layer: routing one seeded stream twice
// through fresh partitioners yields identical worker sequences, via the
// per-message API, via the batch API, and across the two APIs — for
// every algorithm.
func TestDeterministicRoutingBothAPIs(t *testing.T) {
	const (
		workers = 50
		batch   = 256
	)
	for _, algo := range slb.Algorithms {
		mkKeys := func() []string {
			gen := slb.NewZipfStream(2.0, 1000, 20_000, 99)
			keys := make([]string, 0, 20_000)
			buf := make([]string, batch)
			for {
				n := slb.NextBatch(gen, buf)
				if n == 0 {
					break
				}
				keys = append(keys, buf[:n]...)
			}
			return keys
		}
		keys := mkKeys()
		if len(keys) != 20_000 {
			t.Fatalf("stream materialized %d keys", len(keys))
		}

		routeSeq := func() []int {
			p, err := slb.New(algo, slb.Config{Workers: workers, Seed: 99})
			if err != nil {
				t.Fatal(err)
			}
			out := make([]int, len(keys))
			for i, k := range keys {
				out[i] = p.Route(k)
			}
			return out
		}
		routeBat := func() []int {
			p, err := slb.New(algo, slb.Config{Workers: workers, Seed: 99})
			if err != nil {
				t.Fatal(err)
			}
			out := make([]int, len(keys))
			dst := make([]int, batch)
			for i := 0; i < len(keys); i += batch {
				end := i + batch
				if end > len(keys) {
					end = len(keys)
				}
				slb.RouteBatch(p, keys[i:end], dst)
				copy(out[i:end], dst[:end-i])
			}
			return out
		}

		a, b := routeSeq(), routeSeq()
		c, d := routeBat(), routeBat()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: Route not deterministic at message %d", algo, i)
			}
			if c[i] != d[i] {
				t.Fatalf("%s: RouteBatch not deterministic at message %d", algo, i)
			}
			if a[i] != c[i] {
				t.Fatalf("%s: Route and RouteBatch diverge at message %d: %d vs %d",
					algo, i, a[i], c[i])
			}
		}
	}
}

// TestFacadeBatchAPI exercises the batch entry points through the
// facade.
func TestFacadeBatchAPI(t *testing.T) {
	if slb.DigestKey("x") != slb.DigestKey("x") || slb.DigestKey("x") == slb.DigestKey("y") {
		t.Fatal("DigestKey broken")
	}
	p := slb.NewPKG(slb.Config{Workers: 8, Seed: 1})
	if _, ok := p.(slb.BatchPartitioner); !ok {
		t.Fatal("PKG does not implement BatchPartitioner through the facade")
	}
	keys := []string{"a", "b", "a"}
	dst := make([]int, 3)
	slb.RouteBatch(p, keys, dst)
	for _, w := range dst {
		if w < 0 || w >= 8 {
			t.Fatalf("RouteBatch out of range: %v", dst)
		}
	}
	gen := slb.StreamFromKeys(keys)
	buf := make([]string, 2)
	if n := slb.NextBatch(gen, buf); n != 2 || buf[0] != "a" || buf[1] != "b" {
		t.Fatalf("NextBatch = %d %v", n, buf)
	}
}

// ExampleSimulate demonstrates the headline comparison: PKG versus
// D-Choices on a heavily skewed stream at scale.
func ExampleSimulate() {
	gen := slb.NewZipfStream(2.0, 1000, 100_000, 42)
	cfg := slb.Config{Workers: 50, Seed: 42}
	pkg, _ := slb.Simulate(gen, "PKG", cfg, slb.SimOptions{Sources: 5})
	dc, _ := slb.Simulate(gen, "D-C", cfg, slb.SimOptions{Sources: 5})
	fmt.Printf("PKG balanced: %v\n", pkg.Imbalance < 0.01)
	fmt.Printf("D-C balanced: %v\n", dc.Imbalance < 0.01)
	// Output:
	// PKG balanced: false
	// D-C balanced: true
}

// ExampleSolveD shows FINDOPTIMALCHOICES on a known distribution.
func ExampleSolveD() {
	probs := slb.ZipfProbs(2.0, 10_000)
	theta := 1.0 / (5 * 10.0) // n = 10 workers
	var head []float64
	tail := 0.0
	for _, p := range probs {
		if p >= theta {
			head = append(head, p)
		} else {
			tail += p
		}
	}
	d := slb.SolveD(head, tail, 10, 1e-4)
	fmt.Printf("head of %d keys needs d=%d of 10 workers\n", len(head), d)
	// Output:
	// head of 5 keys needs d=10 of 10 workers
}
