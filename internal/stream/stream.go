// Package stream defines the data model shared by all engines: keyed
// messages, finite key-stream generators, and per-stream statistics
// (the quantities reported in Table I of the paper).
package stream

// Message is one stream tuple ⟨t, k, v⟩. Seq is a logical timestamp
// assigned by the producing source; engines that measure wall-clock or
// simulated latency keep their own clocks.
type Message struct {
	Seq int64
	Key string
	Val string
}

// Generator produces a finite sequence of keys. Implementations must be
// deterministic for a fixed configuration and seed so that different
// partitioning algorithms can be compared on byte-identical streams by
// re-instantiating the generator.
type Generator interface {
	// Next returns the next key, or ok=false when the stream is exhausted.
	Next() (key string, ok bool)
	// Len returns the total number of messages the generator will emit.
	Len() int64
	// Reset rewinds the generator to the beginning of the same sequence.
	Reset()
}

// BatchGenerator is implemented by generators with a batched emission
// fast path: NextBatch fills dst with the next keys of exactly the same
// sequence Next would produce, amortizing per-message call overhead.
// All generators in this module implement it; use the NextBatch helper
// to drive any Generator.
type BatchGenerator interface {
	Generator
	// NextBatch fills up to len(dst) keys into dst and returns how many
	// were produced; 0 means the stream is exhausted (when len(dst) > 0).
	NextBatch(dst []string) int
}

// NextBatch pulls up to len(dst) keys from gen, using its native batch
// path when available and falling back to per-message Next otherwise.
// It returns the number of keys filled; 0 means exhausted.
func NextBatch(gen Generator, dst []string) int {
	if bg, ok := gen.(BatchGenerator); ok {
		return bg.NextBatch(dst)
	}
	for i := range dst {
		k, ok := gen.Next()
		if !ok {
			return i
		}
		dst[i] = k
	}
	return len(dst)
}

// Stats summarizes a key stream: the columns of Table I.
type Stats struct {
	Messages int64   // number of messages m
	Keys     int     // number of distinct keys |K|
	P1       float64 // relative frequency of the most frequent key
	TopKey   string  // identity of the most frequent key
}

// Collect consumes gen (resetting it first and after) and computes its
// exact statistics. It needs O(|K|) memory; intended for experiment
// reporting, not for the hot path.
func Collect(gen Generator) Stats {
	gen.Reset()
	counts := make(map[string]int64)
	var m int64
	buf := make([]string, 512)
	for {
		n := NextBatch(gen, buf)
		if n == 0 {
			break
		}
		for _, k := range buf[:n] {
			counts[k]++
		}
		m += int64(n)
	}
	gen.Reset()
	var top string
	var topCount int64
	for k, c := range counts {
		if c > topCount || (c == topCount && k < top) {
			top, topCount = k, c
		}
	}
	s := Stats{Messages: m, Keys: len(counts), TopKey: top}
	if m > 0 {
		s.P1 = float64(topCount) / float64(m)
	}
	return s
}

// SliceGenerator adapts a fixed []string to the Generator interface;
// useful in tests and tiny examples.
type SliceGenerator struct {
	keys []string
	pos  int
}

// FromSlice returns a Generator that replays keys in order.
func FromSlice(keys []string) *SliceGenerator {
	return &SliceGenerator{keys: keys}
}

// Next implements Generator.
func (g *SliceGenerator) Next() (string, bool) {
	if g.pos >= len(g.keys) {
		return "", false
	}
	k := g.keys[g.pos]
	g.pos++
	return k, true
}

// NextBatch implements BatchGenerator.
func (g *SliceGenerator) NextBatch(dst []string) int {
	n := copy(dst, g.keys[g.pos:])
	g.pos += n
	return n
}

// Len implements Generator.
func (g *SliceGenerator) Len() int64 { return int64(len(g.keys)) }

// Reset implements Generator.
func (g *SliceGenerator) Reset() { g.pos = 0 }

// Limit wraps gen, truncating it to at most n messages.
type Limit struct {
	gen  Generator
	n    int64
	seen int64
}

// NewLimit returns a Generator that emits at most n keys from gen.
func NewLimit(gen Generator, n int64) *Limit {
	return &Limit{gen: gen, n: n}
}

// Next implements Generator.
func (l *Limit) Next() (string, bool) {
	if l.seen >= l.n {
		return "", false
	}
	k, ok := l.gen.Next()
	if !ok {
		return "", false
	}
	l.seen++
	return k, true
}

// NextBatch implements BatchGenerator.
func (l *Limit) NextBatch(dst []string) int {
	room := l.n - l.seen
	if room <= 0 {
		return 0
	}
	if int64(len(dst)) > room {
		dst = dst[:room]
	}
	n := NextBatch(l.gen, dst)
	l.seen += int64(n)
	return n
}

// Len implements Generator.
func (l *Limit) Len() int64 {
	if inner := l.gen.Len(); inner < l.n {
		return inner
	}
	return l.n
}

// Reset implements Generator.
func (l *Limit) Reset() {
	l.gen.Reset()
	l.seen = 0
}

var (
	_ BatchGenerator = (*SliceGenerator)(nil)
	_ BatchGenerator = (*Limit)(nil)
)

// Puller adapts a Generator to per-message consumption through an
// internal prefetch slab, so engines that must pull one key at a time
// (e.g. a discrete-event loop) still drive the batch emission path.
// The sequence is exactly the generator's.
type Puller struct {
	gen    Generator
	buf    []string
	pos, n int
}

// NewPuller returns a Puller with the given prefetch slab size.
func NewPuller(gen Generator, slab int) *Puller {
	if slab <= 0 {
		slab = 256
	}
	return &Puller{gen: gen, buf: make([]string, slab)}
}

// Next returns the next key of the underlying stream.
func (p *Puller) Next() (string, bool) {
	if p.pos == p.n {
		p.n = NextBatch(p.gen, p.buf)
		p.pos = 0
		if p.n == 0 {
			return "", false
		}
	}
	k := p.buf[p.pos]
	p.pos++
	return k, true
}
