// Package stream defines the data model shared by all engines: keyed
// messages, finite key-stream generators, and per-stream statistics
// (the quantities reported in Table I of the paper).
package stream

// Message is one stream tuple ⟨t, k, v⟩. Seq is a logical timestamp
// assigned by the producing source; engines that measure wall-clock or
// simulated latency keep their own clocks.
type Message struct {
	Seq int64
	Key string
	Val string
}

// Generator produces a finite sequence of keys. Implementations must be
// deterministic for a fixed configuration and seed so that different
// partitioning algorithms can be compared on byte-identical streams by
// re-instantiating the generator.
type Generator interface {
	// Next returns the next key, or ok=false when the stream is exhausted.
	Next() (key string, ok bool)
	// Len returns the total number of messages the generator will emit.
	Len() int64
	// Reset rewinds the generator to the beginning of the same sequence.
	Reset()
}

// BatchGenerator is implemented by generators with a batched emission
// fast path: NextBatch fills dst with the next keys of exactly the same
// sequence Next would produce, amortizing per-message call overhead.
// All generators in this module implement it; use the NextBatch helper
// to drive any Generator.
type BatchGenerator interface {
	Generator
	// NextBatch fills up to len(dst) keys into dst and returns how many
	// were produced; 0 means the stream is exhausted (when len(dst) > 0).
	NextBatch(dst []string) int
}

// NextBatch pulls up to len(dst) keys from gen, using its native batch
// path when available and falling back to per-message Next otherwise.
// It returns the number of keys filled; 0 means exhausted.
func NextBatch(gen Generator, dst []string) int {
	if bg, ok := gen.(BatchGenerator); ok {
		return bg.NextBatch(dst)
	}
	for i := range dst {
		k, ok := gen.Next()
		if !ok {
			return i
		}
		dst[i] = k
	}
	return len(dst)
}

// ValueBatchGenerator is implemented by generators whose messages carry
// an int64 payload sample alongside the key — recorded trace replays
// (tracefile version 2) and WithValues wrappers. The sample is what a
// windowed merger aggregates (aggregation.Merger.Observe).
//
// The engines' sampling contract, in precedence order:
//
//  1. the engine's AggValue hook, when set (an explicit per-run
//     override — it sees key and global emission sequence);
//  2. the generator's recorded values, when it implements this
//     interface and HasValues reports true;
//  3. the constant 1, making every sum-like merge a count.
type ValueBatchGenerator interface {
	Generator
	// NextBatchValues fills keys and vals in lockstep — vals[i] is the
	// payload of keys[i] — with up to len(keys) messages (len(vals)
	// must be ≥ len(keys)) and returns how many were produced. The key
	// sequence is exactly what NextBatch would produce.
	NextBatchValues(keys []string, vals []int64) int
	// HasValues reports whether the stream actually records payload
	// values; false means NextBatchValues fills the constant 1 (e.g. a
	// version-1 trace replayed through a value-aware reader).
	HasValues() bool
}

// Values returns gen's value-bearing view when it records real payload
// samples, or nil when it does not (engines then fall back to their
// AggValue hook or the constant 1; see ValueBatchGenerator).
func Values(gen Generator) ValueBatchGenerator {
	if vg, ok := gen.(ValueBatchGenerator); ok && vg.HasValues() {
		return vg
	}
	return nil
}

// NextBatchValues pulls up to len(keys) messages with their payload
// values, using gen's native lockstep path when available and falling
// back to NextBatch with constant-1 values otherwise. len(vals) must
// be ≥ len(keys).
func NextBatchValues(gen Generator, keys []string, vals []int64) int {
	if vg, ok := gen.(ValueBatchGenerator); ok {
		return vg.NextBatchValues(keys, vals)
	}
	n := NextBatch(gen, keys)
	for i := 0; i < n; i++ {
		vals[i] = 1
	}
	return n
}

// valueFunc attaches derived payload values to a key generator; see
// WithValues.
type valueFunc struct {
	Generator
	fn  func(key string, seq int64) int64
	seq int64
}

// WithValues wraps gen so each key carries the payload fn(key, seq),
// where seq is the message's position in the stream (0-based). The
// wrapper implements ValueBatchGenerator, so writing it through
// tracefile.Write produces a version-2 trace whose replay supplies the
// derived values as recorded data — the bridge from synthetic payload
// models to the record-once/replay-bit-identically workflow.
func WithValues(gen Generator, fn func(key string, seq int64) int64) ValueBatchGenerator {
	return &valueFunc{Generator: gen, fn: fn}
}

// Next implements Generator (the value is derived but unreported; use
// NextBatchValues for lockstep consumption).
func (g *valueFunc) Next() (string, bool) {
	k, ok := g.Generator.Next()
	if ok {
		g.seq++
	}
	return k, ok
}

// NextBatch implements BatchGenerator.
func (g *valueFunc) NextBatch(dst []string) int {
	n := NextBatch(g.Generator, dst)
	g.seq += int64(n)
	return n
}

// NextBatchValues implements ValueBatchGenerator.
func (g *valueFunc) NextBatchValues(keys []string, vals []int64) int {
	n := NextBatch(g.Generator, keys)
	for i := 0; i < n; i++ {
		vals[i] = g.fn(keys[i], g.seq+int64(i))
	}
	g.seq += int64(n)
	return n
}

// HasValues implements ValueBatchGenerator.
func (g *valueFunc) HasValues() bool { return true }

// Reset implements Generator.
func (g *valueFunc) Reset() {
	g.Generator.Reset()
	g.seq = 0
}

// Stats summarizes a key stream: the columns of Table I.
type Stats struct {
	Messages int64   // number of messages m
	Keys     int     // number of distinct keys |K|
	P1       float64 // relative frequency of the most frequent key
	TopKey   string  // identity of the most frequent key
}

// Collect consumes gen (resetting it first and after) and computes its
// exact statistics. It needs O(|K|) memory; intended for experiment
// reporting, not for the hot path.
func Collect(gen Generator) Stats {
	gen.Reset()
	counts := make(map[string]int64)
	var m int64
	buf := make([]string, 512)
	for {
		n := NextBatch(gen, buf)
		if n == 0 {
			break
		}
		for _, k := range buf[:n] {
			counts[k]++
		}
		m += int64(n)
	}
	gen.Reset()
	var top string
	var topCount int64
	for k, c := range counts {
		if c > topCount || (c == topCount && k < top) {
			top, topCount = k, c
		}
	}
	s := Stats{Messages: m, Keys: len(counts), TopKey: top}
	if m > 0 {
		s.P1 = float64(topCount) / float64(m)
	}
	return s
}

// SliceGenerator adapts a fixed []string to the Generator interface;
// useful in tests and tiny examples.
type SliceGenerator struct {
	keys []string
	pos  int
}

// FromSlice returns a Generator that replays keys in order.
func FromSlice(keys []string) *SliceGenerator {
	return &SliceGenerator{keys: keys}
}

// Next implements Generator.
func (g *SliceGenerator) Next() (string, bool) {
	if g.pos >= len(g.keys) {
		return "", false
	}
	k := g.keys[g.pos]
	g.pos++
	return k, true
}

// NextBatch implements BatchGenerator.
func (g *SliceGenerator) NextBatch(dst []string) int {
	n := copy(dst, g.keys[g.pos:])
	g.pos += n
	return n
}

// Len implements Generator.
func (g *SliceGenerator) Len() int64 { return int64(len(g.keys)) }

// Reset implements Generator.
func (g *SliceGenerator) Reset() { g.pos = 0 }

// Limit wraps gen, truncating it to at most n messages.
type Limit struct {
	gen  Generator
	n    int64
	seen int64
}

// NewLimit returns a Generator that emits at most n keys from gen.
func NewLimit(gen Generator, n int64) *Limit {
	return &Limit{gen: gen, n: n}
}

// Next implements Generator.
func (l *Limit) Next() (string, bool) {
	if l.seen >= l.n {
		return "", false
	}
	k, ok := l.gen.Next()
	if !ok {
		return "", false
	}
	l.seen++
	return k, true
}

// NextBatch implements BatchGenerator.
func (l *Limit) NextBatch(dst []string) int {
	room := l.n - l.seen
	if room <= 0 {
		return 0
	}
	if int64(len(dst)) > room {
		dst = dst[:room]
	}
	n := NextBatch(l.gen, dst)
	l.seen += int64(n)
	return n
}

// Len implements Generator.
func (l *Limit) Len() int64 {
	if inner := l.gen.Len(); inner < l.n {
		return inner
	}
	return l.n
}

// Reset implements Generator.
func (l *Limit) Reset() {
	l.gen.Reset()
	l.seen = 0
}

var (
	_ BatchGenerator = (*SliceGenerator)(nil)
	_ BatchGenerator = (*Limit)(nil)
)

// Puller adapts a Generator to per-message consumption through an
// internal prefetch slab, so engines that must pull one key at a time
// (e.g. a discrete-event loop) still drive the batch emission path.
// The sequence is exactly the generator's.
type Puller struct {
	gen    Generator
	buf    []string
	pos, n int
}

// NewPuller returns a Puller with the given prefetch slab size.
func NewPuller(gen Generator, slab int) *Puller {
	if slab <= 0 {
		slab = 256
	}
	return &Puller{gen: gen, buf: make([]string, slab)}
}

// Next returns the next key of the underlying stream.
func (p *Puller) Next() (string, bool) {
	if p.pos == p.n {
		p.n = NextBatch(p.gen, p.buf)
		p.pos = 0
		if p.n == 0 {
			return "", false
		}
	}
	k := p.buf[p.pos]
	p.pos++
	return k, true
}

// ValuePuller is Puller's value-aware sibling: per-message consumption
// of (key, payload) pairs through a prefetch slab, filled via
// NextBatchValues (so generators without recorded values yield the
// constant 1). The key sequence is exactly the generator's.
type ValuePuller struct {
	gen    Generator
	keys   []string
	vals   []int64
	pos, n int
}

// NewValuePuller returns a ValuePuller with the given prefetch slab
// size.
func NewValuePuller(gen Generator, slab int) *ValuePuller {
	if slab <= 0 {
		slab = 256
	}
	return &ValuePuller{gen: gen, keys: make([]string, slab), vals: make([]int64, slab)}
}

// Next returns the next message's key and payload value.
func (p *ValuePuller) Next() (string, int64, bool) {
	if p.pos == p.n {
		p.n = NextBatchValues(p.gen, p.keys, p.vals)
		p.pos = 0
		if p.n == 0 {
			return "", 0, false
		}
	}
	k, v := p.keys[p.pos], p.vals[p.pos]
	p.pos++
	return k, v, true
}
