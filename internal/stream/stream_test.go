package stream

import (
	"testing"
	"testing/quick"
)

func TestCollect(t *testing.T) {
	g := FromSlice([]string{"a", "b", "a", "a", "c"})
	s := Collect(g)
	if s.Messages != 5 || s.Keys != 3 || s.TopKey != "a" || s.P1 != 0.6 {
		t.Fatalf("Collect = %+v", s)
	}
	// Collect must leave the generator rewound.
	if k, ok := g.Next(); !ok || k != "a" {
		t.Fatalf("generator not reset after Collect: %q %v", k, ok)
	}
}

func TestCollectEmpty(t *testing.T) {
	s := Collect(FromSlice(nil))
	if s.Messages != 0 || s.Keys != 0 || s.P1 != 0 {
		t.Fatalf("Collect(empty) = %+v", s)
	}
}

func TestCollectTieBreaksByKey(t *testing.T) {
	s := Collect(FromSlice([]string{"b", "a"}))
	if s.TopKey != "a" {
		t.Fatalf("TopKey = %q, want deterministic tie-break to %q", s.TopKey, "a")
	}
}

func TestSliceGenerator(t *testing.T) {
	g := FromSlice([]string{"x", "y"})
	if g.Len() != 2 {
		t.Fatalf("Len = %d", g.Len())
	}
	var got []string
	for {
		k, ok := g.Next()
		if !ok {
			break
		}
		got = append(got, k)
	}
	if len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Fatalf("drained %v", got)
	}
	if _, ok := g.Next(); ok {
		t.Fatal("Next after exhaustion returned ok")
	}
	g.Reset()
	if k, ok := g.Next(); !ok || k != "x" {
		t.Fatal("Reset did not rewind")
	}
}

func TestLimit(t *testing.T) {
	g := NewLimit(FromSlice([]string{"a", "b", "c", "d"}), 2)
	if g.Len() != 2 {
		t.Fatalf("Len = %d, want 2", g.Len())
	}
	n := 0
	for {
		if _, ok := g.Next(); !ok {
			break
		}
		n++
	}
	if n != 2 {
		t.Fatalf("emitted %d, want 2", n)
	}
	g.Reset()
	if _, ok := g.Next(); !ok {
		t.Fatal("Reset did not rewind Limit")
	}
}

func TestLimitLongerThanStream(t *testing.T) {
	g := NewLimit(FromSlice([]string{"a"}), 10)
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
	g.Next()
	if _, ok := g.Next(); ok {
		t.Fatal("Limit emitted past the underlying stream")
	}
}

func TestCollectCountsProperty(t *testing.T) {
	prop := func(raw []uint8) bool {
		keys := make([]string, len(raw))
		for i, b := range raw {
			keys[i] = string(rune('a' + b%5))
		}
		s := Collect(FromSlice(keys))
		return s.Messages == int64(len(keys)) && s.P1 >= 0 && s.P1 <= 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
