package stream

import (
	"testing"
	"testing/quick"
)

func TestCollect(t *testing.T) {
	g := FromSlice([]string{"a", "b", "a", "a", "c"})
	s := Collect(g)
	if s.Messages != 5 || s.Keys != 3 || s.TopKey != "a" || s.P1 != 0.6 {
		t.Fatalf("Collect = %+v", s)
	}
	// Collect must leave the generator rewound.
	if k, ok := g.Next(); !ok || k != "a" {
		t.Fatalf("generator not reset after Collect: %q %v", k, ok)
	}
}

func TestCollectEmpty(t *testing.T) {
	s := Collect(FromSlice(nil))
	if s.Messages != 0 || s.Keys != 0 || s.P1 != 0 {
		t.Fatalf("Collect(empty) = %+v", s)
	}
}

func TestCollectTieBreaksByKey(t *testing.T) {
	s := Collect(FromSlice([]string{"b", "a"}))
	if s.TopKey != "a" {
		t.Fatalf("TopKey = %q, want deterministic tie-break to %q", s.TopKey, "a")
	}
}

func TestSliceGenerator(t *testing.T) {
	g := FromSlice([]string{"x", "y"})
	if g.Len() != 2 {
		t.Fatalf("Len = %d", g.Len())
	}
	var got []string
	for {
		k, ok := g.Next()
		if !ok {
			break
		}
		got = append(got, k)
	}
	if len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Fatalf("drained %v", got)
	}
	if _, ok := g.Next(); ok {
		t.Fatal("Next after exhaustion returned ok")
	}
	g.Reset()
	if k, ok := g.Next(); !ok || k != "x" {
		t.Fatal("Reset did not rewind")
	}
}

func TestLimit(t *testing.T) {
	g := NewLimit(FromSlice([]string{"a", "b", "c", "d"}), 2)
	if g.Len() != 2 {
		t.Fatalf("Len = %d, want 2", g.Len())
	}
	n := 0
	for {
		if _, ok := g.Next(); !ok {
			break
		}
		n++
	}
	if n != 2 {
		t.Fatalf("emitted %d, want 2", n)
	}
	g.Reset()
	if _, ok := g.Next(); !ok {
		t.Fatal("Reset did not rewind Limit")
	}
}

func TestLimitLongerThanStream(t *testing.T) {
	g := NewLimit(FromSlice([]string{"a"}), 10)
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
	g.Next()
	if _, ok := g.Next(); ok {
		t.Fatal("Limit emitted past the underlying stream")
	}
}

func TestCollectCountsProperty(t *testing.T) {
	prop := func(raw []uint8) bool {
		keys := make([]string, len(raw))
		for i, b := range raw {
			keys[i] = string(rune('a' + b%5))
		}
		s := Collect(FromSlice(keys))
		return s.Messages == int64(len(keys)) && s.P1 >= 0 && s.P1 <= 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// onlyNext hides the batch method of an inner generator, forcing the
// NextBatch helper onto its per-message fallback.
type onlyNext struct{ g Generator }

func (o onlyNext) Next() (string, bool) { return o.g.Next() }
func (o onlyNext) Len() int64           { return o.g.Len() }
func (o onlyNext) Reset()               { o.g.Reset() }

func TestNextBatchMatchesNext(t *testing.T) {
	keys := []string{"a", "b", "a", "c", "d", "a", "e"}
	mk := []struct {
		name string
		gen  func() Generator
	}{
		{"slice", func() Generator { return FromSlice(keys) }},
		{"limit", func() Generator { return NewLimit(FromSlice(keys), 5) }},
		{"fallback", func() Generator { return onlyNext{FromSlice(keys)} }},
	}
	for _, tc := range mk {
		for _, bs := range []int{1, 2, 3, 100} {
			seq := tc.gen()
			bat := tc.gen()
			var want []string
			for {
				k, ok := seq.Next()
				if !ok {
					break
				}
				want = append(want, k)
			}
			var got []string
			buf := make([]string, bs)
			for {
				n := NextBatch(bat, buf)
				if n == 0 {
					break
				}
				got = append(got, buf[:n]...)
			}
			if len(got) != len(want) {
				t.Fatalf("%s bs=%d: batch emitted %d keys, want %d", tc.name, bs, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s bs=%d: key %d = %q, want %q", tc.name, bs, i, got[i], want[i])
				}
			}
		}
	}
}
