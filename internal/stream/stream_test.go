package stream

import (
	"testing"
	"testing/quick"
)

func TestCollect(t *testing.T) {
	g := FromSlice([]string{"a", "b", "a", "a", "c"})
	s := Collect(g)
	if s.Messages != 5 || s.Keys != 3 || s.TopKey != "a" || s.P1 != 0.6 {
		t.Fatalf("Collect = %+v", s)
	}
	// Collect must leave the generator rewound.
	if k, ok := g.Next(); !ok || k != "a" {
		t.Fatalf("generator not reset after Collect: %q %v", k, ok)
	}
}

func TestCollectEmpty(t *testing.T) {
	s := Collect(FromSlice(nil))
	if s.Messages != 0 || s.Keys != 0 || s.P1 != 0 {
		t.Fatalf("Collect(empty) = %+v", s)
	}
}

func TestCollectTieBreaksByKey(t *testing.T) {
	s := Collect(FromSlice([]string{"b", "a"}))
	if s.TopKey != "a" {
		t.Fatalf("TopKey = %q, want deterministic tie-break to %q", s.TopKey, "a")
	}
}

func TestSliceGenerator(t *testing.T) {
	g := FromSlice([]string{"x", "y"})
	if g.Len() != 2 {
		t.Fatalf("Len = %d", g.Len())
	}
	var got []string
	for {
		k, ok := g.Next()
		if !ok {
			break
		}
		got = append(got, k)
	}
	if len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Fatalf("drained %v", got)
	}
	if _, ok := g.Next(); ok {
		t.Fatal("Next after exhaustion returned ok")
	}
	g.Reset()
	if k, ok := g.Next(); !ok || k != "x" {
		t.Fatal("Reset did not rewind")
	}
}

func TestLimit(t *testing.T) {
	g := NewLimit(FromSlice([]string{"a", "b", "c", "d"}), 2)
	if g.Len() != 2 {
		t.Fatalf("Len = %d, want 2", g.Len())
	}
	n := 0
	for {
		if _, ok := g.Next(); !ok {
			break
		}
		n++
	}
	if n != 2 {
		t.Fatalf("emitted %d, want 2", n)
	}
	g.Reset()
	if _, ok := g.Next(); !ok {
		t.Fatal("Reset did not rewind Limit")
	}
}

func TestLimitLongerThanStream(t *testing.T) {
	g := NewLimit(FromSlice([]string{"a"}), 10)
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
	g.Next()
	if _, ok := g.Next(); ok {
		t.Fatal("Limit emitted past the underlying stream")
	}
}

func TestCollectCountsProperty(t *testing.T) {
	prop := func(raw []uint8) bool {
		keys := make([]string, len(raw))
		for i, b := range raw {
			keys[i] = string(rune('a' + b%5))
		}
		s := Collect(FromSlice(keys))
		return s.Messages == int64(len(keys)) && s.P1 >= 0 && s.P1 <= 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// onlyNext hides the batch method of an inner generator, forcing the
// NextBatch helper onto its per-message fallback.
type onlyNext struct{ g Generator }

func (o onlyNext) Next() (string, bool) { return o.g.Next() }
func (o onlyNext) Len() int64           { return o.g.Len() }
func (o onlyNext) Reset()               { o.g.Reset() }

func TestNextBatchMatchesNext(t *testing.T) {
	keys := []string{"a", "b", "a", "c", "d", "a", "e"}
	mk := []struct {
		name string
		gen  func() Generator
	}{
		{"slice", func() Generator { return FromSlice(keys) }},
		{"limit", func() Generator { return NewLimit(FromSlice(keys), 5) }},
		{"fallback", func() Generator { return onlyNext{FromSlice(keys)} }},
	}
	for _, tc := range mk {
		for _, bs := range []int{1, 2, 3, 100} {
			seq := tc.gen()
			bat := tc.gen()
			var want []string
			for {
				k, ok := seq.Next()
				if !ok {
					break
				}
				want = append(want, k)
			}
			var got []string
			buf := make([]string, bs)
			for {
				n := NextBatch(bat, buf)
				if n == 0 {
					break
				}
				got = append(got, buf[:n]...)
			}
			if len(got) != len(want) {
				t.Fatalf("%s bs=%d: batch emitted %d keys, want %d", tc.name, bs, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s bs=%d: key %d = %q, want %q", tc.name, bs, i, got[i], want[i])
				}
			}
		}
	}
}

func TestWithValuesDerivesPerMessage(t *testing.T) {
	fn := func(key string, seq int64) int64 { return int64(len(key))*100 + seq }
	g := WithValues(FromSlice([]string{"a", "bb", "a", "ccc"}), fn)
	if !g.HasValues() || Values(g) == nil {
		t.Fatal("WithValues must report recorded values")
	}
	keys := make([]string, 3)
	vals := make([]int64, 3)
	var gotK []string
	var gotV []int64
	for {
		n := g.NextBatchValues(keys, vals)
		if n == 0 {
			break
		}
		gotK = append(gotK, keys[:n]...)
		gotV = append(gotV, vals[:n]...)
	}
	wantK := []string{"a", "bb", "a", "ccc"}
	wantV := []int64{100, 201, 102, 303}
	for i := range wantK {
		if gotK[i] != wantK[i] || gotV[i] != wantV[i] {
			t.Fatalf("message %d = (%q, %d), want (%q, %d)", i, gotK[i], gotV[i], wantK[i], wantV[i])
		}
	}
	// Reset rewinds the derived sequence too.
	g.Reset()
	if n := g.NextBatchValues(keys, vals); n == 0 || vals[0] != 100 {
		t.Fatalf("after Reset first value = %d, want 100", vals[0])
	}
	// Mixed consumption: keys pulled through Next advance seq so later
	// batch pulls stay aligned.
	g.Reset()
	if k, ok := g.Next(); !ok || k != "a" {
		t.Fatalf("Next = %q", k)
	}
	if n := g.NextBatchValues(keys, vals); n == 0 || vals[0] != 201 {
		t.Fatalf("value after one Next = %d, want 201", vals[0])
	}
}

func TestNextBatchValuesFallback(t *testing.T) {
	// A plain Generator has no recorded values: the helper fills the
	// constant 1 and Values() reports nil (so engines keep key+seq or
	// count semantics).
	g := FromSlice([]string{"x", "y", "z"})
	if Values(g) != nil {
		t.Fatal("plain generator must not report values")
	}
	keys := make([]string, 8)
	vals := make([]int64, 8)
	if n := NextBatchValues(g, keys, vals); n != 3 {
		t.Fatalf("filled %d", n)
	}
	for i := 0; i < 3; i++ {
		if vals[i] != 1 {
			t.Fatalf("value %d = %d, want 1", i, vals[i])
		}
	}
}

func TestValuePullerMatchesBatch(t *testing.T) {
	fn := func(key string, seq int64) int64 { return seq * seq }
	mk := func() ValueBatchGenerator {
		keys := make([]string, 100)
		for i := range keys {
			keys[i] = string(rune('a' + i%7))
		}
		return WithValues(FromSlice(keys), fn)
	}
	p := NewValuePuller(mk(), 16)
	ref := mk()
	keys := make([]string, 100)
	vals := make([]int64, 100)
	n := ref.NextBatchValues(keys, vals)
	for i := 0; i < n; i++ {
		k, v, ok := p.Next()
		if !ok {
			t.Fatalf("puller ended early at %d", i)
		}
		if k != keys[i] || v != vals[i] {
			t.Fatalf("message %d = (%q, %d), want (%q, %d)", i, k, v, keys[i], vals[i])
		}
	}
	if _, _, ok := p.Next(); ok {
		t.Fatal("puller overran the stream")
	}
}
