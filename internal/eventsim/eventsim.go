// Package eventsim is a deterministic discrete-event simulation of the
// paper's cluster experiment (Section V, Q4): s sources emit a keyed
// stream through a partitioner to n workers, each worker is a FIFO queue
// with a fixed per-message service time (1 ms in the paper), and sources
// are closed-loop with a bounded in-flight window (Storm's max spout
// pending). Throughput and latency are queueing outcomes: the most
// loaded worker saturates first, its queue absorbs the in-flight window,
// and end-to-end latency and total throughput degrade exactly as in the
// paper's Figures 13 and 14.
//
// With Config.AggWindow set, the two-phase aggregation's REDUCE STAGE
// is a set of modeled service stations, not free bookkeeping: the
// stage is sharded Config.AggShards ways by key digest
// (aggregation.ShardFor over the carried KeyDigest, so a key's
// partials always meet at one shard), each flushed partial costs the
// flushing worker Config.AggFlushCost (serialize and emit) and then
// occupies ITS shard's station for Config.AggMergeCost of service,
// through that shard's bounded FIFO queue (Config.AggQueueLen) that
// exerts backpressure — a worker whose flush finds the shard queue
// full blocks until that shard drains. Reducer saturation therefore
// propagates to end-to-end throughput and latency exactly as a
// saturated worker does — and moves with R: the stage's capacity is
// AggShards/AggMergeCost partials per ms, so sharding relocates the
// saturation point the D/W-Choices balance-vs-replication trade-off is
// priced against. Result.ReducerUtil reports the most-loaded shard's
// utilization (ReducerUtilMean the average, ReducerShardUtil each) and
// Result.ReducerPeakQueue the largest per-shard backlog.
//
// Values merged per (window, key) are pluggable: Config.AggMerger
// selects the operator (count by default; sum/min/max/distinct built
// in) and each message's merged sample is resolved by the sampling
// contract — the Config.AggValue hook, else the generator's recorded
// payload values (stream.ValueBatchGenerator, e.g. a version-2
// tracefile replay), else the constant 1.
//
// Workers flush on watermark progress, not only on their own traffic:
// when the global emission sequence enters a new window, idle workers
// are ticked to flush their closed windows immediately (and busy
// workers flush when they drain), so window-close latency follows
// stream progress rather than end-of-stream. Per-worker arrival order
// equals emission order here, so a tick flush is always complete —
// it never fragments a window's partial.
//
// Unlike the goroutine runtime in internal/dspe, results here are
// bit-reproducible and independent of host speed, which makes this the
// default engine for regenerating the paper's numbers.
package eventsim

import (
	"container/heap"
	"fmt"

	"slb/internal/aggregation"
	"slb/internal/core"
	"slb/internal/hashing"
	"slb/internal/metrics"
	"slb/internal/stream"
	"slb/internal/telemetry"
)

// Config describes one simulated deployment. Times are in milliseconds.
type Config struct {
	// Workers is n (the paper uses 80 on the cluster).
	Workers int
	// Sources is s (the paper uses 48).
	Sources int
	// Algorithm is the partitioner name (core.Names).
	Algorithm string
	// Core carries seed/θ/ε; Workers is filled in from this config.
	Core core.Config
	// ServiceTime is the fixed per-message processing cost at a worker
	// (the paper adds a 1 ms delay). Must be positive.
	ServiceTime float64
	// EmitInterval is the time between consecutive emissions of one
	// source while its window has room; it models the source's own
	// processing cost. 0 means ServiceTime/20 (sources well faster than
	// workers, so workers saturate first, as in the paper).
	EmitInterval float64
	// Window is the per-source in-flight cap (max spout pending);
	// 0 means 100.
	Window int
	// Messages caps the number of emitted messages; 0 means the
	// generator's full length.
	Messages int64
	// SlowFactor optionally multiplies the service time of individual
	// workers (failure injection: stragglers). nil means homogeneous.
	SlowFactor map[int]float64
	// MeasureAfter excludes the first MeasureAfter completed messages
	// from throughput and latency statistics, measuring steady state
	// only (the paper averages over long runs, hiding the sketch warmup
	// transient). 0 measures everything.
	MeasureAfter int64
	// AggWindow, when positive, models the two-phase windowed
	// aggregation: window ids derive from the emission index (window =
	// index / AggWindow), workers keep digest-keyed partial counts per
	// window (internal/aggregation) and pay AggFlushCost of service time
	// per partial when a window closes at them; the reducer merges
	// partials off the critical path and its traffic, merge work and
	// memory are reported in Result.Agg. Everything is event-driven, so
	// the overhead numbers are deterministic and host-independent.
	AggWindow int64
	// AggFlushCost is the worker time (ms) to serialize and emit ONE
	// partial at window close — the knob that turns replication into a
	// throughput cost. 0 means ServiceTime/10.
	AggFlushCost float64
	// AggMergeCost is a reducer shard's service time (ms) to merge ONE
	// partial into its window table. Each shard is a FIFO service
	// station, so an aggregate partial arrival rate above
	// AggShards/AggMergeCost saturates the stage. 0 means AggFlushCost/4
	// (a merge is a table probe, cheaper than serializing).
	AggMergeCost float64
	// AggQueueLen is EACH reducer shard's input queue capacity in
	// partials. A worker flushing into a full shard queue blocks until
	// that shard drains (backpressure), which is how reducer saturation
	// reaches end-to-end throughput. 0 means 4096.
	AggQueueLen int
	// AggShards is R, the number of parallel reducer stations the reduce
	// stage is sharded into by key digest (aggregation.ShardFor). Window
	// close stays completeness-based PER SHARD: each shard's slice of a
	// window closes the instant the shard has merged every message the
	// sources emitted into it (per-shard thresholds are counted at
	// routing, on the already-computed digest). 0 means 1 (the single
	// reducer of the unsharded model).
	AggShards int
	// LinkDelay, when positive, models the worker→reducer hop as a
	// synchronous remote link: every flushed partial pays this one-way
	// delay (ms) between serialization and admission to its shard's
	// station, on the flushing worker's clock — the cost profile of a
	// per-partial remote admission, exactly what internal/transport's
	// frame coalescing exists to avoid. The charge rides the existing
	// closed-form station recurrence (admitOne at a later arrival time),
	// so the model stays event-free and exact. 0 disables the delay
	// model entirely; such runs are bit-identical to builds without it.
	LinkDelay float64
	// LinkJitter is the per-hop jitter amplitude (ms): each hop adds a
	// deterministic hash-derived fraction of it (uniform over [0, 1) in
	// (worker, shard, hop index)), so repeated runs are bit-identical.
	// Only meaningful with LinkDelay > 0.
	LinkJitter float64
	// LinkSlowOneIn, when positive, gives roughly one in N hops a rare
	// slow-path transition (a retransmit, a GC pause on the path)
	// costing LinkSlowPenalty extra ms, selected by the same
	// deterministic per-hop hash.
	LinkSlowOneIn int
	// LinkSlowPenalty is the slow-path extra delay (ms); 0 with
	// LinkSlowOneIn > 0 means 10× (LinkDelay + LinkJitter).
	LinkSlowPenalty float64
	// LinkOutagePeriod, when positive, gives every worker→reducer link a
	// periodic outage: once per this many ms the link goes dark for
	// LinkOutageDuration ms, with a deterministic per-link phase so
	// links fail staggered rather than in lockstep. A partial whose
	// arrival lands inside the dark window is lost and retransmitted
	// when the link recovers — charged as a deferred arrival inside the
	// closed-form station recurrence, the simulation-side cost profile
	// of internal/transport's reconnect-and-resend episode. Result
	// reports the retransmission count and total outage wait. Works with
	// or without LinkDelay; 0 disables outages.
	LinkOutagePeriod float64
	// LinkOutageDuration is the dark time per outage cycle (ms); 0 with
	// LinkOutagePeriod > 0 means a tenth of the period.
	LinkOutageDuration float64
	// AggMerger selects the merge operator applied per (window, key):
	// aggregation.CountMerger (the default, nil), SumMerger, MinMerger,
	// MaxMerger, DistinctMerger, or any custom Merger.
	AggMerger aggregation.Merger
	// AggValue derives the 64-bit sample the merger observes for each
	// message: the addend for sum, the comparand for min/max, the
	// element for distinct. seq is the message's global emission index.
	// nil falls back to the generator's recorded payload values when it
	// carries any (stream.ValueBatchGenerator — e.g. a version-2
	// tracefile replay), and to the constant 1 (so sum ≡ count)
	// otherwise.
	AggValue func(key string, seq int64) int64
	// OnFinal, when set (and AggWindow > 0), receives every merged final
	// the reducer emits, in deterministic order.
	OnFinal func(aggregation.Final)
	// Telemetry, when non-nil, receives the run's live metric series:
	// per-spout routing activity, emitted/completed counts, per-worker
	// queue depths, reducer-shard busy time and occupancy, and simulated
	// backpressure stalls. Durations are SIMULATED time stored as ns, so
	// the series are deterministic. Series names are listed in
	// internal/eventsim/telemetry.go and the slb package doc
	// (§ Telemetry). The simulation's results are identical with and
	// without a registry.
	Telemetry *telemetry.Registry
}

func (c Config) withDefaults() (Config, error) {
	if c.Workers <= 0 || c.Sources <= 0 {
		return c, fmt.Errorf("eventsim: Workers and Sources must be positive")
	}
	if c.ServiceTime <= 0 {
		return c, fmt.Errorf("eventsim: ServiceTime must be positive")
	}
	if c.EmitInterval <= 0 {
		c.EmitInterval = c.ServiceTime / 20
	}
	if c.Window <= 0 {
		c.Window = 100
	}
	if c.AggWindow > 0 {
		if c.AggFlushCost <= 0 {
			c.AggFlushCost = c.ServiceTime / 10
		}
		if c.AggMergeCost <= 0 {
			c.AggMergeCost = c.AggFlushCost / 4
		}
		if c.AggQueueLen <= 0 {
			c.AggQueueLen = 4096
		}
		if c.AggShards <= 0 {
			c.AggShards = 1
		}
		if c.LinkSlowOneIn > 0 && c.LinkSlowPenalty <= 0 {
			c.LinkSlowPenalty = 10 * (c.LinkDelay + c.LinkJitter)
		}
		if c.LinkOutagePeriod > 0 && c.LinkOutageDuration <= 0 {
			c.LinkOutageDuration = c.LinkOutagePeriod / 10
		}
	}
	c.Core.Workers = c.Workers
	return c, nil
}

// Result reports the simulated deployment's performance.
type Result struct {
	Algorithm string
	// Completed is the number of messages fully processed.
	Completed int64
	// Duration is the simulated makespan in ms.
	Duration float64
	// Throughput is completed messages per simulated second.
	Throughput float64
	// MaxAvgLatency is the maximum over workers of the per-worker mean
	// latency (ms): the "max avg" bar of Fig. 14.
	MaxAvgLatency float64
	// P50, P95, P99 are latency percentiles across all messages (ms).
	P50, P95, P99 float64
	// Loads is the per-worker processed-message count.
	Loads []int64
	// Imbalance is the load imbalance I(m) of the run.
	Imbalance float64
	// PeakQueue is the largest backlog observed at any single worker.
	PeakQueue int
	// Agg reports the reducer-side aggregation cost (zero unless
	// Config.AggWindow was set).
	Agg aggregation.ReducerStats
	// AggReplication is the measured state replication factor: distinct
	// (window, key, worker) triples per distinct (window, key) pair.
	AggReplication float64
	// AggTotal is the sum of all final counts; with aggregation enabled
	// it equals Completed (window close is exact).
	AggTotal int64
	// ReducerUtil is the MOST LOADED reducer shard's utilization: its
	// merge service time over the simulated makespan (including the
	// end-of-stream drain). Near 1 means that shard is saturated and
	// throughput is reducer-bound; sharding (Config.AggShards) spreads
	// the load and moves this down. 0 when aggregation is off.
	ReducerUtil float64
	// ReducerUtilMean is the mean utilization across the reducer shards
	// (equal to ReducerUtil when AggShards == 1). The max/mean gap
	// measures how evenly the digest sharding spread the merge load.
	ReducerUtilMean float64
	// ReducerShardUtil is each reducer shard's utilization, indexed by
	// shard. nil when aggregation is off.
	ReducerShardUtil []float64
	// ReducerPeakQueue is the largest backlog (unmerged partials,
	// including the one in service) any single reducer shard ever held.
	ReducerPeakQueue int
	// LinkRetransmits is how many partials arrived into a link outage
	// window and had to be retransmitted after the link recovered. 0
	// unless Config.LinkOutagePeriod was set.
	LinkRetransmits int64
	// LinkOutageWaitMs is the total extra arrival delay (ms) those
	// retransmissions cost across all links.
	LinkOutageWaitMs float64
}

// Event kinds.
const (
	evEmit = iota // a source attempts to emit its next message
	evDone        // a worker finishes its current message
)

type event struct {
	t    float64
	seq  int64 // tie-breaker for determinism
	kind int8
	idx  int32 // source index (evEmit) or worker index (evDone)
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

type pendingMsg struct {
	emitTime float64
	src      int32
	// Aggregation fields (populated only when Config.AggWindow > 0).
	window int64
	dig    hashing.KeyDigest
	val    int64 // the merger's sample (see Config.AggValue)
	key    string
}

// worker is one FIFO service station.
type worker struct {
	queue []pendingMsg
	head  int
	busy  bool
	lat   *metrics.Quantiles
	count int64
	sum   float64 // latency sum for exact mean
	// Aggregation state: the worker's partial tables and the simulated
	// time before which it cannot start its next service (window-close
	// flush cost).
	acc     *aggregation.Accumulator
	readyAt float64
}

// reducerStation models ONE reducer shard as a deterministic FIFO
// server: each admitted partial occupies it for mergeCost, the input
// queue holds at most cap partials (counting the one in service), and
// a producer admitting into a full queue waits for the server to
// drain. Because service is deterministic and FIFO, the whole station
// reduces to a closed-form recurrence over busyUntil — no events
// needed — while remaining exact. The sharded reduce stage is just R
// of these, one per digest shard.
type reducerStation struct {
	mergeCost float64
	headroom  float64 // (cap−1)·mergeCost: admission waits while backlog ≥ cap
	busyUntil float64 // sim time at which every admitted partial is merged
	busy      float64 // total merge service admitted (ms)
	peak      int     // backlog high-water mark in partials
}

func newReducerStation(mergeCost float64, queueLen int) reducerStation {
	return reducerStation{mergeCost: mergeCost, headroom: float64(queueLen-1) * mergeCost}
}

// admitOne hands the station one partial that became ready at time t
// (already serialized by the flushing worker): the producer blocks
// while the station's queue is full, then enqueues. It returns the
// time the producer is released — t, or later if backpressure stalled
// it. Per-partial admission is what lets one worker's flush interleave
// partials across several shard stations in serialization order.
func (r *reducerStation) admitOne(t float64) float64 {
	if wait := r.busyUntil - r.headroom; wait > t {
		t = wait // queue full: block until a slot drains
	}
	start := t
	if r.busyUntil > start {
		start = r.busyUntil
	}
	r.busyUntil = start + r.mergeCost
	r.busy += r.mergeCost
	if backlog := int((r.busyUntil-t)/r.mergeCost + 0.5); backlog > r.peak {
		r.peak = backlog
	}
	return t
}

func (w *worker) push(m pendingMsg) { w.queue = append(w.queue, m) }
func (w *worker) pop() pendingMsg   { m := w.queue[w.head]; w.head++; w.compact(); return m }
func (w *worker) backlog() int      { return len(w.queue) - w.head }
func (w *worker) compact() {
	if w.head > 1024 && w.head*2 >= len(w.queue) {
		n := copy(w.queue, w.queue[w.head:])
		w.queue = w.queue[:n]
		w.head = 0
	}
}

// Run simulates the deployment until the generator (or Messages cap) is
// exhausted and every in-flight message is processed.
func Run(gen stream.Generator, cfg Config) (Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	parts := make([]core.Partitioner, cfg.Sources)
	for i := range parts {
		srcCfg := cfg.Core
		srcCfg.Instance = i
		p, err := core.New(cfg.Algorithm, srcCfg)
		if err != nil {
			return Result{}, err
		}
		parts[i] = p
	}

	gen.Reset()
	limit := gen.Len()
	if cfg.Messages > 0 && cfg.Messages < limit {
		limit = cfg.Messages
	}
	tel := newSimTelemetry(cfg, parts)
	// The event loop consumes one message per emit event, but pulls them
	// through a prefetch slab so the generator's batch emission path is
	// driven; the key sequence is identical to per-message Next. The
	// value-aware puller also carries each message's recorded payload
	// (constant 1 for generators without one — see the sampling
	// contract on Config.AggValue).
	keys := stream.NewValuePuller(gen, 512)
	genVals := stream.Values(gen) != nil

	workers := make([]*worker, cfg.Workers)
	for i := range workers {
		workers[i] = &worker{lat: metrics.NewQuantiles(1 << 15)}
		if cfg.AggWindow > 0 {
			workers[i].acc = aggregation.NewAccumulatorMerger(i, cfg.AggMerger)
		}
	}

	// Aggregation reduce stage: AggShards modeled service stations (see
	// reducerStation), one per digest shard, behind a ShardedDriver that
	// preserves the completeness-based window close per shard. The
	// merged CONTENT is folded in immediately — counters and window
	// close points are simulated-time-independent — but the merge COST
	// occupies each shard station's clock, and a full shard queue blocks
	// the flushing worker.
	var (
		drv      *aggregation.ShardedDriver
		aggBuf   []aggregation.Partial
		stations []reducerStation
		links    *linkDelays
	)
	if cfg.AggWindow > 0 {
		drv = aggregation.NewShardedDriver(cfg.Workers, cfg.AggShards, cfg.AggWindow, limit, cfg.AggMerger)
		tel.observeReduce(drv)
		stations = make([]reducerStation, cfg.AggShards)
		for r := range stations {
			stations[r] = newReducerStation(cfg.AggMergeCost, cfg.AggQueueLen)
		}
		links = newLinkDelays(cfg)
	}
	// flushWorker drains worker w's windows below `before` into the
	// reduce stage at simulated time `now` and returns the time the
	// worker is released: it serializes one partial every AggFlushCost,
	// pays the (w, shard) link's hop delay when the delay model is on,
	// and admits each partial into ITS digest shard's station, absorbing
	// any backpressure stall while that shard's queue is full. The link
	// delay is charged as a later arrival inside the station recurrence,
	// so the whole hop stays closed-form and event-free.
	flushWorker := func(w int, wk *worker, now float64, before int64) float64 {
		aggBuf = wk.acc.FlushBefore(before, aggBuf[:0])
		drv.Merge(aggBuf, cfg.OnFinal)
		t := now
		for i := range aggBuf {
			t += cfg.AggFlushCost // serialize partial i at the worker
			r := aggregation.ShardFor(aggBuf[i].Digest, cfg.AggShards)
			if links != nil {
				t = stations[r].admitOne(links.deliver(w, r, t))
			} else {
				t = stations[r].admitOne(t)
			}
			tel.noteAdmit(r, cfg.AggMergeCost, stations[r].peak)
		}
		// Anything beyond pure serialization time is admission stall:
		// the worker was blocked on a full shard queue (backpressure) or,
		// with the delay model on, waiting out the wire.
		tel.noteFlush(t - now - cfg.AggFlushCost*float64(len(aggBuf)))
		return t
	}
	svc := func(w int) float64 {
		t := cfg.ServiceTime
		if f, ok := cfg.SlowFactor[w]; ok {
			t *= f
		}
		return t
	}

	inflight := make([]int, cfg.Sources)
	blocked := make([]bool, cfg.Sources)
	pooled := metrics.NewQuantiles(1 << 16)

	var (
		h            eventHeap
		seq          int64
		emitted      int64
		completed    int64
		now          float64
		lastDone     float64
		measureStart float64
		peakQueue    int
		announced    = int64(-1 << 62) // highest window id emission has entered
	)
	// tickIdle is the watermark tick for workers with no traffic: when
	// the global emission sequence enters a new window, every idle
	// worker flushes its closed windows immediately instead of at end of
	// stream (busy workers flush on their own watermark advance or when
	// they drain — see evDone). Per-worker arrival order here equals
	// emission order, so an idle worker provably holds every message it
	// will ever get for windows < announced: the tick flush is complete,
	// never a fragment. The flush cost still lands on the worker's clock
	// (readyAt), exactly as a traffic-driven flush would.
	tickIdle := func() {
		for i, wk := range workers {
			if wk.busy || wk.acc.OpenWindows() == 0 {
				continue
			}
			start := now
			if wk.readyAt > start {
				start = wk.readyAt
			}
			if t := flushWorker(i, wk, start, announced); t > wk.readyAt {
				wk.readyAt = t
			}
		}
	}
	schedule := func(t float64, kind int8, idx int32) {
		seq++
		heap.Push(&h, event{t: t, seq: seq, kind: kind, idx: idx})
	}
	for s := 0; s < cfg.Sources; s++ {
		// Stagger source start times to avoid a synchronized burst.
		schedule(float64(s)*cfg.EmitInterval/float64(cfg.Sources), evEmit, int32(s))
	}

	for h.Len() > 0 {
		e := heap.Pop(&h).(event)
		now = e.t
		switch e.kind {
		case evEmit:
			s := int(e.idx)
			if emitted >= limit {
				break // stream exhausted; source retires
			}
			if inflight[s] >= cfg.Window {
				blocked[s] = true
				break // resumes on next ack
			}
			key, genVal, ok := keys.Next()
			if !ok {
				break
			}
			pm := pendingMsg{emitTime: now, src: e.idx}
			var w int
			if cfg.AggWindow > 0 {
				// Hash-once: the key's single byte scan happens here, and
				// the digest both routes the message, picks its reducer
				// shard, and travels with it into the worker's partial
				// tables.
				dg := hashing.Digest(key)
				pm.window = emitted / cfg.AggWindow
				pm.dig = dg
				pm.key = key
				// Sampling contract: AggValue hook > recorded generator
				// values > constant 1 (see Config.AggValue).
				pm.val = 1
				if cfg.AggValue != nil {
					pm.val = cfg.AggValue(key, emitted)
				} else if genVals {
					pm.val = genVal
				}
				// Count the emission toward its shard's completeness
				// threshold (no-op when AggShards == 1), and tick idle
				// workers when the stream enters a new window.
				drv.ObserveEmit(emitted, dg)
				if pm.window > announced {
					announced = pm.window
					tickIdle()
				}
				w = core.RouteDigest(parts[s], dg, key)
			} else {
				// No digest consumer downstream: let the partitioner digest
				// (or, for SG, skip the key bytes entirely).
				w = parts[s].Route(key)
			}
			emitted++
			inflight[s]++
			wk := workers[w]
			// The queue head is the in-service message while busy.
			wk.push(pm)
			if b := wk.backlog(); b > peakQueue {
				peakQueue = b
				tel.notePeakQueue(peakQueue)
			}
			tel.noteEmit(s, w, wk.backlog(), now)
			if !wk.busy {
				wk.busy = true
				start := now
				if wk.readyAt > start {
					start = wk.readyAt
				}
				schedule(start+svc(w), evDone, int32(w))
			}
			schedule(now+cfg.EmitInterval, evEmit, e.idx)
		case evDone:
			w := int(e.idx)
			wk := workers[w]
			m := wk.pop()
			completed++
			tel.noteDone(w, wk.backlog(), now)
			if completed == cfg.MeasureAfter {
				measureStart = now
			}
			if completed > cfg.MeasureAfter {
				lat := now - m.emitTime
				wk.lat.Add(lat)
				wk.count++
				wk.sum += lat
				pooled.Add(lat)
				lastDone = now
			}
			if cfg.AggWindow > 0 {
				// Two-phase aggregation: fold the message into its window's
				// partial table; when the watermark advances (one window of
				// slack, matching internal/dspe), flush — the worker is
				// released only once its last partial is serialized AND
				// admitted into its reducer shard's bounded queue.
				if wm, ok := wk.acc.Watermark(); ok && m.window > wm {
					if t := flushWorker(w, wk, now, m.window-1); t > now {
						wk.readyAt = t
					}
				}
				wk.acc.AddSample(m.window, m.dig, m.key, 1, m.val)
			}
			// Ack frees the source's window slot.
			s := int(m.src)
			inflight[s]--
			if blocked[s] {
				blocked[s] = false
				schedule(now, evEmit, m.src)
			}
			if wk.backlog() > 0 {
				start := now
				if wk.readyAt > start {
					start = wk.readyAt
				}
				schedule(start+svc(w), evDone, e.idx)
			} else {
				wk.busy = false
				// Watermark tick, deferred: a worker that was busy when the
				// stream entered a new window flushes its closed windows the
				// moment it drains (it now provably holds its complete share
				// of every window < announced), instead of waiting for its
				// own next tuple — which for a trickle worker never comes.
				if cfg.AggWindow > 0 && wk.acc.OpenWindows() > 0 {
					start := now
					if wk.readyAt > start {
						start = wk.readyAt
					}
					if t := flushWorker(w, wk, start, announced); t > wk.readyAt {
						wk.readyAt = t
					}
				}
			}
		}
	}

	tel.flushRoutes()
	res := Result{
		Algorithm: cfg.Algorithm,
		Completed: completed,
		Duration:  lastDone - measureStart,
		Loads:     make([]int64, cfg.Workers),
		PeakQueue: peakQueue,
		P50:       pooled.Quantile(0.50),
		P95:       pooled.Quantile(0.95),
		P99:       pooled.Quantile(0.99),
	}
	if cfg.AggWindow > 0 {
		// End of stream: every worker flushes its remaining windows
		// (completeness-based closing means nothing closes early while
		// another worker still holds part of a window), then the driver
		// closes any remainder. The drain still occupies the shard
		// stations' clocks, so the utilization denominator extends to
		// the last shard's finish.
		for i, wk := range workers {
			start := now
			if wk.readyAt > start {
				start = wk.readyAt
			}
			flushWorker(i, wk, start, 1<<62)
		}
		drv.Finish(cfg.OnFinal)
		res.Agg = drv.Stats()
		res.AggReplication = drv.Replication()
		res.AggTotal = drv.Total()
		makespan := now
		for r := range stations {
			if stations[r].busyUntil > makespan {
				makespan = stations[r].busyUntil
			}
		}
		res.ReducerShardUtil = make([]float64, len(stations))
		if makespan > 0 {
			for r := range stations {
				u := stations[r].busy / makespan
				res.ReducerShardUtil[r] = u
				res.ReducerUtilMean += u / float64(len(stations))
				if u > res.ReducerUtil {
					res.ReducerUtil = u
				}
			}
		}
		for r := range stations {
			if stations[r].peak > res.ReducerPeakQueue {
				res.ReducerPeakQueue = stations[r].peak
			}
		}
		if links != nil {
			res.LinkRetransmits = links.retransmits
			res.LinkOutageWaitMs = links.outageWait
		}
	}
	for i, wk := range workers {
		res.Loads[i] = wk.count
		if wk.count > 0 {
			if avg := wk.sum / float64(wk.count); avg > res.MaxAvgLatency {
				res.MaxAvgLatency = avg
			}
		}
	}
	res.Imbalance = metrics.Imbalance(res.Loads)
	if measured := completed - cfg.MeasureAfter; measured > 0 && res.Duration > 0 {
		res.Throughput = float64(measured) / (res.Duration / 1000)
	}
	gen.Reset()
	return res, nil
}
