package eventsim

import (
	"math"
	"testing"

	"slb/internal/core"
	"slb/internal/stream"
	"slb/internal/workload"
)

func zipfGen(z float64, keys int, m int64) stream.Generator {
	return workload.NewZipf(z, keys, m, 23)
}

func baseCfg(algo string, n, s int) Config {
	return Config{
		Workers:     n,
		Sources:     s,
		Algorithm:   algo,
		Core:        core.Config{Seed: 7},
		ServiceTime: 1.0, // 1 ms, as in the paper
		Window:      50,
		Messages:    20000,
	}
}

func TestRunCompletesAllMessages(t *testing.T) {
	res, err := Run(zipfGen(1.0, 500, 20000), baseCfg("SG", 8, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 20000 {
		t.Fatalf("completed %d, want 20000", res.Completed)
	}
	var sum int64
	for _, l := range res.Loads {
		sum += l
	}
	if sum != res.Completed {
		t.Fatalf("loads sum %d != completed %d", sum, res.Completed)
	}
	if res.Duration <= 0 || res.Throughput <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(zipfGen(1, 10, 10), Config{Workers: 0, Sources: 1, Algorithm: "SG", ServiceTime: 1}); err == nil {
		t.Fatal("expected error for Workers=0")
	}
	if _, err := Run(zipfGen(1, 10, 10), Config{Workers: 1, Sources: 1, Algorithm: "SG"}); err == nil {
		t.Fatal("expected error for ServiceTime=0")
	}
	if _, err := Run(zipfGen(1, 10, 10), baseCfg("BOGUS", 2, 1)); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := Run(zipfGen(1.5, 300, 10000), baseCfg("PKG", 10, 5))
	b, _ := Run(zipfGen(1.5, 300, 10000), baseCfg("PKG", 10, 5))
	if a.Duration != b.Duration || a.P99 != b.P99 || a.Throughput != b.Throughput {
		t.Fatalf("simulation not deterministic: %+v vs %+v", a, b)
	}
}

func TestSaturatedBalancedThroughputNearCapacity(t *testing.T) {
	// Balanced SG with saturating sources: throughput ≈ n / serviceTime.
	cfg := baseCfg("SG", 8, 8)
	res, _ := Run(zipfGen(0.5, 500, 20000), cfg)
	capacity := float64(cfg.Workers) / cfg.ServiceTime * 1000 // msg/s
	if res.Throughput < 0.8*capacity {
		t.Fatalf("SG throughput %f below 80%% of capacity %f", res.Throughput, capacity)
	}
}

func TestKGThroughputCollapsesUnderSkew(t *testing.T) {
	// z=2.0: p1 ≈ 0.6 of messages hit one worker under KG; the system
	// cannot run faster than ≈ (1/p1) per service time.
	kg, _ := Run(zipfGen(2.0, 1000, 20000), baseCfg("KG", 8, 4))
	sg, _ := Run(zipfGen(2.0, 1000, 20000), baseCfg("SG", 8, 4))
	if kg.Throughput > 0.45*sg.Throughput {
		t.Fatalf("KG %f should be far below SG %f under extreme skew", kg.Throughput, sg.Throughput)
	}
}

func TestFig13OrderingAtHighSkew(t *testing.T) {
	// Paper Fig 13 (z=2.0): KG < PKG < D-C ≈ W-C ≈ SG.
	gen := func() stream.Generator { return zipfGen(2.0, 1000, 30000) }
	n, s := 16, 8
	results := map[string]float64{}
	for _, algo := range []string{"KG", "PKG", "D-C", "W-C", "SG"} {
		cfg := baseCfg(algo, n, s)
		cfg.Messages = 30000
		cfg.MeasureAfter = 8000 // steady state, past the sketch warmup
		r, err := Run(gen(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		results[algo] = r.Throughput
	}
	if !(results["KG"] < results["PKG"]) {
		t.Errorf("KG (%f) should trail PKG (%f)", results["KG"], results["PKG"])
	}
	if !(results["PKG"] < results["D-C"]) {
		t.Errorf("PKG (%f) should trail D-C (%f)", results["PKG"], results["D-C"])
	}
	for _, algo := range []string{"D-C", "W-C"} {
		if results[algo] < 0.85*results["SG"] {
			t.Errorf("%s throughput %f should be close to SG %f", algo, results[algo], results["SG"])
		}
	}
}

func TestFig14LatencyOrderingAtHighSkew(t *testing.T) {
	// Paper Fig 14 (z=2.0): KG worst, PKG better, D-C/W-C near SG. PKG's
	// position is hash luck per seed — when the hot key's two candidates
	// coincide, PKG degenerates to KG and both sit at the closed-loop
	// latency cap — so the ordering is required to hold for a majority of
	// seeds rather than at a single one.
	gen := func() stream.Generator { return zipfGen(2.0, 1000, 30000) }
	n, s := 16, 8
	okKGPKG, okPKGWC := 0, 0
	seeds := []uint64{5, 7, 11}
	for _, seed := range seeds {
		p99 := map[string]float64{}
		for _, algo := range []string{"KG", "PKG", "W-C", "SG"} {
			cfg := baseCfg(algo, n, s)
			cfg.Core.Seed = seed
			cfg.Messages = 30000
			cfg.MeasureAfter = 8000 // steady state, past the sketch warmup
			r, err := Run(gen(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			p99[algo] = r.P99
		}
		if p99["KG"] > p99["PKG"] {
			okKGPKG++
		}
		if p99["PKG"] > p99["W-C"] {
			okPKGWC++
		}
		if p99["W-C"] > 4*p99["SG"] {
			t.Errorf("seed %d: W-C p99 (%f) should be within a few× of SG (%f)", seed, p99["W-C"], p99["SG"])
		}
	}
	if okKGPKG < 2 {
		t.Errorf("KG p99 should exceed PKG for most seeds; held for %d/%d", okKGPKG, len(seeds))
	}
	if okPKGWC < 2 {
		t.Errorf("PKG p99 should exceed W-C for most seeds; held for %d/%d", okPKGWC, len(seeds))
	}
}

func TestLatencyAboveServiceTime(t *testing.T) {
	res, _ := Run(zipfGen(1.0, 100, 5000), baseCfg("SG", 4, 2))
	if res.P50 < 1.0 {
		t.Fatalf("p50 latency %f below the 1 ms service time", res.P50)
	}
	if res.MaxAvgLatency < 1.0 {
		t.Fatalf("max-avg latency %f below service time", res.MaxAvgLatency)
	}
	if res.P99 < res.P50 || res.P95 < res.P50 {
		t.Fatal("latency percentiles out of order")
	}
}

func TestWindowBoundsQueue(t *testing.T) {
	cfg := baseCfg("KG", 4, 4)
	cfg.Window = 10
	res, _ := Run(zipfGen(2.0, 100, 5000), cfg)
	// Total in-flight ≤ sources × window; one queue can hold at most that.
	if res.PeakQueue > cfg.Sources*cfg.Window {
		t.Fatalf("peak queue %d exceeds global window %d", res.PeakQueue, cfg.Sources*cfg.Window)
	}
}

func TestSlowWorkerInjection(t *testing.T) {
	// A straggler 10× slower drags throughput down for every scheme in
	// the paper: their load estimate counts messages *sent*, not service
	// completed, so none of them routes around slow hardware.
	healthy, _ := Run(zipfGen(0.5, 200, 10000), baseCfg("SG", 4, 2))
	for _, algo := range []string{"SG", "PKG"} {
		cfg := baseCfg(algo, 4, 2)
		cfg.SlowFactor = map[int]float64{0: 10}
		degraded, _ := Run(zipfGen(0.5, 200, 10000), cfg)
		if degraded.Throughput > 0.8*healthy.Throughput {
			t.Errorf("%s: straggler had no effect: %f vs healthy %f",
				algo, degraded.Throughput, healthy.Throughput)
		}
		if degraded.P99 < healthy.P99 {
			t.Errorf("%s: straggler should raise p99 (%f vs %f)", algo, degraded.P99, healthy.P99)
		}
	}
}

func TestMessagesCap(t *testing.T) {
	cfg := baseCfg("SG", 4, 2)
	cfg.Messages = 1234
	res, _ := Run(zipfGen(1.0, 100, 100000), cfg)
	if res.Completed != 1234 {
		t.Fatalf("completed %d, want capped 1234", res.Completed)
	}
}

func TestImbalanceConsistentWithLoads(t *testing.T) {
	res, _ := Run(zipfGen(2.0, 500, 10000), baseCfg("KG", 8, 4))
	if math.Abs(res.Imbalance) < 1e-9 {
		t.Fatal("KG under extreme skew should show imbalance")
	}
}

// TestAggregationDeterministic: two aggregation-enabled runs produce
// bit-identical overhead numbers (the point of modeling aggregation in
// the discrete-event engine).
func TestAggregationDeterministic(t *testing.T) {
	run := func() Result {
		cfg := baseCfg("D-C", 8, 4)
		cfg.AggWindow = 2_000
		res, err := Run(zipfGen(1.6, 500, 20000), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Agg != b.Agg || a.AggReplication != b.AggReplication || a.AggTotal != b.AggTotal ||
		a.Throughput != b.Throughput || a.Duration != b.Duration ||
		a.ReducerUtil != b.ReducerUtil || a.ReducerPeakQueue != b.ReducerPeakQueue {
		t.Fatalf("aggregation run not deterministic:\n%+v\n%+v", a, b)
	}
	if a.ReducerUtil <= 0 || a.ReducerUtil > 1 {
		t.Fatalf("reducer utilization %f outside (0, 1]", a.ReducerUtil)
	}
}

// TestAggregationExactAndOrdered: every completed message is counted
// exactly once; KG's state replication is exactly 1 and W-C's is the
// largest; the flush cost shows up as a throughput delta that grows
// with replication.
func TestAggregationExactAndOrdered(t *testing.T) {
	const m = 20000
	type row struct {
		repl     float64
		partials int64
		thr      float64
	}
	rows := make(map[string]row)
	for _, algo := range []string{"KG", "PKG", "W-C"} {
		cfg := baseCfg(algo, 8, 4)
		cfg.AggWindow = 2_000
		res, err := Run(zipfGen(2.0, 500, m), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Completed != m {
			t.Fatalf("%s: completed %d of %d", algo, res.Completed, m)
		}
		if res.AggTotal != res.Completed {
			t.Fatalf("%s: finals sum to %d, completed %d", algo, res.AggTotal, res.Completed)
		}
		if res.Agg.WindowsClosed < m/2_000 {
			t.Fatalf("%s: closed %d windows", algo, res.Agg.WindowsClosed)
		}
		rows[algo] = row{repl: res.AggReplication, partials: res.Agg.Partials, thr: res.Throughput}
	}
	if rows["KG"].repl != 1 {
		t.Fatalf("KG replication = %f, want exactly 1", rows["KG"].repl)
	}
	if !(rows["W-C"].repl > rows["PKG"].repl && rows["PKG"].repl > 1) {
		t.Fatalf("replication ordering violated: PKG %f, W-C %f", rows["PKG"].repl, rows["W-C"].repl)
	}
	if !(rows["W-C"].partials > rows["KG"].partials) {
		t.Fatalf("partials ordering violated: KG %d, W-C %d", rows["KG"].partials, rows["W-C"].partials)
	}
}

// TestAggregationFlushCostSlowsHotWorker: with a huge flush cost, an
// aggregation-enabled run takes longer than the same run without
// aggregation — the overhead is on the simulated clock, not just in
// counters.
func TestAggregationFlushCostSlowsHotWorker(t *testing.T) {
	base := baseCfg("PKG", 8, 4)
	plain, err := Run(zipfGen(1.4, 500, 20000), base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.AggWindow = 1_000
	cfg.AggFlushCost = 1.0 // one full service time per partial
	agg, err := Run(zipfGen(1.4, 500, 20000), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !(agg.Duration > plain.Duration) {
		t.Fatalf("aggregation did not cost simulated time: plain %f ms, agg %f ms",
			plain.Duration, agg.Duration)
	}
	if !(agg.Throughput < plain.Throughput) {
		t.Fatalf("aggregation did not cost throughput: plain %f, agg %f",
			plain.Throughput, agg.Throughput)
	}
}

// TestAggregationSmallWindowsNoLates pins the completeness-based close:
// even with windows far smaller than the in-flight span (AggWindow=100
// vs Sources×Window=800, where a message stuck behind the hot worker's
// queue is overtaken by thousands of newer seqs), no window closes
// early — zero late corrections, exactly one Final per (window, key).
func TestAggregationSmallWindowsNoLates(t *testing.T) {
	const m = 20000
	for _, algo := range []string{"KG", "D-C"} {
		cfg := baseCfg(algo, 16, 8)
		cfg.Window = 100
		cfg.AggWindow = 100
		res, err := Run(zipfGen(1.4, 500, m), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Agg.Late != 0 {
			t.Fatalf("%s: %d late corrections, want 0 (completeness close)", algo, res.Agg.Late)
		}
		if res.Agg.WindowsClosed != m/100 {
			t.Fatalf("%s: closed %d windows, want exactly %d (no re-closes)", algo, res.Agg.WindowsClosed, m/100)
		}
		if res.AggTotal != res.Completed {
			t.Fatalf("%s: finals sum %d, completed %d", algo, res.AggTotal, res.Completed)
		}
	}
}
