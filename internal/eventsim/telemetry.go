package eventsim

// telemetry.go bridges one simulation run into a telemetry.Registry
// (Config.Telemetry). The event loop is single-threaded; all hooks
// write through the registry's atomics, so a snapshot goroutine (the
// soak harness's interval ticker) reads a consistent view mid-run
// without any coordination with the simulation. Durations published
// here are SIMULATED time (the simulation's ms clock, stored as ns),
// not wall clock — deterministic for a given seed and config.
//
// Series registered per run (labels: engine=eventsim, algo, plus
// spout/worker/shard where noted):
//
//	route_*                  per spout — see core.NewRouteRecorder;
//	                         published every routeFlushEvery messages,
//	                         route_ns_total stays 0 (routing cost is
//	                         not part of the simulated model)
//	sim_emitted_total        messages emitted
//	sim_completed_total      messages fully processed
//	sim_clock_ns             current simulated time
//	queue_depth              per worker gauge, in queued messages
//	sim_peak_queue           largest backlog any worker ever held
//	flush_stall_ns_total     simulated time workers spent blocked
//	                         admitting partials into full reducer-shard
//	                         queues (backpressure)
//	reduce_busy_ns_total     per shard: simulated merge service admitted
//	reduce_queue_peak        per shard gauge: backlog high-water mark
//	reduce_open_windows      per shard gauge: open windows
//	reduce_live_entries      per shard gauge: live (window, key) rows
//	reduce_live_replicas     per shard gauge: live replica bitsets
//
// All methods are no-ops on a nil receiver.

import (
	"strconv"

	"slb/internal/aggregation"
	"slb/internal/core"
	"slb/internal/telemetry"
)

// routeFlushEvery is how many routed messages accumulate per source
// before the RouteRecorder publishes their deltas: eventsim routes one
// message per emit event, so per-message publishing would pay ~13
// atomic adds per message; amortizing over 256 keeps the loop's cost
// profile intact.
const routeFlushEvery = 256

type simTelemetry struct {
	reg  *telemetry.Registry
	base []telemetry.Label

	parts       []core.Partitioner
	recs        []*core.RouteRecorder
	routedSince []int

	emitted    *telemetry.Counter
	completed  *telemetry.Counter
	flushStall *telemetry.Counter
	clock      *telemetry.Gauge
	peakQueue  *telemetry.Gauge
	queueDepth []*telemetry.Gauge   // per worker
	reduceBusy []*telemetry.Counter // per shard
	reducePeak []*telemetry.Gauge   // per shard
}

// newSimTelemetry registers the run's series; nil when cfg.Telemetry is
// nil. cfg must have defaults applied.
func newSimTelemetry(cfg Config, parts []core.Partitioner) *simTelemetry {
	reg := cfg.Telemetry
	if reg == nil {
		return nil
	}
	tel := &simTelemetry{
		reg: reg,
		base: []telemetry.Label{
			telemetry.L("engine", "eventsim"),
			telemetry.L("algo", cfg.Algorithm),
		},
		parts:       parts,
		recs:        make([]*core.RouteRecorder, len(parts)),
		routedSince: make([]int, len(parts)),
	}
	for s := range parts {
		tel.recs[s] = core.NewRouteRecorder(reg, tel.with("spout", s)...)
	}
	tel.emitted = reg.Counter("sim_emitted_total", tel.base...)
	tel.completed = reg.Counter("sim_completed_total", tel.base...)
	tel.clock = reg.Gauge("sim_clock_ns", tel.base...)
	tel.peakQueue = reg.Gauge("sim_peak_queue", tel.base...)
	tel.queueDepth = make([]*telemetry.Gauge, cfg.Workers)
	for w := range tel.queueDepth {
		tel.queueDepth[w] = reg.Gauge("queue_depth", tel.with("worker", w)...)
	}
	if cfg.AggWindow > 0 {
		tel.flushStall = reg.Counter("flush_stall_ns_total", tel.base...)
		tel.reduceBusy = make([]*telemetry.Counter, cfg.AggShards)
		tel.reducePeak = make([]*telemetry.Gauge, cfg.AggShards)
		for r := range tel.reduceBusy {
			ls := tel.with("shard", r)
			tel.reduceBusy[r] = reg.Counter("reduce_busy_ns_total", ls...)
			tel.reducePeak[r] = reg.Gauge("reduce_queue_peak", ls...)
		}
	}
	return tel
}

func (tel *simTelemetry) with(key string, idx int) []telemetry.Label {
	ls := make([]telemetry.Label, 0, len(tel.base)+1)
	ls = append(ls, tel.base...)
	return append(ls, telemetry.L(key, strconv.Itoa(idx)))
}

// simNS converts the simulation's ms clock to integer nanoseconds.
func simNS(ms float64) int64 { return int64(ms * 1e6) }

// noteEmit records one emitted message routed by source s and the
// destination worker's resulting backlog.
func (tel *simTelemetry) noteEmit(s, w, backlog int, now float64) {
	if tel == nil {
		return
	}
	tel.emitted.Inc()
	tel.queueDepth[w].SetInt(int64(backlog))
	tel.clock.SetInt(simNS(now))
	tel.routedSince[s]++
	if tel.routedSince[s] >= routeFlushEvery {
		tel.recs[s].RecordBatch(tel.parts[s], tel.routedSince[s], 0)
		tel.routedSince[s] = 0
	}
}

// noteDone records one completed message and the worker's remaining
// backlog.
func (tel *simTelemetry) noteDone(w, backlog int, now float64) {
	if tel == nil {
		return
	}
	tel.completed.Inc()
	tel.queueDepth[w].SetInt(int64(backlog))
	tel.clock.SetInt(simNS(now))
}

func (tel *simTelemetry) notePeakQueue(peak int) {
	if tel != nil {
		tel.peakQueue.SetInt(int64(peak))
	}
}

// noteFlush records one worker flush: the simulated backpressure stall
// (release time beyond serialization) and each shard's admitted merge
// service.
func (tel *simTelemetry) noteFlush(stallMS float64) {
	if tel != nil && stallMS > 0 {
		tel.flushStall.Add(simNS(stallMS))
	}
}

func (tel *simTelemetry) noteAdmit(shard int, mergeCostMS float64, peak int) {
	if tel == nil {
		return
	}
	tel.reduceBusy[shard].Add(simNS(mergeCostMS))
	tel.reducePeak[shard].SetInt(int64(peak))
}

// flushRoutes publishes any remaining per-source routing deltas (end of
// stream).
func (tel *simTelemetry) flushRoutes() {
	if tel == nil {
		return
	}
	for s := range tel.recs {
		if tel.routedSince[s] > 0 {
			tel.recs[s].RecordBatch(tel.parts[s], tel.routedSince[s], 0)
			tel.routedSince[s] = 0
		}
	}
}

// observeReduce registers the per-shard reducer occupancy gauges over
// the run's driver.
func (tel *simTelemetry) observeReduce(sd *aggregation.ShardedDriver) {
	if tel == nil || sd == nil {
		return
	}
	for r := 0; r < sd.Shards(); r++ {
		r := r
		ls := tel.with("shard", r)
		tel.reg.GaugeFunc("reduce_open_windows", func() float64 { return float64(sd.LiveWindowsShard(r)) }, ls...)
		tel.reg.GaugeFunc("reduce_live_entries", func() float64 { return float64(sd.LiveEntriesShard(r)) }, ls...)
		tel.reg.GaugeFunc("reduce_live_replicas", func() float64 { return float64(sd.LiveReplicasShard(r)) }, ls...)
	}
}
