package eventsim

import "testing"

// aggCfg is the stress configuration of the acceptance criterion:
// small windows (many partials per message) and a high per-partial
// flush cost (merge cost follows at flush/4), at a load that keeps the
// workers themselves comfortable.
func aggCfg(algo string) Config {
	cfg := baseCfg(algo, 16, 8)
	cfg.Messages = 20000
	cfg.AggWindow = 100
	cfg.AggFlushCost = 2.0 // merge = 0.5 ms/partial
	return cfg
}

// TestReducerSaturationWChoices pins the point of modeling the reducer
// as a service station: under small windows and a high flush cost,
// W-Choices' replicated partial stream saturates the reducer (util → 1)
// while KG at the same load leaves it mostly idle — and the saturation
// is not free: W-C's end-to-end throughput collapses against the same
// topology without aggregation, far beyond KG's degradation.
func TestReducerSaturationWChoices(t *testing.T) {
	const m = 20000
	wc, err := Run(zipfGen(2.0, 500, m), aggCfg("W-C"))
	if err != nil {
		t.Fatal(err)
	}
	kg, err := Run(zipfGen(2.0, 500, m), aggCfg("KG"))
	if err != nil {
		t.Fatal(err)
	}
	if wc.ReducerUtil < 0.9 {
		t.Errorf("W-C reducer utilization %f, want ≥ 0.9 (saturated)", wc.ReducerUtil)
	}
	if kg.ReducerUtil > 0.5 {
		t.Errorf("KG reducer utilization %f, want < 0.5 (unsaturated at the same load)", kg.ReducerUtil)
	}
	if !(kg.ReducerUtil < wc.ReducerUtil) {
		t.Errorf("utilization ordering violated: KG %f, W-C %f", kg.ReducerUtil, wc.ReducerUtil)
	}
	// Backpressure bound: the backlog never exceeds the queue capacity.
	if cap := 4096; wc.ReducerPeakQueue > cap {
		t.Errorf("W-C reducer backlog %d exceeds queue capacity %d", wc.ReducerPeakQueue, cap)
	}
	// Saturation reaches end-to-end throughput: W-C with aggregation
	// runs at a fraction of W-C without it.
	plainCfg := aggCfg("W-C")
	plainCfg.AggWindow = 0
	plain, err := Run(zipfGen(2.0, 500, m), plainCfg)
	if err != nil {
		t.Fatal(err)
	}
	if wc.Throughput > 0.7*plain.Throughput {
		t.Errorf("reducer saturation did not reach throughput: agg %f vs plain %f",
			wc.Throughput, plain.Throughput)
	}
	// Exactness survives the modeled station: the merge CONTENT is
	// unchanged, only its cost is on the clock.
	if wc.AggTotal != wc.Completed || kg.AggTotal != kg.Completed {
		t.Errorf("finals no longer conserve messages: W-C %d/%d, KG %d/%d",
			wc.AggTotal, wc.Completed, kg.AggTotal, kg.Completed)
	}
}

// TestReducerBackpressureBoundsQueue: shrinking the reducer queue
// cannot increase throughput, and the measured backlog respects the
// configured bound.
func TestReducerBackpressureBoundsQueue(t *testing.T) {
	const m = 20000
	wide := aggCfg("W-C")
	narrow := aggCfg("W-C")
	narrow.AggQueueLen = 64
	w, err := Run(zipfGen(2.0, 500, m), wide)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Run(zipfGen(2.0, 500, m), narrow)
	if err != nil {
		t.Fatal(err)
	}
	if n.ReducerPeakQueue > 64 {
		t.Errorf("narrow queue backlog %d exceeds configured bound 64", n.ReducerPeakQueue)
	}
	if n.Throughput > w.Throughput*1.001 {
		t.Errorf("narrower reducer queue increased throughput: %f vs %f", n.Throughput, w.Throughput)
	}
	if n.AggTotal != n.Completed {
		t.Errorf("narrow queue lost messages: %d of %d", n.AggTotal, n.Completed)
	}
}
