package eventsim

import "testing"

// delayCfg is the reducer-hop configuration the delay model is priced
// on: moderate flush cost and R=4, so with zero delay neither
// algorithm is reducer-bound and the hop delay itself is what moves.
func delayCfg(algo string, delay float64) Config {
	cfg := aggCfg(algo)
	cfg.AggShards = 4
	cfg.LinkDelay = delay
	cfg.LinkJitter = delay / 4
	cfg.LinkSlowOneIn = 512
	return cfg
}

// TestLinkDelayDeterministic pins the model's reproducibility contract:
// identical configs give bit-identical results (the jitter and
// slow-path choices are hash-derived, not random), and LinkDelay = 0
// is exactly the delay-free model.
func TestLinkDelayDeterministic(t *testing.T) {
	const m = 20000
	a, err := Run(zipfGen(2.0, 500, m), delayCfg("W-C", 0.5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(zipfGen(2.0, 500, m), delayCfg("W-C", 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput != b.Throughput || a.Duration != b.Duration || a.MaxAvgLatency != b.MaxAvgLatency {
		t.Fatalf("repeated delay runs diverged: %+v vs %+v", a, b)
	}
	zero, err := Run(zipfGen(2.0, 500, m), delayCfg("W-C", 0))
	if err != nil {
		t.Fatal(err)
	}
	plain := aggCfg("W-C")
	plain.AggShards = 4
	base, err := Run(zipfGen(2.0, 500, m), plain)
	if err != nil {
		t.Fatal(err)
	}
	if zero.Throughput != base.Throughput || zero.Duration != base.Duration {
		t.Fatalf("LinkDelay=0 is not bit-identical to the delay-free model: %.6f/%.6f vs %.6f/%.6f",
			zero.Throughput, zero.Duration, base.Throughput, base.Duration)
	}
}

// TestLinkDelayReducerHopSensitivity pins the experiment the model
// exists for: the hop delay is paid once per flushed partial, so an
// algorithm's sensitivity to it scales with its replication factor.
// W-Choices (every worker a candidate, maximal replication) must
// degrade strictly more than Key Grouping (replication exactly 1) as
// the link slows, and for both algorithms more delay must never help.
func TestLinkDelayReducerHopSensitivity(t *testing.T) {
	const m = 20000
	degradation := func(algo string) float64 {
		var thr [3]float64
		for i, d := range []float64{0, 0.2, 2} {
			res, err := Run(zipfGen(2.0, 500, m), delayCfg(algo, d))
			if err != nil {
				t.Fatal(err)
			}
			thr[i] = res.Throughput
			if res.AggTotal != m {
				t.Fatalf("%s delay=%v: AggTotal %d, want %d (delay must never drop data)", algo, d, res.AggTotal, m)
			}
		}
		if !(thr[0] >= thr[1] && thr[1] > thr[2]) {
			t.Fatalf("%s: throughput not monotone in link delay: %v", algo, thr)
		}
		return thr[0] / thr[2]
	}
	wc := degradation("W-C")
	kg := degradation("KG")
	if wc <= kg {
		t.Fatalf("W-C degradation %.2fx not above KG's %.2fx: replicated partials must pay the hop delay more often", wc, kg)
	}
	t.Logf("0→2 ms hop delay: W-C loses %.2fx, KG loses %.2fx", wc, kg)
}

// TestLinkOutageWindows pins the outage model: configured outages are
// deterministic (bit-identical repeated runs, including the
// retransmission ledger), actually engage (retransmits > 0), never
// drop data, and only ever cost throughput relative to the same
// config without outages.
func TestLinkOutageWindows(t *testing.T) {
	const m = 20000
	outage := func() Config {
		cfg := delayCfg("W-C", 0.2)
		cfg.LinkOutagePeriod = 50 // every 50 ms each link goes dark ...
		cfg.LinkOutageDuration = 5
		return cfg
	}
	a, err := Run(zipfGen(2.0, 500, m), outage())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(zipfGen(2.0, 500, m), outage())
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput != b.Throughput || a.Duration != b.Duration ||
		a.LinkRetransmits != b.LinkRetransmits || a.LinkOutageWaitMs != b.LinkOutageWaitMs {
		t.Fatalf("repeated outage runs diverged: %+v vs %+v", a, b)
	}
	if a.LinkRetransmits == 0 || a.LinkOutageWaitMs <= 0 {
		t.Fatalf("outage windows never engaged: retransmits=%d wait=%.3f", a.LinkRetransmits, a.LinkOutageWaitMs)
	}
	if a.AggTotal != m {
		t.Fatalf("AggTotal %d, want %d (outages must never drop data)", a.AggTotal, m)
	}
	clean, err := Run(zipfGen(2.0, 500, m), delayCfg("W-C", 0.2))
	if err != nil {
		t.Fatal(err)
	}
	if clean.LinkRetransmits != 0 {
		t.Fatalf("outage-free run reports %d retransmits", clean.LinkRetransmits)
	}
	if a.Throughput > clean.Throughput {
		t.Fatalf("outages improved throughput: %.1f with vs %.1f without", a.Throughput, clean.Throughput)
	}
	// Outages without a hop delay must also work: the model activates
	// on LinkOutagePeriod alone.
	bare := delayCfg("W-C", 0)
	bare.LinkOutagePeriod = 50
	bareRes, err := Run(zipfGen(2.0, 500, m), bare)
	if err != nil {
		t.Fatal(err)
	}
	if bareRes.LinkRetransmits == 0 {
		t.Fatalf("outages without LinkDelay never engaged")
	}
	if bareRes.AggTotal != m {
		t.Fatalf("bare outage run AggTotal %d, want %d", bareRes.AggTotal, m)
	}
}
