package eventsim

import (
	"fmt"
	"math"
	"testing"

	"slb/internal/aggregation"
	"slb/internal/core"
	"slb/internal/stream"
)

// TestWatermarkTicksCloseTrickleWorkerWindows mirrors internal/dspe's
// slow-trickle-bolt test for the discrete-event engine: a worker that
// receives traffic only in window 0 must still flush as the GLOBAL
// stream progresses, so window 0 closes mid-stream instead of at end
// of stream (before the ticks, eventsim's idle workers flushed only at
// end of stream — exact, but pessimistic for window-close latency).
//
// Construction: KG routing with a hand-built stream. One "trickle" key
// appears only in window 0; every other message uses filler keys KG
// routes to other workers, so the trickle worker is idle from window 1
// on. With idle-worker ticks it flushes as soon as the stream enters
// window 1, so window 0's finals appear in the reducer's deterministic
// output order long before the finals of mid-stream windows.
func TestWatermarkTicksCloseTrickleWorkerWindows(t *testing.T) {
	const (
		workers    = 4
		windowSize = 100
		windows    = 30
	)
	probe := core.NewKeyGrouping(core.Config{Workers: workers, Seed: 5})
	var trickleKey string
	var fillers []string
	for i := 0; len(fillers) < 2 || trickleKey == ""; i++ {
		k := fmt.Sprintf("k%c%c", 'a'+i%26, 'a'+(i/26)%26)
		if trickleKey == "" {
			trickleKey = k
			continue
		}
		if probe.Route(k) != probe.Route(trickleKey) && len(fillers) < 2 {
			fillers = append(fillers, k)
		}
	}
	keys := make([]string, 0, windows*windowSize)
	for i := 0; i < windows*windowSize; i++ {
		switch {
		case i < windowSize/2 && i%2 == 0:
			keys = append(keys, trickleKey) // window 0 only
		default:
			keys = append(keys, fillers[i%len(fillers)])
		}
	}

	type seen struct {
		window int64
		key    string
	}
	var order []seen
	res, err := Run(stream.FromSlice(keys), Config{
		Workers:     workers,
		Sources:     2,
		Algorithm:   "KG",
		Core:        core.Config{Seed: 5},
		ServiceTime: 1.0,
		AggWindow:   windowSize,
		OnFinal: func(f aggregation.Final) {
			order = append(order, seen{f.Window, f.Key})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AggTotal != int64(len(keys)) {
		t.Fatalf("finals sum to %d, want %d", res.AggTotal, len(keys))
	}

	trickleAt, midAt := -1, -1
	for i, s := range order {
		if s.window == 0 && s.key == trickleKey && trickleAt < 0 {
			trickleAt = i
		}
		if s.window == windows/2 && midAt < 0 {
			midAt = i
		}
	}
	if trickleAt < 0 {
		t.Fatal("trickle key's window-0 final never emitted")
	}
	if midAt < 0 {
		t.Fatalf("window %d final never emitted", windows/2)
	}
	if trickleAt > midAt {
		t.Errorf("window 0 (trickle worker) closed at output position %d, after mid-stream window %d at position %d: "+
			"idle workers are not flushing on watermark progress", trickleAt, windows/2, midAt)
	}
}

// TestWatermarkTicksNoFragments: in eventsim each worker's arrival
// order equals emission order, so a tick flush is always complete —
// it must never split a (window, key, worker) partial into fragments.
func TestWatermarkTicksNoFragments(t *testing.T) {
	// Heavily skewed traffic: many workers idle most windows. Every
	// (window, key, worker) triple must still produce exactly ONE
	// partial — tick flushes must never fragment a window.
	cfg := aggCfg("W-C")
	res, err := Run(zipfGen(2.0, 500, 20000), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// DigestReplicas counts distinct (window, key, worker) triples; the
	// partial MESSAGE count equals it exactly iff no window's partial
	// was ever split across flushes.
	triples := int64(math.Round(res.AggReplication * float64(res.Agg.Finals)))
	if res.Agg.Partials != triples {
		t.Errorf("partials %d != distinct (window,key,worker) triples %d: tick flushing fragments windows",
			res.Agg.Partials, triples)
	}
	if res.Agg.Late != 0 {
		t.Errorf("late corrections %d, want 0", res.Agg.Late)
	}
}
