package eventsim

import (
	"testing"

	"slb/internal/aggregation"
)

// shardedCfg is the PR-3 saturating configuration (W-Choices, small
// windows, AggFlushCost = 2 ms) with a variable shard count.
func shardedCfg(algo string, shards int) Config {
	cfg := aggCfg(algo)
	cfg.AggShards = shards
	return cfg
}

// TestShardedReducerMovesSaturation pins the point of sharding the
// reduce stage: at the saturating config, R=1's single station runs at
// util ≈ 1 and costs throughput; R=4 pulls the maximum shard
// utilization below 0.9 and recovers at least half of the throughput
// the reducer station was costing (the loss vs the same aggregation
// with an unconstrained reduce stage — the worker-side AggFlushCost
// bill is paid identically at every R and is not the reducer's to
// recover).
func TestShardedReducerMovesSaturation(t *testing.T) {
	const m = 20000
	run := func(shards int, mergeCost float64) Result {
		cfg := shardedCfg("W-C", shards)
		cfg.AggMergeCost = mergeCost
		res, err := Run(zipfGen(2.0, 500, m), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1 := run(1, 0)
	r4 := run(4, 0)
	// The reducer-unconstrained baseline: a merge cost low enough that
	// the station never binds (throughput plateaus below util ≈ 0.4),
	// isolating the loss attributable to reducer saturation. It cannot
	// be driven to ~0: the closed-form station queue is sized in TIME
	// (AggQueueLen × AggMergeCost), so a vanishing merge cost would
	// model a zero-capacity queue, not a free one.
	free := run(1, 0.1)

	if r1.ReducerUtil < 0.9 {
		t.Fatalf("R=1 shard util %.3f, want ≥ 0.9 (the saturating config must saturate)", r1.ReducerUtil)
	}
	if r4.ReducerUtil >= 0.9 {
		t.Errorf("R=4 max shard util %.3f, want < 0.9: sharding must move the saturation point", r4.ReducerUtil)
	}
	if !(r4.ReducerUtilMean <= r4.ReducerUtil) {
		t.Errorf("mean shard util %.3f above max %.3f", r4.ReducerUtilMean, r4.ReducerUtil)
	}
	lost := free.Throughput - r1.Throughput
	recovered := r4.Throughput - r1.Throughput
	if lost <= 0 {
		t.Fatalf("R=1 lost no throughput to the reducer (free %.0f vs R=1 %.0f); config no longer saturates", free.Throughput, r1.Throughput)
	}
	if recovered < 0.5*lost {
		t.Errorf("R=4 recovered %.0f of the %.0f events/s lost to reducer saturation (%.0f%%), want ≥ 50%%",
			recovered, lost, 100*recovered/lost)
	}

	// Sharding changes the reduce stage's topology, not its results:
	// finals conserve messages and the measured replication factor is
	// bit-equal across shard counts.
	for _, res := range []Result{r1, r4} {
		if res.AggTotal != res.Completed {
			t.Errorf("finals sum to %d, completed %d", res.AggTotal, res.Completed)
		}
		if res.Agg.Late != 0 {
			t.Errorf("late corrections %d, want 0 (per-shard completeness close)", res.Agg.Late)
		}
	}
	// (Replication across shard counts is bit-equal only at Sources=1 —
	// with several closed-loop sources, R changes backpressure timing,
	// which changes which source draws which key. The root-level
	// cross-engine parity test pins the Sources=1 equality.)

	// More shards never increase the per-shard peak backlog bound.
	if r4.ReducerPeakQueue > r1.ReducerPeakQueue {
		t.Errorf("R=4 peak shard backlog %d above R=1's %d", r4.ReducerPeakQueue, r1.ReducerPeakQueue)
	}
}

// TestShardedDeterminism: the sharded run is bit-reproducible, like
// everything else in this engine.
func TestShardedDeterminism(t *testing.T) {
	run := func() Result {
		res, err := Run(zipfGen(1.5, 300, 10000), shardedCfg("D-C", 4))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Duration != b.Duration || a.Throughput != b.Throughput ||
		a.ReducerUtil != b.ReducerUtil || a.AggReplication != b.AggReplication {
		t.Fatalf("sharded simulation not deterministic: %+v vs %+v", a, b)
	}
}

// TestShardedMergerSemantics: a non-count merger rides the sharded
// reduce stage end to end — the merged Value follows the operator
// while Count keeps conserving messages.
func TestShardedMergerSemantics(t *testing.T) {
	const m = 10000
	sample := func(key string, seq int64) int64 { return seq % 7 }
	totals := map[string]int64{}
	cfg := shardedCfg("W-C", 4)
	cfg.AggMerger = aggregation.MaxMerger
	cfg.AggValue = sample
	cfg.OnFinal = func(f aggregation.Final) {
		if f.Value > totals[f.Key] {
			totals[f.Key] = f.Value
		}
	}
	res, err := Run(zipfGen(1.8, 200, m), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AggTotal != m {
		t.Fatalf("finals conserve %d of %d messages", res.AggTotal, m)
	}
	// The max over seq%7 for any key seen ≥ 7 times in one window is 6;
	// globally the hottest key certainly is.
	var best int64
	for _, v := range totals {
		if v > best {
			best = v
		}
	}
	if best != 6 {
		t.Errorf("max-merged ceiling %d, want 6", best)
	}
}
