package eventsim

// Validation against closed-form queueing results: configurations where
// the simulator's output is known exactly, so any drift in the event
// engine shows up as a hard failure.

import (
	"math"
	"testing"

	"slb/internal/core"
	"slb/internal/workload"
)

// singleCfg is a D/D/1 station: one source, one worker.
func singleCfg(emitInterval, service float64, m int64) Config {
	return Config{
		Workers:      1,
		Sources:      1,
		Algorithm:    "SG",
		ServiceTime:  service,
		EmitInterval: emitInterval,
		Window:       1 << 20, // effectively unbounded
		Messages:     m,
	}
}

func TestDD1UnderloadedLatencyIsServiceTime(t *testing.T) {
	// Arrivals every 2 ms, service 1 ms: the queue is always empty, so
	// every message's latency is exactly the service time.
	res, err := Run(workload.NewZipf(1, 10, 1000, 1), singleCfg(2, 1, 1000))
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{"p50": res.P50, "p99": res.P99, "max-avg": res.MaxAvgLatency} {
		if math.Abs(v-1) > 1e-9 {
			t.Errorf("%s = %v, want exactly 1 ms", name, v)
		}
	}
	// Throughput equals the arrival rate: 1 per 2 ms = 500/s.
	if math.Abs(res.Throughput-500) > 1 {
		t.Errorf("throughput %f, want 500", res.Throughput)
	}
}

func TestDD1CriticallyLoaded(t *testing.T) {
	// Arrivals every 1 ms, service 1 ms: exactly at capacity. The queue
	// stays at ≤ 1 and throughput equals the service rate.
	res, err := Run(workload.NewZipf(1, 10, 2000, 1), singleCfg(1, 1, 2000))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Throughput-1000) > 2 {
		t.Errorf("throughput %f, want 1000", res.Throughput)
	}
	if res.PeakQueue > 2 {
		t.Errorf("peak queue %d at critical load, want ≤ 2", res.PeakQueue)
	}
}

func TestDD1OverloadedWindowGovernsBacklog(t *testing.T) {
	// Arrivals every 0.1 ms against 1 ms service with window W: the
	// queue grows until the in-flight window binds, then the system is
	// closed-loop: steady-state latency ≈ W × service.
	cfg := singleCfg(0.1, 1, 5000)
	cfg.Window = 50
	cfg.MeasureAfter = 1000
	res, err := Run(workload.NewZipf(1, 10, 5000, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakQueue > 51 {
		t.Errorf("peak queue %d exceeds window", res.PeakQueue)
	}
	if math.Abs(res.P50-50) > 2 {
		t.Errorf("steady-state latency %f, want ≈ window × service = 50 ms", res.P50)
	}
	if math.Abs(res.Throughput-1000) > 5 {
		t.Errorf("saturated throughput %f, want 1000", res.Throughput)
	}
}

func TestBalancedFanOutCapacityScalesWithWorkers(t *testing.T) {
	// k identical workers fed round-robin at saturation: throughput is
	// k × the single-worker rate.
	for _, k := range []int{2, 4, 8} {
		cfg := Config{
			Workers:      k,
			Sources:      2,
			Algorithm:    "SG",
			ServiceTime:  1,
			EmitInterval: 0.01,
			Window:       200,
			Messages:     20000,
			MeasureAfter: 5000,
		}
		res, err := Run(workload.NewZipf(0, 100, 20000, 2), cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(k) * 1000
		if math.Abs(res.Throughput-want)/want > 0.02 {
			t.Errorf("k=%d: throughput %f, want ≈ %f", k, res.Throughput, want)
		}
	}
}

func TestKGHotWorkerThroughputFormula(t *testing.T) {
	// Under KG at saturation, total throughput ≈ serviceRate / p1: the
	// hot worker is the bottleneck and carries fraction p1 of the
	// stream. (z=2.0, |K|=1e4 ⇒ p1 ≈ 0.608.)
	p1 := workload.ZipfProbs(2.0, 10000)[0]
	cfg := Config{
		Workers:      16,
		Sources:      8,
		Algorithm:    "KG",
		Core:         coreSeed(7),
		ServiceTime:  1,
		EmitInterval: 0.05,
		Window:       100,
		Messages:     40000,
		MeasureAfter: 15000,
	}
	res, err := Run(workload.NewZipf(2.0, 10000, 40000, 7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 1000 / p1
	if math.Abs(res.Throughput-want)/want > 0.15 {
		t.Errorf("KG throughput %f, queueing formula predicts ≈ %f", res.Throughput, want)
	}
}

// coreSeed is a tiny helper for test configs.
func coreSeed(s uint64) (c core.Config) {
	c.Seed = s
	return c
}
