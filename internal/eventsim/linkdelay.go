package eventsim

// linkDelays is the deterministic per-link delay model for the
// worker→reducer hop (Config.LinkDelay and friends). Each (worker,
// shard) pair is one link with its own hop counter; a hop's delay is
//
//	base + jitter·u + [slow-path penalty]
//
// where u ∈ [0, 1) and the slow-path choice both derive from a
// splitmix-style hash of (worker, shard, hop index). The same config
// therefore always produces the same delays — the simulation stays
// bit-reproducible — while consecutive hops on one link still see
// uncorrelated jitter and rare slow transitions, like a real path.
type linkDelays struct {
	base    float64
	jitter  float64
	slowIn  uint64 // one in N hops is slow; 0 = never
	penalty float64
	hops    []uint64 // per (worker, shard) hop counters
	shards  int
}

func newLinkDelays(cfg Config) *linkDelays {
	if cfg.LinkDelay <= 0 {
		return nil
	}
	return &linkDelays{
		base:    cfg.LinkDelay,
		jitter:  cfg.LinkJitter,
		slowIn:  uint64(cfg.LinkSlowOneIn),
		penalty: cfg.LinkSlowPenalty,
		hops:    make([]uint64, cfg.Workers*cfg.AggShards),
		shards:  cfg.AggShards,
	}
}

// hop returns the delay of the next hop on link (w, r) and advances
// that link's hop counter. Nil receivers (delay model off) are not
// called — the caller guards, keeping the zero-delay path free.
func (l *linkDelays) hop(w, r int) float64 {
	i := w*l.shards + r
	n := l.hops[i]
	l.hops[i] = n + 1
	x := uint64(i)<<32 ^ n ^ 0x9e3779b97f4a7c15
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	d := l.base
	if l.jitter > 0 {
		d += l.jitter * float64(x>>40) / float64(1<<24)
	}
	if l.slowIn > 0 && x%l.slowIn == 0 {
		d += l.penalty
	}
	return d
}
