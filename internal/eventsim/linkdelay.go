package eventsim

import "math"

// linkDelays is the deterministic per-link delay and outage model for
// the worker→reducer hop (Config.LinkDelay and Config.LinkOutage*).
// Each (worker, shard) pair is one link with its own hop counter; a
// hop's delay is
//
//	base + jitter·u + [slow-path penalty]
//
// where u ∈ [0, 1) and the slow-path choice both derive from a
// splitmix-style hash of (worker, shard, hop index). On top of the
// delay, each link may suffer periodic outage windows: once per
// LinkOutagePeriod the link goes dark for LinkOutageDuration, with a
// per-link hash-derived phase so links fail staggered, not in
// lockstep. A partial whose arrival lands inside an outage window is
// lost and retransmitted when the link recovers — modeled as a
// deferred arrival charged into the reducer station recurrence, the
// cost profile of internal/transport's reconnect-and-resend episode.
// The same config therefore always produces the same delays, outages
// and retransmissions — the simulation stays bit-reproducible — while
// consecutive hops on one link still see uncorrelated jitter and
// staggered outages, like a real path.
type linkDelays struct {
	base    float64
	jitter  float64
	slowIn  uint64 // one in N hops is slow; 0 = never
	penalty float64
	period  float64  // outage cycle length (ms); 0 = no outages
	dur     float64  // dark time per cycle (ms)
	hops    []uint64 // per (worker, shard) hop counters
	shards  int

	// outage ledger, reported on Result
	retransmits int64
	outageWait  float64
}

func newLinkDelays(cfg Config) *linkDelays {
	if cfg.LinkDelay <= 0 && cfg.LinkOutagePeriod <= 0 {
		return nil
	}
	return &linkDelays{
		base:    cfg.LinkDelay,
		jitter:  cfg.LinkJitter,
		slowIn:  uint64(cfg.LinkSlowOneIn),
		penalty: cfg.LinkSlowPenalty,
		period:  cfg.LinkOutagePeriod,
		dur:     cfg.LinkOutageDuration,
		hops:    make([]uint64, cfg.Workers*cfg.AggShards),
		shards:  cfg.AggShards,
	}
}

// hop returns the delay of the next hop on link (w, r) and advances
// that link's hop counter.
func (l *linkDelays) hop(w, r int) float64 {
	i := w*l.shards + r
	n := l.hops[i]
	l.hops[i] = n + 1
	x := uint64(i)<<32 ^ n ^ 0x9e3779b97f4a7c15
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	d := l.base
	if l.jitter > 0 {
		d += l.jitter * float64(x>>40) / float64(1<<24)
	}
	if l.slowIn > 0 && x%l.slowIn == 0 {
		d += l.penalty
	}
	return d
}

// phase returns link i's outage phase offset in [0, period): a
// splitmix-style hash of the link index, so links go dark staggered.
func (l *linkDelays) phase(i int) float64 {
	x := uint64(i)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return l.period * float64(x>>40) / float64(1<<24)
}

// deliver returns the arrival time at shard r's station of a partial
// sent on link (w, r) at time t: the per-hop delay (when the delay
// model is on), plus any outage deferral — an arrival inside the
// link's dark window is a lost frame, retransmitted and re-arriving
// when the link recovers. Nil receivers (model off) are not called.
func (l *linkDelays) deliver(w, r int, t float64) float64 {
	if l.base > 0 {
		t += l.hop(w, r)
	}
	if l.period > 0 {
		pos := math.Mod(t-l.phase(w*l.shards+r), l.period)
		if pos < 0 {
			pos += l.period
		}
		if pos < l.dur {
			wait := l.dur - pos
			l.retransmits++
			l.outageWait += wait
			t += wait
		}
	}
	return t
}
