package eventsim

import (
	"reflect"
	"testing"

	"slb/internal/telemetry"
)

func sumSeries(snap telemetry.Snapshot, name string) (total float64, series int) {
	for _, m := range snap.Metrics {
		if m.Name == name {
			total += m.Value
			series++
		}
	}
	return total, series
}

// TestTelemetryFedBySimulation runs the aggregating simulation with a
// registry attached and checks the published series agree with the
// Result — the counters are simulated-time-deterministic, so equality
// is exact.
func TestTelemetryFedBySimulation(t *testing.T) {
	cfg := baseCfg("W-C", 8, 4)
	cfg.AggWindow = 500
	cfg.AggShards = 2
	// Pin the cost knobs explicitly so the test can predict the exact
	// published busy total (withDefaults would derive them otherwise).
	cfg.AggFlushCost = 0.1
	cfg.AggMergeCost = 0.025
	cfg.Telemetry = telemetry.NewRegistry()
	res, err := Run(zipfGen(1.2, 500, 20000), cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := cfg.Telemetry.Snapshot()

	if v, _ := sumSeries(snap, "sim_emitted_total"); int64(v) != 20000 {
		t.Fatalf("sim_emitted_total = %v, want 20000", v)
	}
	if v, _ := sumSeries(snap, "sim_completed_total"); int64(v) != res.Completed {
		t.Fatalf("sim_completed_total = %v, result completed %d", v, res.Completed)
	}
	if v, n := sumSeries(snap, "route_msgs_total"); int64(v) != 20000 || n != cfg.Sources {
		t.Fatalf("route_msgs_total = %v over %d series, want 20000 over %d", v, n, cfg.Sources)
	}
	if v, _ := sumSeries(snap, "sim_peak_queue"); int(v) != res.PeakQueue {
		t.Fatalf("sim_peak_queue = %v, result has %d", v, res.PeakQueue)
	}
	if _, n := sumSeries(snap, "queue_depth"); n != cfg.Workers {
		t.Fatalf("queue_depth series = %d, want %d", n, cfg.Workers)
	}
	// Every flushed partial is admitted for exactly AggMergeCost of
	// simulated service; the published busy total must equal it.
	wantBusy := float64(res.Agg.Partials * simNS(cfg.AggMergeCost))
	if v, n := sumSeries(snap, "reduce_busy_ns_total"); v != wantBusy || n != cfg.AggShards {
		t.Fatalf("reduce_busy_ns_total = %v over %d series, want %v over %d", v, n, wantBusy, cfg.AggShards)
	}
	if v, _ := sumSeries(snap, "reduce_queue_peak"); int(v) < res.ReducerPeakQueue {
		t.Fatalf("reduce_queue_peak sum %v below result peak %d", v, res.ReducerPeakQueue)
	}
	for _, gauge := range []string{"reduce_open_windows", "reduce_live_entries", "reduce_live_replicas"} {
		v, n := sumSeries(snap, gauge)
		if n != cfg.AggShards {
			t.Fatalf("%s series = %d, want %d", gauge, n, cfg.AggShards)
		}
		if v != 0 {
			t.Fatalf("%s = %v after the run, want 0", gauge, v)
		}
	}
}

// TestTelemetryDoesNotPerturbSimulation pins that attaching a registry
// changes nothing about the simulated outcome: results are bit-equal
// with and without it.
func TestTelemetryDoesNotPerturbSimulation(t *testing.T) {
	mk := func(reg *telemetry.Registry) Result {
		cfg := baseCfg("D-C", 8, 4)
		cfg.AggWindow = 500
		cfg.AggShards = 2
		cfg.Telemetry = reg
		res, err := Run(zipfGen(1.2, 500, 20000), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := mk(nil)
	instr := mk(telemetry.NewRegistry())
	if !reflect.DeepEqual(plain, instr) {
		t.Fatalf("telemetry perturbed the simulation:\nplain %+v\ninstr %+v", plain, instr)
	}
}
