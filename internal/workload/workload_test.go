package workload

import (
	"math"
	"testing"
	"testing/quick"

	"slb/internal/stream"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("RNG not deterministic")
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestAliasMatchesWeights(t *testing.T) {
	weights := []float64{0.5, 0.3, 0.15, 0.05}
	a := NewAlias(weights)
	r := NewRNG(11)
	n := 200000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[a.Sample(r)]++
	}
	for i, w := range weights {
		got := float64(counts[i]) / float64(n)
		if math.Abs(got-w) > 0.01 {
			t.Errorf("slot %d: sampled %f, want %f", i, got, w)
		}
	}
}

func TestAliasUnnormalizedWeights(t *testing.T) {
	a := NewAlias([]float64{2, 2})
	r := NewRNG(3)
	ones := 0
	for i := 0; i < 10000; i++ {
		ones += a.Sample(r)
	}
	if ones < 4500 || ones > 5500 {
		t.Fatalf("uniform 2-slot alias skewed: %d/10000 ones", ones)
	}
}

func TestAliasPanics(t *testing.T) {
	cases := [][]float64{nil, {0, 0}, {1, -1}}
	for _, w := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewAlias(%v) did not panic", w)
				}
			}()
			NewAlias(w)
		}()
	}
}

func TestAliasSingleSlot(t *testing.T) {
	a := NewAlias([]float64{5})
	r := NewRNG(1)
	for i := 0; i < 100; i++ {
		if a.Sample(r) != 0 {
			t.Fatal("single-slot alias returned nonzero")
		}
	}
}

func TestZipfProbsShape(t *testing.T) {
	p := ZipfProbs(1.0, 100)
	sum := 0.0
	for i, v := range p {
		sum += v
		if i > 0 && v > p[i-1] {
			t.Fatalf("probs not non-increasing at %d", i)
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("probs sum to %f", sum)
	}
	// Zipf z=1: p1/p2 = 2.
	if math.Abs(p[0]/p[1]-2) > 1e-9 {
		t.Fatalf("p1/p2 = %f, want 2", p[0]/p[1])
	}
}

func TestZipfProbsUniformAtZeroSkew(t *testing.T) {
	p := ZipfProbs(0, 10)
	for _, v := range p {
		if math.Abs(v-0.1) > 1e-12 {
			t.Fatalf("z=0 not uniform: %v", p)
		}
	}
}

func TestCalibrateZ(t *testing.T) {
	for _, tc := range []struct {
		p1   float64
		keys int
	}{
		{0.0932, 29000}, {0.0267, 31000}, {0.30, 1000}, {0.60, 104},
	} {
		z := CalibrateZ(tc.p1, tc.keys)
		got := ZipfProbs(z, tc.keys)[0]
		if math.Abs(got-tc.p1)/tc.p1 > 0.01 {
			t.Errorf("CalibrateZ(%f,%d)=%f gives p1=%f", tc.p1, tc.keys, z, got)
		}
	}
}

func TestCalibrateZPanics(t *testing.T) {
	for _, f := range []func(){
		func() { CalibrateZ(0.5, 1) },
		func() { CalibrateZ(1.0, 100) },
		func() { CalibrateZ(0.001, 100) }, // below 1/keys
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestZipfGeneratorDeterminismAndReset(t *testing.T) {
	g1 := NewZipf(1.5, 100, 1000, 42)
	g2 := NewZipf(1.5, 100, 1000, 42)
	var seq1, seq2 []string
	for {
		k, ok := g1.Next()
		if !ok {
			break
		}
		seq1 = append(seq1, k)
	}
	for {
		k, ok := g2.Next()
		if !ok {
			break
		}
		seq2 = append(seq2, k)
	}
	if len(seq1) != 1000 || len(seq2) != 1000 {
		t.Fatalf("lengths %d, %d", len(seq1), len(seq2))
	}
	for i := range seq1 {
		if seq1[i] != seq2[i] {
			t.Fatalf("sequences diverge at %d", i)
		}
	}
	g1.Reset()
	k, _ := g1.Next()
	if k != seq1[0] {
		t.Fatal("Reset did not reproduce the sequence")
	}
}

func TestZipfEmpiricalP1(t *testing.T) {
	g := NewZipf(2.0, 1000, 200000, 7)
	s := stream.Collect(g)
	want := ZipfProbs(2.0, 1000)[0]
	if math.Abs(s.P1-want) > 0.01 {
		t.Fatalf("empirical p1 %f, analytic %f", s.P1, want)
	}
	if s.TopKey != "k0" {
		t.Fatalf("hottest key %q, want k0", s.TopKey)
	}
}

func TestZipfNextRankMatchesNext(t *testing.T) {
	a := NewZipf(1.2, 50, 100, 9)
	b := NewZipf(1.2, 50, 100, 9)
	for {
		k, ok1 := a.Next()
		r, ok2 := b.NextRank()
		if ok1 != ok2 {
			t.Fatal("length mismatch")
		}
		if !ok1 {
			break
		}
		if k != b.KeyName(r) {
			t.Fatalf("key %q != rank name %q", k, b.KeyName(r))
		}
	}
}

func TestDriftRotatesHotKey(t *testing.T) {
	// 4 epochs of 1000 messages; hot key must differ between epochs.
	d := NewDrift(2.0, 100, 4000, 1000, 25, 3)
	hot := make(map[int64]string)
	counts := make(map[string]int)
	epoch := int64(0)
	seen := int64(0)
	for {
		k, ok := d.Next()
		if !ok {
			break
		}
		counts[k]++
		seen++
		if seen%1000 == 0 {
			top, topC := "", 0
			for key, c := range counts {
				if c > topC {
					top, topC = key, c
				}
			}
			hot[epoch] = top
			epoch++
			counts = map[string]int{}
		}
	}
	if len(hot) != 4 {
		t.Fatalf("expected 4 epochs, got %d", len(hot))
	}
	for e := int64(1); e < 4; e++ {
		if hot[e] == hot[e-1] {
			t.Errorf("hot key did not drift between epoch %d and %d (%q)", e-1, e, hot[e])
		}
	}
}

func TestDriftResetAndLen(t *testing.T) {
	d := NewDrift(1.0, 50, 500, 100, 10, 5)
	if d.Len() != 500 || d.Epochs() != 5 {
		t.Fatalf("Len=%d Epochs=%d", d.Len(), d.Epochs())
	}
	first, _ := d.Next()
	d.Next()
	d.Reset()
	again, _ := d.Next()
	if first != again {
		t.Fatal("Reset did not rewind drift generator")
	}
}

func TestDatasetStandInsMatchTableI(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset calibration test skipped in -short")
	}
	for _, tc := range []struct {
		name string
		p1   float64
		tol  float64
	}{
		{"WP", WPP1, 0.15},
		{"TW", TWP1, 0.15},
		{"CT", CTP1, 0.35}, // drift makes overall p1 noisier
	} {
		gen, ok := DatasetByName(tc.name, Quick, 1)
		if !ok {
			t.Fatalf("DatasetByName(%q) not found", tc.name)
		}
		s := stream.Collect(gen)
		if s.Messages == 0 || s.Keys == 0 {
			t.Fatalf("%s: empty stand-in", tc.name)
		}
		rel := math.Abs(s.P1-tc.p1) / tc.p1
		if rel > tc.tol {
			t.Errorf("%s: p1=%f, want ≈%f (rel err %.2f)", tc.name, s.P1, tc.p1, rel)
		}
	}
}

func TestDatasetByNameUnknown(t *testing.T) {
	if _, ok := DatasetByName("NOPE", Quick, 1); ok {
		t.Fatal("unknown dataset resolved")
	}
}

func TestAliasDistributionProperty(t *testing.T) {
	// Property: alias table construction conserves probability mass — each
	// slot's prob ∈ [0,1] and every alias index is valid.
	prop := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		w := make([]float64, len(raw))
		total := 0.0
		for i, b := range raw {
			w[i] = float64(b)
			total += w[i]
		}
		if total == 0 {
			return true // NewAlias would panic; separately tested
		}
		a := NewAlias(w)
		for i := range a.prob {
			if a.prob[i] < 0 || a.prob[i] > 1+1e-9 {
				return false
			}
			if a.alias[i] < 0 || int(a.alias[i]) >= len(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkZipfNext(b *testing.B) {
	g := NewZipf(1.5, 100000, int64(b.N)+1, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

func TestNextBatchMatchesNextAcrossGenerators(t *testing.T) {
	mk := []struct {
		name string
		gen  func() stream.Generator
	}{
		{"zipf", func() stream.Generator { return NewZipf(1.6, 500, 4003, 9) }},
		{"drift", func() stream.Generator { return NewDrift(1.6, 500, 4003, 512, 37, 9) }},
	}
	for _, tc := range mk {
		seq := tc.gen()
		bat := tc.gen().(stream.BatchGenerator)
		buf := make([]string, 97) // odd batch size to cross epoch boundaries
		var pos int64
		for {
			n := bat.NextBatch(buf)
			if n == 0 {
				break
			}
			for i := 0; i < n; i++ {
				want, ok := seq.Next()
				if !ok {
					t.Fatalf("%s: sequential stream ended early at %d", tc.name, pos)
				}
				if buf[i] != want {
					t.Fatalf("%s: message %d = %q, want %q", tc.name, pos, buf[i], want)
				}
				pos++
			}
		}
		if _, ok := seq.Next(); ok {
			t.Fatalf("%s: batch stream ended early at %d", tc.name, pos)
		}
	}
}
