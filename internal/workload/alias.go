package workload

// Alias samples from an arbitrary finite discrete distribution in O(1)
// per draw using Vose's alias method. Building the table is O(K).
type Alias struct {
	prob  []float64 // acceptance probability of the home slot
	alias []int32   // fallback slot
}

// NewAlias builds an alias table for the given non-negative weights
// (they need not be normalized). It panics on empty input, a non-positive
// total, or any negative weight.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	if n == 0 {
		panic("workload: NewAlias on empty weights")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("workload: negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("workload: weights sum to zero")
	}

	scaled := make([]float64, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
	}
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, p := range scaled {
		if p < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}

	a := &Alias{prob: make([]float64, n), alias: make([]int32, n)}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Numerical leftovers: both stacks hold slots with p ≈ 1.
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a
}

// Sample draws one index from the distribution using r.
func (a *Alias) Sample(r *RNG) int {
	u := r.Uint64()
	// Split one uint64 into a slot index and an acceptance coin to avoid a
	// second RNG call: high bits pick the slot, low 53 bits the coin.
	i := int(u % uint64(len(a.prob)))
	coin := float64(r.Uint64()>>11) / (1 << 53)
	if coin < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}

// Len returns the support size.
func (a *Alias) Len() int { return len(a.prob) }
