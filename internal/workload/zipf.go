package workload

import (
	"fmt"
	"math"

	"slb/internal/stream"
)

// ZipfProbs returns the probability vector of a Zipf distribution with
// exponent z over finite support {1..keys}: p_i ∝ i^−z, sorted in
// non-increasing order by construction. z = 0 yields the uniform
// distribution.
func ZipfProbs(z float64, keys int) []float64 {
	if keys <= 0 {
		panic("workload: ZipfProbs with non-positive key count")
	}
	p := make([]float64, keys)
	sum := 0.0
	for i := range p {
		p[i] = math.Pow(float64(i+1), -z)
		sum += p[i]
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

// CalibrateZ finds the Zipf exponent whose most-frequent-key probability
// over the given support equals targetP1, by bisection. This is how the
// synthetic stand-ins for the paper's real datasets match the published
// p1 values at a different key-space scale.
func CalibrateZ(targetP1 float64, keys int) float64 {
	if keys <= 1 {
		panic("workload: CalibrateZ needs at least 2 keys")
	}
	if targetP1 <= 1.0/float64(keys) || targetP1 >= 1 {
		panic(fmt.Sprintf("workload: target p1 %g out of range (1/%d, 1)", targetP1, keys))
	}
	p1 := func(z float64) float64 {
		// p1 = 1 / H(z, keys)
		h := 0.0
		for i := 1; i <= keys; i++ {
			h += math.Pow(float64(i), -z)
		}
		return 1 / h
	}
	lo, hi := 0.0, 16.0
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		if p1(mid) < targetP1 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Zipf is a deterministic finite stream of keys drawn i.i.d. from a Zipf
// distribution. It implements stream.Generator. Keys are named by rank:
// rank r (0-based, hottest first) emits key "k<r>".
type Zipf struct {
	probs    []float64
	alias    *Alias
	keys     []string
	messages int64
	seed     uint64
	rng      *RNG
	emitted  int64
}

// NewZipf returns a Zipf generator with exponent z over `keys` distinct
// keys, emitting `messages` keys in total, seeded deterministically.
func NewZipf(z float64, keys int, messages int64, seed uint64) *Zipf {
	probs := ZipfProbs(z, keys)
	return newZipfFromProbs(probs, messages, seed)
}

// NewZipfFromProbs builds a generator over an explicit probability vector
// (hottest first); used by the dataset stand-ins after calibration.
func NewZipfFromProbs(probs []float64, messages int64, seed uint64) *Zipf {
	cp := make([]float64, len(probs))
	copy(cp, probs)
	return newZipfFromProbs(cp, messages, seed)
}

func newZipfFromProbs(probs []float64, messages int64, seed uint64) *Zipf {
	names := make([]string, len(probs))
	for i := range names {
		names[i] = "k" + itoa(i)
	}
	return &Zipf{
		probs:    probs,
		alias:    NewAlias(probs),
		keys:     names,
		messages: messages,
		seed:     seed,
		rng:      NewRNG(seed),
	}
}

// itoa is a minimal strconv.Itoa for non-negative ints, avoiding the
// import for this hot construction path.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Next implements stream.Generator.
func (g *Zipf) Next() (string, bool) {
	if g.emitted >= g.messages {
		return "", false
	}
	g.emitted++
	return g.keys[g.alias.Sample(g.rng)], true
}

// NextBatch implements stream.BatchGenerator: it fills dst with up to
// len(dst) keys in one call — the same sequence Next would emit — with
// one bounds check and no interface dispatch per message.
func (g *Zipf) NextBatch(dst []string) int {
	room := g.messages - g.emitted
	if room <= 0 {
		return 0
	}
	if int64(len(dst)) > room {
		dst = dst[:room]
	}
	for i := range dst {
		dst[i] = g.keys[g.alias.Sample(g.rng)]
	}
	g.emitted += int64(len(dst))
	return len(dst)
}

// NextRank draws the next key's rank without formatting the key string;
// used by engines that route on ranks for speed.
func (g *Zipf) NextRank() (int, bool) {
	if g.emitted >= g.messages {
		return 0, false
	}
	g.emitted++
	return g.alias.Sample(g.rng), true
}

// Len implements stream.Generator.
func (g *Zipf) Len() int64 { return g.messages }

// Reset implements stream.Generator.
func (g *Zipf) Reset() {
	g.rng.Seed(g.seed)
	g.emitted = 0
}

// Probs returns the underlying probability vector (hottest first). The
// returned slice is shared; callers must not modify it.
func (g *Zipf) Probs() []float64 { return g.probs }

// KeyName returns the key string for a rank, matching what Next emits.
func (g *Zipf) KeyName(rank int) string { return g.keys[rank] }

var _ stream.BatchGenerator = (*Zipf)(nil)
