package workload

import "slb/internal/stream"

// Drift wraps a Zipf rank process with epoch-based concept drift: within
// epoch e, the key that carries rank r is rotated to identity
// (r + e·stride) mod keys, so the hottest keys change every epoch while
// the per-epoch frequency profile stays fixed. This reproduces the
// behaviour of the paper's Twitter-cashtag (CT) dataset, whose key
// distribution "changes drastically throughout time" and which exists to
// stress the online heavy-hitter tracker.
type Drift struct {
	zipf     *Zipf
	keys     []string
	epochLen int64
	stride   int
	emitted  int64
}

// NewDrift builds a drifting generator: exponent z over `keys` keys,
// `messages` total, rotating identities every epochLen messages by
// stride. stride should exceed the expected head cardinality so that
// consecutive epochs have disjoint hot sets.
func NewDrift(z float64, keys int, messages int64, epochLen int64, stride int, seed uint64) *Drift {
	if epochLen <= 0 {
		panic("workload: epochLen must be positive")
	}
	if stride <= 0 {
		panic("workload: stride must be positive")
	}
	z0 := NewZipf(z, keys, messages, seed)
	names := make([]string, keys)
	for i := range names {
		names[i] = "c" + itoa(i)
	}
	return &Drift{zipf: z0, keys: names, epochLen: epochLen, stride: stride}
}

// Next implements stream.Generator.
func (d *Drift) Next() (string, bool) {
	rank, ok := d.zipf.NextRank()
	if !ok {
		return "", false
	}
	epoch := d.emitted / d.epochLen
	d.emitted++
	id := (rank + int(epoch)*d.stride) % len(d.keys)
	return d.keys[id], true
}

// NextBatch implements stream.BatchGenerator. The epoch is derived per
// message (a batch may straddle an epoch boundary), so identity
// rotation matches Next exactly.
func (d *Drift) NextBatch(dst []string) int {
	filled := 0
	for filled < len(dst) {
		rank, ok := d.zipf.NextRank()
		if !ok {
			break
		}
		epoch := d.emitted / d.epochLen
		d.emitted++
		id := (rank + int(epoch)*d.stride) % len(d.keys)
		dst[filled] = d.keys[id]
		filled++
	}
	return filled
}

// Len implements stream.Generator.
func (d *Drift) Len() int64 { return d.zipf.Len() }

// Reset implements stream.Generator.
func (d *Drift) Reset() {
	d.zipf.Reset()
	d.emitted = 0
}

// Epochs returns the number of drift epochs in the full stream.
func (d *Drift) Epochs() int64 {
	return (d.zipf.Len() + d.epochLen - 1) / d.epochLen
}

var _ stream.BatchGenerator = (*Drift)(nil)
