package workload_test

import (
	"fmt"

	"slb/internal/stream"
	"slb/internal/workload"
)

// A Zipf stream with any exponent (including z ≤ 1, which the standard
// library's Zipf cannot generate) over a finite key space.
func ExampleNewZipf() {
	gen := workload.NewZipf(2.0, 1000, 100_000, 42)
	st := stream.Collect(gen)
	fmt.Printf("hottest key %q carries %.0f%% of %d messages\n",
		st.TopKey, 100*st.P1, st.Messages)
	// Output:
	// hottest key "k0" carries 61% of 100000 messages
}

// CalibrateZ finds the exponent that reproduces a published head
// frequency at a chosen key-space size — how the dataset stand-ins
// match Table I of the paper.
func ExampleCalibrateZ() {
	z := workload.CalibrateZ(0.0932, 29_000) // Wikipedia's p1 at 29k keys
	p1 := workload.ZipfProbs(z, 29_000)[0]
	fmt.Printf("p1 = %.4f\n", p1)
	// Output:
	// p1 = 0.0932
}

// A drifting stream rotates the identity of the hot keys every epoch,
// stressing online heavy-hitter tracking like the paper's cashtag data.
func ExampleNewDrift() {
	gen := workload.NewDrift(2.0, 100, 4000, 1000, 25, 7)
	hot := map[int64]string{}
	counts := map[string]int{}
	var seen int64
	for {
		k, ok := gen.Next()
		if !ok {
			break
		}
		counts[k]++
		seen++
		if seen%1000 == 0 { // end of an epoch
			top, topC := "", 0
			for key, c := range counts {
				if c > topC {
					top, topC = key, c
				}
			}
			hot[seen/1000-1] = top
			counts = map[string]int{}
		}
	}
	fmt.Println("distinct hot keys over 4 epochs:", len(map[string]bool{
		hot[0]: true, hot[1]: true, hot[2]: true, hot[3]: true,
	}))
	// Output:
	// distinct hot keys over 4 epochs: 4
}
