package workload

import "slb/internal/stream"

// The paper's Table I. The real traces are not redistributable, so each
// dataset is substituted by a calibrated synthetic trace that preserves
// the properties the algorithms are sensitive to: the head frequency p1,
// a heavy tail, and (for CT) concept drift. Key-space and message counts
// are scaled down by default; Full restores the published sizes.
const (
	// WPP1 is the frequency of the most visited Wikipedia page (Table I).
	WPP1 = 0.0932
	// TWP1 is the frequency of the most frequent Twitter word (Table I).
	TWP1 = 0.0267
	// CTP1 is the frequency of the most frequent cashtag (Table I).
	CTP1 = 0.0329
)

// Scale selects the size of the synthetic dataset stand-ins.
type Scale int

const (
	// Quick is sized for unit tests and benchmarks (sub-second runs).
	Quick Scale = iota
	// Default is sized for the experiment harness (seconds per run).
	Default
	// Full matches the published message counts (minutes per run).
	Full
)

// datasetDims returns (messages, keys) for a dataset at a scale.
func datasetDims(s Scale, fullM int64, fullK int) (int64, int) {
	switch s {
	case Full:
		return fullM, fullK
	case Default:
		return fullM / 10, fullK / 10
	default: // Quick
		return fullM / 100, fullK / 100
	}
}

// WikipediaLike returns the WP stand-in: page-visit log, 22M messages and
// 2.9M keys at full scale, hottest page at p1 ≈ 9.32%.
func WikipediaLike(s Scale, seed uint64) stream.Generator {
	m, k := datasetDims(s, 22_000_000, 2_900_000)
	z := CalibrateZ(WPP1, k)
	return NewZipf(z, k, m, seed)
}

// TwitterLike returns the TW stand-in: tweet words. The real trace has
// 1.2G messages and 31M keys; full scale here is capped at 120M/3.1M to
// stay laptop-feasible, preserving p1 ≈ 2.67% and the long tail.
func TwitterLike(s Scale, seed uint64) stream.Generator {
	m, k := datasetDims(s, 120_000_000, 3_100_000)
	z := CalibrateZ(TWP1, k)
	return NewZipf(z, k, m, seed)
}

// CashtagEpochs is the number of drift epochs in the CT stand-in. The
// real trace spans ~80 hours with strong hourly drift; eight epochs are
// enough to rotate the hot set several times at every scale.
const CashtagEpochs = 8

// CashtagLike returns the CT stand-in: 690k messages over 2.9k keys at
// full scale with strong concept drift. The epoch-level Zipf exponent is
// calibrated so that the *overall* p1 of the rotated mixture ≈ 3.29%: a
// key is hot in at most one epoch, but in small key spaces it also
// collects tail mass from the other epochs, and the calibration accounts
// for that exactly.
func CashtagLike(s Scale, seed uint64) stream.Generator {
	m, k := datasetDims(s, 690_000, 2_900)
	// Round up so the stream has exactly CashtagEpochs epochs (the last
	// one may be slightly short).
	epochLen := (m + CashtagEpochs - 1) / CashtagEpochs
	if epochLen == 0 {
		epochLen = 1
	}
	// Stride larger than any plausible head cardinality so consecutive
	// epochs have disjoint hot sets.
	stride := k / CashtagEpochs
	if stride == 0 {
		stride = 1
	}
	z := calibrateDriftZ(CTP1, k, CashtagEpochs, stride)
	return NewDrift(z, k, m, epochLen, stride, seed)
}

// driftOverallP1 computes the expected overall frequency of the hottest
// key identity under the epoch-rotation construction: identity id carries
// rank (id − e·stride) mod keys in epoch e, and epochs have equal length.
func driftOverallP1(z float64, keys, epochs, stride int) float64 {
	p := ZipfProbs(z, keys)
	best := 0.0
	for id := 0; id < keys; id++ {
		sum := 0.0
		for e := 0; e < epochs; e++ {
			r := (id - e*stride) % keys
			if r < 0 {
				r += keys
			}
			sum += p[r]
		}
		if f := sum / float64(epochs); f > best {
			best = f
		}
	}
	return best
}

// calibrateDriftZ bisects the epoch-level exponent so that the overall p1
// of the drift mixture matches target.
func calibrateDriftZ(target float64, keys, epochs, stride int) float64 {
	lo, hi := 0.0, 16.0
	for iter := 0; iter < 50; iter++ {
		mid := (lo + hi) / 2
		if driftOverallP1(mid, keys, epochs, stride) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// DatasetByName maps the paper's dataset symbols (WP, TW, CT) to their
// stand-ins; it is the lookup used by the experiment CLI.
func DatasetByName(name string, s Scale, seed uint64) (stream.Generator, bool) {
	switch name {
	case "WP":
		return WikipediaLike(s, seed), true
	case "TW":
		return TwitterLike(s, seed), true
	case "CT":
		return CashtagLike(s, seed), true
	}
	return nil, false
}
