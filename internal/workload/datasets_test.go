package workload

import (
	"math"
	"testing"
)

func TestDatasetDims(t *testing.T) {
	for _, tc := range []struct {
		scale Scale
		divM  int64
		divK  int
	}{
		{Quick, 100, 100},
		{Default, 10, 10},
		{Full, 1, 1},
	} {
		m, k := datasetDims(tc.scale, 1000, 500)
		if m != 1000/tc.divM || k != 500/tc.divK {
			t.Errorf("scale %v: dims (%d, %d)", tc.scale, m, k)
		}
	}
}

func TestDatasetLengthsScale(t *testing.T) {
	q := WikipediaLike(Quick, 1)
	d := WikipediaLike(Default, 1)
	if q.Len() >= d.Len() {
		t.Fatalf("quick (%d) not smaller than default (%d)", q.Len(), d.Len())
	}
}

func TestDriftOverallP1Monotone(t *testing.T) {
	// Overall p1 of the rotated mixture grows with z.
	prev := 0.0
	for _, z := range []float64{0.5, 1.0, 1.5, 2.0, 3.0} {
		got := driftOverallP1(z, 290, CashtagEpochs, 290/CashtagEpochs)
		if got < prev {
			t.Fatalf("driftOverallP1 not monotone at z=%f: %f < %f", z, got, prev)
		}
		prev = got
	}
	// At z=0 the mixture is uniform: overall p1 = 1/keys.
	if got := driftOverallP1(0, 100, 4, 25); math.Abs(got-0.01) > 1e-9 {
		t.Fatalf("uniform drift p1 = %f, want 0.01", got)
	}
}

func TestCalibrateDriftZHitsTarget(t *testing.T) {
	keys, epochs, stride := 290, 8, 36
	z := calibrateDriftZ(0.0329, keys, epochs, stride)
	got := driftOverallP1(z, keys, epochs, stride)
	if math.Abs(got-0.0329)/0.0329 > 0.02 {
		t.Fatalf("calibrated overall p1 = %f, want ≈0.0329", got)
	}
}

func TestCashtagEpochStructure(t *testing.T) {
	gen := CashtagLike(Quick, 2)
	d, ok := gen.(*Drift)
	if !ok {
		t.Fatal("CashtagLike is not a Drift generator")
	}
	if d.Epochs() != CashtagEpochs {
		t.Fatalf("epochs = %d, want %d", d.Epochs(), CashtagEpochs)
	}
}

func TestTwitterLikeQuickStats(t *testing.T) {
	gen := TwitterLike(Quick, 1)
	if gen.Len() != 1_200_000 {
		t.Fatalf("TW quick length = %d", gen.Len())
	}
}
