// Package workload provides deterministic skewed-workload generators: a
// finite-support Zipf sampler valid for any exponent z ≥ 0 (the standard
// library's Zipf requires s > 1), exponent calibration against a target
// head frequency, and synthetic stand-ins for the paper's real datasets
// (Wikipedia page visits, Twitter words, Twitter cashtags with concept
// drift). See DESIGN.md §4 for the substitution rationale.
package workload

// RNG is a SplitMix64 pseudo-random generator: tiny state, excellent
// statistical quality, fully deterministic across platforms. It is not
// cryptographically secure and must not be used for security purposes.
type RNG struct {
	state uint64
}

// NewRNG returns an RNG seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n ≤ 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Seed resets the generator state.
func (r *RNG) Seed(seed uint64) { r.state = seed }
