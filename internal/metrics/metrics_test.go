package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestImbalance(t *testing.T) {
	for _, tc := range []struct {
		loads []int64
		want  float64
	}{
		{nil, 0},
		{[]int64{0, 0}, 0},
		{[]int64{5, 5}, 0},
		{[]int64{10, 0}, 0.5},       // max 1.0, avg 0.5
		{[]int64{6, 2, 2, 2}, 0.25}, // max 0.5, avg 0.25
	} {
		if got := Imbalance(tc.loads); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Imbalance(%v) = %f, want %f", tc.loads, got, tc.want)
		}
	}
}

func TestImbalanceFractions(t *testing.T) {
	got := ImbalanceFractions([]float64{0.5, 0.25, 0.25})
	if math.Abs(got-(0.5-1.0/3)) > 1e-12 {
		t.Fatalf("ImbalanceFractions = %f", got)
	}
	if ImbalanceFractions(nil) != 0 || ImbalanceFractions([]float64{0, 0}) != 0 {
		t.Fatal("degenerate cases should be 0")
	}
}

func TestImbalanceNonNegativeProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		loads := make([]int64, len(raw))
		for i, v := range raw {
			loads[i] = int64(v)
		}
		i := Imbalance(loads)
		return i >= 0 && i <= 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReplicas(t *testing.T) {
	r := NewReplicas(100)
	r.Observe("a", 0)
	r.Observe("a", 0) // duplicate: no new replica
	r.Observe("a", 99)
	r.Observe("b", 50)
	if r.Total() != 3 {
		t.Fatalf("Total = %d, want 3", r.Total())
	}
	if r.Keys() != 2 {
		t.Fatalf("Keys = %d, want 2", r.Keys())
	}
	if r.PerKey("a") != 2 || r.PerKey("b") != 1 || r.PerKey("zz") != 0 {
		t.Fatalf("PerKey wrong: a=%d b=%d", r.PerKey("a"), r.PerKey("b"))
	}
	if r.MaxPerKey() != 2 {
		t.Fatalf("MaxPerKey = %d", r.MaxPerKey())
	}
}

func TestReplicasPanics(t *testing.T) {
	r := NewReplicas(4)
	for _, w := range []int{-1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Observe(worker=%d) did not panic", w)
				}
			}()
			r.Observe("k", w)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewReplicas(0) did not panic")
			}
		}()
		NewReplicas(0)
	}()
}

func TestReplicasBitsetBoundary(t *testing.T) {
	// Workers straddling the 64-bit word boundary must count separately.
	r := NewReplicas(130)
	for _, w := range []int{0, 63, 64, 127, 128, 129} {
		r.Observe("k", w)
	}
	if r.PerKey("k") != 6 {
		t.Fatalf("PerKey = %d, want 6", r.PerKey("k"))
	}
}

func TestQuantilesExactSmall(t *testing.T) {
	q := NewQuantiles(1000)
	for i := 100; i >= 1; i-- {
		q.Add(float64(i))
	}
	if got := q.Quantile(0); got != 1 {
		t.Fatalf("p0 = %f", got)
	}
	if got := q.Quantile(1); got != 100 {
		t.Fatalf("p100 = %f", got)
	}
	if got := q.Quantile(0.5); math.Abs(got-50) > 1.5 {
		t.Fatalf("p50 = %f, want ≈50", got)
	}
	if got := q.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("Mean = %f, want 50.5", got)
	}
	if got := q.Max(); got != 100 {
		t.Fatalf("Max = %f", got)
	}
	if q.Count() != 100 {
		t.Fatalf("Count = %d", q.Count())
	}
}

func TestQuantilesEmpty(t *testing.T) {
	q := NewQuantiles(10)
	if !math.IsNaN(q.Quantile(0.5)) || !math.IsNaN(q.Mean()) || !math.IsNaN(q.Max()) {
		t.Fatal("empty estimator should return NaN")
	}
}

func TestQuantilesReservoirApproximation(t *testing.T) {
	// 200k uniform samples through a 4k reservoir: p50 within a few %.
	q := NewQuantiles(4096)
	x := uint64(12345)
	for i := 0; i < 200000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		q.Add(float64(x%100000) / 100000)
	}
	if got := q.Quantile(0.5); math.Abs(got-0.5) > 0.05 {
		t.Fatalf("reservoir p50 = %f, want ≈0.5", got)
	}
	if got := q.Quantile(0.99); math.Abs(got-0.99) > 0.02 {
		t.Fatalf("reservoir p99 = %f, want ≈0.99", got)
	}
}

func TestQuantilesAddAfterQuery(t *testing.T) {
	q := NewQuantiles(10)
	q.Add(3)
	q.Add(1)
	_ = q.Quantile(0.5)
	q.Add(2)
	if got := q.Quantile(1); got != 3 {
		t.Fatalf("Quantile after re-Add = %f", got)
	}
}

func TestQuantilesOrderedProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		q := NewQuantiles(0)
		for _, v := range raw {
			q.Add(float64(v))
		}
		// Quantiles must be monotone in p.
		prev := math.Inf(-1)
		for _, p := range []float64{0, 0.25, 0.5, 0.75, 0.95, 1} {
			v := q.Quantile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileLinearInterpolation(t *testing.T) {
	q := NewQuantiles(1000)
	for i := 1; i <= 100; i++ {
		q.Add(float64(i))
	}
	// Type-7 positions: p·(len−1). p50 = 50.5, p99 = 99.01 — the old
	// floor-to-index code returned 50 and 99 (always biased low).
	if got := q.Quantile(0.5); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("p50 = %f, want 50.5", got)
	}
	if got := q.Quantile(0.99); math.Abs(got-99.01) > 1e-9 {
		t.Fatalf("p99 = %f, want 99.01", got)
	}
	// Exact order statistics stay exact.
	if got := q.Quantile(0.25); math.Abs(got-25.75) > 1e-9 {
		t.Fatalf("p25 = %f, want 25.75", got)
	}
}

func TestMergeExactConcatenation(t *testing.T) {
	a := NewQuantiles(100)
	b := NewQuantiles(100)
	for i := 1; i <= 10; i++ {
		a.Add(float64(i))
		b.Add(float64(i + 10))
	}
	a.Merge(b)
	if a.Count() != 20 {
		t.Fatalf("merged Count = %d, want 20", a.Count())
	}
	if got := a.Quantile(0); got != 1 {
		t.Fatalf("merged p0 = %f", got)
	}
	if got := a.Quantile(1); got != 20 {
		t.Fatalf("merged p100 = %f", got)
	}
	if got := a.Quantile(0.5); math.Abs(got-10.5) > 1e-9 {
		t.Fatalf("merged p50 = %f, want 10.5", got)
	}
	// The argument is unchanged.
	if b.Count() != 10 || b.Quantile(0) != 11 {
		t.Fatal("Merge modified its argument")
	}
}

func TestMergeCountWeighted(t *testing.T) {
	// A fast source with 100 samples at 1 and a slow source with 9900
	// samples at 100 (down-sampled through a small reservoir). A
	// count-weighted merge must be ≈99% slow samples: every quantile from
	// p10 up is 100. An equal-weight pooling (the old per-bolt quantile
	// grid) would give the fast source half the mass.
	fast := NewQuantiles(1024)
	for i := 0; i < 100; i++ {
		fast.Add(1)
	}
	slow := NewQuantiles(512)
	for i := 0; i < 9900; i++ {
		slow.Add(100)
	}
	pooled := NewQuantiles(1024)
	pooled.Merge(fast)
	pooled.Merge(slow)
	if pooled.Count() != 10000 {
		t.Fatalf("pooled Count = %d, want 10000", pooled.Count())
	}
	for _, p := range []float64{0.10, 0.50, 0.99} {
		if got := pooled.Quantile(p); got != 100 {
			t.Fatalf("pooled p%v = %f, want 100 (slow source must dominate)", p, got)
		}
	}
	// The fast source is present but at its true ≈1% share.
	if got := pooled.Quantile(0); got != 1 {
		t.Fatalf("pooled min = %f, want 1", got)
	}
}

func TestReplicasAvgPerKey(t *testing.T) {
	r := NewReplicas(4)
	if got := r.AvgPerKey(); got != 0 {
		t.Fatalf("empty AvgPerKey = %f", got)
	}
	r.Observe("a", 0)
	r.Observe("a", 1)
	r.Observe("a", 1) // duplicate pair: no new replica
	r.Observe("b", 2)
	if got := r.AvgPerKey(); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("AvgPerKey = %f, want 1.5", got)
	}
}

func TestMergeIntoEmptyRespectsCapacity(t *testing.T) {
	big := NewQuantiles(4096)
	for i := 0; i < 1000; i++ {
		big.Add(float64(i))
	}
	q := NewQuantiles(100)
	q.Merge(big)
	if len(q.samples) > 100 {
		t.Fatalf("merged reservoir holds %d samples, cap 100", len(q.samples))
	}
	if q.Count() != 1000 {
		t.Fatalf("merged Count = %d, want 1000", q.Count())
	}
	// The reservoir invariant holds for later Adds: new samples can land
	// anywhere, so a flood of large values moves the median.
	for i := 0; i < 100000; i++ {
		q.Add(1e6)
	}
	if got := q.Quantile(0.5); got != 1e6 {
		t.Fatalf("post-merge reservoir frozen: p50 = %f", got)
	}
}

func TestDigestReplicasSmallAndLarge(t *testing.T) {
	for _, n := range []int{8, 100} { // inline-bitset and slice paths
		r := NewDigestReplicas(n)
		r.Observe(1, 0)
		r.Observe(1, 1)
		r.Observe(1, 1)
		r.Observe(2, n-1)
		if r.Total() != 3 || r.Keys() != 2 {
			t.Fatalf("n=%d: total %d keys %d", n, r.Total(), r.Keys())
		}
		if got := r.AvgPerKey(); math.Abs(got-1.5) > 1e-12 {
			t.Fatalf("n=%d: AvgPerKey %f", n, got)
		}
		if r.MaxPerKey() != 2 {
			t.Fatalf("n=%d: MaxPerKey %d", n, r.MaxPerKey())
		}
	}
}

// TestReplicasBoundaryParity pins the satellite contract of the pooled
// bitsets: identical observations produce identical replication
// statistics on both sides of the n=64 boundary — the inline-uint64
// path and the pooled multi-word path are the same accounting.
func TestReplicasBoundaryParity(t *testing.T) {
	rng := uint64(0xfeed)
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}
	ns := []int{64, 65, 128, 130} // inline, then 2- and 3-word pooled
	trackers := make([]*Replicas, len(ns))
	for i, n := range ns {
		trackers[i] = NewReplicas(n)
	}
	keys := make([]string, 200)
	for i := range keys {
		keys[i] = "k" + string(rune('a'+i%26)) + string(rune('0'+i/26))
	}
	for step := 0; step < 20000; step++ {
		key := keys[next(len(keys))]
		w := next(64) // workers valid for every tracker
		for _, r := range trackers {
			r.Observe(key, w)
		}
	}
	base := trackers[0]
	for i, r := range trackers[1:] {
		if r.Total() != base.Total() || r.Keys() != base.Keys() {
			t.Fatalf("n=%d: total/keys = %d/%d, inline path %d/%d", ns[i+1], r.Total(), r.Keys(), base.Total(), base.Keys())
		}
		if r.AvgPerKey() != base.AvgPerKey() {
			t.Fatalf("n=%d: AvgPerKey %f != %f", ns[i+1], r.AvgPerKey(), base.AvgPerKey())
		}
		if r.MaxPerKey() != base.MaxPerKey() {
			t.Fatalf("n=%d: MaxPerKey %d != %d", ns[i+1], r.MaxPerKey(), base.MaxPerKey())
		}
		for _, k := range keys {
			if r.PerKey(k) != base.PerKey(k) {
				t.Fatalf("n=%d: PerKey(%q) %d != %d", ns[i+1], k, r.PerKey(k), base.PerKey(k))
			}
		}
	}
}

// TestReplicasReleasePreservesStats exercises the free-list recycling:
// releasing keys keeps every cumulative statistic, shrinks the live
// set, and recycles bitsets for subsequent keys.
func TestReplicasReleasePreservesStats(t *testing.T) {
	for _, n := range []int{32, 130} { // inline and pooled paths
		r := NewDigestReplicas(n)
		for id := uint64(0); id < 50; id++ {
			r.Observe(id, int(id)%n)
			r.Observe(id, int(id+1)%n)
		}
		r.Observe(7, 3) // one 3-replica key
		total, keys, avg, max := r.Total(), r.Keys(), r.AvgPerKey(), r.MaxPerKey()
		for id := uint64(0); id < 25; id++ {
			r.Release(id)
		}
		r.Release(999) // releasing an unseen key is a no-op
		if r.Total() != total || r.Keys() != keys || r.AvgPerKey() != avg || r.MaxPerKey() != max {
			t.Fatalf("n=%d: release changed stats: total %d→%d keys %d→%d avg %f→%f max %d→%d",
				n, total, r.Total(), keys, r.Keys(), avg, r.AvgPerKey(), max, r.MaxPerKey())
		}
		if r.Live() != 25 {
			t.Fatalf("n=%d: Live = %d, want 25", n, r.Live())
		}
		if r.PerKey(3) != 0 {
			t.Fatalf("n=%d: released key still reports %d replicas", n, r.PerKey(3))
		}
		// Recycled bitsets must come back zeroed: a fresh key observed
		// after the release starts from an empty set.
		r.Observe(1000, 0)
		if r.PerKey(1000) != 1 {
			t.Fatalf("n=%d: recycled bitset not zeroed: PerKey = %d", n, r.PerKey(1000))
		}
		if r.Keys() != keys+1 {
			t.Fatalf("n=%d: Keys after new key = %d, want %d", n, r.Keys(), keys+1)
		}
	}
}

// TestReplicasPooledSteadyStateAllocs pins the pooling purpose: a
// windowed observe→release cycle at large n reuses bitsets instead of
// allocating one per key.
func TestReplicasPooledSteadyStateAllocs(t *testing.T) {
	r := NewDigestReplicas(512) // 8-word bitsets
	id := uint64(0)
	// Warm: fill the free list and the map's bucket store.
	for w := 0; w < 64; w++ {
		for k := 0; k < 32; k++ {
			r.Observe(id+uint64(k), k%512)
		}
		for k := 0; k < 32; k++ {
			r.Release(id + uint64(k))
		}
		id += 32
	}
	avg := testing.AllocsPerRun(200, func() {
		for k := 0; k < 32; k++ {
			r.Observe(id+uint64(k), k%512)
		}
		for k := 0; k < 32; k++ {
			r.Release(id + uint64(k))
		}
		id += 32
	})
	// Map inserts may occasionally allocate buckets; the per-key bitset
	// allocations (32 per cycle un-pooled) must be gone.
	if avg > 2 {
		t.Fatalf("windowed observe/release cycle allocates %.2f/op, want ≈0 (pooled)", avg)
	}
}
