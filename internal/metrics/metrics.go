// Package metrics provides the measurement machinery shared by the
// simulator and the DSPE engines: worker load vectors and the paper's
// imbalance metric I(t), per-key replica accounting (memory overhead),
// and a reservoir-based quantile estimator for latency percentiles.
package metrics

import (
	"math"
	"sort"

	"slb/internal/hashing"
)

// Imbalance returns I = max(load) − avg(load) for a vector of absolute
// loads, normalized by total so the result is a fraction of the stream
// (the definition in Section II). An empty or all-zero vector yields 0.
func Imbalance(loads []int64) float64 {
	if len(loads) == 0 {
		return 0
	}
	var max, sum int64
	for _, l := range loads {
		if l > max {
			max = l
		}
		sum += l
	}
	if sum == 0 {
		return 0
	}
	return float64(max)/float64(sum) - 1.0/float64(len(loads))
}

// ImbalanceFractions is Imbalance for already-normalized load fractions.
func ImbalanceFractions(loads []float64) float64 {
	if len(loads) == 0 {
		return 0
	}
	max, sum := 0.0, 0.0
	for _, l := range loads {
		if l > max {
			max = l
		}
		sum += l
	}
	if sum == 0 {
		return 0
	}
	return max/sum - 1.0/float64(len(loads))
}

// ---------------------------------------------------------------------------
// Replica accounting

const wordBits = 64

// arenaBitsets is how many multi-word bitsets one arena slab provides:
// new bitsets are carved from slabs of words·arenaBitsets uint64s, so
// large-n accounting performs one allocation per arenaBitsets keys
// instead of one per key.
const arenaBitsets = 128

// replicas is the shared accounting core behind Replicas and
// DigestReplicas: distinct (key, worker) pairs, tracked in per-key
// bitsets so the accounting is O(1) per observation and O(|K|·n/64)
// space. For n ≤ 64 workers the bitset is an inline uint64 map value
// (one map entry per key, no per-key slice allocation); larger n use
// POOLED multi-word bitsets — carved from arena slabs and recycled
// through a free list by release — so per-window accounting at large n
// neither allocates per key nor grows without bound as windows close.
type replicas[K comparable] struct {
	n     int
	words int
	small map[K]uint64   // words == 1: inline bitsets
	keys  map[K][]uint64 // words > 1: pooled bitsets
	arena []uint64       // slab the next fresh bitsets are carved from
	free  [][]uint64     // zeroed bitsets recycled by release
	total int64
	seen  int64 // distinct keys ever observed, including released ones
	// releasedMax preserves MaxPerKey across releases: the largest
	// per-key replica count among released keys.
	releasedMax int
}

func newReplicas[K comparable](n int) replicas[K] {
	if n <= 0 {
		panic("metrics: replica accounting with non-positive n")
	}
	r := replicas[K]{n: n, words: (n + wordBits - 1) / wordBits}
	if r.words == 1 {
		r.small = make(map[K]uint64)
	} else {
		r.keys = make(map[K][]uint64)
	}
	return r
}

// alloc hands out one zeroed bitset: recycled from the free list when
// possible, otherwise carved from the current arena slab.
func (r *replicas[K]) alloc() []uint64 {
	if k := len(r.free); k > 0 {
		s := r.free[k-1]
		r.free = r.free[:k-1]
		return s
	}
	if len(r.arena) < r.words {
		r.arena = make([]uint64, r.words*arenaBitsets)
	}
	s := r.arena[:r.words:r.words]
	r.arena = r.arena[r.words:]
	return s
}

func (r *replicas[K]) observe(key K, worker int) {
	if worker < 0 || worker >= r.n {
		panic("metrics: worker out of range")
	}
	if r.small != nil {
		set, ok := r.small[key]
		if !ok {
			r.seen++
		}
		if set&(1<<uint(worker)) == 0 {
			r.small[key] = set | 1<<uint(worker)
			r.total++
		}
		return
	}
	set, ok := r.keys[key]
	if !ok {
		set = r.alloc()
		r.keys[key] = set
		r.seen++
	}
	w, b := worker/wordBits, uint(worker%wordBits)
	if set[w]&(1<<b) == 0 {
		set[w] |= 1 << b
		r.total++
	}
}

// release retires a key that can no longer be observed (e.g. its window
// closed), recycling its bitset onto the free list. Every cumulative
// statistic — Total, Keys, AvgPerKey, MaxPerKey — is preserved; only
// the per-key set is dropped, so PerKey reports 0 for released keys. A
// key observed again AFTER release is counted as a fresh key (its pairs
// recounted), so callers must release only keys that are structurally
// done — exactly what the aggregation driver's completeness-based
// window close guarantees.
func (r *replicas[K]) release(key K) {
	if r.small != nil {
		set, ok := r.small[key]
		if !ok {
			return
		}
		if c := popcount(set); c > r.releasedMax {
			r.releasedMax = c
		}
		delete(r.small, key)
		return
	}
	set, ok := r.keys[key]
	if !ok {
		return
	}
	c := 0
	for i, w := range set {
		c += popcount(w)
		set[i] = 0
	}
	if c > r.releasedMax {
		r.releasedMax = c
	}
	r.free = append(r.free, set)
	delete(r.keys, key)
}

// Total returns the number of distinct (key, worker) pairs seen.
func (r *replicas[K]) Total() int64 { return r.total }

// Keys returns the number of distinct keys seen (including released
// ones).
func (r *replicas[K]) Keys() int { return int(r.seen) }

// Live returns the number of keys currently holding a bitset (seen
// minus released): the accounting structure's memory footprint in keys.
func (r *replicas[K]) Live() int {
	if r.small != nil {
		return len(r.small)
	}
	return len(r.keys)
}

// AvgPerKey returns the mean replica count per distinct key — the
// stream's measured replication factor (1 for KG, ≤ 2 for PKG, up to n
// when every worker holds the hot keys). It is the multiplier on the
// downstream aggregation cost: a reducer must merge AvgPerKey partials
// per key on average. Returns 0 when no keys were observed.
func (r *replicas[K]) AvgPerKey() float64 {
	if r.Keys() == 0 {
		return 0
	}
	return float64(r.total) / float64(r.Keys())
}

// PerKey returns the number of workers holding state for key.
func (r *replicas[K]) PerKey(key K) int {
	if r.small != nil {
		return popcount(r.small[key])
	}
	c := 0
	for _, w := range r.keys[key] {
		c += popcount(w)
	}
	return c
}

// MaxPerKey returns the largest replica count over all keys, released
// ones included.
func (r *replicas[K]) MaxPerKey() int {
	max := r.releasedMax
	if r.small != nil {
		for _, set := range r.small {
			if c := popcount(set); c > max {
				max = c
			}
		}
		return max
	}
	for _, set := range r.keys {
		c := 0
		for _, w := range set {
			c += popcount(w)
		}
		if c > max {
			max = c
		}
	}
	return max
}

func popcount(x uint64) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

// Replicas counts distinct (key, worker) pairs: the measured memory cost
// of a partitioning run, in key-replica units (Section IV-B).
type Replicas struct {
	replicas[string]
}

// NewReplicas returns an accounting structure for n workers.
func NewReplicas(n int) *Replicas {
	return &Replicas{newReplicas[string](n)}
}

// Observe records that one message of key was processed by worker.
func (r *Replicas) Observe(key string, worker int) { r.observe(key, worker) }

// Release retires a key that can no longer be observed, recycling its
// bitset; all cumulative statistics are preserved (see release).
func (r *Replicas) Release(key string) { r.release(key) }

// DigestReplicas is Replicas keyed by a 64-bit identity instead of a
// key string: the form the aggregation path uses, where entities are
// (window, key-digest) pairs condensed to one uint64 and observing must
// not allocate or touch key bytes. Same guarantees up to 64-bit
// collisions.
type DigestReplicas struct {
	replicas[uint64]
}

// NewDigestReplicas returns a digest-keyed accounting structure for n
// workers.
func NewDigestReplicas(n int) *DigestReplicas {
	return &DigestReplicas{newReplicas[uint64](n)}
}

// Observe records that worker holds state for the entity id.
func (r *DigestReplicas) Observe(id uint64, worker int) { r.observe(id, worker) }

// Release retires an entity id that can no longer be observed — the
// aggregation driver calls this for every (window, key) the moment the
// window closes, so replica accounting memory tracks the OPEN windows
// rather than the whole stream. All cumulative statistics are
// preserved (see release).
func (r *DigestReplicas) Release(id uint64) { r.release(id) }

// ---------------------------------------------------------------------------
// Quantiles

// Quantiles estimates percentiles from a stream of float64 samples using
// uniform reservoir sampling (Vitter's algorithm R) with a deterministic
// PRNG, so results are reproducible. With the default capacity the
// estimator is exact for runs below 64k samples.
type Quantiles struct {
	cap     int
	samples []float64
	seen    int64
	rng     uint64
	sorted  bool
}

// NewQuantiles returns an estimator keeping at most capacity samples;
// capacity ≤ 0 selects the default of 65536.
func NewQuantiles(capacity int) *Quantiles {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &Quantiles{cap: capacity, rng: 0x9e3779b97f4a7c15}
}

func (q *Quantiles) next() uint64 {
	q.rng += 0x9e3779b97f4a7c15
	z := q.rng
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Add feeds one sample.
func (q *Quantiles) Add(v float64) {
	q.seen++
	q.sorted = false
	// Append (admission probability 1) only while the retained samples
	// are exhaustive — after a down-sampling Merge the reservoir can be
	// below capacity yet already represent a longer stream, and new
	// samples must then pass the same len/seen admission test as
	// everything else or they would be overweighted.
	if len(q.samples) < q.cap && q.seen-1 == int64(len(q.samples)) {
		q.samples = append(q.samples, v)
		return
	}
	// Replace a random element with probability len/seen. The slot draw
	// uses Lemire's multiply-shift reduction (unbiased up to a 2⁻⁶⁴-scale
	// deviation) instead of a modulo, which is biased toward low slots
	// whenever seen does not divide 2⁶⁴.
	j := hashing.Bounded(q.next(), uint64(q.seen))
	if j < uint64(len(q.samples)) {
		q.samples[j] = v
	}
}

// Count returns the number of samples fed so far.
func (q *Quantiles) Count() int64 { return q.seen }

// Quantile returns the p-quantile (0 ≤ p ≤ 1) of the samples, NaN when
// empty.
func (q *Quantiles) Quantile(p float64) float64 {
	if len(q.samples) == 0 {
		return math.NaN()
	}
	if !q.sorted {
		sort.Float64s(q.samples)
		q.sorted = true
	}
	if p <= 0 {
		return q.samples[0]
	}
	if p >= 1 {
		return q.samples[len(q.samples)-1]
	}
	// Linear interpolation between order statistics (type-7 estimator):
	// truncating p·(len−1) to an index would bias every percentile low —
	// with 100 samples the old floor made "p99" return the 98th order
	// statistic exactly, never interpolating toward the maximum.
	pos := p * float64(len(q.samples)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if frac == 0 || lo+1 == len(q.samples) {
		return q.samples[lo]
	}
	return q.samples[lo] + frac*(q.samples[lo+1]-q.samples[lo])
}

// Merge folds another estimator into this one with count-proportional
// (Vitter-style) weighting. Each retained sample of a reservoir stands
// for seen/len(samples) stream items; Merge draws without replacement
// from the two sample pools with probability proportional to the stream
// mass each pool still represents, so the result approximates a uniform
// reservoir over the two concatenated streams. A source that processed
// 100× the items contributes ≈100× the retained samples — pooled tail
// percentiles are dominated by whoever actually carried the traffic,
// not by an arbitrary per-source quota. When both inputs are exhaustive
// (below capacity) and fit, the merge is an exact concatenation.
// The argument is not modified.
func (q *Quantiles) Merge(o *Quantiles) {
	if o == nil || o.seen == 0 {
		return
	}
	if q.seen == 0 {
		q.samples = append(q.samples[:0], o.samples...)
		q.seen = o.seen
		q.sorted = false
		// Down-sample to capacity (uniform without-replacement removals),
		// or later Adds would only ever replace the first cap slots and
		// the overflow would become immortal.
		for len(q.samples) > q.cap {
			j := hashing.Bounded(q.next(), uint64(len(q.samples)))
			q.samples[j] = q.samples[len(q.samples)-1]
			q.samples = q.samples[:len(q.samples)-1]
		}
		return
	}
	q.sorted = false
	exhaustive := q.seen == int64(len(q.samples)) && o.seen == int64(len(o.samples))
	if exhaustive && len(q.samples)+len(o.samples) <= q.cap {
		q.samples = append(q.samples, o.samples...)
		q.seen += o.seen
		return
	}
	a := q.samples
	b := append([]float64(nil), o.samples...)
	// Per-sample stream mass: how many items each retained sample stands
	// for. The remaining pool masses ra/rb drive the draw probabilities.
	wa := float64(q.seen) / float64(len(a))
	wb := float64(o.seen) / float64(len(b))
	ra, rb := float64(q.seen), float64(o.seen)
	total := ra + rb
	// Merged size: bounded by capacity AND by each pool's ability to
	// supply its proportional share — pool p must cover k·(mass_p/total)
	// draws. Without this bound a small pool empties mid-merge and the
	// remaining draws are forced from the other pool, destroying the
	// weighting (e.g. a fully-retained 100-sample stream merged with a
	// down-sampled 9900-item stream would keep all 100 fast samples).
	k := q.cap
	if ka := int(float64(len(a)) * total / ra); ka < k {
		k = ka
	}
	if kb := int(float64(len(b)) * total / rb); kb < k {
		k = kb
	}
	merged := make([]float64, 0, k)
	for len(merged) < k {
		takeA := len(b) == 0
		if !takeA && len(a) > 0 {
			// P(draw from a) = ra / (ra + rb), via a 53-bit uniform.
			u := float64(q.next()>>11) / (1 << 53)
			takeA = u*(ra+rb) < ra
		}
		if takeA {
			j := hashing.Bounded(q.next(), uint64(len(a)))
			merged = append(merged, a[j])
			a[j] = a[len(a)-1]
			a = a[:len(a)-1]
			ra -= wa
		} else {
			j := hashing.Bounded(q.next(), uint64(len(b)))
			merged = append(merged, b[j])
			b[j] = b[len(b)-1]
			b = b[:len(b)-1]
			rb -= wb
		}
	}
	q.samples = merged
	q.seen += o.seen
}

// Mean returns the mean of the retained samples (≈ stream mean), NaN when
// empty.
func (q *Quantiles) Mean() float64 {
	if len(q.samples) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, v := range q.samples {
		s += v
	}
	return s / float64(len(q.samples))
}

// Max returns the largest retained sample, NaN when empty.
func (q *Quantiles) Max() float64 {
	if len(q.samples) == 0 {
		return math.NaN()
	}
	m := q.samples[0]
	for _, v := range q.samples[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
