// Package metrics provides the measurement machinery shared by the
// simulator and the DSPE engines: worker load vectors and the paper's
// imbalance metric I(t), per-key replica accounting (memory overhead),
// and a reservoir-based quantile estimator for latency percentiles.
package metrics

import (
	"math"
	"sort"
)

// Imbalance returns I = max(load) − avg(load) for a vector of absolute
// loads, normalized by total so the result is a fraction of the stream
// (the definition in Section II). An empty or all-zero vector yields 0.
func Imbalance(loads []int64) float64 {
	if len(loads) == 0 {
		return 0
	}
	var max, sum int64
	for _, l := range loads {
		if l > max {
			max = l
		}
		sum += l
	}
	if sum == 0 {
		return 0
	}
	return float64(max)/float64(sum) - 1.0/float64(len(loads))
}

// ImbalanceFractions is Imbalance for already-normalized load fractions.
func ImbalanceFractions(loads []float64) float64 {
	if len(loads) == 0 {
		return 0
	}
	max, sum := 0.0, 0.0
	for _, l := range loads {
		if l > max {
			max = l
		}
		sum += l
	}
	if sum == 0 {
		return 0
	}
	return max/sum - 1.0/float64(len(loads))
}

// ---------------------------------------------------------------------------
// Replica accounting

const wordBits = 64

// Replicas counts distinct (key, worker) pairs: the measured memory cost
// of a partitioning run, in key-replica units (Section IV-B). Workers are
// tracked in per-key bitsets so the accounting is O(1) per message and
// O(|K|·n/64) space.
type Replicas struct {
	n     int
	words int
	keys  map[string][]uint64
	total int64
}

// NewReplicas returns an accounting structure for n workers.
func NewReplicas(n int) *Replicas {
	if n <= 0 {
		panic("metrics: NewReplicas with non-positive n")
	}
	return &Replicas{
		n:     n,
		words: (n + wordBits - 1) / wordBits,
		keys:  make(map[string][]uint64),
	}
}

// Observe records that one message of key was processed by worker.
func (r *Replicas) Observe(key string, worker int) {
	if worker < 0 || worker >= r.n {
		panic("metrics: worker out of range")
	}
	set, ok := r.keys[key]
	if !ok {
		set = make([]uint64, r.words)
		r.keys[key] = set
	}
	w, b := worker/wordBits, uint(worker%wordBits)
	if set[w]&(1<<b) == 0 {
		set[w] |= 1 << b
		r.total++
	}
}

// Total returns the number of distinct (key, worker) pairs seen.
func (r *Replicas) Total() int64 { return r.total }

// Keys returns the number of distinct keys seen.
func (r *Replicas) Keys() int { return len(r.keys) }

// PerKey returns the number of workers holding state for key.
func (r *Replicas) PerKey(key string) int {
	set, ok := r.keys[key]
	if !ok {
		return 0
	}
	c := 0
	for _, w := range set {
		c += popcount(w)
	}
	return c
}

// MaxPerKey returns the largest replica count over all keys.
func (r *Replicas) MaxPerKey() int {
	max := 0
	for _, set := range r.keys {
		c := 0
		for _, w := range set {
			c += popcount(w)
		}
		if c > max {
			max = c
		}
	}
	return max
}

func popcount(x uint64) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

// ---------------------------------------------------------------------------
// Quantiles

// Quantiles estimates percentiles from a stream of float64 samples using
// uniform reservoir sampling (Vitter's algorithm R) with a deterministic
// PRNG, so results are reproducible. With the default capacity the
// estimator is exact for runs below 64k samples.
type Quantiles struct {
	cap     int
	samples []float64
	seen    int64
	rng     uint64
	sorted  bool
}

// NewQuantiles returns an estimator keeping at most capacity samples;
// capacity ≤ 0 selects the default of 65536.
func NewQuantiles(capacity int) *Quantiles {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &Quantiles{cap: capacity, rng: 0x9e3779b97f4a7c15}
}

func (q *Quantiles) next() uint64 {
	q.rng += 0x9e3779b97f4a7c15
	z := q.rng
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Add feeds one sample.
func (q *Quantiles) Add(v float64) {
	q.seen++
	q.sorted = false
	if len(q.samples) < q.cap {
		q.samples = append(q.samples, v)
		return
	}
	// Replace a random element with probability cap/seen.
	j := q.next() % uint64(q.seen)
	if j < uint64(q.cap) {
		q.samples[j] = v
	}
}

// Count returns the number of samples fed so far.
func (q *Quantiles) Count() int64 { return q.seen }

// Quantile returns the p-quantile (0 ≤ p ≤ 1) of the samples, NaN when
// empty.
func (q *Quantiles) Quantile(p float64) float64 {
	if len(q.samples) == 0 {
		return math.NaN()
	}
	if !q.sorted {
		sort.Float64s(q.samples)
		q.sorted = true
	}
	if p <= 0 {
		return q.samples[0]
	}
	if p >= 1 {
		return q.samples[len(q.samples)-1]
	}
	idx := int(p * float64(len(q.samples)-1))
	return q.samples[idx]
}

// Mean returns the mean of the retained samples (≈ stream mean), NaN when
// empty.
func (q *Quantiles) Mean() float64 {
	if len(q.samples) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, v := range q.samples {
		s += v
	}
	return s / float64(len(q.samples))
}

// Max returns the largest retained sample, NaN when empty.
func (q *Quantiles) Max() float64 {
	if len(q.samples) == 0 {
		return math.NaN()
	}
	m := q.samples[0]
	for _, v := range q.samples[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
