package hashing

import (
	"fmt"
	"math"
	"math/bits"
	"testing"
	"testing/quick"
)

func TestNewFamilyPanicsOnBadSize(t *testing.T) {
	for _, size := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFamily(%d) did not panic", size)
				}
			}()
			NewFamily(size, 1)
		}()
	}
}

func TestFamilyDeterminism(t *testing.T) {
	a := NewFamily(8, 42)
	b := NewFamily(8, 42)
	keys := []string{"", "a", "key-1", "another key", "\x00\xff"}
	for i := 0; i < a.Size(); i++ {
		for _, k := range keys {
			if a.Hash(i, k) != b.Hash(i, k) {
				t.Fatalf("family not deterministic for member %d key %q", i, k)
			}
		}
	}
}

func TestFamilySeedsDiffer(t *testing.T) {
	a := NewFamily(4, 1)
	b := NewFamily(4, 2)
	same := 0
	for i := 0; i < 4; i++ {
		if a.Hash(i, "probe") == b.Hash(i, "probe") {
			same++
		}
	}
	if same == 4 {
		t.Fatal("families with different seeds produced identical hashes")
	}
}

func TestFamilyMembersIndependent(t *testing.T) {
	f := NewFamily(2, 7)
	n := 10
	// Over many keys, the joint distribution of (F1(k), F2(k)) should fill
	// the n×n grid; collisions F1(k)==F2(k) should occur at roughly rate 1/n.
	keys := 20000
	coll := 0
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		if f.Bucket(0, k, n) == f.Bucket(1, k, n) {
			coll++
		}
	}
	got := float64(coll) / float64(keys)
	if math.Abs(got-1.0/float64(n)) > 0.02 {
		t.Fatalf("collision rate %f, want ≈ %f", got, 1.0/float64(n))
	}
}

func TestBucketUniformity(t *testing.T) {
	f := NewFamily(1, 99)
	n := 16
	total := 160000
	counts := make([]int, n)
	for i := 0; i < total; i++ {
		counts[f.Bucket(0, fmt.Sprintf("uniform-%d", i), n)]++
	}
	// Chi-squared test with df = 15; 99.9% critical value ≈ 37.7.
	expected := float64(total) / float64(n)
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 37.7 {
		t.Fatalf("chi-squared %f exceeds 99.9%% critical value; distribution skewed: %v", chi2, counts)
	}
}

func TestBucketsMatchesBucket(t *testing.T) {
	f := NewFamily(5, 3)
	dst := make([]int, 5)
	f.Buckets(dst, "the-key", 23)
	for i, got := range dst {
		if want := f.Bucket(i, "the-key", 23); got != want {
			t.Fatalf("Buckets[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestBucketRangeProperty(t *testing.T) {
	f := NewFamily(3, 11)
	prop := func(key string, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		for i := 0; i < 3; i++ {
			b := f.Bucket(i, key, n)
			if b < 0 || b >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestString64Deterministic(t *testing.T) {
	if String64("abc") != String64("abc") {
		t.Fatal("String64 not deterministic")
	}
	if String64("abc") == String64("abd") {
		t.Fatal("String64 collided on near-identical keys (vanishingly unlikely)")
	}
}

func TestAvalancheLowBits(t *testing.T) {
	// Sequentially numbered keys must not map to sequential buckets; check
	// the low-bit quality of the finalizer by ensuring runs are broken up.
	f := NewFamily(1, 5)
	sameAsPrev := 0
	prev := -1
	for i := 0; i < 1000; i++ {
		b := f.Bucket(0, fmt.Sprintf("k%08d", i), 2)
		if b == prev {
			sameAsPrev++
		}
		prev = b
	}
	// For a fair coin, ~500 expected; alarm only on gross failure.
	if sameAsPrev < 350 || sameAsPrev > 650 {
		t.Fatalf("low-bit behaviour suspicious: %d/1000 repeats", sameAsPrev)
	}
}

// refDigest is a straightforward reference FNV-1a, written independently
// of the package implementation.
func refDigest(key string) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range []byte(key) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// refBucket is a from-scratch reference for the full digest→candidate
// path: FNV-1a digest, multiply-add with the member's seeded pair,
// murmur avalanche, Lemire multiply-shift reduction. It pins the
// digest-based candidates against an implementation that shares no code
// with the package.
func refBucket(mul, add uint64, key string, n int) int {
	h := mul*refDigest(key) + add
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	// Lemire reduction: high word of the 128-bit product h × n.
	hi, _ := bits.Mul64(h, uint64(n))
	return int(hi)
}

func TestDigestMatchesReference(t *testing.T) {
	for _, k := range []string{"", "a", "k0", "key-123", "another key", "\x00\xff", "日本語"} {
		if got, want := uint64(Digest(k)), refDigest(k); got != want {
			t.Fatalf("Digest(%q) = %#x, reference FNV-1a %#x", k, got, want)
		}
	}
}

func TestBucketDigestMatchesReference(t *testing.T) {
	// Re-derive the member seed pairs exactly as NewFamily documents: a
	// SplitMix64 stream from the base seed, multiplier forced odd.
	const baseSeed = 42
	split := func(x uint64) uint64 {
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		return x
	}
	muls := make([]uint64, 4)
	adds := make([]uint64, 4)
	s := uint64(baseSeed)
	for i := range muls {
		s += 0x9e3779b97f4a7c15
		muls[i] = split(s) | 1
		s += 0x9e3779b97f4a7c15
		adds[i] = split(s)
	}
	f := NewFamily(4, baseSeed)
	for i := 0; i < 4; i++ {
		for j := 0; j < 200; j++ {
			k := fmt.Sprintf("ref-key-%d", j)
			for _, n := range []int{1, 2, 13, 50, 100} {
				if got, want := f.Bucket(i, k, n), refBucket(muls[i], adds[i], k, n); got != want {
					t.Fatalf("member %d key %q n=%d: Bucket = %d, reference %d", i, k, n, got, want)
				}
			}
		}
	}
}

func TestHashEqualsDigestPath(t *testing.T) {
	// Hash/Bucket are documented as thin wrappers over the digest path;
	// the two forms must agree for every member, key and worker count.
	f := NewFamily(6, 77)
	for i := 0; i < f.Size(); i++ {
		for j := 0; j < 100; j++ {
			k := fmt.Sprintf("wrap-%d", j)
			d := Digest(k)
			if f.Hash(i, k) != f.HashDigest(i, d) {
				t.Fatalf("Hash(%d, %q) != HashDigest of Digest", i, k)
			}
			if f.Bucket(i, k, 37) != f.BucketDigest(i, d, 37) {
				t.Fatalf("Bucket(%d, %q) != BucketDigest of Digest", i, k)
			}
		}
	}
	if String64("abc") != Mix64(Digest("abc")) {
		t.Fatal("String64 is not the avalanched digest")
	}
}

func TestCrossMemberUniformity(t *testing.T) {
	// Chi-squared uniformity for every member of a d=4 family — the
	// members D-Choices actually uses — not just member 0.
	f := NewFamily(4, 123)
	n := 16
	total := 80000
	for i := 0; i < 4; i++ {
		counts := make([]int, n)
		for j := 0; j < total; j++ {
			counts[f.Bucket(i, fmt.Sprintf("cmu-%d", j), n)]++
		}
		expected := float64(total) / float64(n)
		chi2 := 0.0
		for _, c := range counts {
			d := float64(c) - expected
			chi2 += d * d / expected
		}
		// df = 15; 99.9% critical value ≈ 37.7.
		if chi2 > 37.7 {
			t.Fatalf("member %d chi-squared %f exceeds 99.9%% critical value: %v", i, chi2, counts)
		}
	}
}

func TestPairwiseMemberIndependence(t *testing.T) {
	// For every pair of members in a d=4 family, the joint bucket
	// distribution must fill the n×n grid at the product rate: a
	// chi-squared test over the joint cells.
	f := NewFamily(4, 9)
	n := 8
	total := 64000
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			joint := make([]int, n*n)
			for j := 0; j < total; j++ {
				k := fmt.Sprintf("pair-%d", j)
				d := Digest(k)
				joint[f.BucketDigest(a, d, n)*n+f.BucketDigest(b, d, n)]++
			}
			expected := float64(total) / float64(n*n)
			chi2 := 0.0
			for _, c := range joint {
				diff := float64(c) - expected
				chi2 += diff * diff / expected
			}
			// df = 63; 99.9% critical value ≈ 103.4.
			if chi2 > 103.4 {
				t.Fatalf("members (%d,%d) joint chi-squared %f: not independent", a, b, chi2)
			}
		}
	}
}

func BenchmarkHash(b *testing.B) {
	f := NewFamily(2, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = f.Hash(i&1, "benchmark-key-with-typical-length")
	}
}

func BenchmarkBucketsViaDigest(b *testing.B) {
	// The d-candidate derivation the partitioners pay per message: one
	// digest, then d mixes.
	f := NewFamily(4, 1)
	dst := make([]int, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Buckets(dst, "benchmark-key-with-typical-length", 50)
	}
}
