package hashing

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestNewFamilyPanicsOnBadSize(t *testing.T) {
	for _, size := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFamily(%d) did not panic", size)
				}
			}()
			NewFamily(size, 1)
		}()
	}
}

func TestFamilyDeterminism(t *testing.T) {
	a := NewFamily(8, 42)
	b := NewFamily(8, 42)
	keys := []string{"", "a", "key-1", "another key", "\x00\xff"}
	for i := 0; i < a.Size(); i++ {
		for _, k := range keys {
			if a.Hash(i, k) != b.Hash(i, k) {
				t.Fatalf("family not deterministic for member %d key %q", i, k)
			}
		}
	}
}

func TestFamilySeedsDiffer(t *testing.T) {
	a := NewFamily(4, 1)
	b := NewFamily(4, 2)
	same := 0
	for i := 0; i < 4; i++ {
		if a.Hash(i, "probe") == b.Hash(i, "probe") {
			same++
		}
	}
	if same == 4 {
		t.Fatal("families with different seeds produced identical hashes")
	}
}

func TestFamilyMembersIndependent(t *testing.T) {
	f := NewFamily(2, 7)
	n := 10
	// Over many keys, the joint distribution of (F1(k), F2(k)) should fill
	// the n×n grid; collisions F1(k)==F2(k) should occur at roughly rate 1/n.
	keys := 20000
	coll := 0
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		if f.Bucket(0, k, n) == f.Bucket(1, k, n) {
			coll++
		}
	}
	got := float64(coll) / float64(keys)
	if math.Abs(got-1.0/float64(n)) > 0.02 {
		t.Fatalf("collision rate %f, want ≈ %f", got, 1.0/float64(n))
	}
}

func TestBucketUniformity(t *testing.T) {
	f := NewFamily(1, 99)
	n := 16
	total := 160000
	counts := make([]int, n)
	for i := 0; i < total; i++ {
		counts[f.Bucket(0, fmt.Sprintf("uniform-%d", i), n)]++
	}
	// Chi-squared test with df = 15; 99.9% critical value ≈ 37.7.
	expected := float64(total) / float64(n)
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 37.7 {
		t.Fatalf("chi-squared %f exceeds 99.9%% critical value; distribution skewed: %v", chi2, counts)
	}
}

func TestBucketsMatchesBucket(t *testing.T) {
	f := NewFamily(5, 3)
	dst := make([]int, 5)
	f.Buckets(dst, "the-key", 23)
	for i, got := range dst {
		if want := f.Bucket(i, "the-key", 23); got != want {
			t.Fatalf("Buckets[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestBucketRangeProperty(t *testing.T) {
	f := NewFamily(3, 11)
	prop := func(key string, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		for i := 0; i < 3; i++ {
			b := f.Bucket(i, key, n)
			if b < 0 || b >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestString64Deterministic(t *testing.T) {
	if String64("abc") != String64("abc") {
		t.Fatal("String64 not deterministic")
	}
	if String64("abc") == String64("abd") {
		t.Fatal("String64 collided on near-identical keys (vanishingly unlikely)")
	}
}

func TestAvalancheLowBits(t *testing.T) {
	// Sequentially numbered keys must not map to sequential buckets; check
	// the low-bit quality of the finalizer by ensuring runs are broken up.
	f := NewFamily(1, 5)
	sameAsPrev := 0
	prev := -1
	for i := 0; i < 1000; i++ {
		b := f.Bucket(0, fmt.Sprintf("k%08d", i), 2)
		if b == prev {
			sameAsPrev++
		}
		prev = b
	}
	// For a fair coin, ~500 expected; alarm only on gross failure.
	if sameAsPrev < 350 || sameAsPrev > 650 {
		t.Fatalf("low-bit behaviour suspicious: %d/1000 repeats", sameAsPrev)
	}
}

func BenchmarkHash(b *testing.B) {
	f := NewFamily(2, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = f.Hash(i&1, "benchmark-key-with-typical-length")
	}
}
