// Package hashing provides a deterministic family of independent hash
// functions F_1..F_d mapping string keys onto [0, n) worker indices.
//
// The paper's Greedy-d process requires d independent uniform hash
// functions. We derive each family member from a 64-bit FNV-1a core mixed
// with a per-member seed and finished with a murmur-style avalanche, which
// gives well-distributed, statistically independent values without any
// dependency outside the standard library. All functions are pure and
// deterministic, so simulation runs are exactly reproducible.
package hashing

// Offset and prime of the 64-bit FNV-1a hash.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// seedMix is the SplitMix64 increment; used to derive per-index seeds.
const seedMix = 0x9e3779b97f4a7c15

// Family is a deterministic family of hash functions over string keys.
// The zero value is not usable; construct with NewFamily.
type Family struct {
	seeds []uint64
}

// NewFamily returns a family of size members derived from the given base
// seed. Two families built from the same seed are identical; distinct
// members of one family behave as independent hash functions.
func NewFamily(size int, seed uint64) *Family {
	if size <= 0 {
		panic("hashing: family size must be positive")
	}
	seeds := make([]uint64, size)
	s := seed
	for i := range seeds {
		s += seedMix
		seeds[i] = splitmix64(s)
	}
	return &Family{seeds: seeds}
}

// Size returns the number of hash functions in the family.
func (f *Family) Size() int { return len(f.seeds) }

// Hash returns the 64-bit hash of key under family member i.
func (f *Family) Hash(i int, key string) uint64 {
	h := fnvOffset64 ^ f.seeds[i]
	for j := 0; j < len(key); j++ {
		h ^= uint64(key[j])
		h *= fnvPrime64
	}
	return finalize(h)
}

// Bucket returns family member i's choice of worker for key among n
// workers, i.e. F_i(key) ∈ [0, n).
func (f *Family) Bucket(i int, key string, n int) int {
	return int(f.Hash(i, key) % uint64(n))
}

// Buckets fills dst with the first len(dst) family members' choices for
// key among n workers and returns dst. It is the allocation-free form of
// calling Bucket for i = 0..len(dst)-1.
func (f *Family) Buckets(dst []int, key string, n int) []int {
	for i := range dst {
		dst[i] = f.Bucket(i, key, n)
	}
	return dst
}

// splitmix64 is the SplitMix64 output function: a fast, high-quality
// bijective mixer used to stretch one seed into many.
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// finalize applies a murmur3-style avalanche so that low-order bits of the
// result depend on all input bytes; plain FNV-1a is weak in the low bits
// that the modulo in Bucket consumes.
func finalize(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// String64 hashes key with an unseeded member; a convenience for callers
// that need a single stable hash (e.g. key grouping).
func String64(key string) uint64 {
	var h uint64 = fnvOffset64
	for j := 0; j < len(key); j++ {
		h ^= uint64(key[j])
		h *= fnvPrime64
	}
	return finalize(h)
}
