// Package hashing provides a deterministic family of independent hash
// functions F_1..F_d mapping string keys onto [0, n) worker indices.
//
// The paper's Greedy-d process requires d independent uniform hash
// functions, and the partitioner sits on the per-message hot path of a
// DSPE, so the family is split into two stages:
//
//  1. Digest scans the key bytes ONCE with 64-bit FNV-1a, producing a
//     KeyDigest — the canonical 64-bit representation of a key that all
//     routing layers operate on.
//  2. HashDigest/BucketDigest apply a per-member multiply-shift
//     universal hash to the digest and finish with a murmur-style
//     avalanche, deriving all d candidate buckets from that single
//     string scan without rescanning the key.
//
// Hash and Bucket remain as thin per-key wrappers (digest-then-mix), so
// Hash(i, key) == HashDigest(i, Digest(key)) always holds. Bucket
// reduction uses Lemire's multiply-shift instead of a modulo, avoiding a
// 64-bit hardware division per candidate. All functions are pure and
// deterministic, so simulation runs are exactly reproducible.
package hashing

import "math/bits"

// Offset and prime of the 64-bit FNV-1a hash.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// seedMix is the SplitMix64 increment; used to derive per-index seeds.
const seedMix = 0x9e3779b97f4a7c15

// KeyDigest is the 64-bit digest of a key: the result of one FNV-1a scan
// over the key bytes, before any per-member mixing. Every layer of the
// routing path (candidate choice, sketches, engines) identifies keys by
// digest; the invariant "all senders map a key to the same candidates"
// holds because Digest is a pure function of the key bytes and every
// family member derives its bucket from the digest alone. Two distinct
// keys collide only with probability ≈ 2⁻⁶⁴ per pair, in which case they
// are routed (and counted) as one key — harmless for load balancing.
type KeyDigest uint64

// digestHook, when non-nil, is invoked once per Digest call. It exists
// for tests that pin the hash-once invariant (each message's key bytes
// are scanned exactly once end to end); production code never sets it,
// so the cost is one predicted branch per digest.
var digestHook func()

// SetDigestHook installs (or, with nil, removes) the per-Digest test
// hook. Callers must install the hook before any goroutine that digests
// and remove it after all such goroutines have been joined; the hook
// itself must be safe for concurrent invocation (e.g. an atomic
// counter increment).
func SetDigestHook(f func()) { digestHook = f }

// Digest returns the 64-bit digest of key: a single FNV-1a pass over the
// key bytes. It is the only place in the routing path that touches the
// key's bytes.
func Digest(key string) KeyDigest {
	if digestHook != nil {
		digestHook()
	}
	var h uint64 = fnvOffset64
	for j := 0; j < len(key); j++ {
		h ^= uint64(key[j])
		h *= fnvPrime64
	}
	return KeyDigest(h)
}

// Family is a deterministic family of hash functions over string keys.
// The zero value is not usable; construct with NewFamily.
//
// Each member i carries an independently seeded pair (mul_i, add_i) and
// maps a digest d to finalize(mul_i·d + add_i): a multiply-shift
// universal hash (Dietzfelbinger et al.) composed with a bijective
// avalanche. Independent multipliers make distinct members behave as
// independently drawn hash functions of the digest — a simple
// xor-with-seed before one fixed avalanche does NOT (the pair
// (f(x), f(x⊕c)) retains measurable structure, enough to visibly skew
// Greedy-2 at small n).
type Family struct {
	mul []uint64 // odd multipliers, one per member
	add []uint64
}

// NewFamily returns a family of size members derived from the given base
// seed. Two families built from the same seed are identical; distinct
// members of one family behave as independent hash functions.
func NewFamily(size int, seed uint64) *Family {
	if size <= 0 {
		panic("hashing: family size must be positive")
	}
	mul := make([]uint64, size)
	add := make([]uint64, size)
	s := seed
	for i := range mul {
		s += seedMix
		mul[i] = splitmix64(s) | 1 // odd, so d ↦ mul·d is a bijection
		s += seedMix
		add[i] = splitmix64(s)
	}
	return &Family{mul: mul, add: add}
}

// Size returns the number of hash functions in the family.
func (f *Family) Size() int { return len(f.mul) }

// HashDigest returns the 64-bit hash of a pre-computed key digest under
// family member i, so all members share one string scan.
func (f *Family) HashDigest(i int, d KeyDigest) uint64 {
	return finalize(f.mul[i]*uint64(d) + f.add[i])
}

// BucketDigest returns family member i's choice of worker for a key
// digest among n workers, i.e. F_i(key) ∈ [0, n). The reduction is
// Lemire's multiply-shift (unbiased for n ≪ 2⁶⁴ up to a negligible
// 2⁻⁶⁴-scale deviation), avoiding a hardware divide on the hot path.
func (f *Family) BucketDigest(i int, d KeyDigest, n int) int {
	hi, _ := bits.Mul64(f.HashDigest(i, d), uint64(n))
	return int(hi)
}

// Hash returns the 64-bit hash of key under family member i. It is the
// per-key convenience form of HashDigest: one digest scan, then mix.
func (f *Family) Hash(i int, key string) uint64 {
	return f.HashDigest(i, Digest(key))
}

// Bucket returns family member i's choice of worker for key among n
// workers, i.e. F_i(key) ∈ [0, n).
func (f *Family) Bucket(i int, key string, n int) int {
	return f.BucketDigest(i, Digest(key), n)
}

// Buckets fills dst with the first len(dst) family members' choices for
// key among n workers and returns dst. The key is scanned once; each
// member derives its bucket from the shared digest.
func (f *Family) Buckets(dst []int, key string, n int) []int {
	d := Digest(key)
	for i := range dst {
		dst[i] = f.BucketDigest(i, d, n)
	}
	return dst
}

// Bounded reduces a uniform 64-bit value x to [0, n) with Lemire's
// multiply-shift: the same unbiased-up-to-2⁻⁶⁴ reduction BucketDigest
// uses, exported for callers that need a bounded draw from their own
// PRNG output (e.g. reservoir slot selection) without the modulo bias
// of x % n or a hardware divide.
func Bounded(x, n uint64) uint64 {
	hi, _ := bits.Mul64(x, n)
	return hi
}

// splitmix64 is the SplitMix64 output function: a fast, high-quality
// bijective mixer used to stretch one seed into many.
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// finalize applies a murmur3-style avalanche so that every bit of the
// result depends on all input bits; plain FNV-1a (and a raw xor with the
// member seed) is weak in the bits the bucket reduction consumes.
func finalize(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Mix64 avalanches a digest into a uniformly distributed 64-bit value;
// exported for callers that need to index hash tables by digest (the
// digest itself is raw FNV-1a state and has weak low bits).
func Mix64(d KeyDigest) uint64 { return finalize(uint64(d)) }

// String64 hashes key with an unseeded member; a convenience for callers
// that need a single stable hash (e.g. key grouping).
func String64(key string) uint64 {
	return finalize(uint64(Digest(key)))
}
