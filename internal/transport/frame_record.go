package transport

import (
	"encoding/binary"
	"fmt"
)

// frame_record.go is the PR-8 record-layout codec, retained verbatim as
// the A/B reference for BenchmarkFrameCodec (and the cross-layout
// equivalence test): one interleaved varint record per message, every
// field shipped for every message, dictionary without epochs (full ⇒
// literals forever). It is not used on any wire path — tcp.go speaks
// only the columnar v2 codec in frame.go.
//
// Record wire layout (all integers varint unless noted):
//
//	payload := uvarint(count) msg*count
//	msg     := uvarint(keyRef) [uvarint(keyLen) keyBytes dig:8LE]
//	           zigzag(window) zigzag(weight)
//	           uvarint(val0) uvarint(val1)
//	           zigzag(emit) zigzag(src)
//
// keyRef < len(dict) references an existing entry; keyRef == len(dict)
// introduces a new entry; keyRef == len(dict)+1 is a literal that is
// NOT added (used once the dictionary is full).

type recordEncoder struct {
	dict map[string]uint64
	buf  []byte
}

func (e *recordEncoder) AppendFrame(dst []byte, msgs []Msg) []byte {
	if e.dict == nil {
		e.dict = make(map[string]uint64)
	}
	b := e.buf[:0]
	b = binary.AppendUvarint(b, uint64(len(msgs)))
	for i := range msgs {
		m := &msgs[i]
		if ref, ok := e.dict[m.Key]; ok {
			b = binary.AppendUvarint(b, ref)
		} else {
			n := uint64(len(e.dict))
			if n < frameDictMax {
				e.dict[m.Key] = n
				b = binary.AppendUvarint(b, n)
			} else {
				b = binary.AppendUvarint(b, n+1) // literal, not added
			}
			b = binary.AppendUvarint(b, uint64(len(m.Key)))
			b = append(b, m.Key...)
			b = binary.LittleEndian.AppendUint64(b, m.Dig)
		}
		b = binary.AppendUvarint(b, zig(m.Window))
		b = binary.AppendUvarint(b, zig(m.Weight))
		b = binary.AppendUvarint(b, m.Val0)
		b = binary.AppendUvarint(b, m.Val1)
		b = binary.AppendUvarint(b, zig(m.Emit))
		b = binary.AppendUvarint(b, zig(int64(m.Src)))
	}
	e.buf = b
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

type recordDecoder struct {
	dict []dictEntry
}

func (d *recordDecoder) DecodeFrame(payload []byte, dst []Msg) ([]Msg, error) {
	p := payload
	count, n := binary.Uvarint(p)
	if n <= 0 {
		return dst, fmt.Errorf("%w: bad count", ErrCorrupt)
	}
	p = p[n:]
	if count > uint64(len(p)) {
		return dst, fmt.Errorf("%w: count %d exceeds payload", ErrCorrupt, count)
	}
	for i := uint64(0); i < count; i++ {
		var m Msg
		ref, n := binary.Uvarint(p)
		if n <= 0 {
			return dst, fmt.Errorf("%w: bad key ref", ErrCorrupt)
		}
		p = p[n:]
		switch {
		case ref < uint64(len(d.dict)):
			m.Key, m.Dig = d.dict[ref].key, d.dict[ref].dig
		case ref == uint64(len(d.dict)) || ref == uint64(len(d.dict))+1:
			klen, n := binary.Uvarint(p)
			if n <= 0 || klen > frameMaxKey || klen > uint64(len(p)-n) {
				return dst, fmt.Errorf("%w: bad key length", ErrCorrupt)
			}
			p = p[n:]
			m.Key = string(p[:klen])
			p = p[klen:]
			if len(p) < 8 {
				return dst, fmt.Errorf("%w: truncated digest", ErrCorrupt)
			}
			m.Dig = binary.LittleEndian.Uint64(p)
			p = p[8:]
			if ref == uint64(len(d.dict)) {
				if ref >= frameDictMax {
					return dst, fmt.Errorf("%w: dictionary overflow", ErrCorrupt)
				}
				d.dict = append(d.dict, dictEntry{m.Key, m.Dig})
			}
		default:
			return dst, fmt.Errorf("%w: key ref %d out of range", ErrCorrupt, ref)
		}
		fields := [4]uint64{}
		for f := 0; f < 4; f++ {
			v, n := binary.Uvarint(p)
			if n <= 0 {
				return dst, fmt.Errorf("%w: truncated msg %d", ErrCorrupt, i)
			}
			p = p[n:]
			fields[f] = v
		}
		m.Window, m.Weight = unzig(fields[0]), unzig(fields[1])
		m.Val0, m.Val1 = fields[2], fields[3]
		for f := 0; f < 2; f++ {
			v, n := binary.Uvarint(p)
			if n <= 0 {
				return dst, fmt.Errorf("%w: truncated msg %d", ErrCorrupt, i)
			}
			p = p[n:]
			if f == 0 {
				m.Emit = unzig(v)
			} else {
				s := unzig(v)
				if s < -(1<<31) || s >= 1<<31 {
					return dst, fmt.Errorf("%w: src out of range", ErrCorrupt)
				}
				m.Src = int32(s)
			}
		}
		dst = append(dst, m)
	}
	if len(p) != 0 {
		return dst, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(p))
	}
	return dst, nil
}
