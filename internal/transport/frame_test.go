package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
)

// digestOf mimics the dataplane's invariant that a digest is a pure
// function of its key (FNV-1a — the codec dictionary relies on it).
func digestOf(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * 1099511628211
	}
	return h
}

// randMsgs builds a deterministic pseudo-random slab exercising every
// field range: negative windows/weights/src, full 64-bit digests and
// values, repeated keys (dictionary hits) and empty keys.
func randMsgs(seed uint64, n int) []Msg {
	rng := seed
	next := func() uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng
	}
	msgs := make([]Msg, n)
	for i := range msgs {
		key := fmt.Sprintf("key-%d", next()%64)
		if next()%16 == 0 {
			key = ""
		}
		msgs[i] = Msg{
			Dig:    digestOf(key),
			Window: int64(next()) >> (next() % 40),
			Weight: int64(next()) >> (next() % 40),
			Val0:   next(),
			Val1:   next(),
			Emit:   int64(next()) >> (next() % 40),
			Src:    int32(next()),
			Key:    key,
		}
	}
	return msgs
}

// TestFrameRoundTrip is the property test: arbitrary slabs survive
// encode→decode bit-exactly, across many frames on one connection (so
// the dictionary reference path is exercised heavily), at assorted
// slab sizes including empty.
func TestFrameRoundTrip(t *testing.T) {
	var enc Encoder
	var dec Decoder
	for trial, size := range []int{0, 1, 2, 7, 64, 500, 1} {
		msgs := randMsgs(uint64(trial)*977+5, size)
		frame := enc.AppendFrame(nil, msgs)
		payloadLen, n := binary.Uvarint(frame)
		if n <= 0 || int(payloadLen) != len(frame)-n {
			t.Fatalf("trial %d: bad length prefix", trial)
		}
		got, err := dec.DecodeFrame(frame[n:], nil)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if len(got) != len(msgs) {
			t.Fatalf("trial %d: %d msgs decoded, want %d", trial, len(got), len(msgs))
		}
		for i := range msgs {
			if got[i] != msgs[i] {
				t.Fatalf("trial %d msg %d: got %+v want %+v", trial, i, got[i], msgs[i])
			}
		}
	}
}

// TestFrameDictionaryOverflow pins the full-dictionary literal path:
// with more distinct keys than frameDictMax the encoder switches to
// non-added literals and the decoder must keep following.
func TestFrameDictionaryOverflow(t *testing.T) {
	var enc Encoder
	var dec Decoder
	const chunk = 1024
	msgs := make([]Msg, chunk)
	sent := 0
	for sent < frameDictMax+3*chunk {
		for i := range msgs {
			msgs[i] = Msg{Key: fmt.Sprintf("k%d", sent+i), Dig: uint64(sent + i), Weight: 1}
		}
		frame := enc.AppendFrame(nil, msgs)
		_, n := binary.Uvarint(frame)
		got, err := dec.DecodeFrame(frame[n:], nil)
		if err != nil {
			t.Fatalf("decode at %d keys: %v", sent, err)
		}
		for i := range got {
			if got[i].Key != msgs[i].Key || got[i].Dig != msgs[i].Dig {
				t.Fatalf("msg %d: got key %q dig %d", sent+i, got[i].Key, got[i].Dig)
			}
		}
		sent += chunk
	}
	if len(dec.dict) != frameDictMax {
		t.Fatalf("decoder dictionary has %d entries, want %d", len(dec.dict), frameDictMax)
	}
}

// TestFrameDecodeCorrupt feeds the decoder systematically damaged
// payloads — truncations at every length and targeted corruptions —
// asserting an ErrCorrupt-wrapped error and no panic every time.
func TestFrameDecodeCorrupt(t *testing.T) {
	var enc Encoder
	msgs := randMsgs(42, 16)
	frame := enc.AppendFrame(nil, msgs)
	_, n := binary.Uvarint(frame)
	payload := frame[n:]

	for cut := 0; cut < len(payload); cut++ {
		var dec Decoder
		if _, err := dec.DecodeFrame(payload[:cut], nil); err == nil && cut != 0 {
			// Some prefixes happen to decode fewer messages and then
			// fail on trailing state; all must error except a frame
			// that legitimately contains zero messages.
			t.Fatalf("truncation at %d decoded cleanly", cut)
		} else if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: error does not wrap ErrCorrupt: %v", cut, err)
		}
	}
	for _, bad := range [][]byte{
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, // unterminated varint count
		{0x01, 0x7f},             // key ref far out of range
		{0x02, 0x00, 0x01, 0x41}, // new key then truncated digest
		append([]byte{0x01, 0x00}, 0xff, 0xff, 0xff, 0xff, 0xff), // huge key length
	} {
		var dec Decoder
		if _, err := dec.DecodeFrame(bad, nil); err == nil {
			t.Fatalf("corrupt payload %x decoded cleanly", bad)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("corrupt payload %x: error does not wrap ErrCorrupt: %v", bad, err)
		}
	}
}

// FuzzFrameDecode is the decoder's panic fence: any byte string either
// decodes or errors. Seeds cover a valid frame payload, every targeted
// corruption from the unit test, and the empty input.
func FuzzFrameDecode(f *testing.F) {
	var enc Encoder
	valid := enc.AppendFrame(nil, randMsgs(7, 8))
	_, n := binary.Uvarint(valid)
	f.Add(valid[n:])
	var enc2 Encoder
	single := enc2.AppendFrame(nil, []Msg{{Key: "k", Dig: 1, Window: -3, Weight: 9, Src: -1}})
	_, n2 := binary.Uvarint(single)
	f.Add(single[n2:])
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x7f})
	f.Add([]byte{0x02, 0x00, 0x01, 0x41})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, payload []byte) {
		var dec Decoder
		msgs, err := dec.DecodeFrame(payload, nil)
		if err == nil {
			// A clean decode must round-trip back through the encoder.
			var re Encoder
			_ = re.AppendFrame(nil, msgs)
		}
	})
}
