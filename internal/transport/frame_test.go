package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
)

// digestOf mimics the dataplane's invariant that a digest is a pure
// function of its key (FNV-1a — the codec dictionary relies on it).
// Watermark ticks carry no key and a zero digest, so f("") = 0.
func digestOf(key string) uint64 {
	if key == "" {
		return 0
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * 1099511628211
	}
	return h
}

// randMsgs builds a deterministic pseudo-random slab exercising every
// field range: negative windows/weights/src, full 64-bit digests and
// values, repeated keys (dictionary hits), empty keys, zero and
// nonzero emits, constant and mixed srcs.
func randMsgs(seed uint64, n int) []Msg {
	rng := seed
	next := func() uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng
	}
	msgs := make([]Msg, n)
	for i := range msgs {
		key := fmt.Sprintf("key-%d", next()%64)
		if next()%16 == 0 {
			key = ""
		}
		m := Msg{
			Dig:    digestOf(key),
			Window: int64(next()) >> (next() % 40),
			Weight: int64(next()) >> (next() % 40),
			Val0:   next(),
			Val1:   next(),
			Emit:   int64(next()) >> (next() % 40),
			Src:    int32(next()),
			Key:    key,
		}
		if next()%4 == 0 {
			m.Emit = 0 // exercise the sparse emit column's gaps
		}
		if next()%8 == 0 {
			m.Val0, m.Val1 = 0, 0
		}
		msgs[i] = m
	}
	return msgs
}

// decodeWholeFrame strips the length prefix and decodes.
func decodeWholeFrame(t *testing.T, dec *Decoder, frame []byte, dst []Msg) []Msg {
	t.Helper()
	payloadLen, n := binary.Uvarint(frame)
	if n <= 0 || int(payloadLen) != len(frame)-n {
		t.Fatalf("bad length prefix")
	}
	got, err := dec.DecodeFrame(frame[n:], dst)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got
}

// TestFrameRoundTrip is the property test: arbitrary slabs survive
// encode→decode bit-exactly across many frames on one connection (so
// the persistent-dictionary reference path is exercised heavily), at
// assorted slab sizes including empty, with every optional column
// present and absent.
func TestFrameRoundTrip(t *testing.T) {
	var enc Encoder
	var dec Decoder
	for trial, size := range []int{0, 1, 2, 7, 64, 500, 1} {
		msgs := randMsgs(uint64(trial)*977+5, size)
		frame := enc.AppendFrame(nil, msgs)
		got := decodeWholeFrame(t, &dec, frame, nil)
		if len(got) != len(msgs) {
			t.Fatalf("trial %d: %d msgs decoded, want %d", trial, len(got), len(msgs))
		}
		for i := range msgs {
			if got[i] != msgs[i] {
				t.Fatalf("trial %d msg %d: got %+v want %+v", trial, i, got[i], msgs[i])
			}
		}
	}
	// Uniform-field slabs hit the all-zero/constant column elisions.
	for _, m := range []Msg{
		{Key: "k", Dig: digestOf("k")},
		{Key: "k", Dig: digestOf("k"), Weight: 1, Src: 3, Window: 7},
		{Src: -1, Window: 5}, // watermark-tick shape
	} {
		slab := make([]Msg, 33)
		for i := range slab {
			slab[i] = m
		}
		frame := enc.AppendFrame(nil, slab)
		got := decodeWholeFrame(t, &dec, frame, nil)
		for i := range slab {
			if got[i] != slab[i] {
				t.Fatalf("uniform slab msg %d: got %+v want %+v", i, got[i], slab[i])
			}
		}
	}
}

// TestFrameLayoutEquivalence pins the two codecs against each other:
// the same message stream decodes identically through the PR-8 record
// layout and the columnar layout, and the columnar frames are smaller
// on a Zipf-skewed key slab (the wire-size claim, asserted).
func TestFrameLayoutEquivalence(t *testing.T) {
	var cenc Encoder
	var cdec Decoder
	var renc recordEncoder
	var rdec recordDecoder
	colBytes, recBytes := 0, 0
	for trial := 0; trial < 20; trial++ {
		msgs := zipfSlab(uint64(trial)+1, 256)
		cf := cenc.AppendFrame(nil, msgs)
		rf := renc.AppendFrame(nil, msgs)
		colBytes += len(cf)
		recBytes += len(rf)
		cg := decodeWholeFrame(t, &cdec, cf, nil)
		_, n := binary.Uvarint(rf)
		rg, err := rdec.DecodeFrame(rf[n:], nil)
		if err != nil {
			t.Fatalf("record decode: %v", err)
		}
		for i := range msgs {
			if cg[i] != msgs[i] || rg[i] != msgs[i] {
				t.Fatalf("trial %d msg %d: columnar %+v record %+v want %+v", trial, i, cg[i], rg[i], msgs[i])
			}
		}
	}
	if colBytes >= recBytes {
		t.Fatalf("columnar frames (%d B) not smaller than record frames (%d B)", colBytes, recBytes)
	}
	t.Logf("zipf slabs: columnar %d B vs record %d B (%.2fx)", colBytes, recBytes, float64(recBytes)/float64(colBytes))
}

// TestFrameDictionaryEpochReset pins the epoch-reset protocol: pushing
// more distinct keys than frameDictMax forces the encoder to start new
// epochs, the decoder follows every reset bit-exactly, and hot keys
// re-enter the fresh dictionary (the stream keeps decoding after any
// number of resets).
func TestFrameDictionaryEpochReset(t *testing.T) {
	var enc Encoder
	var dec Decoder
	const chunk = 1024
	msgs := make([]Msg, chunk)
	var got []Msg
	sent := 0
	for sent < 3*frameDictMax {
		for i := range msgs {
			key := fmt.Sprintf("k%d", sent+i)
			if i%8 == 0 {
				key = "hot" // a recurring key that re-enters after each reset
			}
			msgs[i] = Msg{Key: key, Dig: digestOf(key), Weight: 1}
		}
		frame := enc.AppendFrame(nil, msgs)
		got = decodeWholeFrame(t, &dec, frame, got[:0])
		for i := range got {
			if got[i].Key != msgs[i].Key || got[i].Dig != msgs[i].Dig {
				t.Fatalf("msg %d: got key %q dig %d, want %q %d", sent+i, got[i].Key, got[i].Dig, msgs[i].Key, msgs[i].Dig)
			}
		}
		sent += chunk
	}
	st := enc.Stats()
	if st.Resets < 2 {
		t.Fatalf("encoder performed %d epoch resets, want >= 2 after %d distinct keys", st.Resets, sent)
	}
	if st.Hits == 0 {
		t.Fatalf("no dictionary hits despite the recurring hot key")
	}
	if dec.epoch != enc.epoch {
		t.Fatalf("decoder epoch %d, encoder epoch %d", dec.epoch, enc.epoch)
	}
	if len(dec.dict) > frameDictMax+chunk {
		t.Fatalf("decoder dictionary has %d entries, want <= %d", len(dec.dict), frameDictMax+chunk)
	}
}

// TestFrameEpochDesyncDetected pins the protocol's safety property: a
// decoder that misses a reset (or sees a duplicated frame) errors on
// the epoch check instead of silently delivering wrong keys.
func TestFrameEpochDesyncDetected(t *testing.T) {
	var enc Encoder
	enc.epoch = 3 // encoder several epochs ahead of the fresh decoder
	frame := enc.AppendFrame(nil, []Msg{{Key: "k", Dig: 1}})
	_, n := binary.Uvarint(frame)
	var dec Decoder
	if _, err := dec.DecodeFrame(frame[n:], nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("epoch desync decoded with err = %v, want ErrCorrupt", err)
	}
}

// TestColumnarDecodeSteadyStateZeroAllocs is the hard decode-side
// allocation assertion the acceptance criteria require (mirroring the
// encode-side SlabGranter assert): once the dictionary is warm, a
// whole-frame decode into a reused slab performs zero allocations.
func TestColumnarDecodeSteadyStateZeroAllocs(t *testing.T) {
	var enc Encoder
	var dec Decoder
	slab := zipfSlab(7, 256)
	// Warm the dictionary on both sides, then encode a steady-state
	// frame (every key a hit).
	warm := enc.AppendFrame(nil, slab)
	decodeWholeFrame(t, &dec, warm, nil)
	frame := enc.AppendFrame(nil, slab)
	_, n := binary.Uvarint(frame)
	payload := frame[n:]
	dst := make([]Msg, 0, 2*len(slab))
	var err error
	if allocs := testing.AllocsPerRun(200, func() {
		dst, err = dec.DecodeFrame(payload, dst[:0])
		if err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("steady-state decode allocates %.1f allocs/op, want 0", allocs)
	}
	if len(dst) != len(slab) {
		t.Fatalf("decoded %d msgs, want %d", len(dst), len(slab))
	}
}

// TestFrameDecodeCorrupt feeds the decoder systematically damaged
// payloads — truncations at every length and targeted corruptions of
// the v2 layout — asserting an ErrCorrupt-wrapped error and no panic
// every time.
func TestFrameDecodeCorrupt(t *testing.T) {
	var enc Encoder
	msgs := randMsgs(42, 16)
	frame := enc.AppendFrame(nil, msgs)
	_, n := binary.Uvarint(frame)
	payload := frame[n:]

	for cut := 0; cut < len(payload); cut++ {
		var dec Decoder
		if _, err := dec.DecodeFrame(payload[:cut], nil); err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: error does not wrap ErrCorrupt: %v", cut, err)
		}
	}
	for name, bad := range map[string][]byte{
		"unterminated count": {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		"oversized count":    {0xff, 0xff, 0xff, 0x7f, 0x00, 0x00},
		"missing flags":      {0x01, 0x00},
		"epoch ahead":        {0x01, 0x05, 0x20, 0x00},
		"ref out of range":   {0x01, 0x00, 0x20, 0x00},
		"zero new keys":      {0x01, 0x00, 0x22, 0x00},
		"new keys > count":   {0x01, 0x00, 0x22, 0x02},
		"truncated digest":   {0x01, 0x00, 0x22, 0x01, 0x01, 0x41},
		"huge key length":    append([]byte{0x01, 0x00, 0x22, 0x01}, 0xff, 0xff, 0xff, 0xff, 0xff),
		"empty with columns": {0x00, 0x00, 0x20},
		"empty trailing":     {0x00, 0x00, 0x00, 0x99},
	} {
		var dec Decoder
		if _, err := dec.DecodeFrame(bad, nil); err == nil {
			t.Fatalf("%s: corrupt payload %x decoded cleanly", name, bad)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: error does not wrap ErrCorrupt: %v", name, err)
		}
	}
}

// FuzzFrameDecode is the decoder's panic fence: any byte string either
// decodes or errors, on a fresh decoder and again on a decoder with a
// warm dictionary (the stateful paths). Seeds cover valid columnar
// frames (with and without optional columns and a dictionary reset),
// every targeted corruption from the unit test, the empty input, and
// the desync shapes a faulty wire can produce: frames replayed from an
// older dictionary epoch (what a reconnect without the documented
// epoch reset would deliver), a post-reset frame on a cold decoder,
// and raw resync-protocol bytes — an ack record and a FIN envelope —
// landing in the frame decoder.
func FuzzFrameDecode(f *testing.F) {
	var enc Encoder
	valid := enc.AppendFrame(nil, randMsgs(7, 8))
	_, n := binary.Uvarint(valid)
	f.Add(valid[n:])
	steady := enc.AppendFrame(nil, randMsgs(7, 8)) // warm-dictionary frame
	_, n = binary.Uvarint(steady)
	f.Add(steady[n:])
	var enc2 Encoder
	single := enc2.AppendFrame(nil, []Msg{{Key: "k", Dig: 1, Window: -3, Weight: 9, Src: -1, Emit: 77}})
	_, n2 := binary.Uvarint(single)
	f.Add(single[n2:])
	var enc3 Encoder
	for i := 0; i < frameDictMax; i += 4096 { // drive enc3 to an epoch reset
		slab := make([]Msg, 4096)
		for j := range slab {
			slab[j] = Msg{Key: fmt.Sprintf("k%d", i+j), Dig: uint64(i + j)}
		}
		enc3.AppendFrame(nil, slab)
	}
	preReset := enc3.AppendFrame(nil, randMsgs(11, 6)) // old-epoch frame pre reset
	_, np := binary.Uvarint(preReset)
	enc3.ResetEpoch() // the reconnect resync point: dictionary epoch reset
	reset := enc3.AppendFrame(nil, []Msg{{Key: "fresh", Dig: 42, Weight: 1}})
	_, n3 := binary.Uvarint(reset)
	f.Add(reset[n3:])
	// Reordered-epoch desync: the pre-reset frame carries stale
	// dictionary refs and an old epoch — exactly what a reconnected
	// link would replay if the sender skipped the epoch reset.
	f.Add(preReset[np:])
	postReset := enc3.AppendFrame(nil, randMsgs(13, 5)) // warm post-reset frame
	_, n4 := binary.Uvarint(postReset)
	f.Add(postReset[n4:])
	// Resync-protocol bytes astray in the frame stream: a cumulative
	// ack record (8 bytes little-endian) and a FIN envelope
	// (uvarint 0, uvarint finSeq).
	f.Add([]byte{0x2a, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00})
	f.Add([]byte{0x00, 0x1b})
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x00, 0x20, 0x00})
	f.Add([]byte{0x01, 0x05, 0x20, 0x00})
	f.Add([]byte{0x01, 0x00, 0x22, 0x01, 0x01, 0x41})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, payload []byte) {
		var dec Decoder
		msgs, err := dec.DecodeFrame(payload, nil)
		if err == nil {
			// A clean decode must round-trip back through the encoder.
			var re Encoder
			_ = re.AppendFrame(nil, msgs)
		}
		// Replay against a warm stateful decoder: dictionary entries,
		// epochs and arena interning must stay panic-free too.
		var wenc Encoder
		warm := wenc.AppendFrame(nil, randMsgs(3, 4))
		_, wn := binary.Uvarint(warm)
		var wdec Decoder
		if _, err := wdec.DecodeFrame(warm[wn:], nil); err != nil {
			t.Fatalf("warm frame failed to decode: %v", err)
		}
		_, _ = wdec.DecodeFrame(payload, nil)
	})
}
