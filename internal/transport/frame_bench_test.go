package transport

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
)

// zipfSlab builds a slab of n messages whose keys follow the Zipf
// distribution the experiments use (s=1.2 over 5000 keys), with the
// field shapes of real bolt traffic: small positive weights, a shared
// window, elided values, 1-in-8 emit sampling, constant src.
func zipfSlab(seed uint64, n int) []Msg {
	rng := rand.New(rand.NewSource(int64(seed)))
	z := rand.NewZipf(rng, 1.2, 1, 4999)
	msgs := make([]Msg, n)
	for i := range msgs {
		key := fmt.Sprintf("key-%05d", z.Uint64())
		msgs[i] = Msg{
			Dig:    digestOf(key),
			Window: int64(seed) % 16,
			Weight: 1,
			Src:    int32(seed % 4),
			Key:    key,
		}
		if i&latBenchMask == 0 {
			msgs[i].Emit = int64(seed)*1e6 + int64(i)
		}
	}
	return msgs
}

const latBenchMask = 7 // mirrors the dataplane's 1-in-8 latency sampling

// BenchmarkFrameCodec compares the PR-8 interleaved record layout
// against the columnar + persistent-dictionary layout on Zipf key
// slabs, for encode, decode, and the full round trip. The bytes/msg
// metric is the wire-size claim; steady-state columnar decode is also
// pinned at 0 allocs/op by TestColumnarDecodeSteadyStateZeroAllocs.
func BenchmarkFrameCodec(b *testing.B) {
	const slabLen = 256
	slabs := make([][]Msg, 16)
	for i := range slabs {
		slabs[i] = zipfSlab(uint64(i)+1, slabLen)
	}

	b.Run("record/encode", func(b *testing.B) {
		var enc recordEncoder
		var buf []byte
		bytes := 0
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = enc.AppendFrame(buf[:0], slabs[i%len(slabs)])
			bytes += len(buf)
		}
		b.ReportMetric(float64(bytes)/float64(b.N*slabLen), "bytes/msg")
	})
	b.Run("columnar/encode", func(b *testing.B) {
		var enc Encoder
		var buf []byte
		bytes := 0
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = enc.AppendFrame(buf[:0], slabs[i%len(slabs)])
			bytes += len(buf)
		}
		b.ReportMetric(float64(bytes)/float64(b.N*slabLen), "bytes/msg")
	})

	b.Run("record/decode", func(b *testing.B) {
		var enc recordEncoder
		payloads := encodeAll(b, slabs, func(dst []byte, s []Msg) []byte { return enc.AppendFrame(dst, s) })
		var dec recordDecoder
		// Warm the decoder's dictionary, then re-encode so every payload
		// is pure-reference and can be replayed out of order (the v1
		// introduction records are position-dependent).
		for _, p := range payloads {
			if _, err := dec.DecodeFrame(p, nil); err != nil {
				b.Fatal(err)
			}
		}
		payloads = encodeAll(b, slabs, func(dst []byte, s []Msg) []byte { return enc.AppendFrame(dst, s) })
		dst := make([]Msg, 0, 2*slabLen)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var err error
			dst, err = dec.DecodeFrame(payloads[i%len(payloads)], dst[:0])
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("columnar/decode", func(b *testing.B) {
		var enc Encoder
		payloads := encodeAll(b, slabs, func(dst []byte, s []Msg) []byte { return enc.AppendFrame(dst, s) })
		var dec Decoder
		// Warm the decoder's dictionary through one full rotation so the
		// measured loop is the steady state (all refs, no new keys).
		warm := make([][]Msg, len(slabs))
		for i, p := range payloads {
			var err error
			if warm[i], err = dec.DecodeFrame(p, nil); err != nil {
				b.Fatal(err)
			}
		}
		// Re-encode so every payload is pure-reference against the now
		// fully populated dictionary.
		payloads = encodeAll(b, slabs, func(dst []byte, s []Msg) []byte { return enc.AppendFrame(dst, s) })
		for _, p := range payloads {
			if _, err := dec.DecodeFrame(p, nil); err != nil {
				b.Fatal(err)
			}
		}
		dst := make([]Msg, 0, 2*slabLen)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var err error
			dst, err = dec.DecodeFrame(payloads[i%len(payloads)], dst[:0])
			if err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("record/roundtrip", func(b *testing.B) {
		var enc recordEncoder
		var dec recordDecoder
		var buf []byte
		dst := make([]Msg, 0, 2*slabLen)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = enc.AppendFrame(buf[:0], slabs[i%len(slabs)])
			_, n := binary.Uvarint(buf)
			var err error
			dst, err = dec.DecodeFrame(buf[n:], dst[:0])
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("columnar/roundtrip", func(b *testing.B) {
		var enc Encoder
		var dec Decoder
		var buf []byte
		dst := make([]Msg, 0, 2*slabLen)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = enc.AppendFrame(buf[:0], slabs[i%len(slabs)])
			_, n := binary.Uvarint(buf)
			var err error
			dst, err = dec.DecodeFrame(buf[n:], dst[:0])
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// encodeAll encodes every slab and strips the length prefixes.
func encodeAll(b *testing.B, slabs [][]Msg, enc func([]byte, []Msg) []byte) [][]byte {
	b.Helper()
	payloads := make([][]byte, len(slabs))
	for i, s := range slabs {
		frame := enc(nil, s)
		_, n := binary.Uvarint(frame)
		if n <= 0 {
			b.Fatal("bad frame")
		}
		payloads[i] = frame[n:]
	}
	return payloads
}
