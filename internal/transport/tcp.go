package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"slb/internal/ring"
	"slb/internal/telemetry"
)

// coalesceBytes is the per-link write-coalescing threshold: SendSlab
// encodes frames into the active buffer and hands the buffer to the
// writer stage only once it holds this much (or on an explicit Flush),
// so small slabs share syscalls and packets.
const coalesceBytes = 32 << 10

// senderGather bounds how many queued buffers the writer folds into one
// vectored writev call on the fault-free path.
const senderGather = 4

// ackEveryBytes is the receiver's ack cadence under sustained load: a
// cumulative ack goes out at least once per this many received payload
// bytes, so the sender's bounded resend window drains steadily instead
// of oscillating between full and empty. Idle links ack as soon as the
// read buffer empties.
const ackEveryBytes = 2 * coalesceBytes

// finMarker is the reserved sequence value that introduces a FIN
// record; real frame sequence numbers start at 1.
const finMarker = 0

// TCP is the wire backend: one loopback (or real) TCP connection per
// link, frames encoded by the columnar varint codec in frame.go over a
// persistent per-link key dictionary, and a delivery layer that
// survives connection loss with exactness intact.
//
// Wire protocol, per link, dialer → listener:
//
//	hello = uvarint(len(name)) name uvarint(firstSeq)
//	data  = uvarint(seq)  uvarint(len(payload)) payload   (seq ≥ 1)
//	fin   = uvarint(0)    uvarint(finSeq)                 (finSeq = lastSeq+1)
//
// and listener → dialer on the same connection, a stream of 8-byte
// little-endian cumulative acks. Every frame carries a link sequence
// number; the sender retains written-but-unacked coalescing buffers (a
// bounded window — SendSlab backpressures when it fills) and, when a
// connection dies, redials with jittered exponential backoff and
// retransmits from the last cumulative ack. The receiver keeps
// per-link sequence state across connections: in-order frames are
// decoded and published, re-sent frames it already owns are counted
// and discarded (the dedup edge that turns at-least-once delivery back
// into exactly-once), and a sequence gap kills the connection so the
// sender's retransmission closes it. A frame is acked once decoded —
// receipt, not consumption — so ring backpressure never masquerades as
// loss; keepalive re-acks while the ring is full keep the sender's
// retransmission timer quiet.
//
// The receive side still lands in an SPSC ring through a reusable key
// arena, so the consumer polls it exactly like the memory backend.
type TCP struct {
	reg   *telemetry.Registry
	cfg   TCPConfig
	ln    net.Listener
	wg    sync.WaitGroup
	chaos *chaosState // nil unless wrapped by NewChaos

	mu      sync.Mutex
	links   map[string]*Link
	recvs   map[string]*tcpRecvState
	senders []*tcpSender
	conns   []net.Conn

	closed atomic.Bool
	err    atomic.Pointer[error]
}

// NewTCP starts a loopback listener and returns an empty transport with
// default delivery tuning. Per-link telemetry lands in reg when it is
// non-nil.
func NewTCP(reg *telemetry.Registry) (*TCP, error) {
	return NewTCPWithConfig(reg, TCPConfig{})
}

// NewTCPWithConfig is NewTCP with explicit delivery tuning (resend
// window, retransmission timeout, reconnect budget).
func NewTCPWithConfig(reg *telemetry.Registry, cfg TCPConfig) (*TCP, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	t := &TCP{
		reg:   reg,
		cfg:   cfg.withDefaults(),
		ln:    ln,
		links: make(map[string]*Link),
		recvs: make(map[string]*tcpRecvState),
	}
	t.wg.Add(1)
	go t.accept()
	return t, nil
}

// Addr returns the listener address (for tests and diagnostics).
func (t *TCP) Addr() net.Addr { return t.ln.Addr() }

// Err returns the first hard error of any link (or of the transport
// itself), if any. Per-link errors are also scoped to their Link — a
// broken peer never poisons sibling links' sends.
func (t *TCP) Err() error {
	if p := t.err.Load(); p != nil {
		return *p
	}
	return nil
}

func (t *TCP) fail(err error) {
	if err == nil {
		return
	}
	t.err.CompareAndSwap(nil, &err)
}

// failLink records a hard, unrecoverable error against one link: the
// link's shared error slot poisons its sender, the transport-level Err
// aggregates it, and the receive ring closes so the consumer drains
// and observes done instead of waiting for frames that cannot arrive.
// Sibling links are untouched.
func (t *TCP) failLink(rs *tcpRecvState, err error) {
	rs.lerr.CompareAndSwap(nil, &err)
	t.fail(err)
	rs.ring.Close()
	t.mu.Lock()
	s := rs.sender
	t.mu.Unlock()
	if s != nil {
		s.wakeWriter()
	}
}

// Open implements Transport: it registers the link's receive state,
// dials the listener with the hello header, and starts the sender's
// writer and ack-reader goroutines. The receive state is registered
// before dialing, so the serving goroutine always finds it.
func (t *TCP) Open(name string, capacity int) (*Link, error) {
	t.mu.Lock()
	if l, ok := t.links[name]; ok {
		t.mu.Unlock()
		return l, nil
	}
	if t.closed.Load() {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if capacity < 2 {
		capacity = 2
	}
	r := ring.New[Msg](capacity)
	st := newLinkStats(t.reg, name)
	lerr := &atomic.Pointer[error]{}
	rs := &tcpRecvState{
		name:    name,
		ring:    r,
		st:      st,
		lerr:    lerr,
		nextSeq: 1,
		payload: make([]byte, 0, coalesceBytes),
		slab:    make([]Msg, 0, 512),
	}
	t.recvs[name] = rs
	t.mu.Unlock()

	s := newTCPSender(t, name, st, rs, lerr)
	t.mu.Lock()
	rs.sender = s
	t.mu.Unlock()
	conn, err := s.dialHello()
	if err != nil {
		return nil, err
	}
	sc := &senderConn{c: conn}
	go s.ackLoop(sc)
	go s.writeLoop(sc)

	l := &Link{Name: name, Sender: s, Receiver: (*memReceiver)(r), err: lerr}
	t.mu.Lock()
	t.links[name] = l
	t.senders = append(t.senders, s)
	t.mu.Unlock()
	return l, nil
}

// Close implements Transport.
func (t *TCP) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	t.ln.Close()
	t.mu.Lock()
	conns := t.conns
	t.conns = nil
	senders := t.senders
	t.mu.Unlock()
	for _, s := range senders {
		s.shutdown()
	}
	for _, c := range conns {
		c.Close()
	}
	t.wg.Wait()
	return t.Err()
}

func (t *TCP) accept() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		t.conns = append(t.conns, conn)
		t.mu.Unlock()
		t.wg.Add(1)
		go t.serve(conn)
	}
}

// tcpRecvState is one link's receive-side delivery state. It is shared
// by every connection the link's sender ever dials: the decoder, the
// expected sequence number and the FIN latch all survive reconnects,
// which is exactly what makes retransmitted frames detectable as
// duplicates.
type tcpRecvState struct {
	name   string
	ring   *ring.SPSC[Msg]
	st     *linkStats
	lerr   *atomic.Pointer[error] // shared with the sender; first hard error
	sender *tcpSender             // guarded by TCP.mu

	mu      sync.Mutex // serializes serve() bodies across reconnects
	dec     Decoder
	nextSeq uint64
	// finished latches once the FIN is decoded: every frame through the
	// FIN was received in order. It is atomic because the sender's
	// writer reads it during reconnect to confirm delivery when the
	// final ack died with the connection (serve writes it under mu).
	finished atomic.Bool
	payload  []byte
	slab     []Msg
}

// serve is the per-connection receive loop. It binds the connection to
// its link via the hello header, then replays the connection's records
// into the link's persistent sequence state. Transient connection
// errors just return — the sender's reconnect machinery recovers;
// protocol violations and decode failures are hard link errors.
func (t *TCP) serve(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 64<<10)
	nameLen, err := binary.ReadUvarint(br)
	if err != nil || nameLen > frameMaxKey {
		t.fail(fmt.Errorf("transport: bad link hello: %v", err))
		return
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		t.fail(fmt.Errorf("transport: bad link hello: %w", err))
		return
	}
	firstSeq, err := binary.ReadUvarint(br)
	if err != nil {
		t.fail(fmt.Errorf("transport: bad link hello: %w", err))
		return
	}
	t.mu.Lock()
	rs := t.recvs[string(nameBuf)]
	t.mu.Unlock()
	if rs == nil {
		t.fail(fmt.Errorf("transport: connection for unknown link %q", nameBuf))
		return
	}
	if ch := t.chaos; ch != nil && firstSeq > 1 {
		ch.delayAccept()
	}
	// One connection at a time replays into the link state: a
	// reconnect's serve waits here until the previous connection's
	// serve observes its closed socket and returns.
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.lerr.Load() != nil {
		return
	}
	if firstSeq > rs.nextSeq {
		t.failLink(rs, fmt.Errorf("transport: link %s: resume at seq %d but expected %d: frames permanently lost", rs.name, firstSeq, rs.nextSeq))
		return
	}

	st := rs.st
	connOK := true
	ackedOut := uint64(0)
	sinceAck := 0
	var ackBuf [8]byte
	writeAck := func(seq uint64) {
		binary.LittleEndian.PutUint64(ackBuf[:], seq)
		if _, werr := conn.Write(ackBuf[:]); werr != nil {
			connOK = false
		}
	}
	flushAck := func() {
		if a := rs.nextSeq - 1; connOK && a > ackedOut {
			writeAck(a)
			ackedOut = a
			sinceAck = 0
		}
	}
	// Resync handshake: unconditionally ack the current high-water mark
	// at the head of every connection — even ack 0 on a fresh link. A
	// reconnecting sender reads this ack synchronously before
	// retransmitting: acks in flight on the previous connection die with
	// its socket, and replaying from a stale resume point would resend
	// frames the receiver already holds.
	ackedOut = rs.nextSeq - 1
	writeAck(ackedOut)
	for connOK {
		if br.Buffered() == 0 || sinceAck >= ackEveryBytes {
			flushAck()
			if !connOK {
				return
			}
		}
		seq, err := binary.ReadUvarint(br)
		if err != nil {
			return // conn died mid-stream: the sender's reconnect recovers
		}
		if seq == finMarker {
			finSeq, err := binary.ReadUvarint(br)
			if err != nil {
				return
			}
			switch {
			case finSeq == rs.nextSeq && !rs.finished.Load():
				rs.nextSeq++
				rs.finished.Store(true)
				rs.ring.Close()
			case finSeq < rs.nextSeq:
				// Duplicate FIN after a reconnect: re-acked below.
			default:
				return // gap before the FIN: the sender must resend first
			}
			flushAck()
			continue
		}
		frameLen, err := binary.ReadUvarint(br)
		if err != nil {
			return
		}
		if frameLen > frameMaxLen {
			t.failLink(rs, fmt.Errorf("%w: frame of %d bytes on link %s", ErrCorrupt, frameLen, rs.name))
			return
		}
		rx := int(frameLen) + uvarintLen(frameLen) + uvarintLen(seq)
		switch {
		case seq < rs.nextSeq:
			// Retransmission overlap: this frame was already decoded and
			// published once. Count its messages (the payload's leading
			// varint) and discard the bytes without touching the decoder
			// — the dedup edge that keeps delivery exactly-once.
			peek, perr := br.Peek(min(int(frameLen), binary.MaxVarintLen64))
			if perr != nil {
				return
			}
			count, _ := binary.Uvarint(peek)
			if _, derr := br.Discard(int(frameLen)); derr != nil {
				return
			}
			st.addDupMsgs(int64(count))
			st.addRxBytes(int64(rx))
			sinceAck += rx
			continue
		case seq > rs.nextSeq:
			// Frames vanished in flight (dropped or half-written before
			// the conn died): kill the connection; the sender
			// retransmits everything past the last cumulative ack.
			return
		}
		if rs.finished.Load() {
			t.failLink(rs, fmt.Errorf("transport: link %s: data frame %d after fin", rs.name, seq))
			return
		}
		if uint64(cap(rs.payload)) < frameLen {
			rs.payload = make([]byte, frameLen)
		}
		payload := rs.payload[:frameLen]
		if _, err := io.ReadFull(br, payload); err != nil {
			return
		}
		st.addRxBytes(int64(rx))
		sinceAck += rx
		slab, err := rs.dec.DecodeFrame(payload, rs.slab[:0])
		rs.slab = slab
		if err != nil {
			t.failLink(rs, fmt.Errorf("transport: link %s: %w", rs.name, err))
			return
		}
		// The frame is decoded and owned by this process: advance the
		// sequence (and ack) before publishing, so ring backpressure
		// can never starve the sender's retransmission timer into
		// spurious resends. Acks mean "received", not "consumed".
		rs.nextSeq++
		rem := slab
		spins := 0
		var lastBeat time.Time
		for len(rem) > 0 {
			dst := rs.ring.Grant(len(rem))
			if dst == nil {
				if spins == 0 {
					st.addStall()
					flushAck()
					lastBeat = time.Now()
				} else if connOK && time.Since(lastBeat) > t.cfg.ResendTimeout/4 {
					// Keepalive re-ack while the ring backpressures:
					// any ack record counts as liveness on the sender
					// side, so the RTO only fires for real loss.
					writeAck(rs.nextSeq - 1)
					lastBeat = time.Now()
				}
				if t.closed.Load() || rs.lerr.Load() != nil {
					return
				}
				backoff(&spins)
				continue
			}
			spins = 0
			copy(dst, rem)
			rs.ring.Publish(len(dst))
			rem = rem[len(dst):]
		}
	}
}

// uvarintLen is the encoded size of x as a uvarint.
func uvarintLen(x uint64) int {
	return (bits.Len64(x|1) + 6) / 7
}

// tcpSender is the producer end of one TCP link, split into pipelined
// stages: the caller's goroutine ENCODES slabs (with their sequence
// envelope) into the active coalescing buffer, a WRITER goroutine moves
// filled buffers to the kernel and owns reconnection/retransmission,
// and a per-connection ACK-READER goroutine advances the cumulative
// ack and arms the retransmission timeout. Buffers rotate free →
// encode → out → write → retained-until-acked → free; the bounded pool
// is the resend window, and rotate blocking on the free channel is the
// backpressure that keeps it bounded.
type tcpSender struct {
	t     *TCP
	name  string
	cfg   TCPConfig
	stats *linkStats
	rs    *tcpRecvState

	// Producer-owned.
	enc     Encoder
	cur     *sendBuf
	nextSeq uint64
	finSeq  uint64 // set by Close before close(out); read by the writer after
	err     error  // sticky producer-side error
	closed  bool
	closing atomic.Bool // producer entered Close; shutdown must not poison

	out  chan *sendBuf
	free chan *sendBuf
	done chan struct{} // writer exited

	// Shared.
	lerr      *atomic.Pointer[error] // first hard error; shared with recv side
	needReset atomic.Bool            // reconnect → encoder: reset dictionary epoch
	acked     atomic.Uint64          // highest cumulative ack seen
	written   atomic.Uint64          // highest seq written (or chaos-dropped)
	wake      chan struct{}          // ack progress / conn death → writer

	// Writer-owned.
	retained   []*sendBuf // written but unacked, in seq order
	reconnects int
	finWritten bool
	rng        uint64
	vec        net.Buffers
}

func newTCPSender(t *TCP, name string, st *linkStats, rs *tcpRecvState, lerr *atomic.Pointer[error]) *tcpSender {
	s := &tcpSender{
		t:     t,
		name:  name,
		cfg:   t.cfg,
		stats: st,
		rs:    rs,
		cur:   &sendBuf{b: make([]byte, 0, coalesceBytes+coalesceBytes/4)},
		out:   make(chan *sendBuf, t.cfg.RetainedBufs),
		free:  make(chan *sendBuf, t.cfg.RetainedBufs),
		done:  make(chan struct{}),
		lerr:  lerr,
		wake:  make(chan struct{}, 1),
		rng:   mix64(t.cfg.Seed ^ hashName(name)),
	}
	s.nextSeq = 1
	for i := 0; i < t.cfg.RetainedBufs-1; i++ {
		s.free <- &sendBuf{b: make([]byte, 0, coalesceBytes+coalesceBytes/4)}
	}
	return s
}

// dialHello dials the listener and writes the hello header announcing
// the link name and the first sequence number this connection will
// carry (acked+1 — the resume point after a reconnect).
func (s *tcpSender) dialHello() (net.Conn, error) {
	conn, err := net.Dial("tcp", s.t.ln.Addr().String())
	if err != nil {
		return nil, err
	}
	hdr := binary.AppendUvarint(nil, uint64(len(s.name)))
	hdr = append(hdr, s.name...)
	hdr = binary.AppendUvarint(hdr, s.acked.Load()+1)
	if _, err := conn.Write(hdr); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// readHandshakeAck synchronously reads the resync ack the receiver
// writes at the head of every accepted connection, so a reconnect
// learns the true resume point before retransmitting anything. Without
// it, acks destroyed with the previous socket would leave the sender
// replaying from a stale mark — and under a deterministic fault
// schedule the unsynchronized replay can repeat the exact write
// pattern that killed the last connection, livelocking the link.
func (s *tcpSender) readHandshakeAck(conn net.Conn) (uint64, error) {
	d := s.cfg.ResendTimeout
	if ch := s.t.chaos; ch != nil {
		d += ch.cfg.AcceptDelay
	}
	conn.SetReadDeadline(time.Now().Add(d))
	var rec [8]byte
	if _, err := io.ReadFull(conn, rec[:]); err != nil {
		return 0, err
	}
	conn.SetReadDeadline(time.Time{})
	return binary.LittleEndian.Uint64(rec[:]), nil
}

func (s *tcpSender) wakeWriter() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// fail records a hard, unrecoverable sender-side error: the shared
// link error poisons both ends, the transport aggregates it, and the
// receive ring closes so the consumer is not left waiting for frames
// that can no longer arrive.
func (s *tcpSender) fail(err error) {
	s.lerr.CompareAndSwap(nil, &err)
	s.t.fail(err)
	s.rs.ring.Close()
	s.wakeWriter()
}

// shutdown is the transport-Close path for senders whose producer never
// called Close (abnormal teardown): mark the link failed so the writer
// stops reconnecting and the producer unblocks. Cleanly closed senders
// are left untouched.
func (s *tcpSender) shutdown() {
	if s.closing.Load() {
		// The producer is (or finished) closing cleanly: the writer
		// terminates on its own — the transport's closed flag bounds any
		// reconnect wait — so wait for it instead of poisoning the link.
		<-s.done
		return
	}
	select {
	case <-s.done:
		return
	default:
	}
	err := ErrClosed
	s.lerr.CompareAndSwap(nil, &err)
	s.wakeWriter()
}

// checkErr folds the shared link error into the producer-side sticky
// error.
func (s *tcpSender) checkErr() error {
	if s.err == nil {
		if p := s.lerr.Load(); p != nil {
			s.err = *p
		}
	}
	return s.err
}

// ackTo advances the cumulative ack high-water mark.
func (s *tcpSender) ackTo(seq uint64) {
	for {
		old := s.acked.Load()
		if seq <= old || s.acked.CompareAndSwap(old, seq) {
			return
		}
	}
}

func (s *tcpSender) bumpWritten(seq uint64) {
	if seq > s.written.Load() {
		s.written.Store(seq)
	}
}

// ackLoop reads the reverse channel of one connection: 8-byte
// little-endian cumulative acks. It doubles as the retransmission
// timer — a full ResendTimeout with no ack record while frames are
// outstanding means the tail was lost (a dropped tail never surfaces
// as a receiver-side gap), so the connection is declared dead and the
// writer retransmits. Any record, even a duplicate ack, counts as
// liveness; idle connections with nothing outstanding just rearm.
func (s *tcpSender) ackLoop(sc *senderConn) {
	var rec [8]byte
	have := 0
	for {
		sc.c.SetReadDeadline(time.Now().Add(s.cfg.ResendTimeout))
		n, err := sc.c.Read(rec[have:])
		have += n
		if have == 8 {
			have = 0
			s.ackTo(binary.LittleEndian.Uint64(rec[:]))
			s.wakeWriter()
		}
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() && !sc.dead.Load() {
				if have > 0 || s.acked.Load() >= s.written.Load() {
					continue // partial record in flight, or idle: rearm
				}
			}
			sc.kill()
			s.wakeWriter()
			return
		}
	}
}

// writeLoop is the writer stage: it recycles acked buffers back to the
// pool, moves filled buffers to the kernel (vectored on the fault-free
// path), writes the FIN once the producer closes, and owns reconnection
// — retransmitting everything past the last cumulative ack on a fresh
// connection. It exits when the FIN is acked (clean) or the link goes
// hard-error (draining the pipeline so the producer never deadlocks).
func (s *tcpSender) writeLoop(sc *senderConn) {
	defer close(s.done)
	outOpen := true
	pend := make([]*sendBuf, 0, senderGather)
	for {
		// Recycle buffers the cumulative ack has released.
		a := s.acked.Load()
		for len(s.retained) > 0 && s.retained[0].last <= a {
			b := s.retained[0]
			s.retained = s.retained[1:]
			b.reset()
			s.free <- b
		}

		if s.lerr.Load() != nil {
			if sc != nil {
				sc.kill()
			}
			s.drain(outOpen)
			return
		}

		if !outOpen && s.finWritten && a >= s.finSeq {
			// Everything through the FIN is acked: clean exit.
			if sc != nil {
				sc.c.Close()
			}
			return
		}

		if sc == nil || sc.dead.Load() {
			sc = s.reconnect(sc)
			continue
		}

		if !outOpen && !s.finWritten {
			s.writeFin(sc)
			continue
		}

		if outOpen {
			select {
			case b, ok := <-s.out:
				if !ok {
					outOpen = false
					continue
				}
				pend = append(pend[:0], b)
			gather:
				for len(pend) < senderGather {
					select {
					case b2, ok2 := <-s.out:
						if !ok2 {
							outOpen = false
							break gather
						}
						pend = append(pend, b2)
					default:
						break gather
					}
				}
				s.writeBufs(sc, pend)
			case <-s.wake:
			}
			continue
		}
		// FIN written; wait for ack progress or conn death (the
		// ack-reader's timeout guarantees one of them).
		<-s.wake
	}
}

// drain unblocks the producer after a hard error: every buffer goes
// straight back to the pool so rotate and Close never block on a dead
// pipeline. It parks on the out channel until the producer closes it.
func (s *tcpSender) drain(outOpen bool) {
	for _, b := range s.retained {
		b.reset()
		s.free <- b
	}
	s.retained = s.retained[:0]
	for outOpen {
		b, ok := <-s.out
		if !ok {
			return
		}
		b.reset()
		s.free <- b
	}
}

// writeBufs ships freshly filled buffers. Fault-free, they fold into
// one vectored write; under chaos each buffer gets its own verdict.
// Every buffer is retained for retransmission regardless of write
// outcome — only a cumulative ack releases it.
func (s *tcpSender) writeBufs(sc *senderConn, pend []*sendBuf) {
	if s.t.chaos != nil {
		for _, b := range pend {
			s.retained = append(s.retained, b)
			if !sc.dead.Load() {
				s.writeBuf(sc, b, false)
			}
		}
		s.stats.addFlushes(1)
		return
	}
	s.vec = s.vec[:0]
	last := uint64(0)
	for _, b := range pend {
		s.vec = append(s.vec, b.b)
		s.retained = append(s.retained, b)
		last = b.last
	}
	n, err := s.vec.WriteTo(sc.c)
	s.stats.addBytes(n)
	s.stats.addFlushes(1)
	if err != nil {
		sc.kill()
		return
	}
	s.bumpWritten(last)
}

// writeBuf writes one enveloped buffer, applying the chaos schedule: a
// drop means the bytes vanish (the buffer stays retained; the
// receiver-side gap or the ack timeout triggers the resend), a sever
// kills the connection. Reports whether the connection survived.
func (s *tcpSender) writeBuf(sc *senderConn, b *sendBuf, retrans bool) bool {
	if ch := s.t.chaos; ch != nil {
		switch ch.verdict(s.name) {
		case chaosDrop:
			s.bumpWritten(b.last) // outstanding: keeps the RTO armed
			return true
		case chaosSever:
			sc.kill()
			return false
		}
	}
	n, err := sc.c.Write(b.b)
	s.stats.addBytes(int64(n))
	if retrans {
		s.stats.addRetrans(int64(b.last-b.first+1), int64(len(b.b)))
	}
	if err != nil {
		sc.kill()
		return false
	}
	s.bumpWritten(b.last)
	return true
}

// writeFin ships the FIN record announcing the final sequence number.
func (s *tcpSender) writeFin(sc *senderConn) {
	var rec [1 + binary.MaxVarintLen64]byte
	rec[0] = finMarker
	n := 1 + binary.PutUvarint(rec[1:], s.finSeq)
	if ch := s.t.chaos; ch != nil {
		switch ch.verdict(s.name) {
		case chaosDrop:
			s.finWritten = true // vanished in flight: the RTO re-sends it
			s.bumpWritten(s.finSeq)
			return
		case chaosSever:
			sc.kill()
			return
		}
	}
	if _, err := sc.c.Write(rec[:n]); err != nil {
		sc.kill()
		return
	}
	s.finWritten = true
	s.bumpWritten(s.finSeq)
}

// reconnect closes the dead connection, redials with jittered
// exponential backoff within the configured budget, and retransmits
// everything past the last cumulative ack (plus the FIN if it was
// already sent). Exhausting either budget — total reconnects or one
// episode's dial attempts — is a hard link error: the run fails
// loudly, never a short count.
func (s *tcpSender) reconnect(old *senderConn) *senderConn {
	if old != nil {
		old.kill()
	}
	if s.finWritten && s.rs.finished.Load() {
		// The receiver already decoded the FIN, so every frame through
		// it was delivered in order — only the final ack died with the
		// connection. Confirm delivery through the shared receive state
		// instead of redialing: this closes the teardown race where the
		// consumer observes done (and the transport starts closing)
		// before the last ack crosses back.
		s.ackTo(s.finSeq)
		return nil
	}
	if s.cfg.MaxReconnects < 0 {
		s.fail(fmt.Errorf("transport: link %s: connection lost and reconnection is disabled", s.name))
		return nil
	}
	if s.reconnects >= s.cfg.MaxReconnects {
		s.fail(fmt.Errorf("transport: link %s: reconnect budget exhausted after %d reconnects", s.name, s.reconnects))
		return nil
	}
	s.reconnects++
	s.stats.addReconnect()
	t0 := time.Now()
	wait := s.cfg.RedialBackoff
	maxWait := s.cfg.RedialBackoff * 64
	var conn net.Conn
	for attempt := 1; ; attempt++ {
		if s.t.closed.Load() {
			s.fail(ErrClosed)
			return nil
		}
		c, err := s.dialHello()
		if err == nil {
			var ack uint64
			if ack, err = s.readHandshakeAck(c); err == nil {
				s.ackTo(ack)
				conn = c
				break
			}
			c.Close()
		}
		if attempt >= s.cfg.RedialAttempts {
			s.fail(fmt.Errorf("transport: link %s: redial failed after %d attempts: %w", s.name, attempt, err))
			return nil
		}
		s.rng = mix64(s.rng + 0x9e3779b97f4a7c15)
		half := wait / 2
		time.Sleep(half + time.Duration(s.rng%uint64(half+1)))
		if wait < maxWait {
			wait *= 2
		}
	}
	s.stats.addOutage(time.Since(t0).Seconds())
	sc := &senderConn{c: conn}
	go s.ackLoop(sc)
	// The next freshly encoded frame restarts the dictionary epoch with
	// a reset frame — the documented resync point: post-reconnect
	// frames never depend on dictionary context from before the outage.
	// Retransmitted frames replay their original bytes; the receiver's
	// decoder re-walks them in sequence order (duplicates are skipped
	// without touching it), so its dictionary state stays consistent.
	s.needReset.Store(true)
	resume := s.acked.Load()
	for _, b := range s.retained {
		if b.last <= resume {
			continue // already delivered: the writer loop recycles it
		}
		if !s.writeBuf(sc, b, true) {
			return sc // died again: the next loop iteration retries
		}
	}
	if s.finWritten {
		s.writeFin(sc)
	}
	return sc
}

// rotate hands the active buffer to the writer stage and takes a fresh
// one from the pool. Blocking on the free channel is the resend
// window's backpressure: every buffer is either free, in flight to the
// writer, or retained awaiting its ack.
func (s *tcpSender) rotate() {
	s.out <- s.cur
	s.cur = <-s.free
}

// SendSlab implements Sender: stamp the next sequence number, encode
// the slab as one frame into the active buffer, and rotate the buffer
// to the writer once it crosses the coalescing threshold. The sequence
// envelope is written inline, so a retransmission later replays the
// buffer bytes verbatim.
func (s *tcpSender) SendSlab(msgs []Msg) error {
	if s.closed {
		return ErrClosed
	}
	if err := s.checkErr(); err != nil {
		return err
	}
	if s.needReset.CompareAndSwap(true, false) {
		s.enc.ResetEpoch()
	}
	st0 := s.enc.Stats()
	b := s.cur
	seq := s.nextSeq
	s.nextSeq++
	b.b = binary.AppendUvarint(b.b, seq)
	b.b = s.enc.AppendFrame(b.b, msgs)
	if b.first == 0 {
		b.first = seq
	}
	b.last = seq
	st1 := s.enc.Stats()
	s.stats.addFrames(1)
	s.stats.addMsgs(int64(len(msgs)))
	s.stats.addDict(int64(st1.Hits-st0.Hits), int64(st1.Resets-st0.Resets))
	if len(b.b) >= coalesceBytes {
		s.rotate()
	}
	return s.checkErr()
}

// Flush implements Sender: it hands any coalesced bytes to the writer
// stage. The write itself completes asynchronously (per-link ordering
// is preserved; a later SendSlab/Flush/Close surfaces any error), so a
// flush never stalls the encoder on the kernel.
func (s *tcpSender) Flush() error {
	if s.closed {
		return ErrClosed
	}
	if err := s.checkErr(); err != nil {
		return err
	}
	if len(s.cur.b) > 0 {
		s.rotate()
	}
	return s.checkErr()
}

// Close implements Sender: flush, hand the writer the FIN sequence,
// and wait for the writer to exit — which it does only once the FIN
// (and therefore every frame before it) is acked, or the link goes
// hard-error. A clean Close is an end-to-end delivery guarantee.
func (s *tcpSender) Close() error {
	if s.closed {
		return s.checkErr()
	}
	s.closed = true
	s.closing.Store(true)
	if s.cur != nil && len(s.cur.b) > 0 {
		s.out <- s.cur
		s.cur = nil
	}
	s.finSeq = s.nextSeq
	close(s.out)
	<-s.done
	return s.checkErr()
}

// linkStats is the per-link telemetry bundle; a zero value (nil
// registry) makes every add a no-op.
type linkStats struct {
	bytes, rxBytes, frames, msgs  *telemetry.Counter
	flushes, stalls, hits, resets *telemetry.Counter
	reconnects                    *telemetry.Counter
	retransFrames, retransBytes   *telemetry.Counter
	dupMsgs                       *telemetry.Counter
	outageSec                     *telemetry.Gauge
}

func newLinkStats(reg *telemetry.Registry, name string) *linkStats {
	if reg == nil {
		return &linkStats{}
	}
	l := telemetry.L("link", name)
	return &linkStats{
		bytes:         reg.Counter("transport_tx_bytes_total", l),
		rxBytes:       reg.Counter("transport_rx_bytes_total", l),
		frames:        reg.Counter("transport_frames_total", l),
		msgs:          reg.Counter("transport_tx_msgs_total", l),
		flushes:       reg.Counter("transport_flushes_total", l),
		stalls:        reg.Counter("transport_send_stalls_total", l),
		hits:          reg.Counter("transport_dict_hits_total", l),
		resets:        reg.Counter("transport_dict_resets_total", l),
		reconnects:    reg.Counter("transport_reconnects_total", l),
		retransFrames: reg.Counter("transport_retransmit_frames_total", l),
		retransBytes:  reg.Counter("transport_retransmit_bytes_total", l),
		dupMsgs:       reg.Counter("transport_dup_msgs_dropped_total", l),
		outageSec:     reg.Gauge("transport_outage_seconds", l),
	}
}

func (s *linkStats) addBytes(n int64) {
	if s.bytes != nil {
		s.bytes.Add(n)
	}
}

func (s *linkStats) addRxBytes(n int64) {
	if s.rxBytes != nil {
		s.rxBytes.Add(n)
	}
}

func (s *linkStats) addFrames(n int64) {
	if s.frames != nil {
		s.frames.Add(n)
	}
}

func (s *linkStats) addMsgs(n int64) {
	if s.msgs != nil {
		s.msgs.Add(n)
	}
}

func (s *linkStats) addFlushes(n int64) {
	if s.flushes != nil {
		s.flushes.Add(n)
	}
}

func (s *linkStats) addStall() {
	if s.stalls != nil {
		s.stalls.Inc()
	}
}

func (s *linkStats) addDict(hits, resets int64) {
	if s.hits != nil && hits > 0 {
		s.hits.Add(hits)
	}
	if s.resets != nil && resets > 0 {
		s.resets.Add(resets)
	}
}

func (s *linkStats) addReconnect() {
	if s.reconnects != nil {
		s.reconnects.Inc()
	}
}

func (s *linkStats) addRetrans(frames, bytes int64) {
	if s.retransFrames != nil {
		s.retransFrames.Add(frames)
		s.retransBytes.Add(bytes)
	}
}

func (s *linkStats) addDupMsgs(n int64) {
	if s.dupMsgs != nil && n > 0 {
		s.dupMsgs.Add(n)
	}
}

func (s *linkStats) addOutage(sec float64) {
	if s.outageSec != nil {
		s.outageSec.Add(sec)
	}
}
