package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"slb/internal/ring"
	"slb/internal/telemetry"
)

// coalesceBytes is the per-connection write-coalescing threshold: a
// SendSlab stages its frame in the connection's output buffer and the
// buffer goes to the kernel only once it holds this much (or on an
// explicit Flush), so small slabs share syscalls and packets.
const coalesceBytes = 32 << 10

// TCP is the wire backend: one loopback (or real) TCP connection per
// link, frames encoded by the varint codec in frame.go, write-side
// coalescing, and a per-connection reader goroutine that decodes
// frames into an SPSC ring — so the receive side has exactly the
// memory backend's shape and the consumer polls it identically.
type TCP struct {
	reg *telemetry.Registry
	ln  net.Listener
	wg  sync.WaitGroup

	mu    sync.Mutex
	links map[string]*Link
	rings map[string]*ring.SPSC[Msg]
	stats map[string]*linkStats
	conns []net.Conn

	closed atomic.Bool
	err    atomic.Pointer[error]
}

// NewTCP starts a loopback listener and returns an empty transport.
// Per-link telemetry lands in reg when it is non-nil.
func NewTCP(reg *telemetry.Registry) (*TCP, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	t := &TCP{
		reg:   reg,
		ln:    ln,
		links: make(map[string]*Link),
		rings: make(map[string]*ring.SPSC[Msg]),
		stats: make(map[string]*linkStats),
	}
	t.wg.Add(1)
	go t.accept()
	return t, nil
}

// Addr returns the listener address (for tests and diagnostics).
func (t *TCP) Addr() net.Addr { return t.ln.Addr() }

// Err returns the first asynchronous link error (reader side), if any.
func (t *TCP) Err() error {
	if p := t.err.Load(); p != nil {
		return *p
	}
	return nil
}

func (t *TCP) fail(err error) {
	if err == nil {
		return
	}
	t.err.CompareAndSwap(nil, &err)
}

// Open implements Transport: it registers the link's receive ring,
// dials the listener, and sends the link-name header so the accept
// side can bind the connection to the ring. The receive ring is
// registered before dialing, so the reader goroutine always finds it.
func (t *TCP) Open(name string, capacity int) (*Link, error) {
	t.mu.Lock()
	if l, ok := t.links[name]; ok {
		t.mu.Unlock()
		return l, nil
	}
	if t.closed.Load() {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if capacity < 2 {
		capacity = 2
	}
	r := ring.New[Msg](capacity)
	st := newLinkStats(t.reg, name)
	t.rings[name] = r
	t.stats[name] = st
	t.mu.Unlock()

	conn, err := net.Dial("tcp", t.ln.Addr().String())
	if err != nil {
		return nil, err
	}
	hdr := binary.AppendUvarint(nil, uint64(len(name)))
	hdr = append(hdr, name...)
	if _, err := conn.Write(hdr); err != nil {
		conn.Close()
		return nil, err
	}
	s := &tcpSender{conn: conn, stats: st}
	l := &Link{Name: name, Sender: s, Receiver: (*memReceiver)(r)}
	t.mu.Lock()
	t.links[name] = l
	t.conns = append(t.conns, conn)
	t.mu.Unlock()
	return l, nil
}

// Close implements Transport.
func (t *TCP) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	t.ln.Close()
	t.mu.Lock()
	conns := t.conns
	t.conns = nil
	t.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	t.wg.Wait()
	return t.Err()
}

func (t *TCP) accept() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.serve(conn)
	}
}

// serve is the per-connection reader: it binds the connection to its
// link's receive ring via the name header, then decodes frames into
// the ring until EOF (producer closed) or an error. Ring-full pushes
// back off exactly like the memory backend's producer, counting each
// stall burst in the link's telemetry.
func (t *TCP) serve(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 64<<10)
	nameLen, err := binary.ReadUvarint(br)
	if err != nil || nameLen > frameMaxKey {
		t.fail(fmt.Errorf("transport: bad link header: %v", err))
		return
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		t.fail(fmt.Errorf("transport: bad link header: %w", err))
		return
	}
	t.mu.Lock()
	r := t.rings[string(nameBuf)]
	st := t.stats[string(nameBuf)]
	t.mu.Unlock()
	if r == nil {
		t.fail(fmt.Errorf("transport: connection for unknown link %q", nameBuf))
		return
	}
	defer r.Close()

	var dec Decoder
	payload := make([]byte, 0, coalesceBytes)
	slab := make([]Msg, 0, 512)
	for {
		frameLen, err := binary.ReadUvarint(br)
		if err != nil {
			if err != io.EOF {
				t.fail(fmt.Errorf("transport: link %s: %w", nameBuf, err))
			}
			return
		}
		if frameLen > frameMaxLen {
			t.fail(fmt.Errorf("%w: frame of %d bytes on link %s", ErrCorrupt, frameLen, nameBuf))
			return
		}
		if uint64(cap(payload)) < frameLen {
			payload = make([]byte, frameLen)
		}
		payload = payload[:frameLen]
		if _, err := io.ReadFull(br, payload); err != nil {
			t.fail(fmt.Errorf("transport: link %s: %w", nameBuf, err))
			return
		}
		slab, err = dec.DecodeFrame(payload, slab[:0])
		if err != nil {
			t.fail(fmt.Errorf("transport: link %s: %w", nameBuf, err))
			return
		}
		rem := slab
		spins := 0
		for len(rem) > 0 {
			dst := r.Grant(len(rem))
			if dst == nil {
				if spins == 0 {
					st.addStall()
				}
				backoff(&spins)
				continue
			}
			spins = 0
			copy(dst, rem)
			r.Publish(len(dst))
			rem = rem[len(dst):]
		}
	}
}

// tcpSender is the producer end of one TCP link.
type tcpSender struct {
	conn  net.Conn
	enc   Encoder
	wbuf  []byte
	stats *linkStats
	err   error
}

// SendSlab implements Sender: encode into the coalescing buffer, flush
// when it crosses the threshold.
func (s *tcpSender) SendSlab(msgs []Msg) error {
	if s.err != nil {
		return s.err
	}
	s.wbuf = s.enc.AppendFrame(s.wbuf, msgs)
	s.stats.addFrames(1)
	if len(s.wbuf) >= coalesceBytes {
		return s.Flush()
	}
	return nil
}

// Flush implements Sender.
func (s *tcpSender) Flush() error {
	if s.err != nil {
		return s.err
	}
	if len(s.wbuf) == 0 {
		return nil
	}
	n, err := s.conn.Write(s.wbuf)
	s.stats.addBytes(int64(n))
	s.stats.addFlushes(1)
	s.wbuf = s.wbuf[:0]
	if err != nil {
		s.err = err
	}
	return err
}

// Close implements Sender: flush, then half-close so the peer's reader
// drains buffered frames and sees a clean EOF.
func (s *tcpSender) Close() error {
	err := s.Flush()
	if tc, ok := s.conn.(*net.TCPConn); ok {
		if cerr := tc.CloseWrite(); err == nil {
			err = cerr
		}
		return err
	}
	if cerr := s.conn.Close(); err == nil {
		err = cerr
	}
	return err
}

// linkStats is the per-link telemetry bundle; a zero value (nil
// registry) makes every add a no-op.
type linkStats struct {
	bytes, frames, flushes, stalls *telemetry.Counter
}

func newLinkStats(reg *telemetry.Registry, name string) *linkStats {
	if reg == nil {
		return &linkStats{}
	}
	l := telemetry.L("link", name)
	return &linkStats{
		bytes:   reg.Counter("transport_tx_bytes_total", l),
		frames:  reg.Counter("transport_frames_total", l),
		flushes: reg.Counter("transport_flushes_total", l),
		stalls:  reg.Counter("transport_send_stalls_total", l),
	}
}

func (s *linkStats) addBytes(n int64) {
	if s.bytes != nil {
		s.bytes.Add(n)
	}
}

func (s *linkStats) addFrames(n int64) {
	if s.frames != nil {
		s.frames.Add(n)
	}
}

func (s *linkStats) addFlushes(n int64) {
	if s.flushes != nil {
		s.flushes.Add(n)
	}
}

func (s *linkStats) addStall() {
	if s.stalls != nil {
		s.stalls.Inc()
	}
}
