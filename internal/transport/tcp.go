package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
	"net"
	"sync"
	"sync/atomic"

	"slb/internal/ring"
	"slb/internal/telemetry"
)

// coalesceBytes is the per-link write-coalescing threshold: SendSlab
// encodes frames into the active buffer and hands the buffer to the
// writer stage only once it holds this much (or on an explicit Flush),
// so small slabs share syscalls and packets.
const coalesceBytes = 32 << 10

// senderBufs is the sender's buffer-pool depth: the active encoding
// buffer plus the buffers the writer stage may hold in flight. Three
// buffers double-buffer the encode/write overlap (encode of frame N
// proceeds while the socket write of N−1 is in the kernel) with one
// spare so a fast encoder can queue a second buffer instead of
// stalling the moment the writer blocks.
const senderBufs = 3

// TCP is the wire backend: one loopback (or real) TCP connection per
// link, frames encoded by the columnar varint codec in frame.go over a
// persistent per-link key dictionary, a pipelined encoder→writer
// sender (vectored writes via net.Buffers), and a per-connection
// reader goroutine that decodes frames into an SPSC ring — so the
// receive side has exactly the memory backend's shape and the consumer
// polls it identically.
type TCP struct {
	reg *telemetry.Registry
	ln  net.Listener
	wg  sync.WaitGroup

	mu    sync.Mutex
	links map[string]*Link
	rings map[string]*ring.SPSC[Msg]
	stats map[string]*linkStats
	conns []net.Conn

	closed atomic.Bool
	err    atomic.Pointer[error]
}

// NewTCP starts a loopback listener and returns an empty transport.
// Per-link telemetry lands in reg when it is non-nil.
func NewTCP(reg *telemetry.Registry) (*TCP, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	t := &TCP{
		reg:   reg,
		ln:    ln,
		links: make(map[string]*Link),
		rings: make(map[string]*ring.SPSC[Msg]),
		stats: make(map[string]*linkStats),
	}
	t.wg.Add(1)
	go t.accept()
	return t, nil
}

// Addr returns the listener address (for tests and diagnostics).
func (t *TCP) Addr() net.Addr { return t.ln.Addr() }

// Err returns the first asynchronous link error (reader side), if any.
func (t *TCP) Err() error {
	if p := t.err.Load(); p != nil {
		return *p
	}
	return nil
}

func (t *TCP) fail(err error) {
	if err == nil {
		return
	}
	t.err.CompareAndSwap(nil, &err)
}

// Open implements Transport: it registers the link's receive ring,
// dials the listener, and sends the link-name header so the accept
// side can bind the connection to the ring. The receive ring is
// registered before dialing, so the reader goroutine always finds it.
func (t *TCP) Open(name string, capacity int) (*Link, error) {
	t.mu.Lock()
	if l, ok := t.links[name]; ok {
		t.mu.Unlock()
		return l, nil
	}
	if t.closed.Load() {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if capacity < 2 {
		capacity = 2
	}
	r := ring.New[Msg](capacity)
	st := newLinkStats(t.reg, name)
	t.rings[name] = r
	t.stats[name] = st
	t.mu.Unlock()

	conn, err := net.Dial("tcp", t.ln.Addr().String())
	if err != nil {
		return nil, err
	}
	hdr := binary.AppendUvarint(nil, uint64(len(name)))
	hdr = append(hdr, name...)
	if _, err := conn.Write(hdr); err != nil {
		conn.Close()
		return nil, err
	}
	s := newTCPSender(conn, st)
	l := &Link{Name: name, Sender: s, Receiver: (*memReceiver)(r)}
	t.mu.Lock()
	t.links[name] = l
	t.conns = append(t.conns, conn)
	t.mu.Unlock()
	return l, nil
}

// Close implements Transport.
func (t *TCP) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	t.ln.Close()
	t.mu.Lock()
	conns := t.conns
	t.conns = nil
	t.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	t.wg.Wait()
	return t.Err()
}

func (t *TCP) accept() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.serve(conn)
	}
}

// serve is the per-connection reader: it binds the connection to its
// link's receive ring via the name header, then decodes frames into
// the ring until EOF (producer closed) or an error. The frame payload
// buffer, the decode slab and the decoder's key arena are all per-link
// and reused, so a steady-state frame (every key a dictionary hit)
// decodes with zero allocations. Ring-full pushes back off exactly
// like the memory backend's producer, counting each stall burst in the
// link's telemetry.
func (t *TCP) serve(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 64<<10)
	nameLen, err := binary.ReadUvarint(br)
	if err != nil || nameLen > frameMaxKey {
		t.fail(fmt.Errorf("transport: bad link header: %v", err))
		return
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		t.fail(fmt.Errorf("transport: bad link header: %w", err))
		return
	}
	t.mu.Lock()
	r := t.rings[string(nameBuf)]
	st := t.stats[string(nameBuf)]
	t.mu.Unlock()
	if r == nil {
		t.fail(fmt.Errorf("transport: connection for unknown link %q", nameBuf))
		return
	}
	defer r.Close()

	var dec Decoder
	payload := make([]byte, 0, coalesceBytes)
	slab := make([]Msg, 0, 512)
	for {
		frameLen, err := binary.ReadUvarint(br)
		if err != nil {
			if err != io.EOF {
				t.fail(fmt.Errorf("transport: link %s: %w", nameBuf, err))
			}
			return
		}
		if frameLen > frameMaxLen {
			t.fail(fmt.Errorf("%w: frame of %d bytes on link %s", ErrCorrupt, frameLen, nameBuf))
			return
		}
		if uint64(cap(payload)) < frameLen {
			payload = make([]byte, frameLen)
		}
		payload = payload[:frameLen]
		if _, err := io.ReadFull(br, payload); err != nil {
			t.fail(fmt.Errorf("transport: link %s: %w", nameBuf, err))
			return
		}
		st.addRxBytes(int64(frameLen) + int64(uvarintLen(frameLen)))
		slab, err = dec.DecodeFrame(payload, slab[:0])
		if err != nil {
			t.fail(fmt.Errorf("transport: link %s: %w", nameBuf, err))
			return
		}
		rem := slab
		spins := 0
		for len(rem) > 0 {
			dst := r.Grant(len(rem))
			if dst == nil {
				if spins == 0 {
					st.addStall()
				}
				backoff(&spins)
				continue
			}
			spins = 0
			copy(dst, rem)
			r.Publish(len(dst))
			rem = rem[len(dst):]
		}
	}
}

// uvarintLen is the encoded size of x as a uvarint.
func uvarintLen(x uint64) int {
	return (bits.Len64(x|1) + 6) / 7
}

// tcpSender is the producer end of one TCP link, split into two
// pipelined stages: the caller's goroutine ENCODES slabs into the
// active coalescing buffer, and a dedicated WRITER goroutine moves
// filled buffers to the kernel — so the encode of frame N overlaps the
// socket write of frame N−1. Buffers rotate through a fixed pool
// (free → encode → out → write → free); when several are queued the
// writer gathers them into one vectored net.Buffers writev call.
// SendSlab/Flush/Close stay single-producer per the Link contract; the
// channels carry the buffers across the stage boundary.
type tcpSender struct {
	conn   net.Conn
	enc    Encoder
	cur    []byte        // active encoding buffer
	out    chan []byte   // filled buffers → writer stage
	free   chan []byte   // writer stage → reusable buffers
	done   chan struct{} // writer exited
	stats  *linkStats
	werr   atomic.Pointer[error] // first writer-side error
	err    error                 // sticky producer-side error
	closed bool
}

func newTCPSender(conn net.Conn, st *linkStats) *tcpSender {
	s := &tcpSender{
		conn:  conn,
		out:   make(chan []byte, senderBufs),
		free:  make(chan []byte, senderBufs),
		done:  make(chan struct{}),
		stats: st,
		cur:   make([]byte, 0, coalesceBytes+coalesceBytes/4),
	}
	for i := 0; i < senderBufs-1; i++ {
		s.free <- make([]byte, 0, coalesceBytes+coalesceBytes/4)
	}
	go s.writeLoop()
	return s
}

// writeLoop is the writer stage: it drains filled buffers, gathers
// whatever is already queued into one vectored write, and returns the
// buffers to the pool. After a write error it keeps draining (and
// recycling) so the encoder stage can observe the error instead of
// blocking on a full pipeline.
func (s *tcpSender) writeLoop() {
	defer close(s.done)
	var vec net.Buffers
	pend := make([][]byte, 0, senderBufs)
	open := true
	for open {
		b, ok := <-s.out
		if !ok {
			return
		}
		pend = append(pend[:0], b)
		for len(pend) < senderBufs {
			select {
			case b2, ok2 := <-s.out:
				if !ok2 {
					open = false
				} else {
					pend = append(pend, b2)
					continue
				}
			default:
			}
			break
		}
		if s.werr.Load() == nil {
			vec = vec[:0]
			for _, p := range pend {
				vec = append(vec, p)
			}
			n, err := vec.WriteTo(s.conn)
			s.stats.addBytes(n)
			s.stats.addFlushes(1)
			if err != nil {
				s.werr.CompareAndSwap(nil, &err)
			}
		}
		for _, p := range pend {
			s.free <- p[:0]
		}
	}
}

// checkErr folds the writer stage's asynchronous error into the
// producer-side sticky error.
func (s *tcpSender) checkErr() error {
	if s.err == nil {
		if p := s.werr.Load(); p != nil {
			s.err = *p
		}
	}
	return s.err
}

// rotate hands the active buffer to the writer stage and takes a fresh
// one from the pool (blocking only while the writer owns every other
// buffer — the pipeline's backpressure).
func (s *tcpSender) rotate() {
	s.out <- s.cur
	s.cur = <-s.free
}

// SendSlab implements Sender: encode into the active buffer, rotate it
// to the writer stage when it crosses the coalescing threshold.
func (s *tcpSender) SendSlab(msgs []Msg) error {
	if s.closed {
		return ErrClosed
	}
	if err := s.checkErr(); err != nil {
		return err
	}
	st0 := s.enc.Stats()
	s.cur = s.enc.AppendFrame(s.cur, msgs)
	st1 := s.enc.Stats()
	s.stats.addFrames(1)
	s.stats.addMsgs(int64(len(msgs)))
	s.stats.addDict(int64(st1.Hits-st0.Hits), int64(st1.Resets-st0.Resets))
	if len(s.cur) >= coalesceBytes {
		s.rotate()
	}
	return s.checkErr()
}

// Flush implements Sender: it hands any coalesced bytes to the writer
// stage. The write itself completes asynchronously (per-link ordering
// is preserved; a later SendSlab/Flush/Close surfaces any error), so a
// flush never stalls the encoder on the kernel.
func (s *tcpSender) Flush() error {
	if s.closed {
		return ErrClosed
	}
	if err := s.checkErr(); err != nil {
		return err
	}
	if len(s.cur) > 0 {
		s.rotate()
	}
	return s.checkErr()
}

// Close implements Sender: flush, drain the writer stage, then
// half-close so the peer's reader drains buffered frames and sees a
// clean EOF.
func (s *tcpSender) Close() error {
	if s.closed {
		return s.checkErr()
	}
	s.closed = true
	if len(s.cur) > 0 {
		s.out <- s.cur
		s.cur = nil
	}
	close(s.out)
	<-s.done
	err := s.checkErr()
	if tc, ok := s.conn.(*net.TCPConn); ok {
		if cerr := tc.CloseWrite(); err == nil {
			err = cerr
		}
		return err
	}
	if cerr := s.conn.Close(); err == nil {
		err = cerr
	}
	return err
}

// linkStats is the per-link telemetry bundle; a zero value (nil
// registry) makes every add a no-op.
type linkStats struct {
	bytes, rxBytes, frames, msgs  *telemetry.Counter
	flushes, stalls, hits, resets *telemetry.Counter
}

func newLinkStats(reg *telemetry.Registry, name string) *linkStats {
	if reg == nil {
		return &linkStats{}
	}
	l := telemetry.L("link", name)
	return &linkStats{
		bytes:   reg.Counter("transport_tx_bytes_total", l),
		rxBytes: reg.Counter("transport_rx_bytes_total", l),
		frames:  reg.Counter("transport_frames_total", l),
		msgs:    reg.Counter("transport_tx_msgs_total", l),
		flushes: reg.Counter("transport_flushes_total", l),
		stalls:  reg.Counter("transport_send_stalls_total", l),
		hits:    reg.Counter("transport_dict_hits_total", l),
		resets:  reg.Counter("transport_dict_resets_total", l),
	}
}

func (s *linkStats) addBytes(n int64) {
	if s.bytes != nil {
		s.bytes.Add(n)
	}
}

func (s *linkStats) addRxBytes(n int64) {
	if s.rxBytes != nil {
		s.rxBytes.Add(n)
	}
}

func (s *linkStats) addFrames(n int64) {
	if s.frames != nil {
		s.frames.Add(n)
	}
}

func (s *linkStats) addMsgs(n int64) {
	if s.msgs != nil {
		s.msgs.Add(n)
	}
}

func (s *linkStats) addFlushes(n int64) {
	if s.flushes != nil {
		s.flushes.Add(n)
	}
}

func (s *linkStats) addStall() {
	if s.stalls != nil {
		s.stalls.Inc()
	}
}

func (s *linkStats) addDict(hits, resets int64) {
	if s.hits != nil && hits > 0 {
		s.hits.Add(hits)
	}
	if s.resets != nil && resets > 0 {
		s.resets.Add(resets)
	}
}
