// Package transport is the edge fabric for the goroutine dataplane: it
// moves slabs of tuples between spouts, bolts, and reducer shards over
// named point-to-point links, behind one interface with two backends.
//
// The memory backend maps each link onto one internal/ring SPSC ring of
// Msg values — a Grant/Publish copy on send and an Acquire/copy/Release
// on receive — so steady-state traffic allocates nothing and stays
// within a few percent of writing the ring directly. The TCP backend
// carries the same slabs over loopback (or real) connections using the
// columnar wire-format-v2 codec (frame.go): struct-of-arrays frames
// over a persistent per-link key dictionary with an epoch-reset
// protocol, so a hot key's bytes cross the wire once per epoch and a
// steady-state message costs a few bytes. The sender is pipelined —
// the caller's goroutine encodes into a coalescing buffer while a
// dedicated writer goroutine moves filled buffers to the kernel with
// vectored writes (tcp.go) — and a per-connection reader goroutine
// decodes frames into an SPSC ring through a reusable key arena, so
// the receive side is identical in shape to the memory backend and
// steady-state decode allocates nothing. Per-link telemetry (tx/rx
// bytes, frames, messages, flushes, send stalls, dictionary hits and
// resets) lands in the engine's internal/telemetry registry.
//
// # Contract
//
// Links are single-producer single-consumer: exactly one goroutine
// sends on a link's Sender and exactly one receives on its Receiver.
// SendSlab copies the slab in (possibly blocking while the link is
// full); Flush pushes any coalesced bytes toward the peer — for the
// TCP backend it hands them to the writer stage and returns without
// waiting for the kernel (per-link ordering is preserved, and write
// errors surface on a later SendSlab/Flush/Close); for the memory
// backend it is a no-op, sends being immediately visible. Close marks
// the producer side done; after the receiver drains every in-flight
// message, RecvSlab reports done. RecvSlab is non-blocking — it
// returns 0 when no messages are ready — because consumers multiplex
// many links round-robin, exactly like the ring dataplane's bolts.
// Message order is preserved per link; nothing is dropped.
//
// # Delivery under faults
//
// The TCP backend keeps that contract when connections die. Every
// coalescing buffer carries a sequence number; the receiver streams
// cumulative acks back and the sender retains a bounded window of
// unacked buffers (TCPConfig.RetainedBufs). When a connection is lost
// — write error, receiver-detected sequence gap, or ack timeout
// (TCPConfig.ResendTimeout) — the sender redials under jittered
// exponential backoff (TCPConfig.RedialBackoff, RedialAttempts,
// MaxReconnects), resets the codec's dictionary epoch (a fresh
// connection always starts a fresh epoch: the documented resync point
// that makes mid-stream loss unable to desynchronize the
// dictionaries), reads the resync handshake — each accepted connection
// opens with the receiver's current cumulative ack, before any data —
// and replays only what that mark says is still undelivered. The wire
// is therefore at-least-once; the receiver's sequence state, which
// persists across connections, discards duplicates at the receive
// edge, so the link as a whole delivers every message exactly once, in
// order. With MaxReconnects < 0 a lost connection is a hard error on
// that link (Link.Err) — never silent loss. The Chaos wrapper injects
// a deterministic fault schedule (seeded drops, periodic severs,
// accept delays) over either backend for tests and soaks, and the
// recovery machinery reports transport_reconnects_total,
// transport_retransmit_frames_total, transport_retransmit_bytes_total,
// transport_dup_msgs_dropped_total and transport_outage_seconds
// per link.
package transport

import (
	"errors"
	"sync/atomic"
)

// Msg is the one tuple shape that crosses links. The dataplane maps
// spout→bolt tuples onto it (Weight = per-message value, Emit = emit
// timestamp in ns when latency-sampled, Src = producing source, or -1
// for a watermark tick) and bolt→reducer partials onto it (Weight =
// partial count, Val0/Val1 = the accumulated aggregation value, Src =
// producing worker). Key travels alongside its digest because finals
// are keyed by string; the frame codec dictionary-encodes it so a hot
// key's bytes cross a TCP link once per dictionary reset, not once per
// message.
type Msg struct {
	Dig    uint64
	Window int64
	Weight int64
	Val0   uint64
	Val1   uint64
	Emit   int64
	Src    int32
	Key    string
}

// Sender is the producer end of one link.
type Sender interface {
	// SendSlab copies the slab onto the link, blocking while the link
	// is full. It returns an error only when the link is broken (peer
	// gone, connection failed); the memory backend never fails.
	SendSlab(msgs []Msg) error
	// Flush forces any coalesced bytes out to the peer.
	Flush() error
	// Close flushes, then marks the producer done. The receiver drains
	// in-flight messages and then observes done.
	Close() error
}

// SlabGranter is an optional Sender fast path. In-process backends
// expose the underlying ring's grant/publish cycle so producers can
// construct messages directly in link memory — the zero-copy path —
// instead of staging a slab and having SendSlab copy it. Grant returns
// up to max contiguous writable slots (nil when the link is full);
// Publish commits the first n of the most recent grant. Granted slots
// that are never published are simply reused by the next Grant.
// Senders that cross a process boundary (TCP) do not implement it:
// their encoder must read a staged slab anyway.
type SlabGranter interface {
	Grant(max int) []Msg
	Publish(n int)
}

// Receiver is the consumer end of one link.
type Receiver interface {
	// RecvSlab copies up to len(buf) ready messages into buf and
	// returns how many. It never blocks: n == 0 means nothing is ready
	// right now. done reports that the producer closed AND every
	// message has been received; once done, n is always 0.
	RecvSlab(buf []Msg) (n int, done bool)
}

// Link is one named point-to-point edge.
type Link struct {
	Name string
	Sender
	Receiver

	// err is the link-scoped first hard error (TCP backend); nil for
	// backends that cannot fail per-link.
	err *atomic.Pointer[error]
}

// Err reports the link's first hard delivery error, if any. Errors are
// scoped per link: one broken peer surfaces here (and on the
// transport's aggregate Err) without poisoning sibling links' sends.
// Backends that cannot fail per-link (memory) always report nil.
func (l *Link) Err() error {
	if l.err == nil {
		return nil
	}
	if p := l.err.Load(); p != nil {
		return *p
	}
	return nil
}

// Transport hands out links by name and owns their shared resources.
type Transport interface {
	// Open creates (or returns the existing) link with this name and
	// per-link buffer capacity of at least cap messages. Both ends are
	// usable immediately; the capacity is rounded up as the backend
	// requires. Open must be called before goroutines race on the link.
	Open(name string, cap int) (*Link, error)
	// Close tears down every link and shared resource. Senders must be
	// closed first; Close does not wait for unread messages.
	Close() error
}

// ErrClosed is returned by sends on a link whose transport or peer is
// already gone.
var ErrClosed = errors.New("transport: link closed")
