package transport

import (
	"fmt"
	"sync"
	"time"
)

// ChaosConfig is a deterministic fault schedule: the same seed and
// per-link traffic order always produce the same drops and severs, so
// fault tests are reproducible.
type ChaosConfig struct {
	// Seed derandomizes the drop schedule; 0 means 1.
	Seed uint64
	// DropOneIn drops roughly one in N sender-side buffer writes. On
	// TCP the bytes vanish before reaching the kernel — the receiver's
	// sequence gap or the sender's ack timeout forces a retransmission;
	// on memory the slab is held back and redelivered later (the
	// backend is lossless by construction, so a "drop" is a delay that
	// still exercises reordering-free redelivery). 0 disables drops.
	DropOneIn int
	// SeverEvery severs the link on every N-th buffer write: TCP closes
	// the connection mid-stream (forcing a reconnect + resend episode),
	// memory stalls the link for the next few slabs. The counter-based
	// schedule guarantees every link with enough traffic is severed. 0
	// disables severs.
	SeverEvery int
	// AcceptDelay stalls the accept side of every TCP reconnect (the
	// serve goroutine sleeps before replaying), widening the outage
	// window the sender's redial backoff must ride out. 0 disables.
	AcceptDelay time.Duration
}

// ChaosLinkStats is one link's injected-fault ledger.
type ChaosLinkStats struct {
	// Writes is how many sender-side buffer writes the schedule judged.
	Writes int64
	// Dropped is how many of them were dropped (TCP) or held back
	// (memory).
	Dropped int64
	// Severed is how many times the link was severed.
	Severed int64
}

// chaos verdicts for one buffer write.
const (
	chaosPass = iota
	chaosDrop
	chaosSever
)

// chaosState is the schedule shared by every link of one wrapped
// transport. Verdicts are deterministic in (seed, link name, per-link
// write index); the mutex only orders concurrent map access — each
// link has a single writer, so its verdict sequence is stable.
type chaosState struct {
	cfg   ChaosConfig
	mu    sync.Mutex
	links map[string]*ChaosLinkStats
}

func newChaosState(cfg ChaosConfig) *chaosState {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &chaosState{cfg: cfg, links: make(map[string]*ChaosLinkStats)}
}

func (cs *chaosState) verdict(name string) int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cl := cs.links[name]
	if cl == nil {
		cl = &ChaosLinkStats{}
		cs.links[name] = cl
	}
	cl.Writes++
	if n := cs.cfg.SeverEvery; n > 0 && cl.Writes%int64(n) == 0 {
		cl.Severed++
		return chaosSever
	}
	if n := cs.cfg.DropOneIn; n > 0 {
		x := mix64(cs.cfg.Seed ^ hashName(name) ^ uint64(cl.Writes)*0x9e3779b97f4a7c15)
		if x%uint64(n) == 0 {
			cl.Dropped++
			return chaosDrop
		}
	}
	return chaosPass
}

func (cs *chaosState) delayAccept() {
	if d := cs.cfg.AcceptDelay; d > 0 {
		time.Sleep(d)
	}
}

func (cs *chaosState) stats() map[string]ChaosLinkStats {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	out := make(map[string]ChaosLinkStats, len(cs.links))
	for k, v := range cs.links {
		out[k] = *v
	}
	return out
}

// chaosSeverHold is how many subsequent slabs a severed memory link
// holds back, emulating the outage window a TCP sever causes.
const chaosSeverHold = 4

// Chaos wraps a backend with deterministic fault injection. Over TCP
// it hooks the sender's write path (drops and severs) and the accept
// path (reconnect delay); over memory — lossless by construction — it
// injects FIFO-preserving holdback: faulted slabs queue behind the
// link and redeliver on a later send or flush, so delivery order is
// untouched while the timing chaos is real. Either way the messages
// that come out are exactly the messages that went in; the fault
// parity tests pin that end to end.
type Chaos struct {
	inner Transport
	st    *chaosState

	mu    sync.Mutex
	links map[string]*Link
}

// NewChaos wraps a Memory or TCP transport with the fault schedule.
func NewChaos(inner Transport, cfg ChaosConfig) *Chaos {
	c := &Chaos{inner: inner, st: newChaosState(cfg), links: make(map[string]*Link)}
	if t, ok := inner.(*TCP); ok {
		t.chaos = c.st
	}
	return c
}

// Open implements Transport.
func (c *Chaos) Open(name string, capacity int) (*Link, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if l, ok := c.links[name]; ok {
		return l, nil
	}
	inner, err := c.inner.Open(name, capacity)
	if err != nil {
		return nil, err
	}
	l := inner
	if _, isTCP := c.inner.(*TCP); !isTCP {
		// Memory backend: interpose the holdback sender. The wrapper
		// deliberately does not implement SlabGranter — the zero-copy
		// fast path would bypass the fault schedule.
		l = &Link{
			Name:     inner.Name,
			Sender:   &chaosSender{inner: inner.Sender, st: c.st, name: name},
			Receiver: inner.Receiver,
			err:      inner.err,
		}
	}
	c.links[name] = l
	return l, nil
}

// Close implements Transport.
func (c *Chaos) Close() error { return c.inner.Close() }

// Stats returns the per-link injected-fault ledger (for asserting a
// run actually suffered the faults it claims to have survived).
func (c *Chaos) Stats() map[string]ChaosLinkStats { return c.st.stats() }

// Err surfaces the inner transport's first hard error, if the backend
// reports one.
func (c *Chaos) Err() error {
	if t, ok := c.inner.(*TCP); ok {
		return t.Err()
	}
	return nil
}

// chaosSender is the memory backend's fault interposer: faulted slabs
// are held back (appended to a pending queue) and released — strictly
// before newer traffic, preserving link FIFO order — on a later
// unfaulted send, or unconditionally on Flush/Close. Spouts flush
// before blocking on acks and bolts flush every window, so holdback
// can delay but never deadlock a run.
type chaosSender struct {
	inner   Sender
	st      *chaosState
	name    string
	held    []Msg
	holding int // sends remaining in the current sever episode
}

func (s *chaosSender) SendSlab(msgs []Msg) error {
	switch s.st.verdict(s.name) {
	case chaosSever:
		s.holding = chaosSeverHold
	case chaosDrop:
		if s.holding == 0 {
			s.holding = 1
		}
	}
	if s.holding > 0 {
		s.holding--
		s.held = append(s.held, msgs...)
		return nil
	}
	if err := s.release(); err != nil {
		return err
	}
	return s.inner.SendSlab(msgs)
}

func (s *chaosSender) release() error {
	if len(s.held) == 0 {
		return nil
	}
	err := s.inner.SendSlab(s.held)
	s.held = s.held[:0]
	return err
}

func (s *chaosSender) Flush() error {
	s.holding = 0
	if err := s.release(); err != nil {
		return err
	}
	return s.inner.Flush()
}

func (s *chaosSender) Close() error {
	s.holding = 0
	if err := s.release(); err != nil {
		s.inner.Close()
		return err
	}
	return s.inner.Close()
}

// String implements fmt.Stringer for diagnostics.
func (c *ChaosConfig) String() string {
	return fmt.Sprintf("chaos{seed=%d drop=1/%d sever=1/%d acceptDelay=%s}",
		c.Seed, c.DropOneIn, c.SeverEvery, c.AcceptDelay)
}
