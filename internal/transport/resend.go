package transport

import (
	"net"
	"sync/atomic"
	"time"
)

// TCPConfig tunes the TCP backend's delivery machinery: the bounded
// resend window, the retransmission timeout, and the reconnect budget.
// The zero value selects defaults sized for reliable links; fault
// tests and chaos runs shrink the timers so recovery is fast relative
// to the run.
type TCPConfig struct {
	// MaxReconnects bounds how many times one link may re-establish its
	// connection over its lifetime; exhausting the budget is a hard
	// link error (the run fails loudly — never a short count). 0 means
	// 64. Negative disables reconnection entirely: the first connection
	// loss is immediately fatal to the link, which is the regime the
	// no-silent-loss test pins.
	MaxReconnects int
	// RedialAttempts bounds the dial tries of ONE reconnect episode;
	// between tries the sender sleeps a jittered exponential backoff
	// starting at RedialBackoff (doubling per try, capped at 64×).
	// Exhausting the attempts is a hard link error. 0 means 10.
	RedialAttempts int
	// RedialBackoff is the initial redial backoff; 0 means 1ms.
	RedialBackoff time.Duration
	// ResendTimeout is the retransmission timeout: with unacked frames
	// outstanding and no ack arriving for this long, the sender
	// declares the connection lost and reconnects. A dropped TAIL frame
	// produces no sequence gap at the receiver, so only this timer can
	// detect it. 0 means 250ms.
	ResendTimeout time.Duration
	// RetainedBufs is the resend window in coalescing buffers: the
	// sender retains every written-but-unacked buffer for
	// retransmission and SendSlab backpressures once all of them are
	// retained. 0 means 16 (≈512 KB per link).
	RetainedBufs int
	// Seed derandomizes the redial jitter; 0 means 1.
	Seed uint64
}

func (c TCPConfig) withDefaults() TCPConfig {
	if c.MaxReconnects == 0 {
		c.MaxReconnects = 64
	}
	if c.RedialAttempts <= 0 {
		c.RedialAttempts = 10
	}
	if c.RedialBackoff <= 0 {
		c.RedialBackoff = time.Millisecond
	}
	if c.ResendTimeout <= 0 {
		c.ResendTimeout = 250 * time.Millisecond
	}
	if c.RetainedBufs < 2 {
		c.RetainedBufs = 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// sendBuf is one coalescing buffer staged between the encoder and the
// writer. b holds fully enveloped data records — uvarint(seq)
// uvarint(len) payload per frame — so a retransmission rewrites the
// bytes verbatim; first and last are the frame sequence numbers inside
// (0 when empty).
type sendBuf struct {
	b           []byte
	first, last uint64
}

func (b *sendBuf) reset() {
	b.b = b.b[:0]
	b.first, b.last = 0, 0
}

// senderConn is one live connection attempt of a link's sender. The
// ack-reader goroutine marks it dead (and closes it) on read error or
// retransmission timeout; the writer goroutine observes the flag and
// reconnects.
type senderConn struct {
	c    net.Conn
	dead atomic.Bool
}

func (sc *senderConn) kill() {
	if !sc.dead.Swap(true) {
		sc.c.Close()
	} else {
		sc.c.Close()
	}
}

// mix64 is the splitmix64 finalizer used for deterministic jitter and
// fault schedules (the same mixer eventsim's link-delay model uses).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashName folds a link name into the fault/jitter hash domain.
func hashName(name string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}
