package transport

import (
	"runtime"
	"sync"
	"time"

	"slb/internal/ring"
)

// Memory is the in-process backend: every link is one SPSC ring of Msg
// values, so a SendSlab is a Grant/copy/Publish and a RecvSlab an
// Acquire/copy/Release — the same machine operations the direct ring
// dataplane performs, with no per-message allocation and no framing.
// It exists so the dataplane's transport wiring can be exercised (and
// benchmarked against the direct plane) with the wire cost isolated to
// the TCP backend.
type Memory struct {
	mu    sync.Mutex
	links map[string]*Link
}

// NewMemory returns an empty in-memory transport.
func NewMemory() *Memory {
	return &Memory{links: make(map[string]*Link)}
}

// Open implements Transport. Capacity is rounded up to the ring's
// power-of-two minimum.
func (t *Memory) Open(name string, capacity int) (*Link, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if l, ok := t.links[name]; ok {
		return l, nil
	}
	if capacity < 2 {
		capacity = 2
	}
	r := ring.New[Msg](capacity)
	l := &Link{Name: name, Sender: (*memSender)(r), Receiver: (*memReceiver)(r)}
	t.links[name] = l
	return l, nil
}

// Close implements Transport. Any still-open senders are closed so
// stuck receivers observe done.
func (t *Memory) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, l := range t.links {
		l.Sender.(*memSender).ring().Close()
	}
	t.links = make(map[string]*Link)
	return nil
}

type memSender ring.SPSC[Msg]

func (s *memSender) ring() *ring.SPSC[Msg] { return (*ring.SPSC[Msg])(s) }

// SendSlab copies msgs into the ring, spinning (Gosched, then brief
// sleeps) while it is full — identical to the direct ring plane's
// producer backoff, so a full link applies backpressure rather than
// dropping or growing.
func (s *memSender) SendSlab(msgs []Msg) error {
	r := s.ring()
	spins := 0
	for len(msgs) > 0 {
		dst := r.Grant(len(msgs))
		if dst == nil {
			backoff(&spins)
			continue
		}
		spins = 0
		copy(dst, msgs)
		r.Publish(len(dst))
		msgs = msgs[len(dst):]
	}
	return nil
}

// Flush is a no-op: ring publishes are immediately visible.
func (s *memSender) Flush() error { return nil }

// Grant implements SlabGranter: it exposes the ring's in-place write
// cycle so producers can construct messages directly in link memory.
func (s *memSender) Grant(max int) []Msg { return s.ring().Grant(max) }

// Publish implements SlabGranter.
func (s *memSender) Publish(n int) { s.ring().Publish(n) }

// Close implements Sender.
func (s *memSender) Close() error {
	s.ring().Close()
	return nil
}

type memReceiver ring.SPSC[Msg]

func (c *memReceiver) ring() *ring.SPSC[Msg] { return (*ring.SPSC[Msg])(c) }

// RecvSlab implements Receiver.
func (c *memReceiver) RecvSlab(buf []Msg) (int, bool) {
	r := c.ring()
	src := r.Acquire(len(buf))
	if len(src) == 0 {
		return 0, r.Drained()
	}
	n := copy(buf, src)
	r.Release(n)
	return n, false
}

// backoff yields politely while a link is full (producer side) — the
// same two-phase policy as the ring dataplane: cheap Gosched first so
// a momentarily busy peer costs almost nothing, short sleeps once the
// stall is real.
func backoff(spins *int) {
	*spins++
	if *spins < 64 {
		runtime.Gosched()
		return
	}
	time.Sleep(20 * time.Microsecond)
}
