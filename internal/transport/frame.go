package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Frame codec: slabs of Msg become length-prefixed varint-packed
// frames, the same packing discipline as the tracefile v2 format —
// uvarints for unsigned fields, zigzag varints for signed ones, and a
// per-connection key dictionary so a hot key's bytes (and its 8-byte
// digest) cross the wire once, after which every recurrence is one
// small varint reference.
//
// Wire layout (all integers varint unless noted):
//
//	frame   := uvarint(len(payload)) payload
//	payload := uvarint(count) msg*count
//	msg     := uvarint(keyRef) [uvarint(keyLen) keyBytes dig:8LE]
//	           zigzag(window) zigzag(weight)
//	           uvarint(val0) uvarint(val1)
//	           zigzag(emit) zigzag(src)
//
// keyRef < len(dict) references an existing entry; keyRef ==
// len(dict) introduces a new entry (key bytes + raw digest follow, and
// both sides append it); keyRef == len(dict)+1 is a literal that is
// NOT added (used once the dictionary is full). Encoder and decoder
// dictionaries stay in lockstep because frames on one connection are
// encoded and decoded in order.
//
// The dictionary stores the digest WITH the key, so references elide
// both: this assumes Msg.Dig is a pure function of Msg.Key (true
// everywhere in the dataplane — digests are the key's hash). A stream
// that sent the same key with different digests would have later
// occurrences decoded with the first digest.
//
// Decoding never panics: every malformed input — truncated varint,
// out-of-range reference, oversized key or count, trailing garbage —
// returns an error wrapping ErrCorrupt.

// Codec limits. A frame larger than frameMaxLen or a key longer than
// frameMaxKey is rejected outright (no honest encoder produces one),
// which also bounds what a fuzzer can make the decoder allocate.
const (
	frameMaxLen  = 1 << 24
	frameMaxKey  = 1 << 16
	frameDictMax = 1 << 15
)

// ErrCorrupt is wrapped by every decode error.
var ErrCorrupt = errors.New("transport: corrupt frame")

func zig(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzig(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Encoder packs slabs into frames, carrying the connection's key
// dictionary. Zero value is ready to use.
type Encoder struct {
	dict map[string]uint64
	buf  []byte
}

// AppendFrame appends one frame holding msgs to dst and returns the
// extended slice. The payload is staged in an internal buffer (reused
// across calls) so the length prefix can be written first.
func (e *Encoder) AppendFrame(dst []byte, msgs []Msg) []byte {
	if e.dict == nil {
		e.dict = make(map[string]uint64)
	}
	b := e.buf[:0]
	b = binary.AppendUvarint(b, uint64(len(msgs)))
	for i := range msgs {
		m := &msgs[i]
		if ref, ok := e.dict[m.Key]; ok {
			b = binary.AppendUvarint(b, ref)
		} else {
			n := uint64(len(e.dict))
			if n < frameDictMax {
				e.dict[m.Key] = n
				b = binary.AppendUvarint(b, n)
			} else {
				b = binary.AppendUvarint(b, n+1) // literal, not added
			}
			b = binary.AppendUvarint(b, uint64(len(m.Key)))
			b = append(b, m.Key...)
			b = binary.LittleEndian.AppendUint64(b, m.Dig)
		}
		b = binary.AppendUvarint(b, zig(m.Window))
		b = binary.AppendUvarint(b, zig(m.Weight))
		b = binary.AppendUvarint(b, m.Val0)
		b = binary.AppendUvarint(b, m.Val1)
		b = binary.AppendUvarint(b, zig(m.Emit))
		b = binary.AppendUvarint(b, zig(int64(m.Src)))
	}
	e.buf = b
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

type dictEntry struct {
	key string
	dig uint64
}

// Decoder unpacks frame payloads, mirroring the encoder's dictionary.
// Zero value is ready to use.
type Decoder struct {
	dict []dictEntry
}

// DecodeFrame decodes one frame payload (the bytes after the length
// prefix) and appends the messages to dst. On any malformed input it
// returns dst unchanged in length-meaning (partial appends may have
// grown the slice it returns alongside a non-nil error; callers must
// discard it) and an error wrapping ErrCorrupt.
func (d *Decoder) DecodeFrame(payload []byte, dst []Msg) ([]Msg, error) {
	p := payload
	count, n := binary.Uvarint(p)
	if n <= 0 {
		return dst, fmt.Errorf("%w: bad count", ErrCorrupt)
	}
	p = p[n:]
	if count > uint64(len(p)) {
		return dst, fmt.Errorf("%w: count %d exceeds payload", ErrCorrupt, count)
	}
	for i := uint64(0); i < count; i++ {
		var m Msg
		ref, n := binary.Uvarint(p)
		if n <= 0 {
			return dst, fmt.Errorf("%w: bad key ref", ErrCorrupt)
		}
		p = p[n:]
		switch {
		case ref < uint64(len(d.dict)):
			m.Key, m.Dig = d.dict[ref].key, d.dict[ref].dig
		case ref == uint64(len(d.dict)) || ref == uint64(len(d.dict))+1:
			klen, n := binary.Uvarint(p)
			if n <= 0 || klen > frameMaxKey || klen > uint64(len(p)-n) {
				return dst, fmt.Errorf("%w: bad key length", ErrCorrupt)
			}
			p = p[n:]
			m.Key = string(p[:klen])
			p = p[klen:]
			if len(p) < 8 {
				return dst, fmt.Errorf("%w: truncated digest", ErrCorrupt)
			}
			m.Dig = binary.LittleEndian.Uint64(p)
			p = p[8:]
			if ref == uint64(len(d.dict)) {
				if ref >= frameDictMax {
					return dst, fmt.Errorf("%w: dictionary overflow", ErrCorrupt)
				}
				d.dict = append(d.dict, dictEntry{m.Key, m.Dig})
			}
		default:
			return dst, fmt.Errorf("%w: key ref %d out of range", ErrCorrupt, ref)
		}
		fields := [4]uint64{}
		for f := 0; f < 4; f++ {
			v, n := binary.Uvarint(p)
			if n <= 0 {
				return dst, fmt.Errorf("%w: truncated msg %d", ErrCorrupt, i)
			}
			p = p[n:]
			fields[f] = v
		}
		m.Window, m.Weight = unzig(fields[0]), unzig(fields[1])
		m.Val0, m.Val1 = fields[2], fields[3]
		for f := 0; f < 2; f++ {
			v, n := binary.Uvarint(p)
			if n <= 0 {
				return dst, fmt.Errorf("%w: truncated msg %d", ErrCorrupt, i)
			}
			p = p[n:]
			if f == 0 {
				m.Emit = unzig(v)
			} else {
				s := unzig(v)
				if s < -(1<<31) || s >= 1<<31 {
					return dst, fmt.Errorf("%w: src out of range", ErrCorrupt)
				}
				m.Src = int32(s)
			}
		}
		dst = append(dst, m)
	}
	if len(p) != 0 {
		return dst, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(p))
	}
	return dst, nil
}
