package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"unsafe"
)

// Frame codec v2: slabs of Msg become length-prefixed COLUMNAR frames
// over a PERSISTENT per-link key dictionary.
//
// Two structural ideas separate v2 from the PR-8 record layout (kept in
// frame_record.go as the benchmark reference):
//
//  1. Struct-of-arrays. A frame is a sequence of per-field columns —
//     all key references, then all windows, then all weights, … —
//     instead of interleaved per-message records. Encode and decode
//     become tight single-field loops, columns whose values are all
//     zero (Val0/Val1 on the tuple path) are elided entirely via a
//     flags byte, uniform columns collapse to a single value (a slab
//     from one spout carries its constant Src once, and Window/Weight
//     are usually uniform too — one epoch, count workloads),
//     non-uniform windows are delta+zigzag coded (runs of equal ids,
//     so deltas are almost all one zero byte), and the emit column is
//     sparse (the dataplane latency-samples 1-in-8).
//
//  2. A stateful dictionary with an epoch-reset protocol. The encoder
//     assigns each distinct key a dense id for the lifetime of the
//     link; key bytes and the 8-byte digest cross the wire once, in the
//     frame's new-keys column, and every later occurrence is one small
//     varint id. When the dictionary reaches frameDictMax the encoder
//     starts a new EPOCH: it clears the dictionary, bumps its epoch
//     counter, and raises fReset on the next frame; the decoder mirrors
//     the clear. Every frame carries the encoder's epoch and the
//     decoder verifies it against its own — a dropped, duplicated or
//     reordered frame desynchronizes the dictionaries, and the epoch
//     check turns that into a hard ErrCorrupt instead of silently
//     delivering wrong keys. Eviction is therefore trivially correct:
//     the only eviction is the wholesale reset both sides perform at
//     the same frame boundary.
//
// Wire layout (all integers varint unless noted; columns in order):
//
//	frame   := uvarint(len(payload)) payload
//	payload := uvarint(count) uvarint(epoch) flags:1 columns
//	columns := [newKeys] keyRefs windows weights [val0s] [val1s]
//	           [emits] srcs                        (columns only if count > 0)
//	newKeys := uvarint(numNew) (uvarint(keyLen) keyBytes dig:8LE)^numNew
//	keyRefs := uvarint(ref)^count                  ref < len(dict)+numNew
//	windows := zigzag(window)                      if fWinConst
//	         | zigzag(delta from previous, first from 0)^count
//	weights := zigzag(weight)                      if fWeightConst
//	         | zigzag^count
//	val0s   := uvarint^count                       only if fVal0
//	val1s   := uvarint^count                       only if fVal1
//	emits   := uvarint(k) (uvarint(idxDelta) zigzag(emit))^k  only if fEmit
//	srcs    := zigzag(src)                         if fSrcConst
//	         | zigzag^count                        otherwise
//
// New dictionary entries are appended in first-occurrence order, so the
// decoder extends its dictionary from the new-keys column and keyRefs
// decode as plain indices — including references to entries introduced
// by this same frame. The dictionary stores the digest WITH the key, so
// references elide both, and the ENCODER side is keyed by the digest
// alone: hashing.KeyDigest is the dataplane's canonical key identity
// (every aggregation table is keyed by it), so digest-equal messages
// are already the same key everywhere downstream. The sparse emit column records ascending message indices as
// gaps (first absolute, then strictly positive deltas).
//
// Decoding never panics: every malformed input — truncated varint or
// column, out-of-range reference, epoch mismatch, dictionary overflow
// without reset, oversized key or count, trailing garbage — returns an
// error wrapping ErrCorrupt.
//
// Decoded key strings are interned in a per-decoder byte arena
// (chunked, append-only): one chunk allocation amortizes over thousands
// of keys, and a steady-state frame — every key a dictionary hit —
// decodes with zero allocations (hard-asserted by
// TestColumnarDecodeSteadyStateZeroAllocs).

// Codec limits. A frame larger than frameMaxLen, a key longer than
// frameMaxKey, or a frame claiming more than frameMaxMsgs messages is
// rejected outright (no honest encoder produces one), which also
// bounds what a fuzzer can make the decoder allocate.
const (
	frameMaxLen  = 1 << 24
	frameMaxKey  = 1 << 16
	frameMaxMsgs = 1 << 20
	frameDictMax = 1 << 15
)

// Frame flag bits.
const (
	fReset       = 1 << 0 // dictionary epoch reset precedes this frame
	fNewKeys     = 1 << 1 // new-keys column present
	fVal0        = 1 << 2 // val0 column present (some value nonzero)
	fVal1        = 1 << 3 // val1 column present
	fEmit        = 1 << 4 // sparse emit column present
	fSrcConst    = 1 << 5 // single shared src instead of a column
	fWinConst    = 1 << 6 // single shared window instead of a column
	fWeightConst = 1 << 7 // single shared weight instead of a column
)

// ErrCorrupt is wrapped by every decode error.
var ErrCorrupt = errors.New("transport: corrupt frame")

func zig(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzig(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// EncoderStats is the encoder's cumulative dictionary ledger.
type EncoderStats struct {
	// Hits counts messages whose key was already in the dictionary
	// (only a varint id crossed the wire); News counts introductions
	// (key bytes + digest crossed once); Resets counts epoch resets.
	Hits, News, Resets uint64
}

// Encoder packs slabs into columnar frames, carrying the link's
// persistent key dictionary across its whole lifetime. Zero value is
// ready to use.
type Encoder struct {
	// dict is keyed by the message DIGEST, not the key string: the
	// dataplane's canonical key identity is hashing.KeyDigest (every
	// aggregation table is keyed by it), so the codec adopting the same
	// identity adds no new collision surface — and a uint64 map lookup
	// costs a fraction of hashing the key bytes per message.
	dict       map[uint64]uint32
	epoch      uint64
	forceReset bool
	stats      EncoderStats
	buf        []byte // payload assembly, reused across frames
	newbuf     []byte // new-keys column scratch
	refbuf     []byte // keyRefs column scratch
}

// Stats returns the cumulative dictionary ledger.
func (e *Encoder) Stats() EncoderStats { return e.stats }

// ResetEpoch forces the next AppendFrame to start a new dictionary
// epoch (clear + fReset), regardless of occupancy. The TCP sender calls
// it after a reconnect: the reset frame is the link's documented resync
// point — post-reconnect frames depend only on keys introduced since
// the reset, never on dictionary context from before the outage.
func (e *Encoder) ResetEpoch() { e.forceReset = true }

// AppendFrame appends one frame holding msgs to dst and returns the
// extended slice. The payload is staged in internal buffers (reused
// across calls) so the length prefix can be written first. If the
// dictionary is at capacity the frame starts a new epoch (fReset).
func (e *Encoder) AppendFrame(dst []byte, msgs []Msg) []byte {
	if e.dict == nil {
		e.dict = make(map[uint64]uint32, 1024)
	}
	var flags byte
	if e.forceReset || len(e.dict) >= frameDictMax {
		clear(e.dict)
		e.epoch++
		e.stats.Resets++
		e.forceReset = false
		flags |= fReset
	}

	// Pre-scan: which optional columns exist, which are constant. A
	// slab's windows and weights are usually uniform (one epoch, count
	// workloads), so like the per-spout Src they collapse to one value.
	emits := 0
	srcConst, winConst, weightConst := true, true, true
	for i := range msgs {
		m := &msgs[i]
		if m.Val0 != 0 {
			flags |= fVal0
		}
		if m.Val1 != 0 {
			flags |= fVal1
		}
		if m.Emit != 0 {
			emits++
		}
		if m.Src != msgs[0].Src {
			srcConst = false
		}
		if m.Window != msgs[0].Window {
			winConst = false
		}
		if m.Weight != msgs[0].Weight {
			weightConst = false
		}
	}
	if len(msgs) > 0 {
		if srcConst {
			flags |= fSrcConst
		}
		if winConst {
			flags |= fWinConst
		}
		if weightConst {
			flags |= fWeightConst
		}
	}
	if emits > 0 {
		flags |= fEmit
	}

	// Key columns: refs into refbuf, introductions into newbuf — one
	// pass growing the dictionary exactly as the decoder will.
	rb, nb := e.refbuf[:0], e.newbuf[:0]
	numNew := 0
	for i := range msgs {
		m := &msgs[i]
		id, ok := e.dict[m.Dig]
		if !ok {
			id = uint32(len(e.dict))
			e.dict[m.Dig] = id
			numNew++
			e.stats.News++
			nb = binary.AppendUvarint(nb, uint64(len(m.Key)))
			nb = append(nb, m.Key...)
			nb = binary.LittleEndian.AppendUint64(nb, m.Dig)
		} else {
			e.stats.Hits++
		}
		rb = binary.AppendUvarint(rb, uint64(id))
	}
	e.refbuf, e.newbuf = rb, nb
	if numNew > 0 {
		flags |= fNewKeys
	}

	b := e.buf[:0]
	b = binary.AppendUvarint(b, uint64(len(msgs)))
	b = binary.AppendUvarint(b, e.epoch)
	b = append(b, flags)
	if len(msgs) > 0 {
		if numNew > 0 {
			b = binary.AppendUvarint(b, uint64(numNew))
			b = append(b, nb...)
		}
		b = append(b, rb...)
		if flags&fWinConst != 0 {
			b = binary.AppendUvarint(b, zig(msgs[0].Window))
		} else {
			prev := int64(0)
			for i := range msgs {
				b = binary.AppendUvarint(b, zig(msgs[i].Window-prev))
				prev = msgs[i].Window
			}
		}
		if flags&fWeightConst != 0 {
			b = binary.AppendUvarint(b, zig(msgs[0].Weight))
		} else {
			for i := range msgs {
				b = binary.AppendUvarint(b, zig(msgs[i].Weight))
			}
		}
		if flags&fVal0 != 0 {
			for i := range msgs {
				b = binary.AppendUvarint(b, msgs[i].Val0)
			}
		}
		if flags&fVal1 != 0 {
			for i := range msgs {
				b = binary.AppendUvarint(b, msgs[i].Val1)
			}
		}
		if flags&fEmit != 0 {
			b = binary.AppendUvarint(b, uint64(emits))
			prevIdx := 0
			first := true
			for i := range msgs {
				if msgs[i].Emit == 0 {
					continue
				}
				if first {
					b = binary.AppendUvarint(b, uint64(i))
					first = false
				} else {
					b = binary.AppendUvarint(b, uint64(i-prevIdx))
				}
				b = binary.AppendUvarint(b, zig(msgs[i].Emit))
				prevIdx = i
			}
		}
		if flags&fSrcConst != 0 {
			b = binary.AppendUvarint(b, zig(int64(msgs[0].Src)))
		} else {
			for i := range msgs {
				b = binary.AppendUvarint(b, zig(int64(msgs[i].Src)))
			}
		}
	}
	e.buf = b
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

type dictEntry struct {
	key string
	dig uint64
}

// keyArena interns decoded key bytes in append-only chunks so the
// decoder does not allocate one string per dictionary introduction.
// Chunks are never reused: delivered messages (and dictionary entries
// from earlier epochs) hold string headers into them, and the garbage
// collector frees a chunk when the last such string dies.
type keyArena struct {
	cur []byte
}

const arenaChunk = 64 << 10

func (a *keyArena) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if len(a.cur)+len(b) > cap(a.cur) {
		n := arenaChunk
		if len(b) > n {
			n = len(b)
		}
		a.cur = make([]byte, 0, n)
	}
	off := len(a.cur)
	a.cur = append(a.cur, b...)
	// The chunk region [off, off+len(b)) is never written again (the
	// arena only appends and abandons full chunks), so exposing it as
	// an immutable string is safe.
	return unsafe.String(&a.cur[off], len(b))
}

// Decoder unpacks frame payloads, mirroring the encoder's persistent
// dictionary and epoch. Zero value is ready to use.
type Decoder struct {
	dict  []dictEntry
	epoch uint64
	arena keyArena
}

// DecodeFrame decodes one frame payload (the bytes after the length
// prefix) and appends the messages to dst. On any malformed input it
// returns a non-nil error wrapping ErrCorrupt; callers must discard
// the returned slice (and the connection — the dictionary state is no
// longer trustworthy).
func (d *Decoder) DecodeFrame(payload []byte, dst []Msg) ([]Msg, error) {
	p := payload
	count, n := binary.Uvarint(p)
	if n <= 0 {
		return dst, fmt.Errorf("%w: bad count", ErrCorrupt)
	}
	p = p[n:]
	// Every message costs at least its one-byte key ref, so a payload
	// shorter than count messages cannot be honest — rejecting it here
	// bounds how much a crafted count can make the decoder reserve.
	if count > frameMaxMsgs || count > uint64(len(p)) {
		return dst, fmt.Errorf("%w: count %d exceeds payload", ErrCorrupt, count)
	}
	epoch, n := binary.Uvarint(p)
	if n <= 0 {
		return dst, fmt.Errorf("%w: bad epoch", ErrCorrupt)
	}
	p = p[n:]
	if len(p) < 1 {
		return dst, fmt.Errorf("%w: missing flags", ErrCorrupt)
	}
	flags := p[0]
	p = p[1:]
	want := d.epoch
	if flags&fReset != 0 {
		want++
	}
	if epoch != want {
		return dst, fmt.Errorf("%w: epoch %d, want %d (link desynchronized)", ErrCorrupt, epoch, want)
	}
	if flags&fReset != 0 {
		d.dict = d.dict[:0]
		d.epoch = want
	}
	if count == 0 {
		if flags&^fReset != 0 {
			return dst, fmt.Errorf("%w: empty frame with columns", ErrCorrupt)
		}
		if len(p) != 0 {
			return dst, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(p))
		}
		return dst, nil
	}

	// New-keys column: extend the dictionary first, then keyRefs decode
	// as plain indices.
	if flags&fNewKeys != 0 {
		numNew, n := binary.Uvarint(p)
		if n <= 0 || numNew == 0 || numNew > count {
			return dst, fmt.Errorf("%w: bad new-key count", ErrCorrupt)
		}
		p = p[n:]
		if len(d.dict) >= frameDictMax {
			return dst, fmt.Errorf("%w: dictionary overflow without reset", ErrCorrupt)
		}
		for j := uint64(0); j < numNew; j++ {
			klen, n := binary.Uvarint(p)
			if n <= 0 || klen > frameMaxKey || klen > uint64(len(p)-n) {
				return dst, fmt.Errorf("%w: bad key length", ErrCorrupt)
			}
			p = p[n:]
			key := d.arena.intern(p[:klen])
			p = p[klen:]
			if len(p) < 8 {
				return dst, fmt.Errorf("%w: truncated digest", ErrCorrupt)
			}
			d.dict = append(d.dict, dictEntry{key, binary.LittleEndian.Uint64(p)})
			p = p[8:]
		}
	}

	// Reserve the output region, then fill it column by column.
	base := len(dst)
	need := base + int(count)
	if cap(dst) < need {
		grown := make([]Msg, need, max(need, 2*cap(dst)))
		copy(grown, dst)
		dst = grown[:base]
	}
	dst = dst[:need]
	out := dst[base:]

	dict := d.dict
	for i := range out {
		ref, n := binary.Uvarint(p)
		if n <= 0 {
			return dst, fmt.Errorf("%w: truncated key refs", ErrCorrupt)
		}
		p = p[n:]
		if ref >= uint64(len(dict)) {
			return dst, fmt.Errorf("%w: key ref %d out of range", ErrCorrupt, ref)
		}
		out[i].Key, out[i].Dig = dict[ref].key, dict[ref].dig
	}
	if flags&fWinConst != 0 {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return dst, fmt.Errorf("%w: truncated windows", ErrCorrupt)
		}
		p = p[n:]
		w := unzig(v)
		for i := range out {
			out[i].Window = w
		}
	} else {
		prev := int64(0)
		for i := range out {
			v, n := binary.Uvarint(p)
			if n <= 0 {
				return dst, fmt.Errorf("%w: truncated windows", ErrCorrupt)
			}
			p = p[n:]
			prev += unzig(v)
			out[i].Window = prev
		}
	}
	if flags&fWeightConst != 0 {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return dst, fmt.Errorf("%w: truncated weights", ErrCorrupt)
		}
		p = p[n:]
		w := unzig(v)
		for i := range out {
			out[i].Weight = w
		}
	} else {
		for i := range out {
			v, n := binary.Uvarint(p)
			if n <= 0 {
				return dst, fmt.Errorf("%w: truncated weights", ErrCorrupt)
			}
			p = p[n:]
			out[i].Weight = unzig(v)
		}
	}
	if flags&fVal0 != 0 {
		for i := range out {
			v, n := binary.Uvarint(p)
			if n <= 0 {
				return dst, fmt.Errorf("%w: truncated val0", ErrCorrupt)
			}
			p = p[n:]
			out[i].Val0 = v
		}
	} else {
		for i := range out {
			out[i].Val0 = 0
		}
	}
	if flags&fVal1 != 0 {
		for i := range out {
			v, n := binary.Uvarint(p)
			if n <= 0 {
				return dst, fmt.Errorf("%w: truncated val1", ErrCorrupt)
			}
			p = p[n:]
			out[i].Val1 = v
		}
	} else {
		for i := range out {
			out[i].Val1 = 0
		}
	}
	for i := range out {
		out[i].Emit = 0
	}
	if flags&fEmit != 0 {
		k, n := binary.Uvarint(p)
		if n <= 0 || k == 0 || k > count {
			return dst, fmt.Errorf("%w: bad emit count", ErrCorrupt)
		}
		p = p[n:]
		idx := uint64(0)
		for j := uint64(0); j < k; j++ {
			gap, n := binary.Uvarint(p)
			if n <= 0 {
				return dst, fmt.Errorf("%w: truncated emits", ErrCorrupt)
			}
			p = p[n:]
			if j == 0 {
				idx = gap
			} else {
				if gap == 0 {
					return dst, fmt.Errorf("%w: non-ascending emit index", ErrCorrupt)
				}
				idx += gap
			}
			if idx >= count {
				return dst, fmt.Errorf("%w: emit index %d out of range", ErrCorrupt, idx)
			}
			v, n := binary.Uvarint(p)
			if n <= 0 {
				return dst, fmt.Errorf("%w: truncated emits", ErrCorrupt)
			}
			p = p[n:]
			if v == 0 {
				return dst, fmt.Errorf("%w: zero emit in sparse column", ErrCorrupt)
			}
			out[idx].Emit = unzig(v)
		}
	}
	if flags&fSrcConst != 0 {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return dst, fmt.Errorf("%w: truncated src", ErrCorrupt)
		}
		p = p[n:]
		s := unzig(v)
		if s < -(1<<31) || s >= 1<<31 {
			return dst, fmt.Errorf("%w: src out of range", ErrCorrupt)
		}
		for i := range out {
			out[i].Src = int32(s)
		}
	} else {
		for i := range out {
			v, n := binary.Uvarint(p)
			if n <= 0 {
				return dst, fmt.Errorf("%w: truncated srcs", ErrCorrupt)
			}
			p = p[n:]
			s := unzig(v)
			if s < -(1<<31) || s >= 1<<31 {
				return dst, fmt.Errorf("%w: src out of range", ErrCorrupt)
			}
			out[i].Src = int32(s)
		}
	}
	if len(p) != 0 {
		return dst, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(p))
	}
	return dst, nil
}
