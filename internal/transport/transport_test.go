package transport

import (
	"fmt"
	"testing"
	"time"

	"slb/internal/telemetry"
)

// chase pumps total messages through one link from a goroutine and
// drains them on the test goroutine, verifying order, content, and the
// done signal. Shared by both backends.
func chase(t *testing.T, l *Link, total int) {
	t.Helper()
	const slab = 57
	go func() {
		buf := make([]Msg, slab)
		sent := 0
		for sent < total {
			n := slab
			if total-sent < n {
				n = total - sent
			}
			for i := 0; i < n; i++ {
				key := fmt.Sprintf("key-%d", (sent+i)%33)
				buf[i] = Msg{
					Dig:    digestOf(key),
					Window: int64(sent+i) / 100,
					Weight: int64(sent + i),
					Src:    int32((sent + i) % 7),
					Key:    key,
				}
			}
			if err := l.SendSlab(buf[:n]); err != nil {
				panic(err)
			}
			sent += n
		}
		if err := l.Sender.Close(); err != nil {
			panic(err)
		}
	}()
	recv := make([]Msg, 64)
	got := 0
	deadline := time.Now().Add(20 * time.Second)
	for {
		n, done := l.RecvSlab(recv)
		for i := 0; i < n; i++ {
			m := recv[i]
			key := fmt.Sprintf("key-%d", got%33)
			want := Msg{
				Dig:    digestOf(key),
				Window: int64(got) / 100,
				Weight: int64(got),
				Src:    int32(got % 7),
				Key:    key,
			}
			if m != want {
				t.Fatalf("msg %d: got %+v want %+v", got, m, want)
			}
			got++
		}
		if done {
			break
		}
		if n == 0 && time.Now().After(deadline) {
			t.Fatalf("timed out after %d/%d messages", got, total)
		}
	}
	if got != total {
		t.Fatalf("received %d messages, want %d", got, total)
	}
}

// TestMemoryLink pins the memory backend's FIFO, content, and drain
// semantics through a slab size that wraps the ring repeatedly.
func TestMemoryLink(t *testing.T) {
	tr := NewMemory()
	defer tr.Close()
	l, err := tr.Open("s0>w0", 256)
	if err != nil {
		t.Fatal(err)
	}
	chase(t, l, 20_000)
}

// TestTCPLink runs the same exchange over a loopback TCP connection:
// framing, dictionary coding, coalescing, half-close drain — all of it
// must be invisible to the consumer.
func TestTCPLink(t *testing.T) {
	tr, err := NewTCP(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	l, err := tr.Open("s0>w0", 1024)
	if err != nil {
		t.Fatal(err)
	}
	chase(t, l, 50_000)
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestMemorySteadyStateZeroAllocs is the hard allocation assertion the
// acceptance criteria require: once a memory link is warm, a
// send+receive cycle of a full slab performs zero allocations.
func TestMemorySteadyStateZeroAllocs(t *testing.T) {
	tr := NewMemory()
	defer tr.Close()
	l, err := tr.Open("s0>w0", 1024)
	if err != nil {
		t.Fatal(err)
	}
	slab := make([]Msg, 64)
	for i := range slab {
		slab[i] = Msg{Dig: uint64(i), Key: "warm", Weight: 1}
	}
	recv := make([]Msg, 64)
	cycle := func() {
		if err := l.SendSlab(slab); err != nil {
			t.Fatal(err)
		}
		for drained := 0; drained < len(slab); {
			n, _ := l.RecvSlab(recv)
			drained += n
		}
	}
	cycle() // warm-up
	if allocs := testing.AllocsPerRun(200, cycle); allocs != 0 {
		t.Fatalf("memory transport steady state allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestTCPThroughputFloor pins the acceptance floor: ≥ 100k msgs/s
// through one loopback link in the raw regime (no consumer work).
// Loopback sustains millions/s; the floor just catches catastrophic
// framing or coalescing regressions without flaking on slow CI.
func TestTCPThroughputFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput floor needs wall-clock headroom")
	}
	tr, err := NewTCP(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	l, err := tr.Open("s0>w0", 8192)
	if err != nil {
		t.Fatal(err)
	}
	const total = 400_128 // multiple of the slab size
	slab := make([]Msg, 256)
	for i := range slab {
		key := fmt.Sprintf("key-%d", i%64)
		slab[i] = Msg{Dig: digestOf(key), Key: key, Weight: 1, Window: 3}
	}
	start := time.Now()
	go func() {
		for sent := 0; sent < total; sent += len(slab) {
			if err := l.SendSlab(slab); err != nil {
				panic(err)
			}
		}
		l.Sender.Close()
	}()
	recv := make([]Msg, 512)
	got := 0
	for {
		n, done := l.RecvSlab(recv)
		got += n
		if done {
			break
		}
	}
	elapsed := time.Since(start)
	if got != total {
		t.Fatalf("received %d, want %d", got, total)
	}
	rate := float64(total) / elapsed.Seconds()
	t.Logf("loopback TCP: %d msgs in %v (%.0f msgs/s)", total, elapsed, rate)
	if rate < 100_000 {
		t.Fatalf("loopback TCP sustained %.0f msgs/s, below the 100k floor", rate)
	}
}

// TestTCPTelemetry verifies the per-link counters land in the registry
// with the link label: frames and messages per SendSlab, dictionary
// hits once a key repeats, and both byte directions. Flush is
// asynchronous (the writer stage owns the socket), so the sender is
// closed — which drains the writer — before byte/flush counters are
// read.
func TestTCPTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr, err := NewTCP(reg)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	l, err := tr.Open("w1>r0", 256)
	if err != nil {
		t.Fatal(err)
	}
	slab := []Msg{{Key: "a", Dig: 1, Weight: 2}, {Key: "b", Dig: 2, Weight: 3}}
	for i := 0; i < 2; i++ { // second slab is all dictionary hits
		if err := l.SendSlab(slab); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sender.(*tcpSender).Flush(); err != nil {
		t.Fatal(err)
	}
	recv := make([]Msg, 8)
	for got := 0; got < 2*len(slab); {
		n, _ := l.RecvSlab(recv)
		got += n
	}
	if err := l.Sender.Close(); err != nil {
		t.Fatal(err)
	}
	lab := telemetry.L("link", "w1>r0")
	snap := reg.Snapshot()
	for name, want := range map[string]float64{
		"transport_frames_total":      2,
		"transport_tx_msgs_total":     4,
		"transport_dict_hits_total":   2,
		"transport_dict_resets_total": 0,
	} {
		if v := snap.Value(name, lab); v != want {
			t.Fatalf("%s = %v, want %v", name, v, want)
		}
	}
	if v := snap.Value("transport_flushes_total", lab); v < 1 {
		t.Fatalf("transport_flushes_total = %v, want >= 1", v)
	}
	txBytes := snap.Value("transport_tx_bytes_total", lab)
	if txBytes <= 0 {
		t.Fatalf("transport_tx_bytes_total = %v, want > 0", txBytes)
	}
	if v := snap.Value("transport_rx_bytes_total", lab); v != txBytes {
		t.Fatalf("transport_rx_bytes_total = %v, want %v (all tx bytes received)", v, txBytes)
	}
}

// TestTCPSenderPipelineStress drives the encoder/writer split hard:
// per link, the producer goroutine interleaves SendSlab and Flush while
// the writer goroutine owns the socket and the reader goroutine decodes
// — the race detector (CI runs this package under -race) checks the
// stage handoff, and the drain check proves no slab is lost or
// reordered across buffer rotations and the Close drain.
func TestTCPSenderPipelineStress(t *testing.T) {
	tr, err := NewTCP(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	const links, rounds = 4, 300
	done := make(chan error, links)
	for li := 0; li < links; li++ {
		l, err := tr.Open(fmt.Sprintf("s%d>w0", li), 512)
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			slab := make([]Msg, 64)
			for r := 0; r < rounds; r++ {
				for i := range slab {
					key := fmt.Sprintf("key-%d", (r*len(slab)+i)%997)
					slab[i] = Msg{Dig: digestOf(key), Key: key, Weight: int64(r), Window: int64(r) / 10}
				}
				if err := l.SendSlab(slab); err != nil {
					done <- err
					return
				}
				if r%7 == 0 {
					if err := l.Sender.Flush(); err != nil {
						done <- err
						return
					}
				}
			}
			done <- l.Sender.Close()
		}()
		go func() {
			recv := make([]Msg, 256)
			got := 0
			for {
				n, fin := l.RecvSlab(recv)
				for i := 0; i < n; i++ {
					key := fmt.Sprintf("key-%d", got%997)
					if recv[i].Key != key || recv[i].Dig != digestOf(key) {
						done <- fmt.Errorf("msg %d: key %q dig %d, want %q %d", got, recv[i].Key, recv[i].Dig, key, digestOf(key))
						return
					}
					got++
				}
				if fin {
					break
				}
			}
			if got != rounds*64 {
				done <- fmt.Errorf("drained %d msgs, want %d", got, rounds*64)
				return
			}
			done <- nil
		}()
	}
	for i := 0; i < 2*links; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
}

// benchLink pumps b.N messages through a fresh link of the given
// transport, reporting msgs/s.
func benchLink(b *testing.B, l *Link) {
	slab := make([]Msg, 256)
	for i := range slab {
		key := fmt.Sprintf("key-%d", i%64)
		slab[i] = Msg{Dig: digestOf(key), Key: key, Weight: 1}
	}
	b.ResetTimer()
	go func() {
		for sent := 0; sent < b.N; sent += len(slab) {
			n := len(slab)
			if b.N-sent < n {
				n = b.N - sent
			}
			if err := l.SendSlab(slab[:n]); err != nil {
				panic(err)
			}
		}
		l.Sender.Close()
	}()
	recv := make([]Msg, 512)
	spins := 0
	for {
		n, done := l.RecvSlab(recv)
		if done {
			break
		}
		if n == 0 {
			backoff(&spins)
		} else {
			spins = 0
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/s")
}

// BenchmarkTransportMemory measures the ring-backed backend: the
// number to compare against the direct ring plane.
func BenchmarkTransportMemory(b *testing.B) {
	tr := NewMemory()
	defer tr.Close()
	l, err := tr.Open("bench", 8192)
	if err != nil {
		b.Fatal(err)
	}
	benchLink(b, l)
}

// BenchmarkTransportTCPLoopback measures the wire backend end to end:
// varint framing, dictionary coding, coalescing, kernel loopback, and
// the reader-side decode back into a ring.
func BenchmarkTransportTCPLoopback(b *testing.B) {
	tr, err := NewTCP(nil)
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()
	l, err := tr.Open("bench", 8192)
	if err != nil {
		b.Fatal(err)
	}
	benchLink(b, l)
}
