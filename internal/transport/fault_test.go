package transport

import (
	"fmt"
	"testing"
	"time"

	"slb/internal/telemetry"
)

// faultTuning shrinks the delivery timers so fault tests recover in
// milliseconds instead of the production defaults.
func faultTuning() TCPConfig {
	return TCPConfig{
		ResendTimeout:  20 * time.Millisecond,
		RedialBackoff:  100 * time.Microsecond,
		MaxReconnects:  1 << 16,
		RedialAttempts: 20,
		Seed:           7,
	}
}

// pumpFlushed sends total messages in slabs of slabSize, flushing after
// every slab so each frame is its own buffer write — which makes the
// chaos schedule's write counter line up with frame boundaries.
func pumpFlushed(l *Link, total, slabSize int) error {
	buf := make([]Msg, slabSize)
	sent := 0
	for sent < total {
		n := slabSize
		if total-sent < n {
			n = total - sent
		}
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("key-%d", (sent+i)%33)
			buf[i] = Msg{
				Dig:    digestOf(key),
				Window: int64(sent+i) / 100,
				Weight: int64(sent + i),
				Src:    int32((sent + i) % 7),
				Key:    key,
			}
		}
		if err := l.SendSlab(buf[:n]); err != nil {
			return err
		}
		if err := l.Flush(); err != nil {
			return err
		}
		sent += n
	}
	return l.Sender.Close()
}

// drainVerify drains the link on the calling goroutine and verifies
// order, content and count — bit-equality with the fault-free stream.
func drainVerify(t *testing.T, l *Link, total int) {
	t.Helper()
	recv := make([]Msg, 64)
	got := 0
	deadline := time.Now().Add(30 * time.Second)
	for {
		n, done := l.RecvSlab(recv)
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("key-%d", got%33)
			want := Msg{
				Dig:    digestOf(key),
				Window: int64(got) / 100,
				Weight: int64(got),
				Src:    int32(got % 7),
				Key:    key,
			}
			if recv[i] != want {
				t.Fatalf("msg %d: got %+v want %+v", got, recv[i], want)
			}
			got++
		}
		if done {
			break
		}
		if n == 0 {
			if time.Now().After(deadline) {
				t.Fatalf("timed out after %d/%d messages", got, total)
			}
			// Yield while idle: on small GOMAXPROCS a busy poll starves
			// the reconnect machinery this test is exercising.
			time.Sleep(50 * time.Microsecond)
		}
	}
	if got != total {
		t.Fatalf("received %d messages, want %d", got, total)
	}
	if err := l.Err(); err != nil {
		t.Fatalf("link error after clean run: %v", err)
	}
}

// TestTCPSeverEveryFrameBoundary kills the connection at every frame
// boundary of a small run — run k severs on every k-th buffer write,
// covering the first/middle/last positions and every retransmission
// alignment — and requires the delivered stream to stay bit-equal to
// the fault-free one.
func TestTCPSeverEveryFrameBoundary(t *testing.T) {
	const total, slab = 24 * 57, 57 // 24 frames, one per write
	for k := 2; k <= 16; k++ {
		k := k
		t.Run(fmt.Sprintf("sever@%d", k), func(t *testing.T) {
			tr, err := NewTCPWithConfig(nil, faultTuning())
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Close()
			ch := NewChaos(tr, ChaosConfig{Seed: uint64(k), SeverEvery: k})
			l, err := ch.Open("s0>w0", 256)
			if err != nil {
				t.Fatal(err)
			}
			go func() {
				if err := pumpFlushed(l, total, slab); err != nil {
					panic(err)
				}
			}()
			drainVerify(t, l, total)
			st := ch.Stats()["s0>w0"]
			if st.Severed == 0 {
				t.Fatalf("chaos severed nothing: %+v", st)
			}
		})
	}
}

// TestTCPChaosDropRecovers mixes drops and severs on one link and
// requires bit-equal delivery, a ≥1%-of-writes drop rate, and the
// retransmission telemetry to account for the recovery.
func TestTCPChaosDropRecovers(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr, err := NewTCPWithConfig(reg, faultTuning())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	ch := NewChaos(tr, ChaosConfig{Seed: 42, DropOneIn: 3, SeverEvery: 13})
	l, err := ch.Open("s0>w0", 256)
	if err != nil {
		t.Fatal(err)
	}
	const total, slab = 300 * 19, 19
	go func() {
		if err := pumpFlushed(l, total, slab); err != nil {
			panic(err)
		}
	}()
	drainVerify(t, l, total)
	st := ch.Stats()["s0>w0"]
	if st.Dropped == 0 || st.Severed == 0 {
		t.Fatalf("chaos injected nothing: %+v", st)
	}
	if 100*st.Dropped < st.Writes {
		t.Fatalf("dropped %d of %d writes, want >= 1%%", st.Dropped, st.Writes)
	}
	lab := telemetry.L("link", "s0>w0")
	snap := reg.Snapshot()
	if v := snap.Value("transport_reconnects_total", lab); v < 1 {
		t.Fatalf("transport_reconnects_total = %v, want >= 1", v)
	}
	if v := snap.Value("transport_retransmit_frames_total", lab); v < 1 {
		t.Fatalf("transport_retransmit_frames_total = %v, want >= 1", v)
	}
	if v := snap.Value("transport_retransmit_bytes_total", lab); v < 1 {
		t.Fatalf("transport_retransmit_bytes_total = %v, want >= 1", v)
	}
}

// TestTCPNoSilentLoss pins the failure contract with reconnection
// disabled: the first sever must surface a hard error on the sender
// AND on the link — never a clean done with a short count.
func TestTCPNoSilentLoss(t *testing.T) {
	cfg := faultTuning()
	cfg.MaxReconnects = -1
	tr, err := NewTCPWithConfig(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	ch := NewChaos(tr, ChaosConfig{Seed: 3, SeverEvery: 3})
	l, err := ch.Open("s0>w0", 256)
	if err != nil {
		t.Fatal(err)
	}
	const total, slab = 200 * 19, 19
	sendErr := make(chan error, 1)
	go func() { sendErr <- pumpFlushed(l, total, slab) }()

	recv := make([]Msg, 64)
	got := 0
	deadline := time.Now().Add(30 * time.Second)
	for {
		n, done := l.RecvSlab(recv)
		got += n
		if done {
			break
		}
		if n == 0 {
			if time.Now().After(deadline) {
				t.Fatal("no done signal: link failure did not close the receive ring")
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	if err := <-sendErr; err == nil {
		t.Fatal("sender completed cleanly across a sever with reconnection disabled")
	}
	if l.Err() == nil {
		t.Fatal("link reports no error after unrecoverable sever")
	}
	if tr.Err() == nil {
		t.Fatal("transport aggregate reports no error after unrecoverable sever")
	}
	if got >= total {
		t.Fatalf("received %d/%d messages through a link that severs every 3rd write with reconnection disabled", got, total)
	}
}

// TestTCPReconnectSendStress races concurrent SendSlab/Flush against
// chaos-driven reconnects on several links at once; CI runs this
// package under -race, so the reconnect takeover (writer, ack reader,
// serve replay) is checked for unsynchronized state.
func TestTCPReconnectSendStress(t *testing.T) {
	tr, err := NewTCPWithConfig(nil, faultTuning())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	ch := NewChaos(tr, ChaosConfig{Seed: 11, DropOneIn: 5, SeverEvery: 9})
	const links, rounds = 4, 200
	done := make(chan error, 2*links)
	for li := 0; li < links; li++ {
		l, err := ch.Open(fmt.Sprintf("s%d>w0", li), 512)
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			slab := make([]Msg, 64)
			for r := 0; r < rounds; r++ {
				for i := range slab {
					key := fmt.Sprintf("key-%d", (r*len(slab)+i)%997)
					slab[i] = Msg{Dig: digestOf(key), Key: key, Weight: int64(r), Window: int64(r) / 10}
				}
				if err := l.SendSlab(slab); err != nil {
					done <- err
					return
				}
				if r%3 == 0 {
					if err := l.Flush(); err != nil {
						done <- err
						return
					}
				}
			}
			done <- l.Sender.Close()
		}()
		go func() {
			recv := make([]Msg, 256)
			got := 0
			for {
				n, fin := l.RecvSlab(recv)
				for i := 0; i < n; i++ {
					key := fmt.Sprintf("key-%d", got%997)
					if recv[i].Key != key || recv[i].Dig != digestOf(key) {
						done <- fmt.Errorf("msg %d: key %q dig %d, want %q %d", got, recv[i].Key, recv[i].Dig, key, digestOf(key))
						return
					}
					got++
				}
				if fin {
					break
				}
				if n == 0 {
					time.Sleep(50 * time.Microsecond)
				}
			}
			if got != rounds*64 {
				done <- fmt.Errorf("drained %d msgs, want %d", got, rounds*64)
				return
			}
			done <- nil
		}()
	}
	for i := 0; i < 2*links; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestMemoryChaosHoldback runs the memory backend under the same
// schedule: holdback must delay but never drop or reorder, so the
// standard chase verification passes unchanged.
func TestMemoryChaosHoldback(t *testing.T) {
	ch := NewChaos(NewMemory(), ChaosConfig{Seed: 5, DropOneIn: 4, SeverEvery: 7})
	defer ch.Close()
	l, err := ch.Open("s0>w0", 256)
	if err != nil {
		t.Fatal(err)
	}
	chase(t, l, 20_000)
	st := ch.Stats()["s0>w0"]
	if st.Dropped == 0 || st.Severed == 0 {
		t.Fatalf("chaos injected nothing: %+v", st)
	}
}

// TestTCPPerLinkErrorScoping pins the blast-radius fix: one link dying
// an unrecoverable death surfaces on that link (and the transport
// aggregate) while a sibling link on the same transport keeps passing
// traffic with a nil Err.
func TestTCPPerLinkErrorScoping(t *testing.T) {
	cfg := faultTuning()
	cfg.MaxReconnects = -1 // first sever on the busy link is fatal
	// With reconnection disabled a spurious retransmission timeout is
	// fatal too; a generous RTO keeps scheduler hiccups from tripping
	// it — the sever verdict kills the connection directly, so the bad
	// link's error still surfaces immediately.
	cfg.ResendTimeout = 2 * time.Second
	tr, err := NewTCPWithConfig(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	// Sever on the 50th write: only the chatty link ever gets there.
	ch := NewChaos(tr, ChaosConfig{Seed: 9, SeverEvery: 50})
	bad, err := ch.Open("bad>w0", 256)
	if err != nil {
		t.Fatal(err)
	}
	good, err := ch.Open("good>w0", 256)
	if err != nil {
		t.Fatal(err)
	}

	// Drive the bad link until its sever kills it.
	slab := []Msg{{Key: "x", Dig: 1, Weight: 1}}
	var sendErr error
	for i := 0; i < 5000; i++ {
		if sendErr = bad.SendSlab(slab); sendErr == nil {
			sendErr = bad.Flush()
		}
		if sendErr != nil {
			break
		}
	}
	if sendErr == nil {
		t.Fatal("bad link never failed despite sever with reconnection disabled")
	}
	if bad.Err() == nil {
		t.Fatal("bad link reports no error")
	}
	if tr.Err() == nil {
		t.Fatal("transport aggregate missed the bad link's error")
	}

	// The sibling link is untouched: full chase, nil error.
	chase(t, good, 2000) // 2000 msgs ≈ 36 writes < 50: no sever
	if err := good.Err(); err != nil {
		t.Fatalf("good link poisoned by sibling failure: %v", err)
	}
}

// BenchmarkResendOverhead measures the fault-free cost of sequencing,
// ack tracking and buffer retention on the loopback link — the number
// the ≤5% acceptance bound applies to (vs the pre-resend baseline) —
// and how much a deliberately tiny resend window costs on top.
func BenchmarkResendOverhead(b *testing.B) {
	for _, tc := range []struct {
		name string
		cfg  TCPConfig
	}{
		{"default", TCPConfig{}},
		{"retained4", TCPConfig{RetainedBufs: 4}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			tr, err := NewTCPWithConfig(nil, tc.cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer tr.Close()
			l, err := tr.Open("bench", 8192)
			if err != nil {
				b.Fatal(err)
			}
			benchLink(b, l)
		})
	}
}
