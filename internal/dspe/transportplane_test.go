package dspe

import (
	"fmt"
	"testing"

	"slb/internal/transport"
	"slb/internal/workload"
)

// TestTransportPlaneParity pins the transport tentpole's correctness
// contract: both transport backends (memory links and loopback TCP)
// must produce bit-equal finals AND bit-equal replication factors to
// the direct channel dataplane. Replication is compared with a single
// source, where routing — and therefore the (window, key, worker)
// triples — is deterministic.
func TestTransportPlaneParity(t *testing.T) {
	for _, algo := range []string{"KG", "W-C"} {
		for _, shards := range []int{1, 3} {
			t.Run(fmt.Sprintf("%s/shards=%d", algo, shards), func(t *testing.T) {
				base := Config{
					Workers:   8,
					Sources:   1,
					Algorithm: algo,
					AggWindow: 500,
					AggShards: shards,
					Messages:  20_000,
				}

				direct := base
				direct.Dataplane = DataplaneChannel
				dFinals, dRes := collectFinals(t, direct, workload.NewZipf(1.2, 300, 20_000, 7))

				for _, tp := range []struct {
					name string
					sel  Transport
				}{{"memory", TransportMemory}, {"tcp", TransportTCP}} {
					cfg := base
					cfg.Transport = tp.sel
					finals, res := collectFinals(t, cfg, workload.NewZipf(1.2, 300, 20_000, 7))
					if len(finals) != len(dFinals) {
						t.Fatalf("%s: final count differs: direct %d, transport %d", tp.name, len(dFinals), len(finals))
					}
					for id, want := range dFinals {
						if got, ok := finals[id]; !ok || got != want {
							t.Fatalf("%s: final %s: direct %v, transport %v (present=%v)", tp.name, id, want, got, ok)
						}
					}
					if res.AggReplication != dRes.AggReplication {
						t.Errorf("%s: replication differs: direct %v, transport %v", tp.name, dRes.AggReplication, res.AggReplication)
					}
					if res.Completed != 20_000 || res.AggTotal != 20_000 {
						t.Errorf("%s: completed/total: %d/%d, want 20000/20000", tp.name, res.Completed, res.AggTotal)
					}
					// No combiner tree on the transport plane: reducers merge
					// exactly what the bolts flushed, like the channel plane.
					if res.Agg.Partials != res.AggBoltPartials {
						t.Errorf("%s: reducers merged %d partials, bolts flushed %d (must be equal)",
							tp.name, res.Agg.Partials, res.AggBoltPartials)
					}
				}
			})
		}
	}
}

// TestTransportPlaneMultiSource relaxes to what stays deterministic
// under concurrent spouts — the finals — and checks them bit-equal
// between the direct plane and the TCP transport.
func TestTransportPlaneMultiSource(t *testing.T) {
	base := Config{
		Workers:   10,
		Sources:   3,
		Algorithm: "W-C",
		AggWindow: 400,
		AggShards: 2,
		Messages:  18_000,
	}
	direct := base
	direct.Dataplane = DataplaneChannel
	dFinals, dRes := collectFinals(t, direct, workload.NewZipf(1.4, 200, 18_000, 11))

	cfg := base
	cfg.Transport = TransportTCP
	finals, res := collectFinals(t, cfg, workload.NewZipf(1.4, 200, 18_000, 11))

	if len(finals) != len(dFinals) {
		t.Fatalf("final count differs: direct %d, tcp %d", len(dFinals), len(finals))
	}
	for id, want := range dFinals {
		if got, ok := finals[id]; !ok || got != want {
			t.Fatalf("final %s: direct %v, tcp %v (present=%v)", id, want, got, ok)
		}
	}
	if dRes.AggTotal != 18_000 || res.AggTotal != 18_000 {
		t.Errorf("totals: direct %d, tcp %d, want 18000", dRes.AggTotal, res.AggTotal)
	}
}

// TestTransportPlaneNoAgg sanity-checks the plain (no aggregation)
// topology over both transport backends: every message is processed
// exactly once.
func TestTransportPlaneNoAgg(t *testing.T) {
	for _, tp := range []struct {
		name string
		sel  Transport
	}{{"memory", TransportMemory}, {"tcp", TransportTCP}} {
		t.Run(tp.name, func(t *testing.T) {
			res, err := Run(workload.NewZipf(1.1, 500, 15_000, 5), Config{
				Workers:   6,
				Sources:   3,
				Algorithm: "PKG",
				Messages:  15_000,
				Transport: tp.sel,
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.Completed != 15_000 {
				t.Fatalf("Completed = %d, want 15000", res.Completed)
			}
			var sum int64
			for _, l := range res.Loads {
				sum += l
			}
			if sum != 15_000 {
				t.Fatalf("Loads sum = %d, want 15000", sum)
			}
		})
	}
}

// TestTransportPlaneFaultParity is the tentpole's exactness pin: a
// topology run whose transport suffers deterministic chaos — at least
// 1% of sender-side buffer writes dropped and every data link severed
// at least once — must produce finals and replication factors
// bit-equal to the fault-free direct plane. Both transport backends
// are exercised; the single-source case also compares replication
// (deterministic routing), the multi-source case compares finals.
func TestTransportPlaneFaultParity(t *testing.T) {
	for _, tc := range []struct {
		name    string
		sources int
	}{{"single-source", 1}, {"multi-source", 3}} {
		t.Run(tc.name, func(t *testing.T) {
			base := Config{
				Workers:   6,
				Sources:   tc.sources,
				Algorithm: "W-C",
				AggWindow: 400,
				AggShards: 2,
				Messages:  12_000,
			}
			direct := base
			direct.Dataplane = DataplaneChannel
			dFinals, dRes := collectFinals(t, direct, workload.NewZipf(1.2, 250, 12_000, 7))

			for _, tp := range []struct {
				name string
				sel  Transport
			}{{"memory", TransportMemory}, {"tcp", TransportTCP}} {
				t.Run(tp.name, func(t *testing.T) {
					var faults map[string]transport.ChaosLinkStats
					cfg := base
					cfg.Transport = tp.sel
					// SeverEvery=2 severs on every second buffer write; even
					// the quietest link makes two (its final flush and its
					// FIN), so every link is guaranteed a sever.
					cfg.Chaos = &transport.ChaosConfig{Seed: 23, DropOneIn: 4, SeverEvery: 2}
					cfg.OnFaultStats = func(st map[string]transport.ChaosLinkStats) { faults = st }
					finals, res := collectFinals(t, cfg, workload.NewZipf(1.2, 250, 12_000, 7))

					if len(finals) != len(dFinals) {
						t.Fatalf("final count differs: fault-free %d, chaos %d", len(dFinals), len(finals))
					}
					for id, want := range dFinals {
						if got, ok := finals[id]; !ok || got != want {
							t.Fatalf("final %s: fault-free %v, chaos %v (present=%v)", id, want, got, ok)
						}
					}
					if tc.sources == 1 && res.AggReplication != dRes.AggReplication {
						t.Errorf("replication differs: fault-free %v, chaos %v", dRes.AggReplication, res.AggReplication)
					}
					if res.Completed != 12_000 || res.AggTotal != 12_000 {
						t.Errorf("completed/total: %d/%d, want 12000/12000", res.Completed, res.AggTotal)
					}

					// The run must actually have suffered the schedule: every
					// data link severed at least once, and >= 1% of judged
					// writes dropped overall.
					var writes, dropped int64
					for link, st := range faults {
						writes += st.Writes
						dropped += st.Dropped
						if st.Severed == 0 {
							t.Errorf("link %s was never severed (writes=%d)", link, st.Writes)
						}
					}
					wantLinks := tc.sources*base.Workers + base.Workers*base.AggShards
					if len(faults) != wantLinks {
						t.Errorf("fault ledger covers %d links, want %d", len(faults), wantLinks)
					}
					if dropped*100 < writes {
						t.Errorf("dropped %d of %d writes, want >= 1%%", dropped, writes)
					}
				})
			}
		})
	}
}
