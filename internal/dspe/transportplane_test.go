package dspe

import (
	"fmt"
	"testing"

	"slb/internal/workload"
)

// TestTransportPlaneParity pins the transport tentpole's correctness
// contract: both transport backends (memory links and loopback TCP)
// must produce bit-equal finals AND bit-equal replication factors to
// the direct channel dataplane. Replication is compared with a single
// source, where routing — and therefore the (window, key, worker)
// triples — is deterministic.
func TestTransportPlaneParity(t *testing.T) {
	for _, algo := range []string{"KG", "W-C"} {
		for _, shards := range []int{1, 3} {
			t.Run(fmt.Sprintf("%s/shards=%d", algo, shards), func(t *testing.T) {
				base := Config{
					Workers:   8,
					Sources:   1,
					Algorithm: algo,
					AggWindow: 500,
					AggShards: shards,
					Messages:  20_000,
				}

				direct := base
				direct.Dataplane = DataplaneChannel
				dFinals, dRes := collectFinals(t, direct, workload.NewZipf(1.2, 300, 20_000, 7))

				for _, tp := range []struct {
					name string
					sel  Transport
				}{{"memory", TransportMemory}, {"tcp", TransportTCP}} {
					cfg := base
					cfg.Transport = tp.sel
					finals, res := collectFinals(t, cfg, workload.NewZipf(1.2, 300, 20_000, 7))
					if len(finals) != len(dFinals) {
						t.Fatalf("%s: final count differs: direct %d, transport %d", tp.name, len(dFinals), len(finals))
					}
					for id, want := range dFinals {
						if got, ok := finals[id]; !ok || got != want {
							t.Fatalf("%s: final %s: direct %v, transport %v (present=%v)", tp.name, id, want, got, ok)
						}
					}
					if res.AggReplication != dRes.AggReplication {
						t.Errorf("%s: replication differs: direct %v, transport %v", tp.name, dRes.AggReplication, res.AggReplication)
					}
					if res.Completed != 20_000 || res.AggTotal != 20_000 {
						t.Errorf("%s: completed/total: %d/%d, want 20000/20000", tp.name, res.Completed, res.AggTotal)
					}
					// No combiner tree on the transport plane: reducers merge
					// exactly what the bolts flushed, like the channel plane.
					if res.Agg.Partials != res.AggBoltPartials {
						t.Errorf("%s: reducers merged %d partials, bolts flushed %d (must be equal)",
							tp.name, res.Agg.Partials, res.AggBoltPartials)
					}
				}
			})
		}
	}
}

// TestTransportPlaneMultiSource relaxes to what stays deterministic
// under concurrent spouts — the finals — and checks them bit-equal
// between the direct plane and the TCP transport.
func TestTransportPlaneMultiSource(t *testing.T) {
	base := Config{
		Workers:   10,
		Sources:   3,
		Algorithm: "W-C",
		AggWindow: 400,
		AggShards: 2,
		Messages:  18_000,
	}
	direct := base
	direct.Dataplane = DataplaneChannel
	dFinals, dRes := collectFinals(t, direct, workload.NewZipf(1.4, 200, 18_000, 11))

	cfg := base
	cfg.Transport = TransportTCP
	finals, res := collectFinals(t, cfg, workload.NewZipf(1.4, 200, 18_000, 11))

	if len(finals) != len(dFinals) {
		t.Fatalf("final count differs: direct %d, tcp %d", len(dFinals), len(finals))
	}
	for id, want := range dFinals {
		if got, ok := finals[id]; !ok || got != want {
			t.Fatalf("final %s: direct %v, tcp %v (present=%v)", id, want, got, ok)
		}
	}
	if dRes.AggTotal != 18_000 || res.AggTotal != 18_000 {
		t.Errorf("totals: direct %d, tcp %d, want 18000", dRes.AggTotal, res.AggTotal)
	}
}

// TestTransportPlaneNoAgg sanity-checks the plain (no aggregation)
// topology over both transport backends: every message is processed
// exactly once.
func TestTransportPlaneNoAgg(t *testing.T) {
	for _, tp := range []struct {
		name string
		sel  Transport
	}{{"memory", TransportMemory}, {"tcp", TransportTCP}} {
		t.Run(tp.name, func(t *testing.T) {
			res, err := Run(workload.NewZipf(1.1, 500, 15_000, 5), Config{
				Workers:   6,
				Sources:   3,
				Algorithm: "PKG",
				Messages:  15_000,
				Transport: tp.sel,
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.Completed != 15_000 {
				t.Fatalf("Completed = %d, want 15000", res.Completed)
			}
			var sum int64
			for _, l := range res.Loads {
				sum += l
			}
			if sum != 15_000 {
				t.Fatalf("Loads sum = %d, want 15000", sum)
			}
		})
	}
}
