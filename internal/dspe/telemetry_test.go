package dspe

import (
	"testing"
	"time"

	"slb/internal/telemetry"
)

// sumSeries totals every series of the snapshot with the given name
// (across worker/spout/shard labels), returning the sum and how many
// series matched.
func sumSeries(snap telemetry.Snapshot, name string) (total float64, series int) {
	for _, m := range snap.Metrics {
		if m.Name == name {
			total += m.Value
			series++
		}
	}
	return total, series
}

func telemetryCfg(algo string, plane Dataplane) Config {
	cfg := baseCfg(algo, 4, 2)
	cfg.ServiceTime = 0
	cfg.Dataplane = plane
	cfg.AggWindow = 256
	cfg.AggShards = 2
	cfg.Telemetry = telemetry.NewRegistry()
	return cfg
}

// TestTelemetryBothPlanes runs the aggregating topology on each
// dataplane with a registry attached and checks every layer fed it:
// routing, data plane, bolts, and the sharded reduce stage.
func TestTelemetryBothPlanes(t *testing.T) {
	const msgs = 6000
	for _, plane := range []Dataplane{DataplaneChannel, DataplaneRing} {
		name := planeName(plane)
		t.Run(name, func(t *testing.T) {
			cfg := telemetryCfg("W-C", plane)
			res, err := Run(zipfGen(1.2, 300, msgs), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Completed != msgs {
				t.Fatalf("completed %d, want %d", res.Completed, msgs)
			}
			snap := cfg.Telemetry.Snapshot()

			// Routing: every message routed exactly once, across spouts.
			if v, n := sumSeries(snap, "route_msgs_total"); v != msgs || n != cfg.Sources {
				t.Fatalf("route_msgs_total = %v over %d series, want %d over %d", v, n, msgs, cfg.Sources)
			}
			if v, _ := sumSeries(snap, "route_ns_total"); v <= 0 {
				t.Fatal("route_ns_total not populated")
			}
			// Bolts: processed counts must agree with the result.
			if v, n := sumSeries(snap, "bolt_msgs_total"); int64(v) != res.Completed || n != cfg.Workers {
				t.Fatalf("bolt_msgs_total = %v over %d series, want %d over %d", v, n, res.Completed, cfg.Workers)
			}
			// Queue-depth gauges registered per worker (0 after drain).
			if _, n := sumSeries(snap, "queue_depth"); n != cfg.Workers {
				t.Fatalf("queue_depth series = %d, want %d", n, cfg.Workers)
			}
			// Aggregation: bolts flushed what the result says they did, and
			// the reducer-side counters expose the pre-merge ratio.
			if v, _ := sumSeries(snap, "bolt_partials_total"); int64(v) != res.AggBoltPartials {
				t.Fatalf("bolt_partials_total = %v, result has %d", v, res.AggBoltPartials)
			}
			reduced, n := sumSeries(snap, "reduce_partials_total")
			if n != cfg.AggShards {
				t.Fatalf("reduce_partials_total series = %d, want %d", n, cfg.AggShards)
			}
			if int64(reduced) != res.Agg.Partials {
				t.Fatalf("reduce_partials_total = %v, result merged %d", reduced, res.Agg.Partials)
			}
			if plane == DataplaneRing && reduced > float64(res.AggBoltPartials) {
				t.Fatalf("combiner tree cannot amplify: reduced %v > flushed %d", reduced, res.AggBoltPartials)
			}
			if v, n := sumSeries(snap, "reduce_busy_ns_total"); v <= 0 || n != cfg.AggShards {
				t.Fatalf("reduce_busy_ns_total = %v over %d series", v, n)
			}
			// Occupancy gauges drain to zero after the run completes.
			for _, gauge := range []string{"reduce_open_windows", "reduce_live_entries", "reduce_live_replicas"} {
				v, n := sumSeries(snap, gauge)
				if n != cfg.AggShards {
					t.Fatalf("%s series = %d, want %d", gauge, n, cfg.AggShards)
				}
				if v != 0 {
					t.Fatalf("%s = %v after drain, want 0", gauge, v)
				}
			}
		})
	}
}

// TestTelemetryOffAddsNothing pins the nil-registry contract: no
// telemetry field means every hook is a nil-receiver no-op and results
// are unchanged.
func TestTelemetryOffAddsNothing(t *testing.T) {
	cfg := telemetryCfg("D-C", DataplaneRing)
	cfg.Telemetry = nil
	res, err := Run(zipfGen(1.2, 300, 2000), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2000 || res.AggTotal != 2000 {
		t.Fatalf("run degraded without telemetry: %+v", res)
	}
}

// TestTelemetrySnapshotDuringRun snapshots concurrently with a live
// run — the registry hot path and the gauge funcs must tolerate being
// read mid-flight (the soak harness does exactly this).
func TestTelemetrySnapshotDuringRun(t *testing.T) {
	cfg := telemetryCfg("W-C", DataplaneRing)
	cfg.ServiceTime = 50 * time.Microsecond
	stop := make(chan struct{})
	snapped := make(chan struct{})
	go func() {
		defer close(snapped)
		for {
			select {
			case <-stop:
				return
			default:
				cfg.Telemetry.Snapshot()
			}
		}
	}()
	if _, err := Run(zipfGen(1.2, 300, 4000), cfg); err != nil {
		t.Fatal(err)
	}
	close(stop)
	<-snapped
	snap := cfg.Telemetry.Snapshot()
	if v, _ := sumSeries(snap, "route_msgs_total"); v != 4000 {
		t.Fatalf("route_msgs_total = %v, want 4000", v)
	}
}
