package dspe

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"slb/internal/core"
)

func pipeCfg() PipelineConfig {
	return PipelineConfig{Core: core.Config{Seed: 5}, QueueLen: 32}
}

func TestPipelineValidation(t *testing.T) {
	gen := zipfGen(1.0, 50, 100)
	if _, err := NewPipeline(gen, 1).Run(pipeCfg()); err == nil {
		t.Error("empty pipeline accepted")
	}
	p := NewPipeline(gen, 1).AddStage("x", 2, "BOGUS", 0, func(string, func(string)) {})
	if _, err := p.Run(pipeCfg()); err == nil {
		t.Error("unknown grouping accepted")
	}
	for _, f := range []func(){
		func() { NewPipeline(gen, 0) },
		func() { NewPipeline(gen, 1).AddStage("x", 0, "SG", 0, func(string, func(string)) {}) },
		func() { NewPipeline(gen, 1).AddStage("x", 1, "SG", 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPipelineSingleStageConservation(t *testing.T) {
	gen := zipfGen(1.2, 100, 5000)
	var processed atomic.Int64
	p := NewPipeline(gen, 3).AddStage("count", 4, "PKG", 0,
		func(key string, emit func(string)) { processed.Add(1) })
	res, err := p.Run(pipeCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Emitted != 5000 || processed.Load() != 5000 {
		t.Fatalf("emitted %d, processed %d", res.Emitted, processed.Load())
	}
	if len(res.Stages) != 1 || res.Stages[0].Processed != 5000 {
		t.Fatalf("stage results %+v", res.Stages)
	}
}

func TestPipelineTwoStagesFanOut(t *testing.T) {
	// Stage 1 splits each tuple into 3 downstream tuples; stage 2 counts.
	gen := zipfGen(1.5, 200, 2000)
	var counted atomic.Int64
	p := NewPipeline(gen, 2).
		AddStage("split", 3, "SG", 0, func(key string, emit func(string)) {
			for i := 0; i < 3; i++ {
				emit(key + "-" + string(rune('a'+i)))
			}
		}).
		AddStage("count", 4, "D-C", 0, func(key string, emit func(string)) {
			counted.Add(1)
		})
	res, err := p.Run(pipeCfg())
	if err != nil {
		t.Fatal(err)
	}
	if counted.Load() != 3*2000 {
		t.Fatalf("counted %d, want 6000", counted.Load())
	}
	if res.Stages[1].Processed != 6000 {
		t.Fatalf("stage 2 processed %d", res.Stages[1].Processed)
	}
	if res.P50 <= 0 {
		t.Fatalf("p50 = %v", res.P50)
	}
}

func TestPipelineKGStageDeterministic(t *testing.T) {
	// The StageFunc API deliberately hides executor identity, so check
	// the KG invariant through the public loads: two identical runs must
	// produce an identical per-executor split (hashing is seed-fixed and
	// KG is load-independent).
	run := func() []int64 {
		gen := zipfGen(1.0, 30, 3000)
		q := NewPipeline(gen, 2).
			AddStage("route", 3, "SG", 0, func(key string, emit func(string)) { emit(key) }).
			AddStage("stateful", 5, "KG", 0, func(key string, emit func(string)) {})
		res, err := q.Run(pipeCfg())
		if err != nil {
			t.Fatal(err)
		}
		return res.Stages[1].Loads
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("KG stage loads not deterministic: %v vs %v", a, b)
		}
	}
}

func TestPipelineImbalanceOrdering(t *testing.T) {
	// A skewed stream through KG vs W-C on the final edge: W-C must be
	// far better balanced.
	imbWith := func(grouping string) float64 {
		gen := zipfGen(2.0, 500, 20000)
		p := NewPipeline(gen, 2).
			AddStage("pass", 2, "SG", 0, func(key string, emit func(string)) { emit(key) }).
			AddStage("agg", 10, grouping, 0, func(string, func(string)) {})
		res, err := p.Run(pipeCfg())
		if err != nil {
			t.Fatal(err)
		}
		return res.Stages[1].Imbalance
	}
	kg, wc := imbWith("KG"), imbWith("W-C")
	if wc > kg/5 {
		t.Fatalf("pipeline W-C (%f) should beat KG (%f)", wc, kg)
	}
}

func TestPipelineServiceTimeShowsInLatency(t *testing.T) {
	gen := zipfGen(1.0, 20, 200)
	p := NewPipeline(gen, 1).
		AddStage("slow", 2, "SG", 2*time.Millisecond, func(string, func(string)) {})
	res, err := p.Run(pipeCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.P50 < 2*time.Millisecond {
		t.Fatalf("p50 %v below stage service time", res.P50)
	}
}

func TestPipelineMessagesCap(t *testing.T) {
	gen := zipfGen(1.0, 20, 100000)
	cfg := pipeCfg()
	cfg.Messages = 777
	p := NewPipeline(gen, 2).AddStage("leaf", 2, "SG", 0, func(string, func(string)) {})
	res, err := p.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Emitted != 777 {
		t.Fatalf("emitted %d", res.Emitted)
	}
}

func TestPipelineStageNames(t *testing.T) {
	gen := zipfGen(1.0, 20, 100)
	p := NewPipeline(gen, 1).
		AddStage("alpha", 1, "SG", 0, func(k string, e func(string)) { e(k) }).
		AddStage("beta", 1, "SG", 0, func(string, func(string)) {})
	res, err := p.Run(pipeCfg())
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(res.Stages))
	for i, s := range res.Stages {
		names[i] = s.Name
	}
	if strings.Join(names, ",") != "alpha,beta" {
		t.Fatalf("stage names %v", names)
	}
}
