package dspe

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"slb/internal/core"
)

func pipeCfg() PipelineConfig {
	return PipelineConfig{Core: core.Config{Seed: 5}, QueueLen: 32}
}

func TestPipelineValidation(t *testing.T) {
	gen := zipfGen(1.0, 50, 100)
	if _, err := NewPipeline(gen, 1).Run(pipeCfg()); err == nil {
		t.Error("empty pipeline accepted")
	}
	p := NewPipeline(gen, 1).AddStage("x", 2, "BOGUS", 0, func(string, func(string)) {})
	if _, err := p.Run(pipeCfg()); err == nil {
		t.Error("unknown grouping accepted")
	}
	for _, f := range []func(){
		func() { NewPipeline(gen, 0) },
		func() { NewPipeline(gen, 1).AddStage("x", 0, "SG", 0, func(string, func(string)) {}) },
		func() { NewPipeline(gen, 1).AddStage("x", 1, "SG", 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPipelineSingleStageConservation(t *testing.T) {
	gen := zipfGen(1.2, 100, 5000)
	var processed atomic.Int64
	p := NewPipeline(gen, 3).AddStage("count", 4, "PKG", 0,
		func(key string, emit func(string)) { processed.Add(1) })
	res, err := p.Run(pipeCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Emitted != 5000 || processed.Load() != 5000 {
		t.Fatalf("emitted %d, processed %d", res.Emitted, processed.Load())
	}
	if len(res.Stages) != 1 || res.Stages[0].Processed != 5000 {
		t.Fatalf("stage results %+v", res.Stages)
	}
}

func TestPipelineTwoStagesFanOut(t *testing.T) {
	// Stage 1 splits each tuple into 3 downstream tuples; stage 2 counts.
	gen := zipfGen(1.5, 200, 2000)
	var counted atomic.Int64
	p := NewPipeline(gen, 2).
		AddStage("split", 3, "SG", 0, func(key string, emit func(string)) {
			for i := 0; i < 3; i++ {
				emit(key + "-" + string(rune('a'+i)))
			}
		}).
		AddStage("count", 4, "D-C", 0, func(key string, emit func(string)) {
			counted.Add(1)
		})
	res, err := p.Run(pipeCfg())
	if err != nil {
		t.Fatal(err)
	}
	if counted.Load() != 3*2000 {
		t.Fatalf("counted %d, want 6000", counted.Load())
	}
	if res.Stages[1].Processed != 6000 {
		t.Fatalf("stage 2 processed %d", res.Stages[1].Processed)
	}
	if res.P50 <= 0 {
		t.Fatalf("p50 = %v", res.P50)
	}
}

func TestPipelineKGStageDeterministic(t *testing.T) {
	// The StageFunc API deliberately hides executor identity, so check
	// the KG invariant through the public loads: two identical runs must
	// produce an identical per-executor split (hashing is seed-fixed and
	// KG is load-independent).
	run := func() []int64 {
		gen := zipfGen(1.0, 30, 3000)
		q := NewPipeline(gen, 2).
			AddStage("route", 3, "SG", 0, func(key string, emit func(string)) { emit(key) }).
			AddStage("stateful", 5, "KG", 0, func(key string, emit func(string)) {})
		res, err := q.Run(pipeCfg())
		if err != nil {
			t.Fatal(err)
		}
		return res.Stages[1].Loads
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("KG stage loads not deterministic: %v vs %v", a, b)
		}
	}
}

func TestPipelineImbalanceOrdering(t *testing.T) {
	// A skewed stream through KG vs W-C on the final edge: W-C must be
	// far better balanced.
	imbWith := func(grouping string) float64 {
		gen := zipfGen(2.0, 500, 20000)
		p := NewPipeline(gen, 2).
			AddStage("pass", 2, "SG", 0, func(key string, emit func(string)) { emit(key) }).
			AddStage("agg", 10, grouping, 0, func(string, func(string)) {})
		res, err := p.Run(pipeCfg())
		if err != nil {
			t.Fatal(err)
		}
		return res.Stages[1].Imbalance
	}
	kg, wc := imbWith("KG"), imbWith("W-C")
	if wc > kg/5 {
		t.Fatalf("pipeline W-C (%f) should beat KG (%f)", wc, kg)
	}
}

func TestPipelineServiceTimeShowsInLatency(t *testing.T) {
	gen := zipfGen(1.0, 20, 200)
	p := NewPipeline(gen, 1).
		AddStage("slow", 2, "SG", 2*time.Millisecond, func(string, func(string)) {})
	res, err := p.Run(pipeCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.P50 < 2*time.Millisecond {
		t.Fatalf("p50 %v below stage service time", res.P50)
	}
}

func TestPipelineMessagesCap(t *testing.T) {
	gen := zipfGen(1.0, 20, 100000)
	cfg := pipeCfg()
	cfg.Messages = 777
	p := NewPipeline(gen, 2).AddStage("leaf", 2, "SG", 0, func(string, func(string)) {})
	res, err := p.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Emitted != 777 {
		t.Fatalf("emitted %d", res.Emitted)
	}
}

func TestPipelineStageNames(t *testing.T) {
	gen := zipfGen(1.0, 20, 100)
	p := NewPipeline(gen, 1).
		AddStage("alpha", 1, "SG", 0, func(k string, e func(string)) { e(k) }).
		AddStage("beta", 1, "SG", 0, func(string, func(string)) {})
	res, err := p.Run(pipeCfg())
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(res.Stages))
	for i, s := range res.Stages {
		names[i] = s.Name
	}
	if strings.Join(names, ",") != "alpha,beta" {
		t.Fatalf("stage names %v", names)
	}
}

// TestPipelineWindowedAggregateExact runs the canonical two-phase
// topology — D-C partial aggregation, KG reduce — and checks that the
// merged finals reproduce exact per-(window, key) counts.
func TestPipelineWindowedAggregateExact(t *testing.T) {
	const (
		m          = 10_000
		windowSize = 1_000
	)
	gen := zipfGen(1.5, 200, m)
	truth := aggGroundTruth(gen, windowSize)

	var mu sync.Mutex
	got := make(map[int64]map[string]int64)
	p := NewPipeline(gen, 2).
		AddWindowedAggregate("partial", 4, "D-C", windowSize).
		AddWeightedStage("reduce", 2, "KG", 0, func(key string, window, count int64, _ func(string, int64)) {
			mu.Lock()
			mm := got[window]
			if mm == nil {
				mm = make(map[string]int64)
				got[window] = mm
			}
			mm[key] += count
			mu.Unlock()
		})
	res, err := p.Run(pipeCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Emitted != m {
		t.Fatalf("emitted %d of %d", res.Emitted, m)
	}
	for w, wantKeys := range truth {
		for k, want := range wantKeys {
			if got[w][k] != want {
				t.Fatalf("window %d key %q: got %d, want %d", w, k, got[w][k], want)
			}
		}
		if len(got[w]) != len(wantKeys) {
			t.Fatalf("window %d: got %d keys, want %d", w, len(got[w]), len(wantKeys))
		}
	}
	if len(got) != len(truth) {
		t.Fatalf("got %d windows, want %d", len(got), len(truth))
	}

	agg := res.Stages[0]
	if agg.AggWindows < m/windowSize {
		t.Fatalf("aggregate stage closed %d windows, want ≥ %d", agg.AggWindows, m/windowSize)
	}
	// The reduce stage processed exactly the partial tuples the
	// aggregate stage emitted.
	if res.Stages[1].Processed != agg.AggPartials {
		t.Fatalf("reduce processed %d, aggregate emitted %d", res.Stages[1].Processed, agg.AggPartials)
	}
	// Replication lower bound: at least one partial per (window, key).
	var distinct int64
	for _, keys := range truth {
		distinct += int64(len(keys))
	}
	if agg.AggPartials < distinct {
		t.Fatalf("partials %d below distinct (window,key) count %d", agg.AggPartials, distinct)
	}
	if res.Stages[1].AggPartials != 0 {
		t.Fatalf("non-aggregate stage reports %d partials", res.Stages[1].AggPartials)
	}
}

// TestPipelineLeafAggregate: a windowed aggregate as the leaf stage
// still counts its partials (they are discarded, not sent).
func TestPipelineLeafAggregate(t *testing.T) {
	const m = 5_000
	gen := zipfGen(1.2, 100, m)
	p := NewPipeline(gen, 2).AddWindowedAggregate("agg", 3, "PKG", 500)
	res, err := p.Run(pipeCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stages[0].Processed != m {
		t.Fatalf("processed %d of %d", res.Stages[0].Processed, m)
	}
	if res.Stages[0].AggPartials == 0 || res.Stages[0].AggWindows < m/500 {
		t.Fatalf("agg stats missing: %+v", res.Stages[0])
	}
}

// TestPipelinePlainStagePreservesWeight: a plain StageFunc stage
// between the aggregate and reduce stages relabels partial tuples
// without collapsing their counts.
func TestPipelinePlainStagePreservesWeight(t *testing.T) {
	const m = 4_000
	gen := zipfGen(1.0, 50, m)
	var got int64
	p := NewPipeline(gen, 2).
		AddWindowedAggregate("partial", 3, "PKG", 500).
		AddStage("relabel", 2, "SG", 0, func(key string, emit func(string)) {
			emit("x:" + key)
		}).
		AddWeightedStage("sum", 1, "KG", 0, func(_ string, _, count int64, _ func(string, int64)) {
			got += count
		})
	if _, err := p.Run(pipeCfg()); err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("summed weight %d, want %d (plain stage must pass weights through)", got, m)
	}
}
