package dspe

// ringplane.go is the lock-free dataplane behind Config.Dataplane ==
// DataplaneRing. The topology is the same as the channel plane's —
// spouts route a keyed stream into bolts, bolts flush windowed partials
// toward R reducer shards — but every edge is a single-producer/
// single-consumer ring buffer (internal/ring) instead of a buffered
// channel, and the shard hop runs through a worker-side combiner tree:
//
//	spout s ──ring──▶ bolt w ──ring──▶ [combiner node] ──ring──▶ shard root r
//
// What changes, and why it is faster:
//
//   - Tuples live IN the rings. A spout writes each tuple into a slot
//     of its (spout, bolt) ring and the bolt reads it there; no slab is
//     ever allocated, so the steady state allocates nothing on the
//     whole tuple path (the channel plane allocates one slab per
//     (batch, destination) plus one per flush and per tick).
//   - Acks are atomic. The channel plane pays two channel operations
//     per message on the in-flight window (acquire at the spout,
//     release at the bolt); here each source has one atomic in-flight
//     counter that the spout bumps per slab and bolts decrement per
//     consumed batch.
//   - Partials are pre-merged host-side. Bolts push their flushed
//     partials into a per-shard combiner tree (fan-in combinerFanIn);
//     interior nodes fold same-key partials opportunistically and the
//     per-shard root buffers to window completeness, so the shard's
//     driver receives exactly one combined partial per (window, key)
//     instead of one per (window, key, worker) — the reduce stage's
//     merge traffic drops from the replication factor to 1.
//
// Everything observable is pinned to the channel plane: window ids,
// completeness thresholds (ObserveEmits before any tuple of the slab is
// visible), hash-once digest carry, and exact replication accounting
// (bolts observe each (window, key, worker) triple via ObserveReplica
// before its partial enters the tree; combined partials carry
// CombinedWorker and are not re-counted). Finals and replication
// factors are bit-equal across dataplanes.
//
// Deadlock freedom: the edge graph is acyclic and every consumer drains
// unconditionally (bolts never wait on downstream to consume upstream;
// roots never block at all), so a blocked producer always has a live
// consumer making space.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"slb/internal/aggregation"
	"slb/internal/core"
	"slb/internal/metrics"
	"slb/internal/ring"
	"slb/internal/stream"
)

// combinerFanIn is the arity of the worker-side combiner tree: bolts
// are grouped combinerFanIn to an interior node. With Workers ≤
// combinerFanIn the tree is just the per-shard root.
const combinerFanIn = 8

// partialRingCap sizes the combiner-tree edges: large enough that a
// whole window flush usually publishes without waiting, small enough to
// keep the arena resident.
const partialRingCap = 1024

// latSampleMask subsamples the per-tuple latency instrumentation on the
// ring plane: one tuple in 8 is clocked and fed to the quantile sketch.
// The percentiles are statistical estimates either way (the sketch
// subsamples internally past its capacity); clocking every tuple would
// spend two nanotime reads per message on the plane whose point is raw
// per-message cost. Loads and Completed still count every tuple.
const latSampleMask = 7

// ringCapFor sizes the (spout, bolt) rings: at least two full in-flight
// windows so a spout is never throttled by ring capacity before the ack
// window throttles it, and at least two slabs.
func ringCapFor(cfg Config) int {
	c := 2 * cfg.Window
	if b := 2 * cfg.Batch; b > c {
		c = b
	}
	if c < 64 {
		c = 64
	}
	return c
}

// backoff yields after a fruitless poll, escalating from Gosched to a
// short sleep so idle goroutines (a bolt the partitioner starves, a
// shard between flushes) do not burn a core. Callers reset *spins to 0
// on progress.
func backoff(spins *int) {
	*spins++
	if *spins < 256 {
		runtime.Gosched()
		return
	}
	time.Sleep(20 * time.Microsecond)
}

// pushOne blocks until v is in the ring (the edge graph is acyclic, so
// the consumer is always draining).
func pushOne[T any](q *ring.SPSC[T], v T) {
	spins := 0
	for !q.TryPush(v) {
		backoff(&spins)
	}
}

// pushSlab blocks until every element of xs is published, in order,
// copying directly into granted ring slots.
func pushSlab[T any](q *ring.SPSC[T], xs []T) {
	spins := 0
	for len(xs) > 0 {
		g := q.Grant(len(xs))
		if g == nil {
			backoff(&spins)
			continue
		}
		spins = 0
		n := copy(g, xs)
		q.Publish(n)
		xs = xs[n:]
	}
}

// pushSlabTimed is pushSlab returning the time spent backed off on a
// full ring — the producer-visible publish stall. The clock runs only
// across backoff calls, so an uncontended publish costs no time reads;
// spouts use it when telemetry is on.
func pushSlabTimed[T any](q *ring.SPSC[T], xs []T) (stall time.Duration) {
	spins := 0
	for len(xs) > 0 {
		g := q.Grant(len(xs))
		if g == nil {
			t0 := time.Now()
			backoff(&spins)
			stall += time.Since(t0)
			continue
		}
		spins = 0
		n := copy(g, xs)
		q.Publish(n)
		xs = xs[n:]
	}
	return stall
}

// inflightCounter is one source's atomic in-flight window, padded so
// the counters of different sources never share a cache line.
type inflightCounter struct {
	n atomic.Int64
	_ [56]byte
}

// runRing executes the topology on the ring dataplane. cfg has
// defaults applied; parts are the per-source partitioners; limit is the
// message cap.
func runRing(gen stream.Generator, cfg Config, parts []core.Partitioner, limit int64) (Result, error) {
	shards := cfg.AggShards
	agg := cfg.AggWindow > 0
	pt := newPlaneTelemetry(cfg)

	// Spout→bolt edges: one SPSC ring per (source, bolt) pair. The ring
	// slots are the tuple arena — tuples are written and read in place.
	in := make([][]*ring.SPSC[tuple], cfg.Sources)
	for s := range in {
		in[s] = make([]*ring.SPSC[tuple], cfg.Workers)
		for w := range in[s] {
			in[s][w] = ring.New[tuple](ringCapFor(cfg))
		}
	}
	pt.observeRingQueues(in)
	// Per-source in-flight windows: the spout adds per slab (after
	// waiting for room), bolts subtract per consumed batch. Replaces the
	// channel plane's two-channel-ops-per-message semaphore.
	inflight := make([]inflightCounter, cfg.Sources)

	svcFor := func(w int) time.Duration {
		d := cfg.ServiceTime
		if f, ok := cfg.SlowFactor[w]; ok {
			d = time.Duration(float64(d) * f)
		}
		return d
	}

	// Combiner tree: per shard, bolts feed interior nodes (groups of
	// combinerFanIn) which feed the root; with one group the bolts feed
	// the root directly. boltOut[w][r] is bolt w's edge into shard r's
	// tree; rootIn[r] are the rings shard r's root drains.
	var (
		sd         *aggregation.ShardedDriver
		boltOut    [][]*ring.SPSC[aggregation.Partial]
		rootIn     [][]*ring.SPSC[aggregation.Partial]
		reduceBusy []time.Duration
		reduceWG   sync.WaitGroup
		interWG    sync.WaitGroup
		onFinal    func(aggregation.Final)
	)
	groups := 0
	if agg {
		sd = aggregation.NewShardedDriver(cfg.Workers, shards, cfg.AggWindow, limit, cfg.AggMerger)
		pt.observeReduce(sd)
		reduceBusy = make([]time.Duration, shards)
		onFinal = cfg.OnFinal
		if onFinal != nil && shards > 1 {
			var finalMu sync.Mutex
			user := cfg.OnFinal
			onFinal = func(f aggregation.Final) {
				finalMu.Lock()
				user(f)
				finalMu.Unlock()
			}
		}
		boltOut = make([][]*ring.SPSC[aggregation.Partial], cfg.Workers)
		for w := range boltOut {
			boltOut[w] = make([]*ring.SPSC[aggregation.Partial], shards)
			for r := range boltOut[w] {
				boltOut[w][r] = ring.New[aggregation.Partial](partialRingCap)
			}
		}
		groups = (cfg.Workers + combinerFanIn - 1) / combinerFanIn
		rootIn = make([][]*ring.SPSC[aggregation.Partial], shards)
		if groups == 1 {
			// Degenerate tree: every bolt feeds the root directly.
			for r := range rootIn {
				rootIn[r] = make([]*ring.SPSC[aggregation.Partial], cfg.Workers)
				for w := 0; w < cfg.Workers; w++ {
					rootIn[r][w] = boltOut[w][r]
				}
			}
		} else {
			// Interior nodes: node (r, g) drains bolts [g·fanIn, …) for
			// shard r, folds them through a CombineTable, and flushes
			// combined partials up to the root on watermark advance.
			for r := range rootIn {
				rootIn[r] = make([]*ring.SPSC[aggregation.Partial], groups)
				for g := 0; g < groups; g++ {
					rootIn[r][g] = ring.New[aggregation.Partial](partialRingCap)
				}
			}
			for r := 0; r < shards; r++ {
				for g := 0; g < groups; g++ {
					lo := g * combinerFanIn
					hi := lo + combinerFanIn
					if hi > cfg.Workers {
						hi = cfg.Workers
					}
					ins := make([]*ring.SPSC[aggregation.Partial], 0, hi-lo)
					for w := lo; w < hi; w++ {
						ins = append(ins, boltOut[w][r])
					}
					interWG.Add(1)
					go func(ins []*ring.SPSC[aggregation.Partial], out *ring.SPSC[aggregation.Partial]) {
						defer interWG.Done()
						combineNode(cfg.AggMerger, ins, out)
					}(ins, rootIn[r][g])
				}
			}
		}
		for r := 0; r < shards; r++ {
			reduceWG.Add(1)
			go func(r int) {
				defer reduceWG.Done()
				reduceBusy[r] = shardRoot(cfg, sd, r, rootIn[r], onFinal, pt)
			}(r)
		}
	}

	stats := make([]boltStats, cfg.Workers)
	latSampled := make([]int64, cfg.Workers)
	boltPartials := make([]int64, cfg.Workers)
	var bolts sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		bolts.Add(1)
		go func(w int) {
			defer bolts.Done()
			st := &stats[w]
			st.lat = metrics.NewQuantiles(1 << 14)
			var acc *aggregation.Accumulator
			var scratch []aggregation.Partial
			var pendP [][]aggregation.Partial
			if agg {
				acc = aggregation.NewAccumulatorMerger(w, cfg.AggMerger)
				pendP = make([][]aggregation.Partial, shards)
			}
			// flushClosed closes windows below `before` and pushes each
			// partial into its shard's combiner tree — after observing its
			// (window, key, worker) replica triple, so the accounting never
			// lags a partial whose worker identity the tree merges away.
			// The flush is staged per shard and published with one
			// Grant/Publish pair per shard (a window flush carries many
			// partials; per-partial pushes would pay the ring's atomics on
			// each). The staging buffers are recycled across flushes.
			flushClosed := func(before int64) {
				scratch = acc.FlushBefore(before, scratch[:0])
				pt.addBoltPartials(len(scratch))
				for i := range scratch {
					p := &scratch[i]
					r := aggregation.ShardFor(p.Digest, shards)
					sd.ObserveReplica(r, p.Window, p.Digest, p.Worker)
					pendP[r] = append(pendP[r], *p)
				}
				for r := range pendP {
					if len(pendP[r]) > 0 {
						pushSlab(boltOut[w][r], pendP[r])
						pendP[r] = pendP[r][:0]
					}
				}
			}
			drained := make([]bool, cfg.Sources)
			remaining := cfg.Sources
			spins := 0
			for remaining > 0 {
				progressed := false
				for s := 0; s < cfg.Sources; s++ {
					if drained[s] {
						continue
					}
					q := in[s][w]
					a := q.Acquire(cfg.Batch)
					if a == nil {
						if q.Drained() {
							drained[s] = true
							remaining--
							progressed = true
						}
						continue
					}
					acks := 0
					for i := range a {
						tp := &a[i]
						if tp.src < 0 {
							// Watermark tick: flush with one window of slack,
							// exactly as the channel plane. No ack — ticks do
							// not occupy in-flight window slots.
							if acc != nil {
								flushClosed(tp.window - 1)
							}
							continue
						}
						simulateWork(svcFor(w), cfg.Spin)
						if acc != nil {
							if wm, ok := acc.Watermark(); ok && tp.window > wm {
								flushClosed(tp.window - 1)
							}
							acc.AddSample(tp.window, tp.dig, tp.key, 1, tp.val)
						}
						if st.count&latSampleMask == 0 {
							lat := time.Since(tp.emitted)
							st.lat.Add(float64(lat))
							st.sum += lat
							latSampled[w]++
						}
						st.count++
						acks++
					}
					q.Release(len(a))
					if acks > 0 {
						inflight[s].n.Add(int64(-acks))
						pt.addBoltMsgs(w, acks)
					}
					progressed = true
				}
				if progressed {
					spins = 0
				} else if pt != nil {
					// A fruitless full pass: the bolt is input-starved. The
					// backoff (the only non-progress path) is what gets timed.
					t0 := time.Now()
					backoff(&spins)
					pt.addAcquireStall(w, time.Since(t0))
				} else {
					backoff(&spins)
				}
			}
			if acc != nil {
				flushClosed(1 << 62)
				boltPartials[w] = acc.Flushed()
				for r := range boltOut[w] {
					boltOut[w][r].Close()
				}
			}
		}(w)
	}

	nextSlab, _ := slabSource(gen, limit)
	genVals := stream.Values(gen) != nil
	var tickedWindow atomic.Int64

	start := time.Now()
	var spouts sync.WaitGroup
	for s := 0; s < cfg.Sources; s++ {
		spouts.Add(1)
		go func(s int) {
			defer spouts.Done()
			p := parts[s]
			keys := make([]string, cfg.Batch)
			dsts := make([]int, cfg.Batch)
			var digs []core.KeyDigest
			var vals []int64
			if agg {
				digs = make([]core.KeyDigest, cfg.Batch)
				// Sampling contract: AggValue hook > recorded generator
				// values > constant 1 (see Config.AggValue).
				if cfg.AggValue == nil && genVals {
					vals = make([]int64, cfg.Batch)
				}
			}
			// Reused per-destination staging: the slab is grouped by bolt
			// and each group published with ONE Grant/Publish pair, so the
			// ring's atomic traffic amortizes over the group instead of
			// being paid per tuple. The buffers are allocated once and
			// recycled — nothing on this path allocates per slab.
			pend := make([][]tuple, cfg.Workers)
			for w := range pend {
				pend[w] = make([]tuple, 0, cfg.Batch)
			}
			for {
				n, base := nextSlab(keys, vals)
				if n == 0 {
					break
				}
				// Wait for the slab's in-flight slots (Batch ≤ Window, so
				// this always clears once acks drain). Only this goroutine
				// adds, so load-then-add cannot overshoot.
				spins := 0
				var t0 time.Time
				if pt != nil {
					t0 = time.Now()
				}
				for inflight[s].n.Load() > int64(cfg.Window-n) {
					backoff(&spins)
				}
				if pt != nil {
					pt.addAckWait(s, time.Since(t0))
					t0 = time.Now()
				}
				inflight[s].n.Add(int64(n))
				if agg {
					core.RouteBatchDigests(p, keys[:n], digs, dsts)
					pt.recordRoute(s, p, n, time.Since(t0))
					// Thresholds before visibility, as in the channel plane.
					sd.ObserveEmits(base, digs[:n])
					if cw := (base + int64(n) - 1) / cfg.AggWindow; cw > tickedWindow.Load() {
						for {
							seen := tickedWindow.Load()
							if cw <= seen {
								break
							}
							if tickedWindow.CompareAndSwap(seen, cw) {
								// The winner broadcasts through its OWN rings
								// (ticks are tuples in the arena — the SPSC
								// contract holds and nothing is allocated).
								for w := range in[s] {
									pushOne(in[s][w], tuple{src: -1, window: cw})
								}
								break
							}
						}
					}
				} else {
					core.RouteBatch(p, keys[:n], dsts)
					pt.recordRoute(s, p, n, time.Since(t0))
				}
				now := time.Now()
				for i := 0; i < n; i++ {
					tp := tuple{key: keys[i], emitted: now, src: int32(s)}
					if agg {
						tp.window = (base + int64(i)) / cfg.AggWindow
						tp.dig = digs[i]
						tp.val = 1
						if cfg.AggValue != nil {
							tp.val = cfg.AggValue(keys[i], base+int64(i))
						} else if vals != nil {
							tp.val = vals[i]
						}
					}
					pend[dsts[i]] = append(pend[dsts[i]], tp)
				}
				var stall time.Duration
				for w := range pend {
					if len(pend[w]) > 0 {
						if pt != nil {
							stall += pushSlabTimed(in[s][w], pend[w])
						} else {
							pushSlab(in[s][w], pend[w])
						}
						pend[w] = pend[w][:0]
					}
				}
				pt.addPublishStall(s, stall)
			}
			for w := range in[s] {
				in[s][w].Close()
			}
		}(s)
	}

	spouts.Wait()
	bolts.Wait()
	elapsed := time.Since(start)
	total := elapsed
	if agg {
		interWG.Wait()
		reduceWG.Wait()
		total = time.Since(start)
	}

	res := Result{
		Algorithm: cfg.Algorithm,
		Elapsed:   elapsed,
		Loads:     make([]int64, cfg.Workers),
	}
	if agg {
		res.Agg = sd.Stats()
		res.AggTotal = sd.Total()
		res.AggReplication = sd.Replication()
		for _, n := range boltPartials {
			res.AggBoltPartials += n
		}
		if total > 0 {
			for _, busy := range reduceBusy {
				u := float64(busy) / float64(total)
				res.AggReducerUtilMean += u / float64(shards)
				if u > res.AggReducerUtil {
					res.AggReducerUtil = u
				}
			}
		}
	}
	for w := range stats {
		st := &stats[w]
		res.Loads[w] = st.count
		res.Completed += st.count
		if latSampled[w] > 0 {
			if avg := st.sum / time.Duration(latSampled[w]); avg > res.MaxAvgLatency {
				res.MaxAvgLatency = avg
			}
		}
	}
	pooled := poolLatency(stats)
	res.P50 = time.Duration(pooled.Quantile(0.50))
	res.P95 = time.Duration(pooled.Quantile(0.95))
	res.P99 = time.Duration(pooled.Quantile(0.99))
	res.Imbalance = metrics.Imbalance(res.Loads)
	if sec := elapsed.Seconds(); sec > 0 {
		res.Throughput = float64(res.Completed) / sec
	}
	gen.Reset()
	return res, nil
}

// combineNode is one interior combiner-tree node: it drains its bolts'
// partial rings, folds same-(window, key) partials through the merge
// operator, and flushes the combined survivors of windows below its
// observed watermark up to the root. Flushing "too early" (a window a
// lagging bolt will still flush into) is harmless — stragglers form a
// second combined partial and the root merges it like any other.
func combineNode(m aggregation.Merger, ins []*ring.SPSC[aggregation.Partial], out *ring.SPSC[aggregation.Partial]) {
	ct := aggregation.NewCombineTable(m)
	drained := make([]bool, len(ins))
	remaining := len(ins)
	maxW := int64(-1 << 62)
	var scratch []aggregation.Partial
	spins := 0
	for remaining > 0 {
		progressed := false
		for i, q := range ins {
			if drained[i] {
				continue
			}
			a := q.Acquire(256)
			if a == nil {
				if q.Drained() {
					drained[i] = true
					remaining--
					progressed = true
				}
				continue
			}
			for j := range a {
				if a[j].Window > maxW {
					maxW = a[j].Window
				}
				ct.Fold(&a[j])
			}
			q.Release(len(a))
			progressed = true
		}
		if !progressed {
			backoff(&spins)
			continue
		}
		spins = 0
		if scratch = ct.FlushBefore(maxW, scratch[:0]); len(scratch) > 0 {
			pushSlab(out, scratch)
		}
	}
	if scratch = ct.FlushAll(scratch[:0]); len(scratch) > 0 {
		pushSlab(out, scratch)
	}
	out.Close()
}

// shardRoot is shard r's reduce goroutine: the combiner-tree root. It
// drains its input rings into a completeness-aware Combiner, hands the
// shard's driver each window the moment it is provably complete, and
// closes the shard at end of stream. The simulated per-partial merge
// cost (Config.AggMergeCost) is charged per combined partial the driver
// merges — the shard hop's actual traffic — using the same ≥ 1 ms
// debt-settling discipline as the channel plane. Returns the busy time
// (folding, flushing, merging) for the utilization report.
func shardRoot(cfg Config, sd *aggregation.ShardedDriver, r int, ins []*ring.SPSC[aggregation.Partial], onFinal func(aggregation.Final), pt *planeTelemetry) time.Duration {
	comb := aggregation.NewCombiner(sd, r)
	drained := make([]bool, len(ins))
	remaining := len(ins)
	var busy time.Duration
	var debt time.Duration
	var charged int64   // combined partials already charged to the debt
	var published int64 // combined partials already published to telemetry
	settle := func(threshold time.Duration) {
		if cfg.AggMergeCost > 0 {
			if d := comb.Out() - charged; d > 0 {
				debt += cfg.AggMergeCost * time.Duration(d)
				charged = comb.Out()
			}
		}
		if debt > threshold {
			s0 := time.Now()
			simulateWork(debt, cfg.Spin)
			debt -= time.Since(s0)
		}
	}
	spins := 0
	for remaining > 0 {
		progressed := false
		for i, q := range ins {
			if drained[i] {
				continue
			}
			a := q.Acquire(256)
			if a == nil {
				if q.Drained() {
					drained[i] = true
					remaining--
					progressed = true
				}
				continue
			}
			t0 := time.Now()
			for j := range a {
				comb.Fold(&a[j])
			}
			q.Release(len(a))
			d := time.Since(t0)
			busy += d
			pt.addReduce(r, 0, d)
			progressed = true
		}
		if !progressed {
			backoff(&spins)
			continue
		}
		spins = 0
		t0 := time.Now()
		comb.FlushComplete(onFinal)
		settle(time.Millisecond)
		d := time.Since(t0)
		busy += d
		// Published partial count follows what the DRIVER merged
		// (comb.Out() — combined partials past the root's pre-merge), so
		// reduce_partials_total/bolt_partials_total is the tree's
		// end-to-end pre-merge ratio.
		pt.addReduce(r, int(comb.Out()-published), d)
		published = comb.Out()
	}
	t0 := time.Now()
	comb.Finish(onFinal)
	settle(0)
	d := time.Since(t0)
	busy += d
	pt.addReduce(r, int(comb.Out()-published), d)
	return busy
}
