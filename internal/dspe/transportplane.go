package dspe

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"slb/internal/aggregation"
	"slb/internal/core"
	"slb/internal/metrics"
	"slb/internal/stream"
	"slb/internal/transport"
)

// transportplane.go runs the topology over the internal/transport edge
// fabric: every spout→bolt and bolt→reducer hop is a named transport
// link instead of an in-process channel or ring. With the memory
// backend this is the ring dataplane's data path behind the Transport
// interface (one SPSC ring per edge, slab sends, polling consumers);
// with the TCP backend every hop additionally crosses a loopback
// socket through the varint frame codec, which is what makes the
// network's cost measurable against the in-process planes.
//
// Aggregation follows the CHANNEL plane's semantics: bolt partials
// travel to the reducer shards with their worker identity intact (no
// combiner tree), the shards merge via ShardedDriver.MergeShard, and
// replication is observed driver-side. Finals and replication are
// therefore bit-equal to both in-process planes at Sources=1 — pinned
// by TestTransportPlaneParity.
//
// Control stays in-process by design: the per-source in-flight window
// (ack semantics) is the ring plane's padded atomic counter, and
// window-completeness thresholds are counted at the spouts
// (ObserveEmits) exactly as in both other planes. The transport
// models the DATA hops — the paper's serialization/framing/link cost —
// not a distributed control protocol.
//
// Over TCP the fixed default window (100) is ack-latency bound: each
// burst waits out a loopback round trip before the next can start. When
// the caller left Config.Window at its default, the spout therefore
// grows its window ADAPTIVELY: every time it finds itself blocked on
// acks with all links flushed, it doubles the window, up to
// adaptiveWindowMax — converging on a depth where the pipe stays full
// without the caller having to know the link's bandwidth-delay product.
// An explicitly set Window is always honored as a fixed cap (the
// `transport` experiment pins Window=4096 on every plane so its A/B
// stays one). Window depth never changes results: each spout routes its
// own stream deterministically, so finals and replication stay
// bit-equal regardless of ack timing.

// adaptiveWindowMax caps the adaptive ack window's growth; past this
// depth a loopback link is bandwidth- not latency-bound and deeper
// windows only add buffer bloat.
const adaptiveWindowMax = 8192

// msgOf packs one in-flight tuple into the wire shape. emit is the
// spout timestamp in ns for latency-sampled tuples, 0 otherwise.
func msgOf(tp *tuple, emit int64) transport.Msg {
	return transport.Msg{
		Dig:    uint64(tp.dig),
		Window: tp.window,
		Weight: tp.val,
		Emit:   emit,
		Src:    tp.src,
		Key:    tp.key,
	}
}

// partialMsg packs one bolt partial into the wire shape.
func partialMsg(p *aggregation.Partial) transport.Msg {
	return transport.Msg{
		Dig:    uint64(p.Digest),
		Window: p.Window,
		Weight: p.Count,
		Val0:   p.Val[0],
		Val1:   p.Val[1],
		Src:    p.Worker,
		Key:    p.Key,
	}
}

// runTransport executes the topology with every data hop on cfg's
// transport backend. cfg has defaults applied; parts are the
// per-source partitioners; limit is the message cap.
func runTransport(gen stream.Generator, cfg Config, parts []core.Partitioner, limit int64) (Result, error) {
	shards := cfg.AggShards
	agg := cfg.AggWindow > 0
	pt := newPlaneTelemetry(cfg)

	var (
		fabric transport.Transport
		tcp    *transport.TCP
		err    error
	)
	switch cfg.Transport {
	case TransportMemory:
		fabric = transport.NewMemory()
	case TransportTCP:
		tcpCfg := transport.TCPConfig{}
		if cfg.Chaos != nil {
			// Chaos runs sever links on purpose: shrink the delivery
			// timers so each recovery episode costs milliseconds, and
			// widen the reconnect budget so the schedule, not the budget,
			// decides how much abuse the run takes.
			tcpCfg = transport.TCPConfig{
				ResendTimeout: 25 * time.Millisecond,
				RedialBackoff: 200 * time.Microsecond,
				MaxReconnects: 1 << 20,
			}
		}
		tcp, err = transport.NewTCPWithConfig(cfg.Telemetry, tcpCfg)
		if err != nil {
			return Result{}, err
		}
		fabric = tcp
	default:
		return Result{}, fmt.Errorf("dspe: unknown transport %d", cfg.Transport)
	}
	var chaos *transport.Chaos
	if cfg.Chaos != nil {
		chaos = transport.NewChaos(fabric, *cfg.Chaos)
		fabric = chaos
	}
	defer fabric.Close()

	// Spout→bolt links: one per (source, bolt) pair, so each link is
	// SPSC like the ring plane's edges. Bolt→shard links likewise.
	// When the ack window may grow adaptively, the receive rings are
	// deepened so the grown window — not ring capacity — bounds the
	// in-flight depth (skew can concentrate a whole window on one edge).
	linkCap := ringCapFor(cfg)
	if cfg.adaptiveWindow && cfg.Transport == TransportTCP && linkCap < adaptiveWindowMax/2 {
		linkCap = adaptiveWindowMax / 2
	}
	in := make([][]*transport.Link, cfg.Sources)
	for s := range in {
		in[s] = make([]*transport.Link, cfg.Workers)
		for w := range in[s] {
			if in[s][w], err = fabric.Open(fmt.Sprintf("s%d>w%d", s, w), linkCap); err != nil {
				return Result{}, err
			}
		}
	}
	var boltOut [][]*transport.Link
	if agg {
		boltOut = make([][]*transport.Link, cfg.Workers)
		for w := range boltOut {
			boltOut[w] = make([]*transport.Link, shards)
			for r := range boltOut[w] {
				if boltOut[w][r], err = fabric.Open(fmt.Sprintf("w%d>r%d", w, r), partialRingCap); err != nil {
					return Result{}, err
				}
			}
		}
	}
	inflight := make([]inflightCounter, cfg.Sources)

	// First asynchronous link failure (TCP only); spouts and bolts stop
	// sending when set, and Run surfaces it after the drain.
	var firstErr atomic.Pointer[error]
	fail := func(e error) {
		if e != nil {
			firstErr.CompareAndSwap(nil, &e)
		}
	}
	failed := func() bool { return firstErr.Load() != nil }

	svcFor := func(w int) time.Duration {
		d := cfg.ServiceTime
		if f, ok := cfg.SlowFactor[w]; ok {
			d = time.Duration(float64(d) * f)
		}
		return d
	}

	var (
		sd         *aggregation.ShardedDriver
		reduceBusy []time.Duration
		reduceWG   sync.WaitGroup
		onFinal    func(aggregation.Final)
	)
	if agg {
		sd = aggregation.NewShardedDriver(cfg.Workers, shards, cfg.AggWindow, limit, cfg.AggMerger)
		pt.observeReduce(sd)
		reduceBusy = make([]time.Duration, shards)
		onFinal = cfg.OnFinal
		if onFinal != nil && shards > 1 {
			var finalMu sync.Mutex
			user := cfg.OnFinal
			onFinal = func(f aggregation.Final) {
				finalMu.Lock()
				user(f)
				finalMu.Unlock()
			}
		}
		for r := 0; r < shards; r++ {
			reduceWG.Add(1)
			go func(r int) {
				defer reduceWG.Done()
				// Per-bolt receive legs of this shard; drained like the
				// ring plane's root. The merge cost is settled as debt in
				// ≥ 1 ms chunks (see the channel plane for why).
				var debt time.Duration
				settle := func(threshold time.Duration) {
					if debt > threshold {
						s0 := time.Now()
						simulateWork(debt, cfg.Spin)
						debt -= time.Since(s0)
					}
				}
				buf := make([]transport.Msg, 256)
				slab := make([]aggregation.Partial, 0, 256)
				drained := make([]bool, cfg.Workers)
				remaining := cfg.Workers
				spins := 0
				for remaining > 0 {
					progressed := false
					for w := 0; w < cfg.Workers; w++ {
						if drained[w] {
							continue
						}
						n, done := boltOut[w][r].RecvSlab(buf)
						if n == 0 {
							if done {
								drained[w] = true
								remaining--
								progressed = true
							}
							continue
						}
						progressed = true
						slab = slab[:0]
						for i := 0; i < n; i++ {
							m := &buf[i]
							slab = append(slab, aggregation.Partial{
								Window: m.Window,
								Digest: aggregation.KeyDigest(m.Dig),
								Key:    m.Key,
								Count:  m.Weight,
								Val:    aggregation.Value{m.Val0, m.Val1},
								Worker: m.Src,
							})
						}
						t0 := time.Now()
						if cfg.AggMergeCost > 0 {
							debt += cfg.AggMergeCost * time.Duration(len(slab))
							settle(time.Millisecond)
						}
						sd.MergeShard(r, slab, onFinal)
						d := time.Since(t0)
						reduceBusy[r] += d
						pt.addReduce(r, len(slab), d)
					}
					if progressed {
						spins = 0
					} else {
						backoff(&spins)
					}
				}
				t0 := time.Now()
				settle(0)
				sd.FinishShard(r, onFinal)
				d := time.Since(t0)
				reduceBusy[r] += d
				pt.addReduce(r, 0, d)
			}(r)
		}
	}

	stats := make([]boltStats, cfg.Workers)
	latSampled := make([]int64, cfg.Workers)
	boltPartials := make([]int64, cfg.Workers)
	var bolts sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		bolts.Add(1)
		go func(w int) {
			defer bolts.Done()
			st := &stats[w]
			st.lat = metrics.NewQuantiles(1 << 14)
			var acc *aggregation.Accumulator
			var scratch []aggregation.Partial
			var pendP [][]transport.Msg
			if agg {
				acc = aggregation.NewAccumulatorMerger(w, cfg.AggMerger)
				pendP = make([][]transport.Msg, shards)
			}
			// flushClosed closes windows below `before` and sends each
			// partial to its shard — worker identity intact, merged (and
			// its replica observed) at the reducer, exactly the channel
			// plane's division of labor. Each touched link is flushed so
			// window finals never sit in a coalescing buffer.
			flushClosed := func(before int64) {
				scratch = acc.FlushBefore(before, scratch[:0])
				pt.addBoltPartials(len(scratch))
				for i := range scratch {
					p := &scratch[i]
					r := aggregation.ShardFor(p.Digest, shards)
					pendP[r] = append(pendP[r], partialMsg(p))
				}
				for r := range pendP {
					if len(pendP[r]) > 0 {
						if !failed() {
							if err := boltOut[w][r].SendSlab(pendP[r]); err != nil {
								fail(err)
							} else if err := boltOut[w][r].Sender.Flush(); err != nil {
								fail(err)
							}
						}
						pendP[r] = pendP[r][:0]
					}
				}
			}
			buf := make([]transport.Msg, cfg.Batch)
			drained := make([]bool, cfg.Sources)
			remaining := cfg.Sources
			spins := 0
			for remaining > 0 {
				progressed := false
				for s := 0; s < cfg.Sources; s++ {
					if drained[s] {
						continue
					}
					n, done := in[s][w].RecvSlab(buf)
					if n == 0 {
						if done {
							drained[s] = true
							remaining--
							progressed = true
						}
						continue
					}
					progressed = true
					acks := 0
					for i := 0; i < n; i++ {
						m := &buf[i]
						if m.Src < 0 {
							// Watermark tick: flush with one window of slack,
							// exactly as the other planes. No ack.
							if acc != nil {
								flushClosed(m.Window - 1)
							}
							continue
						}
						simulateWork(svcFor(w), cfg.Spin)
						if acc != nil {
							if wm, ok := acc.Watermark(); ok && m.Window > wm {
								flushClosed(m.Window - 1)
							}
							acc.AddSample(m.Window, core.KeyDigest(m.Dig), m.Key, 1, m.Weight)
						}
						if m.Emit != 0 {
							lat := time.Duration(time.Now().UnixNano() - m.Emit)
							st.lat.Add(float64(lat))
							st.sum += lat
							latSampled[w]++
						}
						st.count++
						acks++
					}
					if acks > 0 {
						inflight[s].n.Add(int64(-acks))
						pt.addBoltMsgs(w, acks)
					}
				}
				if progressed {
					spins = 0
				} else if pt != nil {
					t0 := time.Now()
					backoff(&spins)
					pt.addAcquireStall(w, time.Since(t0))
				} else {
					backoff(&spins)
				}
			}
			if acc != nil {
				flushClosed(1 << 62)
				boltPartials[w] = acc.Flushed()
				for r := range boltOut[w] {
					boltOut[w][r].Sender.Close()
				}
			}
		}(w)
	}

	nextSlab, _ := slabSource(gen, limit)
	genVals := stream.Values(gen) != nil
	var tickedWindow atomic.Int64

	start := time.Now()
	var spouts sync.WaitGroup
	for s := 0; s < cfg.Sources; s++ {
		spouts.Add(1)
		go func(s int) {
			defer spouts.Done()
			defer func() {
				for w := range in[s] {
					in[s][w].Sender.Close()
				}
			}()
			p := parts[s]
			keys := make([]string, cfg.Batch)
			dsts := make([]int, cfg.Batch)
			var digs []core.KeyDigest
			var vals []int64
			if agg {
				digs = make([]core.KeyDigest, cfg.Batch)
				// Sampling contract: AggValue hook > recorded generator
				// values > constant 1 (see Config.AggValue).
				if cfg.AggValue == nil && genVals {
					vals = make([]int64, cfg.Batch)
				}
			}
			// Reused per-destination staging, sent with one SendSlab per
			// touched link, then flushed before waiting on acks (a tuple
			// sitting in a coalescing buffer can never be acked). Links
			// whose sender grants in-place writes (the memory backend)
			// skip the staging copy entirely: messages are constructed
			// directly in granted ring slots and published per batch.
			pend := make([][]transport.Msg, cfg.Workers)
			granters := make([]transport.SlabGranter, cfg.Workers)
			open := make([][]transport.Msg, cfg.Workers)
			used := make([]int, cfg.Workers)
			for w := range pend {
				pend[w] = make([]transport.Msg, 0, cfg.Batch)
				if g, ok := in[s][w].Sender.(transport.SlabGranter); ok {
					granters[w] = g
				}
			}
			// win is the spout's in-flight ack window. With the window
			// left at its default over TCP it grows adaptively: an ack
			// stall with every link flushed means the window, not the
			// bolts, is the limiter, so it doubles (up to
			// adaptiveWindowMax) until the pipe stays full.
			win := int64(cfg.Window)
			adaptive := cfg.adaptiveWindow && cfg.Transport == TransportTCP
			pt.setAckWindow(s, win)
			var seq int64 // per-spout emit counter for latency sampling
			for !failed() {
				n, base := nextSlab(keys, vals)
				if n == 0 {
					break
				}
				spins := 0
				var t0 time.Time
				if pt != nil {
					t0 = time.Now()
				}
				if inflight[s].n.Load() > win-int64(n) {
					// About to block on acks: flush every link first, so
					// coalesced bytes become visible work downstream (a
					// tuple sitting in a coalescing buffer can never be
					// acked). Until the window fills, frames are left to
					// the byte-threshold coalescer — flushing per batch
					// would cap TCP frames at a few hundred bytes.
					for w := range in[s] {
						if err := in[s][w].Sender.Flush(); err != nil {
							fail(err)
						}
					}
					stalled := false
					for inflight[s].n.Load() > win-int64(n) && !failed() {
						stalled = true
						backoff(&spins)
					}
					if stalled && adaptive && win < adaptiveWindowMax {
						win *= 2
						if win > adaptiveWindowMax {
							win = adaptiveWindowMax
						}
						pt.setAckWindow(s, win)
					}
				}
				if pt != nil {
					pt.addAckWait(s, time.Since(t0))
					t0 = time.Now()
				}
				inflight[s].n.Add(int64(n))
				if agg {
					core.RouteBatchDigests(p, keys[:n], digs, dsts)
					pt.recordRoute(s, p, n, time.Since(t0))
					// Thresholds before visibility, as in the other planes.
					sd.ObserveEmits(base, digs[:n])
					if cw := (base + int64(n) - 1) / cfg.AggWindow; cw > tickedWindow.Load() {
						for {
							seen := tickedWindow.Load()
							if cw <= seen {
								break
							}
							if tickedWindow.CompareAndSwap(seen, cw) {
								// The winner broadcasts through its OWN links
								// (they are SPSC; ticks flush immediately so
								// starved bolts still close windows on time).
								tick := []transport.Msg{{Src: -1, Window: cw}}
								for w := range in[s] {
									if err := in[s][w].SendSlab(tick); err != nil {
										fail(err)
										break
									}
									if err := in[s][w].Sender.Flush(); err != nil {
										fail(err)
										break
									}
								}
								break
							}
						}
					}
				} else {
					core.RouteBatch(p, keys[:n], dsts)
					pt.recordRoute(s, p, n, time.Since(t0))
				}
				now := time.Now().UnixNano()
				for i := 0; i < n; i++ {
					tp := tuple{key: keys[i], src: int32(s)}
					if agg {
						tp.window = (base + int64(i)) / cfg.AggWindow
						tp.dig = digs[i]
						tp.val = 1
						if cfg.AggValue != nil {
							tp.val = cfg.AggValue(keys[i], base+int64(i))
						} else if vals != nil {
							tp.val = vals[i]
						}
					}
					emit := int64(0)
					if seq&latSampleMask == 0 {
						emit = now
					}
					seq++
					w := dsts[i]
					g := granters[w]
					if g == nil {
						pend[w] = append(pend[w], msgOf(&tp, emit))
						continue
					}
					if used[w] == len(open[w]) {
						// Current grant exhausted: commit it and reserve the
						// next stretch of ring space, spinning while the
						// link is full (same backpressure as SendSlab).
						if used[w] > 0 {
							g.Publish(used[w])
							used[w] = 0
						}
						gspins := 0
						for {
							if open[w] = g.Grant(n - i); open[w] != nil {
								break
							}
							if failed() {
								break
							}
							backoff(&gspins)
						}
						if open[w] == nil {
							break
						}
					}
					open[w][used[w]] = msgOf(&tp, emit)
					used[w]++
				}
				for w := range pend {
					if used[w] > 0 {
						granters[w].Publish(used[w])
						open[w], used[w] = nil, 0
					}
					if len(pend[w]) > 0 {
						if err := in[s][w].SendSlab(pend[w]); err != nil {
							fail(err)
						}
						pend[w] = pend[w][:0]
					}
				}
			}
		}(s)
	}

	spouts.Wait()
	bolts.Wait()
	elapsed := time.Since(start)
	total := elapsed
	if agg {
		reduceWG.Wait()
		total = time.Since(start)
	}
	if tcp != nil {
		fail(tcp.Err())
	}
	if chaos != nil && cfg.OnFaultStats != nil {
		cfg.OnFaultStats(chaos.Stats())
	}
	if p := firstErr.Load(); p != nil {
		return Result{}, *p
	}

	res := Result{
		Algorithm: cfg.Algorithm,
		Elapsed:   elapsed,
		Loads:     make([]int64, cfg.Workers),
	}
	if agg {
		res.Agg = sd.Stats()
		res.AggTotal = sd.Total()
		res.AggReplication = sd.Replication()
		for _, n := range boltPartials {
			res.AggBoltPartials += n
		}
		if total > 0 {
			for _, busy := range reduceBusy {
				u := float64(busy) / float64(total)
				res.AggReducerUtilMean += u / float64(shards)
				if u > res.AggReducerUtil {
					res.AggReducerUtil = u
				}
			}
		}
	}
	for w := range stats {
		st := &stats[w]
		res.Loads[w] = st.count
		res.Completed += st.count
		if latSampled[w] > 0 {
			if avg := st.sum / time.Duration(latSampled[w]); avg > res.MaxAvgLatency {
				res.MaxAvgLatency = avg
			}
		}
	}
	pooled := poolLatency(stats)
	res.P50 = time.Duration(pooled.Quantile(0.50))
	res.P95 = time.Duration(pooled.Quantile(0.95))
	res.P99 = time.Duration(pooled.Quantile(0.99))
	res.Imbalance = metrics.Imbalance(res.Loads)
	if sec := elapsed.Seconds(); sec > 0 {
		res.Throughput = float64(res.Completed) / sec
	}
	gen.Reset()
	return res, nil
}
