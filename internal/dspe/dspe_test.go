package dspe

import (
	"testing"
	"time"

	"slb/internal/core"
	"slb/internal/stream"
	"slb/internal/workload"
)

func zipfGen(z float64, keys int, m int64) stream.Generator {
	return workload.NewZipf(z, keys, m, 31)
}

func baseCfg(algo string, n, s int) Config {
	return Config{
		Workers:     n,
		Sources:     s,
		Algorithm:   algo,
		Core:        core.Config{Seed: 5},
		ServiceTime: 200 * time.Microsecond,
		Window:      32,
		QueueLen:    64,
	}
}

func TestRunProcessesEverything(t *testing.T) {
	res, err := Run(zipfGen(1.0, 200, 3000), baseCfg("SG", 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 3000 {
		t.Fatalf("completed %d, want 3000", res.Completed)
	}
	var sum int64
	for _, l := range res.Loads {
		sum += l
	}
	if sum != 3000 {
		t.Fatalf("loads sum %d", sum)
	}
	if res.Throughput <= 0 || res.Elapsed <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(zipfGen(1, 10, 10), Config{Workers: 0, Sources: 1, Algorithm: "SG"}); err == nil {
		t.Fatal("expected error for Workers=0")
	}
	if _, err := Run(zipfGen(1, 10, 10), baseCfg("BOGUS", 2, 1)); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
}

func TestLatencyAtLeastServiceTime(t *testing.T) {
	res, err := Run(zipfGen(1.0, 100, 1000), baseCfg("SG", 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.P50 < 200*time.Microsecond {
		t.Fatalf("p50 %v below the service time", res.P50)
	}
	if res.MaxAvgLatency < 200*time.Microsecond {
		t.Fatalf("max-avg %v below the service time", res.MaxAvgLatency)
	}
}

func TestMessagesCap(t *testing.T) {
	cfg := baseCfg("SG", 2, 2)
	cfg.Messages = 500
	res, err := Run(zipfGen(1.0, 100, 100000), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 500 {
		t.Fatalf("completed %d, want 500", res.Completed)
	}
}

func TestSkewHurtsKGThroughput(t *testing.T) {
	// Wall-clock flakiness tolerated: require only a clear (2×) gap.
	if testing.Short() {
		t.Skip("wall-clock test skipped in -short")
	}
	kg, err := Run(zipfGen(2.0, 500, 4000), baseCfg("KG", 8, 4))
	if err != nil {
		t.Fatal(err)
	}
	sg, err := Run(zipfGen(2.0, 500, 4000), baseCfg("SG", 8, 4))
	if err != nil {
		t.Fatal(err)
	}
	if kg.Throughput > sg.Throughput/2 {
		t.Fatalf("KG throughput %f should be well below SG %f under z=2 skew",
			kg.Throughput, sg.Throughput)
	}
	if kg.Imbalance < 10*sg.Imbalance {
		t.Fatalf("KG imbalance %f should dwarf SG %f", kg.Imbalance, sg.Imbalance)
	}
}

func TestWChoicesBalancedOnSkewedStream(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test skipped in -short")
	}
	res, err := Run(zipfGen(2.0, 500, 4000), baseCfg("W-C", 8, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Imbalance > 0.05 {
		t.Fatalf("W-C imbalance %f on the engine, want < 0.05", res.Imbalance)
	}
}

func TestZeroServiceTime(t *testing.T) {
	cfg := baseCfg("PKG", 4, 2)
	cfg.ServiceTime = 0
	res, err := Run(zipfGen(1.0, 100, 2000), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2000 {
		t.Fatalf("completed %d", res.Completed)
	}
}

func TestSlowBoltInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test skipped in -short")
	}
	healthy, err := Run(zipfGen(0.5, 100, 3000), baseCfg("SG", 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseCfg("SG", 4, 2)
	cfg.SlowFactor = map[int]float64{0: 8}
	degraded, err := Run(zipfGen(0.5, 100, 3000), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if degraded.Throughput > 0.85*healthy.Throughput {
		t.Fatalf("straggler bolt had no effect: %f vs %f", degraded.Throughput, healthy.Throughput)
	}
}

func TestSpinModeWorks(t *testing.T) {
	cfg := baseCfg("SG", 2, 1)
	cfg.ServiceTime = 20 * time.Microsecond
	cfg.Spin = true
	cfg.Messages = 200
	res, err := Run(zipfGen(1.0, 50, 100000), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 200 {
		t.Fatalf("completed %d", res.Completed)
	}
}

func TestDeterministicRoutingAcrossRuns(t *testing.T) {
	// Wall-clock metrics vary, but the routing (loads) must be identical
	// for single-source runs with a fixed seed.
	cfg := baseCfg("PKG", 4, 1)
	cfg.ServiceTime = 0
	a, _ := Run(zipfGen(1.2, 100, 2000), cfg)
	b, _ := Run(zipfGen(1.2, 100, 2000), cfg)
	for i := range a.Loads {
		if a.Loads[i] != b.Loads[i] {
			t.Fatalf("loads differ at worker %d: %d vs %d", i, a.Loads[i], b.Loads[i])
		}
	}
}
