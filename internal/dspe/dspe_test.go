package dspe

import (
	"testing"
	"time"

	"slb/internal/aggregation"
	"slb/internal/core"
	"slb/internal/metrics"
	"slb/internal/stream"
	"slb/internal/workload"
)

func zipfGen(z float64, keys int, m int64) stream.Generator {
	return workload.NewZipf(z, keys, m, 31)
}

func baseCfg(algo string, n, s int) Config {
	return Config{
		Workers:     n,
		Sources:     s,
		Algorithm:   algo,
		Core:        core.Config{Seed: 5},
		ServiceTime: 200 * time.Microsecond,
		Window:      32,
		QueueLen:    64,
	}
}

func TestRunProcessesEverything(t *testing.T) {
	res, err := Run(zipfGen(1.0, 200, 3000), baseCfg("SG", 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 3000 {
		t.Fatalf("completed %d, want 3000", res.Completed)
	}
	var sum int64
	for _, l := range res.Loads {
		sum += l
	}
	if sum != 3000 {
		t.Fatalf("loads sum %d", sum)
	}
	if res.Throughput <= 0 || res.Elapsed <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(zipfGen(1, 10, 10), Config{Workers: 0, Sources: 1, Algorithm: "SG"}); err == nil {
		t.Fatal("expected error for Workers=0")
	}
	if _, err := Run(zipfGen(1, 10, 10), baseCfg("BOGUS", 2, 1)); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
}

func TestLatencyAtLeastServiceTime(t *testing.T) {
	res, err := Run(zipfGen(1.0, 100, 1000), baseCfg("SG", 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.P50 < 200*time.Microsecond {
		t.Fatalf("p50 %v below the service time", res.P50)
	}
	if res.MaxAvgLatency < 200*time.Microsecond {
		t.Fatalf("max-avg %v below the service time", res.MaxAvgLatency)
	}
}

func TestMessagesCap(t *testing.T) {
	cfg := baseCfg("SG", 2, 2)
	cfg.Messages = 500
	res, err := Run(zipfGen(1.0, 100, 100000), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 500 {
		t.Fatalf("completed %d, want 500", res.Completed)
	}
}

func TestSkewHurtsKGThroughput(t *testing.T) {
	// Wall-clock flakiness tolerated: require only a clear (2×) gap.
	if testing.Short() {
		t.Skip("wall-clock test skipped in -short")
	}
	kg, err := Run(zipfGen(2.0, 500, 4000), baseCfg("KG", 8, 4))
	if err != nil {
		t.Fatal(err)
	}
	sg, err := Run(zipfGen(2.0, 500, 4000), baseCfg("SG", 8, 4))
	if err != nil {
		t.Fatal(err)
	}
	if kg.Throughput > sg.Throughput/2 {
		t.Fatalf("KG throughput %f should be well below SG %f under z=2 skew",
			kg.Throughput, sg.Throughput)
	}
	if kg.Imbalance < 10*sg.Imbalance {
		t.Fatalf("KG imbalance %f should dwarf SG %f", kg.Imbalance, sg.Imbalance)
	}
}

func TestWChoicesBalancedOnSkewedStream(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test skipped in -short")
	}
	res, err := Run(zipfGen(2.0, 500, 4000), baseCfg("W-C", 8, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Imbalance > 0.05 {
		t.Fatalf("W-C imbalance %f on the engine, want < 0.05", res.Imbalance)
	}
}

func TestZeroServiceTime(t *testing.T) {
	cfg := baseCfg("PKG", 4, 2)
	cfg.ServiceTime = 0
	res, err := Run(zipfGen(1.0, 100, 2000), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2000 {
		t.Fatalf("completed %d", res.Completed)
	}
}

func TestSlowBoltInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test skipped in -short")
	}
	healthy, err := Run(zipfGen(0.5, 100, 3000), baseCfg("SG", 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseCfg("SG", 4, 2)
	cfg.SlowFactor = map[int]float64{0: 8}
	degraded, err := Run(zipfGen(0.5, 100, 3000), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if degraded.Throughput > 0.85*healthy.Throughput {
		t.Fatalf("straggler bolt had no effect: %f vs %f", degraded.Throughput, healthy.Throughput)
	}
}

func TestSpinModeWorks(t *testing.T) {
	cfg := baseCfg("SG", 2, 1)
	cfg.ServiceTime = 20 * time.Microsecond
	cfg.Spin = true
	cfg.Messages = 200
	res, err := Run(zipfGen(1.0, 50, 100000), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 200 {
		t.Fatalf("completed %d", res.Completed)
	}
}

func TestDeterministicRoutingAcrossRuns(t *testing.T) {
	// Wall-clock metrics vary, but the routing (loads) must be identical
	// for single-source runs with a fixed seed.
	cfg := baseCfg("PKG", 4, 1)
	cfg.ServiceTime = 0
	a, _ := Run(zipfGen(1.2, 100, 2000), cfg)
	b, _ := Run(zipfGen(1.2, 100, 2000), cfg)
	for i := range a.Loads {
		if a.Loads[i] != b.Loads[i] {
			t.Fatalf("loads differ at worker %d: %d vs %d", i, a.Loads[i], b.Loads[i])
		}
	}
}

// TestPooledTailLatencyRegression pins the pooled-percentile fix with a
// deterministic skewed fixture: one hot bolt that processed 100× the
// tuples of its peers and has a 4% tail at 100ms (so its own p95 is 1ms
// but its p99 is 100ms). The old pooling re-sampled each bolt's
// 0.05–0.95 quantile grid with equal weight, so the pooled "P99" (a)
// could never exceed any single bolt's p95 and (b) weighted the idle
// bolts as heavily as the hot one — it reports ≈1ms here. The weighted
// reservoir merge must report the true ≈100ms tail.
func TestPooledTailLatencyRegression(t *testing.T) {
	ms := float64(time.Millisecond)
	stats := make([]boltStats, 10)
	// Hot bolt: 10k tuples, 96% at 1ms, 4% at 100ms (interleaved so the
	// reservoir retains both populations at their true proportions).
	stats[0].lat = metrics.NewQuantiles(1 << 14)
	for i := 0; i < 10_000; i++ {
		v := 1 * ms
		if i%25 == 0 { // 4%
			v = 100 * ms
		}
		stats[0].lat.Add(v)
		stats[0].count++
	}
	// Nine near-idle bolts: 100 tuples each at 1ms.
	for w := 1; w < 10; w++ {
		stats[w].lat = metrics.NewQuantiles(1 << 14)
		for i := 0; i < 100; i++ {
			stats[w].lat.Add(1 * ms)
			stats[w].count++
		}
	}

	// The old grid pooling, reproduced verbatim: it must fail to see the
	// tail (this is the regression being pinned — if this starts seeing
	// 100ms the fixture no longer discriminates).
	oldPooled := metrics.NewQuantiles(1 << 16)
	for w := range stats {
		if stats[w].count > 0 {
			for _, q := range []float64{0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75, 0.85, 0.95} {
				oldPooled.Add(stats[w].lat.Quantile(q))
			}
		}
	}
	if old := oldPooled.Quantile(0.99); old > 2*ms {
		t.Fatalf("fixture no longer discriminates: old grid pooling reports p99 = %v", time.Duration(old))
	}

	got := time.Duration(poolLatency(stats).Quantile(0.99))
	if got < 50*time.Millisecond {
		t.Fatalf("pooled p99 = %v, want ≈100ms (hot bolt's tail must dominate)", got)
	}
	// p50 is still 1ms: the tail is 4% of the hot bolt, not the median.
	if p50 := time.Duration(poolLatency(stats).Quantile(0.50)); p50 > 2*time.Millisecond {
		t.Fatalf("pooled p50 = %v, want ≈1ms", p50)
	}
}

// aggGroundTruth computes the single-node reference: per-(window, key)
// counts with window = global emission index / windowSize. The global
// key sequence is deterministic (spouts draw from one shared generator
// under a mutex), so this is exactly what the engine must reproduce.
func aggGroundTruth(gen stream.Generator, windowSize int64) map[int64]map[string]int64 {
	gen.Reset()
	truth := make(map[int64]map[string]int64)
	var idx int64
	for {
		key, ok := gen.Next()
		if !ok {
			break
		}
		w := idx / windowSize
		m := truth[w]
		if m == nil {
			m = make(map[string]int64)
			truth[w] = m
		}
		m[key]++
		idx++
	}
	gen.Reset()
	return truth
}

// TestRunAggregationExact drives the full two-phase topology for every
// algorithm and checks window-close exactness against the single-node
// reference: every processed tuple is counted exactly once (late
// partials are emitted as corrections and summed here, as a downstream
// consumer of a correcting stream would).
func TestRunAggregationExact(t *testing.T) {
	const (
		m          = 12_000
		windowSize = 1_000
	)
	for _, algo := range []string{"KG", "PKG", "D-C", "W-C", "SG"} {
		t.Run(algo, func(t *testing.T) {
			gen := zipfGen(1.6, 300, m)
			truth := aggGroundTruth(gen, windowSize)
			got := make(map[int64]map[string]int64)
			cfg := baseCfg(algo, 4, 2)
			cfg.ServiceTime = 0
			cfg.AggWindow = windowSize
			cfg.OnFinal = func(f aggregation.Final) {
				mm := got[f.Window]
				if mm == nil {
					mm = make(map[string]int64)
					got[f.Window] = mm
				}
				mm[f.Key] += f.Count
			}
			res, err := Run(gen, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Completed != m {
				t.Fatalf("completed %d of %d", res.Completed, m)
			}
			if res.AggTotal != res.Completed {
				t.Fatalf("final counts sum to %d, completed %d", res.AggTotal, res.Completed)
			}
			if len(got) != len(truth) {
				t.Fatalf("got %d windows, want %d", len(got), len(truth))
			}
			for w, wantKeys := range truth {
				for k, want := range wantKeys {
					if got[w][k] != want {
						t.Fatalf("window %d key %q: got %d, want %d", w, k, got[w][k], want)
					}
				}
				if len(got[w]) != len(wantKeys) {
					t.Fatalf("window %d: got %d keys, want %d", w, len(got[w]), len(wantKeys))
				}
			}
			st := res.Agg
			if st.Partials == 0 || st.Finals == 0 || st.WindowsClosed < m/windowSize {
				t.Fatalf("implausible agg stats: %+v", st)
			}
			// Completeness-based close: no window closes before its last
			// partial, so corrections never happen and each window closes
			// exactly once.
			if st.Late != 0 || st.WindowsClosed != (m+windowSize-1)/windowSize {
				t.Fatalf("late/re-closed windows: %+v", st)
			}
		})
	}
}

// TestRunAggregationReplication: through the live engine, KG's measured
// replication factor is exactly 1 (every key's window state lives on one
// bolt) and W-C pays more than PKG.
func TestRunAggregationReplication(t *testing.T) {
	const m = 30_000
	rf := make(map[string]float64)
	for _, algo := range []string{"KG", "PKG", "W-C"} {
		gen := zipfGen(2.0, 500, m)
		cfg := baseCfg(algo, 8, 3)
		cfg.ServiceTime = 0
		cfg.AggWindow = 3_000
		res, err := Run(gen, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rf[algo] = res.AggReplication
	}
	if rf["KG"] != 1 {
		t.Fatalf("KG replication factor = %f, want exactly 1", rf["KG"])
	}
	if !(rf["W-C"] > rf["PKG"] && rf["PKG"] > 1) {
		t.Fatalf("replication ordering violated: PKG %f, W-C %f", rf["PKG"], rf["W-C"])
	}
}
