package dspe

import (
	"sync"
	"testing"
	"time"

	"slb/internal/aggregation"
	"slb/internal/core"
	"slb/internal/stream"
	"slb/internal/workload"
)

// TestShardedReducerRecoversThroughput is the wall-clock half of the
// R-sweep acceptance criterion: with a simulated per-partial merge
// cost making the reduce stage the bottleneck, sharding it 4 ways must
// recover a large fraction of the lost throughput (the deterministic
// half, including the exact util thresholds, lives in
// internal/eventsim's TestShardedReducerMovesSaturation).
func TestShardedReducerRecoversThroughput(t *testing.T) {
	const m = 20000
	run := func(r int) Result {
		gen := workload.NewZipf(1.4, 2000, m, 23)
		res, err := Run(gen, Config{
			Workers: 16, Sources: 4, Algorithm: "W-C",
			Core: core.Config{Seed: 7}, ServiceTime: 0,
			AggWindow: 500, AggShards: r,
			AggMergeCost: 50 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1 := run(1)
	r4 := run(4)
	for _, res := range []Result{r1, r4} {
		if res.AggTotal != m {
			t.Fatalf("finals sum to %d, want %d", res.AggTotal, m)
		}
		if res.Agg.Late != 0 {
			t.Fatalf("late corrections %d, want 0 (per-shard completeness close)", res.Agg.Late)
		}
	}
	if r1.AggReducerUtil < 0.9 {
		t.Fatalf("R=1 reducer util %.3f, want ≥ 0.9 (the merge cost must make the reducer the bottleneck)", r1.AggReducerUtil)
	}
	// ~8.4k partials × 50 µs ≈ 420 ms of merge work: serialized at R=1,
	// quartered at R=4. The measured speedup is ≈ 3×; assert 1.7× to
	// stay robust on slow CI hosts.
	if r4.Throughput < 1.7*r1.Throughput {
		t.Errorf("R=4 throughput %.0f not ≥ 1.7× R=1's %.0f: sharding is not parallelizing the reduce stage",
			r4.Throughput, r1.Throughput)
	}
	if !(r4.AggReducerUtilMean < r1.AggReducerUtilMean) {
		t.Errorf("mean shard util did not drop: R=4 %.3f vs R=1 %.3f", r4.AggReducerUtilMean, r1.AggReducerUtilMean)
	}
	if r4.AggReducerUtilMean > r4.AggReducerUtil {
		t.Errorf("mean shard util %.3f above max %.3f", r4.AggReducerUtilMean, r4.AggReducerUtil)
	}
}

// TestShardedAggregationExact: sharding the reduce stage changes its
// topology, not its results — finals against a single-node ground
// truth, for several shard counts and a non-trivial merger, with
// OnFinal arriving pre-serialized across shard goroutines.
func TestShardedAggregationExact(t *testing.T) {
	const (
		m      = 12000
		window = 500
	)
	sample := func(key string, seq int64) int64 { return int64(len(key)) + seq%11 }
	type fk struct {
		w int64
		k string
	}
	// Single-node ground truth for count and sum.
	truthCount := map[fk]int64{}
	truthSum := map[fk]int64{}
	gen := workload.NewZipf(1.6, 300, m, 31)
	var idx int64
	for {
		k, ok := gen.Next()
		if !ok {
			break
		}
		id := fk{idx / window, k}
		truthCount[id]++
		truthSum[id] += sample(k, idx)
		idx++
	}

	for _, shards := range []int{2, 4} {
		got := map[fk]aggregation.Final{}
		var mu sync.Mutex
		res, err := Run(workload.NewZipf(1.6, 300, m, 31), Config{
			Workers: 8, Sources: 3, Algorithm: "D-C",
			Core: core.Config{Seed: 31}, ServiceTime: 0,
			AggWindow: window, AggShards: shards,
			AggMerger: aggregation.SumMerger, AggValue: sample,
			OnFinal: func(f aggregation.Final) {
				// OnFinal is serialized by the engine; the mutex only
				// pairs this goroutine's writes with the post-Run reads.
				mu.Lock()
				defer mu.Unlock()
				if _, dup := got[fk{f.Window, f.Key}]; dup {
					t.Errorf("(window %d, key %q) finalized twice", f.Window, f.Key)
				}
				got[fk{f.Window, f.Key}] = f
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.AggTotal != m {
			t.Fatalf("R=%d: finals sum to %d, want %d", shards, res.AggTotal, m)
		}
		if len(got) != len(truthCount) {
			t.Fatalf("R=%d: %d finals, want %d", shards, len(got), len(truthCount))
		}
		for id, want := range truthCount {
			f := got[id]
			if f.Count != want || f.Value != truthSum[id] {
				t.Fatalf("R=%d (window %d, key %q): count/value %d/%d, want %d/%d",
					shards, id.w, id.k, f.Count, f.Value, want, truthSum[id])
			}
		}
	}
}

// TestPipelineWindowedMergeSum: the merger-pluggable aggregate stage
// sums tuple WEIGHTS per (window, key) — upstream weighted emissions
// flow through a D-C-split merge stage and reassemble exactly at a
// key-grouped reduce stage, matching a single-node ground truth.
func TestPipelineWindowedMergeSum(t *testing.T) {
	const (
		m      = 6000
		window = 500
	)
	keys := make([]string, m)
	gen := workload.NewZipf(1.5, 120, m, 17)
	for i := range keys {
		k, _ := gen.Next()
		keys[i] = k
	}
	// Per-tuple weight derived from the key alone, so the ground truth
	// is independent of executor interleaving.
	weight := func(key string) int64 { return int64(len(key)%4) + 1 }

	truth := map[string]int64{}
	var wantTotal int64
	for _, k := range keys {
		truth[k] += weight(k)
		wantTotal += weight(k)
	}

	var mu sync.Mutex
	got := map[string]int64{}
	var gotTotal int64
	p := NewPipeline(stream.FromSlice(keys), 2).
		// Weighted source stage: stamps each tuple's weight from its key.
		AddWeightedStage("weigh", 3, "SG", 0,
			func(key string, _ int64, _ int64, emit func(string, int64)) {
				emit(key, weight(key))
			}).
		AddWindowedMerge("sum-partial", 4, "D-C", window, aggregation.SumMerger).
		AddWeightedStage("merge", 2, "KG", 0,
			func(key string, _ int64, count int64, _ func(string, int64)) {
				mu.Lock()
				got[key] += count
				gotTotal += count
				mu.Unlock()
			})
	res, err := p.Run(PipelineConfig{Core: core.Config{Seed: 17}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Emitted != m {
		t.Fatalf("emitted %d, want %d", res.Emitted, m)
	}
	if gotTotal != wantTotal {
		t.Fatalf("merged weight total %d, want %d", gotTotal, wantTotal)
	}
	if len(got) != len(truth) {
		t.Fatalf("%d distinct keys merged, want %d", len(got), len(truth))
	}
	for k, want := range truth {
		if got[k] != want {
			t.Fatalf("key %q: summed weight %d, want %d", k, got[k], want)
		}
	}
	// The merge stage emitted one weighted tuple per (window, key)
	// partial; its AggPartials accounting must reflect real flushes.
	if agg := res.Stages[1]; agg.AggPartials == 0 || agg.AggWindows == 0 {
		t.Errorf("merge stage reported no aggregation activity: %+v", agg)
	}
}
