package dspe

import (
	"testing"
	"time"

	"slb/internal/aggregation"
	"slb/internal/core"
	"slb/internal/stream"
)

// TestWatermarkTicksCloseTrickleBoltWindows pins the tick broadcast:
// a bolt that receives traffic only at the very start of the stream
// must still flush its windows as the GLOBAL stream progresses, so the
// windows it participates in close mid-stream instead of at end of
// stream.
//
// Construction: KG routing with a hand-built stream. One "trickle" key
// appears only in window 0; every other message uses filler keys that
// KG routes to other bolts, so the trickle bolt goes silent after
// window 0. Without ticks, its window-0 partial would flush only when
// its input channel closes — after the whole stream — and window 0
// would be among the LAST windows the reducer completes. With ticks it
// flushes as soon as the stream enters window 2, so window 0's finals
// appear in the reducer's (single-goroutine, hence well-ordered) output
// long before the finals of mid-stream windows.
//
// The ordering is causal, not a timing accident: a mid-stream window w
// cannot close before all its tuples are emitted and processed, which
// happens windows later than the tick that releases the trickle bolt's
// window-0 partial, and the per-tuple service time keeps the stream's
// tail far behind that flush.
func TestWatermarkTicksCloseTrickleBoltWindows(t *testing.T) {
	const (
		workers    = 4
		windowSize = 100
		windows    = 30
	)
	// Probe KG's pure hash to pick a trickle key and fillers on other
	// bolts (Route is deterministic and stateless for KG).
	probe := core.NewKeyGrouping(core.Config{Workers: workers, Seed: 5})
	var trickleKey string
	var fillers []string
	for i := 0; len(fillers) < 2 || trickleKey == ""; i++ {
		k := "k" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
		if trickleKey == "" {
			trickleKey = k
			continue
		}
		if probe.Route(k) != probe.Route(trickleKey) && len(fillers) < 2 {
			fillers = append(fillers, k)
		}
	}
	keys := make([]string, 0, windows*windowSize)
	for i := 0; i < windows*windowSize; i++ {
		switch {
		case i < windowSize/2 && i%2 == 0:
			keys = append(keys, trickleKey) // window 0 only
		default:
			keys = append(keys, fillers[i%len(fillers)])
		}
	}

	// Record the reducer's emission order (OnFinal runs on the single
	// reducer goroutine, so the sequence is well-defined).
	type seen struct {
		window int64
		key    string
	}
	var order []seen
	cfg := Config{
		Workers:   workers,
		Sources:   2,
		Algorithm: "KG",
		Core:      core.Config{Seed: 5},
		// A small but nonzero service time rate-limits stream progress, so
		// the trickle bolt's tick-driven flush is processed long before the
		// stream's tail windows complete.
		ServiceTime: 10 * time.Microsecond,
		AggWindow:   windowSize,
		OnFinal: func(f aggregation.Final) {
			order = append(order, seen{f.Window, f.Key})
		},
	}
	res, err := Run(stream.FromSlice(keys), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AggTotal != int64(len(keys)) {
		t.Fatalf("finals sum to %d, want %d", res.AggTotal, len(keys))
	}

	trickleAt, midAt := -1, -1
	for i, s := range order {
		if s.window == 0 && s.key == trickleKey && trickleAt < 0 {
			trickleAt = i
		}
		if s.window == windows/2 && midAt < 0 {
			midAt = i
		}
	}
	if trickleAt < 0 {
		t.Fatal("trickle key's window-0 final never emitted")
	}
	if midAt < 0 {
		t.Fatalf("window %d final never emitted", windows/2)
	}
	if trickleAt > midAt {
		t.Errorf("window 0 (trickle bolt) closed at output position %d, after mid-stream window %d at position %d: "+
			"watermark ticks are not releasing idle bolts' windows", trickleAt, windows/2, midAt)
	}
}
