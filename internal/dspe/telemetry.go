package dspe

// telemetry.go bridges one engine run into a telemetry.Registry
// (Config.Telemetry). The hooks follow the registry's hot-path
// discipline: everything per-message stays in goroutine-local state the
// engines already keep; the bridge publishes per-slab deltas (route
// recorders, stall/busy counters) or registers snapshot-time collectors
// (queue-depth and reducer-occupancy gauge funcs). A nil registry means
// a nil *planeTelemetry, and every method on a nil receiver is a no-op,
// so the engines carry one field and never branch on configuration
// beyond `pt != nil` where a time.Now pair would otherwise be paid.
//
// Series registered per run (labels: engine=dspe-channel|dspe-ring,
// algo, plus spout/worker/shard where noted):
//
//	route_*                      per spout — see core.NewRouteRecorder
//	spout_ack_wait_ns_total      per spout: blocked acquiring in-flight
//	                             window slots (ack backpressure)
//	spout_ack_window             per spout gauge, transport plane: the
//	                             current in-flight ack window (grows
//	                             adaptively over TCP when Config.Window
//	                             was left at its default)
//	publish_stall_ns_total       per spout, ring plane: blocked
//	                             publishing into a full tuple ring
//	queue_depth                  per worker gauge: channel plane in tuple
//	                             SLABS (len of the bolt's channel), ring
//	                             plane in TUPLES (sum of its rings' Len)
//	bolt_msgs_total              per worker: tuples processed
//	acquire_stall_ns_total       per worker, ring plane: fruitless-poll
//	                             backoff time (input starvation)
//	bolt_partials_total          partials flushed by all bolts
//	reduce_partials_total        per shard: partials the reducer merged —
//	                             reduce_partials/bolt_partials is the
//	                             combiner tree's pre-merge ratio (1 on
//	                             the channel plane by construction)
//	reduce_busy_ns_total         per shard: reducer goroutine busy time
//	reduce_open_windows          per shard gauge: open windows
//	reduce_live_entries          per shard gauge: live (window, key) rows
//	reduce_live_replicas         per shard gauge: live replica bitsets
//
// GaugeFuncs are replace-on-reregister in the registry, so repeated
// runs against one registry (the soak harness) always read the current
// run's channels, rings and drivers.

import (
	"strconv"
	"time"

	"slb/internal/aggregation"
	"slb/internal/core"
	"slb/internal/ring"
	"slb/internal/telemetry"
)

// planeName returns the engine label value for the configured dataplane.
func planeName(d Dataplane) string {
	if d == DataplaneRing {
		return "dspe-ring"
	}
	return "dspe-channel"
}

type planeTelemetry struct {
	reg  *telemetry.Registry
	base []telemetry.Label // engine, algo

	recs         []*core.RouteRecorder // per spout
	ackWait      []*telemetry.Counter  // per spout
	ackWindow    []*telemetry.Gauge    // per spout (transport plane)
	publishStall []*telemetry.Counter  // per spout (ring plane)
	boltMsgs     []*telemetry.Counter  // per worker
	acquireStall []*telemetry.Counter  // per worker (ring plane)
	boltPartials *telemetry.Counter
	reduceParts  []*telemetry.Counter // per shard
	reduceBusy   []*telemetry.Counter // per shard
}

// newPlaneTelemetry registers the run's counter series and returns the
// bridge; nil when cfg.Telemetry is nil.
func newPlaneTelemetry(cfg Config) *planeTelemetry {
	reg := cfg.Telemetry
	if reg == nil {
		return nil
	}
	pt := &planeTelemetry{
		reg: reg,
		base: []telemetry.Label{
			telemetry.L("engine", planeName(cfg.Dataplane)),
			telemetry.L("algo", cfg.Algorithm),
		},
	}
	// The transport plane polls its receive endpoints the way the ring
	// plane polls its rings, so it reports the same stall series
	// whatever Dataplane says.
	ringish := cfg.Dataplane == DataplaneRing || cfg.Transport != TransportDirect
	pt.recs = make([]*core.RouteRecorder, cfg.Sources)
	pt.ackWait = make([]*telemetry.Counter, cfg.Sources)
	pt.ackWindow = make([]*telemetry.Gauge, cfg.Sources)
	pt.publishStall = make([]*telemetry.Counter, cfg.Sources)
	for s := range pt.recs {
		ls := pt.with("spout", s)
		pt.recs[s] = core.NewRouteRecorder(reg, ls...)
		pt.ackWait[s] = reg.Counter("spout_ack_wait_ns_total", ls...)
		if cfg.Transport != TransportDirect {
			pt.ackWindow[s] = reg.Gauge("spout_ack_window", ls...)
		}
		if ringish {
			pt.publishStall[s] = reg.Counter("publish_stall_ns_total", ls...)
		}
	}
	pt.boltMsgs = make([]*telemetry.Counter, cfg.Workers)
	pt.acquireStall = make([]*telemetry.Counter, cfg.Workers)
	for w := range pt.boltMsgs {
		ls := pt.with("worker", w)
		pt.boltMsgs[w] = reg.Counter("bolt_msgs_total", ls...)
		if ringish {
			pt.acquireStall[w] = reg.Counter("acquire_stall_ns_total", ls...)
		}
	}
	if cfg.AggWindow > 0 {
		pt.boltPartials = reg.Counter("bolt_partials_total", pt.base...)
		pt.reduceParts = make([]*telemetry.Counter, cfg.AggShards)
		pt.reduceBusy = make([]*telemetry.Counter, cfg.AggShards)
		for r := range pt.reduceBusy {
			ls := pt.with("shard", r)
			pt.reduceParts[r] = reg.Counter("reduce_partials_total", ls...)
			pt.reduceBusy[r] = reg.Counter("reduce_busy_ns_total", ls...)
		}
	}
	return pt
}

// with returns base + {key: itoa(idx)} as a fresh slice.
func (pt *planeTelemetry) with(key string, idx int) []telemetry.Label {
	ls := make([]telemetry.Label, 0, len(pt.base)+1)
	ls = append(ls, pt.base...)
	return append(ls, telemetry.L(key, strconv.Itoa(idx)))
}

// recordRoute publishes one routed slab for spout s (nil-safe).
func (pt *planeTelemetry) recordRoute(s int, p core.Partitioner, n int, elapsed time.Duration) {
	if pt != nil {
		pt.recs[s].RecordBatch(p, n, elapsed)
	}
}

func (pt *planeTelemetry) addAckWait(s int, d time.Duration) {
	if pt != nil && d > 0 {
		pt.ackWait[s].Add(d.Nanoseconds())
	}
}

// setAckWindow publishes spout s's current (possibly adaptively grown)
// in-flight ack window (transport plane only; nil-safe).
func (pt *planeTelemetry) setAckWindow(s int, win int64) {
	if pt != nil && pt.ackWindow[s] != nil {
		pt.ackWindow[s].SetInt(win)
	}
}

func (pt *planeTelemetry) addPublishStall(s int, d time.Duration) {
	if pt != nil && d > 0 {
		pt.publishStall[s].Add(d.Nanoseconds())
	}
}

func (pt *planeTelemetry) addBoltMsgs(w, n int) {
	if pt != nil && n > 0 {
		pt.boltMsgs[w].Add(int64(n))
	}
}

func (pt *planeTelemetry) addAcquireStall(w int, d time.Duration) {
	if pt != nil && d > 0 {
		pt.acquireStall[w].Add(d.Nanoseconds())
	}
}

func (pt *planeTelemetry) addBoltPartials(n int) {
	if pt != nil && n > 0 {
		pt.boltPartials.Add(int64(n))
	}
}

func (pt *planeTelemetry) addReduce(r, partials int, busy time.Duration) {
	if pt != nil {
		if partials > 0 {
			pt.reduceParts[r].Add(int64(partials))
		}
		if busy > 0 {
			pt.reduceBusy[r].Add(busy.Nanoseconds())
		}
	}
}

// observeChannelQueues registers per-bolt queue-depth gauges over the
// channel plane's input channels (depth in tuple slabs).
func (pt *planeTelemetry) observeChannelQueues(in []chan []tuple) {
	if pt == nil {
		return
	}
	for w := range in {
		ch := in[w]
		pt.reg.GaugeFunc("queue_depth", func() float64 { return float64(len(ch)) }, pt.with("worker", w)...)
	}
}

// observeRingQueues registers per-bolt queue-depth gauges over the ring
// plane's (spout, bolt) rings (depth in tuples, summed over spouts).
func (pt *planeTelemetry) observeRingQueues(in [][]*ring.SPSC[tuple]) {
	if pt == nil {
		return
	}
	workers := len(in[0])
	for w := 0; w < workers; w++ {
		w := w
		pt.reg.GaugeFunc("queue_depth", func() float64 {
			n := 0
			for s := range in {
				n += in[s][w].Len()
			}
			return float64(n)
		}, pt.with("worker", w)...)
	}
}

// observeReduce registers the per-shard reducer occupancy gauges.
func (pt *planeTelemetry) observeReduce(sd *aggregation.ShardedDriver) {
	if pt == nil || sd == nil {
		return
	}
	for r := 0; r < sd.Shards(); r++ {
		r := r
		ls := pt.with("shard", r)
		pt.reg.GaugeFunc("reduce_open_windows", func() float64 { return float64(sd.LiveWindowsShard(r)) }, ls...)
		pt.reg.GaugeFunc("reduce_live_entries", func() float64 { return float64(sd.LiveEntriesShard(r)) }, ls...)
		pt.reg.GaugeFunc("reduce_live_replicas", func() float64 { return float64(sd.LiveReplicasShard(r)) }, ls...)
	}
}
