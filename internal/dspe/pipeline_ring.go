package dspe

// pipeline_ring.go is Pipeline's ring dataplane (PipelineConfig.
// Dataplane == DataplaneRing). Where the channel plane gives each
// executor one bounded MPSC channel that every upstream sender shares,
// the ring plane gives every (sender, receiver) pair of each edge its
// own SPSC ring: a stage with U upstream executors and P of its own has
// U×P rings, each lock-free, each an arena the tuples live in. An
// executor sweeps its U per-sender rings with batched Acquire/Release;
// a sender pushes straight into the target executor's ring.
//
// Termination is executor-driven instead of the channel plane's
// stage-by-stage close: a sender closes its downstream rings when it
// exits, and an executor exits once ALL of its input rings are drained
// — which (inductively, spouts first) happens exactly when the stage's
// whole upstream is done, so a finite stream still drains completely
// and in stage order.

import (
	"sync"
	"time"

	"slb/internal/aggregation"
	"slb/internal/core"
	"slb/internal/metrics"
	"slb/internal/ring"
)

// runRing executes the pipeline on per-edge SPSC rings.
func (p *Pipeline) runRing(cfg PipelineConfig) (PipelineResult, error) {
	queueLen := cfg.QueueLen
	if queueLen <= 0 {
		queueLen = 128
	}

	// edges[s][k][i] is the ring from sender k of stage s's upstream
	// (spout k for s == 0, executor k of stage s-1 otherwise) into
	// executor i of stage s.
	edges := make([][][]*ring.SPSC[pipeTuple], len(p.stages))
	for s, spec := range p.stages {
		senders := p.spouts
		if s > 0 {
			senders = p.stages[s-1].parallelism
		}
		edges[s] = make([][]*ring.SPSC[pipeTuple], senders)
		for k := range edges[s] {
			edges[s][k] = make([]*ring.SPSC[pipeTuple], spec.parallelism)
			for i := range edges[s][k] {
				edges[s][k][i] = ring.New[pipeTuple](queueLen)
			}
		}
	}

	senderFor := func(stage int, instance int) (core.Partitioner, error) {
		spec := p.stages[stage]
		c := cfg.Core
		c.Workers = spec.parallelism
		c.Instance = instance
		return core.New(spec.grouping, c)
	}
	for s := range p.stages {
		if _, err := senderFor(s, 0); err != nil {
			return PipelineResult{}, err
		}
	}

	counts := make([][]int64, len(p.stages))
	accs := make([][]*aggregation.Accumulator, len(p.stages))
	for s, spec := range p.stages {
		counts[s] = make([]int64, spec.parallelism)
		if spec.aggWindow > 0 {
			accs[s] = make([]*aggregation.Accumulator, spec.parallelism)
			for ex := range accs[s] {
				accs[s][ex] = aggregation.NewAccumulatorMerger(ex, spec.merger)
			}
		}
	}
	lat := metrics.NewQuantiles(1 << 15)
	var latMu sync.Mutex

	var execWG sync.WaitGroup
	for s := range p.stages {
		spec := p.stages[s]
		for ex := 0; ex < spec.parallelism; ex++ {
			execWG.Add(1)
			go func(s, ex int) {
				defer execWG.Done()
				spec := p.stages[s]
				// This executor's input rings: one per upstream sender.
				ins := make([]*ring.SPSC[pipeTuple], len(edges[s]))
				for k := range edges[s] {
					ins[k] = edges[s][k][ex]
				}
				// Downstream: this executor is sender `ex` on edge s+1.
				var down core.Partitioner
				var downDig core.DigestRouter
				var outs []*ring.SPSC[pipeTuple]
				if s+1 < len(p.stages) {
					var err error
					down, err = senderFor(s+1, ex+spec.parallelism)
					if err != nil {
						panic(err) // validated before launch
					}
					downDig, _ = down.(core.DigestRouter)
					outs = edges[s+1][ex]
				}
				var cur pipeTuple
				send := func(tp pipeTuple) {
					var w int
					if downDig != nil {
						w = downDig.RouteDigest(tp.dig, tp.key)
					} else {
						w = down.Route(tp.key)
					}
					pushOne(outs[w], tp)
				}
				reDigest := func(key string) core.KeyDigest {
					if key == cur.key {
						return cur.dig
					}
					return core.Digest(key)
				}
				emit := func(key string) {
					if down == nil {
						return
					}
					send(pipeTuple{key: key, dig: reDigest(key), root: cur.root, seq: cur.seq, window: cur.window, weight: cur.weight})
				}
				emitW := func(key string, count int64) {
					if down == nil {
						return
					}
					send(pipeTuple{key: key, dig: reDigest(key), root: cur.root, seq: cur.seq, window: cur.window, weight: count})
				}
				var acc *aggregation.Accumulator
				var buf []aggregation.Partial
				if spec.aggWindow > 0 {
					acc = accs[s][ex]
				}
				flushEmit := func(before int64, root time.Time) {
					buf = acc.FlushBefore(before, buf[:0])
					if down == nil {
						return
					}
					for i := range buf {
						pp := &buf[i]
						weight := pp.Count
						if spec.merger != nil {
							weight = spec.merger.Result(pp.Val)
						}
						send(pipeTuple{
							key:    pp.Key,
							dig:    pp.Digest,
							root:   root,
							seq:    pp.Window * spec.aggWindow,
							window: pp.Window,
							weight: weight,
						})
					}
				}
				last := s == len(p.stages)-1
				drained := make([]bool, len(ins))
				remaining := len(ins)
				spins := 0
				for remaining > 0 {
					progressed := false
					for k, q := range ins {
						if drained[k] {
							continue
						}
						a := q.Acquire(64)
						if a == nil {
							if q.Drained() {
								drained[k] = true
								remaining--
								progressed = true
							}
							continue
						}
						for i := range a {
							tp := a[i]
							if spec.service > 0 {
								time.Sleep(spec.service)
							}
							cur = tp
							switch {
							case acc != nil:
								w := tp.seq / spec.aggWindow
								if wm, ok := acc.Watermark(); ok && w > wm {
									flushEmit(w-1, tp.root)
								}
								if spec.merger != nil {
									acc.AddSample(w, tp.dig, tp.key, 1, tp.weight)
								} else {
									acc.AddN(w, tp.dig, tp.key, tp.weight)
								}
							case spec.wfn != nil:
								spec.wfn(tp.key, tp.window, tp.weight, emitW)
							default:
								spec.fn(tp.key, emit)
							}
							counts[s][ex]++
							if last {
								latMu.Lock()
								lat.Add(float64(time.Since(tp.root)))
								latMu.Unlock()
							}
						}
						q.Release(len(a))
						progressed = true
					}
					if progressed {
						spins = 0
					} else {
						backoff(&spins)
					}
				}
				if acc != nil {
					flushEmit(1<<62, cur.root)
				}
				for _, q := range outs {
					q.Close()
				}
			}(s, ex)
		}
	}

	p.gen.Reset()
	limit := p.gen.Len()
	if cfg.Messages > 0 && cfg.Messages < limit {
		limit = cfg.Messages
	}
	const spoutBatch = 64
	nextSlab, drawn := slabSource(p.gen, limit)

	start := time.Now()
	var spoutWG sync.WaitGroup
	for sp := 0; sp < p.spouts; sp++ {
		part, err := senderFor(0, sp)
		if err != nil {
			return PipelineResult{}, err
		}
		spoutWG.Add(1)
		go func(sp int, part core.Partitioner) {
			defer spoutWG.Done()
			outs := edges[0][sp]
			keys := make([]string, spoutBatch)
			digs := make([]core.KeyDigest, spoutBatch)
			dsts := make([]int, spoutBatch)
			for {
				n, base := nextSlab(keys, nil)
				if n == 0 {
					break
				}
				core.RouteBatchDigests(part, keys[:n], digs, dsts)
				for i := 0; i < n; i++ {
					pushOne(outs[dsts[i]], pipeTuple{key: keys[i], dig: digs[i], root: time.Now(), seq: base + int64(i), weight: 1})
				}
			}
			for _, q := range outs {
				q.Close()
			}
		}(sp, part)
	}

	spoutWG.Wait()
	execWG.Wait()
	elapsed := time.Since(start)

	res := PipelineResult{
		Emitted: drawn(),
		Elapsed: elapsed,
		P50:     time.Duration(lat.Quantile(0.50)),
		P95:     time.Duration(lat.Quantile(0.95)),
		P99:     time.Duration(lat.Quantile(0.99)),
	}
	for s, spec := range p.stages {
		sr := StageResult{Name: spec.name, Loads: counts[s]}
		for _, c := range counts[s] {
			sr.Processed += c
		}
		sr.Imbalance = metrics.Imbalance(counts[s])
		for _, acc := range accs[s] {
			sr.AggPartials += acc.Flushed()
			sr.AggWindows += acc.Closed()
		}
		res.Stages = append(res.Stages, sr)
	}
	p.gen.Reset()
	return res, nil
}
