package dspe

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"slb/internal/aggregation"
	"slb/internal/core"
	"slb/internal/workload"
)

// collectFinals runs the topology and returns every final keyed by
// (window, key), plus the result. The engine serializes OnFinal, so the
// map needs no lock.
func collectFinals(t *testing.T, cfg Config, gen *workload.Zipf) (map[string][2]int64, Result) {
	t.Helper()
	finals := make(map[string][2]int64)
	cfg.OnFinal = func(f aggregation.Final) {
		id := fmt.Sprintf("%d|%s", f.Window, f.Key)
		if _, dup := finals[id]; dup {
			t.Errorf("duplicate final for %s", id)
		}
		finals[id] = [2]int64{f.Count, f.Value}
	}
	res, err := Run(gen, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return finals, res
}

// TestRingDataplaneParity pins the tentpole's correctness contract: the
// ring dataplane (SPSC rings + combiner tree) must produce bit-equal
// finals AND bit-equal replication factors to the channel baseline.
// Replication is compared with a single source, where routing — and
// therefore the (window, key, worker) triples — is deterministic.
func TestRingDataplaneParity(t *testing.T) {
	for _, algo := range []string{"KG", "W-C"} {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", algo, shards), func(t *testing.T) {
				base := Config{
					Workers:   8,
					Sources:   1,
					Algorithm: algo,
					AggWindow: 500,
					AggShards: shards,
					Messages:  20_000,
				}

				chCfg := base
				chCfg.Dataplane = DataplaneChannel
				chFinals, chRes := collectFinals(t, chCfg, workload.NewZipf(1.2, 300, 20_000, 7))

				rgCfg := base
				rgCfg.Dataplane = DataplaneRing
				rgFinals, rgRes := collectFinals(t, rgCfg, workload.NewZipf(1.2, 300, 20_000, 7))

				if len(chFinals) != len(rgFinals) {
					t.Fatalf("final count differs: channel %d, ring %d", len(chFinals), len(rgFinals))
				}
				for id, want := range chFinals {
					if got, ok := rgFinals[id]; !ok || got != want {
						t.Fatalf("final %s: channel %v, ring %v (present=%v)", id, want, got, ok)
					}
				}
				if chRes.AggReplication != rgRes.AggReplication {
					t.Errorf("replication differs: channel %v, ring %v", chRes.AggReplication, rgRes.AggReplication)
				}
				for _, res := range []Result{chRes, rgRes} {
					if res.Completed != 20_000 || res.AggTotal != 20_000 {
						t.Errorf("completed/total: %d/%d, want 20000/20000", res.Completed, res.AggTotal)
					}
				}
			})
		}
	}
}

// TestRingDataplaneParityMultiSource relaxes to what stays deterministic
// under concurrent spouts — the finals (window membership follows the
// global emission sequence regardless of which spout draws a slab) —
// and checks them bit-equal across dataplanes.
func TestRingDataplaneParityMultiSource(t *testing.T) {
	base := Config{
		Workers:   12,
		Sources:   4,
		Algorithm: "W-C",
		AggWindow: 400,
		AggShards: 4,
		Messages:  24_000,
	}
	chCfg := base
	chCfg.Dataplane = DataplaneChannel
	chFinals, chRes := collectFinals(t, chCfg, workload.NewZipf(1.4, 200, 24_000, 11))

	rgCfg := base
	rgCfg.Dataplane = DataplaneRing
	rgFinals, rgRes := collectFinals(t, rgCfg, workload.NewZipf(1.4, 200, 24_000, 11))

	if len(chFinals) != len(rgFinals) {
		t.Fatalf("final count differs: channel %d, ring %d", len(chFinals), len(rgFinals))
	}
	for id, want := range chFinals {
		if got, ok := rgFinals[id]; !ok || got != want {
			t.Fatalf("final %s: channel %v, ring %v (present=%v)", id, want, got, ok)
		}
	}
	if chRes.AggTotal != 24_000 || rgRes.AggTotal != 24_000 {
		t.Errorf("totals: channel %d, ring %d, want 24000", chRes.AggTotal, rgRes.AggTotal)
	}
}

// TestRingCombinerCutsReducerTraffic pins the combiner tree's reason to
// exist: under a skewed stream and a replicating partitioner, the
// partials the reducers merge (Agg.Partials) must be STRICTLY below the
// partials the bolts flushed (AggBoltPartials) on the ring plane, while
// the channel plane merges exactly what the bolts flush. Workers=16
// also exercises the interior tree nodes (two groups of 8).
func TestRingCombinerCutsReducerTraffic(t *testing.T) {
	base := Config{
		Workers:   16,
		Sources:   2,
		Algorithm: "W-C",
		AggWindow: 500,
		AggShards: 2,
		Messages:  30_000,
	}

	chCfg := base
	chCfg.Dataplane = DataplaneChannel
	chRes, err := Run(workload.NewZipf(1.5, 100, 30_000, 3), chCfg)
	if err != nil {
		t.Fatalf("Run(channel): %v", err)
	}
	if chRes.Agg.Partials != chRes.AggBoltPartials {
		t.Errorf("channel plane: reducers merged %d partials, bolts flushed %d (must be equal)",
			chRes.Agg.Partials, chRes.AggBoltPartials)
	}

	rgCfg := base
	rgCfg.Dataplane = DataplaneRing
	rgRes, err := Run(workload.NewZipf(1.5, 100, 30_000, 3), rgCfg)
	if err != nil {
		t.Fatalf("Run(ring): %v", err)
	}
	if rgRes.AggBoltPartials == 0 {
		t.Fatal("ring plane: no bolt partials recorded")
	}
	if rgRes.Agg.Partials >= rgRes.AggBoltPartials {
		t.Errorf("ring plane: combiner tree did not reduce traffic: reducers merged %d, bolts flushed %d",
			rgRes.Agg.Partials, rgRes.AggBoltPartials)
	}
	if rgRes.AggTotal != rgRes.Completed {
		t.Errorf("ring plane: AggTotal %d != Completed %d", rgRes.AggTotal, rgRes.Completed)
	}
}

// TestRingDataplaneNoAgg sanity-checks the plain (no aggregation)
// topology on rings: every message is processed exactly once.
func TestRingDataplaneNoAgg(t *testing.T) {
	res, err := Run(workload.NewZipf(1.1, 500, 15_000, 5), Config{
		Workers:   6,
		Sources:   3,
		Algorithm: "PKG",
		Messages:  15_000,
		Dataplane: DataplaneRing,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Completed != 15_000 {
		t.Fatalf("Completed = %d, want 15000", res.Completed)
	}
	var sum int64
	for _, l := range res.Loads {
		sum += l
	}
	if sum != 15_000 {
		t.Fatalf("Loads sum = %d, want 15000", sum)
	}
}

// TestPipelineRingDataplaneParity runs the same two-phase aggregation
// pipeline (windowed aggregate → KG reduce) on both dataplanes and
// checks the reduced per-(window, key) counts against the stream's
// ground truth — and therefore against each other — exactly.
func TestPipelineRingDataplaneParity(t *testing.T) {
	const (
		m          = 10_000
		windowSize = 1_000
	)
	truth := aggGroundTruth(zipfGen(1.5, 200, m), windowSize)

	for _, dp := range []Dataplane{DataplaneChannel, DataplaneRing} {
		name := "channel"
		if dp == DataplaneRing {
			name = "ring"
		}
		t.Run(name, func(t *testing.T) {
			var mu sync.Mutex
			got := make(map[int64]map[string]int64)
			p := NewPipeline(zipfGen(1.5, 200, m), 2).
				AddWindowedAggregate("partial", 4, "D-C", windowSize).
				AddWeightedStage("reduce", 2, "KG", 0, func(key string, window, count int64, _ func(string, int64)) {
					mu.Lock()
					mm := got[window]
					if mm == nil {
						mm = make(map[string]int64)
						got[window] = mm
					}
					mm[key] += count
					mu.Unlock()
				})
			res, err := p.Run(PipelineConfig{Core: core.Config{Seed: 5}, QueueLen: 32, Dataplane: dp})
			if err != nil {
				t.Fatal(err)
			}
			if res.Emitted != m {
				t.Fatalf("emitted %d of %d", res.Emitted, m)
			}
			if len(got) != len(truth) {
				t.Fatalf("got %d windows, want %d", len(got), len(truth))
			}
			for w, wantKeys := range truth {
				if len(got[w]) != len(wantKeys) {
					t.Fatalf("window %d: got %d keys, want %d", w, len(got[w]), len(wantKeys))
				}
				for k, want := range wantKeys {
					if got[w][k] != want {
						t.Fatalf("window %d key %q: got %d, want %d", w, k, got[w][k], want)
					}
				}
			}
			if res.Stages[1].Processed != res.Stages[0].AggPartials {
				t.Fatalf("reduce processed %d, aggregate emitted %d", res.Stages[1].Processed, res.Stages[0].AggPartials)
			}
		})
	}
}

// mallocsForRun measures the cumulative allocation count of one ring-
// plane run of m messages.
func mallocsForRun(t *testing.T, m int64) uint64 {
	t.Helper()
	gen := workload.NewZipf(1.3, 200, m, 9)
	cfg := Config{
		Workers:   8,
		Sources:   2,
		Algorithm: "W-C",
		AggWindow: 500,
		AggShards: 2,
		Messages:  m,
		Dataplane: DataplaneRing,
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if _, err := Run(gen, cfg); err != nil {
		t.Fatalf("Run: %v", err)
	}
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// TestRingDataplaneAllocsSublinear extends the 0 allocs/op discipline
// to the whole tuple path: tuples live in ring slots and partial tables
// are recycled, so a longer run must not allocate proportionally more.
// The per-run fixed cost (rings, partitioners, reservoirs, goroutines)
// cancels in the difference; the marginal cost per extra message must
// be ~0 (the bound leaves slack for per-window bookkeeping rows, which
// grow with windows, not messages).
func TestRingDataplaneAllocsSublinear(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation accounting run")
	}
	const m1, m2 = 20_000, 120_000
	a1 := mallocsForRun(t, m1)
	a2 := mallocsForRun(t, m2)
	extra := float64(a2) - float64(a1)
	perMsg := extra / float64(m2-m1)
	t.Logf("mallocs: %d @ %d msgs, %d @ %d msgs → %.4f allocs per extra message", a1, m1, a2, m2, perMsg)
	if perMsg > 0.05 {
		t.Fatalf("ring dataplane allocates %.4f per extra message, want ≤ 0.05", perMsg)
	}
}
