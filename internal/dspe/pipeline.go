package dspe

import (
	"fmt"
	"sync"
	"time"

	"slb/internal/aggregation"
	"slb/internal/core"
	"slb/internal/metrics"
	"slb/internal/stream"
)

// Pipeline is a linear multi-stage topology: a spout stage reading a
// key stream, followed by one or more bolt stages connected by grouped
// streams. Each edge has its own grouping scheme (any of core.Names),
// and — exactly as in the paper's model — each upstream executor owns a
// private partitioner instance with sender-local load estimates for
// every edge it sends on.
//
// Tuples flow through bounded channels (backpressure); stages terminate
// in order once the spout's stream is exhausted, so a finite stream
// always drains completely. This generalizes Run's fixed
// source→worker DAG to the DAGs real DSPE applications use
// (e.g. tokenize → count).
//
// Four stage kinds compose the paper's two-phase applications:
// AddStage (plain per-tuple functions), AddWindowedAggregate (per-key
// partial counts per tumbling window, flushed downstream as weighted
// partial tuples — the aggregation phase key splitting makes
// necessary), AddWindowedMerge (the same with a pluggable merge
// operator over tuple weights: sum, min/max, approximate-distinct) and
// AddWeightedStage (functions that see tuple weights and windows —
// the reduce phase merging partials, typically grouped "KG").
type Pipeline struct {
	gen    stream.Generator
	spouts int
	stages []stageSpec
}

// StageFunc processes one tuple and may emit any number of keyed tuples
// downstream via emit (a leaf stage's emissions are discarded).
// Executors call it from exactly one goroutine. Emissions inherit the
// incoming tuple's weight and window unchanged (pass-through), so a
// plain stage between a windowed-aggregate stage and its reducer
// relabels partials without corrupting their counts; a stage that fans
// one tuple out into several therefore multiplies total weight — use
// AddWeightedStage when emissions must repartition the count.
type StageFunc func(key string, emit func(key string))

// WeightedStageFunc is the stage form that sees tuple weights: count is
// the number of source tuples the incoming tuple stands for (1 for raw
// tuples, a partial count for tuples emitted by a windowed-aggregate
// stage) and window is the tumbling-window id it belongs to (0 for raw
// tuples). Emissions carry their own counts. This is the natural shape
// of a reduce stage merging partials.
type WeightedStageFunc func(key string, window int64, count int64, emit func(key string, count int64))

type stageSpec struct {
	name        string
	parallelism int
	grouping    string // algorithm for the edge INTO this stage
	fn          StageFunc
	wfn         WeightedStageFunc
	aggWindow   int64              // > 0: windowed-aggregate stage
	merger      aggregation.Merger // non-nil: merge operator over tuple weights
	service     time.Duration
}

// NewPipeline starts a pipeline definition from a spout stage with the
// given parallelism reading gen.
func NewPipeline(gen stream.Generator, spouts int) *Pipeline {
	if spouts <= 0 {
		panic("dspe: pipeline needs at least one spout")
	}
	return &Pipeline{gen: gen, spouts: spouts}
}

// AddStage appends a bolt stage. grouping names the partitioning scheme
// of the edge into this stage (one of core.Names); service is an
// optional simulated per-tuple processing cost.
func (p *Pipeline) AddStage(name string, parallelism int, grouping string, service time.Duration, fn StageFunc) *Pipeline {
	if parallelism <= 0 {
		panic("dspe: stage parallelism must be positive")
	}
	if fn == nil {
		panic("dspe: stage function required")
	}
	p.stages = append(p.stages, stageSpec{
		name:        name,
		parallelism: parallelism,
		grouping:    grouping,
		fn:          fn,
		service:     service,
	})
	return p
}

// AddWeightedStage appends a bolt stage whose function sees tuple
// weights and windows — the reduce half of a two-phase aggregation.
// Group it "KG" to guarantee all partials of a key meet at one executor.
func (p *Pipeline) AddWeightedStage(name string, parallelism int, grouping string, service time.Duration, fn WeightedStageFunc) *Pipeline {
	if parallelism <= 0 {
		panic("dspe: stage parallelism must be positive")
	}
	if fn == nil {
		panic("dspe: stage function required")
	}
	p.stages = append(p.stages, stageSpec{
		name:        name,
		parallelism: parallelism,
		grouping:    grouping,
		wfn:         fn,
		service:     service,
	})
	return p
}

// AddWindowedAggregate appends a windowed-aggregate stage: executors
// keep per-key partial counts per tumbling window of `window` source
// tuples (window ids derive from the spout's global emission sequence)
// and, when a window closes, emit ONE weighted tuple per distinct
// (window, key) partial downstream — the aggregation traffic whose
// volume is the replication factor the upstream grouping paid. A
// following AddWeightedStage with "KG" grouping merges the partials
// into finals; as a leaf stage the partials are still counted (for
// StageResult.AggPartials) but discarded.
func (p *Pipeline) AddWindowedAggregate(name string, parallelism int, grouping string, window int64) *Pipeline {
	if parallelism <= 0 {
		panic("dspe: stage parallelism must be positive")
	}
	if window <= 0 {
		panic("dspe: aggregate window must be positive")
	}
	p.stages = append(p.stages, stageSpec{
		name:        name,
		parallelism: parallelism,
		grouping:    grouping,
		aggWindow:   window,
	})
	return p
}

// AddWindowedMerge is AddWindowedAggregate with a pluggable merge
// operator: executors fold each incoming tuple's WEIGHT through the
// merger per (window, key) — the addend for aggregation.SumMerger, the
// comparand for Min/Max — and, when a window closes, emit one weighted
// tuple per (window, key) partial whose weight is the merger's RESULT
// for that partial.
//
// The stage boundary carries that scalar result, not the merger's
// internal state, so a downstream AddWeightedStage (typically grouped
// "KG") can reassemble a key's split partials only for operators whose
// results stay combinable as plain numbers: sum the sums (Count/Sum),
// min the mins / max the maxes. DistinctMerger does NOT qualify — an
// HLL estimate of each fragment cannot be combined into an estimate of
// the union — so use it here only when this stage's grouping keeps
// each key on one executor (e.g. "KG"); when a splitting grouping must
// feed a distinct count, use the engines' AggMerger path instead,
// whose flushed partials transport the full combinable state.
//
// AddWindowedMerge(…, aggregation.SumMerger) over weight-1 tuples
// behaves identically to AddWindowedAggregate (a count IS a sum of
// ones).
func (p *Pipeline) AddWindowedMerge(name string, parallelism int, grouping string, window int64, m aggregation.Merger) *Pipeline {
	if parallelism <= 0 {
		panic("dspe: stage parallelism must be positive")
	}
	if window <= 0 {
		panic("dspe: aggregate window must be positive")
	}
	if m == nil {
		panic("dspe: AddWindowedMerge requires a merge operator")
	}
	p.stages = append(p.stages, stageSpec{
		name:        name,
		parallelism: parallelism,
		grouping:    grouping,
		aggWindow:   window,
		merger:      m,
	})
	return p
}

// StageResult reports one stage's outcome.
type StageResult struct {
	Name string
	// Loads is the per-executor processed-tuple count.
	Loads []int64
	// Imbalance is I(m) over this stage's executors.
	Imbalance float64
	// Processed is the total tuples handled by the stage.
	Processed int64
	// AggPartials and AggWindows are the partial tuples emitted and the
	// window flushes performed by a windowed-aggregate stage (zero for
	// other stage kinds).
	AggPartials int64
	AggWindows  int64
}

// PipelineResult aggregates a pipeline run.
type PipelineResult struct {
	// Emitted is the number of tuples the spout stage produced.
	Emitted int64
	// Stages reports each bolt stage in order.
	Stages []StageResult
	// Elapsed is the wall-clock makespan.
	Elapsed time.Duration
	// P50, P95, P99 are end-to-end latency percentiles measured at the
	// final stage (from spout emission to leaf completion).
	P50, P95, P99 time.Duration
}

// PipelineConfig carries the engine-level knobs for a pipeline run.
type PipelineConfig struct {
	// Core carries seed/θ/ε shared by all edges (Workers and Instance
	// are filled per edge/executor).
	Core core.Config
	// QueueLen is the per-executor input channel capacity; 0 means 128.
	QueueLen int
	// Messages caps the spout's emissions; 0 means the full generator.
	Messages int64
	// Dataplane selects the tuple transport: DataplaneChannel (default)
	// gives every executor one bounded MPSC channel; DataplaneRing gives
	// every (sender, receiver) pair its own lock-free SPSC ring, with
	// executors sweeping their per-sender rings. Stage semantics and
	// results are identical; only the transport cost differs.
	Dataplane Dataplane
}

// pipeTuple carries the key and its KeyDigest (computed once, when the
// spout routes the first edge, and re-derived downstream only when a
// stage emits a DIFFERENT key), plus the root emission time for
// latency, the root emission sequence number (windowed-aggregate stages
// derive window ids from it), the window id, and the tuple's weight
// (how many source tuples it stands for — partials carry their count).
type pipeTuple struct {
	key    string
	dig    core.KeyDigest
	root   time.Time
	seq    int64
	window int64
	weight int64
}

// Run executes the pipeline to completion.
func (p *Pipeline) Run(cfg PipelineConfig) (PipelineResult, error) {
	if len(p.stages) == 0 {
		return PipelineResult{}, fmt.Errorf("dspe: pipeline has no stages")
	}
	if cfg.Dataplane == DataplaneRing {
		return p.runRing(cfg)
	}
	queueLen := cfg.QueueLen
	if queueLen <= 0 {
		queueLen = 128
	}

	// Build channels: stage s has stages[s].parallelism executors, each
	// with one bounded input channel.
	inputs := make([][]chan pipeTuple, len(p.stages))
	for s, spec := range p.stages {
		inputs[s] = make([]chan pipeTuple, spec.parallelism)
		for i := range inputs[s] {
			inputs[s][i] = make(chan pipeTuple, queueLen)
		}
	}

	// senderFor builds one partitioner per (sender executor, edge).
	senderFor := func(stage int, instance int) (core.Partitioner, error) {
		spec := p.stages[stage]
		c := cfg.Core
		c.Workers = spec.parallelism
		c.Instance = instance
		return core.New(spec.grouping, c)
	}

	// Validate every edge's grouping before any goroutine starts (the
	// executors assume construction succeeds).
	for s := range p.stages {
		if _, err := senderFor(s, 0); err != nil {
			return PipelineResult{}, err
		}
	}

	counts := make([][]int64, len(p.stages))
	accs := make([][]*aggregation.Accumulator, len(p.stages))
	for s, spec := range p.stages {
		counts[s] = make([]int64, spec.parallelism)
		if spec.aggWindow > 0 {
			accs[s] = make([]*aggregation.Accumulator, spec.parallelism)
			for ex := range accs[s] {
				accs[s][ex] = aggregation.NewAccumulatorMerger(ex, spec.merger)
			}
		}
	}
	lat := metrics.NewQuantiles(1 << 15)
	var latMu sync.Mutex

	// Bolt stages, last first so downstream consumers exist before
	// upstream producers start.
	var stageWGs []*sync.WaitGroup
	for range p.stages {
		stageWGs = append(stageWGs, &sync.WaitGroup{})
	}
	for s := len(p.stages) - 1; s >= 0; s-- {
		spec := p.stages[s]
		for ex := 0; ex < spec.parallelism; ex++ {
			stageWGs[s].Add(1)
			go func(s, ex int) {
				defer stageWGs[s].Done()
				spec := p.stages[s]
				var down core.Partitioner
				var downDig core.DigestRouter
				if s+1 < len(p.stages) {
					var err error
					down, err = senderFor(s+1, ex+spec.parallelism)
					if err != nil {
						panic(err) // validated before launch
					}
					downDig, _ = down.(core.DigestRouter)
				}
				// cur is the tuple being processed; its root/seq/window
				// propagate onto emissions.
				var cur pipeTuple
				// send routes by the tuple's carried digest: downstream edges
				// re-key without re-scanning unchanged key bytes.
				send := func(tp pipeTuple) {
					var w int
					if downDig != nil {
						w = downDig.RouteDigest(tp.dig, tp.key)
					} else {
						w = down.Route(tp.key)
					}
					inputs[s+1][w] <- tp
				}
				// reDigest maps an emitted key to its digest: the carried one
				// when the key bytes are unchanged (the common pass-through
				// case reduces to a pointer compare), one fresh scan when the
				// stage emitted a genuinely new key.
				reDigest := func(key string) core.KeyDigest {
					if key == cur.key {
						return cur.dig
					}
					return core.Digest(key)
				}
				emit := func(key string) {
					if down == nil {
						return // leaf: emissions discarded
					}
					// Pass-through weight: a plain stage re-emitting a partial
					// tuple (e.g. a router between an aggregate stage and its
					// reducer) must not collapse a count-5000 partial to 1.
					send(pipeTuple{key: key, dig: reDigest(key), root: cur.root, seq: cur.seq, window: cur.window, weight: cur.weight})
				}
				emitW := func(key string, count int64) {
					if down == nil {
						return
					}
					send(pipeTuple{key: key, dig: reDigest(key), root: cur.root, seq: cur.seq, window: cur.window, weight: count})
				}
				var acc *aggregation.Accumulator
				var buf []aggregation.Partial
				if spec.aggWindow > 0 {
					acc = accs[s][ex]
				}
				// flushEmit closes windows below before and forwards one
				// weighted tuple per partial; root is the emission time of
				// the tuple that advanced the watermark (or the last tuple,
				// at end of input).
				flushEmit := func(before int64, root time.Time) {
					buf = acc.FlushBefore(before, buf[:0])
					if down == nil {
						return // leaf aggregate: partials counted, discarded
					}
					for i := range buf {
						pp := &buf[i]
						// The partial's weight is what the stage computed for
						// it: the fold of its tuples' weights through the
						// merger (== the plain count for the default
						// aggregate stage, whose fold is a sum of weights).
						weight := pp.Count
						if spec.merger != nil {
							weight = spec.merger.Result(pp.Val)
						}
						// The partial carries the digest its table was keyed
						// by; the reduce edge routes on it with zero re-scans.
						send(pipeTuple{
							key:    pp.Key,
							dig:    pp.Digest,
							root:   root,
							seq:    pp.Window * spec.aggWindow,
							window: pp.Window,
							weight: weight,
						})
					}
				}
				last := s == len(p.stages)-1
				for tp := range inputs[s][ex] {
					if spec.service > 0 {
						time.Sleep(spec.service)
					}
					cur = tp
					switch {
					case acc != nil:
						w := tp.seq / spec.aggWindow
						if wm, ok := acc.Watermark(); ok && w > wm {
							// One window of slack, as in Run: upstream executors
							// interleave, so the previous window may still have
							// tuples in flight.
							flushEmit(w-1, tp.root)
						}
						if spec.merger != nil {
							// Merge stage: the tuple's weight is the SAMPLE the
							// operator folds (one observation per tuple).
							acc.AddSample(w, tp.dig, tp.key, 1, tp.weight)
						} else {
							// Default aggregate stage: the weight folds into the
							// count (a count-5000 partial stands for 5000 tuples).
							acc.AddN(w, tp.dig, tp.key, tp.weight)
						}
					case spec.wfn != nil:
						spec.wfn(tp.key, tp.window, tp.weight, emitW)
					default:
						spec.fn(tp.key, emit)
					}
					counts[s][ex]++
					if last {
						latMu.Lock()
						lat.Add(float64(time.Since(tp.root)))
						latMu.Unlock()
					}
				}
				if acc != nil {
					flushEmit(1<<62, cur.root)
				}
			}(s, ex)
		}
	}

	// Spout stage: shared generator, one partitioner per spout for the
	// first edge.
	p.gen.Reset()
	limit := p.gen.Len()
	if cfg.Messages > 0 && cfg.Messages < limit {
		limit = cfg.Messages
	}
	// Spouts draw key slabs (one generator lock per slab) and route each
	// slab with one RouteBatch call on the first edge; tuples still flow
	// per message so downstream grouping semantics are unchanged.
	const spoutBatch = 64
	nextSlab, drawn := slabSource(p.gen, limit)

	start := time.Now()
	var spoutWG sync.WaitGroup
	for sp := 0; sp < p.spouts; sp++ {
		part, err := senderFor(0, sp)
		if err != nil {
			return PipelineResult{}, err
		}
		spoutWG.Add(1)
		go func(part core.Partitioner) {
			defer spoutWG.Done()
			keys := make([]string, spoutBatch)
			digs := make([]core.KeyDigest, spoutBatch)
			dsts := make([]int, spoutBatch)
			for {
				n, base := nextSlab(keys, nil)
				if n == 0 {
					return
				}
				// Hash-once: the digests routing computes here travel with
				// the tuples through every later stage.
				core.RouteBatchDigests(part, keys[:n], digs, dsts)
				for i := 0; i < n; i++ {
					inputs[0][dsts[i]] <- pipeTuple{key: keys[i], dig: digs[i], root: time.Now(), seq: base + int64(i), weight: 1}
				}
			}
		}(part)
	}

	// Drain stage by stage: once all senders of a stage are done, close
	// its executors' inputs; their exit unblocks the next stage's close.
	spoutWG.Wait()
	for s := range p.stages {
		for _, ch := range inputs[s] {
			close(ch)
		}
		stageWGs[s].Wait()
	}
	elapsed := time.Since(start)

	res := PipelineResult{
		Emitted: drawn(),
		Elapsed: elapsed,
		P50:     time.Duration(lat.Quantile(0.50)),
		P95:     time.Duration(lat.Quantile(0.95)),
		P99:     time.Duration(lat.Quantile(0.99)),
	}
	for s, spec := range p.stages {
		sr := StageResult{Name: spec.name, Loads: counts[s]}
		for _, c := range counts[s] {
			sr.Processed += c
		}
		sr.Imbalance = metrics.Imbalance(counts[s])
		for _, acc := range accs[s] {
			sr.AggPartials += acc.Flushed()
			sr.AggWindows += acc.Closed()
		}
		res.Stages = append(res.Stages, sr)
	}
	p.gen.Reset()
	return res, nil
}
