package dspe

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"slb/internal/texttab"
	"slb/internal/workload"
)

// BenchmarkPipelineThroughput is the dataplane A/B: the same
// spout→bolt→sharded-reduce topology (W-C, AggShards=4, skewed stream)
// timed end to end — the full Run call, reducer drain included — on
// the channel plane and on the SPSC ring plane, in two regimes:
//
//   - raw: AggMergeCost = 0, so the wall clock is the dataplane itself.
//     The ring plane's win here is lock-free per-edge rings: no
//     per-tuple in-flight channel handshake, no per-slab allocation,
//     batched Grant/Publish on every edge.
//   - reduce-bound: the PR-4 reference regime (AggMergeCost = 50 µs,
//     the merge cost that saturates the reduce stage at R = 1 and is
//     quartered by R = 4). Here the worker-side combiner tree is
//     structural: it pre-merges same-host partials before the shard
//     hop, so the reducers pay the per-partial cost roughly once per
//     (window, key) instead of once per (window, key, worker).
//
// Two transport legs ride along: mem-transport (the same topology over
// internal/transport memory links) and tcp-transport (loopback TCP with
// batched varint framing). The memory leg is the tentpole's overhead
// budget — it must stay within ~5% of the direct ring plane in the raw
// regime; the TCP leg prices leaving the process.
//
// When SLB_BENCH_DIR is set, the run writes the measured table as
// BENCH_pipeline_throughput.json — the engine's entry in the CI perf
// trajectory, alongside routing's BENCH_* tables.
func BenchmarkPipelineThroughput(b *testing.B) {
	regimes := []struct {
		name string
		msgs int64
		keys int
		cost time.Duration
	}{
		{"raw", 200_000, 300, 0},
		{"reduce-bound", 20_000, 2000, 50 * time.Microsecond},
	}
	planes := []struct {
		name string
		dp   Dataplane
		tr   Transport
		win  int
	}{
		{"channel", DataplaneChannel, TransportDirect, 0},
		{"ring", DataplaneRing, TransportDirect, 0},
		{"mem-transport", DataplaneRing, TransportMemory, 0},
		// The default in-flight window (100) makes a TCP run ack-latency
		// bound — every burst waits out a loopback syscall round trip —
		// so the leg would measure latency, not transport throughput. A
		// deeper window keeps the wire busy between ack cycles.
		{"tcp-transport", DataplaneRing, TransportTCP, 4096},
	}

	rate := make(map[string]float64)
	for _, reg := range regimes {
		for _, plane := range planes {
			b.Run(reg.name+"/"+plane.name, func(b *testing.B) {
				cfg := Config{
					Workers:      16,
					Sources:      4,
					Algorithm:    "W-C",
					AggWindow:    500,
					AggShards:    4,
					Messages:     reg.msgs,
					AggMergeCost: reg.cost,
					Dataplane:    plane.dp,
					Transport:    plane.tr,
					Window:       plane.win,
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := Run(workload.NewZipf(1.4, reg.keys, reg.msgs, 17), cfg); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				mps := float64(reg.msgs) * float64(b.N) / b.Elapsed().Seconds()
				b.ReportMetric(mps, "msgs/s")
				rate[reg.name+"/"+plane.name] = mps
			})
		}
	}

	if dir := os.Getenv("SLB_BENCH_DIR"); dir != "" {
		tab := &texttab.Table{
			Title:   "pipeline throughput: channel vs ring vs transport (W-C, R=4, z=1.4)",
			Columns: []string{"regime", "dataplane", "msgs/s", "speedup"},
		}
		for _, reg := range regimes {
			base := rate[reg.name+"/channel"]
			if base <= 0 {
				continue
			}
			for _, plane := range planes {
				mps := rate[reg.name+"/"+plane.name]
				tab.Rows = append(tab.Rows, []string{
					reg.name,
					plane.name,
					fmt.Sprintf("%.0f", mps),
					fmt.Sprintf("%.2fx", mps/base),
				})
			}
		}
		if err := tab.WriteJSON(filepath.Join(dir, "BENCH_pipeline_throughput.json")); err != nil {
			b.Fatalf("writing bench artifact: %v", err)
		}
	}
}
