// Package dspe is a miniature distributed stream processing engine in
// the style of Apache Storm, used for deployment-style (wall-clock)
// measurements of the partitioning algorithms. The topology mirrors the
// paper's cluster experiment: spout goroutines (sources) emit a keyed
// stream through a partitioner into bolt goroutines (workers) connected
// by bounded channels (Storm's bounded executor queues → backpressure),
// with an ack-based per-source in-flight window (max spout pending) and
// a fixed per-message processing cost at the workers.
//
// The data plane is batched end to end: spouts draw key slabs from the
// generator (stream.NextBatch), route them in one RouteBatch call, and
// send []tuple slabs — one per destination bolt — over the channels, so
// per-message channel and scheduler overhead is amortized by Config.Batch.
//
// With Config.AggWindow set the topology becomes the two-phase windowed
// aggregation the paper's overhead analysis is about: bolts keep
// digest-keyed partial aggregates per tumbling window
// (internal/aggregation; the merge operator is pluggable via
// Config.AggMerger — count by default) and flush closed windows as
// batched partial slabs to a reduce stage of Config.AggShards parallel
// reducer goroutines, sharded by key digest (aggregation.ShardFor), so
// a key's partials always meet at one reducer. Each shard has its own
// bounded flush channel and closes its slice of every window on
// per-shard completeness (thresholds counted at the spouts as they
// route); finals fan back in through OnFinal. Result.Agg reports the
// measured aggregation traffic, merge work and reducer memory;
// Result.AggReducerUtil the busiest shard's merging fraction of the
// run (AggReducerUtilMean the average shard's).
//
// Tuples carry the KeyDigest routing computed (RouteBatchDigests), so a
// key's bytes are scanned exactly once per message end to end: the
// bolt-side partial tables and the reducer both operate on the carried
// digest. Spouts additionally broadcast watermark ticks to EVERY bolt
// when the global emission sequence enters a new window, so a bolt that
// happens to receive no traffic still flushes its closed windows —
// window-close latency depends on stream progress, not on which bolts
// the partitioner favors.
//
// Unlike internal/eventsim, results here depend on the host: use this
// engine to demonstrate the system end-to-end, and eventsim for
// reproducible numbers.
package dspe

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"slb/internal/aggregation"
	"slb/internal/core"
	"slb/internal/metrics"
	"slb/internal/stream"
	"slb/internal/telemetry"
	"slb/internal/transport"
)

// Config describes one topology run.
type Config struct {
	// Workers is the number of bolt instances.
	Workers int
	// Sources is the number of spout instances.
	Sources int
	// Algorithm is the partitioner name (core.Names).
	Algorithm string
	// Core carries seed/θ/ε; Workers is filled in from this config.
	Core core.Config
	// ServiceTime is the simulated per-message processing cost at a bolt
	// (the paper uses 1 ms). Zero means no artificial delay.
	ServiceTime time.Duration
	// QueueLen is the per-bolt input channel capacity in tuple slabs;
	// 0 means 128.
	QueueLen int
	// Window is the per-spout in-flight cap; 0 means 100.
	Window int
	// Batch is the spout emission slab size: keys drawn, routed and sent
	// per iteration. 0 means 64; it is clamped to Window so a spout can
	// always acquire its whole slab's in-flight slots.
	Batch int
	// Messages caps the emitted messages; 0 means the generator length.
	Messages int64
	// Spin selects busy-wait instead of time.Sleep for the service time:
	// more faithful CPU saturation, but burns host CPU. Tests keep it off.
	Spin bool
	// SlowFactor optionally multiplies the service time of individual
	// bolts (failure injection: stragglers). nil means homogeneous.
	SlowFactor map[int]float64
	// AggWindow, when positive, turns the topology into a two-phase
	// windowed aggregation: every bolt keeps per-key partial aggregates
	// per tumbling window of AggWindow tuples (window ids stamped at the
	// spout from the global emission sequence) and flushes closed windows
	// as batched partial slabs to the reduce stage, which merges partials
	// by key digest and emits finals. Zero disables aggregation.
	AggWindow int64
	// AggShards is R, the number of parallel reducer goroutines the
	// reduce stage is sharded into by key digest (aggregation.ShardFor):
	// each shard owns the keys whose digests map to it, has its own
	// bounded flush channel, and closes its slice of every window on
	// per-shard completeness. 0 means 1 (a single reducer goroutine).
	AggShards int
	// AggMerger selects the merge operator applied per (window, key):
	// aggregation.CountMerger (the default, nil), SumMerger, MinMerger,
	// MaxMerger, DistinctMerger, or any custom Merger.
	AggMerger aggregation.Merger
	// AggValue derives the 64-bit sample the merger observes for each
	// message; seq is the message's global emission index. nil falls
	// back to the generator's recorded payload values when it carries
	// any (stream.ValueBatchGenerator — e.g. a version-2 tracefile
	// replay), and to the constant 1 (so sum ≡ count) otherwise.
	AggValue func(key string, seq int64) int64
	// AggMergeCost, when positive, simulates a per-partial merge cost at
	// the reducer shards (slept or spun per Config.Spin, batched per
	// slab), so wall-clock runs can reproduce the reducer-bound regime
	// the discrete-event engine models with its AggMergeCost — and show
	// sharding move the saturation point. Zero adds no artificial cost.
	AggMergeCost time.Duration
	// OnFinal, when set (and AggWindow > 0), receives every merged final
	// from the reduce stage. Calls are serialized across reducer shards
	// (a mutex when AggShards > 1), so the callback needs no locking of
	// its own.
	OnFinal func(aggregation.Final)
	// Dataplane selects the transport tuples and partials travel on:
	// DataplaneChannel (the default) moves freshly allocated slabs over
	// buffered Go channels; DataplaneRing moves tuples through per-edge
	// lock-free SPSC rings (internal/ring) whose slot arrays are the
	// tuple arena, with a worker-side combiner tree pre-merging bolt
	// partials in front of the reducer-shard hop. Results are identical
	// across dataplanes (same finals, same replication factors); only
	// the wall-clock cost differs.
	Dataplane Dataplane
	// Transport selects the edge fabric for the data hops (spout→bolt
	// tuples and bolt→shard partials). TransportDirect (the default)
	// keeps the in-process dataplane selected by Config.Dataplane;
	// TransportMemory and TransportTCP run the topology over
	// internal/transport links (Dataplane is ignored): per-edge SPSC
	// rings behind the Transport interface, or loopback TCP connections
	// with varint framing and write coalescing. Finals and replication
	// factors are bit-equal across all transports at Sources=1; only
	// the wall-clock cost differs. With TransportTCP and Telemetry set,
	// per-link wire counters (bytes, frames, flushes, stalls) land in
	// the registry.
	Transport Transport
	// adaptiveWindow records that the caller left Window at its default:
	// the TCP transport plane then grows the per-spout ack window
	// adaptively (doubling on ack stalls up to adaptiveWindowMax) instead
	// of pinning it at 100, which over a kernel socket is ack-latency
	// bound. Explicitly set windows are always honored as-is.
	adaptiveWindow bool
	// Chaos, when non-nil, wraps the transport fabric (memory or TCP)
	// in deterministic fault injection — dropped buffer writes and
	// severed connections per the schedule — while the engine's results
	// stay bit-equal to a fault-free run: the TCP backend recovers
	// through reconnect + retransmit + receive-edge dedup, the memory
	// backend through FIFO-preserving holdback. TCP delivery timers are
	// tightened automatically so recovery is fast relative to the run.
	// Ignored for TransportDirect.
	Chaos *transport.ChaosConfig
	// OnFaultStats, when set together with Chaos, receives the per-link
	// injected-fault ledger after the run drains — the hook the
	// fault-parity tests use to assert a run actually suffered the
	// schedule it survived.
	OnFaultStats func(map[string]transport.ChaosLinkStats)
	// Telemetry, when non-nil, receives the run's live metric series:
	// per-spout routing activity (core.RouteRecorder), ack-window and
	// ring publish/acquire stalls, per-bolt queue depths and processed
	// counts, bolt-side partial flushes, and per-shard reducer busy time
	// and occupancy gauges. Series names and labels are listed in
	// internal/dspe/telemetry.go and the slb package doc (§ Telemetry).
	// All hooks are per-slab or snapshot-time; nil adds no work at all.
	Telemetry *telemetry.Registry
}

// Dataplane names a tuple-transport implementation; see Config.Dataplane.
type Dataplane int

const (
	// DataplaneChannel moves tuple slabs over buffered Go channels with
	// ownership transfer (one allocation per slab): the baseline.
	DataplaneChannel Dataplane = iota
	// DataplaneRing moves tuples through per-edge lock-free SPSC ring
	// buffers: zero-allocation steady state, batched publish/consume,
	// atomic in-flight acks, and a worker-side combiner tree in front
	// of the reduce stage.
	DataplaneRing
)

// Transport names an edge fabric; see Config.Transport.
type Transport int

const (
	// TransportDirect uses the in-process dataplane (Config.Dataplane).
	TransportDirect Transport = iota
	// TransportMemory runs every data hop over internal/transport's
	// ring-backed in-memory backend.
	TransportMemory
	// TransportTCP runs every data hop over loopback TCP connections
	// with length-prefixed varint frames and write coalescing.
	TransportTCP
)

func (c Config) withDefaults() (Config, error) {
	if c.Workers <= 0 || c.Sources <= 0 {
		return c, fmt.Errorf("dspe: Workers and Sources must be positive")
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 128
	}
	if c.Window <= 0 {
		c.Window = 100
		c.adaptiveWindow = true
	}
	if c.Batch <= 0 {
		c.Batch = 64
	}
	if c.Batch > c.Window {
		c.Batch = c.Window
	}
	if c.AggShards <= 0 {
		c.AggShards = 1
	}
	c.Core.Workers = c.Workers
	return c, nil
}

// Result reports wall-clock performance of a topology run.
type Result struct {
	Algorithm string
	Completed int64
	Elapsed   time.Duration
	// Throughput is completed messages per wall-clock second.
	Throughput float64
	// MaxAvgLatency is the maximum per-bolt mean latency.
	MaxAvgLatency time.Duration
	// P50/P95/P99 are end-to-end latency percentiles across all tuples.
	P50, P95, P99 time.Duration
	// Loads is the per-bolt processed-tuple count.
	Loads []int64
	// Imbalance is the paper's I(m) over the run.
	Imbalance float64
	// Agg reports the reducer-side aggregation cost (zero unless
	// Config.AggWindow was set): partial traffic, merge work and memory
	// high-water marks.
	Agg aggregation.ReducerStats
	// AggReplication is the measured state replication factor: distinct
	// (window, key, worker) triples per distinct (window, key) pair,
	// counted exactly (metrics.DigestReplicas). 1 for KG by construction;
	// up to Workers for W-Choices hot keys. 0 when aggregation is off.
	AggReplication float64
	// AggReducerUtil is the fraction of the run's wall clock the BUSIEST
	// reducer shard's goroutine spent merging partial slabs: the reduce
	// stage's bottleneck utilization (0 when aggregation is off). Near 1
	// means that shard — and with it the stage — is the bottleneck;
	// sharding (Config.AggShards) spreads the load and moves it down.
	AggReducerUtil float64
	// AggReducerUtilMean is the mean merging fraction across the reducer
	// shards (equal to AggReducerUtil when AggShards == 1).
	AggReducerUtilMean float64
	// AggTotal is the sum of all final counts; with aggregation enabled
	// it must equal Completed (every processed tuple is counted exactly
	// once — window close is exact, not approximate).
	AggTotal int64
	// AggBoltPartials is the number of partials the bolts flushed: the
	// worker-side aggregation output. Under DataplaneChannel the reduce
	// stage merges exactly these (Agg.Partials == AggBoltPartials);
	// under DataplaneRing the combiner tree pre-merges them, so
	// Agg.Partials — what the reducers actually merged — is strictly
	// smaller whenever replication gives the tree anything to combine.
	AggBoltPartials int64
}

// tuple is one in-flight message. With aggregation on it carries the
// KeyDigest routing computed, so bolts never re-scan the key bytes,
// plus the merger sample resolved at the spout (AggValue hook, else
// generator-recorded value, else 1 — see Config.AggValue). A
// negative src marks a watermark tick: window holds the id of the
// window the global emission sequence has entered, there is no key and
// no ack, and the receiving bolt just flushes its closed windows.
type tuple struct {
	key     string
	dig     core.KeyDigest
	emitted time.Time
	window  int64 // tumbling-window id (0 unless Config.AggWindow > 0)
	val     int64 // merger sample (see Config.AggValue for the contract)
	src     int32
}

// boltStats is written only by the owning bolt goroutine.
type boltStats struct {
	lat   *metrics.Quantiles
	count int64
	sum   time.Duration
}

// Run executes the topology until the stream is exhausted and fully
// acked, then reports aggregate metrics.
func Run(gen stream.Generator, cfg Config) (Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	parts := make([]core.Partitioner, cfg.Sources)
	for i := range parts {
		srcCfg := cfg.Core
		srcCfg.Instance = i
		p, err := core.New(cfg.Algorithm, srcCfg)
		if err != nil {
			return Result{}, err
		}
		parts[i] = p
	}

	gen.Reset()
	limit := gen.Len()
	if cfg.Messages > 0 && cfg.Messages < limit {
		limit = cfg.Messages
	}
	if cfg.Transport != TransportDirect {
		return runTransport(gen, cfg, parts, limit)
	}
	if cfg.Dataplane == DataplaneRing {
		return runRing(gen, cfg, parts, limit)
	}
	pt := newPlaneTelemetry(cfg)

	// Channels carry tuple slabs: one send per (slab, destination bolt)
	// instead of one per message.
	in := make([]chan []tuple, cfg.Workers)
	for i := range in {
		in[i] = make(chan []tuple, cfg.QueueLen)
	}
	pt.observeChannelQueues(in)
	// Per-source window semaphores: spouts acquire before emitting, bolts
	// release after processing (the ack path).
	window := make([]chan struct{}, cfg.Sources)
	for i := range window {
		window[i] = make(chan struct{}, cfg.Window)
	}
	// Watermark-tick slabs are recycled through a freelist: the tick
	// broadcast is per (bolt, window), and allocating each single-tuple
	// tick slab was the hot path's one remaining per-window allocation.
	// The channel hop gives the recycle the happens-before the reuse
	// needs; if the pool runs dry the spout just allocates.
	var tickFree chan []tuple
	if cfg.AggWindow > 0 {
		tickFree = make(chan []tuple, 4*cfg.Workers)
	}

	svcFor := func(w int) time.Duration {
		d := cfg.ServiceTime
		if f, ok := cfg.SlowFactor[w]; ok {
			d = time.Duration(float64(d) * f)
		}
		return d
	}

	// Aggregation (two-phase) plumbing: bolts flush closed windows as
	// partial slabs, split by key-digest shard, over R bounded channels
	// to R reducer goroutines — the same slab-ownership-transfer
	// discipline as the data plane. Each shard's goroutine owns that
	// shard's Driver inside the ShardedDriver; windows close on
	// per-shard completeness (thresholds counted at the spouts via
	// ObserveEmits), so each (window, key) yields exactly one Final
	// regardless of how bolts and shards interleave.
	shards := cfg.AggShards
	var (
		sd         *aggregation.ShardedDriver
		aggCh      []chan []aggregation.Partial
		reduceBusy []time.Duration
		reduceWG   sync.WaitGroup
	)
	if cfg.AggWindow > 0 {
		sd = aggregation.NewShardedDriver(cfg.Workers, shards, cfg.AggWindow, limit, cfg.AggMerger)
		pt.observeReduce(sd)
		aggCh = make([]chan []aggregation.Partial, shards)
		reduceBusy = make([]time.Duration, shards)
		// Finals fan back in through one callback; serialize it across
		// shard goroutines so OnFinal needs no locking of its own.
		onFinal := cfg.OnFinal
		if onFinal != nil && shards > 1 {
			var finalMu sync.Mutex
			user := cfg.OnFinal
			onFinal = func(f aggregation.Final) {
				finalMu.Lock()
				user(f)
				finalMu.Unlock()
			}
		}
		for r := 0; r < shards; r++ {
			aggCh[r] = make(chan []aggregation.Partial, 2*cfg.Workers)
			reduceWG.Add(1)
			go func(r int) {
				defer reduceWG.Done()
				// The simulated merge cost is paid as a DEBT settled in
				// ≥ 1 ms chunks, with each settlement's measured oversleep
				// credited back: per-slab sleeps would bottom out at the
				// timer floor and charge every shard the slab COUNT (which
				// sharding does not reduce — each bolt flush sends one slab
				// per shard) instead of the partial count (which it does).
				var debt time.Duration
				settle := func(threshold time.Duration) {
					if debt > threshold {
						s0 := time.Now()
						simulateWork(debt, cfg.Spin)
						debt -= time.Since(s0)
					}
				}
				for slab := range aggCh[r] {
					t0 := time.Now()
					if cfg.AggMergeCost > 0 {
						debt += cfg.AggMergeCost * time.Duration(len(slab))
						settle(time.Millisecond)
					}
					sd.MergeShard(r, slab, onFinal)
					d := time.Since(t0)
					reduceBusy[r] += d
					pt.addReduce(r, len(slab), d)
				}
				t0 := time.Now()
				settle(0)
				sd.FinishShard(r, onFinal)
				d := time.Since(t0)
				reduceBusy[r] += d
				pt.addReduce(r, 0, d)
			}(r)
		}
	}

	stats := make([]boltStats, cfg.Workers)
	boltPartials := make([]int64, cfg.Workers) // written at bolt exit
	var bolts sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		bolts.Add(1)
		go func(w int) {
			defer bolts.Done()
			st := &stats[w]
			st.lat = metrics.NewQuantiles(1 << 14)
			var acc *aggregation.Accumulator
			var scratch []aggregation.Partial
			var shardOf []int32 // per-partial shard, parallel to scratch
			var shardCounts []int
			var slabs [][]aggregation.Partial
			if cfg.AggWindow > 0 {
				acc = aggregation.NewAccumulatorMerger(w, cfg.AggMerger)
				shardCounts = make([]int, shards)
				slabs = make([][]aggregation.Partial, shards)
			}
			// flushClosed closes windows below `before`, splits the
			// partials by reducer shard (one ShardFor per partial, shard
			// recorded for the fill pass), and hands each shard its slab
			// (freshly allocated: ownership transfers over the channel;
			// the bolt-local scratches are reused across flushes).
			flushClosed := func(before int64) {
				scratch = acc.FlushBefore(before, scratch[:0])
				if len(scratch) == 0 {
					return
				}
				pt.addBoltPartials(len(scratch))
				if shards == 1 {
					aggCh[0] <- append(make([]aggregation.Partial, 0, len(scratch)), scratch...)
					return
				}
				if cap(shardOf) < len(scratch) {
					shardOf = make([]int32, len(scratch))
				}
				shardOf = shardOf[:len(scratch)]
				for r := range shardCounts {
					shardCounts[r] = 0
				}
				for i := range scratch {
					r := aggregation.ShardFor(scratch[i].Digest, shards)
					shardOf[i] = int32(r)
					shardCounts[r]++
				}
				for i := range scratch {
					r := shardOf[i]
					if slabs[r] == nil {
						slabs[r] = make([]aggregation.Partial, 0, shardCounts[r])
					}
					slabs[r] = append(slabs[r], scratch[i])
				}
				for r, slab := range slabs {
					if slab != nil {
						aggCh[r] <- slab
						slabs[r] = nil
					}
				}
			}
			for slab := range in[w] {
				if len(slab) == 1 && slab[0].src < 0 {
					// Watermark tick (always its own single-tuple slab): the
					// global emission sequence entered window slab[0].window,
					// so (with one window of slack, same as the data path
					// below) older windows are complete at this bolt even if
					// it never sees another tuple. The slab goes back to the
					// freelist for the next broadcast.
					if acc != nil {
						flushClosed(slab[0].window - 1)
					}
					select {
					case tickFree <- slab:
					default:
					}
					continue
				}
				for _, tp := range slab {
					simulateWork(svcFor(w), cfg.Spin)
					if acc != nil {
						if wm, ok := acc.Watermark(); ok && tp.window > wm {
							// Watermark advance: flush with one window of slack,
							// so slabs from lagging spouts (bounded reordering:
							// at most one drawn-but-unsent slab per spout) do not
							// fragment a window already flushed.
							flushClosed(tp.window - 1)
						}
						acc.AddSample(tp.window, tp.dig, tp.key, 1, tp.val)
					}
					lat := time.Since(tp.emitted)
					st.lat.Add(float64(lat))
					st.count++
					st.sum += lat
					<-window[tp.src] // ack
				}
				pt.addBoltMsgs(w, len(slab))
			}
			if acc != nil {
				flushClosed(1 << 62)
				boltPartials[w] = acc.Flushed()
			}
		}(w)
	}

	// The input stream is shared by all spouts (shuffle grouping from the
	// data source to the spouts); see slabSource.
	nextSlab, _ := slabSource(gen, limit)
	genVals := stream.Values(gen) != nil

	// tickedWindow is the highest window id announced to the bolts via
	// watermark ticks; the spout whose slab first enters a window
	// broadcasts the tick (idempotent at the bolts: flushing an already
	// flushed window is a no-op).
	var tickedWindow atomic.Int64

	start := time.Now()
	var spouts sync.WaitGroup
	for s := 0; s < cfg.Sources; s++ {
		spouts.Add(1)
		go func(s int) {
			defer spouts.Done()
			p := parts[s]
			keys := make([]string, cfg.Batch)
			dsts := make([]int, cfg.Batch)
			var digs []core.KeyDigest
			var vals []int64
			if cfg.AggWindow > 0 {
				digs = make([]core.KeyDigest, cfg.Batch)
				// Sampling contract (stream.ValueBatchGenerator): the
				// AggValue hook wins; else recorded generator values; else
				// the constant 1 (leaving vals nil keeps the draw key-only).
				if cfg.AggValue == nil && genVals {
					vals = make([]int64, cfg.Batch)
				}
			}
			counts := make([]int, cfg.Workers)
			pending := make([][]tuple, cfg.Workers)
			for {
				n, base := nextSlab(keys, vals)
				if n == 0 {
					return
				}
				// Acquire the whole slab's in-flight slots (Batch ≤ Window,
				// so this always completes once acks drain). With telemetry
				// on, the acquisition is timed per slab: this is where ack
				// backpressure (slow bolts) stalls the spout.
				var t0 time.Time
				if pt != nil {
					t0 = time.Now()
				}
				for i := 0; i < n; i++ {
					window[s] <- struct{}{}
				}
				if pt != nil {
					pt.addAckWait(s, time.Since(t0))
					t0 = time.Now()
				}
				if cfg.AggWindow > 0 {
					// Hash-once: routing computes the digests the bolts'
					// partial tables (and the reduce stage) will key by.
					core.RouteBatchDigests(p, keys[:n], digs, dsts)
					pt.recordRoute(s, p, n, time.Since(t0))
					// Count the slab toward its windows' per-shard
					// completeness thresholds BEFORE any of its tuples can be
					// sent (a threshold must never lag a mergeable partial).
					// No-op with one shard.
					sd.ObserveEmits(base, digs[:n])
					// Broadcast a watermark tick to every bolt when the global
					// emission sequence enters a window no spout announced yet,
					// so bolts the partitioner starves still flush on time.
					if cw := (base + int64(n) - 1) / cfg.AggWindow; cw > tickedWindow.Load() {
						for {
							seen := tickedWindow.Load()
							if cw <= seen {
								break
							}
							if tickedWindow.CompareAndSwap(seen, cw) {
								for w := range in {
									var tk []tuple
									select {
									case tk = <-tickFree:
										tk = tk[:1]
									default:
										tk = make([]tuple, 1)
									}
									tk[0] = tuple{src: -1, window: cw}
									in[w] <- tk
								}
								break
							}
						}
					}
				} else {
					core.RouteBatch(p, keys[:n], dsts)
					pt.recordRoute(s, p, n, time.Since(t0))
				}
				// Group the slab by destination bolt. The per-bolt slabs are
				// freshly allocated: ownership transfers over the channel.
				for i := range counts {
					counts[i] = 0
				}
				for _, w := range dsts[:n] {
					counts[w]++
				}
				now := time.Now()
				for i := 0; i < n; i++ {
					w := dsts[i]
					if pending[w] == nil {
						pending[w] = make([]tuple, 0, counts[w])
					}
					tp := tuple{key: keys[i], emitted: now, src: int32(s)}
					if cfg.AggWindow > 0 {
						tp.window = (base + int64(i)) / cfg.AggWindow
						tp.dig = digs[i]
						tp.val = 1
						if cfg.AggValue != nil {
							tp.val = cfg.AggValue(keys[i], base+int64(i))
						} else if vals != nil {
							tp.val = vals[i]
						}
					}
					pending[w] = append(pending[w], tp)
				}
				for w, sl := range pending {
					if sl != nil {
						in[w] <- sl
						pending[w] = nil
					}
				}
			}
		}(s)
	}

	spouts.Wait()
	for _, ch := range in {
		close(ch)
	}
	bolts.Wait()
	elapsed := time.Since(start)
	// The reducer shards keep draining after the bolts finish (queued
	// slabs, end-of-stream flushes, Finish); the utilization denominator
	// must cover that tail, so it extends to the last shard's join.
	total := elapsed
	if aggCh != nil {
		for _, ch := range aggCh {
			close(ch)
		}
		reduceWG.Wait()
		total = time.Since(start)
	}

	res := Result{
		Algorithm: cfg.Algorithm,
		Elapsed:   elapsed,
		Loads:     make([]int64, cfg.Workers),
	}
	if cfg.AggWindow > 0 {
		res.Agg = sd.Stats()
		res.AggTotal = sd.Total()
		res.AggReplication = sd.Replication()
		for _, n := range boltPartials {
			res.AggBoltPartials += n
		}
		if total > 0 {
			for _, busy := range reduceBusy {
				u := float64(busy) / float64(total)
				res.AggReducerUtilMean += u / float64(shards)
				if u > res.AggReducerUtil {
					res.AggReducerUtil = u
				}
			}
		}
	}
	for w := range stats {
		st := &stats[w]
		res.Loads[w] = st.count
		res.Completed += st.count
		if st.count > 0 {
			if avg := st.sum / time.Duration(st.count); avg > res.MaxAvgLatency {
				res.MaxAvgLatency = avg
			}
		}
	}
	pooled := poolLatency(stats)
	res.P50 = time.Duration(pooled.Quantile(0.50))
	res.P95 = time.Duration(pooled.Quantile(0.95))
	res.P99 = time.Duration(pooled.Quantile(0.99))
	res.Imbalance = metrics.Imbalance(res.Loads)
	if sec := elapsed.Seconds(); sec > 0 {
		res.Throughput = float64(res.Completed) / sec
	}
	gen.Reset()
	return res, nil
}

// poolLatency merges the per-bolt latency reservoirs into one pooled
// estimator with count-proportional weighting (metrics.Quantiles.Merge):
// a bolt that processed 100× the tuples contributes 100× the mass.
// The previous implementation re-sampled each bolt's 0.05–0.95 quantile
// grid with equal weight, which (a) capped the pooled P99 at the largest
// single-bolt p95 — the tail above p95 was simply discarded — and
// (b) gave a bolt that processed 50 tuples the same vote as one that
// processed 50k, so the hot bolt's queueing tail vanished from the
// pooled percentiles exactly when it mattered.
func poolLatency(stats []boltStats) *metrics.Quantiles {
	pooled := metrics.NewQuantiles(1 << 16)
	for w := range stats {
		if stats[w].count > 0 {
			pooled.Merge(stats[w].lat)
		}
	}
	return pooled
}

// slabSource returns a draw function over the shared generator — slab
// draws are serialized with a mutex (one lock per slab, not per
// message), capped at limit total keys, and each draw also returns the
// slab's base position in the global emission sequence, from which the
// spout derives tumbling-window ids — plus an accessor for the total
// drawn so far. A non-nil vals slice (len ≥ len(dst)) is filled in
// lockstep with the keys' payload values (stream.NextBatchValues);
// nil draws keys only. Both Run and Pipeline.Run feed their spouts
// from one of these.
func slabSource(gen stream.Generator, limit int64) (draw func(dst []string, vals []int64) (int, int64), drawn func() int64) {
	var mu sync.Mutex
	var emitted int64
	draw = func(dst []string, vals []int64) (int, int64) {
		mu.Lock()
		defer mu.Unlock()
		if rem := limit - emitted; rem < int64(len(dst)) {
			dst = dst[:rem]
		}
		if len(dst) == 0 {
			return 0, emitted
		}
		base := emitted
		var n int
		if vals != nil {
			n = stream.NextBatchValues(gen, dst, vals)
		} else {
			n = stream.NextBatch(gen, dst)
		}
		emitted += int64(n)
		return n, base
	}
	drawn = func() int64 {
		mu.Lock()
		defer mu.Unlock()
		return emitted
	}
	return draw, drawn
}

// simulateWork burns the configured service time.
func simulateWork(d time.Duration, spin bool) {
	if d <= 0 {
		return
	}
	if !spin {
		time.Sleep(d)
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}
