// Package dspe is a miniature distributed stream processing engine in
// the style of Apache Storm, used for deployment-style (wall-clock)
// measurements of the partitioning algorithms. The topology mirrors the
// paper's cluster experiment: spout goroutines (sources) emit a keyed
// stream through a partitioner into bolt goroutines (workers) connected
// by bounded channels (Storm's bounded executor queues → backpressure),
// with an ack-based per-source in-flight window (max spout pending) and
// a fixed per-message processing cost at the workers.
//
// The data plane is batched end to end: spouts draw key slabs from the
// generator (stream.NextBatch), route them in one RouteBatch call, and
// send []tuple slabs — one per destination bolt — over the channels, so
// per-message channel and scheduler overhead is amortized by Config.Batch.
//
// Unlike internal/eventsim, results here depend on the host: use this
// engine to demonstrate the system end-to-end, and eventsim for
// reproducible numbers.
package dspe

import (
	"fmt"
	"sync"
	"time"

	"slb/internal/core"
	"slb/internal/metrics"
	"slb/internal/stream"
)

// Config describes one topology run.
type Config struct {
	// Workers is the number of bolt instances.
	Workers int
	// Sources is the number of spout instances.
	Sources int
	// Algorithm is the partitioner name (core.Names).
	Algorithm string
	// Core carries seed/θ/ε; Workers is filled in from this config.
	Core core.Config
	// ServiceTime is the simulated per-message processing cost at a bolt
	// (the paper uses 1 ms). Zero means no artificial delay.
	ServiceTime time.Duration
	// QueueLen is the per-bolt input channel capacity in tuple slabs;
	// 0 means 128.
	QueueLen int
	// Window is the per-spout in-flight cap; 0 means 100.
	Window int
	// Batch is the spout emission slab size: keys drawn, routed and sent
	// per iteration. 0 means 64; it is clamped to Window so a spout can
	// always acquire its whole slab's in-flight slots.
	Batch int
	// Messages caps the emitted messages; 0 means the generator length.
	Messages int64
	// Spin selects busy-wait instead of time.Sleep for the service time:
	// more faithful CPU saturation, but burns host CPU. Tests keep it off.
	Spin bool
	// SlowFactor optionally multiplies the service time of individual
	// bolts (failure injection: stragglers). nil means homogeneous.
	SlowFactor map[int]float64
}

func (c Config) withDefaults() (Config, error) {
	if c.Workers <= 0 || c.Sources <= 0 {
		return c, fmt.Errorf("dspe: Workers and Sources must be positive")
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 128
	}
	if c.Window <= 0 {
		c.Window = 100
	}
	if c.Batch <= 0 {
		c.Batch = 64
	}
	if c.Batch > c.Window {
		c.Batch = c.Window
	}
	c.Core.Workers = c.Workers
	return c, nil
}

// Result reports wall-clock performance of a topology run.
type Result struct {
	Algorithm string
	Completed int64
	Elapsed   time.Duration
	// Throughput is completed messages per wall-clock second.
	Throughput float64
	// MaxAvgLatency is the maximum per-bolt mean latency.
	MaxAvgLatency time.Duration
	// P50/P95/P99 are end-to-end latency percentiles across all tuples.
	P50, P95, P99 time.Duration
	// Loads is the per-bolt processed-tuple count.
	Loads []int64
	// Imbalance is the paper's I(m) over the run.
	Imbalance float64
}

// tuple is one in-flight message.
type tuple struct {
	key     string
	emitted time.Time
	src     int32
}

// boltStats is written only by the owning bolt goroutine.
type boltStats struct {
	lat   *metrics.Quantiles
	count int64
	sum   time.Duration
}

// Run executes the topology until the stream is exhausted and fully
// acked, then reports aggregate metrics.
func Run(gen stream.Generator, cfg Config) (Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	parts := make([]core.Partitioner, cfg.Sources)
	for i := range parts {
		srcCfg := cfg.Core
		srcCfg.Instance = i
		p, err := core.New(cfg.Algorithm, srcCfg)
		if err != nil {
			return Result{}, err
		}
		parts[i] = p
	}

	gen.Reset()
	limit := gen.Len()
	if cfg.Messages > 0 && cfg.Messages < limit {
		limit = cfg.Messages
	}

	// Channels carry tuple slabs: one send per (slab, destination bolt)
	// instead of one per message.
	in := make([]chan []tuple, cfg.Workers)
	for i := range in {
		in[i] = make(chan []tuple, cfg.QueueLen)
	}
	// Per-source window semaphores: spouts acquire before emitting, bolts
	// release after processing (the ack path).
	window := make([]chan struct{}, cfg.Sources)
	for i := range window {
		window[i] = make(chan struct{}, cfg.Window)
	}

	svcFor := func(w int) time.Duration {
		d := cfg.ServiceTime
		if f, ok := cfg.SlowFactor[w]; ok {
			d = time.Duration(float64(d) * f)
		}
		return d
	}
	stats := make([]boltStats, cfg.Workers)
	var bolts sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		bolts.Add(1)
		go func(w int) {
			defer bolts.Done()
			st := &stats[w]
			st.lat = metrics.NewQuantiles(1 << 14)
			for slab := range in[w] {
				for _, tp := range slab {
					simulateWork(svcFor(w), cfg.Spin)
					lat := time.Since(tp.emitted)
					st.lat.Add(float64(lat))
					st.count++
					st.sum += lat
					<-window[tp.src] // ack
				}
			}
		}(w)
	}

	// The input stream is shared by all spouts (shuffle grouping from the
	// data source to the spouts), so slab draws are serialized with a
	// mutex — one lock per slab, not per message.
	var genMu sync.Mutex
	var emitted int64
	nextSlab := func(dst []string) int {
		genMu.Lock()
		defer genMu.Unlock()
		if rem := limit - emitted; rem < int64(len(dst)) {
			dst = dst[:rem]
		}
		if len(dst) == 0 {
			return 0
		}
		n := stream.NextBatch(gen, dst)
		emitted += int64(n)
		return n
	}

	start := time.Now()
	var spouts sync.WaitGroup
	for s := 0; s < cfg.Sources; s++ {
		spouts.Add(1)
		go func(s int) {
			defer spouts.Done()
			p := parts[s]
			keys := make([]string, cfg.Batch)
			dsts := make([]int, cfg.Batch)
			counts := make([]int, cfg.Workers)
			pending := make([][]tuple, cfg.Workers)
			for {
				n := nextSlab(keys)
				if n == 0 {
					return
				}
				// Acquire the whole slab's in-flight slots (Batch ≤ Window,
				// so this always completes once acks drain).
				for i := 0; i < n; i++ {
					window[s] <- struct{}{}
				}
				core.RouteBatch(p, keys[:n], dsts)
				// Group the slab by destination bolt. The per-bolt slabs are
				// freshly allocated: ownership transfers over the channel.
				for i := range counts {
					counts[i] = 0
				}
				for _, w := range dsts[:n] {
					counts[w]++
				}
				now := time.Now()
				for i := 0; i < n; i++ {
					w := dsts[i]
					if pending[w] == nil {
						pending[w] = make([]tuple, 0, counts[w])
					}
					pending[w] = append(pending[w], tuple{key: keys[i], emitted: now, src: int32(s)})
				}
				for w, sl := range pending {
					if sl != nil {
						in[w] <- sl
						pending[w] = nil
					}
				}
			}
		}(s)
	}

	spouts.Wait()
	for _, ch := range in {
		close(ch)
	}
	bolts.Wait()
	elapsed := time.Since(start)

	res := Result{
		Algorithm: cfg.Algorithm,
		Elapsed:   elapsed,
		Loads:     make([]int64, cfg.Workers),
	}
	pooled := metrics.NewQuantiles(1 << 16)
	for w := range stats {
		st := &stats[w]
		res.Loads[w] = st.count
		res.Completed += st.count
		if st.count > 0 {
			if avg := st.sum / time.Duration(st.count); avg > res.MaxAvgLatency {
				res.MaxAvgLatency = avg
			}
			// Merge per-bolt reservoirs by re-sampling their quantile grid;
			// cheap and adequate for reporting.
			for _, q := range []float64{0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75, 0.85, 0.95} {
				pooled.Add(st.lat.Quantile(q))
			}
		}
	}
	res.P50 = time.Duration(pooled.Quantile(0.50))
	res.P95 = time.Duration(pooled.Quantile(0.95))
	res.P99 = time.Duration(pooled.Quantile(0.99))
	res.Imbalance = metrics.Imbalance(res.Loads)
	if sec := elapsed.Seconds(); sec > 0 {
		res.Throughput = float64(res.Completed) / sec
	}
	gen.Reset()
	return res, nil
}

// simulateWork burns the configured service time.
func simulateWork(d time.Duration, spin bool) {
	if d <= 0 {
		return
	}
	if !spin {
		time.Sleep(d)
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}
