// Package dspe is a miniature distributed stream processing engine in
// the style of Apache Storm, used for deployment-style (wall-clock)
// measurements of the partitioning algorithms. The topology mirrors the
// paper's cluster experiment: spout goroutines (sources) emit a keyed
// stream through a partitioner into bolt goroutines (workers) connected
// by bounded channels (Storm's bounded executor queues → backpressure),
// with an ack-based per-source in-flight window (max spout pending) and
// a fixed per-message processing cost at the workers.
//
// The data plane is batched end to end: spouts draw key slabs from the
// generator (stream.NextBatch), route them in one RouteBatch call, and
// send []tuple slabs — one per destination bolt — over the channels, so
// per-message channel and scheduler overhead is amortized by Config.Batch.
//
// With Config.AggWindow set the topology becomes the two-phase windowed
// aggregation the paper's overhead analysis is about: bolts keep
// digest-keyed partial counts per tumbling window (internal/aggregation)
// and flush closed windows as batched partial slabs to a reducer stage,
// which merges partials across bolts — the per-key merge fan-in is
// exactly the replication factor the partitioner paid — and emits
// finals. Result.Agg reports the measured aggregation traffic, merge
// work and reducer memory; Result.AggReducerUtil the fraction of the
// run the reducer spent merging.
//
// Tuples carry the KeyDigest routing computed (RouteBatchDigests), so a
// key's bytes are scanned exactly once per message end to end: the
// bolt-side partial tables and the reducer both operate on the carried
// digest. Spouts additionally broadcast watermark ticks to EVERY bolt
// when the global emission sequence enters a new window, so a bolt that
// happens to receive no traffic still flushes its closed windows —
// window-close latency depends on stream progress, not on which bolts
// the partitioner favors.
//
// Unlike internal/eventsim, results here depend on the host: use this
// engine to demonstrate the system end-to-end, and eventsim for
// reproducible numbers.
package dspe

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"slb/internal/aggregation"
	"slb/internal/core"
	"slb/internal/metrics"
	"slb/internal/stream"
)

// Config describes one topology run.
type Config struct {
	// Workers is the number of bolt instances.
	Workers int
	// Sources is the number of spout instances.
	Sources int
	// Algorithm is the partitioner name (core.Names).
	Algorithm string
	// Core carries seed/θ/ε; Workers is filled in from this config.
	Core core.Config
	// ServiceTime is the simulated per-message processing cost at a bolt
	// (the paper uses 1 ms). Zero means no artificial delay.
	ServiceTime time.Duration
	// QueueLen is the per-bolt input channel capacity in tuple slabs;
	// 0 means 128.
	QueueLen int
	// Window is the per-spout in-flight cap; 0 means 100.
	Window int
	// Batch is the spout emission slab size: keys drawn, routed and sent
	// per iteration. 0 means 64; it is clamped to Window so a spout can
	// always acquire its whole slab's in-flight slots.
	Batch int
	// Messages caps the emitted messages; 0 means the generator length.
	Messages int64
	// Spin selects busy-wait instead of time.Sleep for the service time:
	// more faithful CPU saturation, but burns host CPU. Tests keep it off.
	Spin bool
	// SlowFactor optionally multiplies the service time of individual
	// bolts (failure injection: stragglers). nil means homogeneous.
	SlowFactor map[int]float64
	// AggWindow, when positive, turns the topology into a two-phase
	// windowed count aggregation: every bolt keeps per-key partial counts
	// per tumbling window of AggWindow tuples (window ids stamped at the
	// spout from the global emission sequence) and flushes closed windows
	// as batched partial slabs to a reducer stage, which merges partials
	// by key digest and emits finals. Zero disables aggregation.
	AggWindow int64
	// OnFinal, when set (and AggWindow > 0), receives every merged final
	// from the reducer. It is called from the single reducer goroutine.
	OnFinal func(aggregation.Final)
}

func (c Config) withDefaults() (Config, error) {
	if c.Workers <= 0 || c.Sources <= 0 {
		return c, fmt.Errorf("dspe: Workers and Sources must be positive")
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 128
	}
	if c.Window <= 0 {
		c.Window = 100
	}
	if c.Batch <= 0 {
		c.Batch = 64
	}
	if c.Batch > c.Window {
		c.Batch = c.Window
	}
	c.Core.Workers = c.Workers
	return c, nil
}

// Result reports wall-clock performance of a topology run.
type Result struct {
	Algorithm string
	Completed int64
	Elapsed   time.Duration
	// Throughput is completed messages per wall-clock second.
	Throughput float64
	// MaxAvgLatency is the maximum per-bolt mean latency.
	MaxAvgLatency time.Duration
	// P50/P95/P99 are end-to-end latency percentiles across all tuples.
	P50, P95, P99 time.Duration
	// Loads is the per-bolt processed-tuple count.
	Loads []int64
	// Imbalance is the paper's I(m) over the run.
	Imbalance float64
	// Agg reports the reducer-side aggregation cost (zero unless
	// Config.AggWindow was set): partial traffic, merge work and memory
	// high-water marks.
	Agg aggregation.ReducerStats
	// AggReplication is the measured state replication factor: distinct
	// (window, key, worker) triples per distinct (window, key) pair,
	// counted exactly (metrics.DigestReplicas). 1 for KG by construction;
	// up to Workers for W-Choices hot keys. 0 when aggregation is off.
	AggReplication float64
	// AggReducerUtil is the fraction of the run's wall clock the reducer
	// goroutine spent merging partial slabs: its measured utilization
	// (0 when aggregation is off). Near 1 means the reducer is the
	// bottleneck stage.
	AggReducerUtil float64
	// AggTotal is the sum of all final counts; with aggregation enabled
	// it must equal Completed (every processed tuple is counted exactly
	// once — window close is exact, not approximate).
	AggTotal int64
}

// tuple is one in-flight message. With aggregation on it carries the
// KeyDigest routing computed, so bolts never re-scan the key bytes. A
// negative src marks a watermark tick: window holds the id of the
// window the global emission sequence has entered, there is no key and
// no ack, and the receiving bolt just flushes its closed windows.
type tuple struct {
	key     string
	dig     core.KeyDigest
	emitted time.Time
	window  int64 // tumbling-window id (0 unless Config.AggWindow > 0)
	src     int32
}

// boltStats is written only by the owning bolt goroutine.
type boltStats struct {
	lat   *metrics.Quantiles
	count int64
	sum   time.Duration
}

// Run executes the topology until the stream is exhausted and fully
// acked, then reports aggregate metrics.
func Run(gen stream.Generator, cfg Config) (Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	parts := make([]core.Partitioner, cfg.Sources)
	for i := range parts {
		srcCfg := cfg.Core
		srcCfg.Instance = i
		p, err := core.New(cfg.Algorithm, srcCfg)
		if err != nil {
			return Result{}, err
		}
		parts[i] = p
	}

	gen.Reset()
	limit := gen.Len()
	if cfg.Messages > 0 && cfg.Messages < limit {
		limit = cfg.Messages
	}

	// Channels carry tuple slabs: one send per (slab, destination bolt)
	// instead of one per message.
	in := make([]chan []tuple, cfg.Workers)
	for i := range in {
		in[i] = make(chan []tuple, cfg.QueueLen)
	}
	// Per-source window semaphores: spouts acquire before emitting, bolts
	// release after processing (the ack path).
	window := make([]chan struct{}, cfg.Sources)
	for i := range window {
		window[i] = make(chan struct{}, cfg.Window)
	}

	svcFor := func(w int) time.Duration {
		d := cfg.ServiceTime
		if f, ok := cfg.SlowFactor[w]; ok {
			d = time.Duration(float64(d) * f)
		}
		return d
	}

	// Aggregation (two-phase) plumbing: bolts flush closed windows as
	// partial slabs over a bounded channel to one reducer goroutine —
	// the same slab-ownership-transfer discipline as the data plane.
	var (
		aggCh      chan []aggregation.Partial
		aggStats   aggregation.ReducerStats
		aggTotal   int64
		aggRepl    float64
		reduceBusy time.Duration
		reduceWG   sync.WaitGroup
	)
	if cfg.AggWindow > 0 {
		aggCh = make(chan []aggregation.Partial, 2*cfg.Workers)
		reduceWG.Add(1)
		go func() {
			defer reduceWG.Done()
			// Windows close on completeness (merged count == window size),
			// so each (window, key) yields exactly one Final regardless of
			// how bolts interleave (see aggregation.Driver).
			drv := aggregation.NewDriver(cfg.Workers, cfg.AggWindow, limit)
			for slab := range aggCh {
				t0 := time.Now()
				drv.Merge(slab, cfg.OnFinal)
				reduceBusy += time.Since(t0)
			}
			t0 := time.Now()
			drv.Finish(cfg.OnFinal)
			reduceBusy += time.Since(t0)
			aggStats, aggRepl, aggTotal = drv.Stats(), drv.Replication(), drv.Total()
		}()
	}

	stats := make([]boltStats, cfg.Workers)
	var bolts sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		bolts.Add(1)
		go func(w int) {
			defer bolts.Done()
			st := &stats[w]
			st.lat = metrics.NewQuantiles(1 << 14)
			var acc *aggregation.Accumulator
			if cfg.AggWindow > 0 {
				acc = aggregation.NewAccumulator(w)
			}
			// flushClosed closes windows below `before` and hands the
			// partials to the reducer (freshly allocated slab: ownership
			// transfers over the channel).
			flushClosed := func(before int64) {
				ps := acc.FlushBefore(before, make([]aggregation.Partial, 0, acc.Entries()))
				if len(ps) > 0 {
					aggCh <- ps
				}
			}
			for slab := range in[w] {
				for _, tp := range slab {
					if tp.src < 0 {
						// Watermark tick: the global emission sequence entered
						// window tp.window, so (with one window of slack, same
						// as the data path below) older windows are complete at
						// this bolt even if it never sees another tuple.
						if acc != nil {
							flushClosed(tp.window - 1)
						}
						continue
					}
					simulateWork(svcFor(w), cfg.Spin)
					if acc != nil {
						if wm, ok := acc.Watermark(); ok && tp.window > wm {
							// Watermark advance: flush with one window of slack,
							// so slabs from lagging spouts (bounded reordering:
							// at most one drawn-but-unsent slab per spout) do not
							// fragment a window already flushed.
							flushClosed(tp.window - 1)
						}
						acc.Add(tp.window, tp.dig, tp.key)
					}
					lat := time.Since(tp.emitted)
					st.lat.Add(float64(lat))
					st.count++
					st.sum += lat
					<-window[tp.src] // ack
				}
			}
			if acc != nil {
				if ps := acc.FlushAll(nil); len(ps) > 0 {
					aggCh <- ps
				}
			}
		}(w)
	}

	// The input stream is shared by all spouts (shuffle grouping from the
	// data source to the spouts); see slabSource.
	nextSlab, _ := slabSource(gen, limit)

	// tickedWindow is the highest window id announced to the bolts via
	// watermark ticks; the spout whose slab first enters a window
	// broadcasts the tick (idempotent at the bolts: flushing an already
	// flushed window is a no-op).
	var tickedWindow atomic.Int64

	start := time.Now()
	var spouts sync.WaitGroup
	for s := 0; s < cfg.Sources; s++ {
		spouts.Add(1)
		go func(s int) {
			defer spouts.Done()
			p := parts[s]
			keys := make([]string, cfg.Batch)
			dsts := make([]int, cfg.Batch)
			var digs []core.KeyDigest
			if cfg.AggWindow > 0 {
				digs = make([]core.KeyDigest, cfg.Batch)
			}
			counts := make([]int, cfg.Workers)
			pending := make([][]tuple, cfg.Workers)
			for {
				n, base := nextSlab(keys)
				if n == 0 {
					return
				}
				// Acquire the whole slab's in-flight slots (Batch ≤ Window,
				// so this always completes once acks drain).
				for i := 0; i < n; i++ {
					window[s] <- struct{}{}
				}
				if cfg.AggWindow > 0 {
					// Hash-once: routing computes the digests the bolts'
					// partial tables (and the reducer) will key by.
					core.RouteBatchDigests(p, keys[:n], digs, dsts)
					// Broadcast a watermark tick to every bolt when the global
					// emission sequence enters a window no spout announced yet,
					// so bolts the partitioner starves still flush on time.
					if cw := (base + int64(n) - 1) / cfg.AggWindow; cw > tickedWindow.Load() {
						for {
							seen := tickedWindow.Load()
							if cw <= seen {
								break
							}
							if tickedWindow.CompareAndSwap(seen, cw) {
								for w := range in {
									in[w] <- []tuple{{src: -1, window: cw}}
								}
								break
							}
						}
					}
				} else {
					core.RouteBatch(p, keys[:n], dsts)
				}
				// Group the slab by destination bolt. The per-bolt slabs are
				// freshly allocated: ownership transfers over the channel.
				for i := range counts {
					counts[i] = 0
				}
				for _, w := range dsts[:n] {
					counts[w]++
				}
				now := time.Now()
				for i := 0; i < n; i++ {
					w := dsts[i]
					if pending[w] == nil {
						pending[w] = make([]tuple, 0, counts[w])
					}
					tp := tuple{key: keys[i], emitted: now, src: int32(s)}
					if cfg.AggWindow > 0 {
						tp.window = (base + int64(i)) / cfg.AggWindow
						tp.dig = digs[i]
					}
					pending[w] = append(pending[w], tp)
				}
				for w, sl := range pending {
					if sl != nil {
						in[w] <- sl
						pending[w] = nil
					}
				}
			}
		}(s)
	}

	spouts.Wait()
	for _, ch := range in {
		close(ch)
	}
	bolts.Wait()
	elapsed := time.Since(start)
	// The reducer keeps draining after the bolts finish (queued slabs,
	// end-of-stream flushes, Finish); its utilization denominator must
	// cover that tail, so it is snapshotted after the join.
	total := elapsed
	if aggCh != nil {
		close(aggCh)
		reduceWG.Wait()
		total = time.Since(start)
	}

	res := Result{
		Algorithm:      cfg.Algorithm,
		Elapsed:        elapsed,
		Loads:          make([]int64, cfg.Workers),
		Agg:            aggStats,
		AggTotal:       aggTotal,
		AggReplication: aggRepl,
	}
	if cfg.AggWindow > 0 && total > 0 {
		res.AggReducerUtil = float64(reduceBusy) / float64(total)
	}
	for w := range stats {
		st := &stats[w]
		res.Loads[w] = st.count
		res.Completed += st.count
		if st.count > 0 {
			if avg := st.sum / time.Duration(st.count); avg > res.MaxAvgLatency {
				res.MaxAvgLatency = avg
			}
		}
	}
	pooled := poolLatency(stats)
	res.P50 = time.Duration(pooled.Quantile(0.50))
	res.P95 = time.Duration(pooled.Quantile(0.95))
	res.P99 = time.Duration(pooled.Quantile(0.99))
	res.Imbalance = metrics.Imbalance(res.Loads)
	if sec := elapsed.Seconds(); sec > 0 {
		res.Throughput = float64(res.Completed) / sec
	}
	gen.Reset()
	return res, nil
}

// poolLatency merges the per-bolt latency reservoirs into one pooled
// estimator with count-proportional weighting (metrics.Quantiles.Merge):
// a bolt that processed 100× the tuples contributes 100× the mass.
// The previous implementation re-sampled each bolt's 0.05–0.95 quantile
// grid with equal weight, which (a) capped the pooled P99 at the largest
// single-bolt p95 — the tail above p95 was simply discarded — and
// (b) gave a bolt that processed 50 tuples the same vote as one that
// processed 50k, so the hot bolt's queueing tail vanished from the
// pooled percentiles exactly when it mattered.
func poolLatency(stats []boltStats) *metrics.Quantiles {
	pooled := metrics.NewQuantiles(1 << 16)
	for w := range stats {
		if stats[w].count > 0 {
			pooled.Merge(stats[w].lat)
		}
	}
	return pooled
}

// slabSource returns a draw function over the shared generator — slab
// draws are serialized with a mutex (one lock per slab, not per
// message), capped at limit total keys, and each draw also returns the
// slab's base position in the global emission sequence, from which the
// spout derives tumbling-window ids — plus an accessor for the total
// drawn so far. Both Run and Pipeline.Run feed their spouts from one
// of these.
func slabSource(gen stream.Generator, limit int64) (draw func(dst []string) (int, int64), drawn func() int64) {
	var mu sync.Mutex
	var emitted int64
	draw = func(dst []string) (int, int64) {
		mu.Lock()
		defer mu.Unlock()
		if rem := limit - emitted; rem < int64(len(dst)) {
			dst = dst[:rem]
		}
		if len(dst) == 0 {
			return 0, emitted
		}
		base := emitted
		n := stream.NextBatch(gen, dst)
		emitted += int64(n)
		return n, base
	}
	drawn = func() int64 {
		mu.Lock()
		defer mu.Unlock()
		return emitted
	}
	return draw, drawn
}

// simulateWork burns the configured service time.
func simulateWork(d time.Duration, spin bool) {
	if d <= 0 {
		return
	}
	if !spin {
		time.Sleep(d)
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}
