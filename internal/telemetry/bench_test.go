package telemetry

import "testing"

// The hot-path contract: handle updates are single atomic ops with no
// allocation. TestHotPathZeroAllocs is the hard assert (runs in tier-1
// tests); the benchmarks track the per-op cost in the benchtime=1x CI
// job alongside the routing steady-state set.

func TestHotPathZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", ExpBuckets(1, 2, 16))
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(3)
		g.Set(1.5)
		h.Observe(42)
	}); n != 0 {
		t.Fatalf("hot path allocated %.1f allocs/op, want 0", n)
	}
	snapAllocs := testing.AllocsPerRun(100, func() { _ = r.Snapshot() })
	if snapAllocs == 0 {
		t.Fatal("snapshot unexpectedly reported 0 allocs (harness broken?)")
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	g := NewRegistry().Gauge("g")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h", ExpBuckets(1, 2, 16))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i & 1023))
	}
}

func BenchmarkSnapshot(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 32; i++ {
		r.Counter("c", L("i", string(rune('a'+i)))).Add(int64(i))
	}
	h := r.Histogram("h", ExpBuckets(1, 2, 16))
	h.Observe(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot()
	}
}
