package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"slb/internal/metrics"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("msgs_total", L("algo", "D-C"))
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	// Same (name, labels) in any order returns the same handle.
	c2 := r.Counter("msgs_total", L("algo", "D-C"))
	if c2 != c {
		t.Fatal("re-registration returned a different counter handle")
	}
	g := r.Gauge("depth", L("plane", "ring"), L("edge", "data"))
	g.Set(7)
	g.Add(0.5)
	if got := g.Value(); got != 7.5 {
		t.Fatalf("gauge = %v, want 7.5", got)
	}
	g2 := r.Gauge("depth", L("edge", "data"), L("plane", "ring"))
	if g2 != g {
		t.Fatal("label order changed handle identity")
	}

	snap := r.Snapshot()
	if v := snap.Value("msgs_total", L("algo", "D-C")); v != 42 {
		t.Fatalf("snapshot counter = %v, want 42", v)
	}
	if v := snap.Value("depth", L("plane", "ring"), L("edge", "data")); v != 7.5 {
		t.Fatalf("snapshot gauge = %v, want 7.5", v)
	}
	if _, ok := snap.Get("missing"); ok {
		t.Fatal("Get on missing series returned ok")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("x")
}

func TestGaugeFuncReplaceAndCollect(t *testing.T) {
	r := NewRegistry()
	v := 3.0
	r.GaugeFunc("live", func() float64 { return v })
	if got := r.Snapshot().Value("live"); got != 3 {
		t.Fatalf("gauge func = %v, want 3", got)
	}
	// Re-binding to fresh run state replaces the collector.
	r.GaugeFunc("live", func() float64 { return 9 })
	if got := r.Snapshot().Value("live"); got != 9 {
		t.Fatalf("replaced gauge func = %v, want 9", got)
	}
}

func TestHistogramBucketsAndDelta(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	before := r.Snapshot()
	m, ok := before.Get("lat")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	wantCounts := []int64{2, 1, 1, 1} // <=1, <=2, <=4, +Inf
	if len(m.Buckets) != len(wantCounts) {
		t.Fatalf("bucket count = %d, want %d", len(m.Buckets), len(wantCounts))
	}
	for i, w := range wantCounts {
		if m.Buckets[i].Count != w {
			t.Fatalf("bucket[%d] = %d, want %d", i, m.Buckets[i].Count, w)
		}
	}
	if m.Count != 5 || m.Sum != 106 {
		t.Fatalf("count/sum = %d/%v, want 5/106", m.Count, m.Sum)
	}
	if !math.IsInf(m.Buckets[3].UpperBound, 1) {
		t.Fatal("last bucket bound should be +Inf")
	}

	h.Observe(1)
	h.Observe(8)
	d := r.Snapshot().Delta(before)
	dm, _ := d.Get("lat")
	if dm.Count != 2 || dm.Sum != 9 {
		t.Fatalf("delta count/sum = %d/%v, want 2/9", dm.Count, dm.Sum)
	}
	if dm.Buckets[0].Count != 1 || dm.Buckets[3].Count != 1 {
		t.Fatalf("delta buckets = %+v", dm.Buckets)
	}
}

func TestDeltaCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	g := r.Gauge("depth")
	c.Add(10)
	g.Set(5)
	prev := r.Snapshot()
	c.Add(7)
	g.Set(3)
	d := r.Snapshot().Delta(prev)
	if v := d.Value("n"); v != 7 {
		t.Fatalf("counter delta = %v, want 7", v)
	}
	// Gauges pass through as current values, not differences.
	if v := d.Value("depth"); v != 3 {
		t.Fatalf("gauge in delta = %v, want 3", v)
	}
}

// TestConcurrentHammer drives N goroutines into shared counters,
// gauges, and histograms while a snapshotter reads concurrently, then
// asserts exact totals once writers quiesce. Run under -race in CI.
func TestConcurrentHammer(t *testing.T) {
	const (
		goroutines = 8
		perG       = 10000
	)
	r := NewRegistry()
	c := r.Counter("hits")
	h := r.Histogram("vals", LinearBuckets(10, 10, 9))
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Background snapshotter: every snapshot must be internally
	// sane (monotone counter, bucket counts summing to Count).
	var snapErr error
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		var lastHits float64
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := r.Snapshot()
			if v := s.Value("hits"); v < lastHits {
				snapErr = &nonMonotoneErr{prev: lastHits, cur: v}
				return
			} else {
				lastHits = v
			}
		}
	}()

	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			g := r.Gauge("per_goroutine_last") // shared handle on purpose
			rng := rand.New(rand.NewSource(int64(id)))
			for j := 0; j < perG; j++ {
				c.Inc()
				v := rng.Float64() * 100
				h.Observe(v)
				g.Set(v)
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()
	if snapErr != nil {
		t.Fatalf("snapshot consistency: %v", snapErr)
	}

	s := r.Snapshot()
	if v := s.Value("hits"); v != goroutines*perG {
		t.Fatalf("hits = %v, want %d", v, goroutines*perG)
	}
	m, _ := s.Get("vals")
	if m.Count != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", m.Count, goroutines*perG)
	}
	var bucketTotal int64
	for _, b := range m.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != m.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, m.Count)
	}
}

type nonMonotoneErr struct{ prev, cur float64 }

func (e *nonMonotoneErr) Error() string { return "counter went backwards" }

// TestHistogramQuantilesVsReservoir pins the bucket-interpolated
// quantile estimator against metrics.Quantiles (exact at these sizes)
// on known distributions: the estimate must land within one bucket
// width of the exact quantile.
func TestHistogramQuantilesVsReservoir(t *testing.T) {
	cases := []struct {
		name string
		gen  func(r *rand.Rand) float64
	}{
		{"uniform", func(r *rand.Rand) float64 { return r.Float64() * 1000 }},
		{"exponential-ish", func(r *rand.Rand) float64 { return math.Min(r.ExpFloat64()*120, 999) }},
		{"bimodal", func(r *rand.Rand) float64 {
			if r.Intn(2) == 0 {
				return 50 + r.Float64()*50
			}
			return 700 + r.Float64()*100
		}},
	}
	const width = 25.0
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reg := NewRegistry()
			h := reg.Histogram("v", LinearBuckets(width, width, 40))
			q := metrics.NewQuantiles(1 << 16)
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 20000; i++ {
				v := tc.gen(rng)
				h.Observe(v)
				q.Add(v)
			}
			m, _ := reg.Snapshot().Get("v")
			for _, p := range []float64{0.1, 0.5, 0.9, 0.99} {
				got := m.Quantile(p)
				want := q.Quantile(p)
				if math.Abs(got-want) > width {
					t.Fatalf("q%.2f: histogram %.2f vs reservoir %.2f (> one bucket width %v apart)",
						p, got, want, width)
				}
			}
		})
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("v", []float64{1, 2})
	m, _ := reg.Snapshot().Get("v")
	if !math.IsNaN(m.Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
	h.Observe(100) // overflow bucket only
	m, _ = reg.Snapshot().Get("v")
	if got := m.Quantile(0.5); got != 2 {
		t.Fatalf("overflow-only quantile = %v, want lower bound 2", got)
	}
	c, _ := Snapshot{}.Get("nope")
	if !math.IsNaN(c.Quantile(0.5)) {
		t.Fatal("missing metric quantile should be NaN")
	}
}

func TestWriteTextAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("msgs_total", L("algo", "W-C")).Add(5)
	r.Gauge("depth").Set(2.5)
	h := r.Histogram("lat_us", []float64{10, 100})
	h.Observe(7)
	h.Observe(50)

	var txt bytes.Buffer
	if err := r.Snapshot().WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	out := txt.String()
	for _, want := range []string{
		"msgs_total{algo=W-C} 5",
		"depth 2.5",
		"lat_us_bucket{le=10} 1",
		"lat_us_bucket{le=100} 2",
		"lat_us_bucket{le=+Inf} 2",
		"lat_us_sum 57",
		"lat_us_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("text export missing %q in:\n%s", want, out)
		}
	}

	var js bytes.Buffer
	if err := r.Snapshot().WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal(js.Bytes(), &round); err != nil {
		t.Fatalf("json round-trip: %v", err)
	}
	if v := round.Value("msgs_total", L("algo", "W-C")); v != 5 {
		t.Fatalf("json round-trip counter = %v, want 5", v)
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(2, 2, 3)
	if lin[0] != 2 || lin[1] != 4 || lin[2] != 6 {
		t.Fatalf("LinearBuckets = %v", lin)
	}
	exp := ExpBuckets(1, 4, 4)
	if exp[3] != 64 {
		t.Fatalf("ExpBuckets = %v", exp)
	}
}
