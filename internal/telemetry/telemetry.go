// Package telemetry is the label-aware metric registry every slb engine
// feeds: lock-free counters, gauges, and fixed-bucket histograms with
// point-in-time snapshots and text/JSON export.
//
// Design constraints (pinned by benchmarks in this package and by the
// instrumented-routing benchmark at the repo root):
//
//   - Hot-path updates (Counter.Add, Gauge.Set, Histogram.Observe) are
//     single atomic operations on pre-registered handles: no locks, no
//     map lookups, and 0 allocs/op in steady state. All registration
//     cost (label canonicalisation, map insertion) is paid once, up
//     front, when the handle is created.
//   - Handles are identified by name plus a sorted label set. Asking
//     the registry for the same (name, labels) pair returns the same
//     handle, so repeated engine runs accumulate into one series.
//   - Snapshot() is safe to call concurrently with writers. It reads
//     every series with atomic loads and returns an immutable copy, so
//     a background snapshotter (cmd/slbsoak) can watch a live run
//     without pausing it. Histograms are read bucket-by-bucket without
//     a global lock, so a snapshot taken mid-Observe may be torn by a
//     single in-flight observation — acceptable for monitoring, and
//     exact once writers quiesce.
//
// Metric kinds follow the usual monitoring conventions: counters are
// monotonically non-decreasing (Snapshot.Delta subtracts a previous
// snapshot to get per-interval rates), gauges are point-in-time values
// (optionally computed at snapshot time via GaugeFunc, e.g. a ring
// queue depth read from ring.SPSC.Len), and histograms count
// observations into a fixed bucket layout chosen at registration.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key=value dimension of a metric series.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind discriminates the metric types in a Snapshot.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Counter is a monotonically non-decreasing integer series. The zero
// value is usable, but handles should come from Registry.Counter so
// they appear in snapshots.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Negative deltas are not checked — callers own
// monotonicity.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current total.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a point-in-time float64 value stored as atomic bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetInt stores an integer value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Add atomically adds d to the gauge.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into a fixed, sorted bucket layout.
// Bucket i counts observations v <= bounds[i]; one implicit overflow
// bucket counts the rest. Sum is accumulated via CAS so Mean can be
// recovered from a snapshot.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last = overflow (+Inf)
	sumBits atomic.Uint64
	count   atomic.Int64
}

// Observe records one observation. Linear scan over the (small, fixed)
// bucket layout plus two atomic ops: 0 allocs.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values so far.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// LinearBuckets returns n upper bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	if n <= 0 || width <= 0 {
		panic("telemetry: LinearBuckets needs n > 0 and width > 0")
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = start + float64(i)*width
	}
	return b
}

// ExpBuckets returns n upper bounds start, start*factor, ...
func ExpBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		panic("telemetry: ExpBuckets needs n > 0, start > 0, factor > 1")
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

type series struct {
	name   string
	labels []Label // sorted by key
	kind   Kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // gauge collector; called at snapshot time
}

// Registry holds named metric series. All methods are safe for
// concurrent use; handle creation takes a lock, handle updates do not.
type Registry struct {
	mu   sync.Mutex
	byID map[string]*series
	ord  []*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]*series)}
}

// seriesID canonicalises (name, labels): labels sorted by key, rendered
// prometheus-style. Duplicate label keys are a programmer error.
func seriesID(name string, labels []Label) (string, []Label) {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	if len(labels) == 0 {
		return name, nil
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			if ls[i-1].Key == l.Key {
				panic("telemetry: duplicate label key " + l.Key + " on " + name)
			}
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String(), ls
}

func (r *Registry) lookup(name string, labels []Label, kind Kind) *series {
	id, ls := seriesID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.byID[id]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("telemetry: %s registered as %s, requested as %s", id, s.kind, kind))
		}
		return s
	}
	s := &series{name: name, labels: ls, kind: kind}
	r.byID[id] = s
	r.ord = append(r.ord, s)
	return s
}

// Counter returns the counter for (name, labels), creating it on first
// use. The same arguments always return the same handle.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	s := r.lookup(name, labels, KindCounter)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	s := r.lookup(name, labels, KindGauge)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.fn != nil {
		panic("telemetry: " + name + " already registered as GaugeFunc")
	}
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// GaugeFunc registers fn as a collector evaluated at snapshot time —
// the pull-side alternative to Gauge for values that already live in a
// concurrency-safe structure (e.g. ring.SPSC.Len, channel backlogs).
// Re-registering the same series replaces the function, so engines can
// re-bind collectors to fresh run state on every run.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	if fn == nil {
		panic("telemetry: nil GaugeFunc for " + name)
	}
	s := r.lookup(name, labels, KindGauge)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.gauge != nil {
		panic("telemetry: " + name + " already registered as Gauge")
	}
	s.fn = fn
}

// Histogram returns the histogram for (name, labels) with the given
// bucket upper bounds (sorted ascending; an overflow bucket is added
// implicitly). Bounds must match the first registration.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram " + name + " needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram " + name + " bounds not strictly ascending")
		}
	}
	s := r.lookup(name, labels, KindHistogram)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.hist == nil {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		s.hist = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	} else if len(s.hist.bounds) != len(bounds) {
		panic("telemetry: histogram " + name + " re-registered with different bucket layout")
	}
	return s.hist
}

// Bucket is one histogram bucket in a snapshot: the count of
// observations v <= UpperBound (non-cumulative, per bucket).
// UpperBound is +Inf for the overflow bucket.
type Bucket struct {
	UpperBound float64 `json:"-"`
	Count      int64   `json:"count"`
}

// bucketJSON carries the upper bound as a string so the +Inf overflow
// bucket survives JSON encoding (encoding/json rejects infinities).
type bucketJSON struct {
	UpperBound string `json:"le"`
	Count      int64  `json:"count"`
}

// MarshalJSON encodes the bound as a string ("+Inf" for overflow).
func (b Bucket) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.UpperBound, 1) {
		le = trimFloat(b.UpperBound)
	}
	return json.Marshal(bucketJSON{UpperBound: le, Count: b.Count})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var bj bucketJSON
	if err := json.Unmarshal(data, &bj); err != nil {
		return err
	}
	if bj.UpperBound == "+Inf" {
		b.UpperBound = math.Inf(1)
	} else {
		v, err := strconv.ParseFloat(bj.UpperBound, 64)
		if err != nil {
			return err
		}
		b.UpperBound = v
	}
	b.Count = bj.Count
	return nil
}

// Metric is one series captured by Snapshot.
type Metric struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Kind   string  `json:"kind"`

	// Value holds counter totals (as float64) and gauge values.
	Value float64 `json:"value"`

	// Histogram-only fields.
	Sum     float64  `json:"sum,omitempty"`
	Count   int64    `json:"count,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Label returns the value of the label with the given key ("" if
// absent).
func (m *Metric) Label(key string) string {
	for _, l := range m.Labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// Quantile estimates the q-quantile (0 <= q <= 1) of a histogram
// metric by linear interpolation inside the owning bucket, mirroring
// the usual monitoring-system estimator. The first bucket interpolates
// from 0; the overflow bucket reports its lower bound (the largest
// finite upper bound). Returns NaN for empty or non-histogram metrics.
func (m *Metric) Quantile(q float64) float64 {
	if len(m.Buckets) == 0 || m.Count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(m.Count)
	var cum int64
	for i, b := range m.Buckets {
		prev := cum
		cum += b.Count
		if float64(cum) < target {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = m.Buckets[i-1].UpperBound
		}
		hi := b.UpperBound
		if math.IsInf(hi, 1) {
			// Overflow bucket: no finite upper edge to
			// interpolate toward.
			return lo
		}
		if b.Count == 0 {
			return hi
		}
		return lo + (hi-lo)*(target-float64(prev))/float64(b.Count)
	}
	last := m.Buckets[len(m.Buckets)-1]
	if math.IsInf(last.UpperBound, 1) && len(m.Buckets) > 1 {
		return m.Buckets[len(m.Buckets)-2].UpperBound
	}
	return last.UpperBound
}

// Snapshot is an immutable point-in-time capture of a registry.
type Snapshot struct {
	Metrics []Metric `json:"metrics"`
}

// Snapshot captures every registered series. Safe to call concurrently
// with hot-path writers; GaugeFunc collectors run on the snapshotting
// goroutine.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	ord := make([]*series, len(r.ord))
	copy(ord, r.ord)
	r.mu.Unlock()

	snap := Snapshot{Metrics: make([]Metric, 0, len(ord))}
	for _, s := range ord {
		m := Metric{Name: s.name, Labels: s.labels, Kind: s.kind.String()}
		switch s.kind {
		case KindCounter:
			m.Value = float64(s.counter.Value())
		case KindGauge:
			if s.fn != nil {
				m.Value = s.fn()
			} else {
				m.Value = s.gauge.Value()
			}
		case KindHistogram:
			h := s.hist
			m.Sum = h.Sum()
			m.Count = h.Count()
			m.Buckets = make([]Bucket, len(h.counts))
			for i := range h.counts {
				ub := math.Inf(1)
				if i < len(h.bounds) {
					ub = h.bounds[i]
				}
				m.Buckets[i] = Bucket{UpperBound: ub, Count: h.counts[i].Load()}
			}
		}
		snap.Metrics = append(snap.Metrics, m)
	}
	return snap
}

// Get returns the metric with the given name and labels (order
// independent), or false.
func (s Snapshot) Get(name string, labels ...Label) (Metric, bool) {
	id, _ := seriesID(name, labels)
	for i := range s.Metrics {
		mid, _ := seriesID(s.Metrics[i].Name, s.Metrics[i].Labels)
		if mid == id {
			return s.Metrics[i], true
		}
	}
	return Metric{}, false
}

// Value returns the value of the named counter/gauge series (0 if
// absent).
func (s Snapshot) Value(name string, labels ...Label) float64 {
	m, ok := s.Get(name, labels...)
	if !ok {
		return 0
	}
	return m.Value
}

// Delta returns s minus prev: counters and histogram counts/sums are
// subtracted series-by-series (series absent from prev pass through
// unchanged), gauges keep their current value. Use it to turn
// cumulative totals into per-interval rates.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	prevByID := make(map[string]*Metric, len(prev.Metrics))
	for i := range prev.Metrics {
		id, _ := seriesID(prev.Metrics[i].Name, prev.Metrics[i].Labels)
		prevByID[id] = &prev.Metrics[i]
	}
	out := Snapshot{Metrics: make([]Metric, len(s.Metrics))}
	for i := range s.Metrics {
		m := s.Metrics[i]
		if len(m.Buckets) > 0 {
			bs := make([]Bucket, len(m.Buckets))
			copy(bs, m.Buckets)
			m.Buckets = bs
		}
		id, _ := seriesID(m.Name, m.Labels)
		if p, ok := prevByID[id]; ok && m.Kind != KindGauge.String() {
			m.Value -= p.Value
			m.Sum -= p.Sum
			m.Count -= p.Count
			for j := range m.Buckets {
				if j < len(p.Buckets) {
					m.Buckets[j].Count -= p.Buckets[j].Count
				}
			}
		}
		out.Metrics[i] = m
	}
	return out
}

// WriteText renders the snapshot in a prometheus-flavoured text form:
// one "name{k=v,...} value" line per series, histograms expanded into
// _bucket/_sum/_count lines with cumulative le buckets.
func (s Snapshot) WriteText(w io.Writer) error {
	for i := range s.Metrics {
		m := &s.Metrics[i]
		base, _ := seriesID(m.Name, m.Labels)
		if m.Kind != KindHistogram.String() {
			if _, err := fmt.Fprintf(w, "%s %v\n", base, trimFloat(m.Value)); err != nil {
				return err
			}
			continue
		}
		var cum int64
		for _, b := range m.Buckets {
			cum += b.Count
			le := "+Inf"
			if !math.IsInf(b.UpperBound, 1) {
				le = trimFloat(b.UpperBound)
			}
			id, _ := seriesID(m.Name+"_bucket", append(append([]Label{}, m.Labels...), L("le", le)))
			if _, err := fmt.Fprintf(w, "%s %d\n", id, cum); err != nil {
				return err
			}
		}
		sumID, _ := seriesID(m.Name+"_sum", m.Labels)
		cntID, _ := seriesID(m.Name+"_count", m.Labels)
		if _, err := fmt.Fprintf(w, "%s %v\n%s %d\n", sumID, trimFloat(m.Sum), cntID, m.Count); err != nil {
			return err
		}
	}
	return nil
}

func trimFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}

// WriteJSON renders the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
