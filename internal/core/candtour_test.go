package core

import (
	"fmt"
	"testing"
)

// shortRunStream builds a stream that chops two hot keys into many
// 1–2 message runs separated by cold-key traffic — the regime the
// persistent candidate tournament exists for. A long opening run per
// hot key seeds the cache (useCandTree needs ≥ 3 messages cold).
func shortRunStream(msgs int) []string {
	keys := make([]string, 0, msgs)
	hot := []string{"hot-alpha", "hot-beta"}
	for _, h := range hot {
		for i := 0; i < 8; i++ {
			keys = append(keys, h)
		}
	}
	rng := uint64(0xfeed)
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}
	for len(keys) < msgs {
		h := hot[next(2)]
		for r := 1 + next(2); r > 0 && len(keys) < msgs; r-- {
			keys = append(keys, h)
		}
		for c := 1 + next(3); c > 0 && len(keys) < msgs; c-- {
			keys = append(keys, fmt.Sprintf("cold-%d", next(500)))
		}
	}
	return keys[:msgs]
}

// TestCandTourShortRunParity pins that the persistent tournament's
// repair path routes bit-identically to the forced scan on a stream of
// deliberately short head runs, through the batched API with a slab
// size that splits runs across batch boundaries. Greedy-7 under
// LoadIndexTree caches tournaments for every head run (c = 7 < the
// crossover), so 1–2 message runs exercise the replay path constantly.
func TestCandTourShortRunParity(t *testing.T) {
	keys := shortRunStream(30000)
	for _, algo := range []string{"Greedy-7", "D-C"} {
		for _, n := range []int{16, 200} {
			t.Run(fmt.Sprintf("%s/n=%d", algo, n), func(t *testing.T) {
				scan, tree := scanTreePartitioners(t, algo, n)
				const slab = 61
				dstS := make([]int, slab)
				dstT := make([]int, slab)
				for i := 0; i < len(keys); i += slab {
					end := i + slab
					if end > len(keys) {
						end = len(keys)
					}
					RouteBatch(scan, keys[i:end], dstS)
					RouteBatch(tree, keys[i:end], dstT)
					for j := 0; j < end-i; j++ {
						if dstS[j] != dstT[j] {
							t.Fatalf("msg %d (key %q): scan → %d, tree → %d", i+j, keys[i+j], dstS[j], dstT[j])
						}
					}
				}
			})
		}
	}
}

// TestCandTourLogRollover drives one core far past candTourLogMax
// increments between runs of a cached head key, forcing generation
// bumps (replay impossible, entry invalidated) and verifying routing
// stays bit-exact with the scan through the rebuild.
func TestCandTourLogRollover(t *testing.T) {
	const target = 4 * candTourLogMax
	keys := make([]string, 0, target+candTourLogMax+512)
	for len(keys) < target {
		for i := 0; i < 6; i++ {
			keys = append(keys, "hot-alpha")
		}
		// Enough cold traffic to roll the modification log several
		// times before the hot key returns.
		for i := 0; i < candTourLogMax+257; i++ {
			keys = append(keys, fmt.Sprintf("cold-%d", i%911))
		}
	}
	scan, tree := scanTreePartitioners(t, "Greedy-7", 32)
	const slab = 128
	dstS := make([]int, slab)
	dstT := make([]int, slab)
	for i := 0; i < len(keys); i += slab {
		end := i + slab
		if end > len(keys) {
			end = len(keys)
		}
		RouteBatch(scan, keys[i:end], dstS)
		RouteBatch(tree, keys[i:end], dstT)
		for j := 0; j < end-i; j++ {
			if dstS[j] != dstT[j] {
				t.Fatalf("msg %d (key %q): scan → %d, tree → %d", i+j, keys[i+j], dstS[j], dstT[j])
			}
		}
	}
}

// TestCandTourRepair unit-tests the repair path directly: build a
// tournament for one digest, interleave increments on candidate and
// non-candidate workers (all logged via bump), then route another run
// and check it against a scan replica of the same load history.
func TestCandTourRepair(t *testing.T) {
	const n = 64
	mk := func() *greedy {
		g := &greedy{n: n, loads: make([]int64, n), lidx: LoadIndexTree}
		g.tree = newLoadTree(g.loads)
		return g
	}
	g, ref := mk(), mk()
	cand := []int32{3, 17, 5, 40, 9, 22, 31}
	dg := KeyDigest(0xabcdef0123456789)

	dst := make([]int, 5)
	g.routeCandsTree(dg, cand, dst)
	for range dst {
		ref.routeCands(cand)
	}
	if !g.tourReady(dg, len(cand)) {
		t.Fatal("tournament not cached after first run")
	}
	// Foreign-key traffic (within the ≤ c replay budget): bumps on
	// candidates and non-candidates.
	for _, w := range []int{5, 5, 40, 2, 60, 9} {
		g.bump(w)
		ref.bump(w)
	}
	if !g.tourReady(dg, len(cand)) {
		t.Fatal("tournament not repairable after few increments")
	}
	// Short run: must take the repair path and match the scan replica.
	short := make([]int, 2)
	g.routeCandsTree(dg, cand, short)
	for m := range short {
		if want := ref.routeCands(cand); short[m] != want {
			t.Fatalf("repaired route %d: got %d, want %d", m, short[m], want)
		}
	}
	for w := range g.loads {
		if g.loads[w] != ref.loads[w] {
			t.Fatalf("loads diverged at worker %d: %d vs %d", w, g.loads[w], ref.loads[w])
		}
	}
}
