// Package core implements the paper's stream partitioning algorithms:
// the baselines Key Grouping (KG), Shuffle Grouping (SG) and Partial Key
// Grouping (PKG, Nasir et al. ICDE 2015), and the contribution of the
// reproduced paper — D-Choices, W-Choices and the Round-Robin head
// baseline — which detect the head of the key distribution online with a
// SpaceSaving sketch and give hot keys d ≥ 2 choices (Algorithm 1).
//
// A Partitioner instance embodies the state of ONE source (sender): load
// estimates are local to the sender, exactly as in the paper ("the load
// is determined based only on local information available at the
// sender"). Simulations create one instance per source from a shared
// Config.
//
// # The hash-once lifecycle
//
// Routing operates on KeyDigest, the 64-bit digest of a key's bytes
// (hashing.Digest). A key is digested exactly ONCE per message, at the
// source, and the digest then travels with the message through every
// later layer: all d candidate workers, the sketch's monitored-entry
// table, the batch path, the engines' tuples and the aggregation
// tables derive from that one digest — source → route → aggregate →
// reduce, with no second scan of the key bytes anywhere. The paper's
// correctness invariant — all senders map a key to the same candidate
// workers — therefore reads: same digest → same candidates. The digest
// is a pure, seed-independent function of the key bytes, and candidate
// derivation depends only on (digest, Seed), never on Instance, so the
// invariant holds across senders by construction. Distinct keys share
// a digest only with probability ≈ 2⁻⁶⁴ per pair; such keys are
// routed, aggregated and counted as one.
//
// The APIs expose both ends of the lifecycle. Per message: Route is a
// thin wrapper (digest once, then route), and RouteDigest (see
// DigestRouter) is the carried-digest form for callers that already
// hold the digest. Batched: RouteBatch (see BatchPartitioner) amortizes
// sketch maintenance and candidate derivation over runs of identical
// keys, and RouteBatchDigests (see DigestBatchPartitioner) additionally
// hands the caller the digests routing computed, so downstream layers
// (windowed aggregation, re-keying) reuse them instead of re-scanning.
// All batch variants reproduce Route's decisions message for message.
package core

import (
	"fmt"
	"math"
	"sort"

	"slb/internal/analysis"
	"slb/internal/hashing"
	"slb/internal/spacesaving"
)

// KeyDigest is the 64-bit digest every routing layer identifies keys by;
// see hashing.KeyDigest.
type KeyDigest = hashing.KeyDigest

// Digest returns the canonical digest of a key: one scan of the key
// bytes. All candidate buckets and sketch lookups derive from it.
func Digest(key string) KeyDigest { return hashing.Digest(key) }

// Partitioner routes each message of a keyed stream to one of n workers.
// Implementations are single-goroutine: each source owns one instance.
type Partitioner interface {
	// Route returns the worker in [0, Workers()) for one message with the
	// given key, updating any internal state (local loads, sketches).
	Route(key string) int
	// Workers returns n, the number of downstream workers.
	Workers() int
	// Name returns the paper's symbol for the algorithm (KG, SG, PKG,
	// D-C, W-C, RR).
	Name() string
}

// DigestRouter is implemented by partitioners that can route a message
// whose key was already digested, the per-message half of the hash-once
// lifecycle: a caller that carries the digest alongside the key (an
// engine tuple, a flushed aggregation partial) routes without a second
// scan of the key bytes. dg must equal Digest(key); key is still
// required because the head sketches monitor key identities. All
// partitioners in this package implement it, and Route(key) is always
// RouteDigest(Digest(key), key).
type DigestRouter interface {
	RouteDigest(dg KeyDigest, key string) int
}

// RouteDigest routes one pre-digested message through p, using its
// native digest path when available. The fallback for foreign
// Partitioner implementations is plain Route, which re-digests — exact,
// just without the hash-once saving.
func RouteDigest(p Partitioner, dg KeyDigest, key string) int {
	if dr, ok := p.(DigestRouter); ok {
		return dr.RouteDigest(dg, key)
	}
	return p.Route(key)
}

// Config carries the common parameters of Table III.
type Config struct {
	// Workers is n, the number of downstream operator instances.
	Workers int
	// Seed derives the hash family and any sampling; fixed seed means
	// exactly reproducible routing.
	Seed uint64
	// Instance is the index of this sender among its peers. It offsets
	// the starting phase of the round-robin schemes (SG, RR) so that
	// multiple senders do not hit the same worker in lockstep — Storm
	// starts each task at a random position. It does NOT affect hashing:
	// all senders must map a key (digest) to the same candidate workers.
	Instance int
	// Theta is the head frequency threshold θ; 0 means the paper's
	// default 1/(5n).
	Theta float64
	// Epsilon is the imbalance tolerance ε of the d-solver; 0 means the
	// paper's default 1e-4.
	Epsilon float64
	// SketchCapacity is the SpaceSaving capacity; 0 means 4·⌈1/θ⌉,
	// comfortably above the 1/θ needed to catch every head key.
	SketchCapacity int
	// SolveEvery is how many observed messages may elapse between
	// re-computations of d by FINDOPTIMALCHOICES in D-Choices; 0 means
	// 1024. The solve also reruns whenever the head set changes size.
	SolveEvery int
	// SketchWindow, when positive, switches head tracking to a sliding
	// two-generation SpaceSaving over the most recent 1–2 windows of the
	// stream (extension for drifting workloads: bounded adaptation
	// latency). 0 keeps the paper's insertion-only sketch.
	SketchWindow uint64
	// LoadIndex selects the argmin structure behind whole-vector load
	// scans (the W-Choices head path, D-Choices at d ≥ n) and large
	// candidate lists: LoadIndexAuto (0, the default) uses the packed
	// conditional-move scan below the measured crossover (n = 128,
	// see loadtree.go) and the O(log n) tournament load tree at or
	// above it; LoadIndexScan forces the scan (requires Workers <
	// 65536, the packing limit); LoadIndexTree forces the tree.
	// Routing decisions are bit-identical in every mode.
	LoadIndex int
}

// maxAutoSketchCapacity bounds the derived sketch capacity 4·⌈1/θ⌉; a θ
// small enough to exceed it would silently overflow the int arithmetic
// (or allocate a sketch larger than memory), so it is rejected instead.
const maxAutoSketchCapacity = 1 << 28

// withDefaults validates the configuration and resolves zero fields to
// the paper's defaults. Invalid values panic with a description of the
// offending field: a partitioner built from a nonsensical config would
// route garbage silently, which is strictly worse than failing loudly at
// construction.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		panic("core: Config.Workers must be positive")
	}
	if c.LoadIndex < LoadIndexAuto || c.LoadIndex > LoadIndexTree {
		panic(fmt.Sprintf("core: Config.LoadIndex must be LoadIndexAuto, LoadIndexScan or LoadIndexTree; got %d", c.LoadIndex))
	}
	// The packed scan encodes (load << 16 | worker) in one int64, so it
	// cannot represent ≥ 65536 workers; the tournament tree has no such
	// limit, and LoadIndexAuto routes every larger n to it. Only a
	// FORCED scan is rejected.
	if c.LoadIndex == LoadIndexScan && c.Workers >= 1<<packShift {
		panic(fmt.Sprintf("core: Config.LoadIndex=LoadIndexScan requires Workers below %d (packed argmin encoding); got %d", 1<<packShift, c.Workers))
	}
	if math.IsNaN(c.Theta) || c.Theta < 0 {
		panic(fmt.Sprintf("core: Config.Theta must be ≥ 0 (0 selects the default 1/(5n)); got %v", c.Theta))
	}
	if math.IsNaN(c.Epsilon) || c.Epsilon < 0 {
		panic(fmt.Sprintf("core: Config.Epsilon must be ≥ 0 (0 selects the default 1e-4); got %v", c.Epsilon))
	}
	if c.SketchCapacity < 0 {
		panic(fmt.Sprintf("core: Config.SketchCapacity must be ≥ 0 (0 selects the default 4·⌈1/θ⌉); got %d", c.SketchCapacity))
	}
	if c.SolveEvery < 0 {
		panic(fmt.Sprintf("core: Config.SolveEvery must be ≥ 0 (0 selects the default 1024); got %d", c.SolveEvery))
	}
	if c.Theta == 0 {
		c.Theta = 1.0 / (5 * float64(c.Workers))
	}
	if c.Epsilon == 0 {
		c.Epsilon = 1e-4
	}
	if c.SketchCapacity == 0 {
		raw := 4 * (1/c.Theta + 1)
		if raw > maxAutoSketchCapacity {
			panic(fmt.Sprintf("core: Config.Theta %v is too small to derive a sketch capacity (4·⌈1/θ⌉ > %d); set Config.SketchCapacity explicitly", c.Theta, maxAutoSketchCapacity))
		}
		c.SketchCapacity = int(raw)
	}
	if c.SolveEvery == 0 {
		c.SolveEvery = 1024
	}
	return c
}

// Names of all algorithms, in the paper's presentation order.
var Names = []string{"KG", "SG", "PKG", "D-C", "W-C", "RR"}

// New constructs a partitioner by its paper symbol.
func New(name string, cfg Config) (Partitioner, error) {
	switch name {
	case "KG":
		return NewKeyGrouping(cfg), nil
	case "SG":
		return NewShuffleGrouping(cfg), nil
	case "PKG":
		return NewPKG(cfg), nil
	case "D-C":
		return NewDChoices(cfg), nil
	case "W-C":
		return NewWChoices(cfg), nil
	case "RR":
		return NewRoundRobin(cfg), nil
	}
	return nil, fmt.Errorf("core: unknown partitioner %q", name)
}

// ---------------------------------------------------------------------------
// Baselines

// KeyGrouping sends all messages of a key to one hashed worker.
type KeyGrouping struct {
	n      int
	family *hashing.Family
}

// NewKeyGrouping returns a KG partitioner.
func NewKeyGrouping(cfg Config) *KeyGrouping {
	cfg = cfg.withDefaults()
	return &KeyGrouping{n: cfg.Workers, family: hashing.NewFamily(1, cfg.Seed)}
}

// Route implements Partitioner.
func (k *KeyGrouping) Route(key string) int {
	return k.RouteDigest(hashing.Digest(key), key)
}

// RouteDigest implements DigestRouter: one mix of the carried digest.
func (k *KeyGrouping) RouteDigest(dg KeyDigest, _ string) int {
	return k.family.BucketDigest(0, dg, k.n)
}

// Workers implements Partitioner.
func (k *KeyGrouping) Workers() int { return k.n }

// Name implements Partitioner.
func (k *KeyGrouping) Name() string { return "KG" }

// ShuffleGrouping distributes messages round-robin, ignoring keys.
type ShuffleGrouping struct {
	n    int
	next int
}

// NewShuffleGrouping returns an SG partitioner. The starting offset is
// derived from the seed and the sender instance so distinct sources
// interleave across workers instead of marching in lockstep.
func NewShuffleGrouping(cfg Config) *ShuffleGrouping {
	cfg = cfg.withDefaults()
	return &ShuffleGrouping{n: cfg.Workers, next: phaseOffset(cfg)}
}

// phaseOffset spreads sender instances around the worker ring.
func phaseOffset(cfg Config) int {
	return int((cfg.Seed + uint64(cfg.Instance)*7919) % uint64(cfg.Workers))
}

// Route implements Partitioner.
func (s *ShuffleGrouping) Route(string) int {
	w := s.next
	s.next++
	if s.next == s.n {
		s.next = 0
	}
	return w
}

// RouteDigest implements DigestRouter (SG ignores keys and digests).
func (s *ShuffleGrouping) RouteDigest(KeyDigest, string) int { return s.Route("") }

// Workers implements Partitioner.
func (s *ShuffleGrouping) Workers() int { return s.n }

// Name implements Partitioner.
func (s *ShuffleGrouping) Name() string { return "SG" }

// ---------------------------------------------------------------------------
// Greedy-d core

// greedy holds the state shared by all load-aware schemes: the hash
// family, this sender's local load vector, and a candidate scratch
// buffer for the batch path (so steady-state routing never allocates).
// Schemes that argmin over the whole vector (W-C's head path, D-C at
// d ≥ n, ForcedD, Oracle) additionally carry the tournament load index
// (see loadtree.go) when the worker count warrants it; tree == nil
// means every argmin is a scan and increments are plain.
type greedy struct {
	n      int
	family *hashing.Family
	loads  []int64
	digs   []hashing.KeyDigest // scratch: per-batch digests (grows to the largest batch seen)
	lidx   int8                // Config.LoadIndex (crossover policy for candidate tournaments)
	tree   *loadTree           // full-vector load index, nil below the crossover
	ctree  []int32             // scratch: oversized candidate tournaments (grows to the largest list)

	// Persistent candidate-tournament state (loadtree.go). clogOn is set
	// by the first routeCandsTree call; from then on bump appends every
	// load increment to clog so cached tournaments can be repaired by
	// replay instead of rebuilt. Whenever clogOn is true the full-vector
	// tree is attached (useCandTree requires LoadIndexTree — which
	// forces it — or c ≥ crossover ≤ n, which auto-attaches it), so no
	// increment can bypass bump and stale a cached tournament.
	ctours  []candTour
	clog    []int32
	clogGen uint32
	clogOn  bool

	// Plain (single-goroutine, like the partitioner itself) argmin-path
	// counters, surfaced through RouteStats: messages routed via a
	// tournament tree (full-vector or candidate-subset) vs a linear
	// scan (packed full-vector or branchy candidate scan). One int64
	// increment on paths that cost tens of ns — below measurement noise.
	nTreeMin int64
	nScanMin int64
}

func newGreedy(cfg Config) greedy {
	return greedy{
		n:      cfg.Workers,
		family: hashing.NewFamily(cfg.Workers, cfg.Seed),
		loads:  make([]int64, cfg.Workers),
		lidx:   int8(cfg.LoadIndex),
	}
}

// enableLoadIndex attaches the tournament load index when the
// configuration calls for it; only the schemes that ever argmin over
// the whole vector call this (PKG, RR, SG and KG never do, so they
// never pay the per-increment maintenance).
func (g *greedy) enableLoadIndex(cfg Config) {
	if cfg.LoadIndex == LoadIndexScan {
		return
	}
	if cfg.LoadIndex == LoadIndexTree || g.n >= loadIndexCrossover {
		g.tree = newLoadTree(g.loads)
	}
}

// bump accounts one message on worker w, maintaining the load index
// when present. Every load increment of a tree-carrying scheme must go
// through here (or replicate the fix), or the index goes stale.
func (g *greedy) bump(w int) {
	g.loads[w]++
	if g.tree != nil {
		g.tree.fix(w)
	}
	if g.clogOn {
		if len(g.clog) >= candTourLogMax {
			g.clogGen++ // cached tournaments rebuild on next use
			g.clog = g.clog[:0]
		}
		g.clog = append(g.clog, int32(w))
	}
}

// routeGreedyDigest applies the Greedy-d process: among the candidate
// workers F_1(key)..F_d(key) — derived from the digest, one mix each —
// pick the one with the lowest local load (first lowest wins, matching
// "ties broken arbitrarily"), then account for the message.
func (g *greedy) routeGreedyDigest(dg KeyDigest, d int) int {
	best := g.family.BucketDigest(0, dg, g.n)
	bestLoad := g.loads[best]
	for i := 1; i < d; i++ {
		w := g.family.BucketDigest(i, dg, g.n)
		if g.loads[w] < bestLoad {
			best, bestLoad = w, g.loads[w]
		}
	}
	g.bump(best)
	return best
}

// Argmin scans pack (load << packShift) | position into one integer, so
// a single branchless min (the compiler emits conditional moves) yields
// both the minimum load and — because position rises monotonically
// during the scan — the FIRST position attaining it, which is exactly
// the sequential first-lowest-wins tie-break. Valid while positions fit
// packShift bits and loads stay below 2⁴⁷ (a per-sender message count no
// real run approaches). Larger worker counts use the tournament load
// tree instead (loadtree.go), which packs nothing; withDefaults rejects
// them only when LoadIndexScan is forced.
const (
	packShift = 16
	packMask  = 1<<packShift - 1
)

// maxPacked is an identity element for packed argmin accumulators.
const maxPacked = int64(1)<<62 - 1

// routeCands routes one message among precomputed candidates (a cached,
// deduplicated candidate list from the batch path), with the same
// first-lowest-wins tie-break as routeGreedyDigest. A plain branchy
// scan wins here: the data-dependent loads[cand[i]] gathers leave the
// rarely-taken compare branch well predicted, measurably beating the
// packed conditional-move variant routeAll uses.
func (g *greedy) routeCands(cand []int32) int {
	g.nScanMin++
	loads := g.loads
	best := int(cand[0])
	bestLoad := loads[best]
	for _, w32 := range cand[1:] {
		w := int(w32)
		if loads[w] < bestLoad {
			best, bestLoad = w, loads[w]
		}
	}
	g.bump(best)
	return best
}

// scratchDigests returns the partitioner-owned digest slab for an
// n-message batch: the buffer RouteBatch hands to RouteBatchDigests
// when the caller did not supply its own. It grows to the largest batch
// ever seen, so steady state allocates nothing.
func (g *greedy) scratchDigests(n int) []hashing.KeyDigest {
	if cap(g.digs) < n {
		g.digs = make([]hashing.KeyDigest, n)
	}
	return g.digs[:n]
}

// routeAll picks the globally least-loaded worker (W-Choices head path:
// "there is no need to hash the keys in the head"). With the load index
// attached this is an O(1) root read plus an O(log n) repair — the
// sublinear path that keeps head routing flat as n grows into the
// thousands. Below the crossover (tree == nil) it falls back to the
// packed scan: unlike routeCands — whose data-dependent gathers favor a
// plain branchy scan — the contiguous load scan is latency-bound, so
// four packed (load, index) conditional-move chains measurably beat the
// branchy argmin there. Both paths implement the same first-lowest-wins
// tie-break, bit-exactly.
func (g *greedy) routeAll() int {
	if t := g.tree; t != nil {
		g.nTreeMin++
		w := t.min()
		g.bump(w)
		return w
	}
	g.nScanMin++
	loads := g.loads
	b0 := loads[0] << packShift
	b1, b2, b3 := maxPacked, maxPacked, maxPacked
	i := 1
	for ; i+3 < len(loads); i += 4 {
		if p := loads[i]<<packShift | int64(i); p < b0 {
			b0 = p
		}
		if p := loads[i+1]<<packShift | int64(i+1); p < b1 {
			b1 = p
		}
		if p := loads[i+2]<<packShift | int64(i+2); p < b2 {
			b2 = p
		}
		if p := loads[i+3]<<packShift | int64(i+3); p < b3 {
			b3 = p
		}
	}
	for ; i < len(loads); i++ {
		if p := loads[i]<<packShift | int64(i); p < b0 {
			b0 = p
		}
	}
	if b1 < b0 {
		b0 = b1
	}
	if b3 < b2 {
		b2 = b3
	}
	if b2 < b0 {
		b0 = b2
	}
	w := int(b0 & packMask)
	loads[w]++
	return w
}

// Loads exposes a copy of the sender-local load vector (for tests and
// instrumentation).
func (g *greedy) Loads() []int64 {
	out := make([]int64, len(g.loads))
	copy(out, g.loads)
	return out
}

// PKG is Partial Key Grouping: the Greedy-d process with d = 2 for every
// key.
type PKG struct {
	greedy
}

// NewPKG returns a PKG partitioner.
func NewPKG(cfg Config) *PKG {
	cfg = cfg.withDefaults()
	return &PKG{greedy: newGreedy(cfg)}
}

// Route implements Partitioner.
func (p *PKG) Route(key string) int { return p.routeGreedyDigest(hashing.Digest(key), 2) }

// RouteDigest implements DigestRouter.
func (p *PKG) RouteDigest(dg KeyDigest, _ string) int { return p.routeGreedyDigest(dg, 2) }

// Workers implements Partitioner.
func (p *PKG) Workers() int { return p.n }

// Name implements Partitioner.
func (p *PKG) Name() string { return "PKG" }

// ---------------------------------------------------------------------------
// Head tracking (shared by D-C, W-C, RR)

// minHeadCount is the minimum estimated count before a key may be
// classified as head. With very few observations, relative frequencies
// are pure noise (the first key seen has estimated frequency 1); a
// count floor makes detection latency inversely proportional to a key's
// true frequency, so the hot keys that actually matter are caught after
// a handful of messages while marginal keys — for which a brief
// misclassification is harmless — take longer.
const minHeadCount = 4

// HeadTracker runs the per-sender SpaceSaving instance and answers "is
// this key currently in the head H = {k : p̂_k ≥ θ}?" (Algorithm 1,
// UPDATESPACESAVING). With Config.SketchWindow set it uses the sliding
// two-generation sketch instead, bounding adaptation latency under
// concept drift.
type HeadTracker struct {
	sketch *spacesaving.Summary  // insertion-only mode (the paper's)
	win    *spacesaving.Windowed // sliding mode (drift extension)
	theta  float64
	// headMsgs counts messages classified as head (plain counter,
	// single-goroutine like the owning partitioner; see RouteStats).
	// The per-message path counts in observeDigest; the batch paths
	// count whole head segments at the crossing split.
	headMsgs int64
}

func newHeadTracker(cfg Config) HeadTracker {
	h := HeadTracker{theta: cfg.Theta}
	if cfg.SketchWindow > 0 {
		h.win = spacesaving.NewWindowed(cfg.SketchCapacity, cfg.SketchWindow)
	} else {
		h.sketch = spacesaving.New(cfg.SketchCapacity)
	}
	return h
}

// observe feeds the key and reports head membership.
func (h *HeadTracker) observe(key string) bool {
	return h.observeDigest(hashing.Digest(key), key)
}

// observeDigest is observe keyed by a pre-computed digest: the hot-path
// form, one sketch-table operation and no key-byte scans.
func (h *HeadTracker) observeDigest(dg KeyDigest, key string) bool {
	if h.win != nil {
		h.win.OfferDigest(dg, key)
		c, _, ok := h.win.CountDigest(dg)
		if !ok || c < minHeadCount {
			return false
		}
		if float64(c) >= h.theta*float64(h.win.N()) {
			h.headMsgs++
			return true
		}
		return false
	}
	c := h.sketch.OfferDigest(dg, key)
	if h.isHeadAt(c, h.sketch.N()) {
		h.headMsgs++
		return true
	}
	return false
}

// noteHead accounts n head-classified messages from a batch path's
// crossing split (the arithmetic predicate never goes through
// observeDigest there).
func (h *HeadTracker) noteHead(n int) { h.headMsgs += int64(n) }

// sketchStats returns the occupancy, capacity, and lifetime eviction
// count (head churn) of the tracker's sketch, in either mode.
func (h *HeadTracker) sketchStats() (length, capacity int, evictions uint64) {
	if h.win != nil {
		return h.win.Len(), h.win.Capacity(), h.win.Evictions()
	}
	return h.sketch.Len(), h.sketch.Capacity(), h.sketch.Evictions()
}

// isHeadAt evaluates the head predicate for an arithmetic count/stream
// pair, with exactly the float comparison observeDigest performs. The
// batch path uses it to classify the remaining messages of a run without
// touching the sketch: within a run of one key (insertion-only mode)
// both the key's count and N advance by exactly 1 per message.
func (h *HeadTracker) isHeadAt(count, n uint64) bool {
	if count < minHeadCount {
		return false
	}
	return float64(count) >= h.theta*float64(n)
}

// maxMonotoneTheta bounds the θ for which the head predicate is
// provably monotone within a run of one key: per message the count
// grows by exactly 1 while the threshold θ·N grows by θ < 1, so once a
// run's messages enter the head they stay there. The margin (1−θ) also
// has to absorb the rounding error of θ·float64(N) — far below 0.01 for
// any reachable N — hence the 0.99 cutoff rather than 1.
const maxMonotoneTheta = 0.99

// canBatch reports whether run-level batching of offers preserves exact
// per-message semantics. It requires the paper's insertion-only sketch
// (the sliding-window mode rotates generations at arbitrary offsets)
// and a θ in the monotone range (see maxMonotoneTheta); otherwise batch
// callers fall back to per-message routing.
func (h *HeadTracker) canBatch() bool {
	return h.sketch != nil && h.theta <= maxMonotoneTheta
}

// headCrossing returns the first message index m in [0, r) of a run at
// which the key enters the head, or r if it never does. Monotonicity
// (see maxMonotoneTheta) makes every message from the crossing on a
// head message, so callers route [0, cross) as tail and [cross, r) as
// head with no per-message predicate.
func (h *HeadTracker) headCrossing(c0, n0 uint64, r int) int {
	for m := 0; m < r; m++ {
		if h.isHeadAt(c0+uint64(m), n0+uint64(m)) {
			return m
		}
	}
	return r
}

// observeFirst offers the first message of a run and returns the
// post-offer count and stream length (insertion-only mode only).
func (h *HeadTracker) observeFirst(dg KeyDigest, key string) (count, n uint64) {
	return h.sketch.OfferDigest(dg, key), h.sketch.N()
}

// offerRest applies r deferred offers of a run's key in one sketch
// operation (insertion-only mode only; the key is monitored after
// observeFirst, so the offers are pure increments).
func (h *HeadTracker) offerRest(dg KeyDigest, key string, r uint64) {
	if r > 0 {
		h.sketch.OfferDigestN(dg, key, r)
	}
}

// observeRun offers a whole run of r identical messages in ONE sketch
// operation and returns the count and stream length as they stood just
// after the run's FIRST offer (insertion-only mode only). Within a run
// both advance by exactly 1 per message, so the final state determines
// the first: count₁ = countᵣ − (r−1), N₁ = Nᵣ − (r−1). Legal whenever
// nothing reads the sketch between the run's messages — true for every
// head-tracking scheme except D-Choices at a solver boundary, which
// uses observeFirst/offerRest instead.
func (h *HeadTracker) observeRun(dg KeyDigest, key string, r int) (count, n uint64) {
	c := h.sketch.OfferDigestN(dg, key, uint64(r))
	return c - uint64(r-1), h.sketch.N() - uint64(r-1)
}

// observed returns the stream mass the tracker's estimates refer to.
func (h *HeadTracker) observed() uint64 {
	if h.win != nil {
		return h.win.N()
	}
	return h.sketch.N()
}

// heavyHitters returns the current head entries.
func (h *HeadTracker) heavyHitters() []spacesaving.Entry {
	if h.win != nil {
		return h.win.HeavyHitters(h.theta)
	}
	return h.sketch.HeavyHitters(h.theta)
}

// headSnapshot returns the estimated head frequencies (non-increasing)
// and the estimated tail mass, both normalized by the observed stream
// length.
func (h *HeadTracker) headSnapshot() (head []float64, tailMass float64) {
	n := h.observed()
	if n == 0 {
		return nil, 1
	}
	entries := h.heavyHitters()
	head = make([]float64, len(entries))
	mass := 0.0
	for i, e := range entries {
		head[i] = float64(e.Count) / float64(n)
		mass += head[i]
	}
	// Estimates can overshoot; keep the vector a valid distribution.
	sort.Sort(sort.Reverse(sort.Float64Slice(head)))
	tailMass = 1 - mass
	if tailMass < 0 {
		tailMass = 0
	}
	return head, tailMass
}

// Merge folds another sender's sketch into this tracker, implementing the
// distributed heavy-hitters generalization: sources periodically exchange
// summaries so each sees (approximately) global frequencies. It is a
// no-op in sliding-window mode, where generations are not mergeable
// across senders.
func (h *HeadTracker) Merge(other *spacesaving.Summary) {
	if h.sketch == nil {
		return
	}
	h.sketch = h.sketch.Merge(other)
}

// Sketch exposes the tracker's sketch for merging by a coordinator
// (nil in sliding-window mode).
func (h *HeadTracker) Sketch() *spacesaving.Summary { return h.sketch }

// SetSketch replaces the tracker's sketch; the coordinator uses this to
// redistribute a merged global summary back to the senders. No-op in
// sliding-window mode.
func (h *HeadTracker) SetSketch(s *spacesaving.Summary) {
	if h.sketch == nil {
		return
	}
	h.sketch = s
}

// ---------------------------------------------------------------------------
// D-Choices

// DChoices gives head keys the minimal d ≥ 2 choices that satisfies
// Proposition 4.1, and tail keys 2 choices. When the solver concludes
// d ≥ n it degenerates to the W-Choices strategy, as prescribed.
type DChoices struct {
	greedy
	head       HeadTracker
	eps        float64
	solveEvery int

	d          int    // current number of choices for the head
	solved     bool   // whether d has ever been computed
	lastSolveN uint64 // sketch N at the last solve
	solves     int64  // FINDOPTIMALCHOICES runs (instrumentation)

	cache candCache // batch path: memoized head-key candidate lists

	// Hot-key memo: a private copy of the last candidate list used, so
	// the dominant key of a skewed stream revalidates with two compares
	// instead of a cache probe. The copy is immune to cache-slot
	// overwrites by colliding keys.
	lastDig   KeyDigest
	lastD     int32
	lastCands []int32
}

// NewDChoices returns a D-C partitioner.
func NewDChoices(cfg Config) *DChoices {
	cfg = cfg.withDefaults()
	p := &DChoices{
		greedy:     newGreedy(cfg),
		head:       newHeadTracker(cfg),
		eps:        cfg.Epsilon,
		solveEvery: cfg.SolveEvery,
		d:          2,
		cache:      newCandCache(cfg.Workers),
		lastCands:  make([]int32, 0, cfg.Workers),
	}
	p.enableLoadIndex(cfg)
	return p
}

// candMemoMax bounds the hot-key memo: memoizing means COPYING the
// list (that is what makes it immune to cache-slot overwrites by
// colliding keys), and once the solver picks d in the hundreds the
// per-switch copy costs more than the cache probe it saves — under an
// i.i.d. Zipf stream runs are short (expected 1/(1−p₁) messages), so
// the memo switches constantly. Large lists are served straight from
// the shared cache instead.
const candMemoMax = 64

// headCands returns the candidate list for a head key, through the
// hot-key memo and the shared cache.
func (p *DChoices) headCands(dg KeyDigest) []int32 {
	if p.lastDig == dg && p.lastD == int32(p.d) {
		return p.lastCands
	}
	c := p.cache.lookup(dg, p.d, p.family)
	if len(c) > candMemoMax {
		return c
	}
	p.lastDig = dg
	p.lastD = int32(p.d)
	p.lastCands = append(p.lastCands[:0], c...)
	return p.lastCands
}

// Route implements Partitioner (Algorithm 1 with D-CHOICES). It is the
// per-message thin wrapper: digest once, then route on the digest.
func (p *DChoices) Route(key string) int {
	return p.RouteDigest(hashing.Digest(key), key)
}

// RouteDigest implements DigestRouter.
func (p *DChoices) RouteDigest(dg KeyDigest, key string) int {
	if p.head.observeDigest(dg, key) {
		if p.findOptimalChoices() >= p.n {
			// Switching point: use the W-Choices strategy.
			return p.routeAll()
		}
		// Head keys route over the memoized deduplicated candidate
		// list instead of re-deriving d buckets per message: identical
		// decisions (a duplicate can never beat its first occurrence,
		// and list order is bucket order), but the dominant key of a
		// skewed stream revalidates with two compares instead of d
		// hash mixes.
		return p.routeCands(p.headCands(dg))
	}
	return p.routeGreedyDigest(dg, 2)
}

// findOptimalChoices returns the cached d, re-solving on the configured
// cadence. The solve itself is O(|sketch|·log + n·|H|), far too costly
// per message but negligible when amortized over SolveEvery messages.
func (p *DChoices) findOptimalChoices() int {
	n := p.head.observed()
	if p.solved && n-p.lastSolveN < uint64(p.solveEvery) {
		return p.d
	}
	p.solves++
	head, tail := p.head.headSnapshot()
	// Size the candidate cache by the head cardinality the sketch
	// actually observes, not by n: the snapshot is already in hand and
	// the solve cadence makes the (rare) regrow free.
	p.cache.ensureHeadCapacity(len(head))
	p.d = analysis.SolveD(head, tail, p.n, p.eps)
	if p.d < 2 {
		p.d = 2
	}
	p.solved = true
	p.lastSolveN = n
	return p.d
}

// solveDue reports whether a head message observed at post-offer stream
// length n would trigger a re-solve (the batch path uses it to sync the
// sketch before the solve reads it).
func (p *DChoices) solveDue(n uint64) bool {
	return !p.solved || n-p.lastSolveN >= uint64(p.solveEvery)
}

// D returns the current number of choices for head keys (instrumentation).
func (p *DChoices) D() int { return p.d }

// HeadTracker exposes the sender's sketch state for distributed merging.
func (p *DChoices) HeadTracker() *HeadTracker { return &p.head }

// Workers implements Partitioner.
func (p *DChoices) Workers() int { return p.n }

// Name implements Partitioner.
func (p *DChoices) Name() string { return "D-C" }

// ForcedD is the Greedy-d scheme with an externally fixed number of
// choices for head keys (tail keys keep 2). It is the experimental
// instrument behind Fig. 9: sweeping d from 2 to n to find the empirical
// minimum that matches W-Choices' imbalance, independently of the
// analytic solver.
type ForcedD struct {
	greedy
	head  HeadTracker
	d     int
	cache candCache // batch path: memoized head-key candidate lists
}

// NewForcedD returns a Greedy-d partitioner with exactly d choices for
// head keys. d is clamped to [2, n]; d = n uses the W-Choices fast path.
func NewForcedD(cfg Config, d int) *ForcedD {
	cfg = cfg.withDefaults()
	if d < 2 {
		d = 2
	}
	if d > cfg.Workers {
		d = cfg.Workers
	}
	p := &ForcedD{
		greedy: newGreedy(cfg),
		head:   newHeadTracker(cfg),
		d:      d,
		cache:  newCandCache(cfg.Workers),
	}
	p.enableLoadIndex(cfg)
	return p
}

// Route implements Partitioner.
func (p *ForcedD) Route(key string) int {
	return p.RouteDigest(hashing.Digest(key), key)
}

// RouteDigest implements DigestRouter.
func (p *ForcedD) RouteDigest(dg KeyDigest, key string) int {
	if p.head.observeDigest(dg, key) {
		if p.d == p.n {
			return p.routeAll()
		}
		// Cached deduplicated candidates, as in DChoices.RouteDigest:
		// identical decisions to a d-bucket derivation, fewer mixes.
		return p.routeCands(p.cache.lookup(dg, p.d, p.family))
	}
	return p.routeGreedyDigest(dg, 2)
}

// D returns the forced number of choices.
func (p *ForcedD) D() int { return p.d }

// Workers implements Partitioner.
func (p *ForcedD) Workers() int { return p.n }

// Name implements Partitioner.
func (p *ForcedD) Name() string { return fmt.Sprintf("Greedy-%d", p.d) }

// ---------------------------------------------------------------------------
// W-Choices

// WChoices routes head keys to the globally least-loaded worker (all n
// choices) and tail keys with 2 choices.
type WChoices struct {
	greedy
	head HeadTracker
}

// NewWChoices returns a W-C partitioner.
func NewWChoices(cfg Config) *WChoices {
	cfg = cfg.withDefaults()
	p := &WChoices{greedy: newGreedy(cfg), head: newHeadTracker(cfg)}
	p.enableLoadIndex(cfg)
	return p
}

// Route implements Partitioner (Algorithm 1 with W-CHOICES).
func (p *WChoices) Route(key string) int {
	return p.RouteDigest(hashing.Digest(key), key)
}

// RouteDigest implements DigestRouter.
func (p *WChoices) RouteDigest(dg KeyDigest, key string) int {
	if p.head.observeDigest(dg, key) {
		return p.routeAll()
	}
	return p.routeGreedyDigest(dg, 2)
}

// HeadTracker exposes the sender's sketch state for distributed merging.
func (p *WChoices) HeadTracker() *HeadTracker { return &p.head }

// Workers implements Partitioner.
func (p *WChoices) Workers() int { return p.n }

// Name implements Partitioner.
func (p *WChoices) Name() string { return "W-C" }

// Oracle is W-Choices with ground-truth head knowledge instead of the
// online sketch: the caller supplies the head membership predicate.
// It is an experimental upper bound used to quantify how much imbalance
// the SpaceSaving estimation error costs (ablation in DESIGN.md §6);
// it is not part of the paper's system (real systems do not know the
// distribution).
type Oracle struct {
	greedy
	isHead func(string) bool
}

// NewOracle returns an oracle-head partitioner. isHead must be a pure
// function of the key.
func NewOracle(cfg Config, isHead func(string) bool) *Oracle {
	cfg = cfg.withDefaults()
	if isHead == nil {
		panic("core: NewOracle requires a head predicate")
	}
	p := &Oracle{greedy: newGreedy(cfg), isHead: isHead}
	p.enableLoadIndex(cfg)
	return p
}

// Route implements Partitioner.
func (p *Oracle) Route(key string) int {
	if p.isHead(key) {
		return p.routeAll() // head messages never need the digest
	}
	return p.routeGreedyDigest(hashing.Digest(key), 2)
}

// RouteDigest implements DigestRouter.
func (p *Oracle) RouteDigest(dg KeyDigest, key string) int {
	if p.isHead(key) {
		return p.routeAll()
	}
	return p.routeGreedyDigest(dg, 2)
}

// Workers implements Partitioner.
func (p *Oracle) Workers() int { return p.n }

// Name implements Partitioner.
func (p *Oracle) Name() string { return "Oracle" }

// ---------------------------------------------------------------------------
// Round-Robin head baseline

// RoundRobin spreads head messages over all workers in a load-oblivious
// round-robin and routes the tail with 2 load-aware choices. It has the
// same memory cost as W-Choices but cannot compensate tail imbalance.
type RoundRobin struct {
	greedy
	head HeadTracker
	next int
}

// NewRoundRobin returns an RR partitioner.
func NewRoundRobin(cfg Config) *RoundRobin {
	cfg = cfg.withDefaults()
	return &RoundRobin{
		greedy: newGreedy(cfg),
		head:   newHeadTracker(cfg),
		next:   phaseOffset(cfg),
	}
}

// Route implements Partitioner.
func (p *RoundRobin) Route(key string) int {
	return p.RouteDigest(hashing.Digest(key), key)
}

// RouteDigest implements DigestRouter.
func (p *RoundRobin) RouteDigest(dg KeyDigest, key string) int {
	if p.head.observeDigest(dg, key) {
		return p.routeHeadRR()
	}
	return p.routeGreedyDigest(dg, 2)
}

// routeHeadRR routes one head message round-robin.
func (p *RoundRobin) routeHeadRR() int {
	w := p.next
	p.next++
	if p.next == p.n {
		p.next = 0
	}
	p.loads[w]++
	return w
}

// Workers implements Partitioner.
func (p *RoundRobin) Workers() int { return p.n }

// Name implements Partitioner.
func (p *RoundRobin) Name() string { return "RR" }
