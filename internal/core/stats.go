package core

// stats.go exposes the partitioners' internal path counters to the
// telemetry layer. The counters themselves are plain int64 fields —
// partitioners are single-goroutine by contract, and an atomic (or any
// shared write) on the routing hot path would violate the 0-alloc /
// ≤3%-overhead budget the root benchmarks pin. The bridge to shared
// telemetry is RouteRecorder: engines call it once per routed batch,
// publishing the *deltas* since the previous publish into atomic
// telemetry counters. Hot path stays private and cheap; observability
// is amortized over whole slabs.

import (
	"time"

	"slb/internal/telemetry"
)

// RouteStats is a point-in-time copy of one partitioner's internal
// routing counters. All values are cumulative over the partitioner's
// lifetime; gauges (sketch occupancy, current d) are instantaneous.
type RouteStats struct {
	// TreeMinPicks counts messages whose worker came out of a
	// tournament structure (the O(log n) full-vector load tree or the
	// candidate-subset tournament); ScanMinPicks counts messages argmin'd
	// by a linear scan (the packed full-vector scan or the branchy
	// candidate scan). Their sum is the number of head-path argmins, not
	// total messages: the 2-choice tail path is neither.
	TreeMinPicks int64
	ScanMinPicks int64

	// HeadMsgs counts messages classified as head by the sketch.
	HeadMsgs int64

	// CandHits / CandMisses count head-candidate cache lookups that hit
	// or re-derived (one lookup serves a whole run; the hot-key memo
	// absorbs most hits before they reach the cache).
	CandHits   int64
	CandMisses int64

	// Sketch state: monitored entries, table capacity, and lifetime
	// min-counter evictions (head churn under drift).
	SketchLen       int
	SketchCap       int
	SketchEvictions uint64

	// Solver state (D-Choices only): FINDOPTIMALCHOICES runs and the
	// current head choice count d. D is 0 for schemes without a solver.
	Solves int64
	D      int
}

// RouteStatser is implemented by partitioners that expose routing path
// counters. The head-tracking schemes (D-C, W-C, RR, ForcedD) and PKG
// implement it; KG and SG have no load-aware state worth reporting.
type RouteStatser interface {
	RouteStats() RouteStats
}

// Stats returns p's RouteStats when it exposes them (false otherwise).
func Stats(p Partitioner) (RouteStats, bool) {
	if rs, ok := p.(RouteStatser); ok {
		return rs.RouteStats(), true
	}
	return RouteStats{}, false
}

func (g *greedy) argminStats(s *RouteStats) {
	s.TreeMinPicks = g.nTreeMin
	s.ScanMinPicks = g.nScanMin
}

// RouteStats implements RouteStatser.
func (p *DChoices) RouteStats() RouteStats {
	s := RouteStats{
		HeadMsgs:   p.head.headMsgs,
		CandHits:   p.cache.hits,
		CandMisses: p.cache.misses,
		Solves:     p.solves,
		D:          p.d,
	}
	p.argminStats(&s)
	s.SketchLen, s.SketchCap, s.SketchEvictions = p.head.sketchStats()
	return s
}

// RouteStats implements RouteStatser.
func (p *WChoices) RouteStats() RouteStats {
	s := RouteStats{HeadMsgs: p.head.headMsgs}
	p.argminStats(&s)
	s.SketchLen, s.SketchCap, s.SketchEvictions = p.head.sketchStats()
	return s
}

// RouteStats implements RouteStatser.
func (p *RoundRobin) RouteStats() RouteStats {
	s := RouteStats{HeadMsgs: p.head.headMsgs}
	p.argminStats(&s)
	s.SketchLen, s.SketchCap, s.SketchEvictions = p.head.sketchStats()
	return s
}

// RouteStats implements RouteStatser.
func (p *ForcedD) RouteStats() RouteStats {
	s := RouteStats{
		HeadMsgs:   p.head.headMsgs,
		CandHits:   p.cache.hits,
		CandMisses: p.cache.misses,
		D:          p.d,
	}
	p.argminStats(&s)
	s.SketchLen, s.SketchCap, s.SketchEvictions = p.head.sketchStats()
	return s
}

// RouteStats implements RouteStatser (PKG has no sketch or cache; only
// the argmin-path counters are meaningful, and PKG's 2-choice picks go
// through neither counted path, so they stay zero).
func (p *PKG) RouteStats() RouteStats {
	var s RouteStats
	p.argminStats(&s)
	return s
}

// ---------------------------------------------------------------------------
// Telemetry bridge

// RouteRecorder publishes one partitioner's routing activity into a
// telemetry registry: batch timing (ns and messages, from which ns/msg
// follows) plus the RouteStats deltas since the previous publish. One
// RecordBatch call per routed slab keeps the whole cost — a time.Now
// pair at the call site and ~10 atomic adds here — amortized over
// hundreds of messages, which is how the instrumented batch path stays
// within 3% of the uninstrumented one (pinned by
// BenchmarkRouteBatchDigestsInstrumented at the repo root).
type RouteRecorder struct {
	ns, msgs, batches   *telemetry.Counter
	treeMin, scanMin    *telemetry.Counter
	headMsgs            *telemetry.Counter
	candHits, candMiss  *telemetry.Counter
	sketchEvict, solves *telemetry.Counter
	sketchLen, solverD  *telemetry.Gauge
	sketchCap           *telemetry.Gauge

	last RouteStats
}

// NewRouteRecorder registers the routing metric series for one
// (engine, algo) pair and returns the recorder. Returns nil when reg is
// nil, and a nil recorder's RecordBatch is a no-op — engines hold one
// field and never branch on configuration elsewhere. Metric names are
// documented in the slb package doc (§ Telemetry).
func NewRouteRecorder(reg *telemetry.Registry, labels ...telemetry.Label) *RouteRecorder {
	if reg == nil {
		return nil
	}
	return &RouteRecorder{
		ns:          reg.Counter("route_ns_total", labels...),
		msgs:        reg.Counter("route_msgs_total", labels...),
		batches:     reg.Counter("route_batches_total", labels...),
		treeMin:     reg.Counter("route_tree_argmins_total", labels...),
		scanMin:     reg.Counter("route_scan_argmins_total", labels...),
		headMsgs:    reg.Counter("route_head_msgs_total", labels...),
		candHits:    reg.Counter("route_cand_cache_hits_total", labels...),
		candMiss:    reg.Counter("route_cand_cache_misses_total", labels...),
		sketchEvict: reg.Counter("sketch_evictions_total", labels...),
		solves:      reg.Counter("solver_runs_total", labels...),
		sketchLen:   reg.Gauge("sketch_entries", labels...),
		sketchCap:   reg.Gauge("sketch_capacity", labels...),
		solverD:     reg.Gauge("solver_d", labels...),
	}
}

// RecordBatch publishes one routed batch: n messages took elapsed, and
// p's counters moved by (current − last published). Safe on a nil
// recorder.
func (r *RouteRecorder) RecordBatch(p Partitioner, n int, elapsed time.Duration) {
	if r == nil {
		return
	}
	r.ns.Add(elapsed.Nanoseconds())
	r.msgs.Add(int64(n))
	r.batches.Inc()
	s, ok := Stats(p)
	if !ok {
		return
	}
	r.treeMin.Add(s.TreeMinPicks - r.last.TreeMinPicks)
	r.scanMin.Add(s.ScanMinPicks - r.last.ScanMinPicks)
	r.headMsgs.Add(s.HeadMsgs - r.last.HeadMsgs)
	r.candHits.Add(s.CandHits - r.last.CandHits)
	r.candMiss.Add(s.CandMisses - r.last.CandMisses)
	r.sketchEvict.Add(int64(s.SketchEvictions - r.last.SketchEvictions))
	r.solves.Add(s.Solves - r.last.Solves)
	r.sketchLen.SetInt(int64(s.SketchLen))
	r.sketchCap.SetInt(int64(s.SketchCap))
	r.solverD.SetInt(int64(s.D))
	r.last = s
}
