package core

import (
	"testing"

	"slb/internal/hashing"
	"slb/internal/workload"
)

// TestCandCacheEnsureHeadCapacity pins the growth rule: smallest
// power-of-two set count holding 2·heads entries, capped by
// candCacheMaxEntries, never shrinking — and lookups after a regrow
// return the same candidate lists (candidates are a pure function of
// (digest, d)).
func TestCandCacheEnsureHeadCapacity(t *testing.T) {
	const n = 64
	f := hashing.NewFamily(99, n)
	cc := newCandCache(n)
	if cc.sets != candCacheSets(n) {
		t.Fatalf("initial sets = %d, want %d", cc.sets, candCacheSets(n))
	}

	// Record lists derived by the small cache.
	type probe struct {
		dg KeyDigest
		d  int
	}
	probes := []probe{
		{hashing.Digest("alpha"), 5},
		{hashing.Digest("beta"), 9},
		{hashing.Digest("gamma"), 33},
	}
	before := make([][]int32, len(probes))
	for i, pr := range probes {
		before[i] = append([]int32(nil), cc.lookup(pr.dg, pr.d, f)...)
	}

	// A head below half the current capacity must not grow.
	cc.ensureHeadCapacity(10) // 2·10 = 20 ≤ 32 entries
	if cc.sets != candCacheSets(n) {
		t.Fatalf("premature growth to %d sets for a 10-key head", cc.sets)
	}

	// A 100-key head needs ≥ 200 entries → 64 sets (256 entries),
	// which is exactly the memory cap for n = 64.
	cc.ensureHeadCapacity(100)
	if got := cc.sets * candWays; got != 256 {
		t.Fatalf("grew to %d entries for a 100-key head, want 256", got)
	}
	if cc.sets&(cc.sets-1) != 0 {
		t.Fatalf("set count %d is not a power of two", cc.sets)
	}
	for i, pr := range probes {
		after := cc.lookup(pr.dg, pr.d, f)
		if len(after) != len(before[i]) {
			t.Fatalf("probe %d: list length changed across regrow: %d → %d", i, len(before[i]), len(after))
		}
		for j := range after {
			if after[j] != before[i][j] {
				t.Fatalf("probe %d: candidate %d changed across regrow: %d → %d", i, j, before[i][j], after[j])
			}
		}
	}

	// The cap binds: an absurd head cannot exceed candCacheMaxEntries.
	cc.ensureHeadCapacity(1 << 20)
	if got, m := cc.sets*candWays, candCacheMaxEntries(n); got > m {
		t.Fatalf("grew past the memory cap: %d entries > %d", got, m)
	}
	// And growth never reverses.
	cc.ensureHeadCapacity(1)
	if got := cc.sets * candWays; got != 256 {
		t.Fatalf("cache shrank to %d entries", got)
	}
}

// TestCandCacheMaxEntries pins the cap's shape: ~4 MiB of candidate
// storage, floored at the static default, ceilinged at 256 entries.
func TestCandCacheMaxEntries(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{16, 256},     // small n: the 256-entry ceiling binds
		{8192, 128},   // 4 MiB / (4·8192) = 128
		{65536, 32},   // large n: the 32-entry floor binds
		{1 << 20, 32}, // absurd n: still the floor
	} {
		if got := candCacheMaxEntries(tc.n); got != tc.want {
			t.Errorf("candCacheMaxEntries(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

// TestDChoicesCacheGrowsWithObservedHead drives a D-Choices instance
// with a low θ — a head of hundreds of keys, far beyond the static
// 32-entry cache — and checks the solver grew the cache to what the
// sketch observed. Decision parity across the growth is covered by
// TestRouteBatchMatchesRoute (Route and RouteBatch share the solver,
// and a regrown cache re-derives identical candidate lists).
func TestDChoicesCacheGrowsWithObservedHead(t *testing.T) {
	c := cfg(64)
	c.Theta = 0.001 // hundreds of head keys
	p := NewDChoices(c)
	gen := workload.NewZipf(0.8, 500, 40_000, 13)
	keys := make([]string, 256)
	digs := make([]KeyDigest, 256)
	dst := make([]int, 256)
	for {
		n := 0
		for n < len(keys) {
			k, ok := gen.Next()
			if !ok {
				break
			}
			keys[n] = k
			n++
		}
		if n == 0 {
			break
		}
		p.RouteBatchDigests(keys[:n], digs, dst)
	}
	if got, init := p.cache.sets*candWays, candCacheSets(64)*candWays; got <= init {
		t.Fatalf("cache stayed at %d entries under a several-hundred-key head (initial %d)", got, init)
	}
}
