package core

import (
	"fmt"
	"testing"

	"slb/internal/workload"
)

// checkTree verifies every structural invariant of a load tree: each
// internal node holds the winner of its children, and the root equals
// the linear first-lowest-wins argmin over the loads.
func checkTree(t *testing.T, lt *loadTree) {
	t.Helper()
	n := lt.n
	for k := n - 1; k >= 1; k-- {
		if got, want := lt.node[k], lt.winner(lt.node[2*k], lt.node[2*k+1]); got != want {
			t.Fatalf("node[%d] = %d, want winner(node[%d], node[%d]) = %d", k, got, 2*k, 2*k+1, want)
		}
	}
	best := 0
	for i := 1; i < n; i++ {
		if lt.loads[i] < lt.loads[best] {
			best = i
		}
	}
	if lt.min() != best {
		t.Fatalf("min() = %d (load %d), scan argmin = %d (load %d)", lt.min(), lt.loads[lt.min()], best, lt.loads[best])
	}
}

// TestLoadTreeInvariants drives trees of assorted (non-power-of-two)
// sizes through random increments, checking every invariant after every
// fix — the per-increment structural guarantee the routing parity
// builds on.
func TestLoadTreeInvariants(t *testing.T) {
	rng := uint64(0x1234_5678)
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}
	for _, n := range []int{1, 2, 3, 5, 8, 37, 130, 1000} {
		loads := make([]int64, n)
		lt := newLoadTree(loads)
		checkTree(t, lt)
		for step := 0; step < 2000; step++ {
			w := next(n)
			loads[w]++
			lt.fix(w)
			checkTree(t, lt)
		}
	}
}

// TestLoadTreeTieBreak pins the lower-index-wins tie-break directly:
// with all-equal loads the root must always be the lowest unloaded
// index, exactly as the packed scan resolves ties.
func TestLoadTreeTieBreak(t *testing.T) {
	const n = 11
	loads := make([]int64, n)
	lt := newLoadTree(loads)
	// Repeatedly take the min and bump it: the sequence must be
	// 0,1,...,n-1, 0,1,... — first-lowest-wins round after round.
	for round := 0; round < 3; round++ {
		for want := 0; want < n; want++ {
			if got := lt.min(); got != want {
				t.Fatalf("round %d: min() = %d, want %d", round, got, want)
			}
			loads[lt.min()]++
			lt.fix(lt.min())
		}
	}
}

// TestCandTreeDifferential fuzzes the candidate subset tournament
// against the routeCands scan on random loads, candidate lists and
// message counts: every routed worker must match, which pins the
// earlier-position tie-break end to end.
func TestCandTreeDifferential(t *testing.T) {
	rng := uint64(99)
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}
	for trial := 0; trial < 500; trial++ {
		n := 2 + next(12)
		c := 2 + next(n-1)
		perm := make([]int32, n)
		for i := range perm {
			perm[i] = int32(i)
		}
		for i := n - 1; i > 0; i-- {
			j := next(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		cand := perm[:c]
		loads := make([]int64, n)
		for i := range loads {
			loads[i] = int64(next(4))
		}
		g1 := greedy{n: n, loads: append([]int64{}, loads...), lidx: LoadIndexScan}
		g2 := greedy{n: n, loads: append([]int64{}, loads...), lidx: LoadIndexTree}
		msgs := 2 + next(20)
		dst2 := make([]int, msgs)
		g2.routeCandsTree(KeyDigest(uint64(trial)*0x9e3779b97f4a7c15+1), cand, dst2)
		for m := 0; m < msgs; m++ {
			if w1 := g1.routeCands(cand); w1 != dst2[m] {
				t.Fatalf("trial %d msg %d: scan %d tree %d (cand=%v loads=%v)", trial, m, w1, dst2[m], cand, loads)
			}
		}
	}
}

// scanTreePartitioners builds the same algorithm twice: once forced
// onto the packed scans, once forced onto the tournament tree (and the
// candidate subset tournament in the batch path).
func scanTreePartitioners(t *testing.T, algo string, n int) (scan, tree Partitioner) {
	t.Helper()
	mk := func(lidx int) Partitioner {
		c := Config{Workers: n, Seed: 42, LoadIndex: lidx}
		if algo == "Greedy-7" {
			return NewForcedD(c, 7)
		}
		if algo == "Oracle" {
			return NewOracle(c, func(k string) bool { return len(k) < 5 })
		}
		p, err := New(algo, c)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	return mk(LoadIndexScan), mk(LoadIndexTree)
}

// TestScanTreeRoutingParity is the satellite regression suite: for
// every algorithm (including the experimental ForcedD and Oracle),
// across worker counts spanning both sides of the crossover and a skew
// sweep, the scan-based and tree-based configurations must produce
// identical worker sequences — message for message — through BOTH the
// per-message and the batched API (slabs of a deliberately odd size, so
// runs split across slab boundaries).
func TestScanTreeRoutingParity(t *testing.T) {
	algos := append(append([]string{}, Names...), "Greedy-7", "Oracle")
	for _, n := range []int{8, 200, 5000} {
		for _, z := range []float64{0.6, 1.4, 2.0} {
			m := int64(8000)
			if n == 5000 {
				m = 20000 // enough traffic for head keys to emerge at scale
			}
			gen := workload.NewZipf(z, 2000, m, 7)
			keys := make([]string, 0, m)
			buf := make([]string, 256)
			for {
				k := 0
				for ; k < len(buf); k++ {
					key, ok := gen.Next()
					if !ok {
						break
					}
					buf[k] = key
				}
				keys = append(keys, buf[:k]...)
				if k < len(buf) {
					break
				}
			}
			for _, algo := range algos {
				t.Run(fmt.Sprintf("%s/n=%d/z=%.1f", algo, n, z), func(t *testing.T) {
					scan, tree := scanTreePartitioners(t, algo, n)
					// First half per message, second half batched.
					half := len(keys) / 2
					for i, k := range keys[:half] {
						ws, wt := scan.Route(k), tree.Route(k)
						if ws != wt {
							t.Fatalf("msg %d (key %q): scan → %d, tree → %d", i, k, ws, wt)
						}
					}
					const slab = 97
					dstS := make([]int, slab)
					dstT := make([]int, slab)
					for i := half; i < len(keys); i += slab {
						end := i + slab
						if end > len(keys) {
							end = len(keys)
						}
						RouteBatch(scan, keys[i:end], dstS)
						RouteBatch(tree, keys[i:end], dstT)
						for j := 0; j < end-i; j++ {
							if dstS[j] != dstT[j] {
								t.Fatalf("batch msg %d (key %q): scan → %d, tree → %d", i+j, keys[i+j], dstS[j], dstT[j])
							}
						}
					}
				})
			}
		}
	}
}

// TestAutoCrossoverMatchesForcedModes pins that LoadIndexAuto routes
// identically to both forced modes on either side of the crossover (it
// is one of them, selected by n).
func TestAutoCrossoverMatchesForcedModes(t *testing.T) {
	for _, n := range []int{loadIndexCrossover / 2, loadIndexCrossover, loadIndexCrossover * 2} {
		gen := workload.NewZipf(1.6, 500, 4000, 3)
		auto := NewWChoices(Config{Workers: n, Seed: 42})
		scan := NewWChoices(Config{Workers: n, Seed: 42, LoadIndex: LoadIndexScan})
		tree := NewWChoices(Config{Workers: n, Seed: 42, LoadIndex: LoadIndexTree})
		if wantTree := n >= loadIndexCrossover; wantTree != (auto.tree != nil) {
			t.Fatalf("n=%d: auto tree presence = %v, want %v", n, auto.tree != nil, wantTree)
		}
		for {
			k, ok := gen.Next()
			if !ok {
				break
			}
			wa, ws, wt := auto.Route(k), scan.Route(k), tree.Route(k)
			if wa != ws || wa != wt {
				t.Fatalf("n=%d key %q: auto %d scan %d tree %d", n, k, wa, ws, wt)
			}
		}
	}
}

// TestWorkerCapLifted verifies the former hard 65536-worker cap is
// gone: the tree path constructs and routes far above it, while a
// FORCED packed scan — which cannot encode that many workers — still
// panics loudly.
func TestWorkerCapLifted(t *testing.T) {
	const big = 1 << 17
	// Theta is set explicitly so the derived sketch stays small; the
	// default 1/(5n) would ask for a multi-million-entry sketch.
	cfg := Config{Workers: big, Seed: 1, Theta: 1e-4}
	p := NewWChoices(cfg)
	seen := make(map[int]bool)
	for i := 0; i < 2000; i++ {
		w := p.Route(fmt.Sprintf("key%d", i%37))
		if w < 0 || w >= big {
			t.Fatalf("worker %d out of range", w)
		}
		seen[w] = true
	}
	if len(seen) < 2 {
		t.Fatalf("routing at n=%d stuck on %d worker(s)", big, len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("forced LoadIndexScan above the packing limit did not panic")
		}
	}()
	cfg.LoadIndex = LoadIndexScan
	NewWChoices(cfg)
}

// TestGreedyTreeStaysInSync routes a skewed stream through W-Choices
// and D-Choices with the tree attached and verifies, at several points,
// that the tree still satisfies its invariants against the live load
// vector — i.e. every increment in every routing path went through the
// index.
func TestGreedyTreeStaysInSync(t *testing.T) {
	gen := workload.NewZipf(1.8, 300, 12000, 11)
	keys := make([]string, 0, 12000)
	for {
		k, ok := gen.Next()
		if !ok {
			break
		}
		keys = append(keys, k)
	}
	for _, algo := range []string{"W-C", "D-C", "RR", "PKG"} {
		p, err := New(algo, Config{Workers: 150, Seed: 5, LoadIndex: LoadIndexTree})
		if err != nil {
			t.Fatal(err)
		}
		var g *greedy
		switch q := p.(type) {
		case *WChoices:
			g = &q.greedy
		case *DChoices:
			g = &q.greedy
		case *RoundRobin:
			g = &q.greedy
		case *PKG:
			g = &q.greedy
		}
		dst := make([]int, 64)
		for i := 0; i < len(keys); i += 64 {
			end := i + 64
			if end > len(keys) {
				end = len(keys)
			}
			RouteBatch(p, keys[i:end], dst)
			if g.tree != nil && i%(64*16) == 0 {
				checkTree(t, g.tree)
			}
		}
		switch algo {
		case "W-C", "D-C":
			if g.tree == nil {
				t.Fatalf("%s: LoadIndexTree did not attach a tree", algo)
			}
			checkTree(t, g.tree)
		case "RR", "PKG":
			// Schemes that never argmin over the whole vector must not
			// pay for an index even when the tree is forced.
			if g.tree != nil {
				t.Fatalf("%s: unexpectedly carries a load index", algo)
			}
		}
	}
}
