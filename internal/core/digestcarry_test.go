package core

import (
	"testing"

	"slb/internal/hashing"
	"slb/internal/workload"
)

// TestRouteBatchDigestsMatchesRoute pins the digest-carry batch
// contract: for every algorithm and batch size — including the
// sliding-window and non-monotone-θ fallbacks — RouteBatchDigests must
// produce the same worker sequence as per-message Route AND fill
// digs[i] with exactly Digest(keys[i]).
func TestRouteBatchDigestsMatchesRoute(t *testing.T) {
	configs := []struct {
		label string
		mk    func() Config
	}{
		{"default", func() Config { return cfg(50) }},
		{"tight solver", func() Config {
			c := cfg(20)
			c.SolveEvery = 16
			return c
		}},
		{"windowed", func() Config {
			c := cfg(10)
			c.SketchWindow = 512 // per-message fallback, digests still filled
			return c
		}},
		{"non-monotone theta", func() Config {
			c := cfg(10)
			c.Theta = 0.995
			return c
		}},
	}
	for _, cc := range configs {
		for _, name := range Names {
			for _, bs := range []int{1, 3, 64, 997} {
				a, err := New(name, cc.mk())
				if err != nil {
					t.Fatal(err)
				}
				b, err := New(name, cc.mk())
				if err != nil {
					t.Fatal(err)
				}
				keys := collectKeys(workload.NewZipf(2.0, 400, 20000, 17))
				digs := make([]KeyDigest, bs)
				dst := make([]int, bs)
				for i := 0; i < len(keys); i += bs {
					end := i + bs
					if end > len(keys) {
						end = len(keys)
					}
					chunk := keys[i:end]
					b.(DigestBatchPartitioner).RouteBatchDigests(chunk, digs, dst)
					for j, k := range chunk {
						if want := a.Route(k); dst[j] != want {
							t.Fatalf("%s/%s bs=%d: message %d (%q) routed to %d by digest batch, %d by Route",
								cc.label, name, bs, i+j, k, dst[j], want)
						}
						if want := hashing.Digest(k); digs[j] != want {
							t.Fatalf("%s/%s bs=%d: message %d (%q) digest %x, want %x",
								cc.label, name, bs, i+j, k, digs[j], want)
						}
					}
				}
			}
		}
	}
}

// TestRouteDigestMatchesRoute pins the per-message digest-carry form:
// RouteDigest(Digest(k), k) is Route(k), for every algorithm including
// the experimental ones.
func TestRouteDigestMatchesRoute(t *testing.T) {
	keys := collectKeys(workload.NewZipf(2.0, 300, 15000, 23))
	type pair struct {
		label string
		a, b  Partitioner
	}
	var cases []pair
	for _, name := range Names {
		a, _ := New(name, cfg(20))
		b, _ := New(name, cfg(20))
		cases = append(cases, pair{name, a, b})
	}
	cases = append(cases,
		pair{"forced-5", NewForcedD(cfg(20), 5), NewForcedD(cfg(20), 5)},
		pair{"oracle", NewOracle(cfg(20), func(k string) bool { return k == "k0" }),
			NewOracle(cfg(20), func(k string) bool { return k == "k0" })})
	for _, tc := range cases {
		dr := tc.b.(DigestRouter)
		for i, k := range keys {
			if want, got := tc.a.Route(k), dr.RouteDigest(hashing.Digest(k), k); got != want {
				t.Fatalf("%s: message %d (%q) routed to %d by RouteDigest, %d by Route", tc.label, i, k, got, want)
			}
		}
	}
}

// TestRouteBatchDigestsPanicsOnShortDigs: the digs slab is part of the
// contract, so an undersized one must fail loudly.
func TestRouteBatchDigestsPanicsOnShortDigs(t *testing.T) {
	p := NewPKG(cfg(4))
	defer func() {
		if recover() == nil {
			t.Fatal("RouteBatchDigests with short digs did not panic")
		}
	}()
	p.RouteBatchDigests([]string{"a", "b"}, make([]KeyDigest, 1), make([]int, 2))
}

// TestRouteBatchDigestsFallback drives the package helper over a
// Partitioner that implements neither batch interface: decisions must
// match Route and the digests must still be filled.
func TestRouteBatchDigestsFallback(t *testing.T) {
	a := NewPKG(cfg(8))
	b := NewPKG(cfg(8))
	keys := []string{"x", "y", "x", "z", "x"}
	digs := make([]KeyDigest, len(keys))
	dst := make([]int, len(keys))
	RouteBatchDigests(onlyRoute{a}, keys, digs, dst)
	for i, k := range keys {
		if want := b.Route(k); dst[i] != want {
			t.Fatalf("fallback diverged at %d", i)
		}
		if digs[i] != hashing.Digest(k) {
			t.Fatalf("fallback digest missing at %d", i)
		}
	}
}

// TestSteadyStateDigestRoutingDoesNotAllocate extends the
// zero-allocation contract to the digest-carry APIs: warm steady-state
// RouteBatchDigests (caller-owned slab) and RouteDigest allocate
// nothing.
func TestSteadyStateDigestRoutingDoesNotAllocate(t *testing.T) {
	keys := collectKeys(workload.NewZipf(2.0, 2000, 30000, 31))
	for _, name := range []string{"PKG", "D-C", "W-C", "RR"} {
		c := cfg(50)
		c.SolveEvery = 1 << 30
		p, err := New(name, c)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			p.Route(k) // warmup: sketch at capacity, pools primed
		}
		dr := p.(DigestRouter)
		i := 0
		if avg := testing.AllocsPerRun(5000, func() {
			k := keys[i%len(keys)]
			dr.RouteDigest(hashing.Digest(k), k)
			i++
		}); avg != 0 {
			t.Errorf("%s: steady-state RouteDigest allocates %.3f allocs/op, want 0", name, avg)
		}
		dbp := p.(DigestBatchPartitioner)
		digs := make([]KeyDigest, 256)
		dst := make([]int, 256)
		j := 0
		if avg := testing.AllocsPerRun(200, func() {
			if j+256 > len(keys) {
				j = 0
			}
			dbp.RouteBatchDigests(keys[j:j+256], digs, dst)
			j += 256
		}); avg != 0 {
			t.Errorf("%s: steady-state RouteBatchDigests allocates %.3f allocs/batch, want 0", name, avg)
		}
	}
}
