package core

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"slb/internal/workload"
)

func cfg(n int) Config { return Config{Workers: n, Seed: 42} }

func TestNewByName(t *testing.T) {
	for _, name := range Names {
		p, err := New(name, cfg(10))
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("Name() = %q, want %q", p.Name(), name)
		}
		if p.Workers() != 10 {
			t.Fatalf("%s Workers() = %d", name, p.Workers())
		}
	}
	if _, err := New("nope", cfg(10)); err == nil {
		t.Fatal("unknown name did not error")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{Workers: 50}.withDefaults()
	if c.Theta != 1.0/250 {
		t.Fatalf("default theta = %f, want 1/(5n)", c.Theta)
	}
	if c.Epsilon != 1e-4 {
		t.Fatalf("default eps = %f", c.Epsilon)
	}
	if c.SketchCapacity < int(1/c.Theta) {
		t.Fatalf("sketch capacity %d below 1/θ", c.SketchCapacity)
	}
	if c.SolveEvery != 1024 {
		t.Fatalf("default SolveEvery = %d", c.SolveEvery)
	}
}

func TestConfigPanicsWithoutWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Workers=0")
		}
	}()
	NewPKG(Config{})
}

func TestKeyGroupingConsistency(t *testing.T) {
	kg := NewKeyGrouping(cfg(16))
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key%d", i)
		w := kg.Route(k)
		for j := 0; j < 3; j++ {
			if kg.Route(k) != w {
				t.Fatalf("KG routed %q inconsistently", k)
			}
		}
	}
}

func TestShuffleGroupingPerfectBalance(t *testing.T) {
	sg := NewShuffleGrouping(cfg(7))
	counts := make([]int, 7)
	for i := 0; i < 7*100; i++ {
		counts[sg.Route("any")]++
	}
	for w, c := range counts {
		if c != 100 {
			t.Fatalf("SG worker %d got %d, want 100", w, c)
		}
	}
}

func TestPKGRoutesOnlyToCandidates(t *testing.T) {
	p := NewPKG(cfg(20))
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("key%d", i%50)
		w := p.Route(k)
		c1 := p.family.Bucket(0, k, 20)
		c2 := p.family.Bucket(1, k, 20)
		if w != c1 && w != c2 {
			t.Fatalf("PKG routed %q to %d, candidates {%d,%d}", k, w, c1, c2)
		}
	}
}

func TestPKGPrefersLessLoaded(t *testing.T) {
	p := NewPKG(cfg(4))
	// Find a key with two distinct candidates.
	var key string
	var c1, c2 int
	for i := 0; ; i++ {
		key = fmt.Sprintf("probe%d", i)
		c1 = p.family.Bucket(0, key, 4)
		c2 = p.family.Bucket(1, key, 4)
		if c1 != c2 {
			break
		}
	}
	// Preload c1 heavily.
	p.loads[c1] = 100
	if w := p.Route(key); w != c2 {
		t.Fatalf("PKG chose %d, want less-loaded %d", w, c2)
	}
}

func TestGreedyLoadAccounting(t *testing.T) {
	p := NewPKG(cfg(8))
	for i := 0; i < 500; i++ {
		p.Route(fmt.Sprintf("k%d", i%40))
	}
	var sum int64
	for _, l := range p.Loads() {
		sum += l
	}
	if sum != 500 {
		t.Fatalf("local loads sum to %d, want 500", sum)
	}
}

// routeStream pushes a Zipf stream through a fresh partitioner and
// returns the global load fractions.
func routeStream(tb testing.TB, p Partitioner, z float64, keys int, m int64) []float64 {
	tb.Helper()
	gen := workload.NewZipf(z, keys, m, 7)
	loads := make([]int64, p.Workers())
	for {
		k, ok := gen.Next()
		if !ok {
			break
		}
		loads[p.Route(k)]++
	}
	out := make([]float64, len(loads))
	for i, l := range loads {
		out[i] = float64(l) / float64(m)
	}
	return out
}

func imbalance(loads []float64) float64 {
	max, sum := 0.0, 0.0
	for _, l := range loads {
		if l > max {
			max = l
		}
		sum += l
	}
	return max - sum/float64(len(loads))
}

func TestWChoicesBeatsPKGAtScaleAndSkew(t *testing.T) {
	// The paper's headline claim: at n = 50, z = 2.0 (p1 ≈ 0.6), PKG's two
	// choices cannot contain the hot key, while W-C stays near perfect.
	n := 50
	pkgImb := imbalance(routeStream(t, NewPKG(cfg(n)), 2.0, 1000, 200000))
	wcImb := imbalance(routeStream(t, NewWChoices(cfg(n)), 2.0, 1000, 200000))
	if pkgImb < 0.1 {
		t.Fatalf("PKG imbalance %f unexpectedly low; test premise broken", pkgImb)
	}
	if wcImb > 0.01 {
		t.Fatalf("W-C imbalance %f, want < 0.01", wcImb)
	}
	if wcImb > pkgImb/10 {
		t.Fatalf("W-C (%f) should beat PKG (%f) by ≥10×", wcImb, pkgImb)
	}
}

func TestDChoicesBeatsPKGAtScaleAndSkew(t *testing.T) {
	n := 50
	pkgImb := imbalance(routeStream(t, NewPKG(cfg(n)), 2.0, 1000, 200000))
	dcImb := imbalance(routeStream(t, NewDChoices(cfg(n)), 2.0, 1000, 200000))
	if dcImb > pkgImb/10 {
		t.Fatalf("D-C (%f) should beat PKG (%f) by ≥10×", dcImb, pkgImb)
	}
}

func TestRoundRobinBeatsPKGAtScaleAndSkew(t *testing.T) {
	n := 50
	pkgImb := imbalance(routeStream(t, NewPKG(cfg(n)), 2.0, 1000, 200000))
	rrImb := imbalance(routeStream(t, NewRoundRobin(cfg(n)), 2.0, 1000, 200000))
	if rrImb > pkgImb/5 {
		t.Fatalf("RR (%f) should clearly beat PKG (%f)", rrImb, pkgImb)
	}
}

func TestDChoicesUsesTwoChoicesWithoutSkew(t *testing.T) {
	// Uniform stream: no head, D-C must stay at d = 2 (PKG behaviour).
	p := NewDChoices(cfg(10))
	gen := workload.NewZipf(0, 500, 20000, 3)
	for {
		k, ok := gen.Next()
		if !ok {
			break
		}
		p.Route(k)
	}
	if p.D() != 2 {
		t.Fatalf("D-C chose d=%d on uniform stream, want 2", p.D())
	}
}

func TestDChoicesDRespectsP1LowerBound(t *testing.T) {
	// z=2.0, |K|=1000: p1 ≈ 0.61, so with n = 10 we need d ≥ ⌈6.1⌉ = 7
	// (or a switch to W-C at d = n).
	p := NewDChoices(cfg(10))
	gen := workload.NewZipf(2.0, 1000, 50000, 5)
	for {
		k, ok := gen.Next()
		if !ok {
			break
		}
		p.Route(k)
	}
	if p.D() < 7 {
		t.Fatalf("D-C d=%d below the p1·n lower bound 7", p.D())
	}
}

func TestWChoicesHeadGoesToLeastLoaded(t *testing.T) {
	p := NewWChoices(Config{Workers: 5, Seed: 1, Theta: 0.2})
	// Make "hot" a heavy hitter within the sketch.
	for i := 0; i < 100; i++ {
		p.Route("hot")
	}
	// Skew local loads, then verify the next hot message lands on the
	// (unique) least-loaded worker.
	for w := range p.loads {
		p.loads[w] = int64(100 * (w + 1))
	}
	p.loads[3] = 0
	if w := p.Route("hot"); w != 3 {
		t.Fatalf("W-C routed hot key to %d, want least-loaded 3", w)
	}
}

func TestRoundRobinSpreadsHeadEvenly(t *testing.T) {
	p := NewRoundRobin(Config{Workers: 4, Seed: 0, Theta: 0.5})
	counts := make([]int, 4)
	for i := 0; i < 400; i++ {
		counts[p.Route("only-key")]++
	}
	// After warmup the single key is in the head and round-robins; allow
	// the first few pre-head messages to perturb counts slightly.
	for w, c := range counts {
		if c < 90 || c > 110 {
			t.Fatalf("RR head spread uneven: worker %d got %d/400", w, c)
		}
	}
}

func TestRouteRangeProperty(t *testing.T) {
	for _, name := range Names {
		p, err := New(name, cfg(13))
		if err != nil {
			t.Fatal(err)
		}
		prop := func(key string) bool {
			w := p.Route(key)
			return w >= 0 && w < 13
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestDeterministicRouting(t *testing.T) {
	// Same seed, same stream → identical routing decisions for every
	// algorithm (SG included, it is seed-offset round robin).
	for _, name := range Names {
		a, _ := New(name, cfg(9))
		b, _ := New(name, cfg(9))
		gen := workload.NewZipf(1.2, 100, 2000, 11)
		for {
			k, ok := gen.Next()
			if !ok {
				break
			}
			if a.Route(k) != b.Route(k) {
				t.Fatalf("%s is not deterministic", name)
			}
		}
	}
}

func TestDChoicesSwitchesToWChoicesUnderExtremeSkew(t *testing.T) {
	// A single key stream: p1 = 1. No d < n is feasible, so D-C must
	// effectively use all workers (W-C switch) and stay balanced.
	n := 10
	p := NewDChoices(cfg(n))
	counts := make([]int64, n)
	for i := 0; i < 10000; i++ {
		counts[p.Route("onlykey")]++
	}
	var max, min int64 = 0, 1 << 62
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c < min {
			min = c
		}
	}
	if max-min > 200 {
		t.Fatalf("single-key stream not spread: max %d min %d (d=%d)", max, min, p.D())
	}
}

func TestHeadTrackerMergeSharpensEstimates(t *testing.T) {
	// Two senders each see half the stream; after merging, the head
	// estimate reflects the union.
	cfgT := Config{Workers: 10, Seed: 1, Theta: 0.05}
	a := NewWChoices(cfgT)
	b := NewWChoices(cfgT)
	for i := 0; i < 1000; i++ {
		a.Route("hh")
		a.Route(fmt.Sprintf("ta%d", i))
		b.Route("hh")
		b.Route(fmt.Sprintf("tb%d", i))
	}
	before := a.HeadTracker().Sketch().N()
	a.HeadTracker().Merge(b.HeadTracker().Sketch())
	after := a.HeadTracker().Sketch().N()
	if after != before+b.HeadTracker().Sketch().N() {
		t.Fatalf("merge did not combine stream lengths: %d → %d", before, after)
	}
	c, _, ok := a.HeadTracker().Sketch().Count("hh")
	if !ok || c < 2000 {
		t.Fatalf("merged estimate for hh = %d, want ≥ 2000", c)
	}
}

func TestConfigRejectsInvalidValues(t *testing.T) {
	cases := []struct {
		name string
		c    Config
	}{
		{"theta NaN", Config{Workers: 4, Theta: math.NaN()}},
		{"theta negative", Config{Workers: 4, Theta: -0.1}},
		{"epsilon NaN", Config{Workers: 4, Epsilon: math.NaN()}},
		{"epsilon negative", Config{Workers: 4, Epsilon: -1}},
		{"sketch capacity negative", Config{Workers: 4, SketchCapacity: -1}},
		{"solve every negative", Config{Workers: 4, SolveEvery: -5}},
		{"theta too small for derived capacity", Config{Workers: 4, Theta: 1e-12}},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: withDefaults did not panic", tc.name)
				}
			}()
			tc.c.withDefaults()
		}()
	}
	// Explicit capacity sidesteps the tiny-theta derivation guard.
	c := Config{Workers: 4, Theta: 1e-12, SketchCapacity: 128}.withDefaults()
	if c.SketchCapacity != 128 {
		t.Fatalf("explicit capacity overridden: %d", c.SketchCapacity)
	}
}

// collectKeys materializes a generator's stream.
func collectKeys(gen *workload.Zipf) []string {
	keys := make([]string, 0, gen.Len())
	for {
		k, ok := gen.Next()
		if !ok {
			break
		}
		keys = append(keys, k)
	}
	return keys
}

// TestRouteBatchMatchesRoute pins the batch path's core contract: for
// every algorithm and batch size, RouteBatch must produce the same
// worker sequence as per-message Route — including across head/tail
// crossings, solver re-solve boundaries inside runs, and the
// sliding-window fallback.
func TestRouteBatchMatchesRoute(t *testing.T) {
	configs := []struct {
		label string
		mk    func() Config
	}{
		{"default", func() Config { return cfg(50) }},
		{"tight solver", func() Config {
			c := cfg(20)
			c.SolveEvery = 16 // force re-solves inside hot-key runs
			return c
		}},
		{"high theta", func() Config {
			c := cfg(10)
			c.Theta = 0.3 // head crossings happen late and often
			return c
		}},
		{"windowed", func() Config {
			c := cfg(10)
			c.SketchWindow = 512 // exercises the per-message fallback
			return c
		}},
		{"non-monotone theta", func() Config {
			c := cfg(10)
			c.Theta = 0.995 // above maxMonotoneTheta: per-message fallback
			return c
		}},
	}
	for _, cc := range configs {
		for _, name := range Names {
			for _, bs := range []int{1, 3, 64, 997} {
				a, err := New(name, cc.mk())
				if err != nil {
					t.Fatal(err)
				}
				b, err := New(name, cc.mk())
				if err != nil {
					t.Fatal(err)
				}
				keys := collectKeys(workload.NewZipf(2.0, 400, 20000, 17))
				dst := make([]int, bs)
				for i := 0; i < len(keys); i += bs {
					end := i + bs
					if end > len(keys) {
						end = len(keys)
					}
					chunk := keys[i:end]
					b.(BatchPartitioner).RouteBatch(chunk, dst)
					for j, k := range chunk {
						if want := a.Route(k); dst[j] != want {
							t.Fatalf("%s/%s bs=%d: message %d (%q) routed to %d by batch, %d by Route",
								cc.label, name, bs, i+j, k, dst[j], want)
						}
					}
				}
			}
		}
	}
}

// TestRouteBatchMatchesRouteExperimental covers the non-registry
// partitioners (ForcedD, Oracle) the experiments construct directly.
func TestRouteBatchMatchesRouteExperimental(t *testing.T) {
	keys := collectKeys(workload.NewZipf(2.0, 300, 15000, 23))
	mk := []struct {
		label string
		a, b  BatchPartitioner
	}{
		{"forced-5", NewForcedD(cfg(20), 5), NewForcedD(cfg(20), 5)},
		{"forced-n", NewForcedD(cfg(20), 20), NewForcedD(cfg(20), 20)},
		{"oracle", NewOracle(cfg(20), func(k string) bool { return k == "k0" }),
			NewOracle(cfg(20), func(k string) bool { return k == "k0" })},
	}
	for _, tc := range mk {
		dst := make([]int, 128)
		for i := 0; i < len(keys); i += 128 {
			end := i + 128
			if end > len(keys) {
				end = len(keys)
			}
			chunk := keys[i:end]
			tc.b.RouteBatch(chunk, dst)
			for j, k := range chunk {
				if want := tc.a.Route(k); dst[j] != want {
					t.Fatalf("%s: message %d diverged", tc.label, i+j)
				}
			}
		}
	}
}

func TestRouteBatchPanicsOnShortDst(t *testing.T) {
	p := NewPKG(cfg(4))
	defer func() {
		if recover() == nil {
			t.Fatal("RouteBatch with short dst did not panic")
		}
	}()
	p.RouteBatch([]string{"a", "b"}, make([]int, 1))
}

func TestRouteBatchFallbackForNonBatchPartitioners(t *testing.T) {
	// The package-level helper must drive plain Partitioners too.
	a := NewPKG(cfg(8))
	b := NewPKG(cfg(8))
	keys := []string{"x", "y", "x", "z", "x"}
	dst := make([]int, len(keys))
	RouteBatch(onlyRoute{a}, keys, dst)
	for i, k := range keys {
		if want := b.Route(k); dst[i] != want {
			t.Fatalf("fallback diverged at %d", i)
		}
	}
}

// onlyRoute hides the batch method, forcing the helper's fallback.
type onlyRoute struct{ p Partitioner }

func (o onlyRoute) Route(key string) int { return o.p.Route(key) }
func (o onlyRoute) Workers() int         { return o.p.Workers() }
func (o onlyRoute) Name() string         { return o.p.Name() }

// TestSteadyStateRoutingDoesNotAllocate pins the zero-allocation
// contract of the digest routing path for the paper's two headline
// algorithms, via both APIs. SolveEvery is raised so the (amortized,
// allocating) solver stays out of the measured window.
func TestSteadyStateRoutingDoesNotAllocate(t *testing.T) {
	keys := collectKeys(workload.NewZipf(2.0, 2000, 30000, 31))
	for _, name := range []string{"PKG", "D-C", "W-C", "RR"} {
		c := cfg(50)
		c.SolveEvery = 1 << 30
		p, err := New(name, c)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			p.Route(k) // warmup: sketch at capacity, pools primed
		}
		i := 0
		avg := testing.AllocsPerRun(5000, func() {
			p.Route(keys[i%len(keys)])
			i++
		})
		if avg != 0 {
			t.Errorf("%s: steady-state Route allocates %.3f allocs/op, want 0", name, avg)
		}
		bp := p.(BatchPartitioner)
		dst := make([]int, 256)
		j := 0
		avg = testing.AllocsPerRun(200, func() {
			if j+256 > len(keys) {
				j = 0
			}
			bp.RouteBatch(keys[j:j+256], dst)
			j += 256
		})
		if avg != 0 {
			t.Errorf("%s: steady-state RouteBatch allocates %.3f allocs/batch, want 0", name, avg)
		}
	}
}

func BenchmarkRoute(b *testing.B) {
	for _, name := range Names {
		b.Run(name, func(b *testing.B) {
			p, _ := New(name, cfg(50))
			gen := workload.NewZipf(1.4, 10000, int64(b.N)+1, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k, _ := gen.Next()
				p.Route(k)
			}
		})
	}
}

func BenchmarkRouteBatchCore(b *testing.B) {
	keys := collectKeys(workload.NewZipf(2.0, 10000, 1<<17, 1))
	for _, name := range Names {
		b.Run(name, func(b *testing.B) {
			p, _ := New(name, cfg(50))
			bp := p.(BatchPartitioner)
			dst := make([]int, 512)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += 512 {
				off := i & (1<<17 - 1)
				end := off + 512
				if end > len(keys) {
					end = len(keys)
				}
				bp.RouteBatch(keys[off:end], dst)
			}
		})
	}
}
