package core

import (
	"fmt"
	"testing"
	"time"

	"slb/internal/telemetry"
)

// skewedKeys builds a batch where one key dominates (guaranteeing head
// classification) with a spread of cold keys in between.
func skewedKeys(n int) []string {
	keys := make([]string, 0, n)
	for i := 0; len(keys) < n; i++ {
		keys = append(keys, "hot")
		if len(keys) < n {
			keys = append(keys, fmt.Sprintf("cold-%d", i%97))
		}
	}
	return keys
}

func TestRouteStatsDChoices(t *testing.T) {
	p := NewDChoices(Config{Workers: 8, Seed: 42})
	keys := skewedKeys(20000)
	digs := make([]KeyDigest, len(keys))
	dst := make([]int, len(keys))
	p.RouteBatchDigests(keys, digs, dst)

	s := p.RouteStats()
	if s.HeadMsgs == 0 {
		t.Fatal("expected head messages on a hot-key stream")
	}
	if s.HeadMsgs >= int64(len(keys)) {
		t.Fatalf("HeadMsgs = %d, want < %d (cold keys are tail)", s.HeadMsgs, len(keys))
	}
	if s.TreeMinPicks+s.ScanMinPicks == 0 {
		t.Fatal("expected argmin picks on the head path")
	}
	if s.CandHits+s.CandMisses == 0 && s.D < 8 {
		t.Fatal("expected candidate cache traffic at d < n")
	}
	if s.SketchLen == 0 || s.SketchCap == 0 {
		t.Fatalf("sketch stats unpopulated: %+v", s)
	}
	if s.Solves == 0 {
		t.Fatal("expected at least one solver run")
	}
	if s.D < 2 {
		t.Fatalf("D = %d, want >= 2", s.D)
	}

	// Per-message path must agree with the counters too.
	before := s.HeadMsgs
	for i := 0; i < 100; i++ {
		p.Route("hot")
	}
	if got := p.RouteStats().HeadMsgs; got != before+100 {
		t.Fatalf("per-message head count moved %d, want 100", got-before)
	}
}

func TestRouteStatsInterfaceCoverage(t *testing.T) {
	cfg := Config{Workers: 8, Seed: 1}
	for _, p := range []Partitioner{
		NewDChoices(cfg), NewWChoices(cfg), NewRoundRobin(cfg),
		NewForcedD(cfg, 4), NewPKG(cfg),
	} {
		if _, ok := Stats(p); !ok {
			t.Fatalf("%s should implement RouteStatser", p.Name())
		}
	}
	for _, p := range []Partitioner{NewKeyGrouping(cfg), NewShuffleGrouping(cfg)} {
		if _, ok := Stats(p); ok {
			t.Fatalf("%s unexpectedly implements RouteStatser", p.Name())
		}
	}
}

func TestRouteStatsSketchChurn(t *testing.T) {
	// Tiny sketch + many distinct keys forces evictions.
	p := NewWChoices(Config{Workers: 4, Seed: 3, SketchCapacity: 8, Theta: 0.2})
	for i := 0; i < 5000; i++ {
		p.Route(fmt.Sprintf("k%d", i%300))
	}
	s := p.RouteStats()
	if s.SketchEvictions == 0 {
		t.Fatal("expected sketch evictions with 300 keys in an 8-entry sketch")
	}
	if s.SketchLen != 8 || s.SketchCap != 8 {
		t.Fatalf("sketch len/cap = %d/%d, want 8/8", s.SketchLen, s.SketchCap)
	}
}

func TestRouteRecorderPublishesDeltas(t *testing.T) {
	reg := telemetry.NewRegistry()
	labels := []telemetry.Label{telemetry.L("algo", "D-C"), telemetry.L("engine", "test")}
	rec := NewRouteRecorder(reg, labels...)
	p := NewDChoices(Config{Workers: 8, Seed: 42})

	keys := skewedKeys(4096)
	digs := make([]KeyDigest, len(keys))
	dst := make([]int, len(keys))
	for batch := 0; batch < 4; batch++ {
		t0 := time.Now()
		p.RouteBatchDigests(keys, digs, dst)
		rec.RecordBatch(p, len(keys), time.Since(t0))
	}

	snap := reg.Snapshot()
	if v := snap.Value("route_msgs_total", labels...); v != 4*4096 {
		t.Fatalf("route_msgs_total = %v, want %d", v, 4*4096)
	}
	if v := snap.Value("route_batches_total", labels...); v != 4 {
		t.Fatalf("route_batches_total = %v, want 4", v)
	}
	if snap.Value("route_ns_total", labels...) <= 0 {
		t.Fatal("route_ns_total not populated")
	}
	// Published totals must equal the partitioner's cumulative stats
	// (delta publishing must not double-count or drop).
	s := p.RouteStats()
	if v := snap.Value("route_head_msgs_total", labels...); v != float64(s.HeadMsgs) {
		t.Fatalf("head msgs published %v, partitioner has %d", v, s.HeadMsgs)
	}
	if v := snap.Value("route_tree_argmins_total", labels...) + snap.Value("route_scan_argmins_total", labels...); v != float64(s.TreeMinPicks+s.ScanMinPicks) {
		t.Fatalf("argmin totals published %v, partitioner has %d", v, s.TreeMinPicks+s.ScanMinPicks)
	}
	if v := snap.Value("sketch_entries", labels...); v != float64(s.SketchLen) {
		t.Fatalf("sketch_entries = %v, want %d", v, s.SketchLen)
	}

	// Nil recorder is a no-op (engines with telemetry off).
	var nilRec *RouteRecorder
	nilRec.RecordBatch(p, 10, time.Millisecond)
}
