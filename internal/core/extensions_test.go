package core

import (
	"fmt"
	"strings"
	"testing"

	"slb/internal/workload"
)

func TestForcedDClamping(t *testing.T) {
	if d := NewForcedD(cfg(10), 0).D(); d != 2 {
		t.Fatalf("ForcedD(0) clamped to %d, want 2", d)
	}
	if d := NewForcedD(cfg(10), 99).D(); d != 10 {
		t.Fatalf("ForcedD(99) clamped to %d, want 10", d)
	}
	if name := NewForcedD(cfg(10), 5).Name(); name != "Greedy-5" {
		t.Fatalf("Name = %q", name)
	}
}

func TestForcedDImbalanceImprovesWithD(t *testing.T) {
	// On an extreme-skew stream at n=20, more choices for the head can
	// only help (monotone up to noise); d=n must be near-perfect.
	imbAt := func(d int) float64 {
		p := NewForcedD(cfg(20), d)
		return imbalance(routeStream(t, p, 2.0, 1000, 100000))
	}
	i2, i20 := imbAt(2), imbAt(20)
	if i20 > i2/10 {
		t.Fatalf("Greedy-20 (%f) should be ≫ better than Greedy-2 (%f)", i20, i2)
	}
}

func TestOracleMatchesWChoicesOnStationaryStream(t *testing.T) {
	n := 50
	// Ground-truth head: ranks above θ for z=2.0.
	probs := workload.ZipfProbs(2.0, 1000)
	theta := 1.0 / (5 * float64(n))
	headSet := map[string]bool{}
	for r, p := range probs {
		if p >= theta {
			headSet[fmt.Sprintf("k%d", r)] = true
		}
	}
	oracle := NewOracle(cfg(n), func(k string) bool { return headSet[k] })
	oImb := imbalance(routeStream(t, oracle, 2.0, 1000, 200000))
	wc := NewWChoices(cfg(n))
	wImb := imbalance(routeStream(t, wc, 2.0, 1000, 200000))
	// The sketch-based scheme should be within a small factor of the
	// oracle (the paper's implicit claim: estimation error is negligible).
	if wImb > 5*oImb+1e-4 {
		t.Fatalf("W-C (%f) far from oracle (%f)", wImb, oImb)
	}
}

func TestOraclePanicsWithoutPredicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewOracle(nil) did not panic")
		}
	}()
	NewOracle(cfg(4), nil)
}

func TestSketchWindowMode(t *testing.T) {
	c := cfg(10)
	c.SketchWindow = 1000
	p := NewWChoices(c)
	// Sliding mode exposes no mergeable sketch.
	if p.HeadTracker().Sketch() != nil {
		t.Fatal("windowed tracker should not expose a plain sketch")
	}
	// Merge and SetSketch must be safe no-ops.
	p.HeadTracker().Merge(nil)
	p.HeadTracker().SetSketch(nil)
	// Routing still works and balances a hot key.
	counts := make([]int64, 10)
	for i := 0; i < 20000; i++ {
		counts[p.Route("hot")]++
	}
	if imb := imbalanceInt(counts); imb > 0.02 {
		t.Fatalf("windowed W-C imbalance %f on single-key stream", imb)
	}
}

func imbalanceInt(loads []int64) float64 {
	var max, sum int64
	for _, l := range loads {
		if l > max {
			max = l
		}
		sum += l
	}
	if sum == 0 {
		return 0
	}
	return float64(max)/float64(sum) - 1.0/float64(len(loads))
}

func TestSketchWindowAdaptsFasterUnderDrift(t *testing.T) {
	// Long stream with a late hot-key switch: the windowed tracker must
	// classify the new hot key as head again well before the plain one.
	mkStream := func() []string {
		var keys []string
		for i := 0; i < 30000; i++ {
			if i%2 == 0 {
				keys = append(keys, "hotA")
			} else {
				keys = append(keys, fmt.Sprintf("t%d", i%97))
			}
		}
		for i := 0; i < 4000; i++ {
			if i%2 == 0 {
				keys = append(keys, "hotB")
			} else {
				keys = append(keys, fmt.Sprintf("t%d", i%97))
			}
		}
		return keys
	}
	detect := func(c Config) int {
		p := NewWChoices(c)
		keys := mkStream()
		for i, k := range keys {
			p.Route(k)
			if i >= 30000 && k == "hotB" && p.head.observe("hotB") {
				// observe() both feeds and queries; feeding one extra
				// occurrence is fine for a detection-latency comparison.
				return i - 30000
			}
		}
		return 1 << 30
	}
	plainCfg := cfg(10)
	winCfg := cfg(10)
	winCfg.SketchWindow = 2000
	plain := detect(plainCfg)
	windowed := detect(winCfg)
	if windowed >= plain {
		t.Fatalf("windowed detection (%d msgs) not faster than plain (%d msgs)", windowed, plain)
	}
	if windowed > 6000 {
		t.Fatalf("windowed detection took %d messages, want ≤ ~2 windows", windowed)
	}
}

func TestPhaseOffsetsSpreadSources(t *testing.T) {
	// Distinct instances must start SG at distinct workers (mod n).
	seen := map[int]bool{}
	for i := 0; i < 8; i++ {
		c := Config{Workers: 64, Seed: 42, Instance: i}
		sg := NewShuffleGrouping(c)
		seen[sg.Route("x")] = true
	}
	if len(seen) < 6 {
		t.Fatalf("8 instances start at only %d distinct workers", len(seen))
	}
}

func TestInstanceDoesNotAffectHashing(t *testing.T) {
	// The correctness invariant behind multi-sender routing: every
	// sender must map a key to the SAME candidate workers, or a key's
	// state would scatter beyond its d choices. Instance may only shift
	// round-robin phases.
	a := NewPKG(Config{Workers: 32, Seed: 9, Instance: 0})
	b := NewPKG(Config{Workers: 32, Seed: 9, Instance: 7})
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key%d", i)
		for h := 0; h < 2; h++ {
			if a.family.Bucket(h, k, 32) != b.family.Bucket(h, k, 32) {
				t.Fatalf("instance changed hash candidates for %q", k)
			}
		}
	}
}

func TestAllAlgorithmsConserveLocalLoads(t *testing.T) {
	// Every load-tracking partitioner's local vector must sum to the
	// number of routed messages.
	for _, name := range []string{"PKG", "D-C", "W-C", "RR"} {
		p, err := New(name, cfg(12))
		if err != nil {
			t.Fatal(err)
		}
		gen := workload.NewZipf(1.6, 300, 5000, 3)
		for {
			k, ok := gen.Next()
			if !ok {
				break
			}
			p.Route(k)
		}
		type loader interface{ Loads() []int64 }
		l, ok := p.(loader)
		if !ok {
			t.Fatalf("%s does not expose Loads", name)
		}
		var sum int64
		for _, v := range l.Loads() {
			sum += v
		}
		if sum != 5000 {
			t.Errorf("%s local loads sum to %d, want 5000", name, sum)
		}
	}
}

func TestNamesHaveNoOracle(t *testing.T) {
	// Oracle and ForcedD are experimental instruments, not part of the
	// paper's algorithm set exposed through the registry.
	for _, n := range Names {
		if strings.Contains(n, "Oracle") || strings.Contains(n, "Greedy") {
			t.Fatalf("registry leaked experimental algorithm %q", n)
		}
	}
	if _, err := New("Oracle", cfg(4)); err == nil {
		t.Fatal("Oracle constructible by name")
	}
}
