package core

// loadtree.go implements the load-index subsystem: a flat-array
// tournament tree over the sender-local load vector that answers "which
// worker currently has the lowest load?" in O(1) and absorbs one load
// increment in O(log n), replacing the O(n) argmin scans that made the
// W-Choices head path (and large-d D-Choices candidate evaluation)
// linear in the deployment size. This is what opens the paper's actual
// operating regime — hundreds to tens of thousands of workers — where
// "two choices are not enough" and the head of the distribution must be
// spread over many (W-Choices: all) workers per message.
//
// # Tie-breaking is part of the contract
//
// The scans route ties to the FIRST position attaining the minimum
// (routeAll: lowest worker index; routeCands: earliest candidate-list
// position). The tree's comparison therefore prefers the lower index on
// equal loads, which makes the root the lexicographic (load, index)
// minimum — bit-exact with the scans, message for message, for every
// algorithm. The parity tests pin this: a scan-configured and a
// tree-configured partitioner produce identical worker sequences on
// identical streams.
//
// # Shape
//
// The tree is the standard iterative ("bottom-up segment tree") layout
// over exactly n leaves: node[n+i] represents worker i, node[k] for
// k ∈ [1, n) holds the winner (lower (load, index)) of its children
// node[2k] and node[2k+1], and node[1] is the global argmin. No
// power-of-two padding is needed — min is associative and commutative,
// so the bracket's shape cannot change the winner or the tie-break.
// After loads[w] changes, fixing the path from leaf n+w to the root
// restores every invariant in ⌈log₂ n⌉ steps.
//
// # Crossover
//
// Below loadIndexCrossover workers the packed 4-way conditional-move
// scan in routeAll is faster (it streams the load vector with near-zero
// branch cost, while the tree pays pointer-chasing and per-increment
// maintenance), so the index is adaptive: Config.LoadIndexAuto keeps
// the scan below the crossover and switches to the tree at or above it.
// The crossover was measured with BenchmarkRouteAtScale and the
// `scale` experiment's routing table on the W-C head path (see slb.go
// package docs): scan and tree run neck-and-neck at n = 64 (scan ≈ 8%
// ahead), and the tree is ≈ 2× faster by n = 256, so 128 is the
// default switch point. The tree also has no packing limit, which is
// what lifts the former Workers < 65536 cap: the packed scan encodes
// (load << 16 | index) in one int64 and cannot represent more workers,
// while tree nodes store bare worker indices.
const loadIndexCrossover = 128

// Config.LoadIndex values: how the argmin over the whole load vector
// (W-Choices' head path, D-Choices at d ≥ n) and over large candidate
// lists is computed. Routing decisions are bit-identical in all modes;
// only the cost changes.
const (
	// LoadIndexAuto (the default) selects by worker count: the packed
	// scan below loadIndexCrossover, the tournament tree at or above it.
	LoadIndexAuto = 0
	// LoadIndexScan forces the packed conditional-move scan everywhere.
	// Requires Workers < 65536 (the packing limit); construction panics
	// otherwise.
	LoadIndexScan = 1
	// LoadIndexTree forces the tournament tree (and the candidate
	// subset tournament in the batch path) at every worker count.
	LoadIndexTree = 2
)

// loadTree is the tournament (winner) tree over one sender's load
// vector. It aliases the greedy load slice — it never owns the loads,
// it only indexes them — so reads are always of live values; callers
// must fix(w) after every change to loads[w].
type loadTree struct {
	n     int
	loads []int64
	node  []int32 // 2n nodes; node[1] is the root, node[n+i] leaf i
}

// newLoadTree builds the index over the given load vector (not copied).
func newLoadTree(loads []int64) *loadTree {
	t := &loadTree{n: len(loads), loads: loads, node: make([]int32, 2*len(loads))}
	t.rebuild()
	return t
}

// winner returns whichever of two worker indices has the lower
// (load, index) — exactly the scans' first-lowest-wins tie-break.
func (t *loadTree) winner(a, b int32) int32 {
	la, lb := t.loads[a], t.loads[b]
	if lb < la || (lb == la && b < a) {
		return b
	}
	return a
}

// rebuild recomputes every node from the current loads in O(n).
func (t *loadTree) rebuild() {
	n := t.n
	for i := 0; i < n; i++ {
		t.node[n+i] = int32(i)
	}
	for k := n - 1; k >= 1; k-- {
		t.node[k] = t.winner(t.node[2*k], t.node[2*k+1])
	}
}

// min returns the least-loaded worker (lowest index on ties) in O(1).
func (t *loadTree) min() int {
	if t.n == 1 {
		return 0
	}
	return int(t.node[1])
}

// fix restores the tree after loads[w] changed: recompute the winners
// on the leaf-to-root path, ⌈log₂ n⌉ comparisons. The walk does not
// early-exit on an unchanged winner index, because an unchanged winner
// with a changed load still alters every comparison above it.
func (t *loadTree) fix(w int) {
	for k := (t.n + w) >> 1; k >= 1; k >>= 1 {
		t.node[k] = t.winner(t.node[2*k], t.node[2*k+1])
	}
}

// ---------------------------------------------------------------------------
// Candidate subset tournament (batch head runs)
//
// D-Choices with a large d evaluates an argmin over d deduplicated
// candidates per head message; the full-vector tree cannot answer
// subset queries, but for one digest the candidate LIST is a pure
// function of (digest, list length) — the dedup-prefix property makes
// two lookups with the same deduplicated length return the same list —
// so a tournament over it (leaves are list positions, ties prefer the
// earlier position: the routeCands tie-break) stays meaningful ACROSS
// runs. routeCandsTree keeps a small direct-mapped cache of such
// tournaments, each stamped with the position it last observed in the
// core's modification log of load increments (see greedy.clog). On the
// next run of the same head key the cached tree is repaired by
// replaying only the increments that landed since — O(changed leaves ·
// log c) — instead of the O(c) rebuild the previous throwaway design
// paid on every run, which dominated exactly the short-run regime
// (skewed streams chop head keys into 1–3 message runs at batch
// boundaries). Routing stays O(log c) per message and bit-exact with
// the scans: repair recomputes the same winner nodes a rebuild would.

// Candidate tournament cache shape. Slots are direct-mapped by digest
// low bits (digests are hash outputs, so low bits are well mixed); a
// conflicting hot key simply rebuilds, never corrupts. Lists longer
// than candTourMaxCands fall back to the throwaway scratch build so
// the cache's worst-case footprint stays bounded (~2 MiB: slots ·
// (2c nodes + 2c-slot position table) · 4 B). The modification log is
// capped: when it reaches candTourLogMax entries a generation bump
// empties it, invalidating every cached tournament at once (they
// rebuild on next use).
const (
	candTourSlots    = 128
	candTourMaxCands = 1024
	candTourLogMax   = 4096
)

// candTour is one cached candidate tournament: the (digest, length)
// identity of the list it was built over, the log generation/position
// it is synced to, the 2c tournament nodes, and an open-addressed
// worker→(position+1) table used to map logged increments back to
// leaves during repair (0 means empty; linear probing at load ≤ ½).
type candTour struct {
	dig     KeyDigest
	c       int32
	gen     uint32
	sync    int32
	tabMask int32
	node    []int32
	pos     []int32
}

// lookupPos returns the list position of worker w in the tournament's
// candidate list, or -1 when w is not a candidate. cand is the live
// list (same content the table was built from).
func (e *candTour) lookupPos(cand []int32, w int32) int {
	for h := w & e.tabMask; ; h = (h + 1) & e.tabMask {
		v := e.pos[h]
		if v == 0 {
			return -1
		}
		if p := v - 1; cand[p] == w {
			return int(p)
		}
	}
}

// build (re)constructs the tournament and its worker→position table
// over cand, reusing the entry's slices when capacity allows, and
// returns the node slice sized to 2c.
func (e *candTour) build(g *greedy, dg KeyDigest, cand []int32) []int32 {
	c := len(cand)
	if cap(e.node) < 2*c {
		e.node = make([]int32, 2*c)
	}
	t := e.node[:2*c]
	for i := 0; i < c; i++ {
		t[c+i] = int32(i)
	}
	for k := c - 1; k >= 1; k-- {
		t[k] = g.candWinner(cand, t[2*k], t[2*k+1])
	}
	size := 4
	for size < 2*c {
		size <<= 1
	}
	if cap(e.pos) < size {
		e.pos = make([]int32, size)
	}
	tab := e.pos[:size]
	for i := range tab {
		tab[i] = 0
	}
	e.pos, e.tabMask = tab, int32(size-1)
	for i, w := range cand {
		h := w & e.tabMask
		for tab[h] != 0 {
			h = (h + 1) & e.tabMask
		}
		tab[h] = int32(i + 1)
	}
	e.dig, e.c = dg, int32(c)
	e.node = t
	return t
}

// tourReady reports whether a cached tournament for (dg, c) exists and
// is repairable more cheaply than a rebuild: same log generation and at
// most c increments behind (replaying more than c paths costs more than
// the O(c) rebuild — and then the scan is competitive anyway).
func (g *greedy) tourReady(dg KeyDigest, c int) bool {
	if !g.clogOn || c > candTourMaxCands {
		return false
	}
	e := &g.ctours[int(uint64(dg))&(candTourSlots-1)]
	return e.dig == dg && int(e.c) == c && e.gen == g.clogGen &&
		int(e.sync) <= len(g.clog) && len(g.clog)-int(e.sync) <= c
}

// useCandTree reports whether a head segment of msgs messages of digest
// dg over c candidates should route through the subset tournament. A
// cold build costs ≈2 scans' worth of work (c leaves + c−1 winner
// compares), so the cold break-even is at three messages: 2c + 3·log c
// < 3c for any c above the crossover. Shorter runs — the regime the
// persistent cache exists for — go through the tournament only when a
// synced cached tree is available, so a 1-message run never pays a
// build it cannot amortize. Below the crossover the scan's tight
// gather loop wins regardless — except under LoadIndexTree, which
// applies the tournament at every size past break-even so the parity
// suite exercises it throughout.
func (g *greedy) useCandTree(dg KeyDigest, c, msgs int) bool {
	if msgs < 1 || c < 2 || g.lidx == LoadIndexScan {
		return false
	}
	if g.lidx != LoadIndexTree && c < loadIndexCrossover {
		return false
	}
	return msgs >= 3 || g.tourReady(dg, c)
}

// candWinner is the subset tournament's comparison: positions into the
// candidate list, loads read through the list, earlier position wins
// ties (routeCands' first-occurrence-wins, bit-exact).
func (g *greedy) candWinner(cand []int32, a, b int32) int32 {
	la, lb := g.loads[cand[a]], g.loads[cand[b]]
	if lb < la || (lb == la && b < a) {
		return b
	}
	return a
}

// routeCandsTree routes len(dst) consecutive messages of head digest dg
// over its candidate list through a subset tournament, reproducing
// len(dst) sequential routeCands calls exactly. Callers guarantee
// len(cand) ≥ 2 and that nothing else touches the loads between the
// messages (true within a batch run).
//
// The first call enables the modification log: from then on every load
// increment of this core (they all flow through bump — a scheme whose
// useCandTree can fire always carries the full-vector tree, so routeAll
// never takes its plain-increment scan path here) is appended to
// g.clog, and the tournament cached for dg is stamped with the log
// position it reflects. A later run of the same digest replays only the
// increments since that stamp, fixing one leaf-to-root path per logged
// candidate worker.
func (g *greedy) routeCandsTree(dg KeyDigest, cand []int32, dst []int) {
	g.nTreeMin += int64(len(dst))
	c := len(cand)
	if !g.clogOn {
		g.clogOn = true
		g.ctours = make([]candTour, candTourSlots)
	}
	if c > candTourMaxCands {
		g.routeCandsScratch(cand, dst)
		return
	}
	e := &g.ctours[int(uint64(dg))&(candTourSlots-1)]
	var t []int32
	if e.dig == dg && int(e.c) == c && e.gen == g.clogGen &&
		int(e.sync) <= len(g.clog) && len(g.clog)-int(e.sync) <= c {
		t = e.node[:2*c]
		for _, w := range g.clog[e.sync:] {
			pos := e.lookupPos(cand, w)
			if pos < 0 {
				continue
			}
			for k := (c + pos) >> 1; k >= 1; k >>= 1 {
				t[k] = g.candWinner(cand, t[2*k], t[2*k+1])
			}
		}
	} else {
		t = e.build(g, dg, cand)
	}
	for m := range dst {
		pos := int(t[1])
		w := int(cand[pos])
		g.bump(w) // also maintains the full-vector tree and the log
		for k := (c + pos) >> 1; k >= 1; k >>= 1 {
			t[k] = g.candWinner(cand, t[2*k], t[2*k+1])
		}
		dst[m] = w
	}
	// Re-stamp unconditionally: even if bump rolled the log generation
	// mid-run, the tree reflects every increment up to the new log head.
	e.gen, e.sync = g.clogGen, int32(len(g.clog))
}

// routeCandsScratch is the uncached fallback for candidate lists too
// large for the tournament cache: a throwaway build into the greedy
// core's scratch array (grows to the largest list seen, so steady state
// allocates nothing), exactly the pre-cache design.
func (g *greedy) routeCandsScratch(cand []int32, dst []int) {
	c := len(cand)
	if cap(g.ctree) < 2*c {
		g.ctree = make([]int32, 2*c)
	}
	t := g.ctree[:2*c]
	for i := 0; i < c; i++ {
		t[c+i] = int32(i)
	}
	for k := c - 1; k >= 1; k-- {
		t[k] = g.candWinner(cand, t[2*k], t[2*k+1])
	}
	for m := range dst {
		pos := int(t[1])
		w := int(cand[pos])
		g.bump(w)
		for k := (c + pos) >> 1; k >= 1; k >>= 1 {
			t[k] = g.candWinner(cand, t[2*k], t[2*k+1])
		}
		dst[m] = w
	}
}
