package core

// batch.go implements the batched routing fast path. RouteBatch routes a
// slab of keys in one call, making the same decision for every message
// that per-message Route would make (a property the tests pin), while
// paying the per-message costs — key digesting, candidate derivation,
// sketch-table lookups — once per *run* of identical keys instead of
// once per message. Skewed streams are exactly the streams where this
// matters: under a Zipf head, a large fraction of messages repeat the
// previous key, and those repeats reduce to a couple of load compares.
//
// The steady-state batch path performs no allocations for any algorithm.
//
// RouteBatchDigests is the same path with the digest slab supplied by
// (and surrendered to) the caller: the one key-byte scan routing
// performs becomes the digest every downstream layer — aggregation
// tables, re-keyed edges — operates on, so a message's key is digested
// exactly once end to end.

import "slb/internal/hashing"

// BatchPartitioner is implemented by partitioners that support batched
// routing. All partitioners in this package implement it.
type BatchPartitioner interface {
	Partitioner

	// RouteBatch routes keys[i] to dst[i] for every i, updating internal
	// state exactly as len(keys) successive Route calls would: the
	// resulting worker sequence is identical message for message.
	// It panics if dst is shorter than keys.
	RouteBatch(keys []string, dst []int)
}

// DigestBatchPartitioner is implemented by partitioners whose batch path
// can hand the caller the digests routing already computed — the batched
// half of the hash-once lifecycle. All partitioners in this package
// implement it; RouteBatch is RouteBatchDigests over a partitioner-owned
// scratch slab wherever a digest slab is needed at all.
type DigestBatchPartitioner interface {
	BatchPartitioner

	// RouteBatchDigests routes exactly like RouteBatch and additionally
	// fills digs[i] with Digest(keys[i]) for every i — the one scan of
	// each key's bytes the whole system performs. Callers that aggregate
	// or re-key downstream keep the slab and never digest again. It
	// panics if digs or dst is shorter than keys.
	RouteBatchDigests(keys []string, digs []KeyDigest, dst []int)
}

// RouteBatch routes a batch of keys through p, using its native batch
// path when available and falling back to per-message Route otherwise.
func RouteBatch(p Partitioner, keys []string, dst []int) {
	if bp, ok := p.(BatchPartitioner); ok {
		bp.RouteBatch(keys, dst)
		return
	}
	checkBatch(keys, dst)
	for i, k := range keys {
		dst[i] = p.Route(k)
	}
}

// RouteBatchDigests routes a batch through p and returns the computed
// digests in digs, using the native path when available. The fallback
// digests each key once and routes through RouteDigest (or Route for
// foreign implementations, which re-digests — exact, just slower).
func RouteBatchDigests(p Partitioner, keys []string, digs []KeyDigest, dst []int) {
	if dbp, ok := p.(DigestBatchPartitioner); ok {
		dbp.RouteBatchDigests(keys, digs, dst)
		return
	}
	checkBatchDigests(keys, digs, dst)
	for i, k := range keys {
		digs[i] = hashing.Digest(k)
		dst[i] = RouteDigest(p, digs[i], k)
	}
}

func checkBatch(keys []string, dst []int) {
	if len(dst) < len(keys) {
		panic("core: RouteBatch dst shorter than keys")
	}
}

func checkBatchDigests(keys []string, digs []KeyDigest, dst []int) {
	checkBatch(keys, dst)
	if len(digs) < len(keys) {
		panic("core: RouteBatchDigests digs shorter than keys")
	}
}

// fillDigests performs the batch's single scan of each key's bytes.
func fillDigests(keys []string, digs []KeyDigest) {
	for i, k := range keys {
		digs[i] = hashing.Digest(k)
	}
}

// candWays is the head-candidate cache's set associativity. A skewed
// head is exactly the access pattern that thrashes a direct-mapped
// cache — two hot keys sharing a slot evict each other on every run,
// and at large d each eviction costs a d-mix recompute — while 4-way
// sets with LRU replacement keep the hottest keys resident.
const candWays = 4

// candCacheSets returns the INITIAL number of sets: 8 (32 entries)
// covers the few-dozen-key heads of the paper's configurations; large
// deployments (whose θ-derived heads are bigger and whose recomputes
// cost thousands of mixes) start at 16 sets (64 entries). The D-Choices
// solver then grows the cache to the head cardinality its sketch
// actually observes (ensureHeadCapacity) — the static guess only has to
// carry the warm-up. Storage is entries·n int32s.
func candCacheSets(n int) int {
	if n >= 2048 {
		return 16
	}
	return 8
}

// candCacheMaxEntries caps cache growth so the candidate store
// (entries·n int32s) stays ≤ ~4 MiB: a deployment with a huge worker
// count gets fewer, larger entries. Never below the static default, so
// growth can only ever be a no-op there, not a shrink.
func candCacheMaxEntries(n int) int {
	m := (4 << 20) / (4 * n)
	if m < 32 {
		m = 32
	}
	if m > 256 {
		m = 256
	}
	return m
}

// candDWindow is how many consecutive d values one cached derivation
// serves, and candDSlack how far past the requested d a miss derives.
// The D-Choices solver re-runs every SolveEvery messages and its d
// JITTERS by ±1–2 around the fixed point (the head snapshot is a
// fluctuating estimate); keying entries on an exact d would invalidate
// every cached list at each wobble, re-deriving thousands of buckets
// per head key. The dedup-prefix property makes the window free:
// deduplication preserves first-occurrence order, so the deduplicated
// list for d′ < d is exactly a PREFIX of the list derived for d — one
// derivation records the prefix length at each of the top candDWindow
// d values and serves them all, bit-exactly.
const (
	candDWindow = 4
	candDSlack  = 2
)

// candCache memoizes head keys' candidate worker lists across batches.
// Candidates are a pure function of (digest, d), so entries never go
// stale: a lookup validates both. Deriving a head key's d candidates is
// d hash mixes — the single largest per-message cost for D-Choices when
// the solver picks a large d — and with the cache the batch path pays it
// once per (head key, d window) instead of once per run.
type candCache struct {
	n     int
	sets  int
	digs  []KeyDigest // sets·candWays entries
	dhi   []int32     // highest d the entry's derivation covers (0 = empty)
	lens  []int32     // flat [entries][candDWindow]: dedup prefix length at d = dhi−k
	used  []uint32    // LRU stamps, one per entry
	tick  uint32
	cands []int32 // flat [sets·candWays][n]
	// Dedup stamps: mark[w] == epoch means worker w is already in the
	// list being built. An epoch bump invalidates every mark in O(1),
	// making a miss O(d) instead of the O(d²) a membership scan costs —
	// the difference between microseconds and milliseconds per miss
	// once the solver picks d in the thousands (large deployments).
	mark  []int32
	epoch int32

	// Hit/miss counters over lookup calls (one lookup serves a whole
	// run, so these count runs, not messages); surfaced via RouteStats.
	// Note the hot-key memo in DChoices.headCands short-circuits most
	// lookups for the dominant key — memo hits never reach the cache.
	hits   int64
	misses int64
}

func newCandCache(n int) candCache {
	sets := candCacheSets(n)
	entries := sets * candWays
	return candCache{
		n:     n,
		sets:  sets,
		digs:  make([]KeyDigest, entries),
		dhi:   make([]int32, entries),
		lens:  make([]int32, entries*candDWindow),
		used:  make([]uint32, entries),
		cands: make([]int32, entries*n),
		mark:  make([]int32, n),
	}
}

// ensureHeadCapacity grows the cache to fit an observed head of
// `heads` keys: the smallest power-of-two set count giving at least
// 2·heads entries (half-empty sets keep LRU conflicts rare), within
// candCacheMaxEntries. The previous sizing keyed off n alone, so a
// low-θ configuration whose sketch tracked hundreds of head keys
// thrashed a 32-entry cache — every hot key re-deriving its d buckets
// once per run. The solver calls this with each head snapshot; growth
// discards the cached entries, which is harmless because candidates
// are a pure function of (digest, d) and re-derive bit-identically on
// the next lookup. Never shrinks.
func (cc *candCache) ensureHeadCapacity(heads int) {
	want := 2 * heads
	if m := candCacheMaxEntries(cc.n); want > m {
		want = m
	}
	if want <= cc.sets*candWays {
		return
	}
	sets := cc.sets
	for sets*candWays < want {
		sets <<= 1
	}
	entries := sets * candWays
	cc.sets = sets
	cc.digs = make([]KeyDigest, entries)
	cc.dhi = make([]int32, entries)
	cc.lens = make([]int32, entries*candDWindow)
	cc.used = make([]uint32, entries)
	cc.cands = make([]int32, entries*cc.n)
	cc.tick = 0
}

// lookup returns the candidate list for (dg, d), deriving and caching
// it on miss (into the set's least-recently-used way). The stored list
// is deduplicated preserving first-occurrence order, which routes
// identically: a duplicate worker can never beat its first occurrence
// (same load, later position), so dropping it changes neither the
// argmin nor the tie-break — while shortening the scan the router pays
// per message (at d near n, hash collisions make the list noticeably
// shorter than d). A hit serves any d within the entry's derivation
// window as the recorded dedup prefix (see candDWindow).
func (cc *candCache) lookup(dg KeyDigest, d int, f *hashing.Family) []int32 {
	cc.tick++
	if cc.tick == 0 { // wrapped: old stamps would invert the LRU order
		for i := range cc.used {
			cc.used[i] = 0
		}
		cc.tick = 1
	}
	set := int(hashing.Mix64(dg) & uint64(cc.sets-1))
	e := set * candWays
	victim := e
	for w := e; w < e+candWays; w++ {
		hi := cc.dhi[w]
		if cc.digs[w] == dg && int32(d) <= hi && int32(d) > hi-candDWindow {
			cc.used[w] = cc.tick
			cc.hits++
			return cc.cands[w*cc.n : w*cc.n+int(cc.lens[w*candDWindow+int(hi-int32(d))])]
		}
		if cc.used[w] < cc.used[victim] {
			victim = w
		}
	}
	cc.misses++
	cc.epoch++
	if cc.epoch == 0 { // wrapped: every mark is stale garbage, clear once
		for i := range cc.mark {
			cc.mark[i] = 0
		}
		cc.epoch = 1
	}
	// Derive past the requested d (bounded by the family size n) so the
	// solver's next wobble stays inside the window.
	dhi := d + candDSlack
	if dhi > cc.n {
		dhi = cc.n
	}
	c := cc.cands[victim*cc.n : victim*cc.n : (victim+1)*cc.n]
	for i := 0; i < dhi; i++ {
		w := int32(f.BucketDigest(i, dg, cc.n))
		if cc.mark[w] != cc.epoch {
			cc.mark[w] = cc.epoch
			c = append(c, w)
		}
		if k := dhi - 1 - i; k < candDWindow {
			cc.lens[victim*candDWindow+k] = int32(len(c))
		}
	}
	cc.digs[victim] = dg
	cc.dhi[victim] = int32(dhi)
	cc.used[victim] = cc.tick
	return cc.cands[victim*cc.n : victim*cc.n+int(cc.lens[victim*candDWindow+int(int32(dhi)-int32(d))])]
}

// runLen returns the length of the run of identical keys starting at i.
// Repeated keys in a slab usually share the same backing string (the
// generators intern them), so the comparison is a pointer check.
func runLen(keys []string, i int) int {
	k := keys[i]
	j := i + 1
	for j < len(keys) && keys[j] == k {
		j++
	}
	return j - i
}

// runLenDigest is runLen over precomputed digests: an integer compare
// per message. Two distinct keys sharing a digest route (and count)
// identically everywhere in the digest world, so merging their runs is
// exact, not an approximation.
func runLenDigest(digs []hashing.KeyDigest, i int) int {
	d := digs[i]
	j := i + 1
	for j < len(digs) && digs[j] == d {
		j++
	}
	return j - i
}

// ---------------------------------------------------------------------------
// Baselines

// RouteBatch implements BatchPartitioner: a tight digest-and-mix loop.
// KG's per-message work is already a single digest and mix, below the
// cost of run detection, so the batch win here is just the hoisted
// bounds and dispatch.
func (k *KeyGrouping) RouteBatch(keys []string, dst []int) {
	checkBatch(keys, dst)
	for i, key := range keys {
		dst[i] = k.family.BucketDigest(0, hashing.Digest(key), k.n)
	}
}

// RouteBatchDigests implements DigestBatchPartitioner.
func (k *KeyGrouping) RouteBatchDigests(keys []string, digs []KeyDigest, dst []int) {
	checkBatchDigests(keys, digs, dst)
	for i, key := range keys {
		dg := hashing.Digest(key)
		digs[i] = dg
		dst[i] = k.family.BucketDigest(0, dg, k.n)
	}
}

// RouteBatch implements BatchPartitioner: keys are ignored, so the whole
// slab is a tight round-robin fill.
func (s *ShuffleGrouping) RouteBatch(keys []string, dst []int) {
	checkBatch(keys, dst)
	w := s.next
	for i := range keys {
		dst[i] = w
		w++
		if w == s.n {
			w = 0
		}
	}
	s.next = w
}

// RouteBatchDigests implements DigestBatchPartitioner. Routing ignores
// the keys, but the contract — digs[i] = Digest(keys[i]) — still holds,
// so a caller that aggregates downstream gets its digests from the same
// call regardless of the edge's algorithm.
func (s *ShuffleGrouping) RouteBatchDigests(keys []string, digs []KeyDigest, dst []int) {
	checkBatchDigests(keys, digs, dst)
	fillDigests(keys, digs)
	s.RouteBatch(keys, dst)
}

// RouteBatch implements BatchPartitioner (one loop, shared with the
// digest-carry form: the scratch store costs a cached write per
// message, below measurement noise).
func (p *PKG) RouteBatch(keys []string, dst []int) {
	p.RouteBatchDigests(keys, p.scratchDigests(len(keys)), dst)
}

// RouteBatchDigests implements DigestBatchPartitioner: a tight
// digest–two-mix–pick loop. PKG keeps no sketch, so (like KG) there is
// nothing a run can amortize that would repay the run-detection
// compare; the batch win is the hoisted dispatch and bounds. The plain
// increments are safe: PKG never argmins over the whole vector, so it
// never carries a load index to keep in sync.
func (p *PKG) RouteBatchDigests(keys []string, digs []KeyDigest, dst []int) {
	checkBatchDigests(keys, digs, dst)
	loads := p.loads
	for i, key := range keys {
		dg := hashing.Digest(key)
		digs[i] = dg
		w0 := p.family.BucketDigest(0, dg, p.n)
		w1 := p.family.BucketDigest(1, dg, p.n)
		if loads[w1] < loads[w0] {
			w0 = w1
		}
		loads[w0]++
		dst[i] = w0
	}
}

// ---------------------------------------------------------------------------
// Head-tracking schemes
//
// Within a run of one key in insertion-only sketch mode, the key's
// estimated count and the stream length each advance by exactly 1 per
// message, so head membership for message m of the run is a pure
// arithmetic predicate (HeadTracker.isHeadAt) over the state after the
// run's first offer — and monotone in m (see maxMonotoneTheta), so one
// crossing scan splits the run into a tail segment and a head segment.
// Nothing reads the sketch between the messages of a run except the
// D-Choices solver, so the whole run is offered in ONE OfferDigestN
// (HeadTracker.observeRun); D-Choices switches to a careful deferred-
// offer path for the rare runs that may contain a re-solve.

// routeBatchFallback drives the per-message path (sliding-window sketch
// mode, where rotation points depend on exact offer order, or a θ
// outside the monotone range). The digests are already filled, so even
// the fallback scans each key once.
func routeBatchFallback(p DigestRouter, keys []string, digs []KeyDigest, dst []int) {
	for i, k := range keys {
		dst[i] = p.RouteDigest(digs[i], k)
	}
}

// RouteBatch implements BatchPartitioner (Algorithm 1 with D-CHOICES).
func (p *DChoices) RouteBatch(keys []string, dst []int) {
	p.RouteBatchDigests(keys, p.scratchDigests(len(keys)), dst)
}

// RouteBatchDigests implements DigestBatchPartitioner.
func (p *DChoices) RouteBatchDigests(keys []string, digs []KeyDigest, dst []int) {
	checkBatchDigests(keys, digs, dst)
	fillDigests(keys, digs)
	if !p.head.canBatch() {
		routeBatchFallback(p, keys, digs, dst)
		return
	}
	for i := 0; i < len(keys); {
		r := runLenDigest(digs[:len(keys)], i)
		p.routeRun(digs[i], keys[i], r, dst[i:i+r])
		i += r
	}
}

// routeRun routes r consecutive messages of one key, reproducing the
// decision sequence of r Route calls exactly. The common case offers
// the whole run to the sketch in one operation: that is legal whenever
// no solver re-solve can fall inside the run, because then nothing
// reads the sketch between the run's messages. A re-solve is possible
// only when the post-offer stream position crosses lastSolveN +
// SolveEvery inside the run (or while no solve has ever happened);
// those rare runs take the careful path, which defers offers around
// the solve so FINDOPTIMALCHOICES sees exactly the sequential state.
func (p *DChoices) routeRun(dg KeyDigest, key string, r int, dst []int) {
	if p.solved {
		n0 := p.head.observed() + 1 // post-offer position of message 1
		if n0+uint64(r-1) < p.lastSolveN+uint64(p.solveEvery) {
			p.routeRunBulk(dg, key, r, dst)
			return
		}
	}
	p.routeRunNearSolve(dg, key, r, dst)
}

// routeRunBulk is the fast path: one sketch operation for the run, one
// head-crossing scan, then branch-free tail and head loops over cached
// candidates. Callers guarantee no re-solve can trigger inside the run,
// so p.d is fixed.
func (p *DChoices) routeRunBulk(dg KeyDigest, key string, r int, dst []int) {
	c0, n0 := p.head.observeRun(dg, key, r)
	cross := p.head.headCrossing(c0, n0, r)
	if cross > 0 {
		p.routeTailSeg(dg, dst[:cross])
	}
	if cross == r {
		return
	}
	p.head.noteHead(r - cross)
	if p.d >= p.n {
		for m := cross; m < r; m++ {
			dst[m] = p.routeAll()
		}
		return
	}
	headCands := p.headCands(dg)
	if p.useCandTree(dg, len(headCands), r-cross) {
		p.routeCandsTree(dg, headCands, dst[cross:r])
		return
	}
	for m := cross; m < r; m++ {
		dst[m] = p.routeCands(headCands)
	}
}

// routeTailSeg routes a segment of tail messages of one key: the
// 2-choice pair is derived once, then two load compares per message
// (plus the O(log n) load-index repair when the scheme carries one).
func (g *greedy) routeTailSeg(dg KeyDigest, dst []int) {
	t0 := g.family.BucketDigest(0, dg, g.n)
	t1 := g.family.BucketDigest(1, dg, g.n)
	loads := g.loads
	for m := range dst {
		w := t0
		if loads[t1] < loads[t0] {
			w = t1
		}
		g.bump(w)
		dst[m] = w
	}
}

// routeRunNearSolve is the careful path for runs that may contain a
// re-solve: offers are deferred and synced so the solver reads exactly
// the sequential sketch state.
func (p *DChoices) routeRunNearSolve(dg KeyDigest, key string, r int, dst []int) {
	c0, n0 := p.head.observeFirst(dg, key)
	off := 1 // run messages offered to the sketch so far

	var t0, t1 int // tail candidate pair, derived on first tail message
	haveTail := false
	var headCands []int32 // cached candidate list for headD choices
	headD := -1

	for m := 0; m < r; {
		cm, nm := c0+uint64(m), n0+uint64(m)
		if !p.head.isHeadAt(cm, nm) {
			if !haveTail {
				t0 = p.family.BucketDigest(0, dg, p.n)
				t1 = p.family.BucketDigest(1, dg, p.n)
				haveTail = true
			}
			w := t0
			if p.loads[t1] < p.loads[t0] {
				w = t1
			}
			p.bump(w)
			dst[m] = w
			m++
			continue
		}
		// Head message. Route calls findOptimalChoices here; it is a
		// cached read unless the solve cadence has elapsed, in which case
		// the solver must see the sketch exactly as the sequential path
		// would: all offers up to and including this message, none after.
		if p.solveDue(nm) {
			if off < m+1 {
				p.head.offerRest(dg, key, uint64(m+1-off))
				off = m + 1
			}
			p.findOptimalChoices()
			headD = -1 // d may have changed
		}
		// Extend to the longest chunk of head messages with no re-solve
		// due; the d checks and candidate lookup are hoisted out of it.
		t := 1
		for m+t < r {
			nj := n0 + uint64(m+t)
			if p.solveDue(nj) || !p.head.isHeadAt(c0+uint64(m+t), nj) {
				break
			}
			t++
		}
		p.head.noteHead(t)
		if p.d >= p.n {
			for j := m; j < m+t; j++ {
				dst[j] = p.routeAll()
			}
		} else {
			if headD != p.d {
				headCands = p.cache.lookup(dg, p.d, p.family)
				headD = p.d
			}
			if p.useCandTree(dg, len(headCands), t) {
				p.routeCandsTree(dg, headCands, dst[m:m+t])
			} else {
				for j := m; j < m+t; j++ {
					dst[j] = p.routeCands(headCands)
				}
			}
		}
		m += t
	}
	if off < r {
		p.head.offerRest(dg, key, uint64(r-off))
	}
}

// RouteBatch implements BatchPartitioner (Algorithm 1 with W-CHOICES).
func (p *WChoices) RouteBatch(keys []string, dst []int) {
	p.RouteBatchDigests(keys, p.scratchDigests(len(keys)), dst)
}

// RouteBatchDigests implements DigestBatchPartitioner.
func (p *WChoices) RouteBatchDigests(keys []string, digs []KeyDigest, dst []int) {
	checkBatchDigests(keys, digs, dst)
	fillDigests(keys, digs)
	if !p.head.canBatch() {
		routeBatchFallback(p, keys, digs, dst)
		return
	}
	for i := 0; i < len(keys); {
		r := runLenDigest(digs[:len(keys)], i)
		p.routeRun(digs[i], keys[i], r, dst[i:i+r])
		i += r
	}
}

// routeRun routes r consecutive messages of one key. W-Choices never
// reads the sketch between a run's messages (no solver), so the whole
// run is offered in one sketch operation, split once at the head
// crossing, and routed with branch-free loops.
func (p *WChoices) routeRun(dg KeyDigest, key string, r int, dst []int) {
	c0, n0 := p.head.observeRun(dg, key, r)
	cross := p.head.headCrossing(c0, n0, r)
	if cross > 0 {
		p.routeTailSeg(dg, dst[:cross])
	}
	p.head.noteHead(r - cross)
	for m := cross; m < r; m++ {
		dst[m] = p.routeAll()
	}
}

// RouteBatch implements BatchPartitioner (RR head baseline).
func (p *RoundRobin) RouteBatch(keys []string, dst []int) {
	p.RouteBatchDigests(keys, p.scratchDigests(len(keys)), dst)
}

// RouteBatchDigests implements DigestBatchPartitioner.
func (p *RoundRobin) RouteBatchDigests(keys []string, digs []KeyDigest, dst []int) {
	checkBatchDigests(keys, digs, dst)
	fillDigests(keys, digs)
	if !p.head.canBatch() {
		routeBatchFallback(p, keys, digs, dst)
		return
	}
	for i := 0; i < len(keys); {
		r := runLenDigest(digs[:len(keys)], i)
		p.routeRun(digs[i], keys[i], r, dst[i:i+r])
		i += r
	}
}

// routeRun routes r consecutive messages of one key; head messages take
// the round-robin ring in a tight fill, tail messages the cached
// 2-choice pair. Like W-Choices, the run is offered in one sketch
// operation. The ring fill's plain increments are safe: RR never
// argmins over the whole vector, so it never carries a load index.
func (p *RoundRobin) routeRun(dg KeyDigest, key string, r int, dst []int) {
	c0, n0 := p.head.observeRun(dg, key, r)
	cross := p.head.headCrossing(c0, n0, r)
	if cross > 0 {
		p.routeTailSeg(dg, dst[:cross])
	}
	p.head.noteHead(r - cross)
	w := p.next
	for m := cross; m < r; m++ {
		dst[m] = w
		p.loads[w]++
		w++
		if w == p.n {
			w = 0
		}
	}
	if cross < r {
		p.next = w
	}
}

// RouteBatch implements BatchPartitioner (fixed-d experimental scheme).
func (p *ForcedD) RouteBatch(keys []string, dst []int) {
	p.RouteBatchDigests(keys, p.scratchDigests(len(keys)), dst)
}

// RouteBatchDigests implements DigestBatchPartitioner.
func (p *ForcedD) RouteBatchDigests(keys []string, digs []KeyDigest, dst []int) {
	checkBatchDigests(keys, digs, dst)
	fillDigests(keys, digs)
	if !p.head.canBatch() {
		routeBatchFallback(p, keys, digs, dst)
		return
	}
	for i := 0; i < len(keys); {
		r := runLenDigest(digs[:len(keys)], i)
		p.routeRun(digs[i], keys[i], r, dst[i:i+r])
		i += r
	}
}

// routeRun routes r consecutive messages of one key with the forced d
// for head messages. Like W-Choices, the run is offered in one sketch
// operation and split once at the head crossing.
func (p *ForcedD) routeRun(dg KeyDigest, key string, r int, dst []int) {
	c0, n0 := p.head.observeRun(dg, key, r)
	cross := p.head.headCrossing(c0, n0, r)
	if cross > 0 {
		p.routeTailSeg(dg, dst[:cross])
	}
	if cross == r {
		return
	}
	p.head.noteHead(r - cross)
	if p.d == p.n {
		for m := cross; m < r; m++ {
			dst[m] = p.routeAll()
		}
		return
	}
	headCands := p.cache.lookup(dg, p.d, p.family)
	if p.useCandTree(dg, len(headCands), r-cross) {
		p.routeCandsTree(dg, headCands, dst[cross:r])
		return
	}
	for m := cross; m < r; m++ {
		dst[m] = p.routeCands(headCands)
	}
}

// RouteBatch implements BatchPartitioner. Unlike the other schemes it
// does NOT delegate to RouteBatchDigests: Oracle's head runs never need
// a digest at all (routeAll is load-only) and tail runs need one per
// RUN, so filling the whole slab would digest every message of a
// head-dominated stream for nothing. Parity with RouteBatchDigests is
// pinned by the experimental batch-parity test.
func (p *Oracle) RouteBatch(keys []string, dst []int) {
	checkBatch(keys, dst)
	for i := 0; i < len(keys); {
		r := runLen(keys, i)
		key := keys[i]
		if p.isHead(key) {
			for j := i; j < i+r; j++ {
				dst[j] = p.routeAll()
			}
		} else {
			p.routeTailSeg(hashing.Digest(key), dst[i:i+r])
		}
		i += r
	}
}

// RouteBatchDigests implements DigestBatchPartitioner. Run detection
// stays over key identity (the oracle predicate is a pure function of
// the key string, not the digest, and is evaluated once per run), while
// head runs and tail routing use the filled slab.
func (p *Oracle) RouteBatchDigests(keys []string, digs []KeyDigest, dst []int) {
	checkBatchDigests(keys, digs, dst)
	fillDigests(keys, digs)
	for i := 0; i < len(keys); {
		r := runLen(keys, i)
		if p.isHead(keys[i]) {
			for j := i; j < i+r; j++ {
				dst[j] = p.routeAll()
			}
		} else {
			p.routeTailSeg(digs[i], dst[i:i+r])
		}
		i += r
	}
}

// Interface conformance for every algorithm.
var (
	_ DigestBatchPartitioner = (*KeyGrouping)(nil)
	_ DigestBatchPartitioner = (*ShuffleGrouping)(nil)
	_ DigestBatchPartitioner = (*PKG)(nil)
	_ DigestBatchPartitioner = (*DChoices)(nil)
	_ DigestBatchPartitioner = (*WChoices)(nil)
	_ DigestBatchPartitioner = (*RoundRobin)(nil)
	_ DigestBatchPartitioner = (*ForcedD)(nil)
	_ DigestBatchPartitioner = (*Oracle)(nil)
	_ DigestRouter           = (*KeyGrouping)(nil)
	_ DigestRouter           = (*ShuffleGrouping)(nil)
	_ DigestRouter           = (*PKG)(nil)
	_ DigestRouter           = (*DChoices)(nil)
	_ DigestRouter           = (*WChoices)(nil)
	_ DigestRouter           = (*RoundRobin)(nil)
	_ DigestRouter           = (*ForcedD)(nil)
	_ DigestRouter           = (*Oracle)(nil)
)
