package analysis

import (
	"testing"

	"slb/internal/workload"
)

func TestSolveDPrefixNeverExceedsFull(t *testing.T) {
	// Fewer constraints ⇒ d can only shrink or stay equal.
	for _, z := range []float64{1.0, 1.4, 1.8, 2.0} {
		for _, n := range []int{10, 50, 100} {
			p := workload.ZipfProbs(z, 10000)
			head, tail := SplitHead(p, 1.0/(5*float64(n)))
			full := SolveD(head, tail, n, 1e-4)
			first := SolveDPrefix(head, tail, n, 1e-4, 1)
			if first > full {
				t.Errorf("z=%.1f n=%d: prefix-1 d=%d exceeds full d=%d", z, n, first, full)
			}
			all := SolveDPrefix(head, tail, n, 1e-4, len(head))
			if all != full {
				t.Errorf("z=%.1f n=%d: maxPrefix=|H| (%d) differs from SolveD (%d)", z, n, all, full)
			}
		}
	}
}

func TestSolveDPrefixEdgeCases(t *testing.T) {
	if d := SolveDPrefix(nil, 1, 10, 1e-4, 1); d != 2 {
		t.Fatalf("empty head: d=%d", d)
	}
	// maxPrefix beyond |H| falls back to the full family.
	p := workload.ZipfProbs(2.0, 1000)
	head, tail := SplitHead(p, 0.01)
	if SolveDPrefix(head, tail, 50, 1e-4, 999) != SolveD(head, tail, 50, 1e-4) {
		t.Fatal("oversized maxPrefix diverges from SolveD")
	}
	// maxPrefix ≤ 0 means no constraints: the p1·n floor remains.
	if d := SolveDPrefix(head, tail, 50, 1e-4, 0); d < 2 {
		t.Fatalf("no-constraint solve returned %d", d)
	}
}

func TestSolveDPrefixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=0")
		}
	}()
	SolveDPrefix([]float64{0.5}, 0.5, 0, 1e-4, 1)
}

func TestFeasibleDPrefixSubsetOfFull(t *testing.T) {
	// If the full family is feasible, any prefix subset must be too.
	p := workload.ZipfProbs(1.6, 10000)
	head, tail := SplitHead(p, 1.0/250)
	n := 50
	d := SolveD(head, tail, n, 1e-4)
	if d < n {
		for maxPrefix := 1; maxPrefix <= len(head); maxPrefix++ {
			if !FeasibleDPrefix(head, tail, n, d, 1e-4, maxPrefix) {
				t.Fatalf("prefix %d infeasible at the full solution d=%d", maxPrefix, d)
			}
		}
	}
	if !FeasibleDPrefix(nil, 1, 10, 2, 0, 1) {
		t.Fatal("empty head must be feasible")
	}
}

func TestPKGImbalanceLowerBound(t *testing.T) {
	// Below the 2/n threshold the bound is vacuous.
	if got := PKGImbalanceLowerBound(0.01, 50); got != 0 {
		t.Fatalf("vacuous bound = %f", got)
	}
	// p1=0.6, n=50: 0.3 − 0.02 = 0.28.
	if got := PKGImbalanceLowerBound(0.6, 50); got < 0.279 || got > 0.281 {
		t.Fatalf("bound = %f, want 0.28", got)
	}
	// Monotone in p1 and in n.
	if PKGImbalanceLowerBound(0.5, 50) >= PKGImbalanceLowerBound(0.6, 50) {
		t.Fatal("bound not increasing in p1")
	}
	if PKGImbalanceLowerBound(0.6, 10) >= PKGImbalanceLowerBound(0.6, 100) {
		t.Fatal("bound not increasing in n")
	}
}
