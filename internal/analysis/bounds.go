// Package analysis implements the paper's analytical machinery: the
// expected worker-set size b_h (Appendix A), the feasibility constraints
// of Proposition 4.1, the FINDOPTIMALCHOICES solver for the number of
// choices d used by D-Choices, the head-cardinality model (Fig. 3), and
// the memory-overhead models for PKG, SG, D-Choices and W-Choices
// (Figs. 5 and 6). Everything here is pure computation over a known key
// distribution; the online algorithms in internal/core call into this
// package with frequencies estimated by the SpaceSaving sketch.
package analysis

import "math"

// BH returns b_h = n − n·((n−1)/n)^(h·d): the expected number of distinct
// workers covered by the union of the choice sets of the h hottest head
// keys, each hashed with d independent uniform functions (Appendix A:
// balls-into-bins occupancy after h·d placements into n slots).
func BH(n, h, d int) float64 {
	if n <= 0 {
		panic("analysis: BH with non-positive n")
	}
	if h <= 0 || d <= 0 {
		return 0
	}
	nf := float64(n)
	return nf - nf*math.Pow((nf-1)/nf, float64(h*d))
}

// FeasibleD reports whether d choices for the head satisfy every prefix
// constraint of Proposition 4.1:
//
//	Σ_{i≤h} p_i + (b_h/n)^d Σ_{h<i≤|H|} p_i + (b_h/n)^2 Σ_{i>|H|} p_i
//	    ≤ b_h (1/n + ε)    for all h = 1..|H|
//
// headProbs must be sorted in non-increasing order; tailMass is the total
// probability of keys outside the head.
func FeasibleD(headProbs []float64, tailMass float64, n, d int, eps float64) bool {
	if len(headProbs) == 0 {
		return true
	}
	nf := float64(n)
	headMass := 0.0
	for _, p := range headProbs {
		headMass += p
	}
	prefix := 0.0
	for h := 1; h <= len(headProbs); h++ {
		prefix += headProbs[h-1]
		bh := BH(n, h, d)
		ratio := bh / nf
		lhs := prefix + math.Pow(ratio, float64(d))*(headMass-prefix) + ratio*ratio*tailMass
		rhs := bh * (1/nf + eps)
		if lhs > rhs {
			return false
		}
	}
	return true
}

// SolveD implements FINDOPTIMALCHOICES: the smallest d that satisfies all
// the constraints of Proposition 4.1, starting from the simple lower
// bound d = ⌈p1·n⌉ (we need p1 ≤ d/n) and never below 2. If no d < n is
// feasible the function returns n, signalling that the caller should
// switch to the W-Choices strategy.
//
// headProbs must be sorted in non-increasing order. An empty head yields
// d = 2 (everything is tail, plain PKG).
func SolveD(headProbs []float64, tailMass float64, n int, eps float64) int {
	if n <= 0 {
		panic("analysis: SolveD with non-positive n")
	}
	if len(headProbs) == 0 {
		return 2
	}
	d := int(math.Ceil(headProbs[0] * float64(n)))
	if d < 2 {
		d = 2
	}
	for ; d < n; d++ {
		if FeasibleD(headProbs, tailMass, n, d, eps) {
			return d
		}
	}
	return n
}

// FeasibleDPrefix is FeasibleD restricted to the first maxPrefix
// constraints (h = 1..maxPrefix). The paper notes the tight constraints
// are h = 1 and h = |H|; the ablation harness uses this to quantify what
// checking only h = 1 would cost.
func FeasibleDPrefix(headProbs []float64, tailMass float64, n, d int, eps float64, maxPrefix int) bool {
	if maxPrefix >= len(headProbs) {
		return FeasibleD(headProbs, tailMass, n, d, eps)
	}
	if maxPrefix <= 0 || len(headProbs) == 0 {
		return true
	}
	nf := float64(n)
	headMass := 0.0
	for _, p := range headProbs {
		headMass += p
	}
	prefix := 0.0
	for h := 1; h <= maxPrefix; h++ {
		prefix += headProbs[h-1]
		bh := BH(n, h, d)
		ratio := bh / nf
		lhs := prefix + pow(ratio, d)*(headMass-prefix) + ratio*ratio*tailMass
		if lhs > bh*(1/nf+eps) {
			return false
		}
	}
	return true
}

// SolveDPrefix is SolveD with the constraint family truncated to the
// first maxPrefix prefixes.
func SolveDPrefix(headProbs []float64, tailMass float64, n int, eps float64, maxPrefix int) int {
	if n <= 0 {
		panic("analysis: SolveDPrefix with non-positive n")
	}
	if len(headProbs) == 0 {
		return 2
	}
	d := int(math.Ceil(headProbs[0] * float64(n)))
	if d < 2 {
		d = 2
	}
	for ; d < n; d++ {
		if FeasibleDPrefix(headProbs, tailMass, n, d, eps, maxPrefix) {
			return d
		}
	}
	return n
}

func pow(base float64, exp int) float64 { return math.Pow(base, float64(exp)) }

// SplitHead partitions a full probability vector (sorted non-increasing)
// at frequency threshold theta, returning the head probabilities and the
// tail mass. It is the analytic counterpart of the online heavy-hitter
// query H = {k : p_k ≥ θ}.
func SplitHead(probs []float64, theta float64) (head []float64, tailMass float64) {
	cut := 0
	for cut < len(probs) && probs[cut] >= theta {
		cut++
	}
	head = probs[:cut]
	for _, p := range probs[cut:] {
		tailMass += p
	}
	return head, tailMass
}

// HeadCardinality returns |H| for a distribution and threshold (Fig. 3).
func HeadCardinality(probs []float64, theta float64) int {
	head, _ := SplitHead(probs, theta)
	return len(head)
}

// PKGImbalanceLowerBound is the first bound from the PKG analysis the
// paper builds on: if p1 > 2/n, the expected imbalance of two choices is
// at least p1/2 − 1/n asymptotically (the hottest key's load exceeds
// what its two workers can average out). Below the threshold the bound
// is vacuous and 0 is returned. Experiments report it as the predicted
// floor for PKG's measured imbalance.
func PKGImbalanceLowerBound(p1 float64, n int) float64 {
	b := p1/2 - 1/float64(n)
	if b < 0 {
		return 0
	}
	return b
}

// MinimalDForImbalance is the empirical-search helper used by Fig. 9's
// comparison: it returns the smallest d in [2, n] for which measure(d)
// reports an imbalance no worse than target (with a small relative
// slack). measure is typically a full simulation run at that d.
func MinimalDForImbalance(n int, target float64, slack float64, measure func(d int) float64) int {
	for d := 2; d <= n; d++ {
		if measure(d) <= target*(1+slack)+1e-12 {
			return d
		}
	}
	return n
}
