package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"slb/internal/workload"
)

func TestBHBasics(t *testing.T) {
	// One key, one choice: exactly one worker expected.
	if got := BH(10, 1, 1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("BH(10,1,1) = %f, want 1", got)
	}
	// Zero placements cover zero workers.
	if got := BH(10, 0, 5); got != 0 {
		t.Fatalf("BH(10,0,5) = %f, want 0", got)
	}
	// Many placements approach n.
	if got := BH(10, 100, 10); got < 9.99 {
		t.Fatalf("BH(10,100,10) = %f, want ≈10", got)
	}
}

func TestBHMonotonicity(t *testing.T) {
	prop := func(nRaw, hRaw, dRaw uint8) bool {
		n := int(nRaw%100) + 2
		h := int(hRaw%20) + 1
		d := int(dRaw%20) + 1
		b := BH(n, h, d)
		// Bounded by both n and the number of placements.
		if b < 0 || b > float64(n)+1e-9 || b > float64(h*d)+1e-9 {
			return false
		}
		// Monotone in h and in d.
		return BH(n, h+1, d) >= b && BH(n, h, d+1) >= b
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBHMatchesMonteCarlo(t *testing.T) {
	// Empirically place h·d balls into n bins and compare occupancy.
	n, h, d := 20, 3, 4
	rng := workload.NewRNG(42)
	trials := 20000
	sum := 0.0
	for tr := 0; tr < trials; tr++ {
		var occupied [20]bool
		cnt := 0
		for i := 0; i < h*d; i++ {
			b := rng.Intn(n)
			if !occupied[b] {
				occupied[b] = true
				cnt++
			}
		}
		sum += float64(cnt)
	}
	got := sum / float64(trials)
	want := BH(n, h, d)
	if math.Abs(got-want) > 0.05 {
		t.Fatalf("Monte Carlo %f vs analytic %f", got, want)
	}
}

func TestSplitHead(t *testing.T) {
	probs := []float64{0.5, 0.2, 0.1, 0.1, 0.05, 0.05}
	head, tail := SplitHead(probs, 0.1)
	if len(head) != 4 {
		t.Fatalf("head size %d, want 4", len(head))
	}
	if math.Abs(tail-0.1) > 1e-12 {
		t.Fatalf("tail mass %f, want 0.1", tail)
	}
	head, tail = SplitHead(probs, 0.6)
	if len(head) != 0 || math.Abs(tail-1) > 1e-12 {
		t.Fatalf("empty head expected, got %d, tail %f", len(head), tail)
	}
}

func TestHeadCardinalityAgainstFig3Shape(t *testing.T) {
	// Fig 3: for Zipf |K|=1e4, θ=2/n with n=50 → θ=0.04: at low skew no key
	// passes; at z=2.0 only a handful do. For θ=1/(5n) (0.004) the head
	// peaks at moderate skew and shrinks again at extreme skew.
	k := 10000
	thetaTight := 2.0 / 50
	thetaLoose := 1.0 / (5 * 50)
	cardTight := map[float64]int{}
	cardLoose := map[float64]int{}
	for _, z := range []float64{0.4, 1.0, 1.4, 2.0} {
		p := workload.ZipfProbs(z, k)
		cardTight[z] = HeadCardinality(p, thetaTight)
		cardLoose[z] = HeadCardinality(p, thetaLoose)
	}
	if cardTight[0.4] != 0 {
		t.Errorf("θ=2/n z=0.4: head %d, want 0", cardTight[0.4])
	}
	if cardTight[2.0] == 0 || cardTight[2.0] > 10 {
		t.Errorf("θ=2/n z=2.0: head %d, want small positive", cardTight[2.0])
	}
	if cardLoose[1.4] <= cardLoose[0.4] {
		t.Errorf("θ=1/5n: head should grow from z=0.4 (%d) to z=1.4 (%d)",
			cardLoose[0.4], cardLoose[1.4])
	}
	if cardLoose[2.0] >= cardLoose[1.4] {
		t.Errorf("θ=1/5n: head should shrink from z=1.4 (%d) to z=2.0 (%d)",
			cardLoose[1.4], cardLoose[2.0])
	}
}

func TestSolveDEmptyHead(t *testing.T) {
	if d := SolveD(nil, 1.0, 50, 1e-4); d != 2 {
		t.Fatalf("SolveD(empty head) = %d, want 2", d)
	}
}

func TestSolveDRespectsLowerBound(t *testing.T) {
	// p1 = 0.6, n = 10: need at least d = 6.
	p := workload.ZipfProbs(2.0, 10000)
	head, tail := SplitHead(p, 1.0/(5*10))
	d := SolveD(head, tail, 10, 1e-4)
	if d < 6 {
		t.Fatalf("SolveD = %d, below ⌈p1·n⌉ = 6 (p1=%f)", d, p[0])
	}
	if d > 10 {
		t.Fatalf("SolveD = %d exceeds n", d)
	}
}

func TestSolveDFeasibleAtSolutionInfeasibleBelow(t *testing.T) {
	for _, z := range []float64{1.2, 1.6, 2.0} {
		p := workload.ZipfProbs(z, 10000)
		n := 50
		head, tail := SplitHead(p, 1.0/(5*float64(n)))
		d := SolveD(head, tail, n, 1e-4)
		if d >= n {
			continue // switched to W-C; nothing to check
		}
		if !FeasibleD(head, tail, n, d, 1e-4) {
			t.Errorf("z=%.1f: returned d=%d infeasible", z, d)
		}
		lower := int(math.Ceil(head[0] * float64(n)))
		if d > lower && d > 2 && FeasibleD(head, tail, n, d-1, 1e-4) {
			t.Errorf("z=%.1f: d=%d not minimal, d−1 feasible", z, d)
		}
	}
}

func TestSolveDMonotoneInEps(t *testing.T) {
	p := workload.ZipfProbs(1.8, 10000)
	head, tail := SplitHead(p, 1.0/250)
	n := 50
	prev := n + 1
	// Looser tolerance can only need fewer (or equal) choices.
	for _, eps := range []float64{1e-5, 1e-4, 1e-3, 1e-2} {
		d := SolveD(head, tail, n, eps)
		if d > prev {
			t.Fatalf("SolveD not non-increasing in eps: eps=%g gives %d > %d", eps, d, prev)
		}
		prev = d
	}
}

func TestSolveDFig4Shape(t *testing.T) {
	// Fig 4: at n=100 the fraction d/n stays below 1 across all skews, and
	// d grows with skew in the high-skew regime.
	n := 100
	p14 := workload.ZipfProbs(1.4, 10000)
	p20 := workload.ZipfProbs(2.0, 10000)
	h14, t14 := SplitHead(p14, 1.0/(5*float64(n)))
	h20, t20 := SplitHead(p20, 1.0/(5*float64(n)))
	d14 := SolveD(h14, t14, n, 1e-4)
	d20 := SolveD(h20, t20, n, 1e-4)
	if d20 < d14 {
		t.Errorf("d should grow with extreme skew: d(1.4)=%d d(2.0)=%d", d14, d20)
	}
	if d14 >= n {
		t.Errorf("n=100 z=1.4: D-C should not need all workers (d=%d)", d14)
	}
}

func TestMinimalDForImbalance(t *testing.T) {
	// Synthetic measure: imbalance 1/d; target 0.2 → minimal d = 5.
	got := MinimalDForImbalance(10, 0.2, 0, func(d int) float64 { return 1 / float64(d) })
	if got != 5 {
		t.Fatalf("MinimalDForImbalance = %d, want 5", got)
	}
	// Unreachable target returns n.
	got = MinimalDForImbalance(10, 0, 0, func(d int) float64 { return 1 })
	if got != 10 {
		t.Fatalf("unreachable target should return n, got %d", got)
	}
}

func TestFeasibleDTrivial(t *testing.T) {
	if !FeasibleD(nil, 1, 10, 2, 0) {
		t.Fatal("empty head must always be feasible")
	}
}

func TestBHPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BH(0,...) did not panic")
		}
	}()
	BH(0, 1, 1)
}
