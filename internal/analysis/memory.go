package analysis

import "math"

// Memory-overhead models (Section IV-B). The unit is "key replicas": the
// number of (key, worker) pairs holding state, assuming unit state per
// key. For a stream of m messages with key probabilities p, the expected
// count of key k is f_k = p_k·m, and a key can occupy at most as many
// workers as it has occurrences.

// ExpectedDistinct returns the expected number of distinct workers hit by
// d independent uniform choices over n workers: n − n((n−1)/n)^d. This is
// BH with h = 1 and accounts for hash collisions among a key's choices.
func ExpectedDistinct(n, d int) float64 {
	return BH(n, 1, d)
}

// MemKG is the memory of key grouping: every key lives on exactly one
// worker, so the cost is the number of distinct keys that appear.
func MemKG(probs []float64, m float64) float64 {
	total := 0.0
	for _, p := range probs {
		total += math.Min(p*m, 1)
	}
	return total
}

// MemPKG models Σ_k min(f_k, 2): each key is split over at most two
// workers (the paper's memPKG estimate).
func MemPKG(probs []float64, m float64) float64 {
	total := 0.0
	for _, p := range probs {
		total += math.Min(p*m, 2)
	}
	return total
}

// MemSG models Σ_k min(f_k, n): shuffle grouping may replicate any key on
// every worker (the paper's memSG estimate).
func MemSG(probs []float64, m float64, n int) float64 {
	total := 0.0
	nf := float64(n)
	for _, p := range probs {
		total += math.Min(p*m, nf)
	}
	return total
}

// MemDC models D-Choices: head keys are split over at most
// ExpectedDistinct(n, d) workers, tail keys over at most two.
func MemDC(probs []float64, m float64, n, d int, theta float64) float64 {
	head, _ := SplitHead(probs, theta)
	limit := ExpectedDistinct(n, d)
	total := 0.0
	for i, p := range probs {
		if i < len(head) {
			total += math.Min(p*m, limit)
		} else {
			total += math.Min(p*m, 2)
		}
	}
	return total
}

// MemWC models W-Choices (and Round-Robin, which has the same cost):
// head keys may reach all n workers, tail keys at most two.
func MemWC(probs []float64, m float64, n int, theta float64) float64 {
	head, _ := SplitHead(probs, theta)
	total := 0.0
	nf := float64(n)
	for i, p := range probs {
		if i < len(head) {
			total += math.Min(p*m, nf)
		} else {
			total += math.Min(p*m, 2)
		}
	}
	return total
}

// OverheadPct returns the relative overhead of cost a versus baseline b,
// in percent: 100·(a−b)/b. Positive means a uses more memory.
func OverheadPct(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * (a - b) / b
}
