package analysis_test

import (
	"fmt"

	"slb/internal/analysis"
	"slb/internal/workload"
)

// FINDOPTIMALCHOICES: given the head of a Zipf(2.0) distribution at
// n = 50 workers, compute the minimal number of choices d that keeps
// the expected imbalance within ε.
func ExampleSolveD() {
	probs := workload.ZipfProbs(2.0, 10_000)
	head, tailMass := analysis.SplitHead(probs, 1.0/(5*50)) // θ = 1/(5n)
	d := analysis.SolveD(head, tailMass, 50, 1e-4)
	fmt.Printf("|H|=%d hot keys need d=%d of n=50 workers\n", len(head), d)
	// Output:
	// |H|=12 hot keys need d=49 of n=50 workers
}

// b_h from Appendix A: the expected number of distinct workers covered
// when the h hottest keys each hash to d candidates.
func ExampleBH() {
	fmt.Printf("%.2f\n", analysis.BH(50, 1, 5))  // one key, five choices
	fmt.Printf("%.2f\n", analysis.BH(50, 4, 5))  // four keys
	fmt.Printf("%.2f\n", analysis.BH(50, 40, 5)) // forty keys: ≈ all workers
	// Output:
	// 4.80
	// 16.62
	// 49.12
}

// The memory models of Section IV-B, relative to PKG (the Fig 5 query).
func ExampleOverheadPct() {
	probs := workload.ZipfProbs(1.4, 10_000)
	const m = 1e7
	theta := 1.0 / (5 * 50)
	head, tail := analysis.SplitHead(probs, theta)
	d := analysis.SolveD(head, tail, 50, 1e-4)
	pkg := analysis.MemPKG(probs, m)
	dc := analysis.MemDC(probs, m, 50, d, theta)
	fmt.Printf("D-C uses %.1f%% more memory than PKG\n", analysis.OverheadPct(dc, pkg))
	// Output:
	// D-C uses 1.8% more memory than PKG
}
