package analysis

import (
	"math"
	"testing"

	"slb/internal/workload"
)

func TestExpectedDistinct(t *testing.T) {
	if got := ExpectedDistinct(10, 1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("ExpectedDistinct(10,1) = %f", got)
	}
	if got := ExpectedDistinct(10, 1000); got < 9.999 {
		t.Fatalf("ExpectedDistinct(10,1000) = %f, want ≈10", got)
	}
	if ExpectedDistinct(10, 3) >= 3.0+1e-9 {
		t.Fatal("ExpectedDistinct must be below d due to collisions")
	}
}

func TestMemoryModelOrdering(t *testing.T) {
	// For any skew: memKG ≤ memPKG ≤ memDC ≤ memWC ≤ memSG.
	m := 1e7
	n := 50
	theta := 1.0 / (5 * float64(n))
	for _, z := range []float64{0.4, 1.0, 1.6, 2.0} {
		p := workload.ZipfProbs(z, 10000)
		head, tail := SplitHead(p, theta)
		d := SolveD(head, tail, n, 1e-4)
		kg := MemKG(p, m)
		pkg := MemPKG(p, m)
		dc := MemDC(p, m, n, d, theta)
		wc := MemWC(p, m, n, theta)
		sg := MemSG(p, m, n)
		if !(kg <= pkg+1e-9 && pkg <= dc+1e-9 && dc <= wc+1e-9 && wc <= sg+1e-9) {
			t.Errorf("z=%.1f ordering violated: kg=%.0f pkg=%.0f dc=%.0f wc=%.0f sg=%.0f",
				z, kg, pkg, dc, wc, sg)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	// Fig 5: D-C and W-C cost at most ~30% more than PKG, and W-C ≥ D-C.
	m := 1e7
	for _, n := range []int{50, 100} {
		theta := 1.0 / (5 * float64(n))
		for _, z := range []float64{0.8, 1.2, 1.6, 2.0} {
			p := workload.ZipfProbs(z, 10000)
			head, tail := SplitHead(p, theta)
			d := SolveD(head, tail, n, 1e-4)
			pkg := MemPKG(p, m)
			over := OverheadPct(MemWC(p, m, n, theta), pkg)
			if over > 40 {
				t.Errorf("n=%d z=%.1f: W-C overhead vs PKG %.1f%%, paper says ≤~30%%", n, z, over)
			}
			if OverheadPct(MemDC(p, m, n, d, theta), pkg) > over+1e-9 {
				t.Errorf("n=%d z=%.1f: D-C overhead exceeds W-C", n, z)
			}
		}
	}
}

func TestFig6Shape(t *testing.T) {
	// Fig 6: versus SG, both D-C and W-C save at least ~70-80% at n∈{50,100}
	// for moderate-to-high skew.
	m := 1e7
	for _, n := range []int{50, 100} {
		theta := 1.0 / (5 * float64(n))
		for _, z := range []float64{0.8, 1.2, 1.6, 2.0} {
			p := workload.ZipfProbs(z, 10000)
			head, tail := SplitHead(p, theta)
			d := SolveD(head, tail, n, 1e-4)
			sg := MemSG(p, m, n)
			for name, mem := range map[string]float64{
				"D-C": MemDC(p, m, n, d, theta),
				"W-C": MemWC(p, m, n, theta),
			} {
				over := OverheadPct(mem, sg)
				if over > -60 {
					t.Errorf("n=%d z=%.1f: %s vs SG = %.1f%%, want strong savings", n, z, name, over)
				}
			}
		}
	}
}

func TestOverheadPct(t *testing.T) {
	if got := OverheadPct(130, 100); math.Abs(got-30) > 1e-12 {
		t.Fatalf("OverheadPct(130,100) = %f", got)
	}
	if got := OverheadPct(20, 100); math.Abs(got+80) > 1e-12 {
		t.Fatalf("OverheadPct(20,100) = %f", got)
	}
	if OverheadPct(1, 0) != 0 {
		t.Fatal("zero baseline should return 0")
	}
}

func TestMemSingleOccurrenceKeys(t *testing.T) {
	// Keys that appear once cost one replica under every scheme.
	p := []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}
	m := 3.0
	if MemPKG(p, m) != 3 || MemSG(p, m, 10) != 3 {
		t.Fatal("singleton keys should cost exactly 1 replica each")
	}
}
