package ring

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

func TestCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {64, 64}, {65, 128}, {1000, 1024},
	} {
		if got := New[int](tc.ask).Cap(); got != tc.want {
			t.Errorf("New(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

func TestFIFOSingleThreaded(t *testing.T) {
	q := New[int](8)
	for round := 0; round < 5; round++ {
		for i := 0; i < 8; i++ {
			if !q.TryPush(round*100 + i) {
				t.Fatalf("round %d: push %d failed on non-full ring", round, i)
			}
		}
		if q.TryPush(999) {
			t.Fatal("push succeeded on full ring")
		}
		if q.Len() != 8 {
			t.Fatalf("Len = %d, want 8", q.Len())
		}
		for i := 0; i < 8; i++ {
			v, ok := q.TryPop()
			if !ok || v != round*100+i {
				t.Fatalf("round %d: pop %d = (%d, %v)", round, i, v, ok)
			}
		}
		if _, ok := q.TryPop(); ok {
			t.Fatal("pop succeeded on empty ring")
		}
	}
}

func TestGrantPublishAcquireRelease(t *testing.T) {
	q := New[int](16)
	next := 0 // next value to publish
	want := 0 // next value expected out
	// Drive the batched API across several wrap-arounds with varying
	// batch sizes, including partial publishes of a larger grant.
	for step := 0; step < 200; step++ {
		g := q.Grant(5)
		n := 0
		for i := range g {
			if i == 3 { // publish a strict prefix sometimes
				break
			}
			g[i] = next
			next++
			n++
		}
		q.Publish(n)
		a := q.Acquire(4)
		for _, v := range a {
			if v != want {
				t.Fatalf("step %d: acquired %d, want %d", step, v, want)
			}
			want++
		}
		q.Release(len(a))
	}
	// Drain the remainder.
	for {
		v, ok := q.TryPop()
		if !ok {
			break
		}
		if v != want {
			t.Fatalf("drain: got %d, want %d", v, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("consumed %d items, published %d", want, next)
	}
}

func TestGrantNeverWraps(t *testing.T) {
	q := New[int](8)
	// Advance the ring so the tail sits 2 before the wrap.
	for i := 0; i < 6; i++ {
		q.TryPush(i)
	}
	for i := 0; i < 6; i++ {
		q.TryPop()
	}
	g := q.Grant(100)
	if len(g) != 2 { // only 2 contiguous slots before the wrap
		t.Fatalf("grant at wrap returned %d slots, want 2", len(g))
	}
	q.Publish(2)
	if g2 := q.Grant(100); len(g2) != 6 {
		t.Fatalf("second grant returned %d slots, want 6", len(g2))
	}
}

func TestDrained(t *testing.T) {
	q := New[int](4)
	if q.Drained() {
		t.Fatal("open empty ring reports Drained")
	}
	q.TryPush(1)
	q.Close()
	if q.Drained() {
		t.Fatal("closed non-empty ring reports Drained")
	}
	q.TryPop()
	if !q.Drained() {
		t.Fatal("closed empty ring must report Drained")
	}
}

func TestSteadyStatePushPopZeroAllocs(t *testing.T) {
	q := New[[2]int64](256)
	if avg := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 64; i++ {
			q.TryPush([2]int64{int64(i), int64(i)})
		}
		for i := 0; i < 64; i++ {
			q.TryPop()
		}
	}); avg != 0 {
		t.Fatalf("steady-state push/pop allocates %.1f/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		g := q.Grant(64)
		for i := range g {
			g[i] = [2]int64{int64(i), 0}
		}
		q.Publish(len(g))
		a := q.Acquire(64)
		q.Release(len(a))
	}); avg != 0 {
		t.Fatalf("steady-state grant/acquire allocates %.1f/op, want 0", avg)
	}
}

// TestConcurrentStress is the randomized SPSC stress test: a real
// producer goroutine and a real consumer goroutine hammer one ring with
// randomly interleaved single and batched operations across thousands
// of wrap-arounds, and the consumer must observe exactly the sequence
// 0, 1, 2, … — any lost, duplicated, or reordered slot fails. Run under
// -race this also proves the publish/consume protocol establishes
// happens-before for the slot payloads.
func TestConcurrentStress(t *testing.T) {
	const total = 200_000
	for _, capa := range []int{4, 64, 1024} {
		q := New[int64](capa)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(capa)))
			var next int64
			for next < total {
				if rng.Intn(2) == 0 {
					if q.TryPush(next) {
						next++
					} else {
						runtime.Gosched()
					}
					continue
				}
				g := q.Grant(1 + rng.Intn(7))
				if g == nil {
					runtime.Gosched()
					continue
				}
				n := 0
				for i := range g {
					if next >= total {
						break
					}
					g[i] = next
					next++
					n++
				}
				q.Publish(n)
			}
			q.Close()
		}()

		rng := rand.New(rand.NewSource(int64(capa) * 7))
		var want int64
		for {
			if rng.Intn(2) == 0 {
				v, ok := q.TryPop()
				if !ok {
					if q.Drained() {
						break
					}
					runtime.Gosched()
					continue
				}
				if v != want {
					t.Fatalf("cap %d: popped %d, want %d", capa, v, want)
				}
				want++
				continue
			}
			a := q.Acquire(1 + rng.Intn(7))
			if a == nil {
				if q.Drained() {
					break
				}
				runtime.Gosched()
				continue
			}
			for _, v := range a {
				if v != want {
					t.Fatalf("cap %d: acquired %d, want %d", capa, v, want)
				}
				want++
			}
			q.Release(len(a))
		}
		wg.Wait()
		if want != total {
			t.Fatalf("cap %d: consumed %d items, want %d", capa, want, total)
		}
	}
}

func BenchmarkSPSCPushPop(b *testing.B) {
	// Single goroutine alternating push/pop: the uncontended fast path.
	q := New[int64](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.TryPush(1)
		q.TryPop()
	}
}

func BenchmarkSPSCBatch64(b *testing.B) {
	q := New[int64](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := q.Grant(64)
		for j := range g {
			g[j] = int64(j)
		}
		q.Publish(len(g))
		a := q.Acquire(64)
		q.Release(len(a))
	}
}
