// Package ring provides the lock-free bounded queues of the engines'
// dataplane: single-producer/single-consumer (SPSC) ring buffers with
// power-of-two capacity, cache-line-padded head/tail counters, a
// cached-sequence fast path, and batched publish/consume operations.
//
// An SPSC ring replaces a Go channel on an edge that has exactly one
// sender and one receiver — which is how the dspe ring dataplane wires
// its topologies: one ring per (spout, bolt) and (bolt, combiner) edge.
// On such an edge the ring needs no locks at all: the producer owns the
// tail, the consumer owns the head, and each publishes its progress
// with a single atomic store. The cached-sequence fast path (the
// producer keeps a private copy of the last head it loaded, the
// consumer of the last tail) means the common case — space available,
// items available — touches no shared cache line belonging to the other
// side, so producer and consumer run without ping-ponging ownership of
// the counters.
//
// The batched forms move the dataplane from per-message to per-slab
// cost without per-slab allocation: Grant hands the producer a
// contiguous window of ring slots to fill in place, Publish commits
// them with one atomic store; Acquire/Release are the consumer-side
// mirror. Messages therefore live IN the ring's slot array — the ring
// is the tuple arena — and a slot is reused as soon as the consumer
// releases it, giving a zero-allocation steady state on the whole
// tuple path.
//
// The memory-model contract is the standard one: the producer's plain
// writes into granted slots happen before its atomic tail store, and
// the consumer's atomic tail load happens before its plain reads of
// those slots (sync/atomic operations are sequentially consistent and
// establish happens-before), so the race detector and every supported
// platform see a correctly synchronized queue.
package ring

import (
	"sync/atomic"
)

// cacheLine is the assumed coherence-granule size. 64 bytes covers
// x86-64 and most arm64 server parts; on 128-byte-line hosts the pads
// below still separate the producer and consumer counters (two 64-byte
// pads between them), which is the pairing that matters.
const cacheLine = 64

// SPSC is a bounded single-producer/single-consumer queue of T with
// power-of-two capacity. The zero value is not usable; construct with
// New. Exactly one goroutine may call the producer methods (TryPush,
// Push→ via caller loop, Grant, Publish, Close) and exactly one — not
// necessarily different — the consumer methods (TryPop, Acquire,
// Release, Drained).
type SPSC[T any] struct {
	// Shared, read-only after New: no false sharing with the counters.
	buf  []T
	mask uint64

	_ [cacheLine]byte
	// Producer-owned line: tail is where the producer publishes, cachedHead
	// its private view of the consumer's progress (refreshed only when the
	// ring looks full).
	tail       atomic.Uint64
	cachedHead uint64

	_ [cacheLine]byte
	// Consumer-owned line: head is where the consumer publishes, cachedTail
	// its private view of the producer's progress (refreshed only when the
	// ring looks empty).
	head       atomic.Uint64
	cachedTail uint64

	_ [cacheLine]byte
	// closed is written once by the producer; consumers poll it only after
	// observing an empty ring, so it shares no hot line with the counters.
	closed atomic.Bool
}

// New returns an empty ring whose capacity is `capacity` rounded up to
// a power of two (minimum 2).
func New[T any](capacity int) *SPSC[T] {
	c := uint64(2)
	for int(c) < capacity {
		c <<= 1
	}
	return &SPSC[T]{buf: make([]T, c), mask: c - 1}
}

// Cap returns the ring's capacity.
func (q *SPSC[T]) Cap() int { return len(q.buf) }

// Len returns the number of items currently queued. It is a snapshot:
// exact only when producer or consumer is quiescent.
func (q *SPSC[T]) Len() int {
	return int(q.tail.Load() - q.head.Load())
}

// ---------------------------------------------------------------------------
// Producer side

// TryPush appends v if the ring has space, reporting whether it did.
func (q *SPSC[T]) TryPush(v T) bool {
	t := q.tail.Load()
	if t-q.cachedHead >= uint64(len(q.buf)) {
		q.cachedHead = q.head.Load()
		if t-q.cachedHead >= uint64(len(q.buf)) {
			return false
		}
	}
	q.buf[t&q.mask] = v
	q.tail.Store(t + 1)
	return true
}

// Grant returns a writable window of up to max ring slots for the
// producer to fill in place, or nil if the ring is full. The window is
// contiguous in the backing array, so one Grant may return fewer slots
// than are free (it never wraps); Publish the filled prefix and Grant
// again. Slots hold whatever the previous occupant left — overwrite,
// don't read.
func (q *SPSC[T]) Grant(max int) []T {
	t := q.tail.Load()
	free := uint64(len(q.buf)) - (t - q.cachedHead)
	if free == 0 {
		q.cachedHead = q.head.Load()
		free = uint64(len(q.buf)) - (t - q.cachedHead)
		if free == 0 {
			return nil
		}
	}
	i := t & q.mask
	n := uint64(len(q.buf)) - i // contiguous until the wrap
	if n > free {
		n = free
	}
	if n > uint64(max) {
		n = uint64(max)
	}
	return q.buf[i : i+n]
}

// Publish commits the first n slots of the last Grant, making them
// visible to the consumer.
func (q *SPSC[T]) Publish(n int) {
	if n > 0 {
		q.tail.Store(q.tail.Load() + uint64(n))
	}
}

// Close marks the producer done. The consumer drains what remains and
// then observes Drained. Push after Close is a caller bug (slots are
// still accepted; the consumer may or may not see them).
func (q *SPSC[T]) Close() { q.closed.Store(true) }

// ---------------------------------------------------------------------------
// Consumer side

// TryPop removes and returns the oldest item, reporting whether one
// was available.
func (q *SPSC[T]) TryPop() (T, bool) {
	h := q.head.Load()
	if q.cachedTail == h {
		q.cachedTail = q.tail.Load()
		if q.cachedTail == h {
			var zero T
			return zero, false
		}
	}
	v := q.buf[h&q.mask]
	q.head.Store(h + 1)
	return v, true
}

// Acquire returns a readable window of up to max queued items, or nil
// if the ring is empty. Like Grant it never wraps, so a non-empty ring
// may yield fewer items than are queued; Release what was consumed and
// Acquire again. The returned slots are owned by the consumer until
// the matching Release; the producer cannot overwrite them.
func (q *SPSC[T]) Acquire(max int) []T {
	h := q.head.Load()
	avail := q.cachedTail - h
	if avail == 0 {
		q.cachedTail = q.tail.Load()
		avail = q.cachedTail - h
		if avail == 0 {
			return nil
		}
	}
	i := h & q.mask
	n := uint64(len(q.buf)) - i
	if n > avail {
		n = avail
	}
	if n > uint64(max) {
		n = uint64(max)
	}
	return q.buf[i : i+n]
}

// Release returns the first n slots of the last Acquire to the
// producer for reuse.
func (q *SPSC[T]) Release(n int) {
	if n > 0 {
		q.head.Store(q.head.Load() + uint64(n))
	}
}

// Drained reports whether the producer has closed the ring AND every
// published item has been consumed: the consumer's termination test.
// The order matters — closed is checked first, then emptiness — so a
// push racing a close is never lost (if Drained sees closed, the
// producer published its last item before Close, and the emptiness
// check observes it).
func (q *SPSC[T]) Drained() bool {
	if !q.closed.Load() {
		return false
	}
	return q.tail.Load() == q.head.Load()
}
