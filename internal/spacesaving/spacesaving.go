// Package spacesaving implements the SpaceSaving algorithm of Metwally,
// Agrawal and El Abbadi ("Efficient computation of frequent and top-k
// elements in data streams", ICDT 2005) on the Stream-Summary data
// structure, which supports strict O(1) updates per stream item.
//
// A Summary with capacity c monitors at most c keys and guarantees, for
// every key k with true count f(k) and estimate est(k) with error err(k):
//
//	est(k) − err(k) ≤ f(k) ≤ est(k)          (for monitored keys)
//	f(k) ≤ minCount ≤ N/c                    (for unmonitored keys)
//
// so every key with frequency above 1/c is guaranteed to be monitored.
// Summaries are mergeable in the sense of Berinde, Indyk, Cormode and
// Strauss (ACM TODS 2010), enabling the distributed heavy-hitter tracking
// the paper relies on when several sources observe disjoint sub-streams.
//
// # Digest keying and allocation discipline
//
// The sketch sits on the partitioners' per-message hot path, so the
// monitored-entry table is keyed by hashing.KeyDigest (the 64-bit digest
// every routing layer shares) rather than by string: OfferDigest and
// CountDigest never hash or compare key bytes. The key string is retained
// only inside monitored entries, for reporting (Entries, HeavyHitters)
// and merging. Two distinct keys with equal digests (probability ≈ 2⁻⁶⁴
// per pair) are counted as one key.
//
// The steady-state update path allocates nothing: the digest table is a
// fixed-size open-addressing array, evictions recycle counter nodes, and
// emptied count buckets are kept on a free list for reuse.
package spacesaving

import (
	"sort"

	"slb/internal/hashing"
)

// Entry is one monitored key with its count estimate and maximum
// overestimation error.
type Entry struct {
	Key   string
	Count uint64 // estimated count; never below the true count
	Err   uint64 // maximum overestimation: Count − Err ≤ true ≤ Count
}

// counter is a node in the Stream-Summary: a monitored key parked in the
// bucket matching its current estimated count. The digest identifies the
// key on the hot path; the string exists only for reporting.
type counter struct {
	dig        hashing.KeyDigest
	key        string
	count      uint64
	err        uint64
	bucket     *bucket
	prev, next *counter // siblings within the same bucket
}

// bucket groups all counters sharing one count value. Buckets form a
// doubly-linked list in strictly ascending count order, so the minimum
// counter is always reachable in O(1).
type bucket struct {
	count      uint64
	head       *counter
	prev, next *bucket
}

// digestTable is a fixed-size open-addressing map digest → *counter with
// linear probing and backward-shift deletion. It is sized at construction
// for a load factor ≤ ½ at full sketch capacity and never grows, so
// lookups, inserts and deletes are allocation-free forever.
type digestTable struct {
	slots []*counter
	mask  uint64
}

func newDigestTable(capacity int) digestTable {
	size := 4
	for size < 2*capacity {
		size <<= 1
	}
	return digestTable{slots: make([]*counter, size), mask: uint64(size - 1)}
}

func (t *digestTable) get(d hashing.KeyDigest) *counter {
	i := hashing.Mix64(d) & t.mask
	for {
		c := t.slots[i]
		if c == nil {
			return nil
		}
		if c.dig == d {
			return c
		}
		i = (i + 1) & t.mask
	}
}

func (t *digestTable) put(c *counter) {
	i := hashing.Mix64(c.dig) & t.mask
	for t.slots[i] != nil {
		i = (i + 1) & t.mask
	}
	t.slots[i] = c
}

// del removes the entry for digest d, compacting the probe chain by
// backward shifting so no tombstones accumulate.
func (t *digestTable) del(d hashing.KeyDigest) {
	i := hashing.Mix64(d) & t.mask
	for {
		c := t.slots[i]
		if c == nil {
			return // not present
		}
		if c.dig == d {
			break
		}
		i = (i + 1) & t.mask
	}
	// Backward-shift: pull later entries of the probe chain into the hole
	// when their home position precedes it.
	hole := i
	j := (i + 1) & t.mask
	for {
		c := t.slots[j]
		if c == nil {
			break
		}
		home := hashing.Mix64(c.dig) & t.mask
		// c may move into the hole iff the hole lies cyclically within
		// [home, j].
		if (j-home)&t.mask >= (j-hole)&t.mask {
			t.slots[hole] = c
			hole = j
		}
		j = (j + 1) & t.mask
	}
	t.slots[hole] = nil
}

func (t *digestTable) reset() {
	for i := range t.slots {
		t.slots[i] = nil
	}
}

// Summary is a SpaceSaving sketch. The zero value is not usable;
// construct with New.
type Summary struct {
	capacity int
	len      int
	table    digestTable
	min      *bucket  // lowest-count bucket
	max      *bucket  // highest-count bucket (for descending queries)
	n        uint64   // stream length observed so far
	free     *bucket  // recycled bucket nodes (linked via next)
	last     *counter // memo of the last offered counter (hot-key fast path)
	evicted  uint64   // min-counter replacements (head churn; see Evictions)
}

// New returns an empty Summary that monitors at most capacity keys.
// Capacity c yields a frequency error of at most N/c over a stream of
// length N; to detect all keys above frequency threshold θ, any
// capacity ≥ 1/θ suffices.
func New(capacity int) *Summary {
	if capacity <= 0 {
		panic("spacesaving: capacity must be positive")
	}
	return &Summary{
		capacity: capacity,
		table:    newDigestTable(capacity),
	}
}

// Capacity returns the maximum number of monitored keys.
func (s *Summary) Capacity() int { return s.capacity }

// N returns the number of items offered so far.
func (s *Summary) N() uint64 { return s.n }

// Len returns the number of currently monitored keys.
func (s *Summary) Len() int { return s.len }

// Evictions returns how many times an offer replaced the minimum
// counter (an unmonitored key displacing a monitored one). Once the
// sketch is full this is the churn of the monitored set: near zero on a
// stable skewed stream, and rising when the head drifts — the signal
// the telemetry layer exports as sketch churn.
func (s *Summary) Evictions() uint64 { return s.evicted }

// Offer feeds one occurrence of key to the sketch.
func (s *Summary) Offer(key string) {
	s.OfferDigest(hashing.Digest(key), key)
}

// OfferDigest feeds one occurrence of the key identified by digest d,
// with key retained for reporting if the key becomes monitored. It
// returns the key's estimated count after the update (the key is always
// monitored after an offer). This is the hot-path form: no key bytes are
// scanned and nothing is allocated in steady state.
func (s *Summary) OfferDigest(d hashing.KeyDigest, key string) uint64 {
	return s.OfferDigestN(d, key, 1)
}

// OfferDigestN feeds r consecutive occurrences of one key, equivalent to
// calling OfferDigest r times but with a single table lookup and a single
// bucket relocation. Batched routing uses it to amortize sketch
// maintenance over runs of identical keys. r must be positive.
func (s *Summary) OfferDigestN(d hashing.KeyDigest, key string, r uint64) uint64 {
	if r == 0 {
		return 0
	}
	s.n += r
	// Hot-key memo: a skewed stream offers the same counter most of the
	// time; validating the stored digest makes the memo safe across
	// evictions (an evicted counter is reassigned a new digest).
	if c := s.last; c != nil && c.dig == d {
		s.incrementBy(c, r)
		return c.count
	}
	if c := s.table.get(d); c != nil {
		s.last = c
		s.incrementBy(c, r)
		return c.count
	}
	if s.len < s.capacity {
		c := &counter{dig: d, key: key}
		s.len++
		s.table.put(c)
		s.attach(c, r)
		s.last = c
		return r
	}
	// Replace the minimum counter: the evicted key's count becomes the new
	// key's overestimation error.
	s.evicted++
	victim := s.min.head
	s.table.del(victim.dig)
	victim.err = victim.count
	victim.dig = d
	victim.key = key
	s.table.put(victim)
	s.incrementBy(victim, r)
	s.last = victim
	return victim.count
}

// newBucket takes a node from the free list or allocates one.
func (s *Summary) newBucket(count uint64) *bucket {
	if b := s.free; b != nil {
		s.free = b.next
		b.count = count
		b.head = nil
		b.prev, b.next = nil, nil
		return b
	}
	return &bucket{count: count}
}

// recycle returns an unlinked, empty bucket to the free list.
func (s *Summary) recycle(b *bucket) {
	b.prev = nil
	b.next = s.free
	s.free = b
}

// incrementBy moves counter c from its current bucket to the bucket for
// count+r, creating (from the free list) or removing buckets as needed.
// O(1) for r = 1 plus a forward walk past buckets with counts below the
// new value (short in practice: hot counters sit near the top).
func (s *Summary) incrementBy(c *counter, r uint64) {
	b := c.bucket
	newCount := b.count + r
	// Fast path: c is alone in its bucket and the next bucket (if any)
	// still has a higher count, so the bucket can absorb the increment in
	// place — no relinking at all. This is the steady state of every hot
	// key (its counter sits alone at or near the top of the list).
	if b.head == c && c.next == nil && (b.next == nil || b.next.count > newCount) {
		b.count = newCount
		c.count = newCount
		return
	}
	s.unlinkCounter(c)

	// Find the insertion point: the last bucket with count ≤ newCount.
	at := b
	for at.next != nil && at.next.count <= newCount {
		at = at.next
	}
	var dst *bucket
	if at.count == newCount {
		dst = at
	} else {
		nb := s.newBucket(newCount)
		nb.prev = at
		nb.next = at.next
		if at.next != nil {
			at.next.prev = nb
		} else {
			s.max = nb
		}
		at.next = nb
		dst = nb
	}
	if b.head == nil {
		s.unlinkBucket(b)
		s.recycle(b)
	}
	c.count = newCount
	s.pushCounter(dst, c)
}

// attach places a fresh counter into the bucket for the given count,
// searching forward from the minimum (inserts happen at small counts).
func (s *Summary) attach(c *counter, count uint64) {
	c.count = count
	b := s.min
	if b == nil || b.count > count {
		nb := s.newBucket(count)
		nb.next = b
		if b != nil {
			b.prev = nb
		} else {
			s.max = nb
		}
		s.min = nb
		s.pushCounter(nb, c)
		return
	}
	at := b
	for at.next != nil && at.next.count <= count {
		at = at.next
	}
	if at.count == count {
		s.pushCounter(at, c)
		return
	}
	nb := s.newBucket(count)
	nb.prev = at
	nb.next = at.next
	if at.next != nil {
		at.next.prev = nb
	} else {
		s.max = nb
	}
	at.next = nb
	s.pushCounter(nb, c)
}

func (s *Summary) pushCounter(b *bucket, c *counter) {
	c.bucket = b
	c.prev = nil
	c.next = b.head
	if b.head != nil {
		b.head.prev = c
	}
	b.head = c
}

func (s *Summary) unlinkCounter(c *counter) {
	if c.prev != nil {
		c.prev.next = c.next
	} else {
		c.bucket.head = c.next
	}
	if c.next != nil {
		c.next.prev = c.prev
	}
	c.prev, c.next = nil, nil
}

func (s *Summary) unlinkBucket(b *bucket) {
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		s.min = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else {
		s.max = b.prev
	}
}

// Count returns the estimated count and maximum error for key, and whether
// the key is currently monitored.
func (s *Summary) Count(key string) (count, err uint64, ok bool) {
	return s.CountDigest(hashing.Digest(key))
}

// CountDigest is Count keyed by a pre-computed digest: the hot-path form.
func (s *Summary) CountDigest(d hashing.KeyDigest) (count, err uint64, ok bool) {
	c := s.table.get(d)
	if c == nil {
		return 0, 0, false
	}
	return c.count, c.err, true
}

// EstFreq returns the estimated relative frequency of key (0 if the key is
// not monitored or the stream is empty).
func (s *Summary) EstFreq(key string) float64 {
	c, _, ok := s.CountDigest(hashing.Digest(key))
	if !ok || s.n == 0 {
		return 0
	}
	return float64(c) / float64(s.n)
}

// MinCount returns the smallest monitored count; any unmonitored key's
// true count is at most this value. Zero when empty.
func (s *Summary) MinCount() uint64 {
	if s.min == nil {
		return 0
	}
	return s.min.count
}

// Entries returns all monitored keys sorted by descending estimated count
// (ties broken by key for determinism).
func (s *Summary) Entries() []Entry {
	out := make([]Entry, 0, s.len)
	for b := s.min; b != nil; b = b.next {
		for c := b.head; c != nil; c = c.next {
			out = append(out, Entry{Key: c.key, Count: c.count, Err: c.err})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Top returns the k entries with the largest estimated counts.
func (s *Summary) Top(k int) []Entry {
	e := s.Entries()
	if k < len(e) {
		e = e[:k]
	}
	return e
}

// HeavyHitters returns all monitored keys whose estimated frequency is at
// least theta, sorted by descending count. Every key whose true frequency
// is ≥ theta is included (no false negatives) provided
// capacity ≥ 1/theta; some keys below theta may appear (false positives
// bounded by the sketch error).
func (s *Summary) HeavyHitters(theta float64) []Entry {
	if s.n == 0 {
		return nil
	}
	thr := theta * float64(s.n)
	// Walk buckets from the top down: the head is a handful of entries,
	// so this is O(|head|) instead of sorting all monitored keys. The
	// bucket order gives descending counts; ties are key-sorted within
	// each bucket for determinism.
	var out []Entry
	for b := s.max; b != nil && float64(b.count) >= thr; b = b.prev {
		start := len(out)
		for c := b.head; c != nil; c = c.next {
			out = append(out, Entry{Key: c.key, Count: c.count, Err: c.err})
		}
		grp := out[start:]
		sort.Slice(grp, func(i, j int) bool { return grp[i].Key < grp[j].Key })
	}
	return out
}

// mergedEntry pairs an Entry with its digest during Merge.
type mergedEntry struct {
	dig        hashing.KeyDigest
	key        string
	count, err uint64
}

// entriesWithDigests returns the monitored entries with their digests,
// in the deterministic Entries order.
func (s *Summary) entriesWithDigests() []mergedEntry {
	out := make([]mergedEntry, 0, s.len)
	for b := s.min; b != nil; b = b.next {
		for c := b.head; c != nil; c = c.next {
			out = append(out, mergedEntry{dig: c.dig, key: c.key, count: c.count, err: c.err})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].count != out[j].count {
			return out[i].count > out[j].count
		}
		return out[i].key < out[j].key
	})
	return out
}

// Merge combines s with other into a new Summary with s's capacity,
// following the mergeable-summaries construction: per-key estimates add
// up, keys absent from one side contribute that side's minimum count as
// additional error, and only the largest `capacity` keys are retained.
// Both inputs are left unmodified. The merged sketch preserves the
// SpaceSaving guarantee est−err ≤ true ≤ est.
func (s *Summary) Merge(other *Summary) *Summary {
	sMin, oMin := s.MinCount(), other.MinCount()

	entries := make([]mergedEntry, 0, s.len+other.len)
	for _, e := range s.entriesWithDigests() {
		if oc := other.table.get(e.dig); oc != nil {
			e.count += oc.count
			e.err += oc.err
		} else {
			// Unknown to other: its true count there is ≤ oMin.
			e.count += oMin
			e.err += oMin
		}
		entries = append(entries, e)
	}
	for _, e := range other.entriesWithDigests() {
		if s.table.get(e.dig) != nil {
			continue // already merged above
		}
		// Unknown to s: its true count there is ≤ sMin.
		e.count += sMin
		e.err += sMin
		entries = append(entries, e)
	}

	sort.Slice(entries, func(i, j int) bool {
		if entries[i].count != entries[j].count {
			return entries[i].count > entries[j].count
		}
		return entries[i].key < entries[j].key
	})
	if len(entries) > s.capacity {
		entries = entries[:s.capacity]
	}

	out := New(s.capacity)
	out.n = s.n + other.n
	// Rebuild the bucket structure from the retained entries (ascending
	// insert keeps the bucket list ordered).
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		c := &counter{dig: e.dig, key: e.key, err: e.err}
		out.len++
		out.table.put(c)
		out.attachSorted(c, e.count)
	}
	return out
}

// attachSorted inserts a counter with an arbitrary count assuming counts
// arrive in non-decreasing order (used by Merge's and Clone's rebuild).
func (s *Summary) attachSorted(c *counter, count uint64) {
	c.count = count
	// Counts arrive ascending, so the target is the maximum bucket or a
	// new bucket after it.
	last := s.max
	if last != nil && last.count == count {
		s.pushCounter(last, c)
		return
	}
	nb := s.newBucket(count)
	nb.prev = last
	if last != nil {
		last.next = nb
	} else {
		s.min = nb
	}
	s.max = nb
	s.pushCounter(nb, c)
}

// Clone returns an independent deep copy of the sketch.
func (s *Summary) Clone() *Summary {
	out := New(s.capacity)
	out.n = s.n
	out.evicted = s.evicted
	entries := s.entriesWithDigests()
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		c := &counter{dig: e.dig, key: e.key, err: e.err}
		out.len++
		out.table.put(c)
		out.attachSorted(c, e.count)
	}
	return out
}

// Reset clears the sketch to its freshly-constructed state, retaining
// the table storage and recycling all bucket nodes.
func (s *Summary) Reset() {
	s.table.reset()
	for b := s.min; b != nil; {
		next := b.next
		b.head = nil
		s.recycle(b)
		b = next
	}
	s.min = nil
	s.max = nil
	s.len = 0
	s.n = 0
	s.last = nil
	s.evicted = 0
}
