// Package spacesaving implements the SpaceSaving algorithm of Metwally,
// Agrawal and El Abbadi ("Efficient computation of frequent and top-k
// elements in data streams", ICDT 2005) on the Stream-Summary data
// structure, which supports strict O(1) updates per stream item.
//
// A Summary with capacity c monitors at most c keys and guarantees, for
// every key k with true count f(k) and estimate est(k) with error err(k):
//
//	est(k) − err(k) ≤ f(k) ≤ est(k)          (for monitored keys)
//	f(k) ≤ minCount ≤ N/c                    (for unmonitored keys)
//
// so every key with frequency above 1/c is guaranteed to be monitored.
// Summaries are mergeable in the sense of Berinde, Indyk, Cormode and
// Strauss (ACM TODS 2010), enabling the distributed heavy-hitter tracking
// the paper relies on when several sources observe disjoint sub-streams.
package spacesaving

import "sort"

// Entry is one monitored key with its count estimate and maximum
// overestimation error.
type Entry struct {
	Key   string
	Count uint64 // estimated count; never below the true count
	Err   uint64 // maximum overestimation: Count − Err ≤ true ≤ Count
}

// counter is a node in the Stream-Summary: a monitored key parked in the
// bucket matching its current estimated count.
type counter struct {
	key        string
	count      uint64
	err        uint64
	bucket     *bucket
	prev, next *counter // siblings within the same bucket
}

// bucket groups all counters sharing one count value. Buckets form a
// doubly-linked list in strictly ascending count order, so the minimum
// counter is always reachable in O(1).
type bucket struct {
	count      uint64
	head       *counter
	prev, next *bucket
}

// Summary is a SpaceSaving sketch. The zero value is not usable;
// construct with New.
type Summary struct {
	capacity int
	counters map[string]*counter
	min      *bucket // lowest-count bucket
	n        uint64  // stream length observed so far
}

// New returns an empty Summary that monitors at most capacity keys.
// Capacity c yields a frequency error of at most N/c over a stream of
// length N; to detect all keys above frequency threshold θ, any
// capacity ≥ 1/θ suffices.
func New(capacity int) *Summary {
	if capacity <= 0 {
		panic("spacesaving: capacity must be positive")
	}
	return &Summary{
		capacity: capacity,
		counters: make(map[string]*counter, capacity),
	}
}

// Capacity returns the maximum number of monitored keys.
func (s *Summary) Capacity() int { return s.capacity }

// N returns the number of items offered so far.
func (s *Summary) N() uint64 { return s.n }

// Len returns the number of currently monitored keys.
func (s *Summary) Len() int { return len(s.counters) }

// Offer feeds one occurrence of key to the sketch.
func (s *Summary) Offer(key string) {
	s.n++
	if c, ok := s.counters[key]; ok {
		s.increment(c)
		return
	}
	if len(s.counters) < s.capacity {
		c := &counter{key: key}
		s.counters[key] = c
		s.attach(c, 1)
		return
	}
	// Replace the minimum counter: the evicted key's count becomes the new
	// key's overestimation error.
	victim := s.min.head
	delete(s.counters, victim.key)
	victim.err = victim.count
	victim.key = key
	s.counters[key] = victim
	s.increment(victim)
}

// increment moves counter c from its current bucket to the bucket for
// count+1, creating or removing buckets as needed. O(1).
func (s *Summary) increment(c *counter) {
	b := c.bucket
	newCount := b.count + 1
	s.unlinkCounter(c)

	dst := b.next
	if dst == nil || dst.count != newCount {
		nb := &bucket{count: newCount, prev: b, next: b.next}
		if b.next != nil {
			b.next.prev = nb
		}
		b.next = nb
		dst = nb
	}
	if b.head == nil {
		s.unlinkBucket(b)
	}
	c.count = newCount
	s.pushCounter(dst, c)
}

// attach places a fresh counter into the bucket for the given count
// (used only for count==1 inserts, so the target is at the front).
func (s *Summary) attach(c *counter, count uint64) {
	c.count = count
	b := s.min
	if b == nil || b.count != count {
		nb := &bucket{count: count, next: b}
		if b != nil {
			b.prev = nb
		}
		s.min = nb
		b = nb
	}
	s.pushCounter(b, c)
}

func (s *Summary) pushCounter(b *bucket, c *counter) {
	c.bucket = b
	c.prev = nil
	c.next = b.head
	if b.head != nil {
		b.head.prev = c
	}
	b.head = c
}

func (s *Summary) unlinkCounter(c *counter) {
	if c.prev != nil {
		c.prev.next = c.next
	} else {
		c.bucket.head = c.next
	}
	if c.next != nil {
		c.next.prev = c.prev
	}
	c.prev, c.next = nil, nil
}

func (s *Summary) unlinkBucket(b *bucket) {
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		s.min = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	}
}

// Count returns the estimated count and maximum error for key, and whether
// the key is currently monitored.
func (s *Summary) Count(key string) (count, err uint64, ok bool) {
	c, ok := s.counters[key]
	if !ok {
		return 0, 0, false
	}
	return c.count, c.err, true
}

// EstFreq returns the estimated relative frequency of key (0 if the key is
// not monitored or the stream is empty).
func (s *Summary) EstFreq(key string) float64 {
	c, ok := s.counters[key]
	if !ok || s.n == 0 {
		return 0
	}
	return float64(c.count) / float64(s.n)
}

// MinCount returns the smallest monitored count; any unmonitored key's
// true count is at most this value. Zero when empty.
func (s *Summary) MinCount() uint64 {
	if s.min == nil {
		return 0
	}
	return s.min.count
}

// Entries returns all monitored keys sorted by descending estimated count
// (ties broken by key for determinism).
func (s *Summary) Entries() []Entry {
	out := make([]Entry, 0, len(s.counters))
	for b := s.min; b != nil; b = b.next {
		for c := b.head; c != nil; c = c.next {
			out = append(out, Entry{Key: c.key, Count: c.count, Err: c.err})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Top returns the k entries with the largest estimated counts.
func (s *Summary) Top(k int) []Entry {
	e := s.Entries()
	if k < len(e) {
		e = e[:k]
	}
	return e
}

// HeavyHitters returns all monitored keys whose estimated frequency is at
// least theta, sorted by descending count. Every key whose true frequency
// is ≥ theta is included (no false negatives) provided
// capacity ≥ 1/theta; some keys below theta may appear (false positives
// bounded by the sketch error).
func (s *Summary) HeavyHitters(theta float64) []Entry {
	if s.n == 0 {
		return nil
	}
	thr := theta * float64(s.n)
	e := s.Entries()
	cut := len(e)
	for i, en := range e {
		if float64(en.Count) < thr {
			cut = i
			break
		}
	}
	return e[:cut]
}

// Merge combines s with other into a new Summary with s's capacity,
// following the mergeable-summaries construction: per-key estimates add
// up, keys absent from one side contribute that side's minimum count as
// additional error, and only the largest `capacity` keys are retained.
// Both inputs are left unmodified. The merged sketch preserves the
// SpaceSaving guarantee est−err ≤ true ≤ est.
func (s *Summary) Merge(other *Summary) *Summary {
	type acc struct{ count, err uint64 }
	merged := make(map[string]acc, len(s.counters)+other.Len())
	sMin, oMin := s.MinCount(), other.MinCount()

	for _, e := range s.Entries() {
		merged[e.Key] = acc{count: e.Count, err: e.Err}
	}
	for _, e := range other.Entries() {
		if a, ok := merged[e.Key]; ok {
			merged[e.Key] = acc{count: a.count + e.Count, err: a.err + e.Err}
		} else {
			// Unknown to s: its true count there is ≤ sMin.
			merged[e.Key] = acc{count: e.Count + sMin, err: e.Err + sMin}
		}
	}
	for _, e := range s.Entries() {
		if _, seen := other.counters[e.Key]; !seen {
			a := merged[e.Key]
			merged[e.Key] = acc{count: a.count + oMin, err: a.err + oMin}
		}
	}

	entries := make([]Entry, 0, len(merged))
	for k, a := range merged {
		entries = append(entries, Entry{Key: k, Count: a.count, Err: a.err})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Count != entries[j].Count {
			return entries[i].Count > entries[j].Count
		}
		return entries[i].Key < entries[j].Key
	})
	if len(entries) > s.capacity {
		entries = entries[:s.capacity]
	}

	out := New(s.capacity)
	out.n = s.n + other.n
	// Rebuild the bucket structure from the retained entries (ascending
	// insert keeps bucket list ordered).
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		c := &counter{key: e.Key, err: e.Err}
		out.counters[e.Key] = c
		out.attachSorted(c, e.Count)
	}
	return out
}

// attachSorted inserts a counter with an arbitrary count assuming counts
// arrive in non-decreasing order (used by Merge's rebuild).
func (s *Summary) attachSorted(c *counter, count uint64) {
	c.count = count
	// Find the last bucket (counts arrive ascending, so target is at or
	// after the current maximum bucket).
	var last *bucket
	for b := s.min; b != nil; b = b.next {
		last = b
	}
	if last != nil && last.count == count {
		s.pushCounter(last, c)
		return
	}
	nb := &bucket{count: count, prev: last}
	if last != nil {
		last.next = nb
	} else {
		s.min = nb
	}
	s.pushCounter(nb, c)
}

// Clone returns an independent deep copy of the sketch.
func (s *Summary) Clone() *Summary {
	out := New(s.capacity)
	out.n = s.n
	entries := s.Entries()
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		c := &counter{key: e.Key, err: e.Err}
		out.counters[e.Key] = c
		out.attachSorted(c, e.Count)
	}
	return out
}

// Reset clears the sketch to its freshly-constructed state.
func (s *Summary) Reset() {
	s.counters = make(map[string]*counter, s.capacity)
	s.min = nil
	s.n = 0
}
