package spacesaving

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestWindowedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWindowed(.., 0) did not panic")
		}
	}()
	NewWindowed(4, 0)
}

func TestWindowedCountsWithinWindow(t *testing.T) {
	w := NewWindowed(10, 100)
	for i := 0; i < 30; i++ {
		w.Offer("a")
	}
	c, _, ok := w.Count("a")
	if !ok || c != 30 {
		t.Fatalf("Count(a) = (%d, %v), want 30", c, ok)
	}
	if w.N() != 30 {
		t.Fatalf("N = %d", w.N())
	}
	if f := w.EstFreq("a"); f != 1.0 {
		t.Fatalf("EstFreq = %f", f)
	}
}

func TestWindowedRotationForgets(t *testing.T) {
	w := NewWindowed(10, 50)
	// Fill two full generations with "old"; it then lives only in prev.
	for i := 0; i < 100; i++ {
		w.Offer("old")
	}
	// One more generation of "new" pushes "old" fully out.
	for i := 0; i < 100; i++ {
		w.Offer("new")
	}
	if _, _, ok := w.Count("old"); ok {
		t.Fatal("old key survived two rotations")
	}
	c, _, _ := w.Count("new")
	if c == 0 {
		t.Fatal("new key lost")
	}
	// Covered mass stays bounded by 2×window.
	if w.N() > 100 {
		t.Fatalf("N = %d exceeds 2×window", w.N())
	}
}

func TestWindowedAdaptationBounded(t *testing.T) {
	// After drift, the new hot key must cross θ=0.5 within ~2 windows, no
	// matter how long the stream ran before — the property the plain
	// sketch lacks.
	w := NewWindowed(10, 100)
	for i := 0; i < 10000; i++ {
		w.Offer("era1")
	}
	detect := -1
	for i := 0; i < 300; i++ {
		w.Offer("era2")
		if w.EstFreq("era2") >= 0.5 && detect < 0 {
			detect = i + 1
		}
	}
	if detect < 0 || detect > 200 {
		t.Fatalf("era2 detected after %d messages, want ≤ 2 windows", detect)
	}

	// The plain sketch by contrast needs ≥ N·θ ≈ 5000 occurrences.
	s := New(10)
	for i := 0; i < 10000; i++ {
		s.Offer("era1")
	}
	for i := 0; i < 300; i++ {
		s.Offer("era2")
	}
	if s.EstFreq("era2") >= 0.5 {
		t.Fatal("plain sketch should NOT have adapted this fast; test premise broken")
	}
}

func TestWindowedHeavyHittersCombineGenerations(t *testing.T) {
	w := NewWindowed(10, 100)
	// 60 "a" in generation 1, then rotation, then 60 more in generation 2.
	for i := 0; i < 60; i++ {
		w.Offer("a")
	}
	for i := 0; i < 40; i++ {
		w.Offer(fmt.Sprintf("t%d", i))
	}
	// Generation rotated at N=100. Now a second generation:
	for i := 0; i < 60; i++ {
		w.Offer("a")
	}
	hh := w.HeavyHitters(0.5)
	if len(hh) != 1 || hh[0].Key != "a" {
		t.Fatalf("HeavyHitters = %v", hh)
	}
	if hh[0].Count != 120 {
		t.Fatalf("combined count = %d, want 120", hh[0].Count)
	}
}

func TestWindowedEmpty(t *testing.T) {
	w := NewWindowed(4, 10)
	if w.N() != 0 || w.EstFreq("x") != 0 || len(w.HeavyHitters(0.1)) != 0 {
		t.Fatal("empty windowed sketch misbehaves")
	}
	if _, _, ok := w.Count("x"); ok {
		t.Fatal("Count on empty should be !ok")
	}
	if w.Window() != 10 {
		t.Fatalf("Window = %d", w.Window())
	}
}

func TestWindowedHeavyHittersSorted(t *testing.T) {
	prop := func(raw []uint8) bool {
		w := NewWindowed(8, 32)
		for _, b := range raw {
			w.Offer(fmt.Sprintf("w%d", b%16))
		}
		hh := w.HeavyHitters(0.01)
		for i := 1; i < len(hh); i++ {
			if hh[i].Count > hh[i-1].Count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowedNeverUnderestimatesWithinGeneration(t *testing.T) {
	// Within a single generation (no rotation), the windowed sketch's
	// count upper-bound property matches the plain sketch's.
	prop := func(raw []uint8) bool {
		if len(raw) > 30 {
			raw = raw[:30] // stay under one 64-item window
		}
		w := NewWindowed(4, 64)
		truth := map[string]uint64{}
		for _, b := range raw {
			k := fmt.Sprintf("p%d", b%8)
			w.Offer(k)
			truth[k]++
		}
		for k, tr := range truth {
			if c, _, ok := w.Count(k); ok && c < tr {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
