package spacesaving

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"slb/internal/hashing"
)

func TestNewPanicsOnBadCapacity(t *testing.T) {
	for _, c := range []int{0, -3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", c)
				}
			}()
			New(c)
		}()
	}
}

func TestExactWhenUnderCapacity(t *testing.T) {
	s := New(10)
	stream := []string{"a", "b", "a", "c", "a", "b"}
	for _, k := range stream {
		s.Offer(k)
	}
	want := map[string]uint64{"a": 3, "b": 2, "c": 1}
	for k, w := range want {
		got, err, ok := s.Count(k)
		if !ok || got != w || err != 0 {
			t.Errorf("Count(%q) = (%d,%d,%v), want (%d,0,true)", k, got, err, ok, w)
		}
	}
	if s.N() != uint64(len(stream)) {
		t.Errorf("N() = %d, want %d", s.N(), len(stream))
	}
	if s.Len() != 3 {
		t.Errorf("Len() = %d, want 3", s.Len())
	}
}

func TestEvictionSemantics(t *testing.T) {
	s := New(2)
	s.Offer("a")
	s.Offer("a")
	s.Offer("b")
	// Sketch full: {a:2, b:1}. Offering c evicts b (min=1): c gets count 2, err 1.
	s.Offer("c")
	if _, _, ok := s.Count("b"); ok {
		t.Fatal("b should have been evicted")
	}
	count, errv, ok := s.Count("c")
	if !ok || count != 2 || errv != 1 {
		t.Fatalf("Count(c) = (%d,%d,%v), want (2,1,true)", count, errv, ok)
	}
}

// trueCounts computes exact frequencies for a slice stream.
func trueCounts(stream []string) map[string]uint64 {
	m := make(map[string]uint64)
	for _, k := range stream {
		m[k]++
	}
	return m
}

func zipfStream(tb testing.TB, n int, seed int64, s float64, vocab int) []string {
	tb.Helper()
	r := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(r, s, 1, uint64(vocab-1))
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("k%d", z.Uint64())
	}
	return out
}

func TestGuaranteesOnSkewedStream(t *testing.T) {
	stream := zipfStream(t, 50000, 1, 1.3, 10000)
	truth := trueCounts(stream)
	s := New(100)
	for _, k := range stream {
		s.Offer(k)
	}
	// Invariant 1: est − err ≤ true ≤ est for every monitored key.
	for _, e := range s.Entries() {
		tr := truth[e.Key]
		if e.Count < tr {
			t.Fatalf("underestimate for %q: est %d < true %d", e.Key, e.Count, tr)
		}
		if e.Count-e.Err > tr {
			t.Fatalf("lower bound violated for %q: est−err %d > true %d", e.Key, e.Count-e.Err, tr)
		}
	}
	// Invariant 2: unmonitored keys have true count ≤ MinCount ≤ N/c.
	minC := s.MinCount()
	if minC > s.N()/uint64(s.Capacity()) {
		t.Fatalf("MinCount %d exceeds N/c = %d", minC, s.N()/uint64(s.Capacity()))
	}
	for k, tr := range truth {
		if _, _, ok := s.Count(k); !ok && tr > minC {
			t.Fatalf("unmonitored key %q has true count %d > MinCount %d", k, tr, minC)
		}
	}
}

func TestHeavyHittersNoFalseNegatives(t *testing.T) {
	stream := zipfStream(t, 30000, 2, 1.5, 5000)
	truth := trueCounts(stream)
	theta := 0.01
	s := New(int(2 / theta)) // capacity 200 ≥ 1/θ
	for _, k := range stream {
		s.Offer(k)
	}
	hh := s.HeavyHitters(theta)
	got := make(map[string]bool, len(hh))
	for _, e := range hh {
		got[e.Key] = true
	}
	n := float64(len(stream))
	for k, tr := range truth {
		if float64(tr)/n >= theta && !got[k] {
			t.Errorf("true heavy hitter %q (freq %.4f) missing", k, float64(tr)/n)
		}
	}
}

func TestEntriesSortedDescending(t *testing.T) {
	stream := zipfStream(t, 10000, 3, 1.2, 1000)
	s := New(50)
	for _, k := range stream {
		s.Offer(k)
	}
	e := s.Entries()
	for i := 1; i < len(e); i++ {
		if e[i].Count > e[i-1].Count {
			t.Fatalf("Entries not sorted at %d: %d > %d", i, e[i].Count, e[i-1].Count)
		}
	}
	if len(e) != s.Len() {
		t.Fatalf("Entries length %d != Len %d", len(e), s.Len())
	}
}

func TestTop(t *testing.T) {
	s := New(10)
	for i := 0; i < 5; i++ {
		for j := 0; j <= i; j++ {
			s.Offer(fmt.Sprintf("t%d", i))
		}
	}
	top := s.Top(2)
	if len(top) != 2 || top[0].Key != "t4" || top[1].Key != "t3" {
		t.Fatalf("Top(2) = %v", top)
	}
	if got := s.Top(100); len(got) != 5 {
		t.Fatalf("Top(100) len = %d, want 5", len(got))
	}
}

func TestMergePreservesGuarantees(t *testing.T) {
	streamA := zipfStream(t, 20000, 4, 1.4, 3000)
	streamB := zipfStream(t, 20000, 5, 1.4, 3000)
	truth := trueCounts(append(append([]string{}, streamA...), streamB...))

	a, b := New(80), New(80)
	for _, k := range streamA {
		a.Offer(k)
	}
	for _, k := range streamB {
		b.Offer(k)
	}
	m := a.Merge(b)

	if m.N() != a.N()+b.N() {
		t.Fatalf("merged N = %d, want %d", m.N(), a.N()+b.N())
	}
	if m.Len() > m.Capacity() {
		t.Fatalf("merged Len %d exceeds capacity %d", m.Len(), m.Capacity())
	}
	for _, e := range m.Entries() {
		tr := truth[e.Key]
		if e.Count < tr {
			t.Fatalf("merge underestimates %q: est %d < true %d", e.Key, e.Count, tr)
		}
		if e.Count-e.Err > tr {
			t.Fatalf("merge lower bound violated for %q: %d−%d > %d", e.Key, e.Count, e.Err, tr)
		}
	}
	// Inputs untouched.
	if a.Len() == 0 || b.Len() == 0 {
		t.Fatal("Merge modified its inputs")
	}
}

func TestMergedSummaryStillUpdatable(t *testing.T) {
	a, b := New(4), New(4)
	a.Offer("x")
	a.Offer("x")
	b.Offer("y")
	m := a.Merge(b)
	m.Offer("x")
	m.Offer("z")
	c, _, ok := m.Count("x")
	if !ok || c < 3 {
		t.Fatalf("Count(x) after merge+offer = (%d, %v), want ≥3", c, ok)
	}
}

func TestReset(t *testing.T) {
	s := New(5)
	s.Offer("a")
	s.Reset()
	if s.N() != 0 || s.Len() != 0 || s.MinCount() != 0 {
		t.Fatal("Reset did not clear the sketch")
	}
	s.Offer("b")
	if c, _, ok := s.Count("b"); !ok || c != 1 {
		t.Fatal("sketch unusable after Reset")
	}
}

func TestEstFreq(t *testing.T) {
	s := New(4)
	if s.EstFreq("nope") != 0 {
		t.Fatal("EstFreq on empty sketch should be 0")
	}
	for i := 0; i < 3; i++ {
		s.Offer("a")
	}
	s.Offer("b")
	if f := s.EstFreq("a"); f != 0.75 {
		t.Fatalf("EstFreq(a) = %f, want 0.75", f)
	}
}

// Property: for random streams, SpaceSaving never underestimates and the
// lower bound est−err never exceeds the true count.
func TestBoundsProperty(t *testing.T) {
	prop := func(raw []uint8, capRaw uint8) bool {
		capacity := int(capRaw%20) + 1
		s := New(capacity)
		truth := make(map[string]uint64)
		for _, b := range raw {
			k := fmt.Sprintf("p%d", b%32)
			truth[k]++
			s.Offer(k)
		}
		for _, e := range s.Entries() {
			tr := truth[e.Key]
			if e.Count < tr || e.Count-e.Err > tr {
				return false
			}
		}
		// Total estimated mass of the sketch never exceeds... it can exceed N
		// individually, but sum of (count − err) must be ≤ N.
		var lower uint64
		for _, e := range s.Entries() {
			lower += e.Count - e.Err
		}
		return lower <= s.N()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: bucket list stays strictly ascending and consistent with the
// counters map after arbitrary operations.
func TestStructureInvariant(t *testing.T) {
	prop := func(raw []uint16) bool {
		s := New(8)
		for _, v := range raw {
			s.Offer(fmt.Sprintf("s%d", v%64))
		}
		seen := 0
		var prevCount uint64
		var last *bucket
		for b := s.min; b != nil; b = b.next {
			last = b
		}
		if s.max != last {
			return false // max pointer out of sync
		}
		for b := s.min; b != nil; b = b.next {
			if b.count <= prevCount {
				return false
			}
			prevCount = b.count
			if b.head == nil {
				return false // empty bucket left linked
			}
			for c := b.head; c != nil; c = c.next {
				if c.bucket != b || c.count != b.count {
					return false
				}
				if s.table.get(c.dig) != c {
					return false
				}
				seen++
			}
		}
		return seen == s.Len()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOfferDigestMatchesOffer(t *testing.T) {
	// The digest-keyed hot path and the string wrapper must build
	// identical sketches over an eviction-heavy stream.
	a, b := New(8), New(8)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("dk%d", rng.Intn(200))
		a.Offer(k)
		b.OfferDigest(hashing.Digest(k), k)
	}
	ea, eb := a.Entries(), b.Entries()
	if len(ea) != len(eb) {
		t.Fatalf("entry counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
}

func TestOfferDigestNMatchesRepeatedOffers(t *testing.T) {
	// OfferDigestN(d, key, r) must be indistinguishable from r calls to
	// Offer(key), across monitored, fresh-insert and eviction cases.
	prop := func(raw []uint16) bool {
		a, b := New(4), New(4)
		for _, v := range raw {
			k := fmt.Sprintf("r%d", v%16)
			r := uint64(v%5) + 1
			d := hashing.Digest(k)
			for j := uint64(0); j < r; j++ {
				a.OfferDigest(d, k)
			}
			b.OfferDigestN(d, k, r)
			if a.N() != b.N() || a.MinCount() != b.MinCount() {
				return false
			}
		}
		ea, eb := a.Entries(), b.Entries()
		if len(ea) != len(eb) {
			return false
		}
		for i := range ea {
			if ea[i] != eb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOfferSteadyStateDoesNotAllocate(t *testing.T) {
	// After warmup (sketch at capacity, bucket free-list primed), the
	// offer path must not allocate even under constant eviction churn.
	s := New(64)
	keys := make([]string, 4096)
	digs := make([]hashing.KeyDigest, 4096)
	rng := rand.New(rand.NewSource(7))
	for i := range keys {
		keys[i] = fmt.Sprintf("alloc%d", rng.Intn(1024))
		digs[i] = hashing.Digest(keys[i])
	}
	for i := range keys {
		s.OfferDigest(digs[i], keys[i]) // warmup: fill capacity, prime pools
	}
	i := 0
	avg := testing.AllocsPerRun(2000, func() {
		s.OfferDigest(digs[i&4095], keys[i&4095])
		i++
	})
	if avg != 0 {
		t.Fatalf("steady-state OfferDigest allocates %.3f allocs/op, want 0", avg)
	}
}

func BenchmarkOffer(b *testing.B) {
	stream := zipfStream(b, 1<<16, 9, 1.2, 10000)
	s := New(200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Offer(stream[i&(1<<16-1)])
	}
}

func BenchmarkOfferDigest(b *testing.B) {
	stream := zipfStream(b, 1<<16, 9, 1.2, 10000)
	digs := make([]hashing.KeyDigest, len(stream))
	for i, k := range stream {
		digs[i] = hashing.Digest(k)
	}
	s := New(200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.OfferDigest(digs[i&(1<<16-1)], stream[i&(1<<16-1)])
	}
}
