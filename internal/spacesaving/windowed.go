package spacesaving

import "slb/internal/hashing"

// Windowed is a two-generation SpaceSaving sketch for drifting streams:
// offers go to the current generation, and once it has absorbed
// `window` items it becomes the previous generation and a fresh one
// starts. Queries combine both generations, so estimates cover the most
// recent window to two windows of the stream.
//
// The plain Summary never forgets: on a long stream, a newly hot key
// must accumulate θ·N occurrences before crossing the head threshold,
// and N grows without bound — so detection latency grows linearly with
// stream age. Windowed keeps the reference mass bounded by 2·window,
// making adaptation latency independent of how long the system has been
// running. This is the standard rotation construction for turning any
// insertion-only sketch into a sliding-window approximation.
type Windowed struct {
	capacity int
	window   uint64
	cur      *Summary
	prev     *Summary
	retired  uint64 // evictions accumulated by rotated-out generations
}

// NewWindowed returns a windowed sketch; each generation monitors at
// most capacity keys and spans `window` stream items.
func NewWindowed(capacity int, window uint64) *Windowed {
	if window == 0 {
		panic("spacesaving: window must be positive")
	}
	return &Windowed{
		capacity: capacity,
		window:   window,
		cur:      New(capacity),
	}
}

// Window returns the configured generation length.
func (w *Windowed) Window() uint64 { return w.window }

// Offer feeds one occurrence of key, rotating generations as needed.
func (w *Windowed) Offer(key string) {
	w.OfferDigest(hashing.Digest(key), key)
}

// OfferDigest is Offer keyed by a pre-computed digest (the hot-path
// form; key is retained only if it becomes monitored).
func (w *Windowed) OfferDigest(d hashing.KeyDigest, key string) {
	w.cur.OfferDigest(d, key)
	if w.cur.N() >= w.window {
		if w.prev != nil {
			w.retired += w.prev.Evictions()
		}
		w.prev = w.cur
		w.cur = New(w.capacity)
	}
}

// Len returns the number of monitored entries across the live
// generations. A key hot in both generations is counted twice — Len is
// an occupancy gauge (table slots in use), not a distinct-key count.
func (w *Windowed) Len() int {
	n := w.cur.Len()
	if w.prev != nil {
		n += w.prev.Len()
	}
	return n
}

// Capacity returns the total monitored-entry capacity across both
// generations.
func (w *Windowed) Capacity() int { return 2 * w.capacity }

// Evictions returns the min-counter replacements over the sketch's
// whole lifetime, including rotated-out generations (head churn; see
// Summary.Evictions).
func (w *Windowed) Evictions() uint64 {
	n := w.retired + w.cur.Evictions()
	if w.prev != nil {
		n += w.prev.Evictions()
	}
	return n
}

// N returns the stream mass covered by the live generations (at most
// 2·window).
func (w *Windowed) N() uint64 {
	n := w.cur.N()
	if w.prev != nil {
		n += w.prev.N()
	}
	return n
}

// Count returns the combined estimate for key over the covered window.
func (w *Windowed) Count(key string) (count, err uint64, ok bool) {
	return w.CountDigest(hashing.Digest(key))
}

// CountDigest is Count keyed by a pre-computed digest.
func (w *Windowed) CountDigest(d hashing.KeyDigest) (count, err uint64, ok bool) {
	c1, e1, ok1 := w.cur.CountDigest(d)
	var c2, e2 uint64
	var ok2 bool
	if w.prev != nil {
		c2, e2, ok2 = w.prev.CountDigest(d)
	}
	if !ok1 && !ok2 {
		return 0, 0, false
	}
	return c1 + c2, e1 + e2, true
}

// EstFreq returns the estimated relative frequency of key over the
// covered window.
func (w *Windowed) EstFreq(key string) float64 {
	n := w.N()
	if n == 0 {
		return 0
	}
	c, _, ok := w.Count(key)
	if !ok {
		return 0
	}
	return float64(c) / float64(n)
}

// HeavyHitters returns the keys whose combined estimated frequency over
// the covered window is at least theta, sorted by descending count.
func (w *Windowed) HeavyHitters(theta float64) []Entry {
	n := w.N()
	if n == 0 {
		return nil
	}
	combined := make(map[string]Entry)
	for _, e := range w.cur.Entries() {
		combined[e.Key] = e
	}
	if w.prev != nil {
		for _, e := range w.prev.Entries() {
			if a, ok := combined[e.Key]; ok {
				combined[e.Key] = Entry{Key: e.Key, Count: a.Count + e.Count, Err: a.Err + e.Err}
			} else {
				combined[e.Key] = e
			}
		}
	}
	thr := theta * float64(n)
	out := make([]Entry, 0, len(combined))
	for _, e := range combined {
		if float64(e.Count) >= thr {
			out = append(out, e)
		}
	}
	sortEntries(out)
	return out
}

// sortEntries orders entries by descending count, then key.
func sortEntries(entries []Entry) {
	// Insertion sort: heavy-hitter sets are tiny (≤ a few hundred).
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0 && less(entries[j], entries[j-1]); j-- {
			entries[j], entries[j-1] = entries[j-1], entries[j]
		}
	}
}

func less(a, b Entry) bool {
	if a.Count != b.Count {
		return a.Count > b.Count
	}
	return a.Key < b.Key
}
