package spacesaving_test

import (
	"fmt"

	"slb/internal/spacesaving"
)

// The sketch tracks the hottest keys of a stream with bounded memory:
// with capacity c, any key whose frequency exceeds 1/c is guaranteed to
// be monitored.
func Example() {
	s := spacesaving.New(3)
	for i := 0; i < 60; i++ {
		s.Offer("hot")
	}
	for i := 0; i < 30; i++ {
		s.Offer("warm")
	}
	for i := 0; i < 10; i++ {
		s.Offer(fmt.Sprintf("cold-%d", i)) // 10 distinct rare keys
	}
	for _, e := range s.HeavyHitters(0.2) {
		fmt.Printf("%s ≥ %d occurrences\n", e.Key, e.Count-e.Err)
	}
	// Output:
	// hot ≥ 60 occurrences
	// warm ≥ 30 occurrences
}

// Summaries from different sub-streams merge into a global view — the
// distributed heavy-hitters construction the paper's sources can use.
func ExampleSummary_Merge() {
	a, b := spacesaving.New(4), spacesaving.New(4)
	for i := 0; i < 40; i++ {
		a.Offer("k")
	}
	for i := 0; i < 25; i++ {
		b.Offer("k")
	}
	merged := a.Merge(b)
	c, _, _ := merged.Count("k")
	fmt.Println("global estimate:", c)
	// Output:
	// global estimate: 65
}

// The windowed variant forgets old stream mass, so a newly hot key is
// detected within a bounded number of messages no matter how long the
// stream has been running.
func ExampleWindowed() {
	w := spacesaving.NewWindowed(4, 100)
	for i := 0; i < 1000; i++ {
		w.Offer("old-star")
	}
	for i := 0; i < 150; i++ {
		w.Offer("new-star")
	}
	fmt.Printf("new-star freq over recent window: %.2f\n", w.EstFreq("new-star"))
	// Output:
	// new-star freq over recent window: 1.00
}
