package soak

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"slb/internal/texttab"
)

// SummaryTable renders the report's per-engine summaries as the
// BENCH_soak artifact: a texttab table whose Meta carries the
// configuration string the gate keys on, plus any extra metadata
// (seed, timestamp) the caller supplies.
func SummaryTable(rep *Report, extra map[string]string) *texttab.Table {
	t := texttab.New("Soak summary ("+rep.Config.Algorithm+", drifting workload)",
		"engine", "legs", "completed", "elapsed_s", "throughput", "route_ns_per_msg",
		"reduce_util_mean", "reduce_util_max", "rows")
	for _, s := range rep.Summaries {
		t.Addf(s.Engine, s.Legs, s.Completed, s.ElapsedSec, s.Throughput,
			s.RouteNsPerMsg, s.ReduceUtilMean, s.ReduceUtilMax, s.Rows)
	}
	t.Meta = map[string]string{"config": rep.Config.String()}
	for k, v := range extra {
		t.Meta[k] = v
	}
	return t
}

// Baseline is one historical soak summary parsed back out of a
// BENCH_soak artifact.
type Baseline struct {
	Path   string
	Config string
	// Throughput maps engine name to the recorded messages/sec.
	Throughput map[string]float64
}

// parseBaseline decodes one BENCH_soak JSON artifact. Files without a
// "config" meta key (or without the expected columns) are not
// baselines and return an error.
func parseBaseline(path string, data []byte) (Baseline, error) {
	var doc struct {
		Meta    map[string]string `json:"meta"`
		Columns []string          `json:"columns"`
		Rows    [][]string        `json:"rows"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return Baseline{}, fmt.Errorf("%s: %w", path, err)
	}
	if doc.Meta["config"] == "" {
		return Baseline{}, fmt.Errorf("%s: no config metadata", path)
	}
	col := map[string]int{}
	for i, c := range doc.Columns {
		col[c] = i
	}
	ei, ok1 := col["engine"]
	ti, ok2 := col["throughput"]
	if !ok1 || !ok2 {
		return Baseline{}, fmt.Errorf("%s: not a soak summary table", path)
	}
	b := Baseline{Path: path, Config: doc.Meta["config"], Throughput: map[string]float64{}}
	for _, row := range doc.Rows {
		if len(row) <= ei || len(row) <= ti {
			continue
		}
		v, err := strconv.ParseFloat(row[ti], 64)
		if err != nil {
			return Baseline{}, fmt.Errorf("%s: throughput %q: %w", path, row[ti], err)
		}
		b.Throughput[row[ei]] = v
	}
	return b, nil
}

// LoadBaselines reads soak baselines from path: a single BENCH_soak
// JSON file, or a directory whose BENCH_soak*.json files form the
// accumulated trajectory. Non-baseline files in a directory are
// skipped; a file given directly must parse.
func LoadBaselines(path string) ([]Baseline, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		b, err := parseBaseline(path, data)
		if err != nil {
			return nil, err
		}
		return []Baseline{b}, nil
	}
	matches, err := filepath.Glob(filepath.Join(path, "BENCH_soak*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	var out []Baseline
	for _, m := range matches {
		data, err := os.ReadFile(m)
		if err != nil {
			return nil, err
		}
		if b, err := parseBaseline(m, data); err == nil {
			out = append(out, b)
		}
	}
	return out, nil
}

// Gate compares the run against every baseline recorded under the same
// configuration string and returns one violation message per engine
// whose throughput fell more than tol (a fraction, e.g. 0.35) below
// the best matching baseline. The best-across-trajectory reference
// means a slow CI host can only ratchet the bar down by committing a
// new baseline, not by having one lucky run. An empty result means the
// gate passes; baselines under other configurations are ignored.
func Gate(rep *Report, baselines []Baseline, tol float64) []string {
	cfg := rep.Config.String()
	best := map[string]float64{}
	matched := false
	for _, b := range baselines {
		if b.Config != cfg {
			continue
		}
		matched = true
		for eng, v := range b.Throughput {
			if v > best[eng] {
				best[eng] = v
			}
		}
	}
	if !matched {
		return nil
	}
	var violations []string
	for _, s := range rep.Summaries {
		ref, ok := best[s.Engine]
		if !ok || ref <= 0 {
			continue
		}
		floor := ref * (1 - tol)
		if s.Throughput < floor {
			violations = append(violations, fmt.Sprintf(
				"%s throughput %.0f msg/s is %.1f%% below the baseline trajectory best %.0f (floor %.0f at tol %.0f%%)",
				s.Engine, s.Throughput, 100*(1-s.Throughput/ref), ref, floor, 100*tol))
		}
	}
	return violations
}
