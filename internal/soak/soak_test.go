package soak

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// shortConfig is a soak small enough for unit tests: one cycle, legs
// of 30k messages, sampling fast enough that at least the channel
// plane emits in-flight rows on any host.
func shortConfig(emit func(Row)) Config {
	return Config{
		Duration: 0, Interval: 25 * time.Millisecond, MinCycles: 1,
		Messages: 30_000, Keys: 2_000, ServiceTime: 2 * time.Microsecond,
		Workers: 4, Sources: 2, Shards: 3,
		Emit: emit,
	}
}

func TestRunCoversEveryEngine(t *testing.T) {
	var rows []Row
	rep, err := Run(shortConfig(func(r Row) { rows = append(rows, r) }))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles != 1 {
		t.Fatalf("cycles = %d, want 1", rep.Cycles)
	}
	if rep.Rows != len(rows) {
		t.Fatalf("report says %d rows, sink saw %d", rep.Rows, len(rows))
	}

	finals := map[string]Row{}
	for _, r := range rows {
		if len(r.ReduceUtil) != 3 {
			t.Fatalf("%s row has %d shard utils, want 3", r.Engine, len(r.ReduceUtil))
		}
		if r.Final {
			finals[r.Engine] = r
		}
	}
	for _, eng := range Engines {
		f, ok := finals[eng]
		if !ok {
			t.Fatalf("no final row for %s", eng)
		}
		if f.Completed != 30_000 {
			t.Fatalf("%s completed %d, want 30000", eng, f.Completed)
		}
		util := 0.0
		for _, u := range f.ReduceUtil {
			util += u
		}
		if util <= 0 {
			t.Fatalf("%s final row has zero reducer utilization", eng)
		}
		// Every engine run must have registered per-worker queue-depth
		// gauges — ring occupancy on the ring plane — for the interval
		// rows to sample.
		snap, ok := rep.FinalSnapshots[eng]
		if !ok {
			t.Fatalf("no final snapshot for %s", eng)
		}
		depthSeries := 0
		for i := range snap.Metrics {
			if snap.Metrics[i].Name == "queue_depth" {
				depthSeries++
			}
		}
		if depthSeries < 4 {
			t.Fatalf("%s snapshot has %d queue_depth series, want one per worker (4)", eng, depthSeries)
		}
	}

	if len(rep.Summaries) != len(Engines) {
		t.Fatalf("got %d summaries", len(rep.Summaries))
	}
	for _, s := range rep.Summaries {
		if s.Completed != 30_000 || s.Legs != 1 {
			t.Fatalf("%s summary: %+v", s.Engine, s)
		}
		if s.Throughput <= 0 {
			t.Fatalf("%s throughput not positive", s.Engine)
		}
		if s.Engine != EngineEventsim && s.RouteNsPerMsg <= 0 {
			t.Fatalf("%s route ns/msg not positive", s.Engine)
		}
		if s.ReduceUtilMean <= 0 || s.ReduceUtilMax < s.ReduceUtilMean {
			t.Fatalf("%s reducer utils inconsistent: mean %g max %g", s.Engine, s.ReduceUtilMean, s.ReduceUtilMax)
		}
	}
}

func TestConfigStringCanonical(t *testing.T) {
	got := Config{}.String()
	want := "algo=W-C n=8 s=4 r=4 m=200000 keys=20000 z=1.2 epoch=25000 stride=4096 svc=20µs win=512"
	if got != want {
		t.Fatalf("config string %q, want %q", got, want)
	}
	if s := (Config{Spin: true}).String(); s != want+" spin" {
		t.Fatalf("spin config string %q", s)
	}
	// Faults implies the TCP leg, and both marks land in the identity so
	// chaos baselines never gate clean runs (or vice versa).
	if s := (Config{Faults: true}).String(); s != want+" tcp faults" {
		t.Fatalf("faults config string %q", s)
	}
}

// TestRunFaultsLeg soaks the TCP leg under the chaos schedule: the leg
// must still drain every message while its fault ledger proves the
// recovery machinery actually ran.
func TestRunFaultsLeg(t *testing.T) {
	var rows []Row
	cfg := shortConfig(func(r Row) { rows = append(rows, r) })
	cfg.Faults = true
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var tcpFinal *Row
	for i := range rows {
		if rows[i].Engine == EngineTCP && rows[i].Final {
			tcpFinal = &rows[i]
		}
	}
	if tcpFinal == nil {
		t.Fatal("faults soak emitted no final TCP row")
	}
	if tcpFinal.Completed != 30_000 {
		t.Fatalf("TCP leg completed %d under faults, want 30000", tcpFinal.Completed)
	}
	if tcpFinal.Reconnects == 0 {
		t.Fatal("faults soak recorded no reconnects")
	}
	if tcpFinal.RetransmitFrames == 0 || tcpFinal.RetransmitBytes == 0 {
		t.Fatalf("faults soak recorded no retransmissions: frames=%d bytes=%d",
			tcpFinal.RetransmitFrames, tcpFinal.RetransmitBytes)
	}
	if tcpFinal.OutageSec <= 0 {
		t.Fatalf("faults soak recorded no outage time: %g", tcpFinal.OutageSec)
	}
	found := false
	for _, s := range rep.Summaries {
		if s.Engine == EngineTCP {
			found = true
			if s.Completed != 30_000 {
				t.Fatalf("TCP summary completed %d, want 30000", s.Completed)
			}
		}
	}
	if !found {
		t.Fatal("no TCP summary in faults soak report")
	}
}

func report(throughput map[string]float64) *Report {
	rep := &Report{Config: Config{}.withDefaults()}
	for _, e := range Engines {
		rep.Summaries = append(rep.Summaries, Summary{Engine: e, Throughput: throughput[e]})
	}
	return rep
}

func TestGate(t *testing.T) {
	cfg := Config{}.withDefaults()
	base := []Baseline{
		{Config: cfg.String(), Throughput: map[string]float64{EngineEventsim: 1000, EngineChannel: 500}},
		{Config: cfg.String(), Throughput: map[string]float64{EngineEventsim: 1200}},
		{Config: "algo=PoTC other", Throughput: map[string]float64{EngineEventsim: 9999}},
	}

	// Within tolerance of the trajectory best (1200, not 9999: the
	// mismatched config must be ignored).
	rep := report(map[string]float64{EngineEventsim: 1000, EngineChannel: 480, EngineRing: 1})
	if v := Gate(rep, base, 0.2); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
	// EngineRing has no baseline → never gated, even at 1 msg/s.

	// Below the floor.
	rep = report(map[string]float64{EngineEventsim: 700, EngineChannel: 480})
	v := Gate(rep, base, 0.2)
	if len(v) != 1 {
		t.Fatalf("violations = %v, want exactly one (eventsim)", v)
	}

	// No baseline matches the configuration at all → gate passes.
	rep.Config.Algorithm = "PoTC-variant"
	if v := Gate(rep, base, 0.2); v != nil {
		t.Fatalf("mismatched config should not gate: %v", v)
	}
}

func TestSummaryTableRoundTrip(t *testing.T) {
	rep := report(map[string]float64{EngineEventsim: 123.45, EngineChannel: 500, EngineRing: 90000})
	tab := SummaryTable(rep, map[string]string{"seed": "7"})
	if tab.Meta["config"] != rep.Config.String() || tab.Meta["seed"] != "7" {
		t.Fatalf("meta = %v", tab.Meta)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_soak_0.json")
	if err := tab.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	// A non-baseline artifact in the same directory must be skipped.
	if err := os.WriteFile(filepath.Join(dir, "BENCH_soak_bogus.json"), []byte(`{"title":"x","columns":["a"],"rows":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, src := range []string{path, dir} {
		bases, err := LoadBaselines(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if len(bases) != 1 {
			t.Fatalf("%s: %d baselines, want 1", src, len(bases))
		}
		if bases[0].Config != rep.Config.String() {
			t.Fatalf("config %q", bases[0].Config)
		}
		if got := bases[0].Throughput[EngineEventsim]; got != 123.45 {
			t.Fatalf("eventsim baseline throughput %g", got)
		}
		if got := bases[0].Throughput[EngineRing]; got != 90000 {
			t.Fatalf("ring baseline throughput %g", got)
		}
	}
}
