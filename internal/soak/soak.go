// Package soak drives long-running drifting-workload runs across every
// engine in the module — eventsim, the dspe channel plane, the dspe
// ring plane and (with Config.TCP) the dspe engine over the loopback
// TCP transport — while sampling each run's telemetry registry at a fixed
// wall-clock interval. It is the library behind cmd/slbsoak: the
// paper's cluster evaluation reports imbalance, throughput and latency
// CONTINUOUSLY over long skewed streams, and this harness is how the
// repo watches a live run instead of only end-of-run aggregates.
//
// A soak is a sequence of cycles; each cycle runs one leg per engine
// over a fresh workload.Drift stream (concept drift: the hot set
// rotates every epoch, stressing the partitioners' heavy-hitter
// tracking). While a leg runs, its registry is snapshotted every
// Interval and reduced to a Row — per-shard reducer utilization, queue
// depths (ring occupancy on the ring plane), routing rates, stalls —
// which streams to the configured sink as it happens. Each leg also
// emits a final drained row. Cycles repeat until Duration has elapsed
// and MinCycles cycles have completed, so a run is useful from
// seconds (CI smoke) to hours.
//
// The per-engine Summary rolls the whole soak up into the numbers the
// regression gate keys on; Gate compares a run against the accumulated
// trajectory of committed BENCH_soak artifacts (see Baselines), but
// only baselines recorded under the SAME configuration string — the
// run metadata carried in each artifact's "meta" object — are
// considered comparable.
package soak

import (
	"fmt"
	"strconv"
	"time"

	"slb/internal/core"
	"slb/internal/dspe"
	"slb/internal/eventsim"
	"slb/internal/stream"
	"slb/internal/telemetry"
	"slb/internal/transport"
	"slb/internal/workload"
)

// Engine names, matching the telemetry "engine" label each run
// publishes.
const (
	EngineEventsim = "eventsim"
	EngineChannel  = "dspe-channel"
	EngineRing     = "dspe-ring"
	EngineTCP      = "dspe-tcp"
)

// Engines lists every leg of one soak cycle, in execution order; the
// loopback TCP transport leg joins when Config.TCP is set.
var Engines = []string{EngineEventsim, EngineChannel, EngineRing}

// Config describes one soak run.
type Config struct {
	// Duration is the minimum wall-clock length of the soak; the
	// harness finishes the in-flight cycle after it elapses. 0 means
	// run exactly MinCycles cycles.
	Duration time.Duration
	// Interval is the telemetry sampling period within each engine
	// leg. 0 means 5s.
	Interval time.Duration
	// MinCycles floors the number of full engine cycles regardless of
	// Duration (each cycle emits at least one final row per engine).
	// 0 means 1.
	MinCycles int

	// Algorithm is the partitioner under soak (core.Names); "" means
	// W-C.
	Algorithm string
	// Workers, Sources and Shards shape every engine's topology.
	// Defaults: 8, 4, 4.
	Workers, Sources, Shards int
	// Messages is the stream length of each engine leg; 0 means
	// 200_000.
	Messages int64
	// Keys, Zipf, EpochLen and Stride parameterize the drifting
	// workload (workload.NewDrift). Defaults: 20_000 keys, z=1.2,
	// epoch Messages/8, stride 4096.
	Keys     int
	Zipf     float64
	EpochLen int64
	Stride   int
	// Seed seeds the workload and the partitioners; each cycle offsets
	// it so legs see fresh drift trajectories. 0 means 1.
	Seed uint64
	// ServiceTime is the dspe bolts' per-message cost (eventsim always
	// models 1 ms of simulated service). 0 means 20µs. Spin busy-waits
	// it instead of sleeping — faithful CPU saturation for long soaks
	// at the price of burning host CPU.
	ServiceTime time.Duration
	Spin        bool
	// AggWindow is the tumbling-window size of the two-phase
	// aggregation every leg runs; 0 means 512.
	AggWindow int64
	// TCP adds a fourth leg to every cycle: the dspe engine over the
	// loopback TCP transport (internal/transport framing and per-link
	// coalescing on every hop). It changes the configuration identity —
	// baselines recorded without the leg are not comparable.
	TCP bool
	// Faults wraps the TCP leg's transport in the deterministic chaos
	// schedule (frame drops plus periodic connection severs, seeded from
	// Seed+cycle), soaking the reconnect-and-resend machinery instead of
	// a clean wire. Implies TCP; changes the configuration identity.
	Faults bool

	// Emit receives every interval row as it is produced (single
	// goroutine, in order). nil discards rows.
	Emit func(Row)
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 5 * time.Second
	}
	if c.MinCycles <= 0 {
		c.MinCycles = 1
	}
	if c.Algorithm == "" {
		c.Algorithm = "W-C"
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Sources <= 0 {
		c.Sources = 4
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Messages <= 0 {
		c.Messages = 200_000
	}
	if c.Keys <= 0 {
		c.Keys = 20_000
	}
	if c.Zipf <= 0 {
		c.Zipf = 1.2
	}
	if c.EpochLen <= 0 {
		c.EpochLen = c.Messages / 8
		if c.EpochLen <= 0 {
			c.EpochLen = 1
		}
	}
	if c.Stride <= 0 {
		c.Stride = 4096
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ServiceTime <= 0 {
		c.ServiceTime = 20 * time.Microsecond
	}
	if c.AggWindow <= 0 {
		c.AggWindow = 512
	}
	if c.Faults {
		c.TCP = true
	}
	return c
}

// soakChaos is the fault schedule of a Faults soak's TCP leg: roughly
// one frame in 200 dropped and a sever every 4096 sender-side buffer
// writes — frequent enough that every leg rides through many
// reconnect-and-resend episodes, rare enough that throughput stays
// comparable across runs.
func soakChaos(seed uint64) *transport.ChaosConfig {
	return &transport.ChaosConfig{Seed: seed, DropOneIn: 200, SeverEvery: 4096}
}

// String renders the canonical configuration identity the regression
// gate keys baselines on: every knob that changes what the numbers
// mean, none that merely changes how long the soak runs.
func (c Config) String() string {
	c = c.withDefaults()
	s := fmt.Sprintf("algo=%s n=%d s=%d r=%d m=%d keys=%d z=%g epoch=%d stride=%d svc=%s win=%d",
		c.Algorithm, c.Workers, c.Sources, c.Shards, c.Messages, c.Keys,
		c.Zipf, c.EpochLen, c.Stride, c.ServiceTime, c.AggWindow)
	if c.Spin {
		s += " spin"
	}
	if c.TCP {
		s += " tcp"
	}
	if c.Faults {
		s += " faults"
	}
	return s
}

// engines returns the legs of one cycle under this configuration.
func (c Config) engines() []string {
	if c.TCP {
		return append(append([]string{}, Engines...), EngineTCP)
	}
	return Engines
}

// Row is one interval sample of a running engine leg, derived from a
// registry snapshot (and, for rates, its delta against the previous
// sample).
type Row struct {
	// T is seconds since the soak started (wall clock).
	T float64 `json:"t"`
	// Cycle and Engine identify the leg.
	Cycle  int    `json:"cycle"`
	Engine string `json:"engine"`
	Algo   string `json:"algo"`
	// Final marks the end-of-leg row, taken after the run drained.
	Final bool `json:"final"`
	// Completed is the leg's processed-message count so far.
	Completed int64 `json:"completed"`
	// RouteMsgs is the messages routed so far; RouteNsPerMsg the
	// cumulative mean routing cost (0 for eventsim, whose model does
	// not price routing time).
	RouteMsgs     int64   `json:"route_msgs"`
	RouteNsPerMsg float64 `json:"route_ns_per_msg,omitempty"`
	// QueueDepth sums the per-worker queue_depth gauges at sample
	// time: channel backlog on the channel plane, ring occupancy (in
	// tuples) on the ring plane, queued messages in eventsim.
	QueueDepth float64 `json:"queue_depth"`
	// ReduceUtil is each reducer shard's busy fraction over the
	// sampling interval (over the whole leg for the final row).
	// eventsim legs measure both numerator and denominator in
	// simulated time.
	ReduceUtil []float64 `json:"reduce_util"`
	// ReduceOpenWindows sums the per-shard open-window gauges.
	ReduceOpenWindows float64 `json:"reduce_open_windows"`
	// PublishStallNs is the interval's spout publish stall (ring plane
	// only).
	PublishStallNs int64 `json:"publish_stall_ns,omitempty"`
	// TxBytes, BytesPerMsg, DictHits and DictResets are the transport
	// wire ledger (TCP leg only): cumulative transmitted bytes, bytes
	// per wire message, and the frame codec's cumulative dictionary
	// hits and epoch resets across the leg's links.
	TxBytes     int64   `json:"tx_bytes,omitempty"`
	BytesPerMsg float64 `json:"bytes_per_msg,omitempty"`
	DictHits    int64   `json:"dict_hits,omitempty"`
	DictResets  int64   `json:"dict_resets,omitempty"`
	// Reconnects, RetransmitFrames, RetransmitBytes, DupMsgs and
	// OutageSec are the transport fault ledger (TCP leg only):
	// cumulative reconnect episodes, frames and bytes retransmitted
	// after severs or drops, duplicate messages discarded at the receive
	// edge, and total time links spent disconnected. All stay 0 on a
	// clean wire; under Config.Faults they are the soak's evidence that
	// the recovery machinery ran.
	Reconnects       int64   `json:"reconnects,omitempty"`
	RetransmitFrames int64   `json:"retransmit_frames,omitempty"`
	RetransmitBytes  int64   `json:"retransmit_bytes,omitempty"`
	DupMsgs          int64   `json:"dup_msgs,omitempty"`
	OutageSec        float64 `json:"outage_sec,omitempty"`
}

// Summary rolls one engine's legs up across the whole soak.
type Summary struct {
	Engine string `json:"engine"`
	Legs   int    `json:"legs"`
	// Completed is the total processed messages across legs;
	// ElapsedSec the total processing time (wall clock for the dspe
	// planes, simulated seconds for eventsim) and Throughput their
	// ratio — deterministic for eventsim, host-dependent for dspe.
	Completed  int64   `json:"completed"`
	ElapsedSec float64 `json:"elapsed_sec"`
	Throughput float64 `json:"throughput"`
	// RouteNsPerMsg is the cumulative mean routing cost (dspe legs).
	RouteNsPerMsg float64 `json:"route_ns_per_msg"`
	// ReduceUtilMean / ReduceUtilMax summarize the per-shard busy
	// fractions of the legs' final rows.
	ReduceUtilMean float64 `json:"reduce_util_mean"`
	ReduceUtilMax  float64 `json:"reduce_util_max"`
	// Rows is how many interval rows the engine emitted.
	Rows int `json:"rows"`
}

// Report is the outcome of one soak run.
type Report struct {
	Config    Config
	Cycles    int
	Rows      int
	Summaries []Summary
	// FinalSnapshots holds each engine's last leg's drained registry
	// snapshot, for export next to the BENCH artifacts.
	FinalSnapshots map[string]telemetry.Snapshot
}

// legResult carries one engine leg's outcome back to the sampler loop.
type legResult struct {
	completed int64
	err       error
}

// Run executes the soak and returns its report. Rows stream to
// cfg.Emit while the run progresses.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	rep := &Report{Config: cfg, FinalSnapshots: map[string]telemetry.Snapshot{}}
	engines := cfg.engines()
	acc := map[string]*Summary{}
	for _, e := range engines {
		acc[e] = &Summary{Engine: e}
	}

	for cycle := 0; ; cycle++ {
		for _, engine := range engines {
			if err := runLeg(cfg, engine, cycle, start, rep, acc[engine]); err != nil {
				return nil, fmt.Errorf("soak: cycle %d %s: %w", cycle, engine, err)
			}
		}
		rep.Cycles = cycle + 1
		if rep.Cycles >= cfg.MinCycles && time.Since(start) >= cfg.Duration {
			break
		}
	}

	for _, e := range engines {
		s := acc[e]
		if s.ElapsedSec > 0 {
			s.Throughput = float64(s.Completed) / s.ElapsedSec
		}
		if n := s.Legs * cfg.Shards; n > 0 {
			s.ReduceUtilMean /= float64(n)
		}
		rep.Summaries = append(rep.Summaries, *s)
		rep.Rows += s.Rows
	}
	return rep, nil
}

// runLeg runs one engine over a fresh drift stream, sampling its
// registry every cfg.Interval until the run drains.
func runLeg(cfg Config, engine string, cycle int, start time.Time, rep *Report, sum *Summary) error {
	reg := telemetry.NewRegistry()
	gen := workload.NewDrift(cfg.Zipf, cfg.Keys, cfg.Messages, cfg.EpochLen, cfg.Stride, cfg.Seed+uint64(cycle))
	legStart := time.Now()
	done := make(chan legResult, 1)
	go func() { done <- launch(cfg, engine, cycle, reg, gen) }()

	ticker := time.NewTicker(cfg.Interval)
	defer ticker.Stop()
	prev := sample{snap: reg.Snapshot(), wall: legStart}
	rows := 0
	for {
		select {
		case <-ticker.C:
			cur := sample{snap: reg.Snapshot(), wall: time.Now()}
			emit(cfg, rowFrom(cfg, engine, cycle, start, cur, prev, false))
			prev = cur
			rows++
		case res := <-done:
			if res.err != nil {
				return res.err
			}
			final := sample{snap: reg.Snapshot(), wall: time.Now()}
			// The final row covers the WHOLE leg: utilization over the
			// leg's elapsed time, totals rather than deltas.
			row := rowFrom(cfg, engine, cycle, start, final, sample{snap: telemetry.Snapshot{}, wall: legStart}, true)
			emit(cfg, row)
			rows++

			sum.Legs++
			sum.Rows += rows
			sum.Completed += res.completed
			sum.ElapsedSec += legElapsedSec(engine, final, legStart)
			sum.RouteNsPerMsg = cumulativeRouteNs(sum, final.snap)
			// ReduceUtilMean accumulates the per-shard sum here and is
			// normalized once, in Run, over Legs*Shards samples.
			for _, u := range row.ReduceUtil {
				sum.ReduceUtilMean += u
				if u > sum.ReduceUtilMax {
					sum.ReduceUtilMax = u
				}
			}
			rep.FinalSnapshots[engine] = final.snap
			return nil
		}
	}
}

// launch starts one engine run with its telemetry registry attached.
func launch(cfg Config, engine string, cycle int, reg *telemetry.Registry, gen stream.Generator) legResult {
	coreCfg := core.Config{Seed: cfg.Seed + uint64(cycle)}
	switch engine {
	case EngineEventsim:
		res, err := eventsim.Run(gen, eventsim.Config{
			Workers: cfg.Workers, Sources: cfg.Sources, Algorithm: cfg.Algorithm,
			Core: coreCfg, ServiceTime: 1.0,
			AggWindow: cfg.AggWindow, AggShards: cfg.Shards,
			Telemetry: reg,
		})
		return legResult{completed: res.Completed, err: err}
	case EngineChannel, EngineRing, EngineTCP:
		plane := dspe.DataplaneChannel
		tr := dspe.TransportDirect
		var chaos *transport.ChaosConfig
		if engine == EngineRing {
			plane = dspe.DataplaneRing
		}
		if engine == EngineTCP {
			tr = dspe.TransportTCP
			if cfg.Faults {
				chaos = soakChaos(cfg.Seed + uint64(cycle))
			}
		}
		res, err := dspe.Run(gen, dspe.Config{
			Workers: cfg.Workers, Sources: cfg.Sources, Algorithm: cfg.Algorithm,
			Core: coreCfg, ServiceTime: cfg.ServiceTime, Spin: cfg.Spin, Dataplane: plane,
			Transport: tr, Chaos: chaos,
			AggWindow: cfg.AggWindow, AggShards: cfg.Shards,
			Telemetry: reg,
		})
		return legResult{completed: res.Completed, err: err}
	}
	return legResult{err: fmt.Errorf("unknown engine %q", engine)}
}

// sample pairs a snapshot with the wall-clock instant it was taken.
type sample struct {
	snap telemetry.Snapshot
	wall time.Time
}

func emit(cfg Config, r Row) {
	if cfg.Emit != nil {
		cfg.Emit(r)
	}
}

// rowFrom reduces a snapshot (and its delta against prev) to one
// interval row.
func rowFrom(cfg Config, engine string, cycle int, start time.Time, cur, prev sample, final bool) Row {
	row := Row{
		T:      time.Since(start).Seconds(),
		Cycle:  cycle,
		Engine: engine,
		Algo:   cfg.Algorithm,
		Final:  final,
	}
	row.Completed = int64(sumByName(cur.snap, "bolt_msgs_total") + sumByName(cur.snap, "sim_completed_total"))
	row.RouteMsgs = int64(sumByName(cur.snap, "route_msgs_total"))
	if ns := sumByName(cur.snap, "route_ns_total"); ns > 0 && row.RouteMsgs > 0 {
		row.RouteNsPerMsg = ns / float64(row.RouteMsgs)
	}
	row.QueueDepth = sumByName(cur.snap, "queue_depth")
	row.ReduceOpenWindows = sumByName(cur.snap, "reduce_open_windows")
	row.PublishStallNs = int64(sumByName(cur.snap, "publish_stall_ns_total") - sumByName(prev.snap, "publish_stall_ns_total"))
	row.TxBytes = int64(sumByName(cur.snap, "transport_tx_bytes_total"))
	if msgs := sumByName(cur.snap, "transport_tx_msgs_total"); msgs > 0 {
		row.BytesPerMsg = float64(row.TxBytes) / msgs
	}
	row.DictHits = int64(sumByName(cur.snap, "transport_dict_hits_total"))
	row.DictResets = int64(sumByName(cur.snap, "transport_dict_resets_total"))
	row.Reconnects = int64(sumByName(cur.snap, "transport_reconnects_total"))
	row.RetransmitFrames = int64(sumByName(cur.snap, "transport_retransmit_frames_total"))
	row.RetransmitBytes = int64(sumByName(cur.snap, "transport_retransmit_bytes_total"))
	row.DupMsgs = int64(sumByName(cur.snap, "transport_dup_msgs_dropped_total"))
	row.OutageSec = sumByName(cur.snap, "transport_outage_seconds")

	// Per-shard utilization: busy-time delta over the interval's
	// denominator — wall time for the dspe planes, simulated time for
	// eventsim (both in ns, so the fraction is dimensionless).
	denom := float64(cur.wall.Sub(prev.wall).Nanoseconds())
	if engine == EngineEventsim {
		denom = sumByName(cur.snap, "sim_clock_ns") - sumByName(prev.snap, "sim_clock_ns")
	}
	row.ReduceUtil = make([]float64, cfg.Shards)
	for r := 0; r < cfg.Shards; r++ {
		busy := shardValue(cur.snap, "reduce_busy_ns_total", r) - shardValue(prev.snap, "reduce_busy_ns_total", r)
		if denom > 0 && busy > 0 {
			row.ReduceUtil[r] = busy / denom
		}
	}
	return row
}

// legElapsedSec is a leg's processing time in the engine's own clock:
// wall seconds for the dspe planes, simulated seconds for eventsim.
func legElapsedSec(engine string, final sample, legStart time.Time) float64 {
	if engine == EngineEventsim {
		return sumByName(final.snap, "sim_clock_ns") / 1e9
	}
	return final.wall.Sub(legStart).Seconds()
}

// cumulativeRouteNs folds one more leg's routing totals into the
// summary's cumulative ns/msg mean.
func cumulativeRouteNs(sum *Summary, snap telemetry.Snapshot) float64 {
	msgs := sumByName(snap, "route_msgs_total")
	ns := sumByName(snap, "route_ns_total")
	if msgs == 0 || ns == 0 {
		return sum.RouteNsPerMsg
	}
	// Weighted running mean across legs (legs have equal message
	// counts, so averaging the per-leg means is exact enough for the
	// gate's tolerance).
	if sum.RouteNsPerMsg == 0 {
		return ns / msgs
	}
	return (sum.RouteNsPerMsg*float64(sum.Legs-1) + ns/msgs) / float64(sum.Legs)
}

// sumByName totals every series of the snapshot with the given name.
func sumByName(snap telemetry.Snapshot, name string) float64 {
	var total float64
	for i := range snap.Metrics {
		if snap.Metrics[i].Name == name {
			total += snap.Metrics[i].Value
		}
	}
	return total
}

// shardValue returns the series' value for one reducer shard (0 when
// absent).
func shardValue(snap telemetry.Snapshot, name string, shard int) float64 {
	want := strconv.Itoa(shard)
	for i := range snap.Metrics {
		m := &snap.Metrics[i]
		if m.Name == name && m.Label("shard") == want {
			return m.Value
		}
	}
	return 0
}
