// Package asciichart renders small scatter/line charts as plain text,
// so the experiment CLIs can show the paper's log-scale imbalance
// curves directly in the terminal alongside the numeric tables.
package asciichart

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"slb/internal/texttab"
)

// glyphs assigns one mark per series, in order.
var glyphs = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Series is one named sequence of (x, y) points.
type Series struct {
	Name string
	X, Y []float64
}

// Chart accumulates series and renders them on a character grid.
type Chart struct {
	Title  string
	LogY   bool
	Width  int // plot-area columns; default 64
	Height int // plot-area rows; default 16
	series []Series
}

// New returns an empty chart.
func New(title string, logY bool) *Chart {
	return &Chart{Title: title, LogY: logY, Width: 64, Height: 16}
}

// Add appends a series; xs and ys must have equal length.
func (c *Chart) Add(name string, xs, ys []float64) {
	if len(xs) != len(ys) {
		panic("asciichart: series length mismatch")
	}
	c.series = append(c.series, Series{Name: name, X: xs, Y: ys})
}

// Render draws the chart. An empty chart renders as just the title.
func (c *Chart) Render() string {
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	pts := 0
	for _, s := range c.series {
		pts += len(s.X)
	}
	if pts == 0 {
		return b.String()
	}

	// Ranges. In log mode, non-positive y values clamp to the smallest
	// positive value present (divided by 10) so zero-imbalance points
	// still appear at the bottom instead of vanishing.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minPosY := math.Inf(1)
	for _, s := range c.series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			if s.Y[i] > 0 {
				minPosY = math.Min(minPosY, s.Y[i])
			}
		}
	}
	if math.IsInf(minPosY, 1) {
		minPosY = 1e-9
	}
	ty := func(y float64) float64 {
		if !c.LogY {
			return y
		}
		if y <= 0 {
			y = minPosY / 10
		}
		return math.Log10(y)
	}
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range c.series {
		for i := range s.Y {
			v := ty(s.Y[i])
			minY = math.Min(minY, v)
			maxY = math.Max(maxY, v)
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, c.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", c.Width))
	}
	for si, s := range c.series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			col := int((s.X[i] - minX) / (maxX - minX) * float64(c.Width-1))
			row := int((ty(s.Y[i]) - minY) / (maxY - minY) * float64(c.Height-1))
			grid[c.Height-1-row][col] = g
		}
	}

	// Y labels at top, middle, bottom.
	label := func(v float64) string {
		if c.LogY {
			return fmt.Sprintf("%8.0e", math.Pow(10, v))
		}
		return fmt.Sprintf("%8.3g", v)
	}
	for r := 0; r < c.Height; r++ {
		prefix := strings.Repeat(" ", 8)
		switch r {
		case 0:
			prefix = label(maxY)
		case c.Height / 2:
			prefix = label((maxY + minY) / 2)
		case c.Height - 1:
			prefix = label(minY)
		}
		fmt.Fprintf(&b, "%s |%s\n", prefix, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", c.Width))
	fmt.Fprintf(&b, "%s  %-10.4g%s%10.4g\n", strings.Repeat(" ", 8),
		minX, strings.Repeat(" ", maxInt(0, c.Width-20)), maxX)

	legend := make([]string, len(c.series))
	for i, s := range c.series {
		legend[i] = fmt.Sprintf("%c %s", glyphs[i%len(glyphs)], s.Name)
	}
	fmt.Fprintf(&b, "%s  %s\n", strings.Repeat(" ", 8), strings.Join(legend, "   "))
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// FromTable builds a chart from a texttab.Table whose first column is a
// numeric x-axis and whose remaining numeric columns become series.
// Columns with any non-numeric cell are skipped; if fewer than one
// series remains, an error is returned.
func FromTable(t *texttab.Table, logY bool) (*Chart, error) {
	if len(t.Rows) == 0 || len(t.Columns) < 2 {
		return nil, fmt.Errorf("asciichart: table %q not chartable", t.Title)
	}
	xs := make([]float64, len(t.Rows))
	for i, row := range t.Rows {
		v, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return nil, fmt.Errorf("asciichart: x column not numeric: %q", row[0])
		}
		xs[i] = v
	}
	c := New(t.Title, logY)
	for col := 1; col < len(t.Columns); col++ {
		ys := make([]float64, len(t.Rows))
		ok := true
		for i, row := range t.Rows {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil {
				ok = false
				break
			}
			ys[i] = v
		}
		if ok {
			c.Add(t.Columns[col], xs, ys)
		}
	}
	if len(c.series) == 0 {
		return nil, fmt.Errorf("asciichart: table %q has no numeric series", t.Title)
	}
	return c, nil
}
