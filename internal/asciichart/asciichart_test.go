package asciichart

import (
	"strings"
	"testing"

	"slb/internal/texttab"
)

func TestAddPanicsOnMismatch(t *testing.T) {
	c := New("t", false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Add("s", []float64{1, 2}, []float64{1})
}

func TestRenderEmpty(t *testing.T) {
	out := New("empty chart", false).Render()
	if !strings.Contains(out, "empty chart") {
		t.Fatalf("title missing: %q", out)
	}
	if strings.Count(out, "\n") > 2 {
		t.Fatalf("empty chart rendered a grid:\n%s", out)
	}
}

func TestRenderPlacesExtremes(t *testing.T) {
	c := New("lin", false)
	c.Add("a", []float64{0, 1, 2}, []float64{0, 5, 10})
	out := c.Render()
	lines := strings.Split(out, "\n")
	// First grid line (top) holds the max point, last grid line the min.
	top := lines[1]
	if !strings.Contains(top, "*") {
		t.Fatalf("max point not on top row:\n%s", out)
	}
	bottom := lines[c.Height]
	if !strings.Contains(bottom, "*") {
		t.Fatalf("min point not on bottom row:\n%s", out)
	}
	if !strings.Contains(out, "* a") {
		t.Fatalf("legend missing:\n%s", out)
	}
}

func TestRenderLogScaleHandlesZeros(t *testing.T) {
	c := New("log", true)
	c.Add("imb", []float64{1, 2, 3}, []float64{0, 1e-6, 1e-2})
	out := c.Render()
	if !strings.Contains(out, "e-0") {
		t.Fatalf("log labels missing:\n%s", out)
	}
}

func TestRenderMultipleSeriesDistinctGlyphs(t *testing.T) {
	c := New("multi", false)
	c.Add("one", []float64{0, 1}, []float64{1, 2})
	c.Add("two", []float64{0, 1}, []float64{3, 4})
	out := c.Render()
	if !strings.Contains(out, "* one") || !strings.Contains(out, "+ two") {
		t.Fatalf("legend glyphs wrong:\n%s", out)
	}
	if !strings.Contains(out, "+") {
		t.Fatalf("second series glyph not drawn:\n%s", out)
	}
}

func TestFromTable(t *testing.T) {
	tab := texttab.New("Fig X", "n", "PKG", "W-C", "note")
	tab.Add("5", "0.01", "0.001", "meh")
	tab.Add("50", "0.1", "0.001", "meh")
	c, err := FromTable(tab, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.series) != 2 {
		t.Fatalf("series = %d, want 2 (note column skipped)", len(c.series))
	}
	out := c.Render()
	if !strings.Contains(out, "* PKG") || !strings.Contains(out, "+ W-C") {
		t.Fatalf("series names missing:\n%s", out)
	}
}

func TestFromTableErrors(t *testing.T) {
	empty := texttab.New("e", "a", "b")
	if _, err := FromTable(empty, false); err == nil {
		t.Error("empty table accepted")
	}
	nonNumX := texttab.New("x", "algo", "v")
	nonNumX.Add("PKG", "1")
	if _, err := FromTable(nonNumX, false); err == nil {
		t.Error("non-numeric x accepted")
	}
	noSeries := texttab.New("s", "x", "label")
	noSeries.Add("1", "abc")
	if _, err := FromTable(noSeries, false); err == nil {
		t.Error("table without numeric series accepted")
	}
}

func TestConstantSeriesDoesNotDivideByZero(t *testing.T) {
	c := New("const", false)
	c.Add("flat", []float64{1, 1}, []float64{2, 2})
	out := c.Render()
	if out == "" || strings.Contains(out, "NaN") {
		t.Fatalf("constant series broke rendering:\n%s", out)
	}
}
