package texttab

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAddPanicsOnArityMismatch(t *testing.T) {
	tab := New("t", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tab.Add("only-one")
}

func TestFprintAlignment(t *testing.T) {
	tab := New("demo", "name", "value")
	tab.Add("x", "1")
	tab.Add("longer-name", "2")
	var b strings.Builder
	if err := tab.Fprint(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + rule + 2 rows
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[3], "x          ") {
		t.Fatalf("row not padded: %q", lines[3])
	}
}

func TestAddfFormats(t *testing.T) {
	tab := New("", "a", "b", "c", "d")
	tab.Addf("s", 0.000012, 42, int64(7))
	row := tab.Rows[0]
	if row[0] != "s" || row[1] != "1.20e-05" || row[2] != "42" || row[3] != "7" {
		t.Fatalf("Addf row = %v", row)
	}
}

func TestFormatFloat(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{0.5, "0.5000"},
		{123.456, "123.46"},
		{5e-7, "5.00e-07"},
		{12345.6, "12346"},
	} {
		if got := FormatFloat(tc.in); got != tc.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	tab := New("csv", "k", "v")
	tab.Add("plain", "1")
	tab.Add(`quote"inside`, "a,b")
	path := filepath.Join(dir, "sub", "out.csv")
	if err := tab.WriteCSV(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := "k,v\nplain,1\n\"quote\"\"inside\",\"a,b\"\n"
	if string(data) != want {
		t.Fatalf("csv = %q, want %q", data, want)
	}
}

// failWriter errors after a fixed number of bytes, exercising Fprint's
// error propagation.
type failWriter struct{ budget int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.budget <= 0 {
		return 0, os.ErrClosed
	}
	f.budget -= len(p)
	return len(p), nil
}

func TestFprintPropagatesWriterErrors(t *testing.T) {
	tab := New("t", "a", "b")
	for i := 0; i < 10; i++ {
		tab.Add("xxxx", "yyyy")
	}
	for _, budget := range []int{0, 5, 20} {
		if err := tab.Fprint(&failWriter{budget: budget}); err == nil {
			t.Errorf("budget %d: error not propagated", budget)
		}
	}
}

func TestAddfDefaultFormatting(t *testing.T) {
	tab := New("", "a", "b")
	tab.Addf(uint64(7), float32(0.5))
	if tab.Rows[0][0] != "7" || tab.Rows[0][1] != "0.5000" {
		t.Fatalf("Addf row = %v", tab.Rows[0])
	}
	type custom struct{ X int }
	tab2 := New("", "a")
	tab2.Addf(custom{X: 3})
	if tab2.Rows[0][0] != "{3}" {
		t.Fatalf("fallback formatting = %q", tab2.Rows[0][0])
	}
}

func TestWriteCSVBadDir(t *testing.T) {
	tab := New("", "a")
	tab.Add("1")
	if err := tab.WriteCSV("/proc/nonexistent/x/y.csv"); err == nil {
		t.Fatal("WriteCSV into unwritable path should fail")
	}
}

func TestFind(t *testing.T) {
	tab := New("", "algo", "n", "imb")
	tab.Add("PKG", "50", "0.1")
	tab.Add("W-C", "50", "0.001")
	row := tab.Find(map[int]string{0: "W-C", 1: "50"})
	if row == nil || row[2] != "0.001" {
		t.Fatalf("Find returned %v", row)
	}
	if tab.Find(map[int]string{0: "nope"}) != nil {
		t.Fatal("Find matched nothing")
	}
}

func TestWriteJSON(t *testing.T) {
	tab := New("perf \"quoted\"", "n", "ns/msg")
	tab.Add("16", "59.3")
	tab.Add("4096", "a,b\nc\t")
	path := filepath.Join(t.TempDir(), "sub", "BENCH_x_0.json")
	if err := tab.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v\n%s", err, data)
	}
	if got.Title != tab.Title {
		t.Fatalf("title = %q, want %q", got.Title, tab.Title)
	}
	if len(got.Columns) != 2 || got.Columns[1] != "ns/msg" {
		t.Fatalf("columns = %v", got.Columns)
	}
	if len(got.Rows) != 2 || got.Rows[1][1] != "a,b\nc\t" {
		t.Fatalf("rows = %v", got.Rows)
	}
}

func TestWriteJSONMeta(t *testing.T) {
	dir := t.TempDir()
	tab := New("Meta", "a")
	tab.Add("1")

	// Without metadata the "meta" field is omitted entirely, keeping
	// pre-existing BENCH artifacts byte-stable.
	bare := filepath.Join(dir, "bare.json")
	if err := tab.WriteJSON(bare); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(bare)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "{\n  \"title\": \"Meta\",\n  \"columns\": [\n    \"a\"\n  ],\n  \"rows\": [\n    [\n      \"1\"\n    ]\n  ]\n}\n" {
		t.Fatalf("bare JSON changed:\n%s", raw)
	}

	tab.Meta = map[string]string{"seed": "7", "scale": "quick"}
	withMeta := filepath.Join(dir, "meta.json")
	if err := tab.WriteJSON(withMeta); err != nil {
		t.Fatal(err)
	}
	raw, err = os.ReadFile(withMeta)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Meta map[string]string `json:"meta"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Meta["seed"] != "7" || doc.Meta["scale"] != "quick" {
		t.Fatalf("meta round-trip wrong: %v", doc.Meta)
	}
}
