// Package texttab renders small result tables as aligned text and CSV.
// The experiment harness emits every figure and table of the paper
// through this package, so outputs are uniform and machine-readable.
package texttab

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Table is an ordered grid of string cells with a header. Meta is
// free-form run metadata (configuration, seed, timestamp) carried into
// the JSON artifact so downstream consumers can key on how the numbers
// were produced, not just on the file name; it does not affect the
// text or CSV renderings.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Meta    map[string]string
}

// New returns an empty table with the given title and column header.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends one row; the cell count must match the header.
func (t *Table) Add(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("texttab: row has %d cells, header has %d", len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// Addf appends one row of formatted values: strings pass through, floats
// are rendered compactly, ints in full.
func (t *Table) Addf(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		cells[i] = formatCell(v)
	}
	t.Add(cells...)
}

func formatCell(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case float64:
		return FormatFloat(x)
	case float32:
		return FormatFloat(float64(x))
	case int:
		return strconv.Itoa(x)
	case int64:
		return strconv.FormatInt(x, 10)
	case uint64:
		return strconv.FormatUint(x, 10)
	default:
		return fmt.Sprint(v)
	}
}

// FormatFloat renders a float compactly: scientific notation for very
// small magnitudes (imbalances), fixed point otherwise.
func FormatFloat(f float64) string {
	abs := f
	if abs < 0 {
		abs = -abs
	}
	switch {
	case f == 0:
		return "0"
	case abs < 1e-3:
		return strconv.FormatFloat(f, 'e', 2, 64)
	case abs < 10:
		return strconv.FormatFloat(f, 'f', 4, 64)
	case abs < 1000:
		return strconv.FormatFloat(f, 'f', 2, 64)
	default:
		return strconv.FormatFloat(f, 'f', 0, 64)
	}
}

// Fprint writes the table as aligned text.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := line(rule); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// WriteCSV writes the table (header + rows) to path, creating parent
// directories as needed.
func (t *Table) WriteCSV(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvEscape(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// WriteJSON writes the table to path as a single JSON object
// {"title", "meta", "columns", "rows"} with every cell a string,
// creating parent directories as needed. This is the machine-readable
// artifact format the CI perf trajectory accumulates (BENCH_*.json):
// stable field order (map keys marshal sorted), indented, diffable
// across commits. "meta" is omitted when the table carries none.
func (t *Table) WriteJSON(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	rows := t.Rows
	if rows == nil {
		rows = [][]string{}
	}
	data, err := json.MarshalIndent(struct {
		Title   string            `json:"title"`
		Meta    map[string]string `json:"meta,omitempty"`
		Columns []string          `json:"columns"`
		Rows    [][]string        `json:"rows"`
	}{t.Title, t.Meta, t.Columns, rows}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Find returns the first row whose cells at the given column indices
// equal the given values, or nil. A small query helper for tests.
func (t *Table) Find(match map[int]string) []string {
	for _, row := range t.Rows {
		ok := true
		for i, v := range match {
			if i >= len(row) || row[i] != v {
				ok = false
				break
			}
		}
		if ok {
			return row
		}
	}
	return nil
}
