package experiments

import (
	"fmt"
	"strconv"

	"slb/internal/analysis"
	"slb/internal/core"
	"slb/internal/simulator"
	"slb/internal/texttab"
	"slb/internal/workload"
)

// thetaSweep is the threshold ladder of Figure 7: 2/n halved down to
// 1/(8n), as factors of 1/n.
var thetaFactors = []struct {
	label  string
	factor float64 // θ = factor / n
}{
	{"θ=2/n", 2},
	{"θ=1/n", 1},
	{"θ=1/2n", 0.5},
	{"θ=1/4n", 0.25},
	{"θ=1/8n", 0.125},
}

// Fig7 reproduces Figure 7: imbalance vs skew for W-C (top) and RR
// (bottom) across the threshold ladder, for each worker count. Paper
// shape: W-C reaches ideal balance for any θ ≤ 1/n at every scale; RR
// degrades at scale even under modest skew.
func Fig7(sc Scale) ([]*texttab.Table, error) {
	var tables []*texttab.Table
	for _, algo := range []string{"W-C", "RR"} {
		cols := []string{"n", "z"}
		for _, tf := range thetaFactors {
			cols = append(cols, tf.label)
		}
		t := texttab.New(fmt.Sprintf("Fig 7 (%s): imbalance vs skew per threshold (|K|=1e4)", algo), cols...)
		for _, n := range sc.gridWorkers() {
			for _, z := range sc.skews() {
				row := []string{strconv.Itoa(n), fmtZ(z)}
				for _, tf := range thetaFactors {
					cfg := simCfg(n)
					cfg.Theta = tf.factor / float64(n)
					res, err := simulator.Run(sc.zfGen(z, ZFKeys), algo, cfg,
						simulator.Options{Sources: Sources})
					if err != nil {
						return nil, err
					}
					row = append(row, fmtImb(res.Imbalance))
				}
				t.Add(row...)
			}
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig8 reproduces Figure 8: the per-worker load split into head and tail
// for PKG, W-C and RR at n = 5, z = 2.0, θ = 1/(8n). The head is defined
// on the true distribution (ground truth), independently of the
// algorithms' online estimates; the ideal even share is 1/n = 20%.
func Fig8(sc Scale) ([]*texttab.Table, error) {
	const n = 5
	const z = 2.0
	theta := 1.0 / (8 * float64(n))
	probs := workload.ZipfProbs(z, ZFKeys)
	headCard := analysis.HeadCardinality(probs, theta)
	headSet := make(map[string]bool, headCard)
	for r := 0; r < headCard; r++ {
		headSet["k"+strconv.Itoa(r)] = true
	}

	t := texttab.New(fmt.Sprintf(
		"Fig 8: per-worker load split, n=5, z=2.0, θ=1/8n (|H|=%d, ideal=20%%)", headCard),
		"Algorithm", "Worker", "Head(%)", "Tail(%)", "Total(%)")
	for _, algo := range []string{"PKG", "W-C", "RR"} {
		cfg := simCfg(n)
		cfg.Theta = theta
		res, err := simulator.Run(sc.zfGen(z, ZFKeys), algo, cfg, simulator.Options{
			Sources: Sources,
			HeadKey: func(k string) bool { return headSet[k] },
		})
		if err != nil {
			return nil, err
		}
		for w := 0; w < n; w++ {
			total := float64(res.Messages)
			t.Add(algo, strconv.Itoa(w+1),
				fmt.Sprintf("%.2f", 100*float64(res.HeadLoads[w])/total),
				fmt.Sprintf("%.2f", 100*float64(res.TailLoads[w])/total),
				fmt.Sprintf("%.2f", 100*float64(res.Loads[w])/total))
		}
	}
	return []*texttab.Table{t}, nil
}

// Fig9 reproduces Figure 9: the d computed by D-Choices versus the
// minimal d that empirically matches W-Choices' imbalance (found by
// sweeping Greedy-d with forced d). Paper shape: D-C sits slightly above
// the empirical minimum everywhere.
func Fig9(sc Scale) ([]*texttab.Table, error) {
	t := texttab.New("Fig 9: D-C's d vs empirical minimal d (|K|=1e4, ε=1e-4)",
		"n", "z", "d(D-C)", "d(min)", "d/n(D-C)", "d/n(min)", "I(W-C)")
	ns := []int{50, 100}
	zs := sc.skews()
	if sc == Quick {
		ns = []int{50}
		zs = []float64{1.2, 2.0}
	}
	for _, n := range ns {
		for _, z := range zs {
			wc, err := runSim(sc.zfGen(z, ZFKeys), "W-C", n, simulator.Options{})
			if err != nil {
				return nil, err
			}
			dc, err := runSim(sc.zfGen(z, ZFKeys), "D-C", n, simulator.Options{})
			if err != nil {
				return nil, err
			}
			dDC := dc.FinalD
			if dDC < 2 {
				dDC = 2
			}
			// Match target: W-C's imbalance with the paper's own slack floor
			// of s·ε (each source solves independently).
			target := wc.Imbalance
			if floor := Sources * Epsilon; target < floor {
				target = floor
			}
			dMin := minimalEmpiricalD(sc, z, n, target)
			t.Add(strconv.Itoa(n), fmtZ(z), strconv.Itoa(dDC), strconv.Itoa(dMin),
				fmt.Sprintf("%.3f", float64(dDC)/float64(n)),
				fmt.Sprintf("%.3f", float64(dMin)/float64(n)),
				fmtImb(wc.Imbalance))
		}
	}
	return []*texttab.Table{t}, nil
}

// minimalEmpiricalD binary-searches the smallest forced d whose Greedy-d
// imbalance meets the target. Imbalance is (noisily) non-increasing in
// d, so a bracketing binary search with a final verification suffices —
// running all d ∈ [2, n] at full scale, as the paper did offline, is
// two orders of magnitude slower for the same answer.
func minimalEmpiricalD(sc Scale, z float64, n int, target float64) int {
	measure := func(d int) float64 {
		parts := make([]core.Partitioner, Sources)
		for i := range parts {
			parts[i] = core.NewForcedD(simCfg(n), d)
		}
		res := simulator.RunPartitioners(sc.zfGen(z, ZFKeys),
			fmt.Sprintf("Greedy-%d", d), parts, simulator.Options{})
		return res.Imbalance
	}
	lo, hi := 2, n
	if measure(lo) <= target {
		return lo
	}
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if measure(mid) <= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}
