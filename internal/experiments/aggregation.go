package experiments

import (
	"fmt"

	"slb/internal/aggregation"
	"slb/internal/core"
	"slb/internal/dspe"
	"slb/internal/eventsim"
	"slb/internal/texttab"
	"slb/internal/workload"
)

// Aggregation-overhead experiment parameters. The paper's evaluation
// measures only the balance side of key splitting; its Section II
// discussion (and the PKG paper's analysis) prices the other side — the
// aggregation phase whose traffic and memory grow with the per-key
// replication factor. This experiment measures that side end to end on
// both engines: n=16 workers, s=8 sources, z=1.4 (skewed enough that
// D-C/W-C split the head, tame enough that D-C stays below W-C's d=n).
const (
	aggWorkers = 16
	aggSources = 8
	aggSkew    = 1.4
)

// aggMessages is m for the aggregation sweep at each scale.
func (s Scale) aggMessages() int64 {
	switch s {
	case Full:
		return 1_000_000
	case Default:
		return 200_000
	default:
		return 30_000
	}
}

// aggWindowDivisors sweep the tumbling window size as fractions of the
// stream: m/50 (many small windows), m/10, m/4 (few large windows).
// Larger windows amortize replication better per message — a key that
// recurs within the window costs one partial either way — so the
// messages-per-window column grows sublinearly for KG and superlinearly
// in replication for W-C.
var aggWindowDivisors = []int64{50, 10, 4}

// aggFlushCosts sweeps the per-partial flush cost (ms, against the 1 ms
// service time) at the smallest window: the knob that prices the
// aggregation phase. The reducer's merge cost follows it (AggFlushCost/4
// by default), so the sweep walks the reducer station from negligible
// to past saturation.
var aggFlushCosts = []float64{0.1, 0.5, 2.0}

// AggregationOverhead tabulates the cost of the two-phase windowed
// aggregation for KG, PKG, D-C, W-C and SG across three window sizes:
// throughput with aggregation on, the throughput delta vs the same
// topology without aggregation, aggregation messages per window, the
// measured state replication factor (distinct (window, key, worker)
// triples per (window, key) — exactly 1 for KG), the reducer's
// peak memory in live entries, and the reducer's utilization as a
// service station. Three tables: the deterministic discrete-event
// engine (host-independent numbers), the goroutine runtime (wall
// clock), and an AggFlushCost sweep on the discrete-event engine that
// maps the operating region where the balance-friendly schemes' extra
// partials cost more than their balance gains: as flush/merge cost
// grows, the reducer saturates for the high-replication schemes first
// (W-C, then D-C) and their throughput advantage over KG inverts.
// Qualitative ordering, both engines: KG pays zero replication
// overhead, PKG ≈ 2 choices' worth, D-C more, W-C the most; SG
// replicates every key everywhere it lands. Note that the reducer's
// FINAL state dedupes to distinct (window, key) regardless of
// algorithm — replication is paid in traffic (msgs/window), merge work
// and reducer-station occupancy, and in worker-side partial state, not
// in reducer cardinality.
func AggregationOverhead(sc Scale) ([]*texttab.Table, error) {
	m := sc.aggMessages()
	cols := []string{"window", "algo", "events/s", "Δthr%", "msgs/window", "replication", "reducer-peak", "late", "red-util"}

	evt := texttab.New(fmt.Sprintf(
		"Aggregation overhead (eventsim, deterministic): n=%d, s=%d, z=%.1f, m=%d",
		aggWorkers, aggSources, aggSkew, m), cols...)
	// Per-algorithm baseline throughput without aggregation (window-
	// independent, run once).
	evtRun := func(algo string, win int64, flushCost float64) (eventsim.Result, error) {
		gen := workload.NewZipf(aggSkew, ZFKeys, m, Seed)
		return eventsim.Run(gen, eventsim.Config{
			Workers:      aggWorkers,
			Sources:      aggSources,
			Algorithm:    algo,
			Core:         core.Config{Seed: Seed, Epsilon: Epsilon},
			ServiceTime:  1.0,
			Window:       100,
			Messages:     m,
			AggWindow:    win,
			AggFlushCost: flushCost,
			MeasureAfter: m / 5,
		})
	}
	evtBase := make(map[string]float64)
	for _, algo := range clusterAlgos {
		res, err := evtRun(algo, 0, 0)
		if err != nil {
			return nil, err
		}
		evtBase[algo] = res.Throughput
	}
	for _, div := range aggWindowDivisors {
		win := m / div
		for _, algo := range clusterAlgos {
			res, err := evtRun(algo, win, 0)
			if err != nil {
				return nil, err
			}
			evt.Add(aggRow(win, algo, res.Throughput, evtBase[algo], res.Agg, res.AggReplication, res.ReducerUtil)...)
		}
	}

	live := texttab.New(fmt.Sprintf(
		"Aggregation overhead (dspe goroutine runtime, wall clock): n=%d, s=%d, z=%.1f, m=%d",
		aggWorkers, aggSources, aggSkew, m), cols...)
	liveRun := func(algo string, win int64) (dspe.Result, error) {
		gen := workload.NewZipf(aggSkew, ZFKeys, m, Seed)
		return dspe.Run(gen, dspe.Config{
			Workers:   aggWorkers,
			Sources:   aggSources,
			Algorithm: algo,
			Core:      core.Config{Seed: Seed, Epsilon: Epsilon},
			// No artificial service delay: wall-clock throughput here is
			// engine-bound, so the flush work itself is the visible cost.
			ServiceTime: 0,
			Window:      64,
			QueueLen:    128,
			AggWindow:   win,
		})
	}
	liveBase := make(map[string]float64)
	for _, algo := range clusterAlgos {
		res, err := liveRun(algo, 0)
		if err != nil {
			return nil, err
		}
		liveBase[algo] = res.Throughput
	}
	for _, div := range aggWindowDivisors {
		win := m / div
		for _, algo := range clusterAlgos {
			res, err := liveRun(algo, win)
			if err != nil {
				return nil, err
			}
			live.Add(aggRow(win, algo, res.Throughput, liveBase[algo], res.Agg, res.AggReplication, res.AggReducerUtil)...)
		}
	}

	// Flush-cost sweep at the smallest window (the partial-heaviest
	// regime): where does the aggregation phase eat the balance gain?
	sweepWin := m / aggWindowDivisors[0]
	sweep := texttab.New(fmt.Sprintf(
		"AggFlushCost sweep (eventsim): n=%d, s=%d, z=%.1f, m=%d, window=%d, merge=flush/4",
		aggWorkers, aggSources, aggSkew, m, sweepWin),
		"flush-ms", "algo", "events/s", "Δthr%", "replication", "red-util", "red-peakq")
	for _, fc := range aggFlushCosts {
		for _, algo := range clusterAlgos {
			res, err := evtRun(algo, sweepWin, fc)
			if err != nil {
				return nil, err
			}
			delta := 0.0
			if base := evtBase[algo]; base > 0 {
				delta = 100 * (1 - res.Throughput/base)
			}
			sweep.Add(
				fmt.Sprintf("%.2f", fc),
				algo,
				fmt.Sprintf("%.0f", res.Throughput),
				fmt.Sprintf("%.1f", delta),
				fmt.Sprintf("%.4f", res.AggReplication),
				fmt.Sprintf("%.3f", res.ReducerUtil),
				fmt.Sprintf("%d", res.ReducerPeakQueue),
			)
		}
	}
	return []*texttab.Table{evt, live, sweep}, nil
}

// aggRow renders one window-sweep row.
func aggRow(win int64, algo string, thr, baseThr float64, st aggregation.ReducerStats, repl, util float64) []string {
	delta := 0.0
	if baseThr > 0 {
		delta = 100 * (1 - thr/baseThr)
	}
	perWindow := 0.0
	if st.WindowsClosed > 0 {
		perWindow = float64(st.Partials) / float64(st.WindowsClosed)
	}
	return []string{
		fmt.Sprintf("%d", win),
		algo,
		fmt.Sprintf("%.0f", thr),
		fmt.Sprintf("%.1f", delta),
		fmt.Sprintf("%.1f", perWindow),
		fmt.Sprintf("%.4f", repl),
		fmt.Sprintf("%d", st.PeakEntries),
		fmt.Sprintf("%d", st.Late),
		fmt.Sprintf("%.3f", util),
	}
}
