package experiments

import (
	"fmt"
	"time"

	"slb/internal/aggregation"
	"slb/internal/core"
	"slb/internal/dspe"
	"slb/internal/eventsim"
	"slb/internal/texttab"
	"slb/internal/workload"
)

// Aggregation-overhead experiment parameters. The paper's evaluation
// measures only the balance side of key splitting; its Section II
// discussion (and the PKG paper's analysis) prices the other side — the
// aggregation phase whose traffic and memory grow with the per-key
// replication factor. This experiment measures that side end to end on
// both engines: n=16 workers, s=8 sources, z=1.4 (skewed enough that
// D-C/W-C split the head, tame enough that D-C stays below W-C's d=n).
const (
	aggWorkers = 16
	aggSources = 8
	aggSkew    = 1.4
)

// aggMessages is m for the aggregation sweep at each scale.
func (s Scale) aggMessages() int64 {
	switch s {
	case Full:
		return 1_000_000
	case Default:
		return 200_000
	default:
		return 30_000
	}
}

// aggWindowDivisors sweep the tumbling window size as fractions of the
// stream: m/50 (many small windows), m/10, m/4 (few large windows).
// Larger windows amortize replication better per message — a key that
// recurs within the window costs one partial either way — so the
// messages-per-window column grows sublinearly for KG and superlinearly
// in replication for W-C.
var aggWindowDivisors = []int64{50, 10, 4}

// aggFlushCosts sweeps the per-partial flush cost (ms, against the 1 ms
// service time) at the smallest window: the knob that prices the
// aggregation phase. The reducer's merge cost follows it (AggFlushCost/4
// by default), so the sweep walks the reducer station from negligible
// to past saturation.
var aggFlushCosts = []float64{0.1, 0.5, 2.0}

// aggShardCounts sweeps R, the reduce stage's shard count, at the
// saturating flush cost: the knob that moves the reducer saturation
// point (stage capacity = R/AggMergeCost partials per ms).
var aggShardCounts = []int{1, 2, 4, 8}

// aggSaturatingFlush is the flush cost (ms) at which PR 3 found the
// single reducer station saturated for W-Choices (util ≈ 1, throughput
// collapsed); the R sweep runs there.
const aggSaturatingFlush = 2.0

// aggFreeMerge is the merge cost (ms) of the reducer-UNCONSTRAINED
// baseline the R sweep's recovery column is measured against: low
// enough that the station never binds, but not ≈ 0 — the closed-form
// station queue is sized in time (AggQueueLen × AggMergeCost), so a
// vanishing merge cost would model a zero-capacity queue instead of a
// free one.
const aggFreeMerge = 0.1

// AggregationOverhead tabulates the cost of the two-phase windowed
// aggregation for KG, PKG, D-C, W-C and SG across three window sizes:
// throughput with aggregation on, the throughput delta vs the same
// topology without aggregation, aggregation messages per window, the
// measured state replication factor (distinct (window, key, worker)
// triples per (window, key) — exactly 1 for KG), the reducer's
// peak memory in live entries, and the reducer's utilization as a
// service station. Five tables: the deterministic discrete-event
// engine (host-independent numbers), the goroutine runtime (wall
// clock), an AggFlushCost sweep on the discrete-event engine that
// maps the operating region where the balance-friendly schemes' extra
// partials cost more than their balance gains (as flush/merge cost
// grows, the reducer saturates for the high-replication schemes first
// — W-C, then D-C — and their throughput advantage over KG inverts),
// and two AggShards sweeps (eventsim and dspe) at the saturating flush
// cost showing the reducer saturation point move with R: sharding the
// reduce stage by key digest recovers the throughput the saturated
// station was costing, while the worker-side flush bill — paid
// identically at every R — remains.
// Qualitative ordering, both engines: KG pays zero replication
// overhead, PKG ≈ 2 choices' worth, D-C more, W-C the most; SG
// replicates every key everywhere it lands. Note that the reducer's
// FINAL state dedupes to distinct (window, key) regardless of
// algorithm — replication is paid in traffic (msgs/window), merge work
// and reducer-station occupancy, and in worker-side partial state, not
// in reducer cardinality.
func AggregationOverhead(sc Scale) ([]*texttab.Table, error) {
	m := sc.aggMessages()
	cols := []string{"window", "algo", "events/s", "Δthr%", "msgs/window", "replication", "reducer-peak", "late", "red-util"}

	evt := texttab.New(fmt.Sprintf(
		"Aggregation overhead (eventsim, deterministic): n=%d, s=%d, z=%.1f, m=%d",
		aggWorkers, aggSources, aggSkew, m), cols...)
	// Per-algorithm baseline throughput without aggregation (window-
	// independent, run once).
	evtRun := func(algo string, win int64, flushCost float64) (eventsim.Result, error) {
		return evtRunSharded(m, algo, win, flushCost, 0, 1)
	}
	evtBase := make(map[string]float64)
	for _, algo := range clusterAlgos {
		res, err := evtRun(algo, 0, 0)
		if err != nil {
			return nil, err
		}
		evtBase[algo] = res.Throughput
	}
	for _, div := range aggWindowDivisors {
		win := m / div
		for _, algo := range clusterAlgos {
			res, err := evtRun(algo, win, 0)
			if err != nil {
				return nil, err
			}
			evt.Add(aggRow(win, algo, res.Throughput, evtBase[algo], res.Agg, res.AggReplication, res.ReducerUtil)...)
		}
	}

	live := texttab.New(fmt.Sprintf(
		"Aggregation overhead (dspe goroutine runtime, wall clock): n=%d, s=%d, z=%.1f, m=%d",
		aggWorkers, aggSources, aggSkew, m), cols...)
	liveRun := func(algo string, win int64) (dspe.Result, error) {
		gen := workload.NewZipf(aggSkew, ZFKeys, m, Seed)
		return dspe.Run(gen, dspe.Config{
			Workers:   aggWorkers,
			Sources:   aggSources,
			Algorithm: algo,
			Core:      core.Config{Seed: Seed, Epsilon: Epsilon},
			// No artificial service delay: wall-clock throughput here is
			// engine-bound, so the flush work itself is the visible cost.
			ServiceTime: 0,
			Window:      64,
			QueueLen:    128,
			AggWindow:   win,
		})
	}
	liveBase := make(map[string]float64)
	for _, algo := range clusterAlgos {
		res, err := liveRun(algo, 0)
		if err != nil {
			return nil, err
		}
		liveBase[algo] = res.Throughput
	}
	for _, div := range aggWindowDivisors {
		win := m / div
		for _, algo := range clusterAlgos {
			res, err := liveRun(algo, win)
			if err != nil {
				return nil, err
			}
			live.Add(aggRow(win, algo, res.Throughput, liveBase[algo], res.Agg, res.AggReplication, res.AggReducerUtil)...)
		}
	}

	// Flush-cost sweep at the smallest window (the partial-heaviest
	// regime): where does the aggregation phase eat the balance gain?
	sweepWin := m / aggWindowDivisors[0]
	sweep := texttab.New(fmt.Sprintf(
		"AggFlushCost sweep (eventsim): n=%d, s=%d, z=%.1f, m=%d, window=%d, merge=flush/4",
		aggWorkers, aggSources, aggSkew, m, sweepWin),
		"flush-ms", "algo", "events/s", "Δthr%", "replication", "red-util", "red-peakq")
	for _, fc := range aggFlushCosts {
		for _, algo := range clusterAlgos {
			res, err := evtRun(algo, sweepWin, fc)
			if err != nil {
				return nil, err
			}
			delta := 0.0
			if base := evtBase[algo]; base > 0 {
				delta = 100 * (1 - res.Throughput/base)
			}
			sweep.Add(
				fmt.Sprintf("%.2f", fc),
				algo,
				fmt.Sprintf("%.0f", res.Throughput),
				fmt.Sprintf("%.1f", delta),
				fmt.Sprintf("%.4f", res.AggReplication),
				fmt.Sprintf("%.3f", res.ReducerUtil),
				fmt.Sprintf("%d", res.ReducerPeakQueue),
			)
		}
	}

	rsweepEvt, err := shardSweepEventsim(m, sweepWin, evtBase)
	if err != nil {
		return nil, err
	}
	rsweepLive, err := shardSweepLive(m)
	if err != nil {
		return nil, err
	}
	return []*texttab.Table{evt, live, sweep, rsweepEvt, rsweepLive}, nil
}

// evtRunSharded runs the discrete-event engine at the experiment's
// fixed deployment with the given aggregation knobs (mergeCost 0 means
// the engine default, AggFlushCost/4).
func evtRunSharded(m int64, algo string, win int64, flushCost, mergeCost float64, shards int) (eventsim.Result, error) {
	gen := workload.NewZipf(aggSkew, ZFKeys, m, Seed)
	return eventsim.Run(gen, eventsim.Config{
		Workers:      aggWorkers,
		Sources:      aggSources,
		Algorithm:    algo,
		Core:         core.Config{Seed: Seed, Epsilon: Epsilon},
		ServiceTime:  1.0,
		Window:       100,
		Messages:     m,
		AggWindow:    win,
		AggFlushCost: flushCost,
		AggMergeCost: mergeCost,
		AggShards:    shards,
		MeasureAfter: m / 5,
	})
}

// shardSweepEventsim sweeps the reduce stage's shard count R at the
// saturating flush cost on the deterministic engine. The sat-recov%
// column is the fraction of the REDUCER-SATURATION loss R recovers:
// (thr(R) − thr(1)) / (thrFree − thr(1)), where thrFree is the same
// run with an unconstrained reduce stage (merge = aggFreeMerge). The
// worker-side AggFlushCost bill is paid identically at every R — it is
// the splitting scheme's own cost, not the reducer's — so it is
// excluded from what sharding is asked to recover; the Δthr% column
// still shows the full loss against the no-aggregation baseline.
func shardSweepEventsim(m, win int64, base map[string]float64) (*texttab.Table, error) {
	tab := texttab.New(fmt.Sprintf(
		"AggShards sweep (eventsim): flush=%.1fms (saturating), window=%d, n=%d, s=%d, z=%.1f, m=%d; recovery vs reducer-free (merge=%.1fms)",
		aggSaturatingFlush, win, aggWorkers, aggSources, aggSkew, m, aggFreeMerge),
		"R", "algo", "events/s", "Δthr%", "sat-recov%", "red-util", "red-util-mean", "red-peakq")
	algos := []string{"KG", "D-C", "W-C"}
	for _, algo := range algos {
		free, err := evtRunSharded(m, algo, win, aggSaturatingFlush, aggFreeMerge, 1)
		if err != nil {
			return nil, err
		}
		var thr1 float64
		for _, r := range aggShardCounts {
			res, err := evtRunSharded(m, algo, win, aggSaturatingFlush, 0, r)
			if err != nil {
				return nil, err
			}
			if r == 1 {
				thr1 = res.Throughput
			}
			delta := 0.0
			if b := base[algo]; b > 0 {
				delta = 100 * (1 - res.Throughput/b)
			}
			recov := "n/a"
			if lost := free.Throughput - thr1; lost > 0.005*free.Throughput {
				recov = fmt.Sprintf("%.1f", 100*(res.Throughput-thr1)/lost)
			}
			tab.Add(
				fmt.Sprintf("%d", r),
				algo,
				fmt.Sprintf("%.0f", res.Throughput),
				fmt.Sprintf("%.1f", delta),
				recov,
				fmt.Sprintf("%.3f", res.ReducerUtil),
				fmt.Sprintf("%.3f", res.ReducerUtilMean),
				fmt.Sprintf("%d", res.ReducerPeakQueue),
			)
		}
	}
	return tab, nil
}

// liveSweepMergeCost is the simulated per-partial merge cost of the
// goroutine runtime's R sweep: large enough (vs the engine's per-tuple
// overhead) that the reduce stage is the bottleneck at R=1, so the
// sweep measures real wall-clock parallelization of the merge work.
const liveSweepMergeCost = 50 * time.Microsecond

// shardSweepLive sweeps the reduce stage's shard count on the
// goroutine runtime under a simulated per-partial merge cost
// (wall-clock numbers: host-dependent, the speedup column is the
// point). Messages are capped so the serialized R=1 row stays around a
// second at Full scale.
func shardSweepLive(m int64) (*texttab.Table, error) {
	if m > 60_000 {
		m = 60_000
	}
	win := m / aggWindowDivisors[0]
	tab := texttab.New(fmt.Sprintf(
		"AggShards sweep (dspe goroutine runtime, wall clock): merge=%v/partial, window=%d, n=%d, s=%d, z=%.1f, m=%d",
		liveSweepMergeCost, win, aggWorkers, aggSources, aggSkew, m),
		"R", "algo", "events/s", "speedup", "red-util", "red-util-mean")
	var thr1 float64
	for _, r := range aggShardCounts {
		gen := workload.NewZipf(aggSkew, ZFKeys, m, Seed)
		res, err := dspe.Run(gen, dspe.Config{
			Workers:      aggWorkers,
			Sources:      aggSources,
			Algorithm:    "W-C",
			Core:         core.Config{Seed: Seed, Epsilon: Epsilon},
			ServiceTime:  0,
			Window:       64,
			QueueLen:     128,
			AggWindow:    win,
			AggShards:    r,
			AggMergeCost: liveSweepMergeCost,
		})
		if err != nil {
			return nil, err
		}
		if r == 1 {
			thr1 = res.Throughput
		}
		speedup := 0.0
		if thr1 > 0 {
			speedup = res.Throughput / thr1
		}
		tab.Add(
			fmt.Sprintf("%d", r),
			"W-C",
			fmt.Sprintf("%.0f", res.Throughput),
			fmt.Sprintf("%.2f", speedup),
			fmt.Sprintf("%.3f", res.AggReducerUtil),
			fmt.Sprintf("%.3f", res.AggReducerUtilMean),
		)
	}
	return tab, nil
}

// aggRow renders one window-sweep row.
func aggRow(win int64, algo string, thr, baseThr float64, st aggregation.ReducerStats, repl, util float64) []string {
	delta := 0.0
	if baseThr > 0 {
		delta = 100 * (1 - thr/baseThr)
	}
	perWindow := 0.0
	if st.WindowsClosed > 0 {
		perWindow = float64(st.Partials) / float64(st.WindowsClosed)
	}
	return []string{
		fmt.Sprintf("%d", win),
		algo,
		fmt.Sprintf("%.0f", thr),
		fmt.Sprintf("%.1f", delta),
		fmt.Sprintf("%.1f", perWindow),
		fmt.Sprintf("%.4f", repl),
		fmt.Sprintf("%d", st.PeakEntries),
		fmt.Sprintf("%d", st.Late),
		fmt.Sprintf("%.3f", util),
	}
}
