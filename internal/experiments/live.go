package experiments

import (
	"fmt"
	"time"

	"slb/internal/core"
	"slb/internal/dspe"
	"slb/internal/eventsim"
	"slb/internal/texttab"
	"slb/internal/workload"
)

// liveMessages keeps the wall-clock experiment affordable: the paper's
// engine substitution argument (DESIGN.md §4) is validated by running
// the same comparison on real goroutines; it does not need 2e6 messages
// to show the ordering.
func (s Scale) liveMessages() int64 {
	switch s {
	case Full:
		return 200_000
	case Default:
		return 60_000
	default:
		return 20_000
	}
}

// LiveFig13 runs the Fig 13 comparison on the concurrent goroutine
// runtime (internal/dspe) instead of the discrete-event engine: real
// channels, real clock, real contention. Numbers vary with the host,
// but the ordering (KG < PKG < D-C ≈ W-C ≈ SG) must match both the
// paper and the deterministic engine. Scaled down relative to the
// paper (n=16, 1 ms/msg) so a run takes seconds.
func LiveFig13(sc Scale) ([]*texttab.Table, error) {
	const (
		n, s = 16, 8
		z    = 2.0
	)
	m := sc.liveMessages()
	t := texttab.New(fmt.Sprintf(
		"Live Fig 13 (goroutine runtime): throughput (events/s), n=%d, s=%d, z=%.1f, m=%d",
		n, s, z, m),
		"Algorithm", "Throughput(ev/s)", "p99(ms)", "Imbalance")
	for _, algo := range clusterAlgos {
		gen := workload.NewZipf(z, ZFKeys, m, Seed)
		res, err := dspe.Run(gen, dspe.Config{
			Workers:     n,
			Sources:     s,
			Algorithm:   algo,
			Core:        core.Config{Seed: Seed, Epsilon: Epsilon},
			ServiceTime: time.Millisecond,
			Window:      64,
			QueueLen:    128,
		})
		if err != nil {
			return nil, err
		}
		t.Add(algo,
			fmt.Sprintf("%.0f", res.Throughput),
			fmt.Sprintf("%.2f", float64(res.P99)/float64(time.Millisecond)),
			fmtImb(res.Imbalance))
	}
	return []*texttab.Table{t}, nil
}

// AblateStraggler injects a worker that is 8× slower than its peers and
// measures every algorithm's throughput on the discrete-event engine.
// Finding (and honest limitation of the paper's model): NO scheme
// routes around slow hardware, because the load estimate counts
// messages *sent*, not work completed — the Greedy-d process equalizes
// message counts, so the straggler still receives its full share.
// Handling heterogeneous service rates would need completion feedback,
// which the paper explicitly avoids (no coordination).
func AblateStraggler(sc Scale) ([]*texttab.Table, error) {
	const (
		n, s = 16, 8
		z    = 1.4
	)
	m := sc.liveMessages()
	t := texttab.New("Ablation: 8× straggler worker (discrete-event engine, n=16)",
		"Algorithm", "Healthy(ev/s)", "Straggler(ev/s)", "Slowdown(%)")
	for _, algo := range clusterAlgos {
		run := func(slow map[int]float64) (eventsim.Result, error) {
			gen := workload.NewZipf(z, ZFKeys, m, Seed)
			return eventsim.Run(gen, eventsim.Config{
				Workers:      n,
				Sources:      s,
				Algorithm:    algo,
				Core:         core.Config{Seed: Seed, Epsilon: Epsilon},
				ServiceTime:  1,
				Window:       64,
				Messages:     m,
				MeasureAfter: m / 5,
				SlowFactor:   slow,
			})
		}
		healthy, err := run(nil)
		if err != nil {
			return nil, err
		}
		degraded, err := run(map[int]float64{0: 8})
		if err != nil {
			return nil, err
		}
		slowdown := 0.0
		if healthy.Throughput > 0 {
			slowdown = 100 * (1 - degraded.Throughput/healthy.Throughput)
		}
		t.Add(algo,
			fmt.Sprintf("%.0f", healthy.Throughput),
			fmt.Sprintf("%.0f", degraded.Throughput),
			fmt.Sprintf("%.1f", slowdown))
	}
	return []*texttab.Table{t}, nil
}
