package experiments

import (
	"fmt"
	"sort"

	"slb/internal/texttab"
)

// Runner regenerates one experiment at a scale.
type Runner func(Scale) ([]*texttab.Table, error)

// Entry describes one registered experiment.
type Entry struct {
	Name        string
	Description string
	// Cluster marks the DSPE experiments (Figs 13–14), exposed through
	// cmd/slbstorm rather than cmd/slbsim.
	Cluster bool
	Run     Runner
}

// registry holds every experiment by CLI name.
var registry = map[string]Entry{
	"table1": {"table1", "Table I: dataset statistics", false, Table1},
	"fig1":   {"fig1", "Fig 1: imbalance vs workers on WP", false, Fig1},
	"fig3":   {"fig3", "Fig 3: head cardinality vs skew", false, Fig3},
	"fig4":   {"fig4", "Fig 4: d/n chosen by D-C vs skew", false, Fig4},
	"fig5":   {"fig5", "Fig 5: memory vs PKG", false, Fig5},
	"fig6":   {"fig6", "Fig 6: memory vs SG", false, Fig6},
	"fig7":   {"fig7", "Fig 7: imbalance vs skew per threshold (W-C, RR)", false, Fig7},
	"fig8":   {"fig8", "Fig 8: per-worker head/tail load split", false, Fig8},
	"fig9":   {"fig9", "Fig 9: D-C's d vs empirical minimum", false, Fig9},
	"fig10":  {"fig10", "Fig 10: imbalance vs skew grid (ZF)", false, Fig10},
	"fig11":  {"fig11", "Fig 11: imbalance vs workers (WP/TW/CT)", false, Fig11},
	"fig12":  {"fig12", "Fig 12: imbalance over time (WP/TW/CT)", false, Fig12},
	"fig13":  {"fig13", "Fig 13: cluster throughput", true, Fig13},
	"fig14":  {"fig14", "Fig 14: cluster latency", true, Fig14},

	"ablate-eps":        {"ablate-eps", "Ablation: solver tolerance ε", false, AblateEps},
	"ablate-sketch":     {"ablate-sketch", "Ablation: SpaceSaving capacity", false, AblateSketch},
	"ablate-prefix":     {"ablate-prefix", "Ablation: solver prefix constraints", false, AblatePrefix},
	"ablate-merge":      {"ablate-merge", "Ablation: local vs merged sketches", false, AblateMerge},
	"ablate-window":     {"ablate-window", "Ablation: insertion-only vs sliding sketch under drift", false, AblateWindow},
	"ablate-oracle":     {"ablate-oracle", "Ablation: online sketch vs ground-truth head", false, AblateOracle},
	"ablate-saturation": {"ablate-saturation", "Ablation: Fig 13 at full worker saturation", true, AblateSaturation},
	"ablate-straggler":  {"ablate-straggler", "Ablation: straggler worker (load-proxy limitation)", true, AblateStraggler},
	"live-fig13":        {"live-fig13", "Fig 13 on the real goroutine runtime (wall clock)", true, LiveFig13},
	"aggregation":       {"aggregation", "Aggregation overhead: two-phase windowed aggregation cost per algorithm and window size", true, AggregationOverhead},
	"scale":             {"scale", "Large deployments: routing cost, imbalance and throughput at n up to 16384 workers", true, ScaleExperiment},
	"transport":         {"transport", "Transport: dataplane sweep (ring vs memory vs loopback TCP), degraded links under chaos, eventsim link-delay and outage sensitivity", true, TransportExperiment},
}

// Lookup returns the experiment registered under name.
func Lookup(name string) (Entry, bool) {
	e, ok := registry[name]
	return e, ok
}

// List returns all experiments, cluster ones included or not, sorted by
// name for stable CLI output.
func List(includeCluster bool) []Entry {
	out := make([]Entry, 0, len(registry))
	for _, e := range registry {
		if e.Cluster && !includeCluster {
			continue
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RunAll executes every registered experiment matching the cluster
// filter, in name order, returning name → tables.
func RunAll(sc Scale, cluster bool) (map[string][]*texttab.Table, error) {
	out := make(map[string][]*texttab.Table)
	for _, e := range List(true) {
		if e.Cluster != cluster {
			continue
		}
		tabs, err := e.Run(sc)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", e.Name, err)
		}
		out[e.Name] = tabs
	}
	return out, nil
}
