package experiments

import (
	"fmt"
	"strconv"

	"slb/internal/analysis"
	"slb/internal/texttab"
	"slb/internal/workload"
)

// Fig3 reproduces Figure 3: the cardinality of the head |H| as a
// function of skew for the two extreme thresholds θ = 1/(5n) and
// θ = 2/n, at n ∈ {50, 100}. Analytic over the Zipf distribution with
// |K| = 1e4 (m does not enter; the head is defined on frequencies).
func Fig3(sc Scale) ([]*texttab.Table, error) {
	t := texttab.New("Fig 3: head cardinality vs skew (|K|=1e4)",
		"z", "n=50 θ=1/(5n)", "n=50 θ=2/n", "n=100 θ=1/(5n)", "n=100 θ=2/n")
	for _, z := range sc.skews() {
		probs := workload.ZipfProbs(z, ZFKeys)
		row := []string{fmtZ(z)}
		for _, n := range []int{50, 100} {
			loose := analysis.HeadCardinality(probs, 1.0/(5*float64(n)))
			tight := analysis.HeadCardinality(probs, 2.0/float64(n))
			row = append(row, strconv.Itoa(loose), strconv.Itoa(tight))
		}
		t.Add(row...)
	}
	return []*texttab.Table{t}, nil
}

// Fig4 reproduces Figure 4: the fraction of workers d/n that D-Choices
// assigns to the head, as a function of skew, for n ∈ {5, 10, 50, 100}.
// Analytic: the d-solver applied to the true Zipf distribution with
// θ = 1/(5n) and ε = 1e-4.
func Fig4(sc Scale) ([]*texttab.Table, error) {
	ns := []int{5, 10, 50, 100}
	cols := []string{"z"}
	for _, n := range ns {
		cols = append(cols, fmt.Sprintf("d/n n=%d", n), fmt.Sprintf("d n=%d", n))
	}
	t := texttab.New("Fig 4: fraction of workers used by D-C for the head (|K|=1e4, ε=1e-4)", cols...)
	for _, z := range sc.skews() {
		probs := workload.ZipfProbs(z, ZFKeys)
		row := []string{fmtZ(z)}
		for _, n := range ns {
			head, tail := analysis.SplitHead(probs, 1.0/(5*float64(n)))
			d := analysis.SolveD(head, tail, n, Epsilon)
			row = append(row, fmt.Sprintf("%.3f", float64(d)/float64(n)), strconv.Itoa(d))
		}
		t.Add(row...)
	}
	return []*texttab.Table{t}, nil
}

// memoryFig is the shared engine of Figures 5 and 6: the modeled memory
// of D-C and W-C relative to a baseline, as a function of skew, for
// n ∈ {50, 100}. The model follows Section IV-B with m = 1e7 (the
// paper's value; the model is exact and cheap, so scale only changes
// the simulated experiments, not this one).
func memoryFig(sc Scale, title string, baseline func(probs []float64, m float64, n int) float64) *texttab.Table {
	const m = 1e7
	t := texttab.New(title,
		"z", "n=50 D-C(%)", "n=50 W-C(%)", "n=100 D-C(%)", "n=100 W-C(%)")
	for _, z := range sc.skews() {
		probs := workload.ZipfProbs(z, ZFKeys)
		row := []string{fmtZ(z)}
		for _, n := range []int{50, 100} {
			theta := 1.0 / (5 * float64(n))
			head, tail := analysis.SplitHead(probs, theta)
			d := analysis.SolveD(head, tail, n, Epsilon)
			base := baseline(probs, m, n)
			dc := analysis.OverheadPct(analysis.MemDC(probs, m, n, d, theta), base)
			wc := analysis.OverheadPct(analysis.MemWC(probs, m, n, theta), base)
			row = append(row, fmt.Sprintf("%.2f", dc), fmt.Sprintf("%.2f", wc))
		}
		t.Add(row...)
	}
	return t
}

// Fig5 reproduces Figure 5: memory overhead of D-C and W-C relative to
// PKG (%), vs skew, n ∈ {50, 100}. Paper shape: at most ~30% extra, with
// D-C well below W-C at moderate skew and converging at extreme skew.
func Fig5(sc Scale) ([]*texttab.Table, error) {
	t := memoryFig(sc, "Fig 5: memory w.r.t. PKG (%) (|K|=1e4, m=1e7, ε=1e-4)",
		func(p []float64, m float64, _ int) float64 { return analysis.MemPKG(p, m) })
	return []*texttab.Table{t}, nil
}

// Fig6 reproduces Figure 6: memory overhead of D-C and W-C relative to
// SG (%), vs skew, n ∈ {50, 100}. Paper shape: always at least ~70-80%
// cheaper than shuffle grouping.
func Fig6(sc Scale) ([]*texttab.Table, error) {
	t := memoryFig(sc, "Fig 6: memory w.r.t. SG (%) (|K|=1e4, m=1e7, ε=1e-4)",
		func(p []float64, m float64, n int) float64 { return analysis.MemSG(p, m, n) })
	return []*texttab.Table{t}, nil
}
