package experiments

import (
	"fmt"

	"slb/internal/stream"
	"slb/internal/texttab"
	"slb/internal/workload"
)

// Table1 reproduces Table I: the datasets' message counts, key counts
// and head frequency p1. The real-world rows are the calibrated
// synthetic stand-ins (DESIGN.md §4) measured exactly; the ZF rows show
// the synthetic Zipf workload at three representative skews.
func Table1(sc Scale) ([]*texttab.Table, error) {
	t := texttab.New("Table I: datasets (synthetic stand-ins, measured)",
		"Dataset", "Symbol", "Messages", "Keys", "p1(%)", "Paper p1(%)")

	for _, row := range []struct {
		name, symbol string
		paperP1      float64
	}{
		{"Wikipedia-like", "WP", workload.WPP1},
		{"Twitter-like", "TW", workload.TWP1},
		{"Cashtags-like", "CT", workload.CTP1},
	} {
		gen, ok := workload.DatasetByName(row.symbol, sc.workloadScale(), Seed)
		if !ok {
			return nil, fmt.Errorf("table1: dataset %q missing", row.symbol)
		}
		st := stream.Collect(gen)
		t.Addf(row.name, row.symbol, st.Messages, st.Keys,
			fmt.Sprintf("%.2f", st.P1*100), fmt.Sprintf("%.2f", row.paperP1*100))
	}

	for _, z := range []float64{0.5, 1.0, 2.0} {
		gen := sc.zfGen(z, ZFKeys)
		st := stream.Collect(gen)
		t.Addf(fmt.Sprintf("Zipf z=%.1f", z), "ZF", st.Messages, st.Keys,
			fmt.Sprintf("%.2f", st.P1*100), "1/Σx^-z")
	}
	return []*texttab.Table{t}, nil
}
