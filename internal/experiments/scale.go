package experiments

import (
	"fmt"
	"time"

	"slb/internal/core"
	"slb/internal/eventsim"
	"slb/internal/simulator"
	"slb/internal/stream"
	"slb/internal/texttab"
	"slb/internal/workload"
)

// scale.go is the large-deployment experiment the paper's TITLE is
// about but its evaluation never reaches: the published figures stop at
// n = 100 workers, while the motivating argument — PKG's two choices
// stop being enough once p₁ > 2/n, and the gap widens with every
// doubling of n — only bites at hundreds to tens of thousands of
// workers. The `scale` experiment sweeps n ∈ {16 … 16384} × {KG, PKG,
// D-C, W-C, SG} and reports three tables:
//
//  1. Routing cost (ns/msg) of the head-aware schemes with the argmin
//     scans versus the O(log n) tournament load index (loadtree.go):
//     the scan grows linearly with n, the tree stays near-flat — this
//     is what makes the regime REACHABLE, not just simulable.
//  2. Imbalance at scale (the paper's Fig. 1/11 story extended): PKG's
//     imbalance grows toward p₁/2 − 1/n as n grows, while D-C and
//     W-C stay near-flat because the head is spread over as many
//     workers as it needs.
//  3. Cluster throughput (discrete-event engine): adding workers keeps
//     helping D-C/W-C but stops helping KG/PKG the moment the hot
//     worker saturates — the large-deployment collapse in end-to-end
//     terms.
//
// One deliberate deviation from the paper's defaults, documented here:
// θ is clamped to 1/(5·min(n, 2048)). The paper's θ = 1/(5n) sizes the
// SpaceSaving sketch at 4·⌈1/θ⌉ ≈ 20n entries per SOURCE, which at
// n = 16384 would cost hundreds of MB across sources for no
// measurement benefit — beyond n ≈ 2048 the clamped head (keys with
// p̂ ≥ 1/10240) already contains every key hot enough to matter at
// these stream lengths.

// scaleAlgos in the paper's presentation order.
var scaleAlgos = []string{"KG", "PKG", "D-C", "W-C", "SG"}

// scaleWorkers is the deployment-size sweep.
func (s Scale) scaleWorkers() []int {
	if s == Quick {
		return []int{16, 256, 4096}
	}
	return []int{16, 64, 256, 1024, 4096, 16384}
}

// scaleSkews is the z sweep of the imbalance table. The moderate
// z = 0.8 (p₁ ≈ 0.03) is where the GROWTH story lives: two choices
// still suffice at n = 16 (p₁ < 2/n) and stop sufficing as n grows,
// so PKG's imbalance climbs while D-C/W-C stay flat. At the heavier
// skews small n is already past PKG's breaking point and the gap is
// large everywhere.
func (s Scale) scaleSkews() []float64 {
	if s == Quick {
		return []float64{0.8, 1.4}
	}
	return []float64{0.8, 1.4, 2.0}
}

// scaleRouteMessages sizes the routing-cost measurement.
func (s Scale) scaleRouteMessages() int64 {
	switch s {
	case Full:
		return 1_000_000
	case Default:
		return 300_000
	default:
		return 100_000
	}
}

// scaleSimMessages sizes the imbalance simulations.
func (s Scale) scaleSimMessages() int64 {
	switch s {
	case Full:
		return 4_000_000
	case Default:
		return 1_000_000
	default:
		return 200_000
	}
}

// scaleClusterMessages sizes the discrete-event runs.
func (s Scale) scaleClusterMessages() int64 {
	switch s {
	case Full:
		return 600_000
	case Default:
		return 150_000
	default:
		return 30_000
	}
}

// scaleThetaCap is the worker count beyond which θ stops shrinking
// (see the package comment above: sketch memory, not measurement).
const scaleThetaCap = 2048

// scaleCfg is the clamped-θ core config for n workers.
func scaleCfg(n int) core.Config {
	capN := n
	if capN > scaleThetaCap {
		capN = scaleThetaCap
	}
	return core.Config{Workers: n, Seed: Seed, Epsilon: Epsilon, Theta: 1.0 / (5 * float64(capN))}
}

// timeRouting routes m pre-generated Zipf(z) messages through one
// partitioner via the batched hot path and returns the mean cost per
// message in nanoseconds. The key stream is materialized BEFORE the
// clock starts, so the table reports routing alone — generation inside
// the window would be a constant floor that flattens the scan/tree
// ratio. One sender, exactly as the per-message routing cost is paid
// in a DSPE source.
func timeRouting(algo string, cfg core.Config, z float64, m int64) (float64, error) {
	p, err := core.New(algo, cfg)
	if err != nil {
		return 0, err
	}
	gen := workload.NewZipf(z, ZFKeys, m, Seed)
	keys := make([]string, 0, m)
	buf := make([]string, 512)
	for {
		k := stream.NextBatch(gen, buf)
		if k == 0 {
			break
		}
		keys = append(keys, buf[:k]...)
	}
	dst := make([]int, 512)
	start := time.Now()
	for i := 0; i < len(keys); i += 512 {
		end := i + 512
		if end > len(keys) {
			end = len(keys)
		}
		core.RouteBatch(p, keys[i:end], dst)
	}
	elapsed := time.Since(start)
	return float64(elapsed.Nanoseconds()) / float64(len(keys)), nil
}

// ScaleExperiment reproduces the large-deployment regime end to end;
// registered as `scale` (cluster family).
func ScaleExperiment(sc Scale) ([]*texttab.Table, error) {
	// Table 1: routing cost, scan vs tree, for the two schemes whose
	// head path argmins over candidates (W-C: all n; D-C: d of them).
	// z = 2.0 puts ≈80% of the stream in the head — the worst case for
	// a linear argmin, and exactly the regime the paper's schemes
	// target. The crossover (~n = 128, see core's loadtree.go) is
	// visible as the sign change of the speedup column.
	mRoute := sc.scaleRouteMessages()
	routeTab := texttab.New(
		fmt.Sprintf("scale: routing cost (ns/msg), z=2.0, m=%d, 1 source", mRoute),
		"n", "W-C scan", "W-C tree", "D-C scan", "D-C tree", "W-C scan/tree")
	for _, n := range sc.scaleWorkers() {
		cells := []string{fmt.Sprintf("%d", n)}
		var wcScan, wcTree float64
		for _, algo := range []string{"W-C", "D-C"} {
			for _, lidx := range []int{core.LoadIndexScan, core.LoadIndexTree} {
				cfg := scaleCfg(n)
				cfg.LoadIndex = lidx
				ns, err := timeRouting(algo, cfg, 2.0, mRoute)
				if err != nil {
					return nil, err
				}
				cells = append(cells, fmt.Sprintf("%.1f", ns))
				if algo == "W-C" {
					if lidx == core.LoadIndexScan {
						wcScan = ns
					} else {
						wcTree = ns
					}
				}
			}
		}
		cells = append(cells, fmt.Sprintf("%.2fx", wcScan/wcTree))
		routeTab.Add(cells...)
	}

	// Table 2: imbalance at scale. PKG's I(m) grows with n (toward
	// p₁/2 − 1/n once two choices cannot absorb the hottest key),
	// D-C/W-C stay near-flat — the paper's headline, now measured in
	// the regime its title talks about.
	mSim := sc.scaleSimMessages()
	imbTab := texttab.New(
		fmt.Sprintf("scale: imbalance I(m) vs workers, m=%d, s=%d", mSim, Sources),
		"z", "n", "KG", "PKG", "D-C", "W-C", "SG")
	for _, z := range sc.scaleSkews() {
		for _, n := range sc.scaleWorkers() {
			gen := workload.NewZipf(z, ZFKeys, mSim, Seed)
			row := []string{fmtZ(z), fmt.Sprintf("%d", n)}
			for _, algo := range scaleAlgos {
				res, err := simulator.Run(gen, algo, scaleCfg(n), simulator.Options{Sources: Sources})
				if err != nil {
					return nil, err
				}
				row = append(row, fmtImb(res.Imbalance))
			}
			imbTab.Add(row...)
		}
	}

	// Table 3: end-to-end throughput on the discrete-event engine. The
	// offered load is fixed (16 sources at 1 ms per emission ≈ 16k
	// events/s) while n grows: balanced schemes convert added workers
	// into throughput until the sources are the bottleneck; KG and PKG
	// plateau at whatever their hottest worker (p₁, resp. ≈p₁/2 of the
	// stream) can drain, no matter how many workers are added.
	const (
		scaleClusterSources = 16
		scaleClusterService = 1.0 // ms
		scaleClusterEmit    = 1.0 // ms per source: offered ≈ n=16's capacity
		scaleClusterZ       = 1.4
	)
	mClu := sc.scaleClusterMessages()
	thrTab := texttab.New(
		fmt.Sprintf("scale: throughput (events/s), z=%.1f, s=%d, 1ms/msg, m=%d",
			scaleClusterZ, scaleClusterSources, mClu),
		"n", "KG", "PKG", "D-C", "W-C", "SG")
	for _, n := range sc.scaleWorkers() {
		row := []string{fmt.Sprintf("%d", n)}
		for _, algo := range scaleAlgos {
			gen := workload.NewZipf(scaleClusterZ, ZFKeys, mClu, Seed)
			res, err := eventsim.Run(gen, eventsim.Config{
				Workers:      n,
				Sources:      scaleClusterSources,
				Algorithm:    algo,
				Core:         scaleCfg(n),
				ServiceTime:  scaleClusterService,
				EmitInterval: scaleClusterEmit,
				Window:       100,
				Messages:     mClu,
				MeasureAfter: mClu / 5,
			})
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.0f", res.Throughput))
		}
		thrTab.Add(row...)
	}
	return []*texttab.Table{routeTab, imbTab, thrTab}, nil
}
