// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V) plus the ablations called out in DESIGN.md.
// Each runner returns one or more texttab.Tables; the cmd/slbsim and
// cmd/slbstorm binaries print them and, via internal/clirun, optionally
// write CSV copies and machine-readable BENCH_*.json artifacts. The
// JSON artifacts carry a "meta" object — experiment name, table index,
// scale from the driver, plus seed/config/timestamp from the binaries'
// -meta flags — so the CI perf trajectory they accumulate can be keyed
// on how each number was produced, not just on file name (cmd/slbsoak
// gates its soak summaries the same way).
//
// Experiments run at three scales: Quick (sub-second to seconds, used by
// tests and benches), Default (the harness default), and Full (the
// paper's published sizes; minutes per figure).
package experiments

import (
	"fmt"

	"slb/internal/core"
	"slb/internal/simulator"
	"slb/internal/stream"
	"slb/internal/texttab"
	"slb/internal/workload"
)

// Scale selects the experiment size.
type Scale int

const (
	// Quick is for tests and benchmarks.
	Quick Scale = iota
	// Default is for interactive harness runs.
	Default
	// Full matches the paper's published message counts.
	Full
)

// ParseScale maps a CLI flag value to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "quick":
		return Quick, nil
	case "default", "":
		return Default, nil
	case "full":
		return Full, nil
	}
	return Quick, fmt.Errorf("experiments: unknown scale %q (want quick|default|full)", s)
}

// The paper's fixed parameters (Tables I and III).
const (
	// Epsilon is the D-Choices imbalance tolerance ε.
	Epsilon = 1e-4
	// Sources is s, the number of sources in simulations.
	Sources = 5
	// ZFKeys is |K| for the synthetic Zipf workload.
	ZFKeys = 10000
	// Seed fixes all experiment randomness.
	Seed = 42
)

// zfMessages is m for the ZF simulations at each scale (paper: 1e7).
func (s Scale) zfMessages() int64 {
	switch s {
	case Full:
		return 10_000_000
	case Default:
		return 1_000_000
	default:
		return 100_000
	}
}

// dspeMessages is m for the cluster experiment (paper: 2e6).
func (s Scale) dspeMessages() int64 {
	switch s {
	case Full:
		return 2_000_000
	case Default:
		return 200_000
	default:
		return 50_000
	}
}

// workloadScale maps to the dataset stand-in sizes.
func (s Scale) workloadScale() workload.Scale {
	switch s {
	case Full:
		return workload.Full
	case Default:
		return workload.Default
	default:
		return workload.Quick
	}
}

// skews returns the z sweep (paper: 0.1…2.0; plots start at 0.4).
func (s Scale) skews() []float64 {
	switch s {
	case Full:
		return sweep(0.1, 2.0, 0.1)
	case Default:
		return sweep(0.4, 2.0, 0.2)
	default:
		return []float64{0.4, 0.8, 1.2, 1.6, 2.0}
	}
}

// workerSets returns the n sweep for scale-dependent experiments
// (paper: {5, 10, 20, 50, 100}).
func (s Scale) workerSets() []int {
	if s == Quick {
		return []int{5, 50}
	}
	return []int{5, 10, 20, 50, 100}
}

// gridWorkers is the n sweep of Figs 7 and 10 (paper: {5, 10, 50, 100}).
func (s Scale) gridWorkers() []int {
	if s == Quick {
		return []int{10, 50}
	}
	return []int{5, 10, 50, 100}
}

func sweep(from, to, step float64) []float64 {
	var out []float64
	for v := from; v <= to+1e-9; v += step {
		out = append(out, roundTo(v, 4))
	}
	return out
}

func roundTo(v float64, digits int) float64 {
	scale := 1.0
	for i := 0; i < digits; i++ {
		scale *= 10
	}
	if v >= 0 {
		return float64(int64(v*scale+0.5)) / scale
	}
	return float64(int64(v*scale-0.5)) / scale
}

// zfGen builds the standard ZF generator for a skew at this scale.
func (s Scale) zfGen(z float64, keys int) stream.Generator {
	return workload.NewZipf(z, keys, s.zfMessages(), Seed)
}

// simCfg is the standard simulation core config for n workers.
func simCfg(n int) core.Config {
	return core.Config{Workers: n, Seed: Seed, Epsilon: Epsilon}
}

// runSim is the common one-run helper.
func runSim(gen stream.Generator, algo string, n int, opts simulator.Options) (simulator.Result, error) {
	opts.Sources = Sources
	return simulator.Run(gen, algo, simCfg(n), opts)
}

// fmtZ renders a skew value as the paper writes it (one decimal).
func fmtZ(z float64) string { return fmt.Sprintf("%.1f", z) }

// fmtImb renders an imbalance in the log-scale style of the plots.
func fmtImb(v float64) string { return texttab.FormatFloat(v) }
