package experiments

import (
	"fmt"
	"strconv"

	"slb/internal/analysis"
	"slb/internal/simulator"
	"slb/internal/stream"
	"slb/internal/texttab"
	"slb/internal/workload"
)

// Fig10 reproduces Figure 10: imbalance vs skew for PKG, D-C, W-C and
// RR over the grid of worker counts and key-space sizes. Paper shape:
// |K| barely matters; skew × scale is what hurts, and only PKG degrades.
// The s·ε column is the paper's worst-case expectation for D-C (each of
// the s sources solves with tolerance ε independently).
func Fig10(sc Scale) ([]*texttab.Table, error) {
	keySizes := []int{10_000}
	if sc == Full {
		keySizes = []int{10_000, 100_000, 1_000_000}
	}
	var tables []*texttab.Table
	for _, keys := range keySizes {
		t := texttab.New(fmt.Sprintf("Fig 10: imbalance vs skew (|K|=%d)", keys),
			"n", "z", "PKG", "D-C", "W-C", "RR", "s×ε", "PKG-bound")
		for _, n := range sc.gridWorkers() {
			for _, z := range sc.skews() {
				row := []string{strconv.Itoa(n), fmtZ(z)}
				for _, algo := range []string{"PKG", "D-C", "W-C", "RR"} {
					res, err := runSim(sc.zfGen(z, keys), algo, n, simulator.Options{})
					if err != nil {
						return nil, err
					}
					row = append(row, fmtImb(res.Imbalance))
				}
				row = append(row, fmtImb(Sources*Epsilon))
				// The analytic floor for PKG from the prior paper's
				// analysis: p1/2 − 1/n once p1 > 2/n.
				p1 := workload.ZipfProbs(z, keys)[0]
				row = append(row, fmtImb(analysis.PKGImbalanceLowerBound(p1, n)))
				t.Add(row...)
			}
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// realDatasets lists the real-world stand-ins in the paper's order.
var realDatasets = []string{"WP", "TW", "CT"}

// Fig11 reproduces Figure 11: imbalance vs number of workers on the
// real-world datasets for PKG, D-C and W-C. Paper shape: all equal at
// small n; PKG visibly worse from n = 20 up; CT (drift) hardest for
// everyone.
func Fig11(sc Scale) ([]*texttab.Table, error) {
	var tables []*texttab.Table
	for _, ds := range realDatasets {
		gen, _ := workload.DatasetByName(ds, sc.workloadScale(), Seed)
		t := texttab.New(fmt.Sprintf("Fig 11 (%s): imbalance vs workers", ds),
			"Workers", "PKG", "D-C", "W-C", "s×ε")
		for _, n := range sc.workerSets() {
			row := []string{strconv.Itoa(n)}
			for _, algo := range []string{"PKG", "D-C", "W-C"} {
				res, err := runSim(gen, algo, n, simulator.Options{})
				if err != nil {
					return nil, err
				}
				row = append(row, fmtImb(res.Imbalance))
			}
			row = append(row, fmtImb(Sources*Epsilon))
			t.Add(row...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// fig12Snapshots is the time-series resolution of Figure 12.
func (s Scale) fig12Snapshots() int {
	if s == Quick {
		return 10
	}
	return 40
}

// Fig12 reproduces Figure 12: imbalance over time for the real-world
// datasets at each scale, for PKG, D-C and W-C. Time is measured in
// stream position (the real traces' wall-clock hours are not
// reproducible; drift in CT advances with stream position exactly as the
// original's did with time).
func Fig12(sc Scale) ([]*texttab.Table, error) {
	var tables []*texttab.Table
	for _, ds := range realDatasets {
		var gen stream.Generator
		gen, _ = workload.DatasetByName(ds, sc.workloadScale(), Seed)
		t := texttab.New(fmt.Sprintf("Fig 12 (%s): imbalance over time", ds),
			"n", "Algorithm", "Progress(%)", "Messages", "I(t)")
		for _, n := range sc.workerSets() {
			for _, algo := range []string{"PKG", "D-C", "W-C"} {
				res, err := runSim(gen, algo, n, simulator.Options{Snapshots: sc.fig12Snapshots()})
				if err != nil {
					return nil, err
				}
				for _, p := range res.Series {
					t.Add(strconv.Itoa(n), algo,
						fmt.Sprintf("%.0f", 100*float64(p.Messages)/float64(res.Messages)),
						strconv.FormatInt(p.Messages, 10),
						fmtImb(p.Imbalance))
				}
			}
		}
		tables = append(tables, t)
	}
	return tables, nil
}
