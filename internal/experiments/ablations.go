package experiments

import (
	"fmt"
	"strconv"

	"slb/internal/analysis"
	"slb/internal/core"
	"slb/internal/simulator"
	"slb/internal/stream"
	"slb/internal/texttab"
	"slb/internal/workload"
)

// AblateEps sweeps the d-solver tolerance ε: a looser tolerance buys a
// smaller d (cheaper replication) at the cost of a proportionally larger
// permitted imbalance. Run at n = 50, z = 1.8 where D-C is in its
// interesting regime.
func AblateEps(sc Scale) ([]*texttab.Table, error) {
	const n = 50
	const z = 1.8
	t := texttab.New("Ablation: solver tolerance ε (n=50, z=1.8, |K|=1e4)",
		"ε", "analytic d", "measured I(m)", "s×ε bound")
	for _, eps := range []float64{1e-5, 1e-4, 1e-3, 1e-2} {
		probs := workload.ZipfProbs(z, ZFKeys)
		head, tail := analysis.SplitHead(probs, 1.0/(5*float64(n)))
		d := analysis.SolveD(head, tail, n, eps)

		cfg := simCfg(n)
		cfg.Epsilon = eps
		res, err := simulator.Run(sc.zfGen(z, ZFKeys), "D-C", cfg,
			simulator.Options{Sources: Sources})
		if err != nil {
			return nil, err
		}
		t.Add(texttab.FormatFloat(eps), strconv.Itoa(d),
			fmtImb(res.Imbalance), fmtImb(Sources*eps))
	}
	return []*texttab.Table{t}, nil
}

// AblateSketch sweeps the SpaceSaving capacity as a multiple of 1/θ.
// Below 1/θ the sketch can miss true head keys (error ≥ θ·N), so the
// imbalance guarantee erodes; beyond a few multiples there is nothing
// left to gain.
func AblateSketch(sc Scale) ([]*texttab.Table, error) {
	const n = 50
	const z = 1.4
	theta := 1.0 / (5 * float64(n))
	t := texttab.New("Ablation: SpaceSaving capacity (D-C, n=50, z=1.4)",
		"capacity×θ", "capacity", "I(m)", "final d")
	for _, mult := range []float64{0.25, 0.5, 1, 2, 4, 8} {
		capacity := int(mult / theta)
		if capacity < 1 {
			capacity = 1
		}
		cfg := simCfg(n)
		cfg.SketchCapacity = capacity
		res, err := simulator.Run(sc.zfGen(z, ZFKeys), "D-C", cfg,
			simulator.Options{Sources: Sources})
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("%.2f", mult), strconv.Itoa(capacity),
			fmtImb(res.Imbalance), strconv.Itoa(res.FinalD))
	}
	return []*texttab.Table{t}, nil
}

// AblatePrefix compares the full constraint family of Prop. 4.1 against
// checking only the h = 1 constraint: the paper observes the tight
// constraints are h = 1 and h = |H|; dropping the deep prefixes yields a
// smaller d that under-provisions the whole head at high skew. The
// imbalance is measured by running Greedy-d with each d forced.
func AblatePrefix(sc Scale) ([]*texttab.Table, error) {
	const n = 50
	t := texttab.New("Ablation: solver prefix set (n=50, |K|=1e4, ε=1e-4)",
		"z", "d(h=1 only)", "d(all prefixes)", "I(m) h=1 only", "I(m) all")
	for _, z := range []float64{1.2, 1.6, 2.0} {
		probs := workload.ZipfProbs(z, ZFKeys)
		head, tail := analysis.SplitHead(probs, 1.0/(5*float64(n)))
		dFirst := analysis.SolveDPrefix(head, tail, n, Epsilon, 1)
		dAll := analysis.SolveD(head, tail, n, Epsilon)

		measure := func(d int) (float64, error) {
			parts := make([]core.Partitioner, Sources)
			for i := range parts {
				parts[i] = core.NewForcedD(simCfg(n), d)
			}
			res := simulator.RunPartitioners(sc.zfGen(z, ZFKeys),
				fmt.Sprintf("Greedy-%d", d), parts, simulator.Options{})
			return res.Imbalance, nil
		}
		iFirst, err := measure(dFirst)
		if err != nil {
			return nil, err
		}
		iAll, err := measure(dAll)
		if err != nil {
			return nil, err
		}
		t.Add(fmtZ(z), strconv.Itoa(dFirst), strconv.Itoa(dAll),
			fmtImb(iFirst), fmtImb(iAll))
	}
	return []*texttab.Table{t}, nil
}

// AblateMerge compares sender-local sketches (the paper's default)
// against periodically merged global sketches (the distributed
// heavy-hitters extension), on a stationary Zipf stream and on the
// drifting CT workload. The finding: merging is neutral on stationary
// streams (each source already sees a representative sample through
// shuffle grouping) and actively HURTS under drift, because the merged
// sketch carries the full global mass of past epochs, so a newly hot
// key needs proportionally more occurrences before it crosses θ. This
// supports the paper's choice of keeping sketches sender-local.
func AblateMerge(sc Scale) ([]*texttab.Table, error) {
	t := texttab.New("Ablation: local vs merged sketches (W-C)",
		"Workload", "n", "I(m) local", "I(m) merged")
	run := func(label string, gen stream.Generator) error {
		for _, n := range []int{20, 50} {
			local, err := runSim(gen, "W-C", n, simulator.Options{})
			if err != nil {
				return err
			}
			merged, err := runSim(gen, "W-C", n, simulator.Options{MergeEvery: gen.Len() / 20})
			if err != nil {
				return err
			}
			t.Add(label, strconv.Itoa(n), fmtImb(local.Imbalance), fmtImb(merged.Imbalance))
		}
		return nil
	}
	if err := run("ZF z=1.4 (stationary)", sc.zfGen(1.4, ZFKeys)); err != nil {
		return nil, err
	}
	ct, _ := workload.DatasetByName("CT", sc.workloadScale(), Seed)
	if err := run("CT (drift)", ct); err != nil {
		return nil, err
	}
	return []*texttab.Table{t}, nil
}

// AblateWindow compares the paper's insertion-only sketch against the
// sliding two-generation extension on the drifting CT workload. The
// insertion-only sketch's adaptation latency grows with stream age
// (a newly hot key must reach θ·N, and N never stops growing); the
// windowed sketch bounds the reference mass, so W-C re-adapts within a
// bounded number of messages after every drift epoch.
func AblateWindow(sc Scale) ([]*texttab.Table, error) {
	t := texttab.New("Ablation: insertion-only vs sliding sketch (W-C, CT dataset)",
		"n", "I(m) insertion-only", "I(m) sliding")
	gen, _ := workload.DatasetByName("CT", sc.workloadScale(), Seed)
	window := uint64(gen.Len() / (2 * workload.CashtagEpochs)) // half an epoch
	if window == 0 {
		window = 1
	}
	for _, n := range []int{20, 50} {
		plain, err := runSim(gen, "W-C", n, simulator.Options{})
		if err != nil {
			return nil, err
		}
		cfg := simCfg(n)
		cfg.SketchWindow = window
		sliding, err := simulator.Run(gen, "W-C", cfg, simulator.Options{Sources: Sources})
		if err != nil {
			return nil, err
		}
		t.Add(strconv.Itoa(n), fmtImb(plain.Imbalance), fmtImb(sliding.Imbalance))
	}
	return []*texttab.Table{t}, nil
}

// AblateOracle compares sketch-based W-Choices against an oracle that
// knows the true head (the top keys of the generating distribution).
// The gap quantifies the imbalance cost of online estimation error —
// the paper's implicit claim is that this gap is negligible.
func AblateOracle(sc Scale) ([]*texttab.Table, error) {
	const n = 50
	theta := 1.0 / (5 * float64(n))
	t := texttab.New("Ablation: online sketch vs ground-truth head (n=50)",
		"z", "|H| true", "I(m) W-C sketch", "I(m) oracle")
	for _, z := range []float64{1.0, 1.4, 2.0} {
		probs := workload.ZipfProbs(z, ZFKeys)
		headCard := analysis.HeadCardinality(probs, theta)
		headSet := make(map[string]bool, headCard)
		for r := 0; r < headCard; r++ {
			headSet["k"+strconv.Itoa(r)] = true
		}
		sketch, err := runSim(sc.zfGen(z, ZFKeys), "W-C", n, simulator.Options{})
		if err != nil {
			return nil, err
		}
		parts := make([]core.Partitioner, Sources)
		for i := range parts {
			cfg := simCfg(n)
			cfg.Instance = i
			parts[i] = core.NewOracle(cfg, func(k string) bool { return headSet[k] })
		}
		oracle := simulator.RunPartitioners(sc.zfGen(z, ZFKeys), "Oracle", parts,
			simulator.Options{})
		t.Add(fmtZ(z), strconv.Itoa(headCard),
			fmtImb(sketch.Imbalance), fmtImb(oracle.Imbalance))
	}
	return []*texttab.Table{t}, nil
}
