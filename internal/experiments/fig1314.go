package experiments

import (
	"fmt"

	"slb/internal/core"
	"slb/internal/eventsim"
	"slb/internal/texttab"
	"slb/internal/workload"
)

// Cluster experiment parameters (Section V, Q4): 48 sources, 80 workers,
// |K| = 1e4, m = 2e6, and a fixed 1 ms processing delay per message.
const (
	clusterWorkers = 80
	clusterSources = 48
	clusterService = 1.0 // ms
	// clusterEmit is each source's per-message cost (ms). The paper's
	// sources do real extraction work: its best-case throughput (SG,
	// Fig 13) is ≈3400 events/s ≈ 48 sources × 70 events/s, i.e. ≈14 ms
	// per message per source. With that offered load the hot worker's
	// 1 ms service rate is the next bottleneck, reproducing the paper's
	// crossover: KG and PKG collapse once p1 × 3400/s exceeds what one
	// (resp. two) workers can drain.
	clusterEmit = 14.0 // ms
)

// clusterSkews are the sample skews of Figs 13–14.
var clusterSkews = []float64{1.4, 1.7, 2.0}

// clusterAlgos in the paper's presentation order.
var clusterAlgos = []string{"KG", "PKG", "D-C", "W-C", "SG"}

func clusterRun(sc Scale, algo string, z float64) (eventsim.Result, error) {
	return clusterRunAt(sc, algo, z, clusterEmit)
}

func clusterRunAt(sc Scale, algo string, z, emitInterval float64) (eventsim.Result, error) {
	m := sc.dspeMessages()
	gen := workload.NewZipf(z, ZFKeys, m, Seed)
	cfg := eventsim.Config{
		Workers:      clusterWorkers,
		Sources:      clusterSources,
		Algorithm:    algo,
		Core:         core.Config{Seed: Seed, Epsilon: Epsilon},
		ServiceTime:  clusterService,
		EmitInterval: emitInterval,
		Window:       100,
		Messages:     m,
		// Steady state: skip the first fifth (sketch warmup, queue
		// fill-up), like the paper's averaging over long iterations.
		MeasureAfter: m / 5,
	}
	return eventsim.Run(gen, cfg)
}

// AblateSaturation re-runs the Fig 13 throughput comparison at a second
// operating point where the sources can saturate the whole cluster
// (offered load ≈ 1.2× the workers' aggregate capacity). The paper's
// published gap (D-C/W-C ≈ 1.5× PKG, ≈ 2.3× KG) is specific to its
// operating point — when the workers are the only bottleneck, the gap
// widens to the imbalance ratio itself.
func AblateSaturation(sc Scale) ([]*texttab.Table, error) {
	// 48 sources / 0.5 ms ⇒ 96k offered vs 80k capacity.
	const saturatedEmit = 0.5
	t := texttab.New("Ablation: Fig 13 at full worker saturation (events/s)",
		"z", "KG", "PKG", "D-C", "W-C", "SG")
	for _, z := range clusterSkews {
		row := []string{fmtZ(z)}
		for _, algo := range clusterAlgos {
			res, err := clusterRunAt(sc, algo, z, saturatedEmit)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.0f", res.Throughput))
		}
		t.Add(row...)
	}
	return []*texttab.Table{t}, nil
}

// Fig13 reproduces Figure 13: cluster throughput (events/second) for
// KG, PKG, D-C, W-C and SG at z ∈ {1.4, 1.7, 2.0}, on the discrete-event
// engine standing in for the Storm cluster (DESIGN.md §4). Paper shape:
// KG lowest, PKG second, D-C/W-C match SG (≈1.5× PKG and ≈2.3× KG at
// high skew).
func Fig13(sc Scale) ([]*texttab.Table, error) {
	t := texttab.New("Fig 13: throughput (events/s), n=80, s=48, 1ms/msg",
		"z", "KG", "PKG", "D-C", "W-C", "SG")
	for _, z := range clusterSkews {
		row := []string{fmtZ(z)}
		for _, algo := range clusterAlgos {
			res, err := clusterRun(sc, algo, z)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.0f", res.Throughput))
		}
		t.Add(row...)
	}
	return []*texttab.Table{t}, nil
}

// Fig14 reproduces Figure 14: cluster latency (ms) — the maximum
// per-worker average plus the p50/p95/p99 percentiles across messages —
// same setup as Fig 13. Paper shape: KG's tail explodes with skew; PKG
// halves it; D-C/W-C sit near SG (≈60% below PKG at p99, z=2.0).
func Fig14(sc Scale) ([]*texttab.Table, error) {
	t := texttab.New("Fig 14: latency (ms), n=80, s=48, 1ms/msg",
		"z", "Algorithm", "max-avg", "p50", "p95", "p99")
	for _, z := range clusterSkews {
		for _, algo := range clusterAlgos {
			res, err := clusterRun(sc, algo, z)
			if err != nil {
				return nil, err
			}
			t.Add(fmtZ(z), algo,
				fmt.Sprintf("%.2f", res.MaxAvgLatency),
				fmt.Sprintf("%.2f", res.P50),
				fmt.Sprintf("%.2f", res.P95),
				fmt.Sprintf("%.2f", res.P99))
		}
	}
	return []*texttab.Table{t}, nil
}
