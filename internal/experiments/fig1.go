package experiments

import (
	"strconv"

	"slb/internal/simulator"
	"slb/internal/texttab"
	"slb/internal/workload"
)

// Fig1 reproduces Figure 1: imbalance I(m) as a function of the number
// of workers on the Wikipedia-like dataset, for PKG, D-C and W-C. The
// paper's shape: PKG is low at n ∈ {5, 10} and degrades sharply toward
// ~10% at n ∈ {50, 100}, while D-C and W-C stay below ~0.1%.
func Fig1(sc Scale) ([]*texttab.Table, error) {
	gen := workload.WikipediaLike(sc.workloadScale(), Seed)
	t := texttab.New("Fig 1: imbalance vs workers, WP dataset",
		"Workers", "PKG", "D-C", "W-C")
	for _, n := range sc.workerSets() {
		row := []string{strconv.Itoa(n)}
		for _, algo := range []string{"PKG", "D-C", "W-C"} {
			res, err := runSim(gen, algo, n, simulator.Options{})
			if err != nil {
				return nil, err
			}
			row = append(row, fmtImb(res.Imbalance))
		}
		t.Add(row...)
	}
	return []*texttab.Table{t}, nil
}
