package experiments

import (
	"strconv"
	"strings"
	"testing"

	"slb/internal/texttab"
)

// mustRun executes a registered experiment at Quick scale.
func mustRun(t *testing.T, name string) []*texttab.Table {
	t.Helper()
	e, ok := Lookup(name)
	if !ok {
		t.Fatalf("experiment %q not registered", name)
	}
	tabs, err := e.Run(Quick)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if len(tabs) == 0 {
		t.Fatalf("%s returned no tables", name)
	}
	for _, tab := range tabs {
		if len(tab.Rows) == 0 {
			t.Fatalf("%s: empty table %q", name, tab.Title)
		}
	}
	return tabs
}

// cell parses a float out of a table cell.
func cell(t *testing.T, row []string, idx int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(row[idx], 64)
	if err != nil {
		t.Fatalf("cell %d = %q not a float: %v", idx, row[idx], err)
	}
	return v
}

func TestParseScale(t *testing.T) {
	for in, want := range map[string]Scale{"quick": Quick, "default": Default, "": Default, "full": Full} {
		got, err := ParseScale(in)
		if err != nil || got != want {
			t.Errorf("ParseScale(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseScale("bogus"); err == nil {
		t.Error("ParseScale(bogus) should fail")
	}
}

func TestRegistryComplete(t *testing.T) {
	// Every figure and table of the paper's evaluation must be present.
	for _, name := range []string{
		"table1", "fig1", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
	} {
		if _, ok := Lookup(name); !ok {
			t.Errorf("experiment %q missing from registry", name)
		}
	}
	sim := List(false)
	all := List(true)
	if len(all) <= len(sim) {
		t.Error("cluster experiments missing from List(true)")
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Name >= all[i].Name {
			t.Error("List not sorted")
		}
	}
}

func TestTable1MatchesPaperP1(t *testing.T) {
	tabs := mustRun(t, "table1")
	tab := tabs[0]
	if len(tab.Rows) < 6 {
		t.Fatalf("table1 rows = %d, want ≥ 6 (3 datasets + 3 ZF)", len(tab.Rows))
	}
	for _, symbol := range []string{"WP", "TW", "CT"} {
		row := tab.Find(map[int]string{1: symbol})
		if row == nil {
			t.Fatalf("table1 missing %s", symbol)
		}
		got := cell(t, row, 4)
		want := cell(t, row, 5)
		if got < want*0.6 || got > want*1.6 {
			t.Errorf("%s: measured p1 %.2f%% far from paper %.2f%%", symbol, got, want)
		}
	}
}

func TestFig1Shape(t *testing.T) {
	tab := mustRun(t, "fig1")[0]
	// At the largest scale, PKG must be at least 10× worse than W-C.
	last := tab.Rows[len(tab.Rows)-1]
	pkg, wc := cell(t, last, 1), cell(t, last, 3)
	if pkg < 10*wc {
		t.Errorf("fig1 at n=%s: PKG %g not ≫ W-C %g", last[0], pkg, wc)
	}
}

func TestFig3Shape(t *testing.T) {
	tab := mustRun(t, "fig3")[0]
	// θ=1/(5n) head is never smaller than θ=2/n head for the same n.
	for _, row := range tab.Rows {
		loose50, tight50 := cell(t, row, 1), cell(t, row, 2)
		if loose50 < tight50 {
			t.Errorf("z=%s: head(θ=1/5n)=%g < head(θ=2/n)=%g", row[0], loose50, tight50)
		}
	}
}

func TestFig4Shape(t *testing.T) {
	tab := mustRun(t, "fig4")[0]
	// d/n at n=100 stays < 1 at z=1.2 and d grows with z.
	var d12, d20 float64
	for _, row := range tab.Rows {
		if row[0] == "1.2" {
			d12 = cell(t, row, 8)
		}
		if row[0] == "2.0" {
			d20 = cell(t, row, 8)
		}
	}
	if d12 <= 2 || d20 < d12 {
		t.Errorf("fig4 n=100: d(1.2)=%g, d(2.0)=%g — want growth above 2", d12, d20)
	}
}

func TestFig5Fig6Shape(t *testing.T) {
	tab5 := mustRun(t, "fig5")[0]
	for _, row := range tab5.Rows {
		for i := 1; i <= 4; i++ {
			if v := cell(t, row, i); v > 40 {
				t.Errorf("fig5 z=%s col %d: overhead vs PKG %.1f%% > 40%%", row[0], i, v)
			}
		}
	}
	tab6 := mustRun(t, "fig6")[0]
	for _, row := range tab6.Rows {
		z := cell(t, row, 0)
		if z < 0.8 {
			continue // at near-uniform skew SG is as cheap as anything
		}
		for i := 1; i <= 4; i++ {
			if v := cell(t, row, i); v > -50 {
				t.Errorf("fig6 z=%s col %d: %v%% vs SG, want strong savings", row[0], i, v)
			}
		}
	}
}

func TestFig7Shape(t *testing.T) {
	tabs := mustRun(t, "fig7")
	if len(tabs) != 2 {
		t.Fatalf("fig7 tables = %d, want 2 (W-C, RR)", len(tabs))
	}
	// W-C at θ ≤ 1/n keeps imbalance low even at n=50, z=2.0.
	wc := tabs[0]
	row := wc.Find(map[int]string{0: "50", 1: "2.0"})
	if row == nil {
		t.Fatal("fig7 missing n=50 z=2.0 row")
	}
	if v := cell(t, row, 3); v > 0.01 { // θ=1/n column
		t.Errorf("fig7 W-C n=50 z=2.0 θ=1/n: imbalance %g", v)
	}
}

func TestFig8Shape(t *testing.T) {
	tab := mustRun(t, "fig8")[0]
	if len(tab.Rows) != 15 { // 3 algorithms × 5 workers
		t.Fatalf("fig8 rows = %d, want 15", len(tab.Rows))
	}
	// W-C total per worker ≈ 20% everywhere; PKG has a worker ≫ 20%.
	var pkgMax, wcMax float64
	for _, row := range tab.Rows {
		total := cell(t, row, 4)
		switch row[0] {
		case "PKG":
			if total > pkgMax {
				pkgMax = total
			}
		case "W-C":
			if total > wcMax {
				wcMax = total
			}
		}
	}
	if pkgMax < 25 {
		t.Errorf("fig8: PKG max worker %.1f%%, expected ≫ 20%%", pkgMax)
	}
	if wcMax > 22 {
		t.Errorf("fig8: W-C max worker %.1f%%, want ≈ 20%%", wcMax)
	}
}

func TestFig9Shape(t *testing.T) {
	tab := mustRun(t, "fig9")[0]
	for _, row := range tab.Rows {
		dDC, dMin := cell(t, row, 2), cell(t, row, 3)
		if dDC < dMin-1 { // allow off-by-one noise at quick scale
			t.Errorf("fig9 n=%s z=%s: D-C's d=%g below empirical min %g", row[0], row[1], dDC, dMin)
		}
		if dDC < 2 || dMin < 2 {
			t.Errorf("fig9: d below 2 in row %v", row)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	tab := mustRun(t, "fig10")[0]
	row := tab.Find(map[int]string{0: "50", 1: "2.0"})
	if row == nil {
		t.Fatal("fig10 missing n=50 z=2.0")
	}
	pkg, dc, wc := cell(t, row, 2), cell(t, row, 3), cell(t, row, 4)
	if pkg < 5*dc || pkg < 5*wc {
		t.Errorf("fig10 n=50 z=2.0: PKG %g should dwarf D-C %g and W-C %g", pkg, dc, wc)
	}
}

func TestFig11Shape(t *testing.T) {
	tabs := mustRun(t, "fig11")
	if len(tabs) != 3 {
		t.Fatalf("fig11 tables = %d, want 3 datasets", len(tabs))
	}
	// WP at the largest n: PKG worse than W-C.
	wp := tabs[0]
	last := wp.Rows[len(wp.Rows)-1]
	if pkg, wc := cell(t, last, 1), cell(t, last, 3); pkg < 5*wc {
		t.Errorf("fig11 WP n=%s: PKG %g vs W-C %g", last[0], pkg, wc)
	}
}

func TestFig12Shape(t *testing.T) {
	tabs := mustRun(t, "fig12")
	if len(tabs) != 3 {
		t.Fatalf("fig12 tables = %d, want 3", len(tabs))
	}
	for _, tab := range tabs {
		if !strings.Contains(tab.Title, "over time") {
			t.Errorf("unexpected title %q", tab.Title)
		}
		// Progress column must be non-decreasing within an (n, algo) group.
		prev := map[string]float64{}
		for _, row := range tab.Rows {
			key := row[0] + "/" + row[1]
			p := cell(t, row, 2)
			if p < prev[key] {
				t.Fatalf("fig12 %s: progress went backwards", key)
			}
			prev[key] = p
		}
	}
}

func TestFig13Shape(t *testing.T) {
	tab := mustRun(t, "fig13")[0]
	for _, row := range tab.Rows {
		kg, pkg, dc, wc, sg := cell(t, row, 1), cell(t, row, 2), cell(t, row, 3), cell(t, row, 4), cell(t, row, 5)
		if !(kg < pkg && pkg <= dc*1.05) {
			t.Errorf("fig13 z=%s: ordering KG(%g) < PKG(%g) ≤ D-C(%g) violated", row[0], kg, pkg, dc)
		}
		for name, v := range map[string]float64{"D-C": dc, "W-C": wc} {
			if v < 0.9*sg {
				t.Errorf("fig13 z=%s: %s %g not close to SG %g", row[0], name, v, sg)
			}
		}
	}
}

func TestFig14Shape(t *testing.T) {
	tab := mustRun(t, "fig14")[0]
	for _, z := range []string{"1.7", "2.0"} {
		kg := tab.Find(map[int]string{0: z, 1: "KG"})
		pkg := tab.Find(map[int]string{0: z, 1: "PKG"})
		wc := tab.Find(map[int]string{0: z, 1: "W-C"})
		if kg == nil || pkg == nil || wc == nil {
			t.Fatalf("fig14 missing rows for z=%s", z)
		}
		kgP99, pkgP99, wcP99 := cell(t, kg, 5), cell(t, pkg, 5), cell(t, wc, 5)
		if !(kgP99 > pkgP99 && pkgP99 > wcP99) {
			t.Errorf("fig14 z=%s: p99 ordering KG(%g) > PKG(%g) > W-C(%g) violated",
				z, kgP99, pkgP99, wcP99)
		}
	}
}

func TestLiveFig13Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock experiment skipped in -short")
	}
	tab := mustRun(t, "live-fig13")[0]
	get := func(algo string) float64 {
		row := tab.Find(map[int]string{0: algo})
		if row == nil {
			t.Fatalf("live-fig13 missing %s", algo)
		}
		return cell(t, row, 1)
	}
	// Under the experiment's fixed seed both PKG candidates of the hot
	// key hash to the SAME worker at n=16, so PKG legitimately degenerates
	// to KG here (imbalance 0.547 vs 0.546) and the two throughputs are a
	// wall-clock coin flip a few ev/s apart. Require only that PKG is no
	// worse than KG beyond noise; the load-bearing ordering is D-C far
	// above both.
	if get("PKG") < 0.9*get("KG") {
		t.Errorf("live ordering violated: KG %g, PKG %g", get("KG"), get("PKG"))
	}
	if get("D-C") < 2*get("PKG") {
		t.Errorf("live ordering violated: PKG %g, D-C %g", get("PKG"), get("D-C"))
	}
	if get("W-C") < 0.6*get("SG") {
		t.Errorf("live W-C (%g) too far from SG (%g)", get("W-C"), get("SG"))
	}
}

func TestAblateStragglerHurtsBalancedSchemesMost(t *testing.T) {
	tab := mustRun(t, "ablate-straggler")[0]
	slowdown := func(algo string) float64 {
		row := tab.Find(map[int]string{0: algo})
		if row == nil {
			t.Fatalf("missing %s", algo)
		}
		return cell(t, row, 3)
	}
	// The documented finding: no scheme routes around the straggler, and
	// the balanced schemes pay the most.
	if slowdown("SG") < 30 {
		t.Errorf("SG slowdown %g%%, expected severe", slowdown("SG"))
	}
	if slowdown("W-C") < slowdown("KG") {
		t.Errorf("balanced W-C (%g%%) should suffer at least as much as KG (%g%%)",
			slowdown("W-C"), slowdown("KG"))
	}
}

func TestAblations(t *testing.T) {
	for _, name := range []string{
		"ablate-eps", "ablate-sketch", "ablate-prefix", "ablate-merge",
		"ablate-window", "ablate-oracle", "ablate-saturation", "ablate-straggler",
	} {
		tabs := mustRun(t, name)
		if len(tabs[0].Rows) < 2 {
			t.Errorf("%s: too few rows", name)
		}
	}
}

func TestAblateSaturationShowsWideGap(t *testing.T) {
	tab := mustRun(t, "ablate-saturation")[0]
	row := tab.Find(map[int]string{0: "2.0"})
	if row == nil {
		t.Fatal("z=2.0 row missing")
	}
	kg, pkg, dc, sg := cell(t, row, 1), cell(t, row, 2), cell(t, row, 3), cell(t, row, 5)
	if dc < 5*pkg || dc < 10*kg {
		t.Errorf("saturated gap too small: KG %g PKG %g D-C %g", kg, pkg, dc)
	}
	if dc < 0.85*sg {
		t.Errorf("D-C (%g) should track SG (%g) at saturation", dc, sg)
	}
}

func TestAblateOracleGapTiny(t *testing.T) {
	tab := mustRun(t, "ablate-oracle")[0]
	for _, row := range tab.Rows {
		sketch, oracle := cell(t, row, 2), cell(t, row, 3)
		if sketch > 10*oracle+1e-4 {
			t.Errorf("z=%s: sketch %g far above oracle %g", row[0], sketch, oracle)
		}
	}
}

func TestAblateEpsMonotone(t *testing.T) {
	tab := mustRun(t, "ablate-eps")[0]
	// Analytic d must be non-increasing as ε loosens (rows ordered by ε).
	prev := 1 << 30
	for _, row := range tab.Rows {
		d := int(cell(t, row, 1))
		if d > prev {
			t.Errorf("ablate-eps: d not non-increasing (%d after %d)", d, prev)
		}
		prev = d
	}
}

func TestRunAllSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll is slow; skipped with -short")
	}
	out, err := RunAll(Quick, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) < 12 {
		t.Fatalf("RunAll returned %d experiments", len(out))
	}
}

// TestAggregationOverheadOrdering pins the acceptance criteria of the
// aggregation experiment, in BOTH engines and at every window size:
// KG pays exactly zero replication overhead (factor 1), the
// key-splitting schemes pay more, W-C the most among the load-aware
// ones, and the aggregation traffic (messages per window) follows the
// same ordering.
func TestAggregationOverheadOrdering(t *testing.T) {
	tabs := mustRun(t, "aggregation")
	if len(tabs) != 5 {
		t.Fatalf("aggregation returned %d tables, want 5 (eventsim + dspe + flush-cost sweep + two AggShards sweeps)", len(tabs))
	}
	for _, tab := range tabs[:2] {
		// Group rows by window size.
		byWindow := make(map[string]map[string][]string)
		for _, row := range tab.Rows {
			win, algo := row[0], row[1]
			if byWindow[win] == nil {
				byWindow[win] = make(map[string][]string)
			}
			byWindow[win][algo] = row
		}
		if len(byWindow) < 3 {
			t.Fatalf("%s: only %d window sizes, want ≥ 3", tab.Title, len(byWindow))
		}
		for win, rows := range byWindow {
			repl := func(algo string) float64 { return cell(t, rows[algo], 5) }
			msgs := func(algo string) float64 { return cell(t, rows[algo], 4) }
			if repl("KG") != 1 {
				t.Errorf("%s w=%s: KG replication = %f, want exactly 1", tab.Title, win, repl("KG"))
			}
			if !(repl("PKG") > repl("KG")) {
				t.Errorf("%s w=%s: PKG replication %f not above KG's %f", tab.Title, win, repl("PKG"), repl("KG"))
			}
			if !(repl("W-C") > repl("PKG")) {
				t.Errorf("%s w=%s: W-C replication %f not above PKG's %f", tab.Title, win, repl("W-C"), repl("PKG"))
			}
			// D-C sits between PKG (d=2) and W-C (d=n); allow slack for the
			// online d estimate.
			if repl("D-C") < repl("PKG")-0.05 || repl("D-C") > repl("W-C")+0.05 {
				t.Errorf("%s w=%s: D-C replication %f outside [PKG %f, W-C %f]",
					tab.Title, win, repl("D-C"), repl("PKG"), repl("W-C"))
			}
			if !(msgs("KG") < msgs("W-C")) {
				t.Errorf("%s w=%s: KG traffic %f not below W-C's %f", tab.Title, win, msgs("KG"), msgs("W-C"))
			}
		}
	}

	// The flush-cost sweep prices the aggregation phase: at every cost
	// point the replication-heavy W-C occupies the reducer station more
	// than KG, and W-C's utilization rises with the per-partial cost.
	sweep := tabs[2]
	byCost := make(map[string]map[string][]string)
	var costs []string
	for _, row := range sweep.Rows {
		fc, algo := row[0], row[1]
		if byCost[fc] == nil {
			byCost[fc] = make(map[string][]string)
			costs = append(costs, fc)
		}
		byCost[fc][algo] = row
	}
	if len(costs) < 3 {
		t.Fatalf("sweep covers %d flush costs, want ≥ 3", len(costs))
	}
	prevWC := -1.0
	for _, fc := range costs {
		util := func(algo string) float64 { return cell(t, byCost[fc][algo], 5) }
		if !(util("W-C") > util("KG")) {
			t.Errorf("sweep fc=%s: W-C reducer utilization %f not above KG's %f", fc, util("W-C"), util("KG"))
		}
		if util("W-C") < prevWC {
			t.Errorf("sweep fc=%s: W-C reducer utilization %f fell below previous cost point's %f", fc, util("W-C"), prevWC)
		}
		prevWC = util("W-C")
	}
}

// TestAggregationShardSweep pins the R-sweep acceptance criteria on
// the deterministic engine at the PR-3 saturating config (W-Choices,
// AggFlushCost = 2 ms, smallest window): R=1's single reducer station
// saturates; R=4 pulls the max shard utilization below 0.9 and
// recovers at least half of the throughput lost to reducer saturation
// (measured against the reducer-free baseline — the worker-side flush
// bill is paid identically at every R). The goroutine runtime's sweep
// must show the same parallelization as a wall-clock speedup.
func TestAggregationShardSweep(t *testing.T) {
	m := Quick.aggMessages()
	win := m / aggWindowDivisors[0]
	tab, err := shardSweepEventsim(m, win, map[string]float64{})
	if err != nil {
		t.Fatal(err)
	}
	wc := make(map[string][]string)
	for _, row := range tab.Rows {
		if row[1] == "W-C" {
			wc[row[0]] = row
		}
	}
	if len(wc) < 3 {
		t.Fatalf("W-C appears at %d shard counts, want ≥ 3", len(wc))
	}
	util := func(r string) float64 { return cell(t, wc[r], 5) }
	if util("1") < 0.9 {
		t.Errorf("R=1 reducer util %.3f, want ≥ 0.9 (the saturating config must saturate)", util("1"))
	}
	if util("4") >= 0.9 {
		t.Errorf("R=4 max shard util %.3f, want < 0.9: sharding must move the saturation point", util("4"))
	}
	if recov := cell(t, wc["4"], 4); recov < 50 {
		t.Errorf("R=4 recovered %.1f%% of the reducer-saturation loss, want ≥ 50%%", recov)
	}
	// Max shard utilization is non-increasing in R.
	prev := 2.0
	for _, r := range aggShardCounts {
		u := util(strconv.Itoa(r))
		if u > prev+1e-9 {
			t.Errorf("R=%d util %.3f above R/2's %.3f: utilization must fall as shards are added", r, u, prev)
		}
		prev = u
	}

	live, err := shardSweepLive(m)
	if err != nil {
		t.Fatal(err)
	}
	speedup := map[string]float64{}
	for _, row := range live.Rows {
		speedup[row[0]] = cell(t, row, 3)
	}
	// Measured ≈ 3.3× at R=4; assert 1.5× to stay robust on slow hosts.
	if speedup["4"] < 1.5 {
		t.Errorf("dspe R=4 wall-clock speedup %.2f, want ≥ 1.5", speedup["4"])
	}
}

// TestScaleShape pins the large-deployment story end to end at Quick
// scale: (1) PKG's imbalance grows with n while D-C and W-C stay
// near-flat — the paper's "two choices are not enough" claim in the
// regime its title is about; (2) the tournament load index keeps W-C
// head routing far below the linear scan at the largest n; (3) added
// workers keep raising D-C/W-C throughput after PKG has plateaued.
func TestScaleShape(t *testing.T) {
	tabs := mustRun(t, "scale")
	if len(tabs) != 3 {
		t.Fatalf("scale returned %d tables, want 3", len(tabs))
	}
	route, imb, thr := tabs[0], tabs[1], tabs[2]

	// (2) Routing cost: at the largest n the W-C scan is linear in n
	// and the tree logarithmic; require a ≥2x gap (the measured gap is
	// >10x — the slack absorbs CI timer noise).
	last := route.Rows[len(route.Rows)-1]
	wcScan, wcTree := cell(t, last, 1), cell(t, last, 2)
	if wcScan < 2*wcTree {
		t.Errorf("scale routing at n=%s: W-C scan %g ns/msg not ≥2x tree %g ns/msg", last[0], wcScan, wcTree)
	}

	// (1) Imbalance. At the moderate z=0.8 two choices still suffice at
	// n=16 (p₁ < 2/n) and stop sufficing as n grows: PKG must GROW by
	// ≥3x across the sweep. At every skew, PKG at the largest n must
	// sit ≥10x above D-C and W-C, which stay near-flat (<0.01).
	var z08 [][]string
	for _, row := range imb.Rows {
		if row[0] == "0.8" {
			z08 = append(z08, row)
		}
	}
	if len(z08) < 2 {
		t.Fatalf("scale imbalance table missing z=0.8 rows")
	}
	pkgFirst, pkgLast := cell(t, z08[0], 3), cell(t, z08[len(z08)-1], 3)
	if pkgLast < 3*pkgFirst {
		t.Errorf("scale imbalance z=0.8: PKG %g (n=%s) → %g (n=%s), want ≥3x growth with n",
			pkgFirst, z08[0][1], pkgLast, z08[len(z08)-1][1])
	}
	lastN := imb.Rows[len(imb.Rows)-1][1]
	for _, row := range imb.Rows {
		if row[1] != lastN {
			continue
		}
		pkg, dc, wc := cell(t, row, 3), cell(t, row, 4), cell(t, row, 5)
		for name, v := range map[string]float64{"D-C": dc, "W-C": wc} {
			if v > 0.01 {
				t.Errorf("scale imbalance z=%s n=%s: %s = %g, want near-flat (<0.01)", row[0], row[1], name, v)
			}
			if pkg < 10*v {
				t.Errorf("scale imbalance z=%s n=%s: PKG %g not ≥10x %s %g", row[0], row[1], pkg, name, v)
			}
		}
	}

	// (3) Throughput: at the largest n, D-C and W-C clear PKG by ≥2x
	// (PKG is pinned by its two hot-key workers; they are not).
	lastT := thr.Rows[len(thr.Rows)-1]
	pkgThr, dcThr, wcThr := cell(t, lastT, 2), cell(t, lastT, 3), cell(t, lastT, 4)
	if dcThr < 2*pkgThr || wcThr < 2*pkgThr {
		t.Errorf("scale throughput at n=%s: D-C %g / W-C %g not ≥2x PKG %g", lastT[0], dcThr, wcThr, pkgThr)
	}
}
