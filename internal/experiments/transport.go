package experiments

import (
	"fmt"

	"slb/internal/core"
	"slb/internal/dspe"
	"slb/internal/eventsim"
	"slb/internal/telemetry"
	"slb/internal/texttab"
	"slb/internal/transport"
	"slb/internal/workload"
)

// Transport experiment parameters: the same deployment as the
// aggregation experiment (n=16, s=8, z=1.4, R=4) so the numbers sit in
// one family, with the in-flight window deepened to 4096 on every
// plane — the default 100 makes a TCP run ack-latency bound (each
// burst waits out a loopback syscall round trip), and the deeper
// window is applied uniformly so the plane comparison stays an A/B.
const (
	transShards = 4
	transWindow = 4096
)

// transMessages is m for the transport sweep at each scale.
func (s Scale) transMessages() int64 {
	switch s {
	case Full:
		return 1_000_000
	case Default:
		return 200_000
	default:
		return 30_000
	}
}

// transDelays sweeps the eventsim worker→reducer hop delay (ms): free,
// same-rack, and cross-zone flavors.
var transDelays = []float64{0, 0.2, 2}

// TransportExperiment prices leaving the single process, from both
// directions.
//
// The first table runs the goroutine engine's W-C aggregation topology
// over its three dataplanes — the direct SPSC ring plane, the
// internal/transport memory backend (same rings behind the transport
// interface), and loopback TCP with the columnar dictionary codec —
// and reports wall-clock throughput plus the TCP wire's own ledger
// (tx/rx bytes, bytes per message, frames, bytes/frame, flushes,
// dictionary hit rate and epoch resets) from the per-link telemetry.
// Finals
// and replication are bit-equal across the three planes (pinned by
// dspe's parity tests); what moves is only the transport cost, so the
// memory row isolates the interface overhead and the TCP row the
// framing + kernel socket cost.
//
// The second table degrades the TCP plane with the deterministic chaos
// wrapper — dropped frames and severed connections at two loss levels —
// and prices the recovery machinery per algorithm: reconnect episodes,
// retransmitted frames/bytes, duplicate drops at the receive edge, and
// accumulated outage time. Exactness is untouched (the fault-parity
// tests pin bit-equal finals); only throughput and wire overhead move,
// and the retransmission bill orders by replication: W-C ≥ D-C ≥ KG.
//
// The third table walks the deterministic engine's per-link delay
// model (eventsim.Config.LinkDelay) over the worker→reducer hop for
// each algorithm: every flushed partial pays the hop delay, so an
// algorithm's sensitivity scales with its replication factor — KG
// (replication 1) barely notices 2 ms while W-C's degradation is the
// replication bill resurfacing as wire latency.
//
// The fourth table adds periodic per-link outage windows to the
// deterministic engine (eventsim.Config.LinkOutagePeriod/Duration):
// partials arriving while a link is dark are lost and retransmitted on
// recovery, the closed-form analogue of the live chaos sweep above.
func TransportExperiment(sc Scale) ([]*texttab.Table, error) {
	m := sc.transMessages()

	live := texttab.New(fmt.Sprintf(
		"Transport sweep (dspe, wall clock): W-C, n=%d, s=%d, z=%.1f, R=%d, m=%d, window=%d",
		aggWorkers, aggSources, aggSkew, transShards, m, transWindow),
		"plane", "events/s", "rel", "replication", "tx-MB", "rx-MB", "B/msg", "frames", "B/frame", "flushes", "dict-hit%", "resets")
	planes := []struct {
		name string
		dp   dspe.Dataplane
		tr   dspe.Transport
	}{
		{"direct-ring", dspe.DataplaneRing, dspe.TransportDirect},
		{"memory", dspe.DataplaneRing, dspe.TransportMemory},
		{"tcp", dspe.DataplaneRing, dspe.TransportTCP},
	}
	var base float64
	for _, plane := range planes {
		var reg *telemetry.Registry
		if plane.tr == dspe.TransportTCP {
			reg = telemetry.NewRegistry()
		}
		gen := workload.NewZipf(aggSkew, ZFKeys, m, Seed)
		res, err := dspe.Run(gen, dspe.Config{
			Workers:   aggWorkers,
			Sources:   aggSources,
			Algorithm: "W-C",
			Core:      core.Config{Seed: Seed, Epsilon: Epsilon},
			Window:    transWindow,
			AggWindow: m / 50,
			AggShards: transShards,
			Dataplane: plane.dp,
			Transport: plane.tr,
			Telemetry: reg,
		})
		if err != nil {
			return nil, err
		}
		if plane.name == "direct-ring" {
			base = res.Throughput
		}
		rel := 0.0
		if base > 0 {
			rel = res.Throughput / base
		}
		txMB, rxMB, bpm, frames, bpf, flushes, hitPct, resets := "n/a", "n/a", "n/a", "n/a", "n/a", "n/a", "n/a", "n/a"
		if reg != nil {
			bytes := sumCounter(reg, "transport_tx_bytes_total")
			fr := sumCounter(reg, "transport_frames_total")
			msgs := sumCounter(reg, "transport_tx_msgs_total")
			txMB = fmt.Sprintf("%.1f", bytes/(1<<20))
			rxMB = fmt.Sprintf("%.1f", sumCounter(reg, "transport_rx_bytes_total")/(1<<20))
			if msgs > 0 {
				bpm = fmt.Sprintf("%.2f", bytes/msgs)
			}
			frames = fmt.Sprintf("%.0f", fr)
			if fr > 0 {
				bpf = fmt.Sprintf("%.0f", bytes/fr)
			}
			flushes = fmt.Sprintf("%.0f", sumCounter(reg, "transport_flushes_total"))
			if msgs > 0 {
				hitPct = fmt.Sprintf("%.1f", 100*sumCounter(reg, "transport_dict_hits_total")/msgs)
			}
			resets = fmt.Sprintf("%.0f", sumCounter(reg, "transport_dict_resets_total"))
		}
		live.Add(
			plane.name,
			fmt.Sprintf("%.0f", res.Throughput),
			fmt.Sprintf("%.2fx", rel),
			fmt.Sprintf("%.4f", res.AggReplication),
			txMB, rxMB, bpm, frames, bpf, flushes, hitPct, resets,
		)
	}

	// Degraded links: the same W-C/D-C/KG topologies over loopback TCP
	// with the chaos wrapper dropping frames and severing connections on
	// a deterministic schedule. Finals stay bit-equal to the fault-free
	// run (pinned by dspe's fault-parity test); what the table prices is
	// the recovery machinery — reconnect episodes, retransmitted frames
	// and bytes, receive-edge duplicate drops — and the throughput it
	// costs. Retransmission cost tracks wire traffic, which tracks
	// replication: W-C resends the most bytes, then D-C, then KG.
	faultLevels := []struct {
		name  string
		chaos *transport.ChaosConfig
	}{
		{"none", nil},
		{"0.5%", &transport.ChaosConfig{Seed: Seed, DropOneIn: 200, SeverEvery: 4096}},
		{"2%", &transport.ChaosConfig{Seed: Seed, DropOneIn: 50, SeverEvery: 1024}},
	}
	degraded := texttab.New(fmt.Sprintf(
		"Degraded links (dspe, loopback TCP + chaos): n=%d, s=%d, z=%.1f, R=%d, m=%d, window=%d",
		aggWorkers, aggSources, aggSkew, transShards, m, transWindow),
		"loss", "algo", "events/s", "Δthr%", "reconnects", "retrans-frames", "retrans-MB", "dup-drops", "outage-ms")
	faultBase := make(map[string]float64)
	for _, lvl := range faultLevels {
		for _, algo := range []string{"KG", "D-C", "W-C"} {
			reg := telemetry.NewRegistry()
			gen := workload.NewZipf(aggSkew, ZFKeys, m, Seed)
			res, err := dspe.Run(gen, dspe.Config{
				Workers:   aggWorkers,
				Sources:   aggSources,
				Algorithm: algo,
				Core:      core.Config{Seed: Seed, Epsilon: Epsilon},
				Window:    transWindow,
				AggWindow: m / 50,
				AggShards: transShards,
				Dataplane: dspe.DataplaneRing,
				Transport: dspe.TransportTCP,
				Telemetry: reg,
				Chaos:     lvl.chaos,
			})
			if err != nil {
				return nil, err
			}
			if lvl.chaos == nil {
				faultBase[algo] = res.Throughput
			}
			drop := 0.0
			if b := faultBase[algo]; b > 0 {
				drop = 100 * (1 - res.Throughput/b)
			}
			degraded.Add(
				lvl.name,
				algo,
				fmt.Sprintf("%.0f", res.Throughput),
				fmt.Sprintf("%.1f", drop),
				fmt.Sprintf("%.0f", sumCounter(reg, "transport_reconnects_total")),
				fmt.Sprintf("%.0f", sumCounter(reg, "transport_retransmit_frames_total")),
				fmt.Sprintf("%.2f", sumCounter(reg, "transport_retransmit_bytes_total")/(1<<20)),
				fmt.Sprintf("%.0f", sumCounter(reg, "transport_dup_msgs_dropped_total")),
				fmt.Sprintf("%.0f", 1000*sumCounter(reg, "transport_outage_seconds")),
			)
		}
	}

	delay := texttab.New(fmt.Sprintf(
		"Link-delay sweep (eventsim, deterministic): worker→reducer hop delay, n=%d, s=%d, z=%.1f, R=%d, m=%d, jitter=delay/4, slow 1-in-512",
		aggWorkers, aggSources, aggSkew, transShards, m),
		"delay-ms", "algo", "events/s", "Δthr%", "replication", "red-util")
	baseThr := make(map[string]float64)
	for _, d := range transDelays {
		for _, algo := range clusterAlgos {
			gen := workload.NewZipf(aggSkew, ZFKeys, m, Seed)
			res, err := eventsim.Run(gen, eventsim.Config{
				Workers:       aggWorkers,
				Sources:       aggSources,
				Algorithm:     algo,
				Core:          core.Config{Seed: Seed, Epsilon: Epsilon},
				ServiceTime:   1.0,
				Window:        100,
				Messages:      m,
				AggWindow:     m / 50,
				AggShards:     transShards,
				LinkDelay:     d,
				LinkJitter:    d / 4,
				LinkSlowOneIn: 512,
				MeasureAfter:  m / 5,
			})
			if err != nil {
				return nil, err
			}
			if d == 0 {
				baseThr[algo] = res.Throughput
			}
			drop := 0.0
			if b := baseThr[algo]; b > 0 {
				drop = 100 * (1 - res.Throughput/b)
			}
			delay.Add(
				fmt.Sprintf("%.1f", d),
				algo,
				fmt.Sprintf("%.0f", res.Throughput),
				fmt.Sprintf("%.1f", drop),
				fmt.Sprintf("%.4f", res.AggReplication),
				fmt.Sprintf("%.3f", res.ReducerUtil),
			)
		}
	}

	// Outage windows in the deterministic engine: each worker→reducer
	// link periodically goes dark (staggered per-link phase); partials
	// arriving in a dark window are lost and retransmitted when the link
	// recovers, charged as deferred arrivals in the closed-form
	// recurrence. The table walks the dark fraction (duration/period) at
	// a fixed 50 ms cycle.
	outage := texttab.New(fmt.Sprintf(
		"Link-outage sweep (eventsim, deterministic): 50ms cycle, staggered per-link phase, n=%d, s=%d, z=%.1f, R=%d, m=%d, hop=0.2ms",
		aggWorkers, aggSources, aggSkew, transShards, m),
		"dark%", "algo", "events/s", "Δthr%", "retransmits", "outage-wait-ms", "replication")
	outBase := make(map[string]float64)
	for _, darkPct := range []float64{0, 2, 10} {
		period := 50.0
		if darkPct == 0 {
			period = 0 // outage model off; duration would otherwise default to period/10
		}
		for _, algo := range clusterAlgos {
			gen := workload.NewZipf(aggSkew, ZFKeys, m, Seed)
			res, err := eventsim.Run(gen, eventsim.Config{
				Workers:            aggWorkers,
				Sources:            aggSources,
				Algorithm:          algo,
				Core:               core.Config{Seed: Seed, Epsilon: Epsilon},
				ServiceTime:        1.0,
				Window:             100,
				Messages:           m,
				AggWindow:          m / 50,
				AggShards:          transShards,
				LinkDelay:          0.2,
				LinkJitter:         0.05,
				LinkOutagePeriod:   period,
				LinkOutageDuration: period * darkPct / 100,
				MeasureAfter:       m / 5,
			})
			if err != nil {
				return nil, err
			}
			if darkPct == 0 {
				outBase[algo] = res.Throughput
			}
			drop := 0.0
			if b := outBase[algo]; b > 0 {
				drop = 100 * (1 - res.Throughput/b)
			}
			outage.Add(
				fmt.Sprintf("%.0f", darkPct),
				algo,
				fmt.Sprintf("%.0f", res.Throughput),
				fmt.Sprintf("%.1f", drop),
				fmt.Sprintf("%d", res.LinkRetransmits),
				fmt.Sprintf("%.0f", res.LinkOutageWaitMs),
				fmt.Sprintf("%.4f", res.AggReplication),
			)
		}
	}
	return []*texttab.Table{live, degraded, delay, outage}, nil
}

// sumCounter totals a counter series across all its label sets (the
// transport registers one series per link).
func sumCounter(reg *telemetry.Registry, name string) float64 {
	var total float64
	for _, met := range reg.Snapshot().Metrics {
		if met.Name == name {
			total += met.Value
		}
	}
	return total
}
