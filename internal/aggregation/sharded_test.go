package aggregation

import (
	"fmt"
	"math"
	"testing"

	"slb/internal/core"
	"slb/internal/hashing"
	"slb/internal/stream"
	"slb/internal/workload"
)

// TestMergerAlgebra pins the contract every Merger must satisfy:
// observing a sample stream split arbitrarily across two states and
// then Combining equals observing the whole stream into one state —
// the property that makes per-worker partials mergeable at all.
func TestMergerAlgebra(t *testing.T) {
	samples := []int64{5, -3, 5, 12, 0, 7, -3, 99, 12, 1, 5}
	for _, m := range []Merger{CountMerger, SumMerger, MinMerger, MaxMerger, DistinctMerger} {
		t.Run(m.Name(), func(t *testing.T) {
			for split := 0; split <= len(samples); split++ {
				var whole, left, right Value
				for i, s := range samples {
					m.Observe(&whole, s, 1)
					if i < split {
						m.Observe(&left, s, 1)
					} else {
						m.Observe(&right, s, 1)
					}
				}
				m.Combine(&left, right)
				if left != whole {
					t.Fatalf("split %d: combined state %v != whole-stream state %v", split, left, whole)
				}
			}
		})
	}
}

// TestMergerResults pins each built-in's semantics on a known stream,
// including the batched Observe form (n > 1).
func TestMergerResults(t *testing.T) {
	type obs struct{ sample, n int64 }
	stream := []obs{{4, 1}, {-2, 3}, {10, 1}, {4, 2}}
	want := map[string]int64{
		"count":    7,              // 1+3+1+2 observations
		"sum":      4 - 6 + 10 + 8, // sample×n summed
		"min":      -2,
		"max":      10,
		"distinct": 3, // {4, -2, 10}; small-range HLL is exact here
	}
	for _, m := range []Merger{CountMerger, SumMerger, MinMerger, MaxMerger, DistinctMerger} {
		var v Value
		for _, o := range stream {
			m.Observe(&v, o.sample, o.n)
		}
		if got := m.Result(v); got != want[m.Name()] {
			t.Errorf("%s: result %d, want %d", m.Name(), got, want[m.Name()])
		}
	}
}

// TestDistinctMergerEstimate: the 16-register HLL tracks true
// cardinality within its design error across a range of scales, and
// the estimate is independent of how observations are split across
// merged states.
func TestDistinctMergerEstimate(t *testing.T) {
	for _, card := range []int{1, 5, 16, 60, 250, 1000} {
		var one Value
		shards := make([]Value, 4)
		for i := 0; i < card; i++ {
			s := int64(i)*1000003 + 17
			DistinctMerger.Observe(&one, s, 1)
			DistinctMerger.Observe(&shards[i%4], s, 1)
		}
		var merged Value
		for _, sv := range shards {
			DistinctMerger.Combine(&merged, sv)
		}
		if DistinctMerger.Result(merged) != DistinctMerger.Result(one) {
			t.Errorf("card %d: merged estimate %d != single-state estimate %d",
				card, DistinctMerger.Result(merged), DistinctMerger.Result(one))
		}
		est := float64(DistinctMerger.Result(one))
		if rel := math.Abs(est-float64(card)) / float64(card); rel > 0.5 {
			t.Errorf("card %d: estimate %.0f off by %.0f%%", card, est, 100*rel)
		}
	}
}

// TestShardForPartition: every digest maps to exactly one in-range
// shard, deterministically, and the shards are all populated for a
// modest key set.
func TestShardForPartition(t *testing.T) {
	const shards = 8
	seen := make([]int, shards)
	for i := 0; i < 10_000; i++ {
		dg := hashing.Digest(fmt.Sprintf("key-%d", i))
		s := ShardFor(dg, shards)
		if s < 0 || s >= shards {
			t.Fatalf("shard %d out of range", s)
		}
		if s != ShardFor(dg, shards) {
			t.Fatal("ShardFor not deterministic")
		}
		seen[s]++
	}
	for s, c := range seen {
		if c == 0 {
			t.Errorf("shard %d received no keys", s)
		}
	}
	if ShardFor(hashing.Digest("x"), 1) != 0 || ShardFor(hashing.Digest("x"), 0) != 0 {
		t.Error("degenerate shard counts must map to shard 0")
	}
}

// runSharded routes gen through per-source partitioners, accumulates
// per-worker windowed partials, and reduces through a ShardedDriver
// with the given shard count, mirroring the engines' flow (emissions
// observed at routing, flush on watermark advance, per-shard
// completeness close). Returns the finals and the driver.
func runSharded(t *testing.T, gen stream.Generator, algo string, workers, sources, shards int, windowSize int64, m Merger, sample func(key string, seq int64) int64) ([]Final, *ShardedDriver) {
	t.Helper()
	parts := make([]core.Partitioner, sources)
	for i := range parts {
		p, err := core.New(algo, core.Config{Workers: workers, Seed: 99, Instance: i})
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = p
	}
	accs := make([]*Accumulator, workers)
	for i := range accs {
		accs[i] = NewAccumulatorMerger(i, m)
	}
	gen.Reset()
	var total int64
	for {
		if _, ok := gen.Next(); !ok {
			break
		}
		total++
	}
	gen.Reset()

	sd := NewShardedDriver(workers, shards, windowSize, total, m)
	var finals []Final
	onFinal := func(f Final) { finals = append(finals, f) }
	var buf []Partial
	flush := func(acc *Accumulator, before int64) {
		buf = acc.FlushBefore(before, buf[:0])
		sd.Merge(buf, onFinal)
	}

	var idx int64
	src := 0
	for {
		key, ok := gen.Next()
		if !ok {
			break
		}
		dg := hashing.Digest(key)
		window := idx / windowSize
		sd.ObserveEmit(idx, dg)
		w := parts[src].Route(key)
		acc := accs[w]
		if wm, ok := acc.Watermark(); ok && window > wm {
			flush(acc, window)
		}
		s := int64(1)
		if sample != nil {
			s = sample(key, idx)
		}
		acc.AddSample(window, dg, key, 1, s)
		idx++
		src = (src + 1) % sources
	}
	for _, acc := range accs {
		flush(acc, 1<<62)
	}
	sd.Finish(onFinal)
	return finals, sd
}

// TestShardedDriverMatchesSingle: for every shard count, the sharded
// reduce stage produces exactly the finals of the single reducer —
// same (window, key) set, same counts, same merged values — with the
// same measured replication factor and zero late corrections.
// Completeness-based close must survive sharding.
func TestShardedDriverMatchesSingle(t *testing.T) {
	const (
		workers    = 8
		sources    = 3
		messages   = 20_000
		windowSize = 1_500
	)
	sample := func(key string, seq int64) int64 { return int64(len(key)) + seq%13 }
	for _, m := range []Merger{CountMerger, SumMerger, MinMerger, MaxMerger, DistinctMerger} {
		mk := func() stream.Generator { return workload.NewZipf(1.6, 400, messages, 7) }
		refFinals, refDrv := runSharded(t, mk(), "W-C", workers, sources, 1, windowSize, m, sample)
		type fk struct {
			w int64
			k string
		}
		ref := make(map[fk]Final, len(refFinals))
		for _, f := range refFinals {
			ref[fk{f.Window, f.Key}] = f
		}
		for _, shards := range []int{2, 4, 7} {
			t.Run(fmt.Sprintf("%s/R=%d", m.Name(), shards), func(t *testing.T) {
				finals, sd := runSharded(t, mk(), "W-C", workers, sources, shards, windowSize, m, sample)
				if len(finals) != len(ref) {
					t.Fatalf("%d finals, want %d", len(finals), len(ref))
				}
				for _, f := range finals {
					want, ok := ref[fk{f.Window, f.Key}]
					if !ok {
						t.Fatalf("unexpected final (window %d, key %q)", f.Window, f.Key)
					}
					if f.Count != want.Count || f.Value != want.Value {
						t.Fatalf("(window %d, key %q): count/value %d/%d, want %d/%d",
							f.Window, f.Key, f.Count, f.Value, want.Count, want.Value)
					}
				}
				if got, want := sd.Replication(), refDrv.Replication(); got != want {
					t.Errorf("replication %v, want %v (bit-equal)", got, want)
				}
				st := sd.Stats()
				if st.Late != 0 {
					t.Errorf("%d late corrections; per-shard completeness close must make lates impossible", st.Late)
				}
				if st.Partials != refDrv.Stats().Partials {
					t.Errorf("partials %d, want %d", st.Partials, refDrv.Stats().Partials)
				}
				if sd.Total() != refDrv.Total() {
					t.Errorf("total %d, want %d", sd.Total(), refDrv.Total())
				}
			})
		}
	}
}

// TestShardedThresholdNotFinalBlocksClose pins the guard that makes
// sharded completeness close safe: a shard must NOT close a window
// whose emission is still being counted, even if the shard's merged
// count matches the (still-growing) threshold.
func TestShardedThresholdNotFinalBlocksClose(t *testing.T) {
	const windowSize = 4
	// Find two keys on different shards of 2.
	kA, kB := "", ""
	for i := 0; kB == ""; i++ {
		k := fmt.Sprintf("key-%d", i)
		if ShardFor(hashing.Digest(k), 2) == 0 {
			if kA == "" {
				kA = k
			}
		} else if kB == "" {
			kB = k
		}
	}
	dgA, dgB := hashing.Digest(kA), hashing.Digest(kB)

	sd := NewShardedDriver(1, 2, windowSize, 8, CountMerger)
	var finals []Final
	onFinal := func(f Final) { finals = append(finals, f) }

	// Emit half of window 0 (2 of 4 messages), all on shard A's key.
	sd.ObserveEmit(0, dgA)
	sd.ObserveEmit(1, dgA)
	// Shard A merges a partial covering BOTH messages counted so far:
	// merged count (2) equals the current threshold (2), but the
	// window's emission is incomplete — it must not close.
	sd.Merge([]Partial{{Window: 0, Digest: dgA, Key: kA, Count: 2, Val: Value{2}}}, onFinal)
	if len(finals) != 0 {
		t.Fatalf("shard closed window 0 after %d of %d emissions", 2, windowSize)
	}
	// Finish the window's emission on the other shard and merge it:
	// shard B's slice closes mid-stream (threshold 2, final, met).
	sd.ObserveEmit(2, dgB)
	sd.ObserveEmit(3, dgB)
	sd.Merge([]Partial{{Window: 0, Digest: dgB, Key: kB, Count: 2, Val: Value{2}}}, onFinal)
	if len(finals) != 1 || finals[0].Key != kB {
		t.Fatalf("shard B's slice did not close on completeness: finals %+v", finals)
	}
	// Shard A's slice became complete only via shard B's emissions; no
	// further merge prods it, so the end-of-stream Finish closes it.
	sd.Finish(onFinal)
	if len(finals) != 2 {
		t.Fatalf("got %d finals, want 2", len(finals))
	}
	for _, f := range finals {
		if f.Count != 2 {
			t.Errorf("final (%d, %q) count %d, want 2", f.Window, f.Key, f.Count)
		}
	}
	if st := sd.Stats(); st.Late != 0 {
		t.Errorf("lates %d, want 0", st.Late)
	}
}
