package aggregation

import (
	"math"
	"math/bits"

	"slb/internal/hashing"
)

// Value is the fixed-size merge state of one (window, key) entry. It
// lives inline in the partial tables' slots and travels inside flushed
// Partials, so pluggable mergers keep the tables' zero-allocation
// steady state: no merger ever boxes its state on the heap. The two
// words are the merger's to interpret — a running sum, a (min, count)
// pair, or sixteen packed 6-bit HLL registers.
type Value [2]uint64

// Merger is the pluggable merge operator of the two-phase aggregation:
// a commutative, associative fold over per-message samples, computed
// incrementally at the workers (Observe) and combined across workers'
// partials at the reducer (Combine). The zero Value must be the
// operator's identity. Implementations must be stateless (one shared
// instance serves every worker and reducer shard concurrently) and
// must never allocate in Observe/Combine — they run on the engines'
// hot paths.
//
// The message COUNT is tracked separately from the merged value:
// counts drive the reducer's completeness-based window close and are
// the same for every merger, while the Value is what the application
// asked to compute (Final.Value).
type Merger interface {
	// Name identifies the operator (for tables and diagnostics).
	Name() string
	// Observe folds n observations of sample into v (the worker side).
	// Engines derive sample per message via their AggValue hook
	// (default 1); the batched form folds n identical observations in
	// one call.
	Observe(v *Value, sample int64, n int64)
	// Combine folds src into dst (the reducer side, merging partials
	// produced on different workers). Must agree with Observe:
	// combining two observed states equals observing the union.
	Combine(dst *Value, src Value)
	// Result renders the merged state as the operator's final value:
	// the count, the sum, the min/max, or the estimated distinct count.
	Result(v Value) int64
}

// Built-in mergers. All are stateless singletons, safe to share across
// workers and reducer shards.
var (
	// CountMerger counts observations; its Result always equals the
	// entry's message count, so it reproduces the pre-Merger two-phase
	// count aggregation exactly. This is the default everywhere a
	// Merger is not given.
	CountMerger Merger = countMerger{}
	// SumMerger sums samples (64-bit wrapping integer sum).
	SumMerger Merger = sumMerger{}
	// MinMerger keeps the smallest sample observed.
	MinMerger Merger = minMaxMerger{min: true}
	// MaxMerger keeps the largest sample observed.
	MaxMerger Merger = minMaxMerger{}
	// DistinctMerger estimates the number of DISTINCT samples per
	// (window, key) with a 16-register HyperLogLog in the Value's 128
	// bits: registers merge across workers by element-wise max, so the
	// estimate is independent of how key splitting scattered the
	// samples. Expected error ≈ 1.04/√16 ≈ 26%; exact (via linear
	// counting) for the small cardinalities most windows hold.
	DistinctMerger Merger = distinctMerger{}
)

type countMerger struct{}

func (countMerger) Name() string                       { return "count" }
func (countMerger) Observe(v *Value, _ int64, n int64) { v[0] += uint64(n) }
func (countMerger) Combine(dst *Value, src Value)      { dst[0] += src[0] }
func (countMerger) Result(v Value) int64               { return int64(v[0]) }

type sumMerger struct{}

func (sumMerger) Name() string { return "sum" }
func (sumMerger) Observe(v *Value, sample int64, n int64) {
	v[0] += uint64(sample * n)
}
func (sumMerger) Combine(dst *Value, src Value) { dst[0] += src[0] }
func (sumMerger) Result(v Value) int64          { return int64(v[0]) }

// minMaxMerger keeps an extremum in v[0] and the observation count in
// v[1]; count == 0 marks the identity (no sample yet), so the zero
// Value needs no sentinel initialization.
type minMaxMerger struct{ min bool }

func (m minMaxMerger) Name() string {
	if m.min {
		return "min"
	}
	return "max"
}
func (m minMaxMerger) better(a, b int64) bool {
	if m.min {
		return a < b
	}
	return a > b
}
func (m minMaxMerger) Observe(v *Value, sample int64, n int64) {
	if v[1] == 0 || m.better(sample, int64(v[0])) {
		v[0] = uint64(sample)
	}
	v[1] += uint64(n)
}
func (m minMaxMerger) Combine(dst *Value, src Value) {
	if src[1] == 0 {
		return
	}
	if dst[1] == 0 || m.better(int64(src[0]), int64(dst[0])) {
		dst[0] = src[0]
	}
	dst[1] += src[1]
}
func (m minMaxMerger) Result(v Value) int64 { return int64(v[0]) }

// distinctMerger: 16 HLL registers of 6 bits packed into the Value —
// registers 0..9 in v[0] (bits 0..59), registers 10..15 in v[1]
// (bits 0..35).
type distinctMerger struct{}

const (
	hllRegs      = 16
	hllRegBits   = 6
	hllRegMask   = (1 << hllRegBits) - 1
	hllLoRegs    = 10 // registers stored in v[0]
	hllAlpha16M2 = 0.673 * hllRegs * hllRegs
)

func hllGet(v *Value, i int) uint64 {
	if i < hllLoRegs {
		return (v[0] >> (hllRegBits * i)) & hllRegMask
	}
	return (v[1] >> (hllRegBits * (i - hllLoRegs))) & hllRegMask
}

func hllSet(v *Value, i int, x uint64) {
	if i < hllLoRegs {
		shift := hllRegBits * i
		v[0] = v[0]&^(uint64(hllRegMask)<<shift) | x<<shift
	} else {
		shift := hllRegBits * (i - hllLoRegs)
		v[1] = v[1]&^(uint64(hllRegMask)<<shift) | x<<shift
	}
}

func (distinctMerger) Name() string { return "distinct" }

func (distinctMerger) Observe(v *Value, sample int64, _ int64) {
	// n identical observations add one distinct element, so the batch
	// count is irrelevant. The sample is avalanched first: raw samples
	// are often small integers whose bits HLL cannot use directly.
	h := hashing.Mix64(hashing.KeyDigest(uint64(sample)))
	idx := int(h >> 60)                               // top 4 bits pick the register
	rho := uint64(bits.LeadingZeros64(h<<4|1<<3)) + 1 // rank in the low 60 bits
	if rho > hllGet(v, idx) {
		hllSet(v, idx, rho)
	}
}

func (distinctMerger) Combine(dst *Value, src Value) {
	for i := 0; i < hllRegs; i++ {
		if r := hllGet(&src, i); r > hllGet(dst, i) {
			hllSet(dst, i, r)
		}
	}
}

func (distinctMerger) Result(v Value) int64 {
	var invSum float64
	zeros := 0
	for i := 0; i < hllRegs; i++ {
		r := hllGet(&v, i)
		invSum += math.Ldexp(1, -int(r))
		if r == 0 {
			zeros++
		}
	}
	e := hllAlpha16M2 / invSum
	if e <= 2.5*hllRegs && zeros > 0 {
		// Small-range correction: linear counting is exact-ish here.
		e = hllRegs * math.Log(float64(hllRegs)/float64(zeros))
	}
	return int64(math.Round(e))
}
