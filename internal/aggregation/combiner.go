package aggregation

// combiner.go implements the worker-side combiner tree's node logic:
// pre-merging partials that target one reducer shard BEFORE they cross
// the shard hop. Several bolts on one host each hold a partial for the
// same (window, key); merging them host-side through the same pluggable
// Merger the reducer would use collapses that replication to (at most)
// one partial per (window, key, shard) — the reduce stage's traffic
// drops from the replication factor to 1, which the AggShards sweeps
// identified as the scaling wall.
//
// Pre-merging is exact because the Merger contract is a commutative,
// associative fold: combining partials in the tree and then at the
// reducer yields bit-identical finals to combining them all at the
// reducer (Count/Sum are integer sums, Min/Max comparisons, Distinct a
// register-wise max — all exactly associative).
//
// Two bookkeeping invariants survive the tree:
//
//   - Completeness: partials carry message counts and the fold adds
//     them, so a combined partial stands for exactly the messages of
//     its constituents; window close thresholds are unaffected.
//   - Replication accounting: merging erases worker identity, so a
//     combined partial carries Worker = CombinedWorker and is skipped
//     by the Driver's replica observation. The engines instead observe
//     each ORIGINAL (window, key, worker) triple at the bolt, via
//     ShardedDriver.ObserveReplica, before the partial enters the tree
//     — same triples as the unchanged dataplane, so measured
//     replication factors are bit-equal across dataplanes.
//
// CombineTable is the interior tree node (opportunistic merge, no
// completeness knowledge); Combiner is the per-shard root, which also
// buffers to window completeness so the shard's driver receives each
// (window, key) exactly once and closes the window on receipt.

// CombinedWorker marks a partial produced by pre-merging partials of
// several workers: its worker identity is gone, and the Driver must not
// (and does not) count it toward state replication — the engines
// observed the constituent triples via ObserveReplica before merging.
const CombinedWorker int32 = -1

// CombineTable merges partials by (window, key digest) through a merge
// operator: the interior node of a combiner tree. It knows nothing of
// completeness — callers fold whatever partials they have drained and
// flush the merged survivors downstream whenever they choose. Not safe
// for concurrent use; each tree node owns one.
type CombineTable struct {
	m    Merger
	pool tablePool
	in   int64
	out  int64
}

// NewCombineTable returns an empty combine table folding partial values
// with m (nil means CountMerger).
func NewCombineTable(m Merger) *CombineTable {
	if m == nil {
		m = CountMerger
	}
	return &CombineTable{m: m, pool: newTablePool()}
}

// Fold merges one partial into the table.
func (ct *CombineTable) Fold(p *Partial) {
	t, _ := ct.pool.get(p.Window)
	ct.m.Combine(&t.add(p.Digest, p.Key, p.Count).val, p.Val)
	ct.in++
}

// Len returns the live (window, key) entries currently held.
func (ct *CombineTable) Len() int { return ct.pool.entries() }

// FlushBefore appends every held (window, key) entry of windows below
// `before` to dst as ONE combined partial each (Worker =
// CombinedWorker), recycles those windows' tables, and returns the
// extended slice. Ascending window order, unspecified key order within
// a window. Flushing a window the node will see more partials for is
// harmless — the stragglers just form a second combined partial, which
// downstream merges like any other.
func (ct *CombineTable) FlushBefore(before int64, dst []Partial) []Partial {
	if len(ct.pool.open) == 0 {
		return dst
	}
	for _, w := range ct.pool.sortedBelow(before) {
		dst = ct.flushWindow(w, dst)
	}
	return dst
}

// FlushAll flushes every held window (end of stream).
func (ct *CombineTable) FlushAll(dst []Partial) []Partial {
	return ct.FlushBefore(1<<62, dst)
}

func (ct *CombineTable) flushWindow(w int64, dst []Partial) []Partial {
	t := ct.pool.open[w]
	for i := range t.slots {
		if t.slots[i].count == 0 {
			continue
		}
		dst = append(dst, Partial{
			Window: w,
			Digest: t.slots[i].dig,
			Key:    t.slots[i].key,
			Count:  t.slots[i].count,
			Val:    t.slots[i].val,
			Worker: CombinedWorker,
		})
	}
	ct.out += int64(t.used)
	ct.pool.recycle(w)
	return dst
}

// In returns the number of partials folded in so far; Out the number of
// combined partials emitted. In − Out (once drained) is the merge
// traffic the node absorbed.
func (ct *CombineTable) In() int64  { return ct.in }
func (ct *CombineTable) Out() int64 { return ct.out }

// Combiner is the ROOT node of one shard's combiner tree: it merges the
// shard's partial stream like a CombineTable but additionally knows the
// shard's per-window completeness thresholds, so it can hold a window's
// merged partials until the window is provably complete and hand the
// shard's Driver the whole window in one slab — the driver closes it on
// receipt, and the shard hop carries exactly one partial per
// (window, key). The caller must run Fold/FlushComplete/Finish from the
// single goroutine that owns the shard (the same one that would call
// MergeShard), because the flush path drives the driver directly.
type Combiner struct {
	ct      CombineTable
	sd      *ShardedDriver
	shard   int
	scratch []Partial
}

// NewCombiner returns the combiner-tree root for shard `shard` of sd.
func NewCombiner(sd *ShardedDriver, shard int) *Combiner {
	return &Combiner{ct: *NewCombineTable(sd.merger()), sd: sd, shard: shard}
}

// Fold merges one partial (raw from a bolt, or pre-combined by an
// interior node) into the root's tables.
func (c *Combiner) Fold(p *Partial) { c.ct.Fold(p) }

// FlushComplete hands every COMPLETE held window to the shard's driver
// (one combined partial per key, one slab per window) and recycles its
// table; the driver closes each window on receipt, emitting finals
// through onFinal. Incomplete windows stay buffered. Call after each
// drain sweep.
func (c *Combiner) FlushComplete(onFinal func(Final)) {
	if len(c.ct.pool.open) == 0 {
		return
	}
	for _, w := range c.ct.pool.sortedBelow(1 << 62) {
		exp, final := c.sd.expectedFor(w, c.shard)
		if !final || c.ct.pool.open[w].sum < exp {
			continue
		}
		c.scratch = c.ct.flushWindow(w, c.scratch[:0])
		c.sd.MergeShard(c.shard, c.scratch, onFinal)
	}
}

// Finish flushes every held window — complete or not (end of stream:
// the final window holds the remainder) — into the driver and closes
// the shard (FinishShard).
func (c *Combiner) Finish(onFinal func(Final)) {
	c.scratch = c.ct.FlushAll(c.scratch[:0])
	if len(c.scratch) > 0 {
		c.sd.MergeShard(c.shard, c.scratch, onFinal)
	}
	c.sd.FinishShard(c.shard, onFinal)
}

// In returns the partials folded into the root so far; Out the combined
// partials handed to the driver.
func (c *Combiner) In() int64  { return c.ct.In() }
func (c *Combiner) Out() int64 { return c.ct.Out() }
