package aggregation

import (
	"fmt"
	"testing"

	"slb/internal/core"
	"slb/internal/hashing"
	"slb/internal/stream"
	"slb/internal/workload"
)

// runTwoPhase routes gen through per-source partitioners of the named
// algorithm, accumulates per-worker windowed partials (window =
// emission index / windowSize), flushes on watermark advance, merges at
// a single reducer and returns the finals plus the reducer stats.
func runTwoPhase(t *testing.T, gen stream.Generator, algo string, workers, sources int, windowSize int64) ([]Final, ReducerStats) {
	t.Helper()
	parts := make([]core.Partitioner, sources)
	for i := range parts {
		p, err := core.New(algo, core.Config{Workers: workers, Seed: 99, Instance: i})
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = p
	}
	accs := make([]*Accumulator, workers)
	for i := range accs {
		accs[i] = NewAccumulator(i)
	}
	red := NewReducer()
	var buf []Partial

	gen.Reset()
	var idx int64
	src := 0
	for {
		key, ok := gen.Next()
		if !ok {
			break
		}
		window := idx / windowSize
		w := parts[src].Route(key)
		acc := accs[w]
		if wm, ok := acc.Watermark(); ok && window > wm {
			// The worker sees a later window: flush everything below it.
			buf = red.mergeFlush(acc, window, buf)
		}
		acc.Add(window, hashing.Digest(key), key)
		idx++
		src = (src + 1) % sources
	}
	for _, acc := range accs {
		buf = red.mergeFlush(acc, 1<<62, buf)
	}
	finals := red.CloseAll(nil)
	return finals, red.Stats()
}

// mergeFlush drains acc's windows below w straight into the reducer.
func (r *Reducer) mergeFlush(acc *Accumulator, w int64, buf []Partial) []Partial {
	buf = acc.FlushBefore(w, buf[:0])
	r.Merge(buf)
	return buf
}

// groundTruth is the single-node KG reference: exact per-(window, key)
// counts of the stream.
func groundTruth(gen stream.Generator, windowSize int64) map[int64]map[string]int64 {
	gen.Reset()
	truth := make(map[int64]map[string]int64)
	var idx int64
	for {
		key, ok := gen.Next()
		if !ok {
			break
		}
		w := idx / windowSize
		m := truth[w]
		if m == nil {
			m = make(map[string]int64)
			truth[w] = m
		}
		m[key]++
		idx++
	}
	gen.Reset()
	return truth
}

func checkExact(t *testing.T, finals []Final, truth map[int64]map[string]int64) {
	t.Helper()
	got := make(map[int64]map[string]int64)
	for _, f := range finals {
		m := got[f.Window]
		if m == nil {
			m = make(map[string]int64)
			got[f.Window] = m
		}
		if _, dup := m[f.Key]; dup {
			t.Fatalf("window %d key %q finalized twice", f.Window, f.Key)
		}
		m[f.Key] = f.Count
	}
	if len(got) != len(truth) {
		t.Fatalf("got %d windows, want %d", len(got), len(truth))
	}
	for w, wantKeys := range truth {
		gotKeys := got[w]
		if len(gotKeys) != len(wantKeys) {
			t.Fatalf("window %d: got %d keys, want %d", w, len(gotKeys), len(wantKeys))
		}
		for k, want := range wantKeys {
			if gotKeys[k] != want {
				t.Fatalf("window %d key %q: got %d, want %d", w, k, gotKeys[k], want)
			}
		}
	}
}

// TestWindowCloseExactness: for every algorithm, the sum of partials
// merged at the reducer equals the single-node KG count for every
// (window, key) — the aggregation is an amortization of state, never an
// approximation. Static Zipf and drifting workloads.
func TestWindowCloseExactness(t *testing.T) {
	const (
		workers    = 8
		sources    = 3
		messages   = 20_000
		windowSize = 1_500
	)
	gens := map[string]func() stream.Generator{
		"zipf":  func() stream.Generator { return workload.NewZipf(1.6, 400, messages, 7) },
		"drift": func() stream.Generator { return workload.NewDrift(1.6, 400, messages, 4_000, 37, 7) },
	}
	for genName, mk := range gens {
		truth := groundTruth(mk(), windowSize)
		for _, algo := range core.Names {
			t.Run(fmt.Sprintf("%s/%s", genName, algo), func(t *testing.T) {
				finals, stats := runTwoPhase(t, mk(), algo, workers, sources, windowSize)
				checkExact(t, finals, truth)
				if stats.Partials != stats.Merges+stats.Finals {
					t.Fatalf("stats inconsistent: %d partials, %d merges, %d finals",
						stats.Partials, stats.Merges, stats.Finals)
				}
			})
		}
	}
}

// TestReplicationOrdering: KG produces exactly one partial per (window,
// key) — replication factor 1, zero overhead — and the key-splitting
// schemes pay more, W-Choices the most of the load-aware ones.
func TestReplicationOrdering(t *testing.T) {
	const (
		workers    = 16
		sources    = 4
		messages   = 40_000
		windowSize = 4_000
	)
	mk := func() stream.Generator { return workload.NewZipf(2.0, 1_000, messages, 11) }
	rf := make(map[string]float64)
	for _, algo := range []string{"KG", "PKG", "W-C"} {
		_, stats := runTwoPhase(t, mk(), algo, workers, sources, windowSize)
		rf[algo] = stats.ReplicationFactor()
	}
	if rf["KG"] != 1 {
		t.Fatalf("KG replication factor = %f, want exactly 1", rf["KG"])
	}
	if !(rf["PKG"] > rf["KG"]) {
		t.Fatalf("PKG replication factor %f not above KG's %f", rf["PKG"], rf["KG"])
	}
	if !(rf["W-C"] > rf["PKG"]) {
		t.Fatalf("W-C replication factor %f not above PKG's %f", rf["W-C"], rf["PKG"])
	}
}

// TestLateTupleReopensWindow: a tuple arriving after its window was
// flushed opens a fresh partial; the reducer merges both flushes into
// one exact final.
func TestLateTupleReopensWindow(t *testing.T) {
	acc := NewAccumulator(0)
	red := NewReducer()
	dg := hashing.Digest("k")
	acc.Add(0, dg, "k")
	acc.Add(0, dg, "k")
	red.Merge(acc.FlushBefore(1, nil)) // window 0 closed at the worker
	acc.Add(0, dg, "k")                // straggler for window 0
	acc.Add(1, dg, "k")
	red.Merge(acc.FlushAll(nil))
	finals := red.CloseAll(nil)
	want := map[int64]int64{0: 3, 1: 1}
	if len(finals) != 2 {
		t.Fatalf("got %d finals, want 2", len(finals))
	}
	for _, f := range finals {
		if f.Count != want[f.Window] {
			t.Fatalf("window %d: count %d, want %d", f.Window, f.Count, want[f.Window])
		}
	}
	st := red.Stats()
	if st.Partials != 3 || st.Merges != 1 {
		t.Fatalf("stats = %+v, want 3 partials with 1 merge", st)
	}
}

// TestTableGrowthAndRecycle: a window with many distinct keys grows its
// table; after flushing, the table is recycled for the next window and
// steady-state cycles stop allocating new tables.
func TestTableGrowthAndRecycle(t *testing.T) {
	acc := NewAccumulator(0)
	for w := int64(0); w < 5; w++ {
		for i := 0; i < 1_000; i++ {
			key := fmt.Sprintf("k%d", i)
			acc.Add(w, hashing.Digest(key), key)
		}
		if acc.Entries() != 1_000 {
			t.Fatalf("window %d: %d entries, want 1000", w, acc.Entries())
		}
		ps := acc.FlushBefore(w+1, nil)
		if len(ps) != 1_000 {
			t.Fatalf("window %d: flushed %d partials, want 1000", w, len(ps))
		}
		if acc.OpenWindows() != 0 || acc.Entries() != 0 {
			t.Fatalf("window %d: not fully flushed", w)
		}
	}
	if acc.Flushed() != 5_000 || acc.Closed() != 5 {
		t.Fatalf("lifetime stats: flushed %d, closed %d", acc.Flushed(), acc.Closed())
	}
	if len(acc.pool.free) != 1 {
		t.Fatalf("free list holds %d tables, want 1 recycled", len(acc.pool.free))
	}
}

// TestReducerPeakEntries tracks the memory high-water mark across
// overlapping windows.
func TestReducerPeakEntries(t *testing.T) {
	red := NewReducer()
	dgA, dgB := hashing.Digest("a"), hashing.Digest("b")
	red.Merge([]Partial{
		{Window: 0, Digest: dgA, Key: "a", Count: 1},
		{Window: 0, Digest: dgB, Key: "b", Count: 1},
		{Window: 1, Digest: dgA, Key: "a", Count: 1},
	})
	if red.Entries() != 3 || red.Stats().PeakEntries != 3 || red.Stats().PeakWindows != 2 {
		t.Fatalf("live %d, stats %+v", red.Entries(), red.Stats())
	}
	red.CloseBefore(1, nil)
	if red.Entries() != 1 {
		t.Fatalf("live after close = %d, want 1", red.Entries())
	}
	if red.Stats().PeakEntries != 3 {
		t.Fatalf("peak dropped: %d", red.Stats().PeakEntries)
	}
}

// BenchmarkAccumulatorWindow measures one steady-state window cycle:
// accumulate a Zipf-keyed slab, flush, merge at the reducer.
func BenchmarkAccumulatorWindow(b *testing.B) {
	const windowSize = 4_096
	gen := workload.NewZipf(1.4, 2_000, int64(windowSize), 3)
	keys := make([]string, 0, windowSize)
	digs := make([]KeyDigest, 0, windowSize)
	for {
		k, ok := gen.Next()
		if !ok {
			break
		}
		keys = append(keys, k)
		digs = append(digs, hashing.Digest(k))
	}
	acc := NewAccumulator(0)
	red := NewReducer()
	var buf []Partial
	var finals []Final
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := int64(i)
		for j := range keys {
			acc.Add(w, digs[j], keys[j])
		}
		buf = acc.FlushBefore(w+1, buf[:0])
		red.Merge(buf)
		finals = red.CloseBefore(w+1, finals[:0])
	}
	_ = finals
}

// TestDriverReleasesClosedWindowReplicas pins the pooled replica
// accounting: finals carry the key digest, and the driver retires each
// (window, key) replica bitset the moment its window closes, so the
// tracker's live set follows the open windows while the reported
// replication factor stays exact.
func TestDriverReleasesClosedWindowReplicas(t *testing.T) {
	const windowSize, messages = 100, 1000
	d := NewDriver(4, windowSize, messages)
	var finals int
	for w := int64(0); w < messages/windowSize; w++ {
		var ps []Partial
		for k := 0; k < 10; k++ {
			key := fmt.Sprintf("k%d", k)
			dg := hashing.Digest(key)
			// Two workers hold partials for every key: replication 2.
			ps = append(ps,
				Partial{Window: w, Digest: dg, Key: key, Count: 5, Worker: 0},
				Partial{Window: w, Digest: dg, Key: key, Count: 5, Worker: 1})
		}
		d.Merge(ps, func(f Final) {
			finals++
			if f.Digest != hashing.Digest(f.Key) {
				t.Fatalf("final %q carries digest %d, want %d", f.Key, f.Digest, hashing.Digest(f.Key))
			}
		})
		// Every window closes on completeness, so no replica bitsets
		// stay live after its finals are emitted.
		if live := d.reps.Live(); live != 0 {
			t.Fatalf("window %d: %d replica bitsets still live after close", w, live)
		}
	}
	if finals != 10*messages/windowSize {
		t.Fatalf("finals = %d, want %d", finals, 10*messages/windowSize)
	}
	if got := d.Replication(); got != 2 {
		t.Fatalf("Replication = %f, want 2 (exact despite releases)", got)
	}
	if d.Total() != messages {
		t.Fatalf("Total = %d, want %d", d.Total(), messages)
	}
}
