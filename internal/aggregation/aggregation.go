// Package aggregation implements the two-phase windowed aggregation
// that key-splitting partitioners (PKG, D-Choices, W-Choices) impose on
// stateful streaming applications. When a key's messages are spread
// over d workers, each worker holds only a PARTIAL aggregate; producing
// the final per-key value requires a second stage that merges the d
// partials. This package provides both halves: the worker-side
// Accumulator (windowed partial tables) and the reducer-side Reducer
// (partial merging with memory accounting), so the engines can measure
// the aggregation overhead the paper trades against balance — KG pays
// one partial per key and window, W-Choices up to n.
//
// WHAT is aggregated is pluggable: a Merger operator (count, sum,
// min/max, approximate-distinct, or custom) rides inside the tables as
// a fixed 128-bit Value per entry, observed at the workers and combined
// at the reducer; message counts are tracked alongside regardless,
// because they drive the completeness-based window close. The reduce
// stage scales out via ShardedDriver: R independent Drivers keyed by
// digest (ShardFor), each closing its slice of every window on
// per-shard completeness thresholds counted at emission.
//
// # The digest-merge invariant
//
// Tables on both sides are keyed by hashing.KeyDigest, the canonical
// 64-bit digest every routing layer shares (see internal/core). The
// digest is a pure function of the key bytes, so partials for one key
// produced on DIFFERENT workers — or routed by different senders —
// carry the same digest by construction, and the reducer merges them
// with a single integer probe, never re-hashing or comparing key bytes.
// Two distinct keys collide with probability ≈ 2⁻⁶⁴ per pair, in which
// case they are aggregated as one key, exactly as they are routed and
// sketch-counted as one key upstream.
//
// The digest is CARRIED, never recomputed: routing digests each key
// once at the source (core.RouteBatchDigests / core.RouteDigest), the
// engines stamp that digest into their tuples, Accumulator.Add folds it
// into the partial tables, and the flushed Partial hands it onward to
// the reducer — one key-byte scan per message end to end, pinned by the
// engines' hash-once tests.
//
// # Windows
//
// Windows are tumbling and count-based, identified by an int64 window
// id the CALLER assigns (the engines stamp window = seq/windowSize at
// emission, so a window is a fixed slice of the source stream and
// results are engine-independent). Several windows may be open at once:
// tuples of adjacent windows interleave at a worker because sources
// drain independently. Flushing is watermark-driven — FlushBefore(w)
// closes every open window below w — and late tuples simply open a
// fresh partial for their window, which the reducer merges like any
// other; correctness never depends on flush timing, only the message
// count does.
//
// # Allocation discipline
//
// Partial tables are open-addressing arrays recycled through a free
// list: once the per-window working set is reached, a steady
// accumulate→flush cycle allocates only when a window's distinct-key
// count exceeds every previously recycled table.
package aggregation

import (
	"slices"
	"sync"
	"sync/atomic"

	"slb/internal/hashing"
	"slb/internal/metrics"
)

// KeyDigest is the shared 64-bit key digest (see hashing.KeyDigest).
type KeyDigest = hashing.KeyDigest

// Partial is one worker's aggregate for (window, key): the unit of
// aggregation traffic from workers to the reducer. Worker identifies
// the producing worker so the reducer can account distinct
// (window, key, worker) state replicas exactly, independent of how
// many flush fragments the worker emitted. Count is always the number
// of source messages folded in (the reducer's completeness currency);
// Val is the merger's typed state for those messages (equal to Count
// under CountMerger).
type Partial struct {
	Window int64
	Digest KeyDigest
	Key    string
	Count  int64
	Val    Value
	Worker int32
}

// WindowKeyID condenses (window, key digest) into one 64-bit identity
// for per-window replica accounting (metrics.DigestReplicas): two mixes
// of independent inputs, colliding only at hash-collision rates.
func WindowKeyID(window int64, dg KeyDigest) uint64 {
	return hashing.Mix64(dg) ^ hashing.Mix64(KeyDigest(uint64(window)*0x9e3779b97f4a7c15+1))
}

// Final is the reducer's merged result for (window, key). Count is the
// number of source messages merged; Value is the merger's rendered
// result over them (identical to Count under CountMerger). Digest is
// the key's carried KeyDigest — the same one that routed and merged the
// messages — so downstream consumers (re-keyed edges, the driver's
// replica accounting) never re-scan the key bytes.
type Final struct {
	Window int64
	Digest KeyDigest
	Key    string
	Count  int64
	Value  int64
}

// ---------------------------------------------------------------------------
// Partial tables

// slot is one open-addressing entry; Count == 0 marks an empty slot
// (live entries always have Count ≥ 1). val is the merger state,
// updated by the caller after add returns the slot.
type slot struct {
	dig   KeyDigest
	count int64
	val   Value
	key   string
}

// table is a growable open-addressing digest → count map with linear
// probing. It is cleared (not freed) on flush so the backing array is
// reused across windows. sum is the total message count folded in — the
// reducer's window-completeness test.
type table struct {
	slots []slot
	used  int
	sum   int64
	mask  uint64
}

const minTableSize = 16

func newTable() *table {
	return &table{slots: make([]slot, minTableSize), mask: minTableSize - 1}
}

// add folds n messages of (dg, key) into the table's count and returns
// the live slot so the caller can fold its merger state into val. The
// returned pointer is valid until the next add.
func (t *table) add(dg KeyDigest, key string, n int64) *slot {
	t.sum += n
	i := hashing.Mix64(dg) & t.mask
	for {
		s := &t.slots[i]
		if s.count == 0 {
			s.dig, s.key, s.count, s.val = dg, key, n, Value{}
			t.used++
			if 4*t.used >= 3*len(t.slots) {
				t.grow()
				return t.find(dg)
			}
			return s
		}
		if s.dig == dg {
			s.count += n
			return s
		}
		i = (i + 1) & t.mask
	}
}

// find returns the live slot of dg (which must be present).
func (t *table) find(dg KeyDigest) *slot {
	i := hashing.Mix64(dg) & t.mask
	for t.slots[i].dig != dg || t.slots[i].count == 0 {
		i = (i + 1) & t.mask
	}
	return &t.slots[i]
}

func (t *table) grow() {
	old := t.slots
	t.slots = make([]slot, 2*len(old))
	t.mask = uint64(len(t.slots) - 1)
	for i := range old {
		if old[i].count == 0 {
			continue
		}
		j := hashing.Mix64(old[i].dig) & t.mask
		for t.slots[j].count != 0 {
			j = (j + 1) & t.mask
		}
		t.slots[j] = old[i]
	}
}

// clear empties the table in place, keeping the backing array.
func (t *table) clear() {
	for i := range t.slots {
		t.slots[i] = slot{}
	}
	t.used = 0
	t.sum = 0
}

// tablePool is the windowed-table machinery both halves share: open
// tables by window id, a free list of cleared tables, and a scratch for
// sorted window selection.
type tablePool struct {
	open map[int64]*table
	free []*table
	ws   []int64 // scratch: window ids per flush/close call
}

func newTablePool() tablePool {
	return tablePool{open: make(map[int64]*table)}
}

// get returns the window's table, acquiring one from the free list (or
// allocating) on first use; created reports whether it was new.
func (p *tablePool) get(w int64) (t *table, created bool) {
	t = p.open[w]
	if t != nil {
		return t, false
	}
	if k := len(p.free); k > 0 {
		t = p.free[k-1]
		p.free = p.free[:k-1]
	} else {
		t = newTable()
	}
	p.open[w] = t
	return t, true
}

// recycle clears the window's table back onto the free list.
func (p *tablePool) recycle(w int64) {
	t := p.open[w]
	t.clear()
	p.free = append(p.free, t)
	delete(p.open, w)
}

// sortedBelow fills the scratch with the open window ids < before, in
// ascending order, and returns it.
func (p *tablePool) sortedBelow(before int64) []int64 {
	p.ws = p.ws[:0]
	for w := range p.open {
		if w < before {
			p.ws = append(p.ws, w)
		}
	}
	slices.Sort(p.ws)
	return p.ws
}

// entries returns the live entries across open windows.
func (p *tablePool) entries() int {
	n := 0
	for _, t := range p.open {
		n += t.used
	}
	return n
}

// ---------------------------------------------------------------------------
// Accumulator (worker side)

// Accumulator maintains the windowed partial aggregates of ONE worker
// (or one pipeline executor). It is not safe for concurrent use; each
// worker owns its instance, exactly as each worker owns its state in a
// DSPE.
type Accumulator struct {
	worker  int32
	m       Merger
	pool    tablePool
	highest int64 // highest window id ever added (the watermark input)
	sawAny  bool

	flushed int64 // partials emitted over the accumulator's lifetime
	closed  int64 // windows flushed
}

// NewAccumulator returns an empty counting accumulator for the given
// worker index (stamped into every flushed Partial).
func NewAccumulator(worker int) *Accumulator {
	return NewAccumulatorMerger(worker, nil)
}

// NewAccumulatorMerger returns an empty accumulator whose partial
// tables fold samples with the given merge operator (nil means
// CountMerger). The reducer merging its partials must use the same
// operator.
func NewAccumulatorMerger(worker int, m Merger) *Accumulator {
	if m == nil {
		m = CountMerger
	}
	return &Accumulator{worker: int32(worker), m: m, pool: newTablePool(), highest: -1 << 62}
}

// Add folds one observation of key into the given window's partial
// table. dg is the key's CARRIED digest (the one routing computed —
// callers must not re-digest): the table probe is pure integer work.
func (a *Accumulator) Add(window int64, dg KeyDigest, key string) {
	a.AddSample(window, dg, key, 1, 1)
}

// AddN folds n observations at once (the batched form: a slab of
// identical keys is one table probe). dg is the carried digest, as in
// Add. Each observation carries sample 1, so under CountMerger (and
// SumMerger over unweighted streams) AddN(…, n) equals n Adds.
func (a *Accumulator) AddN(window int64, dg KeyDigest, key string, n int64) {
	a.AddSample(window, dg, key, n, 1)
}

// AddSample folds n observations of the given sample into the window's
// partial table: the message count grows by n (the completeness
// currency) and the merger observes (sample, n). dg is the carried
// digest, as in Add.
func (a *Accumulator) AddSample(window int64, dg KeyDigest, key string, n, sample int64) {
	if n <= 0 {
		return
	}
	t, _ := a.pool.get(window)
	a.m.Observe(&t.add(dg, key, n).val, sample, n)
	if window > a.highest {
		a.highest = window
	}
	a.sawAny = true
}

// Watermark returns the highest window id observed so far; ok is false
// before the first Add. Engines flush windows strictly below the
// watermark: with sources emitting window ids non-decreasingly and
// bounded in-flight reordering, those windows are complete or nearly so
// (stragglers reopen a window late, costing an extra partial, never
// correctness).
func (a *Accumulator) Watermark() (window int64, ok bool) {
	return a.highest, a.sawAny
}

// FlushBefore closes every open window with id < window, appending one
// Partial per live (window, key) entry to dst and recycling the tables.
// It returns the extended slice. Partials of one window are emitted
// together; window order within one flush is ascending.
func (a *Accumulator) FlushBefore(window int64, dst []Partial) []Partial {
	if len(a.pool.open) == 0 {
		return dst
	}
	for _, w := range a.pool.sortedBelow(window) {
		dst = a.flushOne(w, dst)
	}
	return dst
}

// FlushAll closes every open window (end of stream).
func (a *Accumulator) FlushAll(dst []Partial) []Partial {
	return a.FlushBefore(1<<62, dst)
}

func (a *Accumulator) flushOne(w int64, dst []Partial) []Partial {
	t := a.pool.open[w]
	for i := range t.slots {
		if t.slots[i].count == 0 {
			continue
		}
		dst = append(dst, Partial{
			Window: w,
			Digest: t.slots[i].dig,
			Key:    t.slots[i].key,
			Count:  t.slots[i].count,
			Val:    t.slots[i].val,
			Worker: a.worker,
		})
	}
	a.flushed += int64(t.used)
	a.closed++
	a.pool.recycle(w)
	return dst
}

// OpenWindows returns the number of windows currently holding partials.
func (a *Accumulator) OpenWindows() int { return len(a.pool.open) }

// Entries returns the live (window, key) entries across open windows:
// the worker's current aggregation-state size.
func (a *Accumulator) Entries() int { return a.pool.entries() }

// Flushed returns the number of partials emitted so far.
func (a *Accumulator) Flushed() int64 { return a.flushed }

// Closed returns the number of window flushes performed so far.
func (a *Accumulator) Closed() int64 { return a.closed }

// ---------------------------------------------------------------------------
// Reducer

// ReducerStats is the measured cost of the aggregation phase — the
// quantities the paper's overhead analysis talks about.
type ReducerStats struct {
	// Partials is the number of partial MESSAGES merged: the aggregation
	// traffic. At least one per (window, key, worker) pair that held
	// state, plus any flush fragments (a worker re-opening an already
	// flushed window emits a second partial for it). For the exact
	// state-replica count use metrics.DigestReplicas (Driver.Replication).
	Partials int64
	// Merges counts partials that hit an existing entry (Partials −
	// first-arrivals): the extra merge work replication causes.
	Merges int64
	// Finals is the number of merged results emitted.
	Finals int64
	// WindowsClosed is the number of windows finalized.
	WindowsClosed int64
	// Late counts partials that arrived for an already-closed window:
	// they reopen it and its results are re-emitted as corrections.
	// Under the completeness-based Driver this is structurally zero
	// mid-stream — a closed window has provably received every partial —
	// so a nonzero value indicates double counting.
	Late int64
	// PeakEntries is the largest number of live (window, key) entries the
	// reducer ever held: its memory high-water mark in entries.
	PeakEntries int
	// PeakWindows is the largest number of simultaneously open windows.
	PeakWindows int
}

// ReplicationFactor is the measured average number of partial MESSAGES
// merged per final result: the aggregation-traffic multiplier. With
// in-order flushing it equals the state replication factor (1 for KG,
// up to n for W-Choices); under concurrent engines it additionally
// counts flush fragments and late corrections, so it upper-bounds the
// state replication the engines measure exactly via
// metrics.DigestReplicas. 0 before any window closed.
func (s ReducerStats) ReplicationFactor() float64 {
	if s.Finals == 0 {
		return 0
	}
	return float64(s.Partials) / float64(s.Finals)
}

// Reducer merges partials into finals. One instance represents the
// aggregation stage; it is not safe for concurrent use (the engines
// funnel partial slabs through a single reducer executor, which is the
// paper's model of the aggregation bottleneck).
type Reducer struct {
	m      Merger
	pool   tablePool
	live   int                // live entries across open windows
	closed map[int64]struct{} // ids already finalized (windows may close out of order)
	stats  ReducerStats

	// liveA/openA mirror live and len(pool.open) into atomics, updated
	// once per Merge/close call, so a telemetry snapshot goroutine can
	// read the reducer's occupancy while the owning goroutine merges.
	liveA atomic.Int64
	openA atomic.Int64
}

// NewReducer returns an empty counting reducer.
func NewReducer() *Reducer {
	return NewReducerMerger(nil)
}

// NewReducerMerger returns an empty reducer combining partial values
// with the given merge operator (nil means CountMerger) — the same
// operator the accumulators that feed it were built with.
func NewReducerMerger(m Merger) *Reducer {
	if m == nil {
		m = CountMerger
	}
	return &Reducer{m: m, pool: newTablePool(), closed: make(map[int64]struct{})}
}

// Merge folds a slab of partials into the reducer's open windows.
func (r *Reducer) Merge(ps []Partial) {
	for i := range ps {
		p := &ps[i]
		if _, done := r.closed[p.Window]; done {
			r.stats.Late++
		}
		t, created := r.pool.get(p.Window)
		if created && len(r.pool.open) > r.stats.PeakWindows {
			r.stats.PeakWindows = len(r.pool.open)
		}
		before := t.used
		r.m.Combine(&t.add(p.Digest, p.Key, p.Count).val, p.Val)
		r.stats.Partials++
		if t.used == before {
			r.stats.Merges++
		} else {
			r.live++
			if r.live > r.stats.PeakEntries {
				r.stats.PeakEntries = r.live
			}
		}
	}
	r.liveA.Store(int64(r.live))
	r.openA.Store(int64(len(r.pool.open)))
}

// WindowTotal returns the total message count merged into the given
// open window (0 if the window is not open): the completeness test —
// a window whose total equals its exact message count has received
// every partial it ever will.
func (r *Reducer) WindowTotal(w int64) int64 {
	t := r.pool.open[w]
	if t == nil {
		return 0
	}
	return t.sum
}

// closeWindow finalizes one open window, appending its merged results
// to dst (unspecified key order).
func (r *Reducer) closeWindow(w int64, dst []Final) []Final {
	t := r.pool.open[w]
	for i := range t.slots {
		if t.slots[i].count == 0 {
			continue
		}
		dst = append(dst, Final{
			Window: w,
			Digest: t.slots[i].dig,
			Key:    t.slots[i].key,
			Count:  t.slots[i].count,
			Value:  r.m.Result(t.slots[i].val),
		})
	}
	r.stats.Finals += int64(t.used)
	r.stats.WindowsClosed++
	r.live -= t.used
	r.closed[w] = struct{}{}
	r.pool.recycle(w)
	r.liveA.Store(int64(r.live))
	r.openA.Store(int64(len(r.pool.open)))
	return dst
}

// CloseWindow finalizes the given window if open, appending the merged
// results to dst and returning the extended slice.
func (r *Reducer) CloseWindow(w int64, dst []Final) []Final {
	if r.pool.open[w] == nil {
		return dst
	}
	return r.closeWindow(w, dst)
}

// CloseBefore finalizes every open window with id < window, appending
// the merged results to dst (ascending window order, unspecified key
// order within a window) and returning the extended slice.
func (r *Reducer) CloseBefore(window int64, dst []Final) []Final {
	if len(r.pool.open) == 0 {
		return dst
	}
	for _, w := range r.pool.sortedBelow(window) {
		dst = r.closeWindow(w, dst)
	}
	return dst
}

// CloseAll finalizes every open window (end of stream).
func (r *Reducer) CloseAll(dst []Final) []Final {
	return r.CloseBefore(1<<62, dst)
}

// Entries returns the live (window, key) entries currently held.
func (r *Reducer) Entries() int { return r.live }

// LiveEntries is the concurrent-safe form of Entries: an atomic
// snapshot updated once per Merge/close call, readable while the owning
// goroutine merges (telemetry gauges poll it).
func (r *Reducer) LiveEntries() int64 { return r.liveA.Load() }

// LiveWindows is the concurrent-safe count of currently open windows,
// with the same per-call granularity as LiveEntries.
func (r *Reducer) LiveWindows() int64 { return r.openA.Load() }

// Stats returns the accumulated cost counters.
func (r *Reducer) Stats() ReducerStats { return r.stats }

// ---------------------------------------------------------------------------
// Driver

// Driver is the reducer side of an engine run: it merges partial slabs,
// accounts exact state replication (metrics.DigestReplicas keyed by
// WindowKeyID), closes windows, and totals the finals. Both engines
// (internal/dspe, internal/eventsim) share this policy, so it lives in
// one place.
//
// Window close is COMPLETENESS-based, not watermark-based: every
// tumbling window has an exactly known message count (windowSize,
// except the stream's final window), each message contributes exactly
// once to exactly one flushed partial, and partials carry counts — so
// a window whose merged total reaches its size has provably received
// every partial it ever will and closes immediately. No reordering
// assumption is involved (watermark slack heuristics break down when a
// message is stuck behind a hot worker's queue while the rest of the
// cluster races ahead), duplicates are structurally impossible
// mid-stream, and each (window, key) yields exactly one Final. Not
// safe for concurrent use; each engine funnels slabs through one
// driver.
type Driver struct {
	red      *Reducer
	reps     *metrics.DigestReplicas
	repMu    sync.Mutex // guards reps: combiner-tree bolts observe concurrently
	expected func(w int64) (int64, bool)
	total    int64
	finals   []Final
	ws       []int64 // scratch: distinct windows per slab
}

// NewDriver returns a counting driver for an engine run of `messages`
// total messages in tumbling windows of windowSize (the final window
// holds the remainder).
func NewDriver(workers int, windowSize, messages int64) *Driver {
	return NewDriverMerger(workers, windowSize, messages, nil)
}

// NewDriverMerger is NewDriver with a pluggable merge operator (nil
// means CountMerger).
func NewDriverMerger(workers int, windowSize, messages int64, m Merger) *Driver {
	if windowSize <= 0 {
		panic("aggregation: Driver windowSize must be positive")
	}
	return newDriverExpected(workers, m, closedFormExpected(windowSize, messages))
}

// newDriverExpected builds a driver whose per-window completeness
// threshold comes from the given function: expected(w) returns the
// number of messages the driver must merge before window w may close,
// and whether that number is FINAL (a window must never close against
// a still-growing threshold — see ShardedDriver, whose per-shard
// thresholds are counted at emission and only final once the whole
// window has been emitted).
func newDriverExpected(workers int, m Merger, expected func(w int64) (int64, bool)) *Driver {
	return &Driver{
		red:      NewReducerMerger(m),
		reps:     metrics.NewDigestReplicas(workers),
		expected: expected,
	}
}

// closedFormExpected is the unsharded threshold: every tumbling window
// holds exactly windowSize messages except the stream's final window,
// which holds the remainder. Always final.
func closedFormExpected(windowSize, messages int64) func(w int64) (int64, bool) {
	return func(w int64) (int64, bool) {
		if messages > 0 {
			if last := (messages - 1) / windowSize; w == last {
				return messages - last*windowSize, true
			}
		}
		return windowSize, true
	}
}

// Merge folds one flushed slab into the reducer and closes every
// window the slab completed; onFinal (optional) receives each result.
func (d *Driver) Merge(ps []Partial, onFinal func(Final)) {
	if len(ps) == 0 {
		return
	}
	d.red.Merge(ps)
	d.ws = d.ws[:0]
	// One lock for the whole slab: per-partial lock/unlock is measurable
	// on planes where every partial arrives uncombined.
	d.repMu.Lock()
	for i := range ps {
		// Combined partials (Worker < 0) merged away their worker identity;
		// the engine already observed each constituent (window, key, worker)
		// triple at the bolt via ShardedDriver.ObserveReplica.
		if ps[i].Worker >= 0 {
			d.reps.Observe(WindowKeyID(ps[i].Window, ps[i].Digest), int(ps[i].Worker))
		}
		if i == 0 || ps[i].Window != ps[i-1].Window {
			d.ws = append(d.ws, ps[i].Window)
		}
	}
	d.repMu.Unlock()
	for _, w := range d.ws {
		if exp, final := d.expected(w); final && d.red.WindowTotal(w) >= exp {
			d.emit(d.red.CloseWindow(w, d.finals[:0]), onFinal)
		}
	}
}

// Finish closes every remaining window (end of stream).
func (d *Driver) Finish(onFinal func(Final)) {
	d.emit(d.red.CloseAll(d.finals[:0]), onFinal)
}

func (d *Driver) emit(fs []Final, onFinal func(Final)) {
	d.finals = fs
	for _, f := range fs {
		d.total += f.Count
		// The window is closed: completeness-based closing guarantees no
		// further partial can ever arrive for this (window, key), so its
		// replica bitset is released back to the pool. The accounting
		// stays exact (Total/Keys/AvgPerKey/MaxPerKey are cumulative)
		// while the tracker's memory follows the OPEN windows instead of
		// the whole stream.
		d.repMu.Lock()
		d.reps.Release(WindowKeyID(f.Window, f.Digest))
		d.repMu.Unlock()
		if onFinal != nil {
			onFinal(f)
		}
	}
}

// observeReplica records one (window-key id, worker) state replica.
// Thread-safe: under the combiner tree, bolts observe the original
// triples concurrently with the shard goroutine closing windows.
func (d *Driver) observeReplica(id uint64, worker int) {
	d.repMu.Lock()
	d.reps.Observe(id, worker)
	d.repMu.Unlock()
}

// Stats returns the reducer's cost counters.
func (d *Driver) Stats() ReducerStats { return d.red.Stats() }

// LiveEntries returns the reducer's current live (window, key) entries;
// safe to call concurrently with Merge (see Reducer.LiveEntries).
func (d *Driver) LiveEntries() int64 { return d.red.LiveEntries() }

// LiveWindows returns the reducer's currently open window count; safe
// to call concurrently with Merge.
func (d *Driver) LiveWindows() int64 { return d.red.LiveWindows() }

// LiveReplicas returns the number of (window, key) identities currently
// holding a replica bitset — the replica tracker's live memory
// footprint, which follows the open windows because completed windows
// release their bitsets. Thread-safe (repMu).
func (d *Driver) LiveReplicas() int {
	d.repMu.Lock()
	defer d.repMu.Unlock()
	return d.reps.Live()
}

// Replication returns the exact measured state replication factor:
// distinct (window, key, worker) triples per distinct (window, key).
func (d *Driver) Replication() float64 { return d.reps.AvgPerKey() }

// Total returns the sum of all final counts emitted so far.
func (d *Driver) Total() int64 { return d.total }
